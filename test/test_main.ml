let () =
  Alcotest.run "sempe"
    [
      ("exec", Test_exec.tests);
      ("lang", Test_lang.tests);
      ("workloads", Test_workloads.tests);
      ("security", Test_security.tests);
      ("djpeg", Test_djpeg.tests);
      ("util", Test_util.tests);
      ("pool", Test_pool.tests);
      ("determinism", Test_determinism.tests);
      ("bpred", Test_bpred.tests);
      ("mem", Test_mem.tests);
      ("pipeline", Test_pipeline.tests);
      ("core-units", Test_core_units.tests);
      ("random-programs", Test_random_progs.tests);
      ("sampling", Test_sampling.tests);
      ("obs", Test_obs.tests);
      ("fuzz", Test_fuzz.tests);
      ("serve", Test_serve.tests);
      ("router", Test_router.tests);
      ("cli", Test_cli.tests);
      ("frontend", Test_frontend.tests);
      ("passes", Test_passes.tests);
      ("ref-equivalence", Test_ref_equiv.tests);
      ("edge-cases", Test_more.tests);
      ("differential", Test_differential.tests);
    ]
