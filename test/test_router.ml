(* Tests for the sharded serving fleet: consistent-hash ring properties
   (determinism, balance, bounded remapping), the persistent cache store
   (round-trip, corruption tolerance, the server's reload-on-start
   path), and an in-process two-shard fleet behind a router — byte
   equality with the batch path, routing stability, retry/failover past
   a refusing or killed shard, and graceful fleet drain. *)

module Json = Sempe_obs.Json
module Api = Sempe_serve.Api
module Server = Sempe_serve.Server
module Router = Sempe_serve.Router
module Client = Sempe_serve.Client
module Persist = Sempe_serve.Persist
module Scheme = Sempe_core.Scheme
module Ring = Router.Ring

(* ---- the hash ring ----------------------------------------------------- *)

(* Deterministic pseudo-request keys in the same shape route_key emits. *)
let key i =
  let h1, h2 = Api.digests (Printf.sprintf "request-%d" i) in
  [ h1; h2 ]

let test_ring_determinism () =
  let r = Ring.create 4 and r' = Ring.create 4 in
  Alcotest.(check int) "shard count" 4 (Ring.shards r);
  for i = 0 to 499 do
    let a = Ring.assign r (key i) in
    Alcotest.(check bool) "assignment in range" true (a >= 0 && a < 4);
    Alcotest.(check int) "assignment is a pure function" a
      (Ring.assign r' (key i));
    let order = Ring.order r (key i) in
    Alcotest.(check int) "failover order covers every shard" 4
      (List.length (List.sort_uniq compare order));
    Alcotest.(check int) "failover order starts at the owner" a
      (List.hd order)
  done

let test_ring_balance () =
  let r = Ring.create 4 in
  let counts = Array.make 4 0 in
  let n = 2000 in
  for i = 0 to n - 1 do
    let s = Ring.assign r (key i) in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun s c ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d holds a fair-ish share (%d/%d)" s c n)
        true
        (c > n / 20))
    counts

let test_ring_bounded_remapping () =
  (* Growing 4 shards to 5 must remap only keys the new shard claims:
     every key either keeps its assignment or moves to shard 4, and the
     moved fraction sits near 1/5 — nowhere near the ~100% a modular
     hash would reshuffle. *)
  let r4 = Ring.create 4 and r5 = Ring.create 5 in
  let n = 2000 in
  let moved = ref 0 in
  for i = 0 to n - 1 do
    let a4 = Ring.assign r4 (key i) and a5 = Ring.assign r5 (key i) in
    if a4 <> a5 then begin
      incr moved;
      Alcotest.(check int) "a moved key moved to the new shard" 4 a5
    end
  done;
  let fraction = float_of_int !moved /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "remapped fraction %.3f stays near 1/5" fraction)
    true
    (fraction > 0.05 && fraction < 0.35)

(* ---- the persistent store ---------------------------------------------- *)

let fresh_dir name =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sempe-t%d-%s" (Unix.getpid ()) name)
  in
  let rec wipe path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> wipe (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  wipe dir;
  dir

let test_persist_roundtrip () =
  let dir = fresh_dir "persist" in
  let responses =
    [
      ([ 11; 22; 33; 44 ], Json.Obj [ ("cycles", Json.Int 7) ], 1.5);
      ([ 55; 66 ], Json.Str "leakage-matrix", 0.25);
    ]
  in
  Persist.save ~dir ~responses ~plans:[];
  let loaded = Persist.load ~dir in
  Alcotest.(check (list string)) "clean load has no warnings" []
    loaded.Persist.warnings;
  Alcotest.(check bool) "responses survive byte-for-byte, in order" true
    (loaded.Persist.responses = responses);
  Alcotest.(check int) "no plans were stored" 0
    (List.length loaded.Persist.plans);
  (* a second save atomically replaces the first *)
  Persist.save ~dir ~responses:[ List.hd responses ] ~plans:[];
  Alcotest.(check int) "rewrite replaces the store" 1
    (List.length (Persist.load ~dir).Persist.responses)

let test_persist_corruption_tolerated () =
  Alcotest.(check bool) "missing dir loads empty" true
    (Persist.load ~dir:(fresh_dir "persist-none") = Persist.
       { responses = []; plans = []; warnings = [] });
  let dir = fresh_dir "persist-bad" in
  Unix.mkdir dir 0o755;
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "responses.v1.jsonl" "{\"store\":\"other\",\"version\":9}\n{}\n";
  write "plans.v1.bin" "sempe-serve-plans.v9\ngarbage";
  let loaded = Persist.load ~dir in
  Alcotest.(check int) "nothing loads from foreign stores" 0
    (List.length loaded.Persist.responses + List.length loaded.Persist.plans);
  Alcotest.(check int) "each skipped file warns once" 2
    (List.length loaded.Persist.warnings);
  (* a valid header with one corrupt line: the good entries still load *)
  write "responses.v1.jsonl"
    ("{\"store\":\"sempe-serve-responses\",\"version\":1}\n"
   ^ "{\"key\":[1,2],\"cost_s\":0.5,\"response\":{\"ok\":1}}\n"
   ^ "this is not json\n");
  let loaded = Persist.load ~dir in
  Alcotest.(check int) "good entry loads past the corrupt one" 1
    (List.length loaded.Persist.responses)

(* ---- in-process fleet helpers ------------------------------------------ *)

let sock_path name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "sempe-t%d-%s.sock" (Unix.getpid ()) name)

let with_conn addr f =
  let conn = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close conn) (fun () -> f conn)

let ok = function
  | Ok v -> v
  | Error { Client.code; message } ->
    Alcotest.fail (Printf.sprintf "fleet error %s: %s" code message)

let stat path json =
  let rec go json = function
    | [] -> ( match json with Json.Int i -> i | _ -> -1)
    | name :: rest -> (
      match json with
      | Json.Obj fields -> (
        match List.assoc_opt name fields with Some v -> go v rest | None -> -1)
      | _ -> -1)
  in
  go json path

let fib w =
  Api.Simulate
    {
      scheme = Scheme.Sempe;
      workload = Api.Microbench { kernel = "fibonacci"; width = w; iters = 3; leaf = 1 };
      strict_oob = false;
    }

(* A request owned by each shard of a 2-shard default ring: routing is a
   pure function of the request bytes, so the tests can pick their
   victims deterministically. *)
let request_owned_by shard =
  let ring = Ring.create 2 in
  let rec go w =
    if w > 64 then Alcotest.fail "no request found for shard"
    else if Ring.assign ring (Api.route_key (fib w)) = shard then fib w
    else go (w + 1)
  in
  go 2

(* ---- server persistence round-trip ------------------------------------- *)

let test_server_store_roundtrip () =
  let dir = fresh_dir "store" in
  let config = { Server.default_config with Server.store_dir = Some dir } in
  let req = fib 3 in
  let first =
    let path = sock_path "store-a" in
    let server = Server.start ~config (Server.Unix_sock path) in
    Fun.protect
      ~finally:(fun () -> Server.stop server)
      (fun () ->
        with_conn (Server.Unix_sock path) (fun conn ->
            let doc, cached = ok (Client.call_cached conn req) in
            Alcotest.(check bool) "cold store, cold cache" false cached;
            doc))
    (* Server.stop flushes the store on the way out. *)
  in
  let path = sock_path "store-b" in
  let server = Server.start ~config (Server.Unix_sock path) in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      with_conn (Server.Unix_sock path) (fun conn ->
          let stats = ok (Client.stats conn) in
          Alcotest.(check bool) "restart reports disk-loaded entries" true
            (stat [ "disk_loaded_results" ] stats >= 1);
          let doc, cached = ok (Client.call_cached conn req) in
          Alcotest.(check bool) "first request after restart is a cache hit"
            true cached;
          Alcotest.(check string) "disk-loaded response byte-identical"
            (Json.to_string first) (Json.to_string doc)))

(* ---- router end to end -------------------------------------------------- *)

let test_fleet_byte_equality_failover_drain () =
  let s0 = sock_path "fleet-s0" and s1 = sock_path "fleet-s1" in
  let r = sock_path "fleet-r" in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ s0; s1; r ];
  let shard0 = Server.start (Server.Unix_sock s0) in
  let shard1 = Server.start (Server.Unix_sock s1) in
  let router_cfg = { Router.default_config with Router.backoff_s = 0.01 } in
  let router =
    Router.start ~config:router_cfg
      ~shards:[ Server.Unix_sock s0; Server.Unix_sock s1 ]
      (Server.Unix_sock r)
  in
  Fun.protect
    ~finally:(fun () ->
      Router.stop router;
      Server.stop shard0;
      Server.stop shard1;
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ s0; s1; r ])
    (fun () ->
      let req0 = request_owned_by 0 and req1 = request_owned_by 1 in
      with_conn (Server.Unix_sock r) (fun conn ->
          (* routed responses are byte-identical to the batch path *)
          List.iter
            (fun req ->
              Alcotest.(check string) "routed = batch bytes"
                (Json.to_string (Api.perform req))
                (Json.to_string (ok (Client.call conn req))))
            [ req0; req1; Api.Fuzz_smoke { seed = 3; count = 10 } ];
          (* repeats land on the same shard's warm cache *)
          let _, cached = ok (Client.call_cached conn req0) in
          Alcotest.(check bool) "repeat is a cache hit through the router"
            true cached;
          let stats = ok (Client.stats conn) in
          Alcotest.(check bool) "fleet-wide hit counter visible" true
            (stat [ "result_cache"; "hits" ] stats >= 1);
          Alcotest.(check int) "no failovers yet" 0
            (stat [ "failovers" ] stats);
          (* kill shard 0: its requests must fail over to shard 1 and
             still serve byte-identical responses *)
          Server.stop shard0;
          Alcotest.(check string) "failover serves identical bytes"
            (Json.to_string (Api.perform req0))
            (Json.to_string (ok (Client.call conn req0)));
          let stats = ok (Client.stats conn) in
          Alcotest.(check bool) "failover recorded" true
            (stat [ "failovers" ] stats >= 1);
          Alcotest.(check bool) "retries recorded" true
            (stat [ "retried" ] stats >= 1);
          (* graceful drain: the client-visible shutdown stops the
             remaining shard and then the router *)
          ok (Client.shutdown conn));
      Server.wait shard1;
      Router.wait router;
      Alcotest.(check bool) "router socket removed" false (Sys.file_exists r);
      Alcotest.(check bool) "drained shard socket removed" false
        (Sys.file_exists s1))

let test_router_retries_refusing_shard () =
  (* Shard 0 is an address nothing listens on: every request it owns
     must be retried (with backoff) and then failed over to the live
     shard — no client-visible failures. *)
  let dead = sock_path "refuse-dead" and live = sock_path "refuse-live" in
  let r = sock_path "refuse-r" in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ dead; live; r ];
  let shard1 = Server.start (Server.Unix_sock live) in
  let config =
    { Router.default_config with Router.retries = 2; backoff_s = 0.005 }
  in
  let router =
    Router.start ~config
      ~shards:[ Server.Unix_sock dead; Server.Unix_sock live ]
      (Server.Unix_sock r)
  in
  Fun.protect
    ~finally:(fun () ->
      Router.stop router;
      Server.stop shard1;
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ live; r ])
    (fun () ->
      let req0 = request_owned_by 0 in
      with_conn (Server.Unix_sock r) (fun conn ->
          Alcotest.(check string) "refused shard's request served elsewhere"
            (Json.to_string (Api.perform req0))
            (Json.to_string (ok (Client.call conn req0)));
          let stats = ok (Client.stats conn) in
          Alcotest.(check bool) "connection refusal was retried" true
            (stat [ "retried" ] stats >= 1);
          Alcotest.(check bool) "then failed over" true
            (stat [ "failovers" ] stats >= 1);
          (* the dead shard is out of rotation; the fleet keeps serving *)
          Alcotest.(check string) "fleet remains serviceable"
            (Json.to_string (Api.perform req0))
            (Json.to_string (ok (Client.call conn req0)))))

let tests =
  [
    Alcotest.test_case "ring: deterministic assignment" `Quick
      test_ring_determinism;
    Alcotest.test_case "ring: balanced shares" `Quick test_ring_balance;
    Alcotest.test_case "ring: bounded remapping on grow" `Quick
      test_ring_bounded_remapping;
    Alcotest.test_case "persist: store round-trip" `Quick test_persist_roundtrip;
    Alcotest.test_case "persist: corruption tolerated" `Quick
      test_persist_corruption_tolerated;
    Alcotest.test_case "daemon: store survives restart" `Quick
      test_server_store_roundtrip;
    Alcotest.test_case "fleet: bytes, failover, drain" `Slow
      test_fleet_byte_equality_failover_drain;
    Alcotest.test_case "fleet: refusing shard retried" `Quick
      test_router_retries_refusing_shard;
  ]
