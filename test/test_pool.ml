(* Unit tests for the domain worker pool: result ordering, exception
   propagation, the size-1 sequential fallback, and batches larger than
   the pool. *)

module Pool = Sempe_util.Pool

exception Boom of int

let test_ordering () =
  let xs = List.init 100 (fun k -> k) in
  let expected = List.map (fun k -> k * k) xs in
  let got = Pool.run ~workers:4 (fun k -> k * k) xs in
  Alcotest.(check (list int)) "squares in job order" expected got

let test_more_jobs_than_workers () =
  (* 250 jobs on 3 workers: everything completes, order preserved. *)
  let xs = List.init 250 (fun k -> k) in
  let got = Pool.run ~workers:3 (fun k -> 2 * k + 1) xs in
  Alcotest.(check (list int)) "all jobs ran, in order"
    (List.map (fun k -> (2 * k) + 1) xs)
    got

let test_pool_size_one () =
  let t = Pool.create ~workers:1 () in
  Alcotest.(check int) "size" 1 (Pool.size t);
  let got = Pool.map t (fun k -> k + 10) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "sequential fallback" [ 11; 12; 13 ] got;
  Pool.shutdown t

let test_exception_propagation () =
  (* The lowest-indexed failing job's exception surfaces in the caller. *)
  let job k = if k = 7 then raise (Boom k) else if k = 11 then raise Exit else k in
  Alcotest.check_raises "first failing job wins" (Boom 7) (fun () ->
      ignore (Pool.run ~workers:4 job (List.init 20 (fun k -> k))))

let test_exception_sequential () =
  Alcotest.check_raises "size-1 pool propagates too" (Boom 3) (fun () ->
      ignore (Pool.run ~workers:1 (fun k -> if k = 3 then raise (Boom k) else k)
                [ 1; 2; 3 ]))

let test_pool_reuse () =
  let t = Pool.create ~workers:2 () in
  let a = Pool.map t (fun k -> k + 1) [ 1; 2; 3 ] in
  let b = Pool.map t string_of_int [ 4; 5 ] in
  Pool.shutdown t;
  Alcotest.(check (list int)) "first batch" [ 2; 3; 4 ] a;
  Alcotest.(check (list string)) "second batch" [ "4"; "5" ] b

let test_shutdown_rejects () =
  let t = Pool.create ~workers:2 () in
  Pool.shutdown t;
  Pool.shutdown t (* idempotent *);
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map t (fun k -> k) [ 1; 2 ]))

let test_empty_and_singleton () =
  let t = Pool.create ~workers:3 () in
  Alcotest.(check (list int)) "empty" [] (Pool.map t (fun k -> k) []);
  Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map t (fun k -> k * 9) [ 1 ]);
  Pool.shutdown t

(* ---- submit/await/peek and shutdown semantics ------------------------- *)

(* A job that parks on [gate] until the test releases it, bumping
   [started] on entry so the test can wait until the pool's workers are
   provably occupied before queueing more work behind them. *)
let parked ~gate ~started v () =
  Atomic.incr started;
  while not (Atomic.get gate) do
    Thread.yield ();
    Unix.sleepf 0.002
  done;
  v

let spin_until ?(timeout_s = 5.) pred =
  let t0 = Unix.gettimeofday () in
  while (not (pred ())) && Unix.gettimeofday () -. t0 < timeout_s do
    Thread.yield ();
    Unix.sleepf 0.002
  done;
  Alcotest.(check bool) "condition reached before timeout" true (pred ())

let test_submit_await () =
  let t = Pool.create ~workers:2 () in
  let ps = List.init 8 (fun k -> Pool.submit t (fun () -> k * k)) in
  let got = List.map Pool.await ps in
  (* repeated await returns the same settled value *)
  Alcotest.(check (list int)) "await twice" got (List.map Pool.await ps);
  Alcotest.(check (list int)) "squares" (List.init 8 (fun k -> k * k)) got;
  Pool.shutdown t

let test_peek () =
  let t = Pool.create ~workers:2 () in
  let gate = Atomic.make false and started = Atomic.make 0 in
  let p = Pool.submit t (parked ~gate ~started 42) in
  spin_until (fun () -> Atomic.get started = 1);
  Alcotest.(check (option int)) "pending while parked" None (Pool.peek p);
  Atomic.set gate true;
  spin_until (fun () -> Pool.peek p <> None);
  Alcotest.(check (option int)) "settled after release" (Some 42) (Pool.peek p);
  Alcotest.(check int) "await agrees" 42 (Pool.await p);
  Pool.shutdown t

let test_peek_reraises () =
  (* Sequential pool: submit runs inline, so the promise is already an
     Error when we peek. *)
  let t = Pool.create ~workers:1 () in
  let p = Pool.submit t (fun () -> raise (Boom 5)) in
  Alcotest.check_raises "peek re-raises" (Boom 5) (fun () ->
      ignore (Pool.peek p));
  Pool.shutdown t

(* Occupy both workers with parked jobs and return (pool, gate, parked
   promises). The caller then queues more work that no worker can reach
   until the gate opens. *)
let occupied_pool () =
  let t = Pool.create ~workers:2 () in
  let gate = Atomic.make false and started = Atomic.make 0 in
  let p1 = Pool.submit t (parked ~gate ~started 1) in
  let p2 = Pool.submit t (parked ~gate ~started 2) in
  spin_until (fun () -> Atomic.get started = 2);
  (t, gate, p1, p2)

let release_later gate =
  Thread.create
    (fun () ->
      Thread.delay 0.05;
      Atomic.set gate true)
    ()

let test_shutdown_drains () =
  let t, gate, p1, p2 = occupied_pool () in
  let q = Pool.submit t (fun () -> 99) in
  Alcotest.(check (option int)) "queued job not started" None (Pool.peek q);
  let releaser = release_later gate in
  Pool.shutdown ~drain:true t;
  Thread.join releaser;
  Alcotest.(check int) "in-flight job 1 completed" 1 (Pool.await p1);
  Alcotest.(check int) "in-flight job 2 completed" 2 (Pool.await p2);
  Alcotest.(check int) "queued job ran before shutdown returned" 99
    (Pool.await q)

let test_shutdown_no_drain_discards () =
  let t, gate, p1, p2 = occupied_pool () in
  let q = Pool.submit t (fun () -> 99) in
  let releaser = release_later gate in
  Pool.shutdown ~drain:false t;
  Thread.join releaser;
  (* In-flight work always completes; only queued work is discarded, and
     its waiter settles with Shutdown instead of blocking forever. *)
  Alcotest.(check int) "in-flight job 1 completed" 1 (Pool.await p1);
  Alcotest.(check int) "in-flight job 2 completed" 2 (Pool.await p2);
  Alcotest.check_raises "queued job aborted" Pool.Shutdown (fun () ->
      ignore (Pool.await q));
  (* double shutdown, either flavour, is a no-op *)
  Pool.shutdown ~drain:false t;
  Pool.shutdown ~drain:true t;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit t (fun () -> 0)))

let tests =
  [
    Alcotest.test_case "result ordering" `Quick test_ordering;
    Alcotest.test_case "more jobs than workers" `Quick test_more_jobs_than_workers;
    Alcotest.test_case "pool size 1" `Quick test_pool_size_one;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "exception (sequential)" `Quick test_exception_sequential;
    Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
    Alcotest.test_case "shutdown" `Quick test_shutdown_rejects;
    Alcotest.test_case "empty and singleton batches" `Quick test_empty_and_singleton;
    Alcotest.test_case "submit/await" `Quick test_submit_await;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "peek re-raises" `Quick test_peek_reraises;
    Alcotest.test_case "shutdown drains queued work" `Quick test_shutdown_drains;
    Alcotest.test_case "shutdown ~drain:false discards queued work" `Quick
      test_shutdown_no_drain_discards;
  ]
