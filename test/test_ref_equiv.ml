(* Packed-array implementations vs the record-based reference models.

   The production cache ([lib/mem/cache.ml]) and TAGE
   ([lib/bpred/tage.ml]) were rewritten onto flat packed int arrays with
   inlined folded-history arithmetic for speed; [Ref_cache] and
   [Ref_tage] preserve the original record-based implementations. These
   properties drive both sides of each pair through identical
   multi-hundred-thousand-operation streams (millions of operations
   across the QCheck cases) and require bit-identical observable
   behavior: per-operation outcomes, per-branch predictions,
   resident-tag listings, statistics counters, and state signatures.

   The streams are derived from a generated PRNG seed rather than a
   generated operation list: QCheck shrinks the seed (useless) but can
   still vary it widely, and a seed buys a million-op stream without a
   million-cell generated structure. *)

module Cache = Sempe_mem.Cache
module Tage = Sempe_bpred.Tage
module Stats = Sempe_util.Stats

let qtest = QCheck_alcotest.to_alcotest

(* ---- cache vs Ref_cache ---- *)

(* A few shapes from direct-mapped to 8-way; small enough that random
   addresses collide, evict, and exercise LRU ranks. *)
let cache_shapes =
  [
    { Cache.name = "equiv"; size_bytes = 4 * 1024; line_bytes = 64; ways = 4 };
    { Cache.name = "equiv"; size_bytes = 2 * 1024; line_bytes = 32; ways = 1 };
    { Cache.name = "equiv"; size_bytes = 16 * 1024; line_bytes = 64; ways = 8 };
    { Cache.name = "equiv"; size_bytes = 1024; line_bytes = 16; ways = 2 };
  ]

let cache_ops_per_case = 150_000

let check_cache_equal ~ctx cfg cache ref_cache =
  let got = Cache.signature cache and want = Ref_cache.signature ref_cache in
  if got <> want then
    QCheck.Test.fail_reportf "%s: signature %d <> reference %d" ctx got want;
  for s = 0 to Cache.num_sets cache - 1 do
    if Cache.resident_tags cache s <> Ref_cache.resident_tags ref_cache s then
      QCheck.Test.fail_reportf "%s: resident_tags diverge in set %d" ctx s
  done;
  let got = Stats.to_list (Cache.stats cache)
  and want = Stats.to_list (Ref_cache.stats ref_cache) in
  if got <> want then
    QCheck.Test.fail_reportf "%s: stats diverge (%s)" ctx cfg.Cache.name

let cache_equiv_prop seed =
  let rand = Random.State.make [| seed; 0xcac4e |] in
  List.iter
    (fun cfg ->
      let cache = Cache.create cfg and ref_cache = Ref_cache.create cfg in
      (* Addresses drawn from 4x the cache's reach: plenty of hits, plenty
         of conflict evictions. *)
      let addr_range = 4 * cfg.Cache.size_bytes in
      for op = 1 to cache_ops_per_case do
        let addr = Random.State.int rand addr_range in
        (match Random.State.int rand 100 with
        | r when r < 70 ->
          let write = Random.State.bool rand in
          let got = Cache.access cache ~addr ~write
          and want = Ref_cache.access ref_cache ~addr ~write in
          let hit = got = Cache.Hit and ref_hit = want = Ref_cache.Hit in
          if hit <> ref_hit then
            QCheck.Test.fail_reportf "op %d: access %d diverges" op addr
        | r when r < 85 ->
          let got = Cache.prefetch_fill cache ~addr
          and want = Ref_cache.prefetch_fill ref_cache ~addr in
          if got <> want then
            QCheck.Test.fail_reportf "op %d: prefetch_fill %d diverges" op addr
        | r when r < 99 ->
          let got = Cache.probe cache ~addr
          and want = Ref_cache.probe ref_cache ~addr in
          if got <> want then
            QCheck.Test.fail_reportf "op %d: probe %d diverges" op addr
        | _ ->
          Cache.flush cache;
          Ref_cache.flush ref_cache);
        (* Periodic deep check so a divergence is caught near its cause,
           not a hundred thousand ops later. *)
        if op mod 25_000 = 0 then
          check_cache_equal ~ctx:(Printf.sprintf "after op %d" op) cfg cache
            ref_cache
      done;
      check_cache_equal ~ctx:"final" cfg cache ref_cache)
    cache_shapes;
  true

(* ---- TAGE vs Ref_tage ---- *)

let tage_configs =
  [
    Tage.default_config;
    (* Tiny tables force tag aliasing, allocation pressure, and constant
       usefulness decay. *)
    { Tage.num_tables = 4; table_bits = 6; tag_bits = 7; min_history = 2;
      max_history = 32; base_bits = 8 };
  ]

let tage_branches_per_case = 200_000

let tage_equiv_prop seed =
  let rand = Random.State.make [| seed; 0x7a6e |] in
  List.iter
    (fun config ->
      let packed = Tage.create ~config () in
      let reference = Ref_tage.create ~config () in
      (* A pool of branch sites, each with a behavior class: biased
         random, loop-like (taken except every k-th), or
         history-correlated — the mix populates providers at different
         history lengths. *)
      let sites = 48 in
      let pcs = Array.init sites (fun _ -> Random.State.int rand 0x100000) in
      let kinds = Array.init sites (fun _ -> Random.State.int rand 3) in
      let periods = Array.init sites (fun _ -> 2 + Random.State.int rand 7) in
      let visits = Array.make sites 0 in
      let last = ref false in
      for step = 1 to tage_branches_per_case do
        let i = Random.State.int rand sites in
        let pc = pcs.(i) in
        visits.(i) <- visits.(i) + 1;
        let taken =
          match kinds.(i) with
          | 0 -> Random.State.int rand 10 < 7
          | 1 -> visits.(i) mod periods.(i) <> 0
          | _ -> !last = (pc land 1 = 0)
        in
        last := taken;
        let p = packed.Sempe_bpred.Predictor.predict ~pc in
        let r = Ref_tage.predict reference ~pc in
        if p <> r then
          QCheck.Test.fail_reportf "step %d: prediction diverges at pc %#x"
            step pc;
        packed.Sempe_bpred.Predictor.update ~pc ~taken;
        Ref_tage.update reference ~pred:r ~pc ~taken;
        if step mod 20_000 = 0 then begin
          let ps = packed.Sempe_bpred.Predictor.snapshot_signature () in
          let rs = Ref_tage.signature reference in
          if ps <> rs then
            QCheck.Test.fail_reportf "step %d: signature %d <> reference %d"
              step ps rs
        end;
        (* Rare resets keep the initial-state path equivalent too. *)
        if Random.State.int rand 60_000 = 0 then begin
          packed.Sempe_bpred.Predictor.reset ();
          Ref_tage.reset reference
        end
      done;
      let ps = packed.Sempe_bpred.Predictor.snapshot_signature () in
      let rs = Ref_tage.signature reference in
      if ps <> rs then
        QCheck.Test.fail_reportf "final signature %d <> reference %d" ps rs)
    tage_configs;
  true

let tests =
  [
    qtest
      (QCheck.Test.make ~name:"packed cache equals record-based reference"
         ~count:4 QCheck.small_nat cache_equiv_prop);
    qtest
      (QCheck.Test.make ~name:"packed TAGE equals record-based reference"
         ~count:4 QCheck.small_nat tage_equiv_prop);
  ]
