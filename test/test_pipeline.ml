(* Timing-model behaviors: width limits, dependence chains, memory latency,
   misprediction penalties, secure-branch bypass and drains. *)

open Sempe_isa
module Timing = Sempe_pipeline.Timing
module Config = Sempe_pipeline.Config
module Uop = Sempe_pipeline.Uop

(* Fresh records per event (the timing model never retains them, but list
   literals built once here are replayed across runs). *)
let uop ~pc ~cls ~dst ~srcs ~mem_addr =
  let u = Uop.make () in
  u.Uop.pc <- pc;
  u.Uop.cls <- cls;
  u.Uop.dst <- dst;
  u.Uop.srcs <- Array.of_list srcs;
  u.Uop.mem_addr <- mem_addr;
  u

let alu ~pc ~dst ~srcs =
  Uop.Commit (uop ~pc ~cls:Instr.Cls_int_alu ~dst ~srcs ~mem_addr:0)

let load ?(srcs = []) ~pc ~dst ~addr () =
  Uop.Commit (uop ~pc ~cls:Instr.Cls_load ~dst ~srcs ~mem_addr:addr)

let store ~pc ~src ~addr =
  Uop.Commit
    (uop ~pc ~cls:Instr.Cls_store ~dst:Uop.no_dst ~srcs:[ src ] ~mem_addr:addr)

let branch ~pc ~taken ~target ~secure =
  let u = uop ~pc ~cls:Instr.Cls_branch ~dst:Uop.no_dst ~srcs:[] ~mem_addr:0 in
  u.Uop.ctl <- Uop.Ctl_branch;
  u.Uop.taken <- taken;
  u.Uop.target <- target;
  u.Uop.secure <- secure;
  Uop.Commit u

let run events =
  let t = Timing.create () in
  List.iter (Timing.feed t) events;
  Timing.report t

let test_independent_throughput () =
  (* Independent ALU ops on an 8-wide machine: marginal IPC (netting out the
     cold-start icache miss) should approach the fetch width. *)
  let cycles n =
    (run (List.init n (fun k -> alu ~pc:(k land 15) ~dst:(8 + (k mod 32)) ~srcs:[])))
      .Timing.cycles
  in
  let marginal = float_of_int (cycles 3000 - cycles 800) /. 2200.0 in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state near fetch width (marginal cpi=%.3f)" marginal)
    true (marginal < 0.2)

let test_dependence_chain_serializes () =
  (* A chain through one register runs at ~1 op/cycle. *)
  let n = 400 in
  let evs = List.init n (fun k -> alu ~pc:(k land 15) ~dst:8 ~srcs:[ 8 ]) in
  let r = run evs in
  Alcotest.(check bool)
    (Printf.sprintf "serialized (cpi=%.2f)" r.Timing.cpi)
    true (r.Timing.cpi > 0.9)

let test_load_ports_limit () =
  (* Independent loads to the same warm line: bounded by 2 loads/cycle. *)
  let warm = load ~pc:0 ~dst:8 ~addr:0 () in
  let evs = warm :: List.init 400 (fun k -> load ~pc:1 ~dst:(8 + (k mod 8)) ~addr:0 ()) in
  let r = run evs in
  Alcotest.(check bool)
    (Printf.sprintf "load-port bound (cpi=%.2f)" r.Timing.cpi)
    true (r.Timing.cpi > 0.4)

let test_cache_miss_visible () =
  (* A dependent chain of loads with huge stride (all misses) costs ~memory
     latency each; the same chain to one line costs ~L1 latency. *)
  (* address-dependent chain: each load waits for the previous one *)
  let chain addr_of =
    List.init 50 (fun k -> load ~srcs:[ 8 ] ~pc:(k land 7) ~dst:8 ~addr:(addr_of k) ())
  in
  (* irregular strides so the stride prefetcher cannot hide them *)
  let slow = run (chain (fun k -> (k * k * 6151) mod 9_000_000)) in
  let fast = run (chain (fun _ -> 0)) in
  Alcotest.(check bool) "misses dominate" true
    (slow.Timing.cycles > 4 * fast.Timing.cycles);
  Alcotest.(check bool) "miss rate high" true (slow.Timing.dl1_miss_rate > 0.9)

let test_store_forwarding () =
  (* load after store to the same word completes shortly after the store,
     not at memory latency. *)
  let evs =
    [ store ~pc:0 ~src:8 ~addr:77; load ~pc:1 ~dst:9 ~addr:77 () ]
  in
  let r = run evs in
  Alcotest.(check bool) "short" true (r.Timing.cycles < 250)

let test_mispredicts_cost () =
  (* Random-looking alternation at one PC is learnable; a pseudo-random
     pattern across many PCs with random outcomes mispredicts often.
     Compare biased (all taken) vs adversarial outcomes on same structure. *)
  let mk outcome_of =
    List.concat
      (List.init 300 (fun k ->
           [
             alu ~pc:(k land 3) ~dst:8 ~srcs:[];
             branch ~pc:64 ~taken:(outcome_of k) ~target:70 ~secure:false;
           ]))
  in
  let biased = run (mk (fun _ -> true)) in
  let rng = Sempe_util.Rng.create 99 in
  let noise = Array.init 300 (fun _ -> Sempe_util.Rng.bool rng) in
  let random = run (mk (fun k -> noise.(k))) in
  Alcotest.(check bool) "random outcomes mispredict more" true
    (random.Timing.mispredicts > biased.Timing.mispredicts + 50);
  Alcotest.(check bool) "mispredicts cost cycles" true
    (random.Timing.cycles > biased.Timing.cycles)

let test_secure_branch_bypasses_predictor () =
  (* sJMPs never touch the predictor: mispredict count stays zero and the
     predictor state stays at its reset signature. *)
  let t = Timing.create () in
  let sig0 = Timing.predictor_signature t in
  for k = 0 to 99 do
    Timing.feed t (branch ~pc:(k land 7) ~taken:(k land 1 = 0) ~target:0 ~secure:true)
  done;
  let r = Timing.report t in
  Alcotest.(check int) "no mispredicts" 0 r.Timing.mispredicts;
  Alcotest.(check int) "100 sjmps" 100 r.Timing.secure_branches;
  Alcotest.(check int) "predictor untouched" sig0 (Timing.predictor_signature t)

let test_drain_stalls () =
  let body = List.init 50 (fun k -> alu ~pc:k ~dst:8 ~srcs:[]) in
  let plain = run (body @ body) in
  let drained =
    run
      (body
      @ [ Uop.Drain { reason = Uop.Drain_enter_secblock; spm_cycles = 500 } ]
      @ body)
  in
  Alcotest.(check bool) "drain adds at least the SPM cycles" true
    (drained.Timing.cycles >= plain.Timing.cycles + 500);
  Alcotest.(check int) "drain counted" 1 drained.Timing.drains;
  Alcotest.(check int) "spm cycles counted" 500 drained.Timing.spm_cycles

(* A direction predictor scripted per dynamic branch, so tests can force
   exactly one mispredict. *)
let scripted_predictor predict_nth =
  let calls = ref 0 in
  {
    Sempe_bpred.Predictor.name = "scripted";
    predict =
      (fun ~pc:_ ->
        let c = !calls in
        incr calls;
        predict_nth c);
    update = (fun ~pc:_ ~taken:_ -> ());
    reset = (fun () -> calls := 0);
    snapshot_signature = (fun () -> 0);
    save_state = (fun () -> "");
    load_state = (fun _ -> ());
  }

let test_btb_installed_on_mispredicted_taken () =
  (* Regression: a taken branch must install its BTB target when it
     resolves even if its direction mispredicted; otherwise the branch
     still pays the btb_miss_bubble at its next correctly-predicted taken
     occurrence (and a branch only ever resolved taken under mispredicts
     never gets a target at all). *)
  let t = Timing.create ~predictor:(scripted_predictor (fun _ -> false)) () in
  let sig0 = Timing.predictor_signature t in
  (* predictor says not-taken, branch is taken: a pure mispredict *)
  Timing.feed t (branch ~pc:64 ~taken:true ~target:70 ~secure:false);
  let r = Timing.report t in
  Alcotest.(check int) "mispredicted" 1 r.Timing.mispredicts;
  Alcotest.(check bool) "resolved taken branch installed its BTB target" true
    (Timing.predictor_signature t <> sig0);
  (* Behavioral side: with the target installed at resolution, a run whose
     first occurrence mispredicted costs only the one redirect over the
     always-correct run, not an extra bubble per branch. *)
  let branches = 40 in
  let run predict_nth =
    let t = Timing.create ~predictor:(scripted_predictor predict_nth) () in
    for k = 0 to branches - 1 do
      Timing.feed t (alu ~pc:(k land 3) ~dst:8 ~srcs:[]);
      Timing.feed t (branch ~pc:64 ~taken:true ~target:70 ~secure:false)
    done;
    (Timing.report t).Timing.cycles
  in
  let all_correct = run (fun _ -> true) in
  let first_wrong = run (fun n -> n > 0) in
  let slack =
    (* one redirect from resolution plus refilling the drained front end *)
    Config.default.Config.redirect_penalty
    + Config.default.Config.frontend_depth
    + Config.default.Config.btb_miss_bubble
  in
  Alcotest.(check bool)
    (Printf.sprintf "no per-branch bubble after the mispredict (%d vs %d)"
       first_wrong all_correct)
    true
    (first_wrong <= all_correct + slack)

let test_store_table_bounded () =
  (* The store-forwarding ring is direct-mapped: occupancy never exceeds
     the slot count regardless of how many distinct addresses are
     stored. *)
  let t = Timing.create ~store_slots:64 () in
  let n = 20_000 in
  for k = 0 to n - 1 do
    Timing.feed t (store ~pc:(k land 7) ~src:8 ~addr:k)
  done;
  let entries = Timing.store_entries t in
  Alcotest.(check bool)
    (Printf.sprintf "store ring bounded (%d entries after %d stores)" entries n)
    true
    (entries <= 64)

let test_store_ring_forwards () =
  (* A load of a just-stored word must see the forwarded completion
     (later than a plain L1 hit would allow), and a ring large enough to
     avoid collisions reports the same cycles as the default. *)
  let trace =
    List.concat
      (List.init 4_000 (fun k ->
           [
             store ~pc:(k land 7) ~src:8 ~addr:(k land 1023);
             load ~pc:((k + 1) land 7) ~dst:9 ~addr:((k - 3) land 1023) ();
             alu ~pc:((k + 2) land 7) ~dst:8 ~srcs:[ 9 ];
           ]))
  in
  let run ?store_slots () =
    let t = Timing.create ?store_slots () in
    List.iter (Timing.feed t) trace;
    Timing.report t
  in
  let default = run () in
  (* All addresses are < 1024, so any ring >= 1024 slots is collision-free
     and equivalent — the default 4096 included. *)
  let big = run ~store_slots:8192 () in
  Alcotest.(check int) "cycles unchanged by a larger collision-free ring"
    default.Timing.cycles big.Timing.cycles;
  Alcotest.(check int) "instructions unchanged" default.Timing.instructions
    big.Timing.instructions

let test_retire_width_bound () =
  (* Nothing retires faster than retire_width per cycle. *)
  let n = 2400 in
  let evs = List.init n (fun k -> alu ~pc:(k land 7) ~dst:(8 + (k mod 40)) ~srcs:[]) in
  let r = run evs in
  let min_cycles = n / Config.default.Config.retire_width in
  Alcotest.(check bool) "retire bound respected" true (r.Timing.cycles >= min_cycles)

let test_report_consistency () =
  let evs = List.init 100 (fun k -> alu ~pc:k ~dst:8 ~srcs:[]) in
  let r = run evs in
  Alcotest.(check int) "instruction count" 100 r.Timing.instructions;
  Alcotest.(check (float 1e-9)) "cpi consistent"
    (float_of_int r.Timing.cycles /. 100.0)
    r.Timing.cpi

let tests =
  [
    Alcotest.test_case "independent throughput" `Quick test_independent_throughput;
    Alcotest.test_case "dependence chain" `Quick test_dependence_chain_serializes;
    Alcotest.test_case "load ports" `Quick test_load_ports_limit;
    Alcotest.test_case "cache miss visible" `Quick test_cache_miss_visible;
    Alcotest.test_case "store forwarding" `Quick test_store_forwarding;
    Alcotest.test_case "mispredict cost" `Quick test_mispredicts_cost;
    Alcotest.test_case "sjmp bypasses predictor" `Quick test_secure_branch_bypasses_predictor;
    Alcotest.test_case "drain stalls" `Quick test_drain_stalls;
    Alcotest.test_case "btb install on mispredicted taken" `Quick
      test_btb_installed_on_mispredicted_taken;
    Alcotest.test_case "store ring bounded" `Quick test_store_table_bounded;
    Alcotest.test_case "store ring forwards" `Quick test_store_ring_forwards;
    Alcotest.test_case "retire width bound" `Quick test_retire_width_bound;
    Alcotest.test_case "report consistency" `Quick test_report_consistency;
  ]
