(* The parallel sweep engine and the observability layer must both be
   invisible in the results: a sweep fanned out to 4 worker domains
   renders byte-identical tables to the sequential run (every job owns
   its machines and the engine returns results in job order), and a run
   with a sink attached reports the same cycles as one without. *)

module Batch = Sempe_experiments.Batch
module Fig10 = Sempe_experiments.Fig10
module Table1 = Sempe_experiments.Table1
module Scheme = Sempe_core.Scheme
module Harness = Sempe_workloads.Harness
module Rsa = Sempe_workloads.Rsa
module Sink = Sempe_obs.Sink
module Profile = Sempe_obs.Profile

let with_jobs n f =
  Batch.set_jobs n;
  Fun.protect ~finally:(fun () -> Batch.set_jobs 1) f

let test_fig10_j1_vs_j4 () =
  let sweep () = Fig10.sweep ~widths:[ 1; 2 ] ~iters:1 () in
  let seq = with_jobs 1 sweep in
  let par = with_jobs 4 sweep in
  Alcotest.(check string) "render_a byte-identical"
    (Fig10.render_a seq) (Fig10.render_a par);
  Alcotest.(check string) "render_b byte-identical"
    (Fig10.render_b seq) (Fig10.render_b par);
  Alcotest.(check string) "csv byte-identical" (Fig10.csv seq) (Fig10.csv par)

let test_table1_j1_vs_j4 () =
  let measure () = Table1.measure ~width:2 ~iters:1 () in
  let seq = with_jobs 1 measure in
  let par = with_jobs 4 measure in
  Alcotest.(check string) "render byte-identical"
    (Table1.render seq) (Table1.render par)

let test_map_product_grouping () =
  (* The grid helper regroups the flat job results per outer element. *)
  let got =
    Batch.map_product ~j:3 (fun o i -> (o * 10) + i) [ 1; 2; 3 ] [ 4; 5 ]
  in
  Alcotest.(check (list (pair int (list int)))) "grouped in order"
    [ (1, [ 14; 15 ]); (2, [ 24; 25 ]); (3, [ 34; 35 ]) ]
    got

let test_fig10_cross_kernel_average_missing_width () =
  (* Regression: a series missing a sampled width used to make the
     cross-kernel average in bench/main.ml raise Not_found. *)
  let p width baseline sempe =
    {
      Fig10.width;
      baseline_cycles = baseline;
      sempe_cycles = sempe;
      cte_cycles = 4 * baseline;
      ideal_cycles = baseline;
    }
  in
  let series =
    [
      { Fig10.kernel = "full"; points = [ p 1 100 200; p 2 100 300; p 4 100 500 ] };
      { Fig10.kernel = "shallow"; points = [ p 1 100 400; p 2 100 500 ] };
    ]
  in
  let f (pt : Fig10.point) =
    float_of_int pt.Fig10.sempe_cycles /. float_of_int pt.Fig10.baseline_cycles
  in
  let avg = Fig10.cross_kernel_average ~f series in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "missing widths averaged over present series only"
    [ (1.0, 3.0); (2.0, 4.0); (4.0, 5.0) ]
    avg;
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "no series at all" []
    (Fig10.cross_kernel_average ~f [])

let test_sink_invisible () =
  (* Instrumentation is passive: no sink, the null sink and a live
     profiling sink must all produce the identical timing report. *)
  let report sink =
    let built = Harness.build Scheme.Sempe Rsa.program in
    let globals, arrays = Rsa.inputs ~key:0xa5a5 ~base:1234 ~modulus:99991 in
    (Harness.run ~globals ~arrays ?sink built).Sempe_core.Run.timing
  in
  let plain = report None in
  Alcotest.(check bool) "null sink identical" true (plain = report (Some Sink.null));
  let profiled =
    report (Some (Sink.of_probe (Profile.probe (Profile.create ()))))
  in
  Alcotest.(check bool) "profiling sink identical" true (plain = profiled);
  let witnessed =
    report
      (Some
         (Sink.of_probe
            (Sempe_security.Witness.probe (Sempe_security.Witness.create ()))))
  in
  Alcotest.(check bool) "witness sink identical" true (plain = witnessed)

let test_attribution_j1_vs_j4 () =
  (* The attribution sweep fans one job per scheme over the pool; its
     rendered report and JSON must be byte-identical at any -j. *)
  let module Security_exp = Sempe_experiments.Security_exp in
  let measure () = Security_exp.measure_attribution ~keys:[ 0x0000; 0xffff ] () in
  let seq = with_jobs 1 measure in
  let par = with_jobs 4 measure in
  Alcotest.(check string) "render byte-identical"
    (Security_exp.render_attribution seq)
    (Security_exp.render_attribution par);
  Alcotest.(check string) "json byte-identical"
    (Sempe_obs.Json.to_string (Security_exp.attribution_to_json seq))
    (Sempe_obs.Json.to_string (Security_exp.attribution_to_json par))

let tests =
  [
    Alcotest.test_case "fig10 sweep -j1 = -j4" `Quick test_fig10_j1_vs_j4;
    Alcotest.test_case "sink attachment invisible in report" `Quick
      test_sink_invisible;
    Alcotest.test_case "table1 measure -j1 = -j4" `Quick test_table1_j1_vs_j4;
    Alcotest.test_case "map_product grouping" `Quick test_map_product_grouping;
    Alcotest.test_case "fig10 average skips missing widths" `Quick
      test_fig10_cross_kernel_average_missing_width;
    Alcotest.test_case "attribution sweep -j1 = -j4" `Quick
      test_attribution_j1_vs_j4;
  ]
