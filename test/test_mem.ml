(* Memory subsystem: caches, prefetchers, hierarchy and the scratchpad. *)

open Sempe_mem
module Stats = Sempe_util.Stats

let toy_config ?(ways = 2) ?(size = 1024) () =
  { Cache.name = "toy"; size_bytes = size; line_bytes = 64; ways }

let test_cache_miss_then_hit () =
  let c = Cache.create (toy_config ()) in
  Alcotest.(check bool) "cold miss" true (Cache.access c ~addr:0 ~write:false = Cache.Miss);
  Alcotest.(check bool) "then hit" true (Cache.access c ~addr:32 ~write:false = Cache.Hit);
  Alcotest.(check int) "stats accesses" 2 (Stats.find (Cache.stats c) "accesses");
  Alcotest.(check int) "stats misses" 1 (Stats.find (Cache.stats c) "misses")

let test_cache_lru () =
  let c = Cache.create (toy_config ~ways:2 ~size:256 ()) in
  (* 2 sets; set 0 holds lines 0, 2, 4... Install 0 and 2, touch 0, then 4
     must evict 2 (the LRU). *)
  let line k = k * 64 in
  ignore (Cache.access c ~addr:(line 0) ~write:false);
  ignore (Cache.access c ~addr:(line 2) ~write:false);
  ignore (Cache.access c ~addr:(line 0) ~write:false);
  ignore (Cache.access c ~addr:(line 4) ~write:false);
  Alcotest.(check bool) "0 kept" true (Cache.probe c ~addr:(line 0));
  Alcotest.(check bool) "2 evicted" false (Cache.probe c ~addr:(line 2));
  Alcotest.(check bool) "4 present" true (Cache.probe c ~addr:(line 4))

let test_cache_probe_nondestructive () =
  let c = Cache.create (toy_config ()) in
  ignore (Cache.probe c ~addr:0);
  Alcotest.(check int) "probe not counted" 0 (Stats.find (Cache.stats c) "accesses");
  Alcotest.(check bool) "still absent" true (Cache.access c ~addr:0 ~write:false = Cache.Miss)

let test_cache_prefetch_fill () =
  let c = Cache.create (toy_config ()) in
  Alcotest.(check bool) "installed" true (Cache.prefetch_fill c ~addr:0);
  Alcotest.(check bool) "already present" false (Cache.prefetch_fill c ~addr:0);
  Alcotest.(check bool) "prefetch hit" true (Cache.access c ~addr:0 ~write:false = Cache.Hit);
  Alcotest.(check int) "prefetch counted" 1 (Stats.find (Cache.stats c) "prefetch_fills")

let test_cache_flush_and_signature () =
  let c = Cache.create (toy_config ()) in
  let empty_sig = Cache.signature c in
  ignore (Cache.access c ~addr:0 ~write:false);
  Alcotest.(check bool) "signature changed" true (Cache.signature c <> empty_sig);
  Cache.flush c;
  Alcotest.(check int) "signature restored" empty_sig (Cache.signature c)

let prop_cache_resident_after_access =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"line resident immediately after access" ~count:200
       QCheck.(small_list (int_range 0 100000))
       (fun addrs ->
         let c = Cache.create (toy_config ()) in
         List.for_all
           (fun addr ->
             ignore (Cache.access c ~addr ~write:false);
             Cache.probe c ~addr)
           addrs))

let prop_cache_occupancy_bounded =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"set occupancy bounded by ways" ~count:100
       QCheck.(small_list (int_range 0 100000))
       (fun addrs ->
         let c = Cache.create (toy_config ~ways:2 ()) in
         List.iter (fun addr -> ignore (Cache.access c ~addr ~write:false)) addrs;
         let ok = ref true in
         for s = 0 to Cache.num_sets c - 1 do
           if List.length (Cache.resident_tags c s) > 2 then ok := false
         done;
         !ok))

(* Collect the count-based candidate buffer into a list for comparison. *)
let stride_observe p ~pc ~addr =
  let n = Prefetch.Stride.observe p ~pc ~addr in
  List.init n (Prefetch.Stride.candidate p)

let stream_observe_miss p ~addr =
  let n = Prefetch.Stream.observe_miss p ~addr in
  List.init n (Prefetch.Stream.candidate p)

let test_stride_prefetcher () =
  let p = Prefetch.Stride.create ~degree:1 () in
  Alcotest.(check (list int)) "first access" [] (stride_observe p ~pc:4 ~addr:1000);
  Alcotest.(check (list int)) "stride set" [] (stride_observe p ~pc:4 ~addr:1064);
  Alcotest.(check (list int)) "confidence 1" [] (stride_observe p ~pc:4 ~addr:1128);
  Alcotest.(check (list int)) "confident" [ 1256 ] (stride_observe p ~pc:4 ~addr:1192);
  (* a stride break resets confidence *)
  Alcotest.(check (list int)) "break" [] (stride_observe p ~pc:4 ~addr:5000)

let test_stride_zero_never_prefetches () =
  let p = Prefetch.Stride.create () in
  for _ = 1 to 10 do
    Alcotest.(check (list int)) "same address" [] (stride_observe p ~pc:8 ~addr:64)
  done

let test_stream_prefetcher () =
  let p = Prefetch.Stream.create ~degree:2 () in
  Alcotest.(check (list int)) "first miss" [] (stream_observe_miss p ~addr:0);
  Alcotest.(check (list int)) "stream detected" [ 128; 192 ]
    (stream_observe_miss p ~addr:64);
  Alcotest.(check (list int)) "stream continues" [ 192; 256 ]
    (stream_observe_miss p ~addr:128)

let test_hierarchy_latencies () =
  let h = Hierarchy.create () in
  let cfg = Hierarchy.config_of h in
  Alcotest.(check int) "cold fetch = l1+l2 miss path"
    (cfg.Hierarchy.lat_l1 + cfg.Hierarchy.lat_mem)
    (Hierarchy.inst_fetch h ~addr:0);
  Alcotest.(check int) "warm fetch = l1 hit" cfg.Hierarchy.lat_l1
    (Hierarchy.inst_fetch h ~addr:8);
  let cold = Hierarchy.data_access h ~pc:0 ~addr:4096 ~write:false in
  Alcotest.(check int) "cold load" (cfg.Hierarchy.lat_l1 + cfg.Hierarchy.lat_mem) cold;
  let warm = Hierarchy.data_access h ~pc:0 ~addr:4096 ~write:false in
  Alcotest.(check int) "warm load" cfg.Hierarchy.lat_l1 warm;
  (* L2 keeps the line after a DL1 eviction-free fill: an il1 fetch of the
     same line hits L2, not DRAM. *)
  Cache.flush (Hierarchy.dl1 h);
  let l2_hit = Hierarchy.data_access h ~pc:0 ~addr:4096 ~write:false in
  Alcotest.(check int) "l2 hit path" (cfg.Hierarchy.lat_l1 + cfg.Hierarchy.lat_l2) l2_hit

let test_hierarchy_stride_effect () =
  let h = Hierarchy.create () in
  (* Walk sequentially by line: after training, later lines should be
     prefetched into DL1, so miss count stays well below line count. *)
  for k = 0 to 63 do
    ignore (Hierarchy.data_access h ~pc:12 ~addr:(k * 64) ~write:false)
  done;
  let misses = Stats.find (Cache.stats (Hierarchy.dl1 h)) "misses" in
  Alcotest.(check bool)
    (Printf.sprintf "prefetcher cut misses (%d < 40)" misses)
    true (misses < 40)

let test_spm_accounting () =
  let spm = Spm.create () in
  let per_reg = Spm.bytes_per_reg spm in
  let full = Spm.push_full_save spm in
  Alcotest.(check int) "full save cycles" ((per_reg * 48 + 63) / 64) full;
  Alcotest.(check int) "depth" 1 (Spm.depth spm);
  let nt = Spm.save_modified spm ~modified:10 in
  Alcotest.(check int) "nt save cycles" ((per_reg * 10 + 63) / 64) nt;
  let restore = Spm.restore spm ~modified_union:12 in
  Alcotest.(check int) "restore cycles" ((per_reg * 12 + 63) / 64) restore;
  Alcotest.(check int) "depth back" 0 (Spm.depth spm);
  Alcotest.(check int) "high water" 1 (Spm.high_water spm);
  Alcotest.(check int) "bytes moved" (per_reg * (48 + 10 + 12))
    (Spm.total_bytes_moved spm)

let test_spm_overflow () =
  let spm = Spm.create ~config:{ Spm.default_config with Spm.max_snapshots = 2 } () in
  ignore (Spm.push_full_save spm);
  ignore (Spm.push_full_save spm);
  Alcotest.check_raises "overflow" Spm.Overflow (fun () ->
      ignore (Spm.push_full_save spm))

let tests =
  [
    Alcotest.test_case "cache miss then hit" `Quick test_cache_miss_then_hit;
    Alcotest.test_case "cache lru" `Quick test_cache_lru;
    Alcotest.test_case "probe nondestructive" `Quick test_cache_probe_nondestructive;
    Alcotest.test_case "prefetch fill" `Quick test_cache_prefetch_fill;
    Alcotest.test_case "flush and signature" `Quick test_cache_flush_and_signature;
    prop_cache_resident_after_access;
    prop_cache_occupancy_bounded;
    Alcotest.test_case "stride prefetcher" `Quick test_stride_prefetcher;
    Alcotest.test_case "stride zero" `Quick test_stride_zero_never_prefetches;
    Alcotest.test_case "stream prefetcher" `Quick test_stream_prefetcher;
    Alcotest.test_case "hierarchy latencies" `Quick test_hierarchy_latencies;
    Alcotest.test_case "hierarchy stride effect" `Quick test_hierarchy_stride_effect;
    Alcotest.test_case "spm accounting" `Quick test_spm_accounting;
    Alcotest.test_case "spm overflow" `Quick test_spm_overflow;
  ]
