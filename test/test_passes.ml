(* Compiler-support passes: automatic secret annotation and nesting
   collapse, plus the ITTAGE predictor and the indirect-jump path. *)

open Sempe_lang.Ast
module Secrecy = Sempe_lang.Secrecy
module Optimize = Sempe_lang.Optimize
module Parser = Sempe_lang.Parser
module Harness = Sempe_workloads.Harness
module Scheme = Sempe_core.Scheme

let unannotated =
  Parser.program
    {|
global s;
global out;
@secret s;

func main() locals(t, k) {
  t = s * 2 + 1;
  if (t > 5) { out = 1; } else { out = 2; }      // tainted, unmarked
  for (k = 0; k < 4; k++) {
    if (k > 2) { out = out + 1; }                // public, stays public
  }
  return out;
}
|}

let count_secret prog =
  List.fold_left
    (fun acc f ->
      block_fold
        (fun acc stmt ->
          match stmt with
          | If { secret = true; _ } -> acc + 1
          | If _ | While _ | For _ | Assign _ | Store _ | Expr _ | Return _ -> acc)
        acc f.body)
    0 prog.funcs

let test_auto_annotate () =
  let violations =
    List.filter
      (function Secrecy.Unmarked_branch _ -> true | _ -> false)
      (Secrecy.analyze unannotated)
  in
  Alcotest.(check int) "one unmarked branch" 1 (List.length violations);
  let fixed = Secrecy.auto_annotate unannotated in
  Alcotest.(check int) "exactly the tainted branch marked" 1 (count_secret fixed);
  let clean =
    List.filter
      (function Secrecy.Unmarked_branch _ -> true | _ -> false)
      (Secrecy.analyze fixed)
  in
  Alcotest.(check int) "clean after annotation" 0 (List.length clean);
  (* annotated program runs correctly and leak-free under SeMPE *)
  List.iter
    (fun s ->
      let built = Harness.build Scheme.Sempe fixed in
      let outcome = Harness.run ~globals:[ ("s", s) ] built in
      let expected = if (s * 2) + 1 > 5 then 1 + 1 else 2 + 1 in
      Alcotest.(check int)
        (Printf.sprintf "result s=%d" s)
        expected
        (Harness.return_value outcome))
    [ 0; 1; 5 ]

let test_auto_annotate_rejects_secret_loop () =
  let bad =
    Parser.program
      {|
global s;
@secret s;
func main() locals(k, t) {
  t = 0;
  for (k = 0; k < s; k++) { t = t + 1; }
  return t;
}
|}
  in
  Alcotest.(check bool) "raises on secret loop" true
    (match Secrecy.auto_annotate bad with
     | _ -> false
     | exception Invalid_argument _ -> true)

let nested_src =
  Parser.program
    {|
global a;
global b;
global r;
@secret a;
@secret b;
func main() {
  @secret if (a != 0) {
    @secret if (b != 0) {
      r = 42;
    }
  }
  return r;
}
|}

let test_collapse () =
  Alcotest.(check int) "nesting before" 2 (Optimize.static_nesting nested_src);
  let collapsed = Optimize.collapse_nesting nested_src in
  Alcotest.(check int) "nesting after" 1 (Optimize.static_nesting collapsed);
  (* same results under SeMPE, with a smaller jbTable footprint *)
  List.iter
    (fun (a, b) ->
      let run prog =
        let built = Harness.build Scheme.Sempe prog in
        let o = Harness.run ~globals:[ ("a", a); ("b", b) ] built in
        (Harness.return_value o, o.Sempe_core.Run.exec.Sempe_core.Exec.max_nesting)
      in
      let r_orig, n_orig = run nested_src in
      let r_coll, n_coll = run collapsed in
      Alcotest.(check int) (Printf.sprintf "same result a=%d b=%d" a b) r_orig r_coll;
      Alcotest.(check bool) "shallower nesting" true (n_coll < n_orig || n_orig <= 1))
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]

let test_collapse_preserves_else () =
  (* An outer else-block must prevent collapsing. *)
  let prog =
    Parser.program
      {|
global a;
global b;
global r;
@secret a;
@secret b;
func main() {
  @secret if (a != 0) {
    @secret if (b != 0) { r = 1; }
  } else { r = 9; }
  return r;
}
|}
  in
  let collapsed = Optimize.collapse_nesting prog in
  Alcotest.(check int) "not collapsed" 2 (Optimize.static_nesting collapsed)

(* ---- ITTAGE ---- *)

let test_ittage_learns_monomorphic () =
  let t = Sempe_bpred.Ittage.create () in
  Alcotest.(check (option int)) "cold" None (Sempe_bpred.Ittage.predict t ~pc:5);
  for _ = 1 to 20 do
    Sempe_bpred.Ittage.update t ~pc:5 ~target:99
  done;
  Alcotest.(check (option int)) "learned" (Some 99)
    (Sempe_bpred.Ittage.predict t ~pc:5)

let test_ittage_history_correlated () =
  (* Target of jump B alternates, correlated with the previous target of
     jump A; with path history ITTAGE disambiguates after warmup. *)
  let t = Sempe_bpred.Ittage.create () in
  let correct = ref 0 and total = ref 0 in
  for round = 1 to 400 do
    let a_target = if round land 1 = 0 then 10 else 20 in
    Sempe_bpred.Ittage.update t ~pc:100 ~target:a_target;
    let b_target = if a_target = 10 then 30 else 40 in
    if round > 200 then begin
      incr total;
      if Sempe_bpred.Ittage.predict t ~pc:200 = Some b_target then incr correct
    end;
    Sempe_bpred.Ittage.update t ~pc:200 ~target:b_target
  done;
  let acc = float_of_int !correct /. float_of_int !total in
  Alcotest.(check bool)
    (Printf.sprintf "correlated targets learned (%.2f)" acc)
    true (acc > 0.8)

let test_ittage_reset () =
  let t = Sempe_bpred.Ittage.create () in
  Sempe_bpred.Ittage.update t ~pc:1 ~target:7;
  let s = Sempe_bpred.Ittage.signature t in
  Sempe_bpred.Ittage.reset t;
  Alcotest.(check bool) "state cleared" true (Sempe_bpred.Ittage.signature t <> s);
  Alcotest.(check (option int)) "cold again" None (Sempe_bpred.Ittage.predict t ~pc:1)

(* ---- indirect jumps end to end ---- *)

let test_jr_executes () =
  let module B = Sempe_isa.Builder in
  (* two-pass build: first discover t1's index, then bake it into li *)
  let build t1_index =
    let b = B.create () in
    B.bind b "entry";
    B.li b 12 t1_index;
    B.jr b 12;
    B.bind b "t0";
    B.li b 10 111;
    B.halt b;
    B.bind b "t1";
    B.li b 10 222;
    B.halt b;
    B.assemble b ~entry:"entry" ~data_words:0
  in
  let t1 = Sempe_isa.Program.find_label (build 0) "t1" in
  let prog = build t1 in
  let config = { Sempe_core.Exec.default_config with Sempe_core.Exec.mem_words = 64 } in
  let res = Sempe_core.Exec.run ~config prog in
  Alcotest.(check int) "landed at computed target" 222 res.Sempe_core.Exec.regs.(10)

let test_jr_timing_learns () =
  (* Repeated monomorphic indirect jumps: ITTAGE removes the redirect after
     warmup, so cycles grow sub-linearly versus a polymorphic target. *)
  let uop target =
    let u = Sempe_pipeline.Uop.make () in
    u.Sempe_pipeline.Uop.pc <- 40;
    u.Sempe_pipeline.Uop.cls <- Sempe_isa.Instr.Cls_jump;
    u.Sempe_pipeline.Uop.ctl <- Sempe_pipeline.Uop.Ctl_indirect;
    u.Sempe_pipeline.Uop.target <- target;
    Sempe_pipeline.Uop.Commit u
  in
  let run targets =
    let t = Sempe_pipeline.Timing.create () in
    List.iter (fun tg -> Sempe_pipeline.Timing.feed t (uop tg)) targets;
    (Sempe_pipeline.Timing.report t).Sempe_pipeline.Timing.cycles
  in
  let mono = run (List.init 300 (fun _ -> 50)) in
  let rng = Sempe_util.Rng.create 5 in
  let poly = run (List.init 300 (fun _ -> 50 + Sempe_util.Rng.int rng 8)) in
  Alcotest.(check bool)
    (Printf.sprintf "monomorphic faster (%d < %d)" mono poly)
    true (mono < poly)

let tests =
  [
    Alcotest.test_case "auto annotate" `Quick test_auto_annotate;
    Alcotest.test_case "auto annotate secret loop" `Quick test_auto_annotate_rejects_secret_loop;
    Alcotest.test_case "collapse nesting" `Quick test_collapse;
    Alcotest.test_case "collapse preserves else" `Quick test_collapse_preserves_else;
    Alcotest.test_case "ittage monomorphic" `Quick test_ittage_learns_monomorphic;
    Alcotest.test_case "ittage history" `Quick test_ittage_history_correlated;
    Alcotest.test_case "ittage reset" `Quick test_ittage_reset;
    Alcotest.test_case "jr executes" `Quick test_jr_executes;
    Alcotest.test_case "jr timing learns" `Quick test_jr_timing_learns;
  ]

(* ---- properties over random programs ---- *)

let prop_auto_annotate_roundtrip =
  (* Strip the annotations from a random program, re-derive them from taint,
     and the result must be analysis-clean and compute reference semantics
     under SeMPE. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"auto_annotate recovers protection" ~count:40
       Test_random_progs.arbitrary_program
       (fun (prog, fill) ->
         let stripped = Sempe_lang.Shadow.strip_secret_marks prog in
         let annotated = Secrecy.auto_annotate stripped in
         let clean =
           List.for_all
             (function
               | Secrecy.Unmarked_branch _ -> false
               | Secrecy.Secret_loop _ | Secrecy.Secret_index _
               | Secrecy.Useless_annotation _ | Secrecy.Potential_exception _ ->
                 true)
             (Secrecy.analyze annotated)
         in
         clean
         && List.for_all
              (fun secrets ->
                let reference =
                  let st = Sempe_lang.Eval.init prog in
                  List.iter (fun (n, v) -> Sempe_lang.Eval.set_global st n v) secrets;
                  Sempe_lang.Eval.set_array st "arr" (Array.of_list fill);
                  Sempe_lang.Eval.run st
                in
                let built = Harness.build Scheme.Sempe annotated in
                let o =
                  Harness.run ~globals:secrets
                    ~arrays:[ ("arr", Array.of_list fill) ]
                    ~mem_words:(1 lsl 14) built
                in
                Harness.return_value o = reference)
              [ [ ("s0", 0); ("s1", 1) ]; [ ("s0", 1); ("s1", 0) ] ]))

let prop_collapse_preserves =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"collapse_nesting preserves semantics" ~count:40
       Test_random_progs.arbitrary_program
       (fun (prog, fill) ->
         let collapsed = Optimize.collapse_nesting prog in
         Optimize.static_nesting collapsed <= Optimize.static_nesting prog
         && List.for_all
              (fun secrets ->
                let run p =
                  let st = Sempe_lang.Eval.init p in
                  List.iter (fun (n, v) -> Sempe_lang.Eval.set_global st n v) secrets;
                  Sempe_lang.Eval.set_array st "arr" (Array.of_list fill);
                  Sempe_lang.Eval.run st
                in
                run prog = run collapsed
                &&
                let built = Harness.build Scheme.Sempe collapsed in
                let o =
                  Harness.run ~globals:secrets
                    ~arrays:[ ("arr", Array.of_list fill) ]
                    ~mem_words:(1 lsl 14) built
                in
                Harness.return_value o = run prog)
              [ [ ("s0", 0); ("s1", 1) ]; [ ("s0", 1); ("s1", 1) ] ]))

let tests = tests @ [ prop_auto_annotate_roundtrip; prop_collapse_preserves ]
