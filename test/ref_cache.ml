(* Reference model: the original record-based set-associative cache,
   kept verbatim from before the packed-array rewrite of
   [lib/mem/cache.ml]. Each line is a heap record with mutable [tag] and
   [lru] fields — slow, but obviously correct and independent of the
   packed layout's index arithmetic. [Test_ref_equiv] drives this and
   the production cache through identical operation streams and requires
   identical outcomes, resident-tag listings, statistics, and state
   signatures. Do not "optimize" this file; its value is that it never
   changed. *)

open Sempe_util

type config = Sempe_mem.Cache.config = {
  name : string;
  size_bytes : int;
  line_bytes : int;
  ways : int;
}

type line = { mutable tag : int; mutable lru : int }
(* tag = -1 encodes invalid. *)

type t = {
  cfg : config;
  sets : line array array;
  line_shift : int;
  set_shift : int;
  mutable clock : int;
  group : Stats.group;
  c_accesses : Stats.counter;
  c_misses : Stats.counter;
  c_writes : Stats.counter;
  c_prefetch_fills : Stats.counter;
  c_evictions : Stats.counter;
}

type outcome = Hit | Miss

let log2_pow2 n =
  if n > 0 && n land (n - 1) = 0 then begin
    let s = ref 0 in
    while 1 lsl !s < n do
      incr s
    done;
    !s
  end
  else -1

let create cfg =
  let lines = cfg.size_bytes / cfg.line_bytes in
  if lines mod cfg.ways <> 0 then
    invalid_arg "Ref_cache.create: lines not divisible by ways";
  let nsets = lines / cfg.ways in
  if nsets land (nsets - 1) <> 0 then
    invalid_arg "Ref_cache.create: sets not a power of two";
  let group = Stats.group cfg.name in
  {
    cfg;
    sets =
      Array.init nsets (fun _ ->
          Array.init cfg.ways (fun _ -> { tag = -1; lru = 0 }));
    line_shift = log2_pow2 cfg.line_bytes;
    set_shift = log2_pow2 nsets;
    clock = 0;
    group;
    c_accesses = Stats.counter group "accesses";
    c_misses = Stats.counter group "misses";
    c_writes = Stats.counter group "writes";
    c_prefetch_fills = Stats.counter group "prefetch_fills";
    c_evictions = Stats.counter group "evictions";
  }

let num_sets t = Array.length t.sets

let line_of t addr =
  if t.line_shift >= 0 then addr lsr t.line_shift else addr / t.cfg.line_bytes

let set_index t ~addr = line_of t addr land (num_sets t - 1)

let tag_of t addr =
  let line = line_of t addr in
  if t.set_shift >= 0 then line lsr t.set_shift else line / num_sets t

let set_of t ~addr = t.sets.(set_index t ~addr)

let mem set tag = Array.exists (fun l -> l.tag = tag) set

let lru_victim set =
  Array.fold_left (fun best l -> if l.lru < best.lru then l else best) set.(0) set

let install t set tag =
  let victim = lru_victim set in
  if victim.tag >= 0 then Stats.incr t.c_evictions;
  victim.tag <- tag;
  t.clock <- t.clock + 1;
  victim.lru <- t.clock

let access t ~addr ~write =
  Stats.incr t.c_accesses;
  if write then Stats.incr t.c_writes;
  let set = set_of t ~addr and tag = tag_of t addr in
  match Array.find_opt (fun l -> l.tag = tag) set with
  | Some line ->
    t.clock <- t.clock + 1;
    line.lru <- t.clock;
    Hit
  | None ->
    Stats.incr t.c_misses;
    install t set tag;
    Miss

let prefetch_fill t ~addr =
  let set = set_of t ~addr and tag = tag_of t addr in
  if mem set tag then false
  else begin
    Stats.incr t.c_prefetch_fills;
    install t set tag;
    true
  end

let probe t ~addr =
  let set = set_of t ~addr and tag = tag_of t addr in
  mem set tag

let resident_tags t set_idx =
  let set = t.sets.(set_idx) in
  let lines = Array.to_list (Array.copy set) in
  let valid = List.filter (fun l -> l.tag >= 0) lines in
  let sorted = List.sort (fun a b -> compare b.lru a.lru) valid in
  List.map (fun l -> l.tag) sorted

let flush t =
  Array.iter
    (fun set ->
      Array.iter
        (fun l ->
          l.tag <- -1;
          l.lru <- 0)
        set)
    t.sets;
  t.clock <- 0

let stats t = t.group

let signature t =
  (* Hashes the per-set LRU ranking alongside the tags; the rank (number
     of strictly more-recent lines in the set) rather than the raw [lru]
     clock keeps the hash independent of access counts. *)
  let acc = ref 2166136261 in
  let mix x = acc := (!acc * 16777619) lxor x in
  Array.iter
    (fun set ->
      let n = Array.length set in
      for i = 0 to n - 1 do
        let l = set.(i) in
        let rank = ref 0 in
        for j = 0 to n - 1 do
          if set.(j).lru > l.lru then incr rank
        done;
        mix (l.tag + 2);
        mix !rank
      done)
    t.sets;
  !acc
