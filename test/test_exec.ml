(* Architectural tests of the SeMPE execution engine on hand-built
   programs: both-path execution, register merge by outcome, nesting,
   backward compatibility, and memory (non-)snapshotting. *)

open Sempe_isa
module Exec = Sempe_core.Exec
module Uop = Sempe_pipeline.Uop

let r10 = 10
let r11 = 11
let r12 = 12

(* if (secret) r10 = 200 else r10 = 100, via a secure branch. *)
let branch_program ~secret =
  let b = Builder.create () in
  Builder.bind b "entry";
  Builder.li b r11 secret;
  Builder.br b ~secure:true Instr.Ne r11 Reg.zero "t_path";
  Builder.li b r10 100;
  Builder.jmp b "join";
  Builder.bind b "t_path";
  Builder.li b r10 200;
  Builder.bind b "join";
  Builder.eosjmp b;
  Builder.halt b;
  Builder.assemble b ~entry:"entry" ~data_words:0

let run ?(support = Exec.Sempe_hw) ?sink prog =
  let config = { Exec.default_config with Exec.support; mem_words = 4096 } in
  Exec.run ~config ?sink prog

let test_both_paths_commit () =
  (* Under SeMPE both path bodies commit: the dynamic instruction count is
     the same for either secret. *)
  let res1 = run (branch_program ~secret:1) in
  let res0 = run (branch_program ~secret:0) in
  Alcotest.(check int) "same dynamic count" res1.Exec.dyn_instrs res0.Exec.dyn_instrs;
  Alcotest.(check int) "taken selects T value" 200 res1.Exec.regs.(r10);
  Alcotest.(check int) "not-taken selects NT value" 100 res0.Exec.regs.(r10);
  Alcotest.(check int) "one sJMP" 1 res1.Exec.dyn_sjmps

let test_legacy_ignores_prefix () =
  (* The same binary on legacy hardware takes only the true path. *)
  let res1 = run ~support:Exec.Legacy (branch_program ~secret:1) in
  let res0 = run ~support:Exec.Legacy (branch_program ~secret:0) in
  Alcotest.(check int) "taken value" 200 res1.Exec.regs.(r10);
  Alcotest.(check int) "not-taken value" 100 res0.Exec.regs.(r10);
  Alcotest.(check bool) "legacy executes fewer instructions"
    true (res1.Exec.dyn_instrs < (run (branch_program ~secret:1)).Exec.dyn_instrs);
  Alcotest.(check int) "no sJMPs on legacy" 0 res1.Exec.dyn_sjmps

let test_pc_trace_secret_independent () =
  (* The committed-PC stream must be identical for both secrets. *)
  let trace secret =
    let pcs = ref [] in
    let sink = function
      | Uop.Commit u -> pcs := u.Uop.pc :: !pcs
      | Uop.Drain _ -> ()
    in
    ignore (run ~sink (branch_program ~secret));
    List.rev !pcs
  in
  Alcotest.(check (list int)) "identical pc traces" (trace 1) (trace 0)

(* Nested secure branches:
   if (a) { r10 += 1; if (b) r11 = 5 else r11 = 6; r12 = r11 * 10 }
   else   { r10 += 2 } *)
let nested_program ~a ~b =
  let bl = Builder.create () in
  Builder.bind bl "entry";
  Builder.li bl 20 a;
  Builder.li bl 21 b;
  Builder.li bl r10 0;
  Builder.li bl r11 0;
  Builder.li bl r12 0;
  Builder.br bl ~secure:true Instr.Ne 20 Reg.zero "a_true";
  (* a false (NT path of outer) *)
  Builder.alui bl Instr.Add r10 r10 2;
  Builder.jmp bl "outer_join";
  Builder.bind bl "a_true";
  Builder.alui bl Instr.Add r10 r10 1;
  Builder.br bl ~secure:true Instr.Ne 21 Reg.zero "b_true";
  Builder.li bl r11 6;
  Builder.jmp bl "inner_join";
  Builder.bind bl "b_true";
  Builder.li bl r11 5;
  Builder.bind bl "inner_join";
  Builder.eosjmp bl;
  Builder.alui bl Instr.Mul r12 r11 10;
  Builder.bind bl "outer_join";
  Builder.eosjmp bl;
  Builder.halt bl;
  Builder.assemble bl ~entry:"entry" ~data_words:0

let expected_nested ~a ~b =
  if a <> 0 then
    if b <> 0 then (1, 5, 50) else (1, 6, 60)
  else (2, 0, 0)

let test_nested () =
  List.iter
    (fun (a, b) ->
      let res = run (nested_program ~a ~b) in
      let e10, e11, e12 = expected_nested ~a ~b in
      let got = (res.Exec.regs.(r10), res.Exec.regs.(r11), res.Exec.regs.(r12)) in
      Alcotest.(check (triple int int int))
        (Printf.sprintf "a=%d b=%d" a b)
        (e10, e11, e12) got;
      let expected_nesting = if a = 0 && b = 0 then 2 else 2 in
      Alcotest.(check int) "max nesting" expected_nesting res.Exec.max_nesting)
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]

let test_nested_trace_independent () =
  let trace a b =
    let pcs = ref [] in
    let sink = function
      | Uop.Commit u -> pcs := u.Uop.pc :: !pcs
      | Uop.Drain _ -> ()
    in
    ignore (run ~sink (nested_program ~a ~b));
    List.rev !pcs
  in
  let t00 = trace 0 0 in
  List.iter
    (fun (a, b) ->
      Alcotest.(check (list int))
        (Printf.sprintf "trace(%d,%d) = trace(0,0)" a b)
        t00 (trace a b))
    [ (0, 1); (1, 0); (1, 1) ]

(* Memory is not snapshotted: a store on the wrong path persists unless the
   program privatizes it. This is the behavior that motivates the
   ShadowMemory pass. *)
let unprivatized_store_program ~secret =
  let b = Builder.create () in
  Builder.bind b "entry";
  Builder.li b r11 secret;
  Builder.li b r10 42;
  Builder.st b r10 Reg.gp 0;
  Builder.br b ~secure:true Instr.Ne r11 Reg.zero "t_path";
  Builder.li b r12 7;
  Builder.st b r12 Reg.gp 0;
  Builder.jmp b "join";
  Builder.bind b "t_path";
  Builder.bind b "join" |> ignore;
  Builder.eosjmp b;
  Builder.ld b r10 Reg.gp 0;
  Builder.halt b;
  Builder.assemble b ~entry:"entry" ~data_words:1

let test_memory_not_snapshotted () =
  (* secret=1: NT path (the wrong path) stores 7; memory keeps it. *)
  let res = run (unprivatized_store_program ~secret:1) in
  Alcotest.(check int) "wrong-path store leaks through" 7 res.Exec.regs.(r10)

let test_eosjmp_outside_region_is_nop () =
  let b = Builder.create () in
  Builder.bind b "entry";
  Builder.li b r10 3;
  Builder.eosjmp b;
  Builder.alui b Instr.Add r10 r10 4;
  Builder.halt b;
  let prog = Builder.assemble b ~entry:"entry" ~data_words:0 in
  let res = run prog in
  Alcotest.(check int) "fell through" 7 res.Exec.regs.(r10)

(* ---- indirect-jump targets honor forgiving_oob ---- *)

(* entry: li r12 <target>; jr r12; t0: li r10 111; halt; t1: li r10 222; halt.
   Built twice: once to learn the layout, then with the wild value baked. *)
let indirect_program target_value =
  let b = Builder.create () in
  Builder.bind b "entry";
  Builder.li b r12 target_value;
  Builder.jr b r12;
  Builder.bind b "t0";
  Builder.li b r10 111;
  Builder.halt b;
  Builder.bind b "t1";
  Builder.li b r10 222;
  Builder.halt b;
  Builder.assemble b ~entry:"entry" ~data_words:0

let test_jr_oob_forgiving () =
  let probe = indirect_program 0 in
  let t1 = Program.find_label probe "t1" in
  let len = Program.length probe in
  (* A wild positive target wraps into the program deterministically. *)
  let res = run (indirect_program (len + t1)) in
  Alcotest.(check int) "positive OOB target wraps mod length" 222 res.Exec.regs.(r10);
  (* So does a wild negative one ((t mod len) + len) mod len). *)
  let res = run (indirect_program (t1 - (3 * len))) in
  Alcotest.(check int) "negative OOB target wraps mod length" 222 res.Exec.regs.(r10)

let test_jr_oob_strict () =
  let probe = indirect_program 0 in
  let len = Program.length probe in
  let wild = len + Program.find_label probe "t1" in
  let config =
    { Exec.default_config with Exec.mem_words = 4096; forgiving_oob = false }
  in
  (* the jr sits at pc 1 (entry: li at 0, jr at 1) *)
  Alcotest.check_raises "strict mode traps on the wild target"
    (Exec.Out_of_bounds { pc = 1; addr = wild })
    (fun () -> ignore (Exec.run ~config (indirect_program wild)))

let test_ret_oob () =
  let build target_value =
    let b = Builder.create () in
    Builder.bind b "entry";
    Builder.li b Reg.ra target_value;
    Builder.ret b;
    Builder.bind b "t0";
    Builder.li b r10 111;
    Builder.halt b;
    Builder.bind b "t1";
    Builder.li b r10 222;
    Builder.halt b;
    Builder.assemble b ~entry:"entry" ~data_words:0
  in
  let probe = build 0 in
  let t1 = Program.find_label probe "t1" in
  let len = Program.length probe in
  let wild = (2 * len) + t1 in
  let res = run (build wild) in
  Alcotest.(check int) "forgiving ret wraps mod length" 222 res.Exec.regs.(r10);
  let config =
    { Exec.default_config with Exec.mem_words = 4096; forgiving_oob = false }
  in
  Alcotest.check_raises "strict ret traps"
    (Exec.Out_of_bounds { pc = 1; addr = wild })
    (fun () -> ignore (Exec.run ~config (build wild)))

(* ---- initial sp points at the last valid word ---- *)

let test_sp_init_no_alias () =
  (* Historically sp started at mem_words — itself out of bounds — so the
     first access through sp was clamped under forgiving mode: stores
     through sp were dropped, loads returned 0, and the clamped cache
     address aliased global data at word 0. Pin the fixed behavior: the
     top-of-stack slot is a real, usable word distinct from word 0. *)
  let mw = 256 in
  let b = Builder.create () in
  Builder.bind b "entry";
  Builder.li b r10 7;
  Builder.st b r10 Reg.sp 0;
  Builder.ld b r11 Reg.gp 0;
  Builder.ld b r12 Reg.sp 0;
  Builder.halt b;
  let prog = Builder.assemble b ~entry:"entry" ~data_words:1 in
  let config = { Exec.default_config with Exec.mem_words = mw } in
  let res = Exec.run ~config ~init_mem:(fun m -> m.(0) <- 42) prog in
  Alcotest.(check int) "sp starts at the last valid word" (mw - 1) res.Exec.regs.(Reg.sp);
  Alcotest.(check int) "store through sp lands in bounds" 7 res.Exec.memory.(mw - 1);
  Alcotest.(check int) "load through sp reads it back (old: dropped to 0)" 7
    res.Exec.regs.(r12);
  Alcotest.(check int) "global word 0 untouched" 42 res.Exec.regs.(r11);
  Alcotest.(check int) "memory image keeps the global" 42 res.Exec.memory.(0)

let test_overflow () =
  (* 31 nested secure branches exceed the 30-entry jbTable. *)
  let b = Builder.create () in
  Builder.bind b "entry";
  Builder.li b r11 1;
  let joins = ref [] in
  for i = 0 to 30 do
    let t = Printf.sprintf "t%d" i and j = Printf.sprintf "j%d" i in
    Builder.br b ~secure:true Instr.Ne r11 Reg.zero t;
    Builder.bind b t;
    joins := j :: !joins
  done;
  List.iter
    (fun j ->
      Builder.bind b j;
      Builder.eosjmp b)
    !joins;
  Builder.halt b;
  let prog = Builder.assemble b ~entry:"entry" ~data_words:0 in
  Alcotest.check_raises "jbTable overflow" Sempe_core.Jbtable.Overflow (fun () ->
      ignore (run prog))

let tests =
  [
    Alcotest.test_case "both paths commit" `Quick test_both_paths_commit;
    Alcotest.test_case "legacy ignores prefix" `Quick test_legacy_ignores_prefix;
    Alcotest.test_case "pc trace secret independent" `Quick test_pc_trace_secret_independent;
    Alcotest.test_case "nested merge" `Quick test_nested;
    Alcotest.test_case "nested trace independent" `Quick test_nested_trace_independent;
    Alcotest.test_case "memory not snapshotted" `Quick test_memory_not_snapshotted;
    Alcotest.test_case "eosjmp outside region" `Quick test_eosjmp_outside_region_is_nop;
    Alcotest.test_case "jr oob forgiving" `Quick test_jr_oob_forgiving;
    Alcotest.test_case "jr oob strict" `Quick test_jr_oob_strict;
    Alcotest.test_case "ret oob" `Quick test_ret_oob;
    Alcotest.test_case "sp init no alias" `Quick test_sp_init_no_alias;
    Alcotest.test_case "jbtable overflow" `Quick test_overflow;
  ]
