(* End-to-end validation of the paper's security claim: under the baseline
   the secret is visible through timing / trace / cache / predictor
   channels; under SeMPE (and the software schemes) every attacker-visible
   channel is silent. *)

module Harness = Sempe_workloads.Harness
module Rsa = Sempe_workloads.Rsa
module Scheme = Sempe_core.Scheme
module Observable = Sempe_security.Observable
module Leakage = Sempe_security.Leakage
module Attacker = Sempe_security.Attacker

let rsa_view scheme ~key =
  let built = Harness.build scheme Rsa.program in
  let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
  let recorder = Observable.recorder () in
  let outcome =
    Harness.run ~globals ~arrays ~observe:(Observable.feed recorder) built
  in
  let expected = Rsa.reference ~key ~base:1234 ~modulus:99991 in
  Alcotest.(check int)
    (Printf.sprintf "%s key=%d result" (Scheme.name scheme) key)
    expected
    (Harness.return_value outcome);
  Observable.view recorder outcome.Sempe_core.Run.timing

let keys = [ 0x0000; 0xffff; 0xa5a5; 0x0001; 0x8000; 0x1234 ]

let views scheme = List.map (fun key -> rsa_view scheme ~key) keys

let test_baseline_leaks () =
  let leaky = Leakage.leaky_channels (views Scheme.Baseline) in
  List.iter
    (fun ch ->
      Alcotest.(check bool)
        (Leakage.channel_name ch ^ " leaks under baseline")
        true (List.mem ch leaky))
    [ Leakage.Timing; Leakage.Trace; Leakage.Bpred; Leakage.Instruction_count ]

let test_protected_schemes_silent () =
  List.iter
    (fun scheme ->
      let leaky = Leakage.leaky_channels (views scheme) in
      Alcotest.(check (list string))
        (Scheme.name scheme ^ " has no leaky channels")
        []
        (List.map Leakage.channel_name leaky))
    [ Scheme.Sempe; Scheme.Cte; Scheme.Raccoon; Scheme.Mto ]

let test_annotated_on_legacy_still_leaks () =
  (* Backward compatibility is explicit about this: the annotated binary on
     a legacy machine runs correctly but without the guarantee. *)
  let leaky = Leakage.leaky_channels (views Scheme.Sempe_on_legacy) in
  Alcotest.(check bool) "legacy run of annotated binary leaks" true
    (leaky <> [])

let test_timing_attack () =
  let run scheme ~key =
    (rsa_view scheme ~key).Observable.cycles
  in
  let sample_keys = [ 0x0000; 0x0101; 0x1111; 0x5555; 0x7777; 0xffff; 0x00ff ] in
  let corr_base =
    Attacker.timing_key_correlation ~run:(run Scheme.Baseline) ~keys:sample_keys
  in
  let corr_sempe =
    Attacker.timing_key_correlation ~run:(run Scheme.Sempe) ~keys:sample_keys
  in
  Alcotest.(check bool)
    (Printf.sprintf "baseline correlation high (%.3f)" corr_base)
    true (corr_base > 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "sempe correlation ~0 (%.3f)" corr_sempe)
    true (Float.abs corr_sempe < 0.05)

let test_bit_recovery () =
  let run scheme ~key = (rsa_view scheme ~key).Observable.cycles in
  (* On the baseline, flipping any key bit perturbs the timing; under SeMPE
     no bit is observable. *)
  let observable scheme =
    List.filter
      (fun bit -> Attacker.recover_bit ~run:(run scheme) ~base_key:0x1234 ~bit)
      [ 0; 3; 7; 11; 15 ]
  in
  Alcotest.(check bool) "baseline exposes key bits" true
    (List.length (observable Scheme.Baseline) >= 4);
  Alcotest.(check (list int)) "sempe exposes no key bits" [] (observable Scheme.Sempe)

let test_prime_and_probe_unit () =
  (* Attacker primes one set; a victim touching a conflicting line evicts
     the attacker's line in a 1-way cache. *)
  let cache =
    Sempe_mem.Cache.create
      { Sempe_mem.Cache.name = "toy"; size_bytes = 1024; line_bytes = 64; ways = 1 }
  in
  let nsets = Sempe_mem.Cache.num_sets cache in
  let prime = [ 0; 64 ] in
  let victim () =
    ignore (Sempe_mem.Cache.access cache ~addr:(nsets * 64) ~write:false)
  in
  let evicted = Attacker.prime_and_probe cache ~prime ~victim in
  Alcotest.(check bool) "conflicting set evicted" true evicted.(0);
  Alcotest.(check bool) "other set intact" false evicted.(1)

let tests =
  [
    Alcotest.test_case "baseline leaks" `Quick test_baseline_leaks;
    Alcotest.test_case "protected schemes silent" `Quick test_protected_schemes_silent;
    Alcotest.test_case "annotated-on-legacy leaks" `Quick test_annotated_on_legacy_still_leaks;
    Alcotest.test_case "timing attack correlation" `Quick test_timing_attack;
    Alcotest.test_case "key bit recovery" `Quick test_bit_recovery;
    Alcotest.test_case "prime and probe" `Quick test_prime_and_probe_unit;
  ]

(* ---- co-resident prime+probe (threat model section III) ---- *)

let test_coresident_prime_probe () =
  let trace scheme key =
    let built = Harness.build scheme Rsa.program in
    let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
    let layout = built.Sempe_workloads.Harness.layout in
    let init_mem mem =
      List.iter
        (fun (name, value) ->
          mem.(Sempe_lang.Codegen.scalar_offset layout name) <- value)
        globals;
      List.iter
        (fun (name, values) ->
          let off, _ = Sempe_lang.Codegen.array_slice layout name in
          Array.blit values 0 mem off (Array.length values))
        arrays
    in
    Sempe_security.Coresident.prime_probe_trace
      ~support:(Scheme.support scheme)
      ~prog:built.Sempe_workloads.Harness.prog ~init_mem ()
  in
  let d scheme =
    Sempe_security.Coresident.distance (trace scheme 0x0000) (trace scheme 0xffff)
  in
  let d_base = d Scheme.Baseline in
  let d_sempe = d Scheme.Sempe in
  Alcotest.(check bool)
    (Printf.sprintf "baseline eviction patterns differ (distance %d)" d_base)
    true (d_base > 0);
  Alcotest.(check int) "sempe eviction patterns identical" 0 d_sempe

let tests = tests @ [ Alcotest.test_case "coresident prime+probe" `Quick test_coresident_prime_probe ]

(* ---- the manual alternative: a hand-written constant-time ladder ---- *)

let ladder_view ~key =
  let built = Harness.build Scheme.Baseline Rsa.ct_program in
  let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
  let recorder = Observable.recorder () in
  let outcome =
    Harness.run ~globals ~arrays ~observe:(Observable.feed recorder) built
  in
  let expected = Rsa.reference ~key ~base:1234 ~modulus:99991 in
  Alcotest.(check int)
    (Printf.sprintf "ladder key=%d result" key)
    expected
    (Harness.return_value outcome);
  Observable.view recorder outcome.Sempe_core.Run.timing

let test_ct_ladder_silent_on_plain_hw () =
  let views = List.map (fun key -> ladder_view ~key) keys in
  Alcotest.(check (list string)) "ladder has no leaky channels" []
    (List.map Leakage.channel_name (Leakage.leaky_channels views))

let test_sempe_vs_manual_ct_cost () =
  (* The paper's pitch: SeMPE gives the protection without rewriting the
     routine. Both protected versions must be within a small factor of
     each other, and both slower than the leaky original. *)
  let cycles scheme prog ~key =
    let built = Harness.build scheme prog in
    let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
    Sempe_core.Run.cycles (Harness.run ~globals ~arrays built)
  in
  let naive = cycles Scheme.Baseline Rsa.program ~key:0xa5a5 in
  let sempe = cycles Scheme.Sempe Rsa.program ~key:0xa5a5 in
  let ladder = cycles Scheme.Baseline Rsa.ct_program ~key:0xa5a5 in
  let ratio = float_of_int ladder /. float_of_int naive in
  Alcotest.(check bool)
    (Printf.sprintf "sane cost ordering (naive=%d ladder=%d sempe=%d)" naive
       ladder sempe)
    true
    (sempe > naive && ratio > 0.5 && ratio < 4.0)

let tests =
  tests
  @ [
      Alcotest.test_case "ct ladder silent on plain hw" `Quick
        test_ct_ladder_silent_on_plain_hw;
      Alcotest.test_case "sempe vs manual ct cost" `Quick test_sempe_vs_manual_ct_cost;
    ]

(* ---- leakage attribution: witness streams and the diff engine ---- *)

module Witness = Sempe_security.Witness
module Attribution = Sempe_security.Attribution
module Sink = Sempe_obs.Sink
module Gen = Sempe_fuzz.Gen

let zero_view : Observable.view =
  {
    Observable.cycles = 0;
    instructions = 0;
    pc_digest = 0;
    pc_digest2 = 0;
    addr_digest = 0;
    addr_digest2 = 0;
    mem_ops = 0;
    il1_sig = 0;
    dl1_sig = 0;
    l2_sig = 0;
    bpred_sig = 0;
    il1_accesses = 0;
    il1_misses = 0;
    dl1_accesses = 0;
    dl1_misses = 0;
    l2_accesses = 0;
    l2_misses = 0;
    mispredicts = 0;
  }

let test_extract_collision_caught () =
  (* Regression for the old single-int channel comparison: two runs whose
     committed-PC streams differ but whose primary digest collides. The
     scalar [extract] projection cannot tell them apart; [fingerprint]
     (what [compare_views] now uses) must. *)
  let v1 =
    { zero_view with Observable.pc_digest = 42; pc_digest2 = 1; instructions = 10 }
  in
  let v2 =
    { zero_view with Observable.pc_digest = 42; pc_digest2 = 2; instructions = 10 }
  in
  Alcotest.(check int) "single-int projection collides"
    (Leakage.extract Leakage.Trace v1)
    (Leakage.extract Leakage.Trace v2);
  Alcotest.(check bool) "fingerprint distinguishes" true
    (Leakage.fingerprint Leakage.Trace v1 <> Leakage.fingerprint Leakage.Trace v2);
  let f =
    List.find
      (fun f -> f.Leakage.channel = Leakage.Trace)
      (Leakage.compare_views [ v1; v2 ])
  in
  Alcotest.(check bool) "trace channel reported leaky" true (Leakage.leaks f)

let test_channel_name_round_trip () =
  List.iter
    (fun ch ->
      Alcotest.(check bool)
        (Leakage.channel_name ch ^ " round-trips")
        true
        (Leakage.channel_of_name (Leakage.channel_name ch) = Some ch))
    Leakage.channels;
  Alcotest.(check bool) "unknown channel name rejected" true
    (Leakage.channel_of_name "bogus" = None)

let rsa_witness scheme ~key =
  let built = Harness.build scheme Rsa.program in
  let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
  let recorder = Observable.recorder () in
  let w = Witness.create () in
  let outcome =
    Harness.run ~globals ~arrays
      ~observe:(Observable.feed recorder)
      ~sink:(Sink.of_probe (Witness.probe w))
      built
  in
  (Observable.view recorder outcome.Sempe_core.Run.timing, w)

let test_first_divergence_indices () =
  let wkeys = [ 0x0000; 0xffff ] in
  let pairs scheme = List.map (fun key -> rsa_witness scheme ~key) wkeys in
  let base = pairs Scheme.Baseline in
  let findings =
    Leakage.compare_views ~witnesses:(List.map snd base) (List.map fst base)
  in
  List.iter
    (fun f ->
      if Leakage.leaks f then
        match f.Leakage.first_divergence with
        | None ->
          Alcotest.failf "%s leaks but carries no first-divergence index"
            (Leakage.channel_name f.Leakage.channel)
        | Some i ->
          Alcotest.(check bool)
            (Leakage.channel_name f.Leakage.channel ^ " index sane")
            true (i >= 0))
    findings;
  (* the finding's index is exactly the witness-level stream diff *)
  let w0 = snd (List.nth base 0) and w1 = snd (List.nth base 1) in
  let trace_f =
    List.find (fun f -> f.Leakage.channel = Leakage.Trace) findings
  in
  Alcotest.(check (option int)) "trace index matches Witness.first_divergence"
    (Witness.first_divergence w0 w1 Witness.Trace)
    trace_f.Leakage.first_divergence;
  (* under SeMPE every stream agrees, so no channel carries an index *)
  let se = pairs Scheme.Sempe in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Leakage.channel_name f.Leakage.channel ^ " silent under sempe")
        true
        ((not (Leakage.leaks f)) && f.Leakage.first_divergence = None))
    (Leakage.compare_views ~witnesses:(List.map snd se) (List.map fst se))

let test_attribution_needs_two_witnesses () =
  Alcotest.check_raises "one witness rejected"
    (Invalid_argument
       "Attribution.attribute: need at least 2 witnesses to compare")
    (fun () -> ignore (Attribution.attribute [ Witness.create () ]))

(* The leakage-stack invariant, property-tested over random programs: on
   every channel the per-structure and per-PC buckets each sum exactly to
   the divergent-event count, and a clean SeMPE attribution stays clean. *)
let test_attribution_stack_sums () =
  let sum l = List.fold_left (fun a (_, n) -> a + n) 0 l in
  let check_sums name (attr : Attribution.t) =
    List.iter
      (fun (cr : Attribution.channel_report) ->
        Alcotest.(check int)
          (Printf.sprintf "%s: %s structure stack sums to divergent" name
             (Witness.stream_name cr.Attribution.cr_stream))
          cr.Attribution.cr_divergent
          (sum cr.Attribution.cr_stack);
        Alcotest.(check int)
          (Printf.sprintf "%s: %s pc stack sums to divergent" name
             (Witness.stream_name cr.Attribution.cr_stream))
          cr.Attribution.cr_divergent
          (sum cr.Attribution.cr_pcs))
      attr.Attribution.by_channel;
    Alcotest.(check int) (name ^ ": total is the channel sum")
      (List.fold_left
         (fun a (cr : Attribution.channel_report) ->
           a + cr.Attribution.cr_divergent)
         0 attr.Attribution.by_channel)
      (Attribution.total_divergent attr)
  in
  for seed = 1 to 6 do
    let case = Gen.generate seed in
    List.iter
      (fun scheme ->
        let built = Harness.build scheme case.Gen.prog in
        let witnesses =
          List.map
            (fun secrets ->
              let w = Witness.create () in
              ignore
                (Harness.run ~mem_words:16384 ~globals:secrets
                   ~arrays:[ (Gen.array_name, case.Gen.fill) ]
                   ~sink:(Sink.of_probe (Witness.probe w))
                   built);
              w)
            case.Gen.secrets
        in
        let attr = Attribution.attribute witnesses in
        check_sums (Printf.sprintf "seed %d %s" seed (Scheme.name scheme)) attr;
        if scheme = Scheme.Sempe then
          Alcotest.(check bool)
            (Printf.sprintf "seed %d sempe attribution clean" seed)
            true (Attribution.is_clean attr))
      [ Scheme.Baseline; Scheme.Sempe ]
  done

let tests =
  tests
  @ [
      Alcotest.test_case "extract collision caught by fingerprint" `Quick
        test_extract_collision_caught;
      Alcotest.test_case "channel names round-trip" `Quick
        test_channel_name_round_trip;
      Alcotest.test_case "findings carry first-divergence indices" `Quick
        test_first_divergence_indices;
      Alcotest.test_case "attribution needs two witnesses" `Quick
        test_attribution_needs_two_witnesses;
      Alcotest.test_case "leakage stack sums by construction" `Quick
        test_attribution_stack_sums;
    ]
