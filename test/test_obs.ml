(* Tests of the observability layer: the CPI stall-stack invariant (every
   cycle attributed to exactly one bucket), null-sink identity (attaching
   no sink and attaching Sink.null produce the same report), the bounded
   counter registry, the per-PC profile's exact aggregate cross-checks
   against the run report, and the structure of the emitted Perfetto /
   JSON-lines traces (parsed back with a small JSON reader). *)

module Run = Sempe_core.Run
module Scheme = Sempe_core.Scheme
module Timing = Sempe_pipeline.Timing
module Stall = Sempe_pipeline.Stall
module Harness = Sempe_workloads.Harness
module Rsa = Sempe_workloads.Rsa
module MB = Sempe_workloads.Microbench
module Kernels = Sempe_workloads.Kernels
module Stats = Sempe_util.Stats
module Json = Sempe_obs.Json
module Counters = Sempe_obs.Counters
module Profile = Sempe_obs.Profile
module Sink = Sempe_obs.Sink
module Report = Sempe_obs.Report

let qtest = QCheck_alcotest.to_alcotest

let stall_sum (r : Timing.report) =
  Array.fold_left ( + ) 0 r.Timing.stall_stack

let rsa_outcome ?sink scheme =
  let built = Harness.build scheme Rsa.program in
  let globals, arrays = Rsa.inputs ~key:0x1234 ~base:1234 ~modulus:99991 in
  Harness.run ~globals ~arrays ?sink built

let fib_outcome ?sink ?(width = 3) scheme =
  let spec = { MB.kernel = Kernels.fibonacci; width; iters = 1 } in
  let built = Harness.build scheme (MB.program ~ct:false spec) in
  Harness.run ~globals:(MB.secrets_for_leaf ~width ~leaf:1) ?sink built

(* ---- stall stack ---- *)

let test_stall_stack_sums () =
  List.iter
    (fun scheme ->
      let r = (rsa_outcome scheme).Run.timing in
      Alcotest.(check int)
        (Printf.sprintf "rsa %s: buckets sum to cycles" (Scheme.name scheme))
        r.Timing.cycles (stall_sum r))
    [ Scheme.Baseline; Scheme.Sempe; Scheme.Cte ];
  let r = (fib_outcome Scheme.Sempe).Run.timing in
  Alcotest.(check int) "fib sempe: buckets sum to cycles" r.Timing.cycles
    (stall_sum r)

let test_stall_stack_drain_bucket () =
  (* SeMPE drains + SPM transfers exist, so the drain bucket must be
     charged; the baseline has no secure branches, so it must not be. *)
  let sempe = (rsa_outcome Scheme.Sempe).Run.timing in
  let base = (rsa_outcome Scheme.Baseline).Run.timing in
  let drain r = r.Timing.stall_stack.(Stall.index Stall.Drain) in
  Alcotest.(check bool) "sempe charges drain cycles" true (drain sempe > 0);
  Alcotest.(check int) "baseline has no drain cycles" 0 (drain base)

let test_stall_stack_render () =
  let r = (rsa_outcome Scheme.Sempe).Run.timing in
  let s = Report.render_stall_stack r in
  Alcotest.(check bool) "mentions total" true
    (String.length s > 0
    && Stall.all
       |> List.exists (fun b ->
              r.Timing.stall_stack.(Stall.index b) > 0
              &&
              (* every charged bucket appears by name *)
              let name = Stall.name b in
              let rec find i =
                i + String.length name <= String.length s
                && (String.sub s i (String.length name) = name || find (i + 1))
              in
              find 0))

(* ---- null-sink identity ---- *)

let test_null_sink_identity () =
  let plain = (rsa_outcome Scheme.Sempe).Run.timing in
  let nulled = (rsa_outcome ~sink:Sink.null Scheme.Sempe).Run.timing in
  Alcotest.(check bool) "reports identical" true (plain = nulled)

(* ---- counters ---- *)

let test_counters_exact () =
  let c = Counters.create ~capacity:4 in
  List.iter (fun k -> Counters.add c ~key:k k) [ 10; 20; 30 ];
  Counters.incr c ~key:20;
  Alcotest.(check bool) "exact while under capacity" true (Counters.exact c);
  Alcotest.(check int) "count 20" 21 (Counters.count c ~key:20);
  Alcotest.(check int) "count absent" 0 (Counters.count c ~key:99);
  Alcotest.(check int) "cardinality" 3 (Counters.cardinality c);
  Alcotest.(check int) "total" 61 (Counters.total c);
  Alcotest.(check (list (pair int int))) "top order"
    [ (30, 30); (20, 21); (10, 10) ] (Counters.top c);
  Alcotest.(check (list (pair int int))) "top n" [ (30, 30) ]
    (Counters.top ~n:1 c)

let test_counters_eviction () =
  let c = Counters.create ~capacity:2 in
  Counters.add c ~key:1 100;
  Counters.add c ~key:2 5;
  (* key 3 evicts the minimum (key 2, count 5) and inherits 5 + 7 *)
  Counters.add c ~key:3 7;
  Alcotest.(check bool) "no longer exact" false (Counters.exact c);
  Alcotest.(check int) "evictions" 1 (Counters.evictions c);
  Alcotest.(check int) "cardinality bounded" 2 (Counters.cardinality c);
  Alcotest.(check int) "evicted key gone" 0 (Counters.count c ~key:2);
  Alcotest.(check int) "newcomer inherits min" 12 (Counters.count c ~key:3);
  Alcotest.(check int) "heavy hitter survives" 100 (Counters.count c ~key:1);
  (* total stays the exact sum of weights regardless of evictions *)
  Alcotest.(check int) "total exact" 112 (Counters.total c)

let test_counters_invalid () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Counters.create: capacity must be >= 1") (fun () ->
      ignore (Counters.create ~capacity:0))

let prop_counters_total_exact =
  QCheck.Test.make ~name:"counters total is exact under eviction" ~count:300
    QCheck.(list (pair (int_bound 20) (int_bound 50)))
    (fun adds ->
      let c = Counters.create ~capacity:3 in
      List.iter (fun (k, w) -> Counters.add c ~key:k w) adds;
      Counters.total c = List.fold_left (fun acc (_, w) -> acc + w) 0 adds
      && Counters.cardinality c <= 3)

(* ---- profile cross-checks ---- *)

let test_profile_crosschecks () =
  let p = Profile.create () in
  let r =
    (rsa_outcome ~sink:(Sink.of_probe (Profile.probe p)) Scheme.Sempe)
      .Run.timing
  in
  Alcotest.(check int) "uop events = instructions" r.Timing.instructions
    (Profile.uops p);
  Alcotest.(check int) "drain events = drains" r.Timing.drains
    (Profile.drains p);
  Alcotest.(check int) "mispredict total matches report" r.Timing.mispredicts
    (Counters.total (Profile.branch_mispredicts p));
  (* the report's DL1 misses also count stores; the profile only tracks
     loads, so it is a positive lower bound *)
  let load_misses = Counters.total (Profile.load_misses p) in
  Alcotest.(check bool) "load-miss total bounded by dl1 misses" true
    (load_misses > 0 && load_misses <= r.Timing.dl1_misses);
  Alcotest.(check int) "spm-cycle total matches report" r.Timing.spm_cycles
    (Counters.total (Profile.sjmp_spm_cycles p));
  let rendered = Profile.render p in
  Alcotest.(check bool) "render non-empty" true (String.length rendered > 0)

(* ---- a small JSON reader for structural trace validation ---- *)

exception Parse of string

let parse_json (s : string) : Json.t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then raise (Parse "eof");
    let c = s.[!pos] in
    incr pos;
    c
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    let got = next () in
    if got <> c then raise (Parse (Printf.sprintf "expected %c, got %c" c got))
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' -> (
        (match next () with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          let hex = String.init 4 (fun _ -> next ()) in
          Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff))
        | c -> raise (Parse (Printf.sprintf "bad escape %c" c)));
        go ())
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num c | None -> false) do
      incr pos
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Json.Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Json.Float f
      | None -> raise (Parse (Printf.sprintf "bad number %S" text)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      expect '{';
      skip_ws ();
      if peek () = Some '}' then (expect '}'; Json.Obj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> members ((k, v) :: acc)
          | '}' -> Json.Obj (List.rev ((k, v) :: acc))
          | c -> raise (Parse (Printf.sprintf "bad object sep %c" c))
        in
        members []
    | Some '[' ->
      expect '[';
      skip_ws ();
      if peek () = Some ']' then (expect ']'; Json.List [])
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> elements (v :: acc)
          | ']' -> Json.List (List.rev (v :: acc))
          | c -> raise (Parse (Printf.sprintf "bad list sep %c" c))
        in
        elements []
    | Some '"' -> Json.Str (parse_string ())
    | Some 't' -> literal "true" (Json.Bool true)
    | Some 'f' -> literal "false" (Json.Bool false)
    | Some 'n' -> literal "null" Json.Null
    | Some _ -> parse_number ()
    | None -> raise (Parse "eof")
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Parse "trailing garbage");
  v

let prop_json_roundtrip =
  (* our reader must invert our writer, so structural trace checks are
     trustworthy *)
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self k ->
          let leaf =
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) int;
                map (fun s -> Json.Str s) (string_size ~gen:printable (int_bound 10));
              ]
          in
          if k = 0 then leaf
          else
            oneof
              [
                leaf;
                map (fun l -> Json.List l) (list_size (int_bound 4) (self (k / 2)));
                map
                  (fun kvs -> Json.Obj kvs)
                  (list_size (int_bound 4)
                     (pair (string_size ~gen:printable (int_bound 6)) (self (k / 2))));
              ]))
  in
  QCheck.Test.make ~name:"json writer/reader round trip" ~count:300
    (QCheck.make gen) (fun j ->
      (* object keys may repeat in the generator; member lookup order is
         preserved by both sides, so structural equality still holds *)
      parse_json (Json.to_string j) = j)

(* ---- trace sinks ---- *)

let with_temp_file f =
  let path = Filename.temp_file "sempe-test-trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let member_exn name k j =
  match Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "%s: missing member %S" name k

let test_perfetto_trace_structure () =
  with_temp_file @@ fun path ->
  let r =
    let oc = open_out path in
    let sink = Sink.perfetto oc in
    let outcome = fib_outcome ~sink ~width:1 Scheme.Sempe in
    sink.Sink.close ();
    close_out oc;
    outcome.Run.timing
  in
  let doc = parse_json (read_file path) in
  let events =
    match member_exn "trace" "traceEvents" doc with
    | Json.List evs -> evs
    | _ -> Alcotest.fail "traceEvents is not a list"
  in
  Alcotest.(check bool) "displayTimeUnit present" true
    (Json.member "displayTimeUnit" doc <> None);
  let slices = ref 0 and stage_tids = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let str k = member_exn "event" k ev in
      match str "ph" with
      | Json.Str "M" -> (
        (* metadata: process_name / thread_name *)
        match member_exn "metadata" "name" ev with
        | Json.Str ("process_name" | "thread_name") -> ()
        | _ -> Alcotest.fail "unexpected metadata event")
      | Json.Str "X" -> (
        incr slices;
        (match (str "ts", member_exn "slice" "dur" ev) with
        | Json.Int ts, Json.Int dur ->
          if ts < 0 || dur < 0 then Alcotest.fail "negative ts/dur"
        | _ -> Alcotest.fail "non-integer ts/dur");
        (match str "name" with
        | Json.Str _ -> ()
        | _ -> Alcotest.fail "slice without name");
        match str "tid" with
        | Json.Int tid -> Hashtbl.replace stage_tids tid ()
        | _ -> Alcotest.fail "slice without tid")
      | _ -> Alcotest.fail "unexpected phase")
    events;
  (* four pipeline-stage slices per committed instruction, plus one slice
     per drain on the drain track *)
  Alcotest.(check int) "4 slices per instruction + drains"
    ((4 * r.Timing.instructions) + r.Timing.drains)
    !slices;
  List.iter
    (fun tid ->
      Alcotest.(check bool)
        (Printf.sprintf "tid %d used" tid)
        true (Hashtbl.mem stage_tids tid))
    [ 1; 2; 3; 4 ]

let test_jsonl_trace_structure () =
  with_temp_file @@ fun path ->
  let r =
    let oc = open_out path in
    let sink = Sink.jsonl oc in
    let outcome = fib_outcome ~sink ~width:1 Scheme.Sempe in
    sink.Sink.close ();
    close_out oc;
    outcome.Run.timing
  in
  let lines =
    read_file path |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one record per uop + drain"
    (r.Timing.instructions + r.Timing.drains)
    (List.length lines);
  List.iter
    (fun line ->
      let j = parse_json line in
      match member_exn "record" "type" j with
      | Json.Str "uop" ->
        List.iter
          (fun k -> ignore (member_exn "uop record" k j))
          [ "pc"; "cls"; "fetch"; "dispatch"; "issue"; "complete"; "commit";
            "bucket"; "attributed" ]
      | Json.Str "drain" ->
        List.iter
          (fun k -> ignore (member_exn "drain record" k j))
          [ "reason"; "spm_cycles"; "start"; "resume" ]
      | _ -> Alcotest.fail "unknown record type")
    lines

let test_tee_sink () =
  let p1 = Profile.create () and p2 = Profile.create () in
  let sink =
    Sink.tee (Sink.of_probe (Profile.probe p1)) (Sink.of_probe (Profile.probe p2))
  in
  let r = (fib_outcome ~sink ~width:1 Scheme.Sempe).Run.timing in
  Alcotest.(check int) "left sees all uops" r.Timing.instructions (Profile.uops p1);
  Alcotest.(check int) "right sees all uops" r.Timing.instructions (Profile.uops p2)

(* ---- report JSON ---- *)

let test_report_json () =
  let r = (rsa_outcome Scheme.Sempe).Run.timing in
  let j = Report.to_json r in
  (* round-trip through the emitter: the document must stay parseable and
     carry the headline counters *)
  let j' = parse_json (Json.to_string j) in
  (match member_exn "report" "cycles" j' with
  | Json.Int c -> Alcotest.(check int) "cycles" r.Timing.cycles c
  | _ -> Alcotest.fail "cycles not an int");
  match member_exn "report" "stall_stack" j' with
  | Json.Obj kvs ->
    let total =
      List.fold_left
        (fun acc (_, v) -> match v with Json.Int i -> acc + i | _ -> acc)
        0 kvs
    in
    Alcotest.(check int) "json stall stack sums to cycles" r.Timing.cycles total
  | _ -> Alcotest.fail "stall_stack not an object"

(* ---- random programs: stall stack + cache counter self-consistency ---- *)

let prop_report_self_consistent =
  QCheck.Test.make ~name:"report stall stack and cache counters consistent"
    ~count:40 Test_random_progs.arbitrary_program (fun (prog, fill) ->
      let secrets = List.hd Test_random_progs.secret_assignments in
      List.for_all
        (fun scheme ->
          let built = Harness.build scheme prog in
          let outcome =
            Harness.run ~globals:secrets
              ~arrays:[ ("arr", Array.of_list fill) ]
              ~mem_words:(1 lsl 14) built
          in
          let r = outcome.Run.timing in
          let cache_ok accesses misses rate =
            misses >= 0 && misses <= accesses
            && rate = Stats.ratio ~num:misses ~den:accesses
            && rate >= 0.0 && rate <= 1.0
          in
          stall_sum r = r.Timing.cycles
          && Array.for_all (fun c -> c >= 0) r.Timing.stall_stack
          && cache_ok r.Timing.il1_accesses r.Timing.il1_misses
               r.Timing.il1_miss_rate
          && cache_ok r.Timing.dl1_accesses r.Timing.dl1_misses
               r.Timing.dl1_miss_rate
          && cache_ok r.Timing.l2_accesses r.Timing.l2_misses
               r.Timing.l2_miss_rate)
        [ Scheme.Baseline; Scheme.Sempe ])

(* ---- strict reader (untrusted input) ---- *)

let strict_fails ?max_depth ?max_string ?max_bytes ~needle src =
  match Json.of_string_strict ?max_depth ?max_string ?max_bytes src with
  | _ -> Alcotest.fail (Printf.sprintf "accepted %S" src)
  | exception Json.Parse_error { message; _ } ->
    let contains hay =
      let n = String.length needle in
      let rec go i =
        i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "%S error mentions %S (got %S)" src needle message)
      true (contains message)

let test_strict_depth () =
  let deep n = String.make n '[' ^ String.make n ']' in
  (* the default reader takes it; the strict one draws the line *)
  Alcotest.(check bool) "default reader accepts depth 80" true
    (Json.of_string (deep 80) <> Json.Null);
  strict_fails ~max_depth:64 ~needle:"nesting" (deep 80);
  strict_fails ~max_depth:8 ~needle:"nesting"
    "{\"a\":{\"b\":{\"c\":{\"d\":{\"e\":{\"f\":{\"g\":{\"h\":{\"i\":1}}}}}}}}}";
  (* at the limit is fine *)
  Alcotest.(check bool) "depth just under the cap parses" true
    (Json.of_string_strict ~max_depth:64 (deep 63) <> Json.Null)

let test_strict_string_and_bytes () =
  let long = "\"" ^ String.make 100 'x' ^ "\"" in
  strict_fails ~max_string:50 ~needle:"longer" long;
  Alcotest.(check bool) "under the string cap parses" true
    (Json.of_string_strict ~max_string:100 long = Json.Str (String.make 100 'x'));
  strict_fails ~max_bytes:10 ~needle:"limit" "[1,2,3,4,5,6,7,8]"

let test_strict_truncation () =
  (* Truncated frames must fail with a message that says so, at every
     prefix of a valid document. *)
  let doc = "{\"a\":[1,true,\"xy\"],\"b\":null}" in
  Alcotest.(check bool) "whole document parses" true
    (Json.of_string_strict doc <> Json.Null);
  for len = 1 to String.length doc - 1 do
    let prefix = String.sub doc 0 len in
    match Json.of_string_strict prefix with
    | _ -> Alcotest.fail (Printf.sprintf "accepted prefix %S" prefix)
    | exception Json.Parse_error _ -> ()
  done;
  strict_fails ~needle:"truncated" "{\"a\": [1,";
  strict_fails ~needle:"truncated" "\"unterminated"

let prop_strict_total =
  (* Malformed frames from an untrusted peer: the strict reader either
     parses or raises Parse_error — never loops, overflows the stack or
     leaks another exception. *)
  QCheck.Test.make ~name:"strict reader total on arbitrary bytes" ~count:500
    QCheck.(string_of_size (Gen.int_bound 200))
    (fun s ->
      match
        Json.of_string_strict ~max_depth:16 ~max_string:64 ~max_bytes:256 s
      with
      | _ -> true
      | exception Json.Parse_error _ -> true
      | exception _ -> false)

let test_strict_agrees_with_default () =
  List.iter
    (fun src ->
      Alcotest.(check bool)
        (Printf.sprintf "strict = default on %S" src)
        true
        (Json.of_string_strict src = Json.of_string src))
    [
      "null"; "true"; "[1,2.5,\"x\"]"; "{\"a\":{\"b\":[]},\"c\":\"\\u0041\"}";
      "-12"; "[[[[1]]]]";
    ]

let tests =
  [
    Alcotest.test_case "stall stack sums to cycles" `Quick test_stall_stack_sums;
    Alcotest.test_case "drain bucket charged only under SeMPE" `Quick
      test_stall_stack_drain_bucket;
    Alcotest.test_case "stall stack render" `Quick test_stall_stack_render;
    Alcotest.test_case "null sink identity" `Quick test_null_sink_identity;
    Alcotest.test_case "counters exact" `Quick test_counters_exact;
    Alcotest.test_case "counters eviction" `Quick test_counters_eviction;
    Alcotest.test_case "counters invalid" `Quick test_counters_invalid;
    qtest prop_counters_total_exact;
    Alcotest.test_case "profile cross-checks" `Quick test_profile_crosschecks;
    qtest prop_json_roundtrip;
    Alcotest.test_case "perfetto trace structure" `Quick
      test_perfetto_trace_structure;
    Alcotest.test_case "jsonl trace structure" `Quick test_jsonl_trace_structure;
    Alcotest.test_case "tee sink" `Quick test_tee_sink;
    Alcotest.test_case "report json" `Quick test_report_json;
    qtest prop_report_self_consistent;
    Alcotest.test_case "strict reader: nesting depth" `Quick test_strict_depth;
    Alcotest.test_case "strict reader: string and payload caps" `Quick
      test_strict_string_and_bytes;
    Alcotest.test_case "strict reader: truncation" `Quick test_strict_truncation;
    qtest prop_strict_total;
    Alcotest.test_case "strict reader agrees with default" `Quick
      test_strict_agrees_with_default;
  ]
