(* Reference model: the original record-based TAGE, kept verbatim from
   before the packed-array rewrite of [lib/bpred/tage.ml]. Tagged
   components are arrays of entry records and each folded-history
   register is its own mutable record updated by a generic
   [folded_update] — slow, but structurally close to Seznec's paper and
   independent of the packed layout's inlined fold arithmetic.
   [Test_ref_equiv] drives this and the production TAGE through
   identical branch streams and requires identical predictions and
   state signatures at every step. Do not "optimize" this file; its
   value is that it never changed. *)

module Counters = Sempe_bpred.Counters

type config = Sempe_bpred.Tage.config = {
  num_tables : int;
  table_bits : int;
  tag_bits : int;
  min_history : int;
  max_history : int;
  base_bits : int;
}

type entry = { mutable tag : int; mutable ctr : int; mutable u : int }
(* ctr is a 3-bit signed counter in [-4, 3]; taken iff ctr >= 0.
   u is a 2-bit usefulness counter. *)

(* Folded history register: compresses [length] bits of global history
   into [width] bits incrementally, one xor per shifted-in bit (Seznec's
   circular shift register). *)
type folded = { mutable value : int; length : int; width : int }

let folded_make ~length ~width = { value = 0; length; width }

let folded_update f new_bit evicted_bit =
  let mask = (1 lsl f.width) - 1 in
  let v = ((f.value lsl 1) lor new_bit) land mask in
  let v = v lxor ((f.value lsr (f.width - 1)) land 1) in
  let out_pos = f.length mod f.width in
  let v = v lxor (evicted_bit lsl out_pos) in
  f.value <- v land mask

type table = {
  entries : entry array;
  history_length : int;
  index_fold : folded;
  tag_fold1 : folded;
  tag_fold2 : folded;
}

type t = {
  cfg : config;
  base : Counters.t;
  tables : table array;
  history : Bytes.t; (* circular buffer of outcome bits *)
  mutable head : int; (* next write position *)
  mutable use_alt_on_new : int; (* 4-bit counter biasing weak entries *)
  mutable tick : int; (* aging clock for usefulness counters *)
  lk : lookup;
}

(* Scratch lookup refilled in place by [lookup]; -1 encodes "no matching
   component". *)
and lookup = {
  mutable provider : int;
  mutable provider_idx : int;
  mutable alt : int;
  mutable alt_idx : int;
  mutable base_idx : int;
}

let history_capacity = 1024

let geometric_lengths cfg =
  (* L(i) = min * (max/min)^(i/(n-1)), rounded, strictly increasing. *)
  let n = cfg.num_tables in
  let ratio =
    if n = 1 then 1.0
    else
      (float_of_int cfg.max_history /. float_of_int cfg.min_history)
      ** (1.0 /. float_of_int (n - 1))
  in
  let lens = Array.make n 0 in
  let prev = ref 0 in
  for i = 0 to n - 1 do
    let l =
      int_of_float
        (Float.round (float_of_int cfg.min_history *. (ratio ** float_of_int i)))
    in
    let l = max l (!prev + 1) in
    lens.(i) <- l;
    prev := l
  done;
  lens

let create ?(config = Sempe_bpred.Tage.default_config) () =
  let cfg = config in
  let lens = geometric_lengths cfg in
  let mk_table i =
    let history_length = lens.(i) in
    {
      entries =
        Array.init (1 lsl cfg.table_bits) (fun _ -> { tag = 0; ctr = 0; u = 0 });
      history_length;
      index_fold = folded_make ~length:history_length ~width:cfg.table_bits;
      tag_fold1 = folded_make ~length:history_length ~width:cfg.tag_bits;
      tag_fold2 = folded_make ~length:history_length ~width:(cfg.tag_bits - 1);
    }
  in
  {
    cfg;
    base = Counters.create ~entries:(1 lsl cfg.base_bits) ~bits:2;
    tables = Array.init cfg.num_tables mk_table;
    history = Bytes.make history_capacity '\000';
    head = 0;
    use_alt_on_new = 8;
    tick = 0;
    lk = { provider = -1; provider_idx = 0; alt = -1; alt_idx = 0; base_idx = 0 };
  }

let history_bit t ago =
  let pos = (t.head - 1 - ago + (2 * history_capacity)) mod history_capacity in
  Char.code (Bytes.get t.history pos)

let push_history t bit =
  (* Update every folded register before shifting the raw history. *)
  Array.iter
    (fun tb ->
      let evicted = history_bit t (tb.history_length - 1) in
      folded_update tb.index_fold bit evicted;
      folded_update tb.tag_fold1 bit evicted;
      folded_update tb.tag_fold2 bit evicted)
    t.tables;
  Bytes.set t.history t.head (Char.chr bit);
  t.head <- (t.head + 1) mod history_capacity

let table_index t i pc =
  let tb = t.tables.(i) in
  let mask = (1 lsl t.cfg.table_bits) - 1 in
  (pc lxor (pc lsr (t.cfg.table_bits - i)) lxor tb.index_fold.value) land mask

let table_tag t i pc =
  let tb = t.tables.(i) in
  let mask = (1 lsl t.cfg.tag_bits) - 1 in
  (pc lxor tb.tag_fold1.value lxor (tb.tag_fold2.value lsl 1)) land mask

let lookup t lk pc =
  lk.base_idx <- pc land ((1 lsl t.cfg.base_bits) - 1);
  lk.provider <- -1;
  lk.provider_idx <- 0;
  lk.alt <- -1;
  lk.alt_idx <- 0;
  let rec scan i =
    if i >= 0 then begin
      let idx = table_index t i pc in
      if t.tables.(i).entries.(idx).tag = table_tag t i pc then begin
        if lk.provider < 0 then begin
          lk.provider <- i;
          lk.provider_idx <- idx;
          scan (i - 1)
        end
        else begin
          lk.alt <- i;
          lk.alt_idx <- idx
          (* provider and alternate found: stop scanning *)
        end
      end
      else scan (i - 1)
    end
  in
  scan (t.cfg.num_tables - 1)

let alt_pred t lk =
  if lk.alt >= 0 then t.tables.(lk.alt).entries.(lk.alt_idx).ctr >= 0
  else Counters.taken t.base lk.base_idx

let is_weak e = e.ctr = 0 || e.ctr = -1

let predict t ~pc =
  let lk = t.lk in
  lookup t lk pc;
  if lk.provider < 0 then Counters.taken t.base lk.base_idx
  else begin
    let e = t.tables.(lk.provider).entries.(lk.provider_idx) in
    if is_weak e && e.u = 0 && t.use_alt_on_new >= 8 then alt_pred t lk
    else e.ctr >= 0
  end

let sat_update e taken =
  if taken then (if e.ctr < 3 then e.ctr <- e.ctr + 1)
  else if e.ctr > -4 then e.ctr <- e.ctr - 1

let allocate t lk pc taken =
  (* Try to claim a u=0 entry in a table longer than the provider. *)
  let start = if lk.provider >= 0 then lk.provider + 1 else 0 in
  let rec find i =
    if i >= t.cfg.num_tables then None
    else
      let idx = table_index t i pc in
      if t.tables.(i).entries.(idx).u = 0 then Some (i, idx) else find (i + 1)
  in
  match find start with
  | Some (i, idx) ->
    let e = t.tables.(i).entries.(idx) in
    e.tag <- table_tag t i pc;
    e.ctr <- (if taken then 0 else -1);
    e.u <- 0
  | None ->
    (* Decay usefulness along the allocation path so progress is
       possible. *)
    for i = start to t.cfg.num_tables - 1 do
      let idx = table_index t i pc in
      let e = t.tables.(i).entries.(idx) in
      if e.u > 0 then e.u <- e.u - 1
    done

let age_usefulness t =
  t.tick <- t.tick + 1;
  if t.tick land 0x3ffff = 0 then
    Array.iter
      (fun tb ->
        Array.iter (fun e -> if e.u > 0 then e.u <- e.u - 1) tb.entries)
      t.tables

(* [update t ~pred ~pc ~taken] trains with the resolved outcome; [pred]
   must be the value [predict t ~pc] just returned (the production
   predictor memoizes the same way), since the scratch lookup still
   describes [pc]. *)
let update t ~pred ~pc ~taken =
  let lk = t.lk in
  let altp = alt_pred t lk in
  (if lk.provider < 0 then begin
     Counters.train t.base lk.base_idx taken;
     if pred <> taken then allocate t lk pc taken
   end
   else begin
     let e = t.tables.(lk.provider).entries.(lk.provider_idx) in
     let provider_pred = e.ctr >= 0 in
     (* Track whether trusting weak new entries beats the alternate. *)
     if is_weak e && e.u = 0 && provider_pred <> altp then begin
       if altp = taken then begin
         if t.use_alt_on_new < 15 then t.use_alt_on_new <- t.use_alt_on_new + 1
       end
       else if t.use_alt_on_new > 0 then t.use_alt_on_new <- t.use_alt_on_new - 1
     end;
     sat_update e taken;
     if altp <> provider_pred then begin
       if provider_pred = taken then (if e.u < 3 then e.u <- e.u + 1)
       else if e.u > 0 then e.u <- e.u - 1
     end;
     if lk.alt < 0 then Counters.train t.base lk.base_idx taken;
     if pred <> taken then allocate t lk pc taken
   end);
  age_usefulness t;
  push_history t (if taken then 1 else 0)

let reset t =
  Counters.reset t.base;
  Array.iter
    (fun tb ->
      Array.iter
        (fun e ->
          e.tag <- 0;
          e.ctr <- 0;
          e.u <- 0)
        tb.entries;
      tb.index_fold.value <- 0;
      tb.tag_fold1.value <- 0;
      tb.tag_fold2.value <- 0)
    t.tables;
  Bytes.fill t.history 0 history_capacity '\000';
  t.head <- 0;
  t.use_alt_on_new <- 8;
  t.tick <- 0

let signature t =
  let acc = ref (Counters.signature t.base) in
  Array.iter
    (fun tb ->
      Array.iter
        (fun e -> acc := (!acc * 31) + (e.tag lxor (e.ctr + 4) lxor (e.u lsl 16)))
        tb.entries)
    t.tables;
  !acc lxor t.head
