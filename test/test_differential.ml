(* Differential check of the predecoded threaded interpreter against a
   straight-line reference interpreter.

   The production core ({!Sempe_core.Exec}) predecodes each static
   instruction into a specialized thunk and reuses one mutable µop record
   per pc. The reference below is the shape the core had before that
   rewrite: re-match the instruction constructor every step and allocate a
   fresh µop per commit. Both must produce byte-identical architectural
   results and — fed into identical fresh timing models — byte-identical
   timing reports, over fuzz-generated SeMPE programs and curated
   workloads. Sampled estimates must additionally be identical at any
   worker count. *)

open Sempe_isa
module Exec = Sempe_core.Exec
module Jbtable = Sempe_core.Jbtable
module Snapshot = Sempe_core.Snapshot
module Scheme = Sempe_core.Scheme
module Spm = Sempe_mem.Spm
module Uop = Sempe_pipeline.Uop
module Timing = Sempe_pipeline.Timing
module Gen = Sempe_fuzz.Gen
module Harness = Sempe_workloads.Harness
module Microbench = Sempe_workloads.Microbench
module Kernels = Sempe_workloads.Kernels

(* ---- reference interpreter ------------------------------------------- *)

type ref_result = {
  r_regs : int array;
  r_mem : int array;
  r_instrs : int;
  r_sjmps : int;
  r_nesting : int;
}

(* Semantics transcribed from the paper sections the production core
   implements, with the pre-rewrite execution strategy. Event order per
   instruction is the contract both interpreters share: fetch, data access,
   control flow; Commit before the Drain it causes. *)
let ref_run ~(config : Exec.config) ?(init_mem = fun (_ : int array) -> ())
    ?(sink = fun (_ : Uop.event) -> ()) prog =
  assert (config.Exec.fault = Exec.No_fault);
  let mw = config.Exec.mem_words in
  let forgiving = config.Exec.forgiving_oob in
  let sempe = config.Exec.support = Exec.Sempe_hw in
  let plen = Program.length prog in
  let regs = Array.make Reg.count 0 in
  let mem = Array.make mw 0 in
  let jb = Jbtable.create ~entries:config.Exec.jbtable_entries () in
  let snaps = Snapshot.create () in
  let spm = Spm.create ~config:config.Exec.spm () in
  regs.(Reg.sp) <- mw - 1;
  regs.(Reg.gp) <- 0;
  init_mem mem;
  let pc = ref prog.Program.entry in
  let count = ref 0 and sjmps = ref 0 and nesting = ref 0 in
  let halted = ref false in
  let wr r v =
    if r <> Reg.zero then begin
      regs.(r) <- v;
      Snapshot.note_write snaps r
    end
  in
  let resolve_target pc target =
    if target >= 0 && target < plen then target
    else if forgiving then ((target mod plen) + plen) mod plen
    else raise (Exec.Out_of_bounds { pc; addr = target })
  in
  while not !halted do
    if !count >= config.Exec.max_instrs then raise (Exec.Budget_exceeded !count);
    let here = !pc in
    let instr = prog.Program.code.(here) in
    let commit ?(mem_addr = 0) set =
      let u = Uop.of_instr ~pc:here instr ~mem_addr in
      set u;
      sink (Uop.Commit u)
    in
    let plain () = commit (fun _ -> ()) in
    (match instr with
     | Instr.Nop ->
       plain ();
       pc := here + 1
     | Instr.Alu (op, rd, rs1, rs2) ->
       plain ();
       wr rd (Instr.eval_alu op regs.(rs1) regs.(rs2));
       pc := here + 1
     | Instr.Alui (op, rd, rs1, imm) ->
       plain ();
       wr rd (Instr.eval_alu op regs.(rs1) imm);
       pc := here + 1
     | Instr.Li (rd, imm) ->
       plain ();
       wr rd imm;
       pc := here + 1
     | Instr.Ld (rd, base, off) ->
       let addr = regs.(base) + off in
       if addr >= 0 && addr < mw then begin
         commit ~mem_addr:addr (fun _ -> ());
         wr rd mem.(addr)
       end
       else if forgiving then begin
         let a = ((addr mod mw) + mw) mod mw in
         commit ~mem_addr:a (fun _ -> ());
         wr rd 0
       end
       else raise (Exec.Out_of_bounds { pc = here; addr });
       pc := here + 1
     | Instr.St (rs, base, off) ->
       let addr = regs.(base) + off in
       if addr >= 0 && addr < mw then begin
         commit ~mem_addr:addr (fun _ -> ());
         mem.(addr) <- regs.(rs)
       end
       else if forgiving then
         commit ~mem_addr:(((addr mod mw) + mw) mod mw) (fun _ -> ())
       else raise (Exec.Out_of_bounds { pc = here; addr });
       pc := here + 1
     | Instr.Cmov (rd, rc, rs) ->
       plain ();
       if regs.(rc) <> 0 then wr rd regs.(rs);
       pc := here + 1
     | Instr.Br { cond; rs1; rs2; target; secure } when secure && sempe ->
       let outcome = Instr.eval_cond cond regs.(rs1) regs.(rs2) in
       ignore (Jbtable.push jb);
       Jbtable.commit_sjmp jb ~dest:target ~outcome;
       commit (fun u ->
           u.Uop.ctl <- Uop.Ctl_branch;
           u.Uop.secure <- true;
           u.Uop.target <- target;
           u.Uop.taken <- outcome);
       let cycles = Spm.push_full_save spm in
       Snapshot.push snaps ~regs ~outcome;
       if Snapshot.depth snaps > !nesting then nesting := Snapshot.depth snaps;
       sink (Uop.Drain { reason = Uop.Drain_enter_secblock; spm_cycles = cycles });
       incr sjmps;
       pc := here + 1
     | Instr.Br { cond; rs1; rs2; target; secure = _ } ->
       let taken = Instr.eval_cond cond regs.(rs1) regs.(rs2) in
       commit (fun u ->
           u.Uop.ctl <- Uop.Ctl_branch;
           u.Uop.target <- target;
           u.Uop.taken <- taken);
       pc := (if taken then target else here + 1)
     | Instr.Jmp target ->
       commit (fun u ->
           u.Uop.ctl <- Uop.Ctl_jump;
           u.Uop.target <- target);
       pc := target
     | Instr.Call target ->
       commit (fun u ->
           u.Uop.ctl <- Uop.Ctl_call;
           u.Uop.target <- target;
           u.Uop.return_to <- here + 1);
       wr Reg.ra (here + 1);
       pc := target
     | Instr.Jr r ->
       let target = resolve_target here regs.(r) in
       commit (fun u ->
           u.Uop.ctl <- Uop.Ctl_indirect;
           u.Uop.target <- target);
       pc := target
     | Instr.Ret ->
       let target = resolve_target here regs.(Reg.ra) in
       commit (fun u ->
           u.Uop.ctl <- Uop.Ctl_ret;
           u.Uop.target <- target);
       pc := target
     | Instr.Eosjmp when sempe ->
       if Jbtable.is_empty jb then begin
         plain ();
         pc := here + 1
       end
       else begin
         match Jbtable.on_eosjmp jb with
         | Jbtable.Jump_back dest ->
           commit (fun u ->
               u.Uop.ctl <- Uop.Ctl_jumpback;
               u.Uop.target <- dest);
           let nt_mods = Snapshot.end_nt_path snaps ~regs in
           let c1 = Spm.save_modified spm ~modified:nt_mods in
           let c2 = Spm.read_modified spm ~modified:nt_mods in
           sink
             (Uop.Drain
                { reason = Uop.Drain_after_nt_path; spm_cycles = c1 + c2 });
           pc := dest
         | Jbtable.Release ->
           plain ();
           let union = Snapshot.finish snaps ~regs in
           let cycles = Spm.restore spm ~modified_union:union in
           sink
             (Uop.Drain
                { reason = Uop.Drain_exit_secblock; spm_cycles = cycles });
           pc := here + 1
       end
     | Instr.Eosjmp ->
       plain ();
       pc := here + 1
     | Instr.Halt ->
       plain ();
       halted := true);
    incr count
  done;
  {
    r_regs = regs;
    r_mem = mem;
    r_instrs = !count;
    r_sjmps = !sjmps;
    r_nesting = !nesting;
  }

(* ---- comparison driver ------------------------------------------------ *)

let check_same ~what ~config ~init_mem prog =
  (* Detailed runs: each side feeds its own fresh timing model. *)
  let t_ref = Timing.create () in
  let r = ref_run ~config ~init_mem ~sink:(Timing.feed t_ref) prog in
  let t_new = Timing.create () in
  let n = Exec.run ~config ~init_mem ~sink:(Timing.feed t_new) prog in
  Alcotest.(check (array int)) (what ^ ": registers") r.r_regs n.Exec.regs;
  Alcotest.(check bool)
    (what ^ ": memory image")
    true
    (r.r_mem = n.Exec.memory);
  Alcotest.(check int) (what ^ ": dyn instrs") r.r_instrs n.Exec.dyn_instrs;
  Alcotest.(check int) (what ^ ": dyn sjmps") r.r_sjmps n.Exec.dyn_sjmps;
  Alcotest.(check int) (what ^ ": max nesting") r.r_nesting n.Exec.max_nesting;
  let rep_ref = Timing.report t_ref and rep_new = Timing.report t_new in
  Alcotest.(check bool)
    (Printf.sprintf "%s: timing reports identical (%d vs %d cycles)" what
       rep_ref.Timing.cycles rep_new.Timing.cycles)
    true
    (rep_ref = rep_new);
  (* Fast-forward (no sink) must agree with the instrumented run. *)
  let ff = Exec.run ~config ~init_mem prog in
  Alcotest.(check (array int)) (what ^ ": fast-forward registers") r.r_regs
    ff.Exec.regs;
  Alcotest.(check int) (what ^ ": fast-forward instrs") r.r_instrs
    ff.Exec.dyn_instrs

let mem_words = 1 lsl 14

let config_for support =
  { Exec.default_config with Exec.support; mem_words; max_instrs = 2_000_000 }

(* ---- fuzz-generated programs ------------------------------------------ *)

let pinned_seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let test_fuzz_cases () =
  List.iter
    (fun seed ->
      let case = Gen.generate seed in
      let built = Harness.build Scheme.Sempe case.Gen.prog in
      List.iter
        (fun secrets ->
          let init_mem =
            Harness.init_mem_of built ~globals:secrets
              ~arrays:[ (Gen.array_name, case.Gen.fill) ]
          in
          check_same
            ~what:
              (Printf.sprintf "seed %d / %s" seed
                 (String.concat ","
                    (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) secrets)))
            ~config:(config_for Exec.Sempe_hw) ~init_mem built.Harness.prog)
        case.Gen.secrets)
    pinned_seeds

(* ---- curated workloads ------------------------------------------------ *)

let microbench_built scheme =
  let spec = { Microbench.kernel = Kernels.fibonacci; width = 2; iters = 2 } in
  Harness.build scheme (Microbench.program ~ct:false spec)

let test_microbench () =
  List.iter
    (fun (scheme, leaf) ->
      let built = microbench_built scheme in
      let secrets = Microbench.secrets_for_leaf ~width:2 ~leaf in
      let init_mem = Harness.init_mem_of built ~globals:secrets ~arrays:[] in
      check_same
        ~what:
          (Printf.sprintf "microbench %s leaf %d" (Scheme.name scheme) leaf)
        ~config:(config_for (Scheme.support scheme))
        ~init_mem built.Harness.prog)
    [ (Scheme.Sempe, 1); (Scheme.Sempe, 3); (Scheme.Sempe_on_legacy, 2);
      (Scheme.Baseline, 1) ]

(* ---- sampled runs are worker-count independent ------------------------ *)

let test_sampling_workers () =
  let case = Gen.generate 7 in
  let built = Harness.build Scheme.Sempe case.Gen.prog in
  let secrets = List.hd case.Gen.secrets in
  let sample workers =
    Harness.sample ~mem_words ~globals:secrets
      ~arrays:[ (Gen.array_name, case.Gen.fill) ]
      ~config:
        {
          Sempe_sampling.Sampling.interval = 2000;
          coverage = 0.5;
          warmup = 500;
          offset = 0;
        }
      ~workers built
  in
  let e1 = sample 1 and e4 = sample 4 in
  Alcotest.(check bool)
    (Printf.sprintf "estimates identical at 1 and 4 workers (%d vs %d cycles)"
       e1.Sempe_sampling.Sampling.cycles_estimate
       e4.Sempe_sampling.Sampling.cycles_estimate)
    true (e1 = e4)

let tests =
  [
    Alcotest.test_case "fuzz cases old-vs-new" `Quick test_fuzz_cases;
    Alcotest.test_case "microbench old-vs-new" `Quick test_microbench;
    Alcotest.test_case "sampling worker independence" `Quick test_sampling_workers;
  ]
