(* Tests for the serving subsystem: framing, the LRU caches, the request
   vocabulary and its strict decoder, content-addressed keys, checkpoint
   plan reuse, and an in-process daemon exercised end to end over a unix
   socket (byte-equality with the batch path, caching, coalescing,
   timeouts, graceful shutdown, and the load-generator acceptance run). *)

module Json = Sempe_obs.Json
module Frame = Sempe_serve.Frame
module Cache = Sempe_serve.Cache
module Api = Sempe_serve.Api
module Server = Sempe_serve.Server
module Client = Sempe_serve.Client
module Loadgen = Sempe_serve.Loadgen
module Sampling = Sempe_sampling.Sampling
module Stats = Sempe_util.Stats
module Scheme = Sempe_core.Scheme

(* ---- framing ----------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let payloads = [ ""; "x"; "{\"op\":\"ping\"}"; String.make 70000 'q' ] in
      List.iter (fun p -> Frame.write a p) payloads;
      List.iter
        (fun expected ->
          match Frame.read b with
          | Some got -> Alcotest.(check string) "payload survives" expected got
          | None -> Alcotest.fail "unexpected EOF")
        payloads;
      Unix.close a;
      Alcotest.(check bool) "clean EOF between frames is None" true
        (Frame.read b = None))

let test_frame_oversize () =
  with_socketpair (fun a b ->
      Frame.write a (String.make 4096 'z');
      Alcotest.check_raises "declared length above cap"
        (Frame.Frame_error "frame of 4096 bytes exceeds the 1024-byte limit")
        (fun () -> ignore (Frame.read ~max_len:1024 b)))

let test_frame_truncated () =
  (* EOF inside a frame — header promised more bytes than arrive. *)
  with_socketpair (fun a b ->
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 64l;
      ignore (Unix.write a header 0 4);
      ignore (Unix.write_substring a "only-ten.." 0 10);
      Unix.close a;
      match Frame.read b with
      | _ -> Alcotest.fail "accepted truncated frame"
      | exception Frame.Frame_error _ -> ());
  (* EOF inside the header itself. *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "\000\000" 0 2);
      Unix.close a;
      match Frame.read b with
      | _ -> Alcotest.fail "accepted truncated header"
      | exception Frame.Frame_error _ -> ())

(* ---- LRU cache --------------------------------------------------------- *)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:3 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "c" 3;
  (* touch "a" so "b" becomes the LRU entry *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Cache.find c "a");
  Cache.add c "d" 4;
  Alcotest.(check bool) "b evicted" false (Cache.mem c "b");
  Alcotest.(check bool) "a survived (was refreshed)" true (Cache.mem c "a");
  Alcotest.(check (list string)) "recency order" [ "d"; "a"; "c" ]
    (Cache.keys_newest_first c);
  Alcotest.(check int) "one eviction" 1 (Cache.evictions c);
  Alcotest.(check int) "length at capacity" 3 (Cache.length c)

let test_cache_counters_and_overwrite () =
  let c = Cache.create ~capacity:2 in
  Alcotest.(check (option int)) "miss" None (Cache.find c "x");
  Cache.add c "x" 1;
  Cache.add c "y" 2;
  Cache.add c "x" 10 (* overwrite refreshes recency, evicts nothing *);
  Alcotest.(check (option int)) "overwritten value" (Some 10) (Cache.find c "x");
  Alcotest.(check (list string)) "x most recent" [ "x"; "y" ]
    (Cache.keys_newest_first c);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c);
  Alcotest.(check int) "no evictions" 0 (Cache.evictions c);
  (* mem leaves both recency and the counters alone *)
  ignore (Cache.mem c "y");
  Alcotest.(check (list string)) "mem did not refresh" [ "x"; "y" ]
    (Cache.keys_newest_first c);
  Alcotest.(check int) "mem did not count" 1 (Cache.hits c);
  Alcotest.check_raises "capacity < 1 rejected"
    (Invalid_argument "Cache.create: capacity must be >= 1") (fun () ->
      ignore (Cache.create ~capacity:0))

let test_cache_cost_aware_eviction () =
  let c = Cache.create ~capacity:3 in
  Cache.add ~cost:0.01 c "cheap-old" 1;
  Cache.add ~cost:5.0 c "costly" 2;
  Cache.add ~cost:0.01 c "cheap-new" 3;
  (* Pure LRU would evict "cheap-old" too — but here it loses on credit,
     not age: the two cheap entries tie at the minimum and the tie-break
     goes against the older one. *)
  Cache.add ~cost:0.01 c "fresh" 4;
  Alcotest.(check bool) "cheapest+oldest evicted" false (Cache.mem c "cheap-old");
  Alcotest.(check bool) "costly survives" true (Cache.mem c "costly");
  Alcotest.(check (float 1e-9)) "evicted cost accounted" 0.01
    (Cache.cost_evicted_s c);
  (* Now recency alone would protect "cheap-new" over the older "costly"
     entry; cost-aware eviction sacrifices the cheap entry instead. *)
  Cache.add ~cost:0.01 c "fresh2" 5;
  Alcotest.(check bool) "costly still resident" true (Cache.mem c "costly");
  Alcotest.(check bool) "newer-but-cheap evicted" false (Cache.mem c "cheap-new");
  (* A sustained stream of cheap one-off inserts never displaces the one
     expensive entry. *)
  for i = 0 to 9 do
    Cache.add ~cost:0.01 c (Printf.sprintf "stream-%d" i) i
  done;
  Alcotest.(check bool) "costly outlives the stream" true (Cache.mem c "costly");
  Alcotest.(check (float 1e-9)) "resident cost tracked" 5.02
    (Cache.total_cost_s c)

let test_cache_to_list () =
  let c = Cache.create ~capacity:3 in
  Cache.add ~cost:1.5 c "a" 1;
  Cache.add ~cost:0.25 c "b" 2;
  ignore (Cache.find c "a");
  Alcotest.(check bool) "to_list: newest first with costs" true
    (Cache.to_list c = [ ("a", 1, 1.5); ("b", 2, 0.25) ]);
  (* negative and NaN costs are clamped at insert *)
  Cache.add ~cost:(-3.) c "neg" 3;
  Cache.add ~cost:Float.nan c "nan" 4;
  List.iter
    (fun (k, _, cost) ->
      if k = "neg" || k = "nan" then
        Alcotest.(check (float 0.)) (k ^ " clamped to zero cost") 0. cost)
    (Cache.to_list c)

(* ---- request vocabulary ------------------------------------------------ *)

let fib w = Api.Microbench { kernel = "fibonacci"; width = w; iters = 4; leaf = 3 }

let sample_req =
  Api.Sample
    {
      scheme = Scheme.Sempe;
      workload = Api.Rsa { key = 0xACE5 };
      strict_oob = false;
      (* Coverage low enough that the sampler's cost model keeps this
         request on the genuinely sampled path (and thus exports a
         checkpoint plan) despite the small interval. *)
      params = { Api.interval = 2000; coverage = 0.05; warmup = 500 };
    }

let requests =
  [
    Api.Simulate { scheme = Scheme.Sempe; workload = fib 4; strict_oob = false };
    Api.Simulate
      {
        scheme = Scheme.Baseline;
        workload = Api.Djpeg { format = "PPM"; blocks = 2; seed = 7 };
        strict_oob = true;
      };
    sample_req;
    Api.Profile { scheme = Scheme.Cte; workload = Api.Rsa { key = 0xB0B }; top = 5 };
    Api.Leakage;
    Api.Fuzz_smoke { seed = 3; count = 10 };
  ]

let test_request_json_roundtrip () =
  List.iter
    (fun req ->
      match Api.request_of_json (Api.request_to_json req) with
      | Ok req' ->
        Alcotest.(check bool)
          (Json.to_string (Api.request_to_json req))
          true (req = req')
      | Error e -> Alcotest.fail ("round-trip rejected: " ^ e))
    requests

(* Re-encode [req] with field [k] replaced (or added) at the top level. *)
let with_field req k v =
  match Api.request_to_json req with
  | Json.Obj fields -> Json.Obj ((k, v) :: List.remove_assoc k fields)
  | _ -> Alcotest.fail "wire form is not an object"

let with_workload_field req k v =
  match Api.request_to_json req with
  | Json.Obj fields -> (
    match List.assoc_opt "workload" fields with
    | Some (Json.Obj w) ->
      Json.Obj
        (("workload", Json.Obj ((k, v) :: List.remove_assoc k w))
        :: List.remove_assoc "workload" fields)
    | _ -> Alcotest.fail "no workload object")
  | _ -> Alcotest.fail "wire form is not an object"

let rejected name doc =
  match Api.request_of_json doc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail (name ^ ": malformed request accepted")

let test_request_strict_decode () =
  let simulate = List.hd requests in
  rejected "unknown op" (with_field simulate "op" (Json.Str "explode"));
  rejected "missing op"
    (match Api.request_to_json simulate with
    | Json.Obj fields -> Json.Obj (List.remove_assoc "op" fields)
    | _ -> Json.Null);
  rejected "unknown scheme" (with_field simulate "scheme" (Json.Str "tempest"));
  rejected "mistyped scheme" (with_field simulate "scheme" (Json.Int 3));
  rejected "unknown kernel"
    (with_workload_field simulate "kernel" (Json.Str "collatz"));
  rejected "width zero" (with_workload_field simulate "width" (Json.Int 0));
  rejected "unknown format"
    (with_workload_field
       (Api.Simulate
          {
            scheme = Scheme.Sempe;
            workload = Api.Djpeg { format = "PPM"; blocks = 2; seed = 1 };
            strict_oob = false;
          })
       "format" (Json.Str "WEBP"));
  rejected "coverage above 1" (with_field sample_req "coverage" (Json.Float 1.5));
  rejected "coverage zero" (with_field sample_req "coverage" (Json.Float 0.));
  rejected "interval zero" (with_field sample_req "interval" (Json.Int 0));
  rejected "not an object" (Json.List [ Json.Int 1 ]);
  (* unknown extra fields are forward-compatible noise, not errors *)
  match Api.request_of_json (with_field simulate "future_flag" (Json.Bool true)) with
  | Ok req -> Alcotest.(check bool) "extra field ignored" true (req = simulate)
  | Error e -> Alcotest.fail ("extra field rejected: " ^ e)

let test_cache_keys () =
  let keys = List.map Api.cache_key requests in
  let distinct = List.sort_uniq compare keys in
  Alcotest.(check int) "distinct requests have distinct keys"
    (List.length keys) (List.length distinct);
  Alcotest.(check bool) "key is deterministic" true
    (Api.cache_key sample_req = Api.cache_key sample_req);
  (* workload-bearing keys carry program digests on top of the json ones *)
  Alcotest.(check int) "workload key width" 4
    (List.length (Api.cache_key (List.hd requests)));
  Alcotest.(check int) "leakage key width" 2
    (List.length (Api.cache_key Api.Leakage));
  Alcotest.(check bool) "scheme changes the key" false
    (Api.cache_key
       (Api.Simulate
          { scheme = Scheme.Sempe; workload = fib 4; strict_oob = false })
    = Api.cache_key
        (Api.Simulate
           { scheme = Scheme.Cte; workload = fib 4; strict_oob = false }))

let test_plan_keys () =
  Alcotest.(check bool) "simulate has no plan key" true
    (Api.plan_key (List.hd requests) = None);
  Alcotest.(check bool) "leakage has no plan key" true
    (Api.plan_key Api.Leakage = None);
  let sample ~coverage ~interval =
    Api.Sample
      {
        scheme = Scheme.Sempe;
        workload = Api.Rsa { key = 0xACE5 };
        strict_oob = false;
        params = { Api.interval; coverage; warmup = 500 };
      }
  in
  let k1 = Api.plan_key (sample ~coverage:0.25 ~interval:2000) in
  Alcotest.(check bool) "sample has a plan key" true (k1 <> None);
  (* the plan depends on the stride, not the raw coverage: 0.25 and 0.26
     both round to stride 4, so they share a checkpoint plan *)
  Alcotest.(check bool) "equivalent coverage shares the plan" true
    (k1 = Api.plan_key (sample ~coverage:0.26 ~interval:2000));
  Alcotest.(check bool) "different stride, different plan" false
    (k1 = Api.plan_key (sample ~coverage:0.5 ~interval:2000));
  Alcotest.(check bool) "different interval, different plan" false
    (k1 = Api.plan_key (sample ~coverage:0.25 ~interval:1000))

(* ---- checkpoint plan reuse --------------------------------------------- *)

let test_plan_reuse_byte_equal () =
  let captured = ref None in
  let cold = Api.perform ~plan_out:(fun p -> captured := Some p) sample_req in
  match !captured with
  | None -> Alcotest.fail "fast-forward pass exported no plan"
  | Some plan ->
    let warm = Api.perform ~plan sample_req in
    Alcotest.(check string) "warm sample byte-identical to cold"
      (Json.to_string cold) (Json.to_string warm)

let test_plan_image_roundtrip () =
  let captured = ref None in
  let cold = Api.perform ~plan_out:(fun p -> captured := Some p) sample_req in
  match !captured with
  | None -> Alcotest.fail "fast-forward pass exported no plan"
  | Some plan ->
    let image = Sampling.plan_to_bytes plan in
    (match Sampling.plan_of_bytes image with
     | Error e -> Alcotest.fail ("image rejected: " ^ e)
     | Ok revived ->
       Alcotest.(check int) "points survive" (Sampling.plan_points plan)
         (Sampling.plan_points revived);
       Alcotest.(check int) "instruction count survives"
         (Sampling.plan_instructions plan)
         (Sampling.plan_instructions revived);
       let warm = Api.perform ~plan:revived sample_req in
       Alcotest.(check string) "estimate from a revived image byte-identical"
         (Json.to_string cold) (Json.to_string warm));
    (* stale or damaged images are Error, never an exception *)
    (match Sampling.plan_of_bytes "not-a-plan" with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "accepted garbage image");
    (match Sampling.plan_of_bytes (String.sub image 0 (String.length image - 5)) with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "accepted truncated image");
    match Sampling.plan_of_bytes ("sempe-plan.v0\n" ^ "rest") with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "accepted wrong version"

(* ---- loadgen percentile gating ----------------------------------------- *)

let test_loadgen_p99_floor () =
  let s = Stats.Summary.create () in
  for i = 1 to Loadgen.p99_floor - 1 do
    Stats.Summary.observe s (float_of_int i)
  done;
  (* below the floor, nearest-rank p99 would just be the max *)
  Alcotest.(check bool) "p99 withheld under the floor" true
    (Loadgen.gated_p99 s = None);
  Stats.Summary.observe s (float_of_int Loadgen.p99_floor);
  (match Loadgen.gated_p99 s with
   | None -> Alcotest.fail "p99 withheld at the floor"
   | Some p ->
     Alcotest.(check (float 1e-9)) "nearest-rank p99 at the floor" 99. p);
  for i = Loadgen.p99_floor + 1 to 1000 do
    Stats.Summary.observe s (float_of_int i)
  done;
  match Loadgen.gated_p99 s with
  | None -> Alcotest.fail "p99 withheld on a large sample"
  | Some p ->
    Alcotest.(check bool) "p99 below max on a large sample" true (p < 1000.)

(* ---- in-process daemon ------------------------------------------------- *)

let sock_path name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "sempe-t%d-%s.sock" (Unix.getpid ()) name)

let with_server ?(config = Server.default_config) name f =
  let path = sock_path name in
  if Sys.file_exists path then Sys.remove path;
  let server = Server.start ~config (Server.Unix_sock path) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f server (Server.Unix_sock path))

let with_conn addr f =
  let conn = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close conn) (fun () -> f conn)

let ok = function
  | Ok v -> v
  | Error { Client.code; message } ->
    Alcotest.fail (Printf.sprintf "daemon error %s: %s" code message)

let stat path json =
  let rec go json = function
    | [] -> ( match json with Json.Int i -> i | _ -> -1)
    | name :: rest -> (
      match json with
      | Json.Obj fields -> (
        match List.assoc_opt name fields with Some v -> go v rest | None -> -1)
      | _ -> -1)
  in
  go json path

let test_server_byte_equality_and_caching () =
  with_server "bytes" (fun _server addr ->
      with_conn addr (fun conn ->
          ok (Client.ping conn);
          let req =
            Api.Simulate
              { scheme = Scheme.Sempe; workload = fib 4; strict_oob = false }
          in
          let served, cached1 = ok (Client.call_cached conn req) in
          Alcotest.(check bool) "first answer is not cached" false cached1;
          Alcotest.(check string) "served = batch CLI bytes"
            (Json.to_string (Api.perform req))
            (Json.to_string served);
          let again, cached2 = ok (Client.call_cached conn req) in
          Alcotest.(check bool) "second answer is cached" true cached2;
          Alcotest.(check string) "cache serves identical bytes"
            (Json.to_string served) (Json.to_string again);
          let stats = ok (Client.stats conn) in
          Alcotest.(check int) "executed once" 1 (stat [ "executed" ] stats);
          Alcotest.(check int) "one result-cache hit" 1
            (stat [ "result_cache"; "hits" ] stats)))

let test_server_sample_plan_cache () =
  (* A result cache of one entry forces re-execution of the sample after
     an unrelated request evicts it; the checkpoint plan survives in the
     plan cache and the warm re-execution must serve identical bytes. *)
  let config = { Server.default_config with result_entries = 1 } in
  with_server ~config "plan" (fun _server addr ->
      with_conn addr (fun conn ->
          let cold = ok (Client.call conn sample_req) in
          let evictor =
            Api.Simulate
              { scheme = Scheme.Baseline; workload = fib 2; strict_oob = false }
          in
          ignore (ok (Client.call conn evictor));
          let warm, cached = ok (Client.call_cached conn sample_req) in
          Alcotest.(check bool) "re-executed, not cache-served" false cached;
          Alcotest.(check string) "plan-warmed rerun byte-identical"
            (Json.to_string cold) (Json.to_string warm);
          let stats = ok (Client.stats conn) in
          Alcotest.(check bool) "plan cache was hit" true
            (stat [ "plan_cache"; "hits" ] stats >= 1);
          Alcotest.(check int) "three executions total" 3
            (stat [ "executed" ] stats)))

let test_server_timeout_then_alive () =
  let config = { Server.default_config with timeout_s = 1e-6 } in
  with_server ~config "timeout" (fun _server addr ->
      with_conn addr (fun conn ->
          (match Client.call conn Api.Leakage with
          | Ok _ -> Alcotest.fail "microsecond deadline cannot be met"
          | Error { code; _ } ->
            Alcotest.(check string) "structured timeout error" "timeout" code);
          (* the daemon must survive a timed-out request *)
          ok (Client.ping conn)))

let test_server_rejects_garbage_frames () =
  with_server "garbage" (fun _server addr ->
      with_conn addr (fun conn -> ok (Client.ping conn));
      (* raw socket: send a syntactically broken document, then a valid
         but meaningless one; both get structured errors, not a hangup *)
      let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX path);
          Frame.write fd "{\"op\": ";
          (match Frame.read fd with
          | Some reply ->
            let doc = Json.of_string reply in
            Alcotest.(check bool) "ok:false on bad json" true
              (Json.member "ok" doc = Some (Json.Bool false))
          | None -> Alcotest.fail "daemon hung up on bad json");
          Frame.write fd "{\"op\": \"simulate\"}";
          match Frame.read fd with
          | Some reply ->
            let doc = Json.of_string reply in
            Alcotest.(check bool) "ok:false on bad request" true
              (Json.member "ok" doc = Some (Json.Bool false))
          | None -> Alcotest.fail "daemon hung up on bad request"))

let test_server_coalesces_duplicates () =
  (* Fire the same request from many threads at once: every reply carries
     identical bytes and the daemon executes the simulation fewer times
     than it replied (duplicates joined an in-flight execution or hit the
     cache). *)
  let config = { Server.default_config with workers = 2 } in
  with_server ~config "coalesce" (fun _server addr ->
      let req =
        Api.Simulate
          { scheme = Scheme.Sempe; workload = fib 6; strict_oob = false }
      in
      let n = 6 in
      let replies = Array.make n None in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () ->
                with_conn addr (fun conn ->
                    replies.(i) <- Some (ok (Client.call conn req))))
              ())
      in
      List.iter Thread.join threads;
      let rendered =
        Array.to_list replies
        |> List.map (function
             | Some r -> Json.to_string r
             | None -> Alcotest.fail "missing reply")
      in
      List.iter
        (Alcotest.(check string) "all replies identical" (List.hd rendered))
        rendered;
      with_conn addr (fun conn ->
          let stats = ok (Client.stats conn) in
          let executed = stat [ "executed" ] stats in
          Alcotest.(check bool) "executed fewer times than replied" true
            (executed < n);
          Alcotest.(check int) "every duplicate was absorbed" n
            (executed
            + stat [ "coalesced" ] stats
            + stat [ "result_cache"; "hits" ] stats)))

let test_server_client_shutdown_op () =
  let path = sock_path "shutop" in
  if Sys.file_exists path then Sys.remove path;
  let server = Server.start (Server.Unix_sock path) in
  with_conn (Server.Unix_sock path) (fun conn -> ok (Client.shutdown conn));
  (* the shutdown op must unblock wait and leave a clean exit *)
  Server.wait server;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)

(* ---- acceptance: loadgen against a live daemon ------------------------- *)

let test_acceptance_loadgen () =
  let config = { Server.default_config with workers = 2 } in
  with_server ~config "accept" (fun _server addr ->
      let mix =
        [
          Api.Simulate
            { scheme = Scheme.Sempe; workload = fib 4; strict_oob = false };
          Api.Simulate
            { scheme = Scheme.Baseline; workload = fib 4; strict_oob = false };
          Api.Simulate
            {
              scheme = Scheme.Sempe;
              workload = Api.Djpeg { format = "PPM"; blocks = 2; seed = 7 };
              strict_oob = false;
            };
          sample_req;
        ]
      in
      (* p50 of the distinct sweep on one connection, cold (first ever
         execution of each request) then warm after the loadgen has
         populated the caches. A concurrent loadgen p50 would mix cache
         hits into the cold number — with 4 distinct requests behind 48
         calls, 44 of the "cold" run's requests are already hits. *)
      let sweep_p50 conn =
        let lat =
          List.map
            (fun req ->
              let t0 = Unix.gettimeofday () in
              ignore (ok (Client.call conn req));
              Unix.gettimeofday () -. t0)
            mix
          |> List.sort compare |> Array.of_list
        in
        lat.(Array.length lat / 2)
      in
      let cold_p50 = with_conn addr sweep_p50 in
      let cfg =
        { Loadgen.clients = 8; requests_per_client = 6; mix; rate_hz = None }
      in
      let out = Loadgen.run addr cfg in
      Alcotest.(check int) "no dropped requests" 0 out.Loadgen.dropped;
      Alcotest.(check int) "no error replies" 0 out.Loadgen.errors;
      Alcotest.(check int) "every request answered" out.Loadgen.sent
        out.Loadgen.completed;
      Alcotest.(check bool) "loadgen over warm caches hits near-always" true
        (out.Loadgen.hit_rate > 0.9);
      let warm_p50 = with_conn addr sweep_p50 in
      Alcotest.(check bool)
        (Printf.sprintf "warm p50 at least 5x faster (cold %.4fs, warm %.4fs)"
           cold_p50 warm_p50)
        true
        (warm_p50 *. 5. <= cold_p50))

let tests =
  [
    Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame oversize rejected" `Quick test_frame_oversize;
    Alcotest.test_case "frame truncation rejected" `Quick test_frame_truncated;
    Alcotest.test_case "cache LRU eviction order" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache counters and overwrite" `Quick
      test_cache_counters_and_overwrite;
    Alcotest.test_case "cache cost-aware eviction" `Quick
      test_cache_cost_aware_eviction;
    Alcotest.test_case "cache dump with costs" `Quick test_cache_to_list;
    Alcotest.test_case "loadgen p99 floor" `Quick test_loadgen_p99_floor;
    Alcotest.test_case "request json round-trip" `Quick
      test_request_json_roundtrip;
    Alcotest.test_case "request strict decode" `Quick test_request_strict_decode;
    Alcotest.test_case "cache keys" `Quick test_cache_keys;
    Alcotest.test_case "plan keys" `Quick test_plan_keys;
    Alcotest.test_case "checkpoint plan reuse byte-equal" `Quick
      test_plan_reuse_byte_equal;
    Alcotest.test_case "checkpoint plan disk image round-trip" `Quick
      test_plan_image_roundtrip;
    Alcotest.test_case "daemon: byte equality and caching" `Quick
      test_server_byte_equality_and_caching;
    Alcotest.test_case "daemon: plan cache across eviction" `Quick
      test_server_sample_plan_cache;
    Alcotest.test_case "daemon: timeout leaves daemon alive" `Quick
      test_server_timeout_then_alive;
    Alcotest.test_case "daemon: malformed frames get errors" `Quick
      test_server_rejects_garbage_frames;
    Alcotest.test_case "daemon: duplicate requests coalesce" `Quick
      test_server_coalesces_duplicates;
    Alcotest.test_case "daemon: client shutdown op" `Quick
      test_server_client_shutdown_op;
    Alcotest.test_case "acceptance: loadgen cold vs warm" `Slow
      test_acceptance_loadgen;
  ]
