(* Unit and property tests for sempe_util: RNG, bit vectors, statistics and
   table rendering. *)

open Sempe_util

let qtest = QCheck_alcotest.to_alcotest

(* ---- rng ---- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.next64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues" (Rng.next64 a) (Rng.next64 b)

let test_rng_split () =
  let a = Rng.create 7 in
  let child = Rng.split a in
  Alcotest.(check bool) "split differs from parent" true
    (Rng.next64 child <> Rng.next64 a)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_int_in =
  QCheck.Test.make ~name:"rng int_in inclusive" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let rng = Rng.create seed in
      let v = Rng.int_in rng lo (lo + span) in
      v >= lo && v <= lo + span)

let prop_rng_float_unit =
  QCheck.Test.make ~name:"rng float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let f = Rng.float rng in
      f >= 0.0 && f < 1.0)

let prop_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle permutes" ~count:200
    QCheck.(pair small_int (list_of_size (Gen.int_range 0 30) int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      Rng.shuffle (Rng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

(* ---- bitvec ---- *)

let prop_bitvec_set_get =
  QCheck.Test.make ~name:"bitvec set/get" ~count:500
    QCheck.(pair (int_range 1 200) (small_list (int_range 0 1000)))
    (fun (len, idxs) ->
      let t = Bitvec.create len in
      let idxs = List.map (fun k -> k mod len) idxs in
      List.iter (Bitvec.set t) idxs;
      List.for_all (Bitvec.get t) idxs
      && Bitvec.popcount t = List.length (List.sort_uniq compare idxs))

let prop_bitvec_clear =
  QCheck.Test.make ~name:"bitvec clear" ~count:300
    QCheck.(pair (int_range 1 128) (int_range 0 10000))
    (fun (len, k) ->
      let t = Bitvec.create len in
      let k = k mod len in
      Bitvec.set t k;
      Bitvec.clear t k;
      (not (Bitvec.get t k)) && Bitvec.popcount t = 0)

let prop_bitvec_union =
  QCheck.Test.make ~name:"bitvec union popcount" ~count:300
    QCheck.(triple (int_range 1 96) (small_list small_nat) (small_list small_nat))
    (fun (len, xs, ys) ->
      let a = Bitvec.create len and b = Bitvec.create len in
      List.iter (fun k -> Bitvec.set a (k mod len)) xs;
      List.iter (fun k -> Bitvec.set b (k mod len)) ys;
      let u = Bitvec.union a b in
      Bitvec.popcount u >= max (Bitvec.popcount a) (Bitvec.popcount b)
      && Bitvec.popcount u <= Bitvec.popcount a + Bitvec.popcount b)

let test_bitvec_iter_ascending () =
  let t = Bitvec.create 64 in
  List.iter (Bitvec.set t) [ 5; 1; 63; 17 ];
  let seen = ref [] in
  Bitvec.iter_set (fun k -> seen := k :: !seen) t;
  Alcotest.(check (list int)) "ascending order" [ 1; 5; 17; 63 ] (List.rev !seen)

let test_bitvec_string () =
  let t = Bitvec.create 4 in
  Bitvec.set t 0;
  Bitvec.set t 2;
  Alcotest.(check string) "little-endian" "1010" (Bitvec.to_string t);
  Bitvec.set_all t;
  Alcotest.(check string) "all set" "1111" (Bitvec.to_string t);
  Bitvec.clear_all t;
  Alcotest.(check string) "cleared" "0000" (Bitvec.to_string t)

(* ---- stats ---- *)

let test_stats_counters () =
  let g = Stats.group "test" in
  let c1 = Stats.counter g "a" in
  let c2 = Stats.counter g "b" in
  Stats.incr c1;
  Stats.add c2 10;
  Stats.incr c1;
  Alcotest.(check (list (pair string int))) "values"
    [ ("a", 2); ("b", 10) ] (Stats.to_list g);
  Alcotest.(check int) "find" 10 (Stats.find g "b");
  Stats.reset_group g;
  Alcotest.(check int) "reset" 0 (Stats.value c1)

let test_stats_duplicate () =
  let g = Stats.group "dups" in
  let _ = Stats.counter g "x" in
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Stats.counter: duplicate \"x\" in group \"dups\"")
    (fun () -> ignore (Stats.counter g "x"))

let test_stats_ratio () =
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (Stats.ratio ~num:1 ~den:2);
  Alcotest.(check (float 1e-9)) "zero den" 0.0 (Stats.ratio ~num:5 ~den:0)

let prop_summary_mean =
  QCheck.Test.make ~name:"summary mean matches direct" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.observe s) xs;
      let direct = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Stats.Summary.mean s -. direct) < 1e-6
      && Stats.Summary.min s = List.fold_left min infinity xs
      && Stats.Summary.max s = List.fold_left max neg_infinity xs)

let test_summary_empty () =
  (* Regression: min/max of an empty summary used to leak the infinity
     sentinels while mean guarded with 0. All four are 0 at n = 0. *)
  let s = Stats.Summary.create () in
  Alcotest.(check int) "n" 0 (Stats.Summary.n s);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Stats.Summary.mean s);
  Alcotest.(check (float 0.0)) "stddev" 0.0 (Stats.Summary.stddev s);
  Alcotest.(check (float 0.0)) "min" 0.0 (Stats.Summary.min s);
  Alcotest.(check (float 0.0)) "max" 0.0 (Stats.Summary.max s);
  (* and the first observation still seeds the extrema correctly *)
  Stats.Summary.observe s (-2.5);
  Alcotest.(check (float 0.0)) "min after first" (-2.5) (Stats.Summary.min s);
  Alcotest.(check (float 0.0)) "max after first" (-2.5) (Stats.Summary.max s)

let test_summary_percentile () =
  let s = Stats.Summary.create () in
  Alcotest.(check (float 0.0)) "empty" 0.0 (Stats.Summary.percentile 0.5 s);
  Stats.Summary.observe s 7.0;
  Alcotest.(check int) "count" 1 (Stats.Summary.count s);
  (* a single sample is every percentile *)
  Alcotest.(check (float 0.0)) "single p0" 7.0 (Stats.Summary.percentile 0.0 s);
  Alcotest.(check (float 0.0)) "single p50" 7.0 (Stats.Summary.percentile 0.5 s);
  Alcotest.(check (float 0.0)) "single p100" 7.0 (Stats.Summary.percentile 1.0 s);
  (* out-of-range p clamps rather than raising *)
  Alcotest.(check (float 0.0)) "clamp low" 7.0 (Stats.Summary.percentile (-1.0) s);
  Alcotest.(check (float 0.0)) "clamp high" 7.0 (Stats.Summary.percentile 2.0 s)

let test_summary_percentile_ties () =
  let s = Stats.Summary.create () in
  (* observation order must not matter, and ties collapse to the value *)
  List.iter (Stats.Summary.observe s) [ 3.0; 1.0; 3.0; 2.0; 3.0 ];
  Alcotest.(check (float 0.0)) "p0 is min" 1.0 (Stats.Summary.percentile 0.0 s);
  Alcotest.(check (float 0.0)) "p20 rank 1" 1.0 (Stats.Summary.percentile 0.2 s);
  Alcotest.(check (float 0.0)) "p40 rank 2" 2.0 (Stats.Summary.percentile 0.4 s);
  Alcotest.(check (float 0.0)) "p50 rank 3" 3.0 (Stats.Summary.percentile 0.5 s);
  Alcotest.(check (float 0.0)) "p100 is max" 3.0 (Stats.Summary.percentile 1.0 s);
  (* interleave a query with more observations: cache must invalidate *)
  Stats.Summary.observe s 0.0;
  Alcotest.(check (float 0.0)) "p0 after growth" 0.0
    (Stats.Summary.percentile 0.0 s)

let prop_summary_percentile_sorted =
  QCheck.Test.make ~name:"percentile 1.0 = max, 0.0 = min" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 40) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.observe s) xs;
      Stats.Summary.percentile 0.0 s = List.fold_left min infinity xs
      && Stats.Summary.percentile 1.0 s = List.fold_left max neg_infinity xs
      && Stats.Summary.count s = List.length xs)

(* ---- tablefmt ---- *)

let test_tablefmt_render () =
  let out = Tablefmt.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "four lines" 4 (List.length lines);
  (match lines with
   | _ :: sep :: _ -> Alcotest.(check bool) "separator dashes" true
                        (String.for_all (fun c -> c = '-' || c = ' ') sep)
   | _ -> Alcotest.fail "expected separator")

let test_tablefmt_arity () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Tablefmt.render: row arity mismatch") (fun () ->
      ignore (Tablefmt.render ~header:[ "a" ] [ [ "1"; "2" ] ]))

let test_tablefmt_formats () =
  Alcotest.(check string) "percent" "31.4%" (Tablefmt.percent 0.314);
  Alcotest.(check string) "times" "10.6x" (Tablefmt.times 10.63);
  Alcotest.(check string) "fixed" "2.50" (Tablefmt.fixed 2 2.5)

let tests =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "rng split" `Quick test_rng_split;
    qtest prop_rng_int_bounds;
    qtest prop_rng_int_in;
    qtest prop_rng_float_unit;
    qtest prop_shuffle_permutes;
    qtest prop_bitvec_set_get;
    qtest prop_bitvec_clear;
    qtest prop_bitvec_union;
    Alcotest.test_case "bitvec iter ascending" `Quick test_bitvec_iter_ascending;
    Alcotest.test_case "bitvec to_string" `Quick test_bitvec_string;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
    Alcotest.test_case "stats duplicate" `Quick test_stats_duplicate;
    Alcotest.test_case "stats ratio" `Quick test_stats_ratio;
    qtest prop_summary_mean;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "summary percentile" `Quick test_summary_percentile;
    Alcotest.test_case "summary percentile ties" `Quick test_summary_percentile_ties;
    qtest prop_summary_percentile_sorted;
    Alcotest.test_case "tablefmt render" `Quick test_tablefmt_render;
    Alcotest.test_case "tablefmt arity" `Quick test_tablefmt_arity;
    Alcotest.test_case "tablefmt formats" `Quick test_tablefmt_formats;
  ]
