(* Sampled simulation: the degenerate full-coverage path must reproduce
   the ordinary detailed run bit-exactly, checkpoints must round-trip to
   an identical remaining execution, fast-forward warming must leave the
   microarchitectural state a detailed run would, estimates must be
   worker-count independent, and the estimation error must shrink (on
   average) as coverage grows — on the curated workloads and on random
   programs alike. *)

module Exec = Sempe_core.Exec
module Run = Sempe_core.Run
module Scheme = Sempe_core.Scheme
module Timing = Sempe_pipeline.Timing
module Config = Sempe_pipeline.Config
module Warm = Sempe_pipeline.Warm
module Checkpoint = Sempe_sampling.Checkpoint
module Sampling = Sempe_sampling.Sampling
module Harness = Sempe_workloads.Harness
module MB = Sempe_workloads.Microbench
module Kernels = Sempe_workloads.Kernels
module Djpeg = Sempe_workloads.Djpeg
module Rsa = Sempe_workloads.Rsa
module Leakage = Sempe_security.Leakage

(* Interval/warmup sized so the sub-full coverages stay under the
   cost-model fallback threshold (see [test_cost_model_fallback]) and the
   tests keep exercising the genuinely sampled path. *)
let cfg ?(interval = 20_000) ?(warmup = 2_000) coverage =
  { Sampling.default_config with Sampling.interval; coverage; warmup }

(* (name, built, globals, arrays) — the curated perf workloads. *)
let workloads () =
  let mb kernel iters =
    let spec = { MB.kernel; width = 4; iters } in
    ( "mb-" ^ kernel.Kernels.name,
      Harness.build Scheme.Sempe (MB.program ~ct:false spec),
      MB.secrets_for_leaf ~width:4 ~leaf:1,
      [] )
  in
  let djpeg =
    let globals, arrays = Djpeg.inputs Djpeg.Ppm ~seed:42 ~blocks:8 in
    ( "djpeg-ppm",
      Harness.build Scheme.Sempe (Djpeg.program Djpeg.Ppm),
      globals,
      arrays )
  in
  [ mb Kernels.fibonacci 40; mb Kernels.quicksort 6; djpeg ]

let full_cycles built ~globals ~arrays =
  Run.cycles (Harness.run ~globals ~arrays built)

let test_full_coverage_exact () =
  List.iter
    (fun (name, built, globals, arrays) ->
      let full = full_cycles built ~globals ~arrays in
      let est = Harness.sample ~globals ~arrays ~config:(cfg 1.0) built in
      Alcotest.(check bool) (name ^ ": exact flag") true est.Sampling.exact;
      Alcotest.(check int) (name ^ ": cycles") full est.Sampling.cycles_estimate;
      Alcotest.(check int) (name ^ ": zero-width band low") full
        est.Sampling.cycles_low;
      Alcotest.(check int) (name ^ ": zero-width band high") full
        est.Sampling.cycles_high;
      Alcotest.(check bool) (name ^ ": report attached") true
        (est.Sampling.report <> None))
    (workloads ())

let test_workers_deterministic () =
  List.iter
    (fun (name, built, globals, arrays) ->
      let run workers =
        let est =
          Harness.sample ~globals ~arrays ~config:(cfg 0.25) ~workers built
        in
        (* [report] is [None] off the exact path; everything else is plain
           scalars, so structural equality is exactly what we mean. *)
        { est with Sampling.report = None }
      in
      let e1 = run 1 in
      List.iter
        (fun w ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: workers=%d equals workers=1" name w)
            true
            (run w = e1))
        [ 2; 8 ])
    (workloads ())

(* Fast-forward functional warming must drive the caches and predictors
   through the same state trajectory as the detailed timing model: after
   a complete run, the content signatures must agree exactly. *)
let test_warm_fidelity () =
  List.iter
    (fun (name, built, globals, arrays) ->
      (* Drive both modes by hand over the same program + inputs. *)
      let prog = built.Harness.prog in
      let exec_config =
        { Exec.default_config with Exec.support = Scheme.support built.scheme }
      in
      let init_mem = Harness.init_mem_of built ~globals ~arrays in
      let timing = Timing.create () in
      let (_ : Exec.result) =
        Exec.run ~config:exec_config ~init_mem ~sink:(Timing.feed timing) prog
      in
      let warm = Warm.create () in
      let (_ : Exec.result) =
        Exec.finish (Exec.start ~config:exec_config ~init_mem ~warm prog)
      in
      let detailed_warm = Timing.warm_state timing in
      Alcotest.(check int) (name ^ ": predictor/BTB/ITTAGE signature")
        (Warm.predictor_signature detailed_warm)
        (Warm.predictor_signature warm);
      Alcotest.(check int) (name ^ ": cache-hierarchy signature")
        (Warm.cache_signature detailed_warm)
        (Warm.cache_signature warm))
    (workloads ())

(* Save a checkpoint mid-run, restore it twice, and run each restore to
   completion under a detailed timing model: both must produce the same
   remaining commit trace and the same report (restores are independent
   deep copies), and agree with the uncheckpointed reference about the
   architectural outcome. *)
let test_checkpoint_roundtrip () =
  let built = Harness.build Scheme.Sempe Rsa.program in
  let globals, arrays = Rsa.inputs ~key:0x1234 ~base:1234 ~modulus:99991 in
  let prog = built.Harness.prog in
  let exec_config =
    { Exec.default_config with Exec.support = Scheme.support built.scheme }
  in
  let init_mem = Harness.init_mem_of built ~globals ~arrays in
  let reference = Run.execute ~support:(Scheme.support built.scheme) ~init_mem prog in
  let cut = 300 in
  Alcotest.(check bool) "cut point is mid-run" true
    (cut < reference.Exec.dyn_instrs);
  let warm = Warm.create () in
  let sess = Exec.start ~config:exec_config ~init_mem ~warm prog in
  let (_ : bool) = Exec.step_slice sess cut in
  let ckpt = Checkpoint.save ~arch:(Exec.capture sess) ~warm in
  Alcotest.(check int) "checkpoint instruction count" cut
    (Checkpoint.instructions ckpt);
  Alcotest.(check bool) "checkpoint not halted" false (Checkpoint.halted ckpt);
  Alcotest.(check bool) "checkpoint has bytes" true
    (Checkpoint.size_bytes ckpt > 0);
  let replay () =
    let arch, warm = Checkpoint.restore ckpt in
    let digest = ref 2166136261 in
    let timing = Timing.create ~warm () in
    let sink ev =
      Timing.feed timing ev;
      match ev with
      | Sempe_pipeline.Uop.Commit u ->
        digest := (!digest * 16777619) lxor u.Sempe_pipeline.Uop.pc
      | Sempe_pipeline.Uop.Drain _ -> ()
    in
    let res = Exec.finish (Exec.resume ~sink prog arch) in
    (!digest, Timing.report timing, res)
  in
  let d1, r1, res1 = replay () in
  let d2, r2, res2 = replay () in
  Alcotest.(check int) "remaining trace digests agree" d1 d2;
  Alcotest.(check bool) "remaining reports agree" true (r1 = r2);
  Alcotest.(check int) "remaining instructions" (reference.Exec.dyn_instrs - cut)
    r1.Timing.instructions;
  Alcotest.(check int) "total instructions"
    reference.Exec.dyn_instrs res1.Exec.dyn_instrs;
  Alcotest.(check bool) "architectural registers agree" true
    (res1.Exec.regs = reference.Exec.regs && res2.Exec.regs = reference.Exec.regs);
  Alcotest.(check bool) "memory images agree" true
    (res1.Exec.memory = reference.Exec.memory)

(* Mean relative error over the curated workloads must not grow as
   coverage grows. The sweep is fully deterministic, so this is a fixed
   property of the tree, not a flaky statistical assertion; the small
   epsilon absorbs rounding-level wobble between adjacent levels. *)
let coverages = [ 0.05; 0.25; 0.75 ]

let check_error_shrinks name errors_by_coverage =
  let eps = 0.005 in
  let rec pairs = function
    | (c_lo, e_lo) :: ((c_hi, e_hi) :: _ as rest) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: mean error at %.0f%% (%.4f) <= at %.0f%% (%.4f) + eps"
           name (100. *. c_hi) e_hi (100. *. c_lo) e_lo)
        true
        (e_hi <= e_lo +. eps);
      pairs rest
    | _ -> ()
  in
  pairs errors_by_coverage

let test_error_shrinks_with_coverage () =
  let ws = workloads () in
  let mean_err coverage =
    let errs =
      List.map
        (fun (_, built, globals, arrays) ->
          let full = full_cycles built ~globals ~arrays in
          let est =
            Harness.sample ~globals ~arrays ~config:(cfg coverage) built
          in
          Sampling.relative_error est ~cycles:full)
        ws
    in
    List.fold_left ( +. ) 0. errs /. float_of_int (List.length errs)
  in
  check_error_shrinks "curated workloads"
    (List.map (fun c -> (c, mean_err c)) coverages)

(* The same property on random programs, which exercise arbitrary control
   flow, secret regions and memory traffic. The programs are small, so
   the intervals are scaled to each program's dynamic length (programs
   too short to sample fall back to the exact path with zero error —
   which only ever helps the monotonicity being asserted). Such tiny
   intervals could never pay for the sampling machinery, so the
   cost-model fallback is disabled to keep the sampler itself under
   test. *)
let test_error_shrinks_random_programs () =
  let rand = Random.State.make [| 0x5e39e |] in
  let progs =
    QCheck.Gen.generate ~n:12 ~rand Test_random_progs.gen_program
  in
  let cases =
    List.map
      (fun (prog, fill) ->
        let built = Harness.build Scheme.Sempe prog in
        let globals = [ ("s0", 1); ("s1", 0) ] in
        let arrays = [ ("arr", Array.of_list fill) ] in
        let outcome = Harness.run ~globals ~arrays ~mem_words:(1 lsl 14) built in
        (built, globals, arrays, Run.cycles outcome,
         outcome.Run.timing.Timing.instructions))
      progs
  in
  let mean_err coverage =
    let errs =
      List.map
        (fun (built, globals, arrays, full, n) ->
          let interval = max 20 (n / 25) in
          let config = cfg ~interval ~warmup:(interval / 4) coverage in
          let est =
            Harness.sample ~globals ~arrays ~mem_words:(1 lsl 14) ~config
              ~cost_fallback:false built
          in
          Alcotest.(check int)
            "sampled instruction count matches the full run" n
            est.Sampling.instructions;
          Sampling.relative_error est ~cycles:full)
        cases
    in
    List.fold_left ( +. ) 0. errs /. float_of_int (List.length errs)
  in
  check_error_shrinks "random programs"
    (List.map (fun c -> (c, mean_err c)) coverages);
  (* And full coverage is exact on every random program. *)
  List.iter
    (fun (built, globals, arrays, full, n) ->
      let interval = max 20 (n / 25) in
      let config = cfg ~interval 1.0 in
      let est =
        Harness.sample ~globals ~arrays ~mem_words:(1 lsl 14) ~config built
      in
      Alcotest.(check int) "random program: 100% coverage is exact" full
        est.Sampling.cycles_estimate)
    cases

(* The cost model must keep the default config on the sampled path, and
   divert configurations that cannot pay for their own machinery to the
   exact path — same price in the model, exact answer instead of a noisy
   estimate. *)
let test_cost_model_fallback () =
  Alcotest.(check bool) "default config promises a win" true
    (Sampling.predicted_cost_ratio Sampling.default_config
    < Sampling.fallback_threshold);
  (* Tiny intervals under heavy warmup: every measured interval costs a
     multiple of what it measures. *)
  let bad = cfg ~interval:2_000 ~warmup:2_000 0.5 in
  Alcotest.(check bool) "mis-sized config trips the threshold" true
    (Sampling.predicted_cost_ratio bad >= Sampling.fallback_threshold);
  let name, built, globals, arrays = List.hd (workloads ()) in
  let full = full_cycles built ~globals ~arrays in
  let est = Harness.sample ~globals ~arrays ~config:bad built in
  Alcotest.(check bool) (name ^ ": fell back to exact") true est.Sampling.exact;
  Alcotest.(check int) (name ^ ": exact cycles") full
    est.Sampling.cycles_estimate;
  Alcotest.(check bool) (name ^ ": report attached") true
    (est.Sampling.report <> None);
  (* [~cost_fallback:false] forces the same config down the sampled path:
     the machinery engages and measures a strict subset of intervals. *)
  let forced =
    Harness.sample ~globals ~arrays ~config:bad ~cost_fallback:false built
  in
  Alcotest.(check bool) (name ^ ": forced sampling is not exact") false
    forced.Sampling.exact;
  Alcotest.(check bool)
    (name ^ ": forced sampling measures a strict subset") true
    (forced.Sampling.intervals_measured < forced.Sampling.intervals_total)

let test_config_validation () =
  let built = Harness.build Scheme.Sempe Rsa.program in
  let globals, arrays = Rsa.inputs ~key:3 ~base:2 ~modulus:97 in
  let sample config () =
    ignore (Harness.sample ~globals ~arrays ~config built)
  in
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Sampling.estimate: interval must be positive")
    (sample { Sampling.default_config with Sampling.interval = 0 });
  Alcotest.check_raises "coverage over 1"
    (Invalid_argument "Sampling.estimate: coverage must be in (0, 1]")
    (sample { Sampling.default_config with Sampling.coverage = 1.5 });
  Alcotest.check_raises "coverage zero"
    (Invalid_argument "Sampling.estimate: coverage must be in (0, 1]")
    (sample { Sampling.default_config with Sampling.coverage = 0. })

(* Satellite: comparing fewer than two attacker views is a harness bug,
   not a "no leak" result. *)
let test_leakage_needs_two_views () =
  let msg =
    Invalid_argument "Leakage.compare_views: need at least 2 views to compare"
  in
  Alcotest.check_raises "empty view list" msg (fun () ->
      ignore (Leakage.compare_views []));
  let one =
    {
      Sempe_security.Observable.cycles = 1;
      instructions = 1;
      pc_digest = 0;
      pc_digest2 = 0;
      addr_digest = 0;
      addr_digest2 = 0;
      mem_ops = 0;
      il1_sig = 0;
      dl1_sig = 0;
      l2_sig = 0;
      bpred_sig = 0;
      il1_accesses = 0;
      il1_misses = 0;
      dl1_accesses = 0;
      dl1_misses = 0;
      l2_accesses = 0;
      l2_misses = 0;
      mispredicts = 0;
    }
  in
  Alcotest.check_raises "single view" msg (fun () ->
      ignore (Leakage.compare_views [ one ]));
  Alcotest.check_raises "leaky_channels single view" msg (fun () ->
      ignore (Leakage.leaky_channels [ one ]))

let tests =
  [
    Alcotest.test_case "full coverage is exact" `Quick test_full_coverage_exact;
    Alcotest.test_case "estimate independent of worker count" `Quick
      test_workers_deterministic;
    Alcotest.test_case "ff warming matches detailed warming" `Quick
      test_warm_fidelity;
    Alcotest.test_case "checkpoint round-trip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "error shrinks with coverage (curated)" `Slow
      test_error_shrinks_with_coverage;
    Alcotest.test_case "error shrinks with coverage (random programs)" `Slow
      test_error_shrinks_random_programs;
    Alcotest.test_case "cost-model fallback" `Quick test_cost_model_fallback;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "leakage needs two views" `Quick
      test_leakage_needs_two_views;
  ]
