(* Table-driven coverage of the CLI surface: exec the real executables,
   check exit codes and the structure of --json output, so flag
   regressions are caught without running the full examples. *)

module Json = Sempe_obs.Json

(* Resolve the executables relative to the test binary, so the table
   works under both `dune runtest` and `dune exec` from any directory. *)
let build_dir = Filename.dirname (Filename.dirname Sys.executable_name)
let sim_exe = Filename.concat build_dir "bin/sempe_sim.exe"
let bench_exe = Filename.concat build_dir "bench/main.exe"

(* [run exe args] execs and returns (exit code, stdout). *)
let run exe args =
  let out = Filename.temp_file "sempe-cli" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      let cmd =
        String.concat " "
          (List.map Filename.quote (exe :: args))
        ^ " > " ^ Filename.quote out ^ " 2> /dev/null"
      in
      let code = Sys.command cmd in
      let text = In_channel.with_open_text out In_channel.input_all in
      (code, text))

type expect =
  | Non_empty  (** human-readable output: anything on stdout *)
  | Json_with of string list  (** a JSON document carrying these members *)
  | Ignore_output

let sim_table =
  [
    ("config prints the machine model", [ "config" ], 0, Non_empty);
    ( "microbench --json",
      [ "microbench"; "-w"; "2"; "-i"; "2"; "--json" ],
      0,
      Json_with [ "workload"; "kernel"; "checksum"; "report" ] );
    ( "microbench sampled --json",
      [ "microbench"; "-w"; "2"; "-i"; "2"; "--sample"; "--json" ],
      0,
      Json_with [ "workload"; "sampling" ] );
    ( "djpeg --json",
      [ "djpeg"; "-b"; "2"; "--json" ],
      0,
      Json_with [ "workload"; "format"; "checksum"; "report" ] );
    ( "sample --compare-full --json",
      [ "sample"; "fibonacci"; "--iters"; "20"; "--coverage"; "0.25"; "-j";
        "1"; "--compare-full"; "--json" ],
      0,
      Json_with [ "in_bound" ] );
    ( "fuzz --json",
      [ "fuzz"; "--seed"; "7"; "--count"; "8"; "--no-corpus"; "--json" ],
      0,
      Json_with [ "executed"; "generated"; "mutants"; "features"; "failures" ]
    );
    ( "fuzz rejects unknown oracles",
      [ "fuzz"; "--count"; "1"; "--no-corpus"; "--oracle"; "bogus" ],
      124,
      Ignore_output );
    ( "fuzz rejects unknown faults",
      [ "fuzz"; "--count"; "1"; "--no-corpus"; "--fault"; "bogus" ],
      124,
      Ignore_output );
    ("unknown subcommand fails", [ "frobnicate" ], 124, Ignore_output);
    ("bad flag value fails", [ "fuzz"; "--count"; "lots" ], 124, Ignore_output);
    ( "leakage rejects unknown channels",
      [ "leakage"; "--attribute"; "--channel"; "bogus" ],
      124,
      Ignore_output );
    ( "leakage --channel requires --attribute",
      [ "leakage"; "--channel"; "timing" ],
      124,
      Ignore_output );
    (* The serving surface follows the same exit-code convention: bad
       addresses, unknown ops and unknown flags all exit 124 before any
       connection is attempted. *)
    ( "serve rejects a bad address",
      [ "serve"; "--listen"; "tcp:missing-port" ],
      124,
      Ignore_output );
    ( "serve rejects an unknown flag",
      [ "serve"; "--frobnicate" ],
      124,
      Ignore_output );
    ( "client rejects an unknown op",
      [ "client"; "frobnicate" ],
      124,
      Ignore_output );
    ( "client rejects a bad address",
      [ "client"; "ping"; "-c"; "tcp:missing-port" ],
      124,
      Ignore_output );
    ( "loadgen rejects an unknown mix element",
      [ "loadgen"; "--mix"; "bogus" ],
      124,
      Ignore_output );
    ( "loadgen rejects a bad flag value",
      [ "loadgen"; "--clients"; "many" ],
      124,
      Ignore_output );
  ]

let check_expect name expect stdout =
  match expect with
  | Ignore_output -> ()
  | Non_empty ->
    Alcotest.(check bool) (name ^ ": stdout non-empty") true (stdout <> "")
  | Json_with members -> (
    match Json.of_string (String.trim stdout) with
    | exception Json.Parse_error { pos; message } ->
      Alcotest.failf "%s: stdout is not JSON (at %d: %s)" name pos message
    | doc ->
      List.iter
        (fun m ->
          match Json.member m doc with
          | Some _ -> ()
          | None -> Alcotest.failf "%s: JSON lacks member %S" name m)
        members)

let sim_case (name, args, expected_code, expect) =
  Alcotest.test_case name `Quick (fun () ->
      let code, stdout = run sim_exe args in
      Alcotest.(check int) (name ^ ": exit code") expected_code code;
      check_expect name expect stdout)

(* ---- the bench perf gate, against handcrafted record files ---- *)

let perf_record ?(instructions = 200_000) workload mode rate =
  Json.Obj
    [
      ("workload", Json.Str workload);
      ("mode", Json.Str mode);
      ("instructions", Json.Int instructions);
      ("cycles", Json.Int 1000);
      ("wall_s", Json.Float 0.01);
      ("minstr_per_s", Json.Float rate);
      ("speedup", Json.Float 1.0);
    ]

let write_records records =
  let file = Filename.temp_file "sempe-gate" ".json" in
  Out_channel.with_open_text file (fun oc ->
      output_string oc (Json.to_string (Json.List records)));
  file

let gate_case name ~baseline ~current ~args ~expected_code =
  Alcotest.test_case name `Quick (fun () ->
      let bfile = write_records baseline in
      let cfile = write_records current in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove bfile;
          Sys.remove cfile)
        (fun () ->
          let code, _ =
            run bench_exe
              ([ "gate"; "--baseline"; bfile; "--current"; cfile ] @ args)
          in
          Alcotest.(check int) (name ^ ": exit code") expected_code code))

let base_records =
  [ perf_record "fib" "full" 10.0; perf_record "fib" "sampled" 20.0 ]

let gate_table =
  [
    gate_case "gate passes on identical records" ~baseline:base_records
      ~current:base_records ~args:[] ~expected_code:0;
    gate_case "gate fails when tolerance < slowdown" ~baseline:base_records
      ~current:[ perf_record "fib" "full" 5.0; perf_record "fib" "sampled" 20.0 ]
      ~args:[ "--tolerance"; "30" ] ~expected_code:1;
    gate_case "gate tolerates a slowdown within tolerance"
      ~baseline:base_records
      ~current:[ perf_record "fib" "full" 5.0; perf_record "fib" "sampled" 20.0 ]
      ~args:[ "--tolerance"; "60" ] ~expected_code:0;
    gate_case "gate fails on a missing record" ~baseline:base_records
      ~current:[ perf_record "fib" "full" 10.0 ]
      ~args:[] ~expected_code:1;
    gate_case "gate ignores rate improvements" ~baseline:base_records
      ~current:
        [ perf_record "fib" "full" 100.0; perf_record "fib" "sampled" 200.0 ]
      ~args:[ "--tolerance"; "0" ] ~expected_code:0;
    (* a sampled record slower than its full sibling fails regardless of
       the baseline or tolerance: sampling that costs wall clock is a
       bug, the estimator should have fallen back to the exact path *)
    gate_case "gate fails a sampled record slower than full"
      ~baseline:base_records
      ~current:
        [ perf_record "fib" "full" 100.0; perf_record "fib" "sampled" 99.0 ]
      ~args:[ "--tolerance"; "1000" ] ~expected_code:1;
    (* measured-work floor: a current record over too few instructions
       fails the gate even when its rate looks fine *)
    gate_case "gate fails below the min-work floor" ~baseline:base_records
      ~current:
        [ perf_record ~instructions:1000 "fib" "full" 10.0;
          perf_record "fib" "sampled" 20.0 ]
      ~args:[] ~expected_code:1;
    gate_case "gate min-work floor is configurable" ~baseline:base_records
      ~current:
        [ perf_record ~instructions:1000 "fib" "full" 10.0;
          perf_record "fib" "sampled" 20.0 ]
      ~args:[ "--min-work"; "500" ] ~expected_code:0;
  ]

let gate_malformed =
  Alcotest.test_case "gate rejects malformed baselines" `Quick (fun () ->
      let bfile = Filename.temp_file "sempe-gate" ".json" in
      Out_channel.with_open_text bfile (fun oc ->
          output_string oc "{\"not\":\"a list\"}");
      Fun.protect
        ~finally:(fun () -> Sys.remove bfile)
        (fun () ->
          let code, _ = run bench_exe [ "gate"; "--baseline"; bfile ] in
          Alcotest.(check int) "exit code" 2 code))

(* ---- end-to-end Perfetto sink contract: `trace` writes a complete,
   parseable Chrome trace-event document (footer written on close) ---- *)

let trace_perfetto =
  Alcotest.test_case "trace writes a parseable Perfetto document" `Quick
    (fun () ->
      let out = Filename.temp_file "sempe-trace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove out)
        (fun () ->
          let code, _ =
            run sim_exe
              [ "trace"; "fibonacci"; "-w"; "2"; "-i"; "1"; "-o"; out ]
          in
          Alcotest.(check int) "trace exit code" 0 code;
          let text = In_channel.with_open_text out In_channel.input_all in
          match Json.of_string (String.trim text) with
          | exception Json.Parse_error { pos; message } ->
            Alcotest.failf "trace output is not JSON (at %d: %s)" pos message
          | doc -> (
            Alcotest.(check bool) "displayTimeUnit present" true
              (Json.member "displayTimeUnit" doc <> None);
            match Json.member "traceEvents" doc with
            | Some (Json.List (_ :: _)) -> ()
            | Some _ -> Alcotest.fail "traceEvents is not a non-empty list"
            | None -> Alcotest.fail "traceEvents member missing")))

(* ---- `leakage --attribute --json`: the paper's claim as JSON — the
   SeMPE scheme reports zero divergent events on every channel ---- *)

let leakage_attribute_json =
  Alcotest.test_case "leakage --attribute --json, sempe clean" `Quick
    (fun () ->
      let code, stdout =
        run sim_exe [ "leakage"; "--attribute"; "--json"; "-j"; "2" ]
      in
      Alcotest.(check int) "exit code" 0 code;
      match Json.of_string (String.trim stdout) with
      | exception Json.Parse_error { pos; message } ->
        Alcotest.failf "not JSON (at %d: %s)" pos message
      | Json.List entries ->
        Alcotest.(check bool) "one entry per scheme" true
          (List.length entries >= 2);
        let find_scheme name =
          List.find_opt
            (fun e -> Json.member "scheme" e = Some (Json.Str name))
            entries
        in
        let clean_of e =
          match Json.member "attribution" e with
          | Some attr -> (
            match (Json.member "clean" attr, Json.member "total_divergent" attr) with
            | Some (Json.Bool c), Some (Json.Int n) -> (c, n)
            | _ -> Alcotest.fail "attribution lacks clean/total_divergent")
          | None -> Alcotest.fail "entry lacks attribution"
        in
        (match find_scheme "sempe" with
         | None -> Alcotest.fail "no sempe entry"
         | Some e ->
           let clean, total = clean_of e in
           Alcotest.(check bool) "sempe clean" true clean;
           Alcotest.(check int) "sempe zero divergent events" 0 total);
        (match find_scheme "baseline" with
         | None -> Alcotest.fail "no baseline entry"
         | Some e ->
           let clean, total = clean_of e in
           Alcotest.(check bool) "baseline attributed" true
             ((not clean) && total > 0))
      | _ -> Alcotest.fail "expected a JSON list of scheme entries")

let tests =
  List.map sim_case sim_table
  @ gate_table
  @ [ gate_malformed; trace_perfetto; leakage_attribute_json ]
