(* The differential fuzzer itself: generator determinism, oracles clean
   on healthy builds, worker-count-independent outcomes, seeded faults
   caught and minimized, corpus round-trips. *)

module Gen = Sempe_fuzz.Gen
module Oracle = Sempe_fuzz.Oracle
module Minimize = Sempe_fuzz.Minimize
module Corpus = Sempe_fuzz.Corpus
module Fuzz = Sempe_fuzz.Fuzz
module Exec = Sempe_core.Exec
module Json = Sempe_obs.Json

let no_corpus cfg = { cfg with Fuzz.corpus_dir = None }

let gen_deterministic () =
  List.iter
    (fun seed ->
      let a = Gen.generate seed and b = Gen.generate seed in
      Alcotest.(check string)
        (Printf.sprintf "seed %d reproduces" seed)
        (Gen.to_source a) (Gen.to_source b))
    [ 1; 2; 17; 123456789 ];
  let distinct =
    List.sort_uniq compare
      (List.map (fun s -> Gen.to_source (Gen.generate s)) [ 1; 2; 3; 4; 5 ])
  in
  Alcotest.(check bool) "different seeds vary" true (List.length distinct > 1)

let gen_affordable () =
  (* The generator's budget must hold for the SeMPE build, which executes
     both paths of every secure branch. *)
  List.iter
    (fun seed ->
      let case = Gen.generate seed in
      let built =
        Sempe_workloads.Harness.build Sempe_core.Scheme.Sempe case.Gen.prog
      in
      List.iter
        (fun secrets ->
          let res =
            Sempe_core.Run.execute
              ~support:(Sempe_core.Scheme.support Sempe_core.Scheme.Sempe)
              ~mem_words:(1 lsl 14)
              ~max_instrs:Gen.default_cfg.Gen.max_dyn_instrs
              ~init_mem:
                (Sempe_workloads.Harness.init_mem_of built ~globals:secrets
                   ~arrays:[ (Gen.array_name, case.Gen.fill) ])
              built.Sempe_workloads.Harness.prog
          in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d halts in budget" seed)
            true
            (res.Exec.dyn_instrs <= Gen.default_cfg.Gen.max_dyn_instrs))
        case.Gen.secrets)
    [ 1; 7; 42 ]

let oracles_clean () =
  List.iter
    (fun seed ->
      let case = Gen.generate seed in
      match Oracle.run_all Oracle.all Oracle.default_ctx case with
      | None -> ()
      | Some (oracle, msg) ->
        Alcotest.failf "seed %d: oracle %s: %s\n%s" seed oracle msg
          (Gen.to_source case))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let run_clean () =
  let cfg = no_corpus { Fuzz.default_config with Fuzz.seed = 11; count = 20 } in
  let outcome = Fuzz.run cfg in
  Alcotest.(check int) "executed" 20 outcome.Fuzz.executed;
  Alcotest.(check int) "no failures" 0 (List.length outcome.Fuzz.failures);
  Alcotest.(check bool) "features observed" true (outcome.Fuzz.features > 0)

let workers_deterministic () =
  let cfg workers =
    no_corpus { Fuzz.default_config with Fuzz.seed = 3; count = 12; workers }
  in
  let doc workers = Json.to_string (Fuzz.to_json (Fuzz.run (cfg workers))) in
  Alcotest.(check string) "1 worker = 2 workers" (doc 1) (doc 2)

let fault_caught () =
  List.iter
    (fun fault ->
      let cfg =
        no_corpus
          {
            Fuzz.default_config with
            Fuzz.seed = 42;
            count = 64;
            max_failures = 1;
            ctx = { Oracle.default_ctx with Oracle.fault };
          }
      in
      let outcome = Fuzz.run cfg in
      match outcome.Fuzz.failures with
      | [] ->
        Alcotest.failf "%s escaped 64 fuzz cases" (Exec.fault_name fault)
      | f :: _ ->
        Alcotest.(check string)
          (Exec.fault_name fault ^ " flagged by the state oracle")
          "state" f.Fuzz.f_oracle;
        Alcotest.(check bool)
          (Printf.sprintf "reproducer is small (%d statements)"
             f.Fuzz.f_min_size)
          true
          (f.Fuzz.f_min_size <= 20))
    [ Exec.Skip_restore; Exec.Skip_nt_restore ]

let minimizer_shrinks () =
  let ctx = { Oracle.default_ctx with Oracle.fault = Exec.Skip_restore } in
  let still case =
    match Oracle.run_all Oracle.all ctx case with
    | Some ("state", _) -> true
    | Some _ | None -> false
  in
  let rec find seed =
    if seed > 200 then Alcotest.fail "no failing seed found"
    else
      let case = Gen.generate seed in
      if still case then case else find (seed + 1)
  in
  let case = find 1 in
  let small, stats = Minimize.minimize ~still case in
  Alcotest.(check bool) "still fails" true (still small);
  Alcotest.(check bool) "no growth" true (Gen.size small <= Gen.size case);
  Alcotest.(check bool) "spent trials" true (stats.Minimize.trials > 0);
  let again, _ = Minimize.minimize ~still case in
  Alcotest.(check string) "deterministic walk" (Gen.to_source small)
    (Gen.to_source again)

let corpus_roundtrip () =
  let case = Gen.generate 9 in
  let entry = { Corpus.case; oracle = "state"; message = "test entry" } in
  let entry' = Corpus.of_json (Corpus.to_json entry) in
  Alcotest.(check string) "source survives" (Gen.to_source case)
    (Gen.to_source entry'.Corpus.case);
  Alcotest.(check bool) "fill survives" true
    (entry'.Corpus.case.Gen.fill = case.Gen.fill);
  Alcotest.(check bool) "secrets survive" true
    (entry'.Corpus.case.Gen.secrets = case.Gen.secrets)

let corpus_replay () =
  let dir = Filename.temp_file "sempe-corpus" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let case = Gen.generate 21 in
      let path =
        Corpus.save ~dir { Corpus.case; oracle = "state"; message = "kept" }
      in
      Alcotest.(check bool) "file written" true (Sys.file_exists path);
      let entries = Corpus.load_dir dir in
      Alcotest.(check int) "one entry" 1 (List.length entries);
      (* A healthy simulator passes every replayed reproducer. *)
      let cfg =
        {
          Fuzz.default_config with
          Fuzz.seed = 1;
          count = 0;
          corpus_dir = Some dir;
        }
      in
      let outcome = Fuzz.run cfg in
      Alcotest.(check int) "replayed" 1 outcome.Fuzz.replayed;
      Alcotest.(check int) "replay clean" 0 (List.length outcome.Fuzz.failures))

let tests =
  [
    Alcotest.test_case "generator is seed-deterministic" `Quick
      gen_deterministic;
    Alcotest.test_case "generated cases stay in the dynamic budget" `Quick
      gen_affordable;
    Alcotest.test_case "all oracles pass on generated cases" `Quick
      oracles_clean;
    Alcotest.test_case "driver finds nothing on a healthy tree" `Quick
      run_clean;
    Alcotest.test_case "outcome is worker-count-independent" `Slow
      workers_deterministic;
    Alcotest.test_case "seeded restore faults are caught and minimized" `Quick
      fault_caught;
    Alcotest.test_case "minimizer shrinks deterministically" `Quick
      minimizer_shrinks;
    Alcotest.test_case "corpus entries round-trip through JSON" `Quick
      corpus_roundtrip;
    Alcotest.test_case "corpus replay runs before generation" `Quick
      corpus_replay;
  ]
