(* sempe-sim: command-line front end to the SeMPE simulator.

   Subcommands: config, microbench, djpeg, rsa, leakage, report, disasm. *)

open Cmdliner
module Scheme = Sempe_core.Scheme
module Run = Sempe_core.Run
module Timing = Sempe_pipeline.Timing
module Config = Sempe_pipeline.Config
module Harness = Sempe_workloads.Harness
module MB = Sempe_workloads.Microbench
module Kernels = Sempe_workloads.Kernels
module Djpeg = Sempe_workloads.Djpeg
module Rsa = Sempe_workloads.Rsa
module Tablefmt = Sempe_util.Tablefmt

let scheme_conv =
  let parse s =
    match Scheme.of_string s with
    | Some v -> Ok v
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown scheme %S (expected one of: %s)" s
              (String.concat ", " (List.map Scheme.name Scheme.all))))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Scheme.name s))

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Scheme.Sempe
    & info [ "scheme"; "s" ] ~docv:"SCHEME"
        ~doc:"Protection scheme: baseline, sempe, sempe-on-legacy, cte, raccoon or mto.")

(* Parallel fan-out of the experiment grids (report / leakage). The
   rendered output is byte-identical at any -j. *)
let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the simulation sweeps. 0 (the default) \
           means one per core; 1 forces the sequential path.")

let set_jobs j =
  Sempe_experiments.Batch.set_jobs
    (if j <= 0 then Sempe_experiments.Batch.default_jobs () else j)

let print_report (r : Timing.report) =
  Tablefmt.print ~header:[ "metric"; "value" ]
    [
      [ "instructions"; string_of_int r.Timing.instructions ];
      [ "cycles"; string_of_int r.Timing.cycles ];
      [ "CPI"; Tablefmt.fixed 3 r.Timing.cpi ];
      [ "time @2GHz"; Printf.sprintf "%.1f us" (Run.seconds Config.default r.Timing.cycles *. 1e6) ];
      [ "cond. branches"; string_of_int r.Timing.cond_branches ];
      [ "mispredicts"; string_of_int r.Timing.mispredicts ];
      [ "secure branches (sJMP)"; string_of_int r.Timing.secure_branches ];
      [ "pipeline drains"; string_of_int r.Timing.drains ];
      [ "SPM transfer cycles"; string_of_int r.Timing.spm_cycles ];
      [ "loads / stores";
        Printf.sprintf "%d / %d" r.Timing.loads r.Timing.stores ];
      [ "IL1 miss rate"; Tablefmt.percent r.Timing.il1_miss_rate ];
      [ "DL1 miss rate"; Tablefmt.percent r.Timing.dl1_miss_rate ];
      [ "L2 miss rate"; Tablefmt.percent r.Timing.l2_miss_rate ];
    ]

(* ---- config ---- *)

let config_cmd =
  let run () =
    Tablefmt.print ~header:[ "parameter"; "value" ]
      (List.map (fun (k, v) -> [ k; v ]) (Config.rows Config.default))
  in
  Cmd.v (Cmd.info "config" ~doc:"Print the Table II machine model.")
    Term.(const run $ const ())

(* ---- microbench ---- *)

let kernel_conv =
  let parse s =
    match Kernels.by_name s with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown kernel %S (expected: %s)" s
              (String.concat ", "
                 (List.map (fun k -> k.Kernels.name) Kernels.all))))
  in
  Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt k.Kernels.name)

let microbench_cmd =
  let run scheme kernel width iters leaf =
    let ct =
      match scheme with
      | Scheme.Cte | Scheme.Raccoon | Scheme.Mto -> true
      | Scheme.Baseline | Scheme.Sempe | Scheme.Sempe_on_legacy -> false
    in
    let spec = { MB.kernel; width; iters } in
    let src = MB.program ~ct spec in
    let secrets = MB.secrets_for_leaf ~width ~leaf in
    let built = Harness.build scheme src in
    let outcome = Harness.run ~globals:secrets built in
    Printf.printf "microbenchmark %s, W=%d, iters=%d, scheme=%s, true leaf=%d\n"
      kernel.Kernels.name width iters (Scheme.name scheme) leaf;
    Printf.printf "checksum = %d\n\n" (Harness.return_value outcome);
    print_report outcome.Run.timing;
    let base =
      Harness.run ~globals:secrets
        (Harness.build Scheme.Baseline (MB.program ~ct:false spec))
    in
    Printf.printf "\nslowdown vs baseline: %s\n"
      (Tablefmt.times (Run.overhead ~baseline:base outcome))
  in
  let kernel =
    Arg.(
      value & opt kernel_conv Kernels.fibonacci
      & info [ "kernel"; "k" ] ~docv:"KERNEL" ~doc:"Workload kernel.")
  in
  let width =
    Arg.(value & opt int 4 & info [ "width"; "w" ] ~docv:"W" ~doc:"Nesting width W.")
  in
  let iters =
    Arg.(value & opt int 3 & info [ "iters"; "i" ] ~docv:"N" ~doc:"Iterations.")
  in
  let leaf =
    Arg.(value & opt int 1 & info [ "leaf" ] ~docv:"N" ~doc:"True leaf (1..W+1).")
  in
  Cmd.v
    (Cmd.info "microbench" ~doc:"Run the Figure 7 nested-chain microbenchmark.")
    Term.(const run $ scheme_arg $ kernel $ width $ iters $ leaf)

(* ---- djpeg ---- *)

let djpeg_cmd =
  let run scheme fmt_name blocks seed =
    let fmt =
      match String.uppercase_ascii fmt_name with
      | "PPM" -> Djpeg.Ppm
      | "GIF" -> Djpeg.Gif
      | "BMP" -> Djpeg.Bmp
      | other -> failwith (Printf.sprintf "unknown format %S" other)
    in
    let built = Harness.build scheme (Djpeg.program fmt) in
    let globals, arrays = Djpeg.inputs fmt ~seed ~blocks in
    let outcome = Harness.run ~globals ~arrays built in
    Printf.printf "djpeg -> %s, %d blocks, scheme=%s, image seed=%d\n"
      (Djpeg.format_name fmt) blocks (Scheme.name scheme) seed;
    Printf.printf "checksum = %d\n\n" (Harness.return_value outcome);
    print_report outcome.Run.timing
  in
  let fmt =
    Arg.(value & opt string "PPM" & info [ "format"; "f" ] ~docv:"FMT" ~doc:"PPM, GIF or BMP.")
  in
  let blocks =
    Arg.(value & opt int 8 & info [ "blocks"; "b" ] ~docv:"N" ~doc:"8x8 blocks to decode.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Secret image seed.")
  in
  Cmd.v (Cmd.info "djpeg" ~doc:"Run the synthetic djpeg decoder.")
    Term.(const run $ scheme_arg $ fmt $ blocks $ seed)

(* ---- rsa ---- *)

let rsa_cmd =
  let run scheme key =
    let built = Harness.build scheme Rsa.program in
    let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
    let outcome = Harness.run ~globals ~arrays built in
    Printf.printf "modexp (Figure 1), key=0x%04x, scheme=%s\n" key
      (Scheme.name scheme);
    Printf.printf "result = %d (expected %d)\n\n"
      (Harness.return_value outcome)
      (Rsa.reference ~key ~base:1234 ~modulus:99991);
    print_report outcome.Run.timing
  in
  let key =
    Arg.(value & opt int 0x1234 & info [ "key" ] ~docv:"KEY" ~doc:"Secret exponent.")
  in
  Cmd.v (Cmd.info "rsa" ~doc:"Run RSA modular exponentiation (Figure 1).")
    Term.(const run $ scheme_arg $ key)

(* ---- leakage ---- *)

let leakage_cmd =
  let run jobs =
    set_jobs jobs;
    print_string
      (Sempe_experiments.Security_exp.render (Sempe_experiments.Security_exp.measure ()));
    print_newline ()
  in
  Cmd.v
    (Cmd.info "leakage"
       ~doc:"Leakage matrix: which attacker channels distinguish RSA keys under each scheme.")
    Term.(const run $ jobs_arg)

(* ---- report ---- *)

let report_cmd =
  let run name csv jobs =
    set_jobs jobs;
    match name with
    | "table1" ->
      print_endline (Sempe_experiments.Table1.render (Sempe_experiments.Table1.measure ()))
    | "fig8" | "fig9" ->
      let cells = Sempe_experiments.Djpeg_exp.collect () in
      if csv then print_string (Sempe_experiments.Djpeg_exp.csv cells)
      else if name = "fig8" then
        print_endline (Sempe_experiments.Djpeg_exp.render_fig8 cells)
      else print_endline (Sempe_experiments.Djpeg_exp.render_fig9 cells)
    | "fig10" ->
      let series = Sempe_experiments.Fig10.sweep () in
      if csv then print_string (Sempe_experiments.Fig10.csv series)
      else begin
        print_endline (Sempe_experiments.Fig10.render_a series);
        print_endline (Sempe_experiments.Fig10.render_b series)
      end
    | "ablation" -> print_endline (Sempe_experiments.Ablation.render ())
    | other ->
      Printf.eprintf "unknown experiment %S (table1, fig8, fig9, fig10, ablation)\n" other;
      exit 1
  in
  let exp_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit machine-readable CSV instead of tables.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Regenerate one paper table/figure (table1, fig8, fig9, fig10, ablation).")
    Term.(const run $ exp_arg $ csv_arg $ jobs_arg)

(* ---- asm-run: execute an assembly file ---- *)

let asm_run_cmd =
  let run scheme path =
    let ic = open_in path in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    let prog = Sempe_isa.Asm.parse src in
    let support = Scheme.support scheme in
    let timing = Timing.create () in
    let config =
      { Sempe_core.Exec.default_config with
        Sempe_core.Exec.support; mem_words = 1 lsl 16 }
    in
    let res = Sempe_core.Exec.run ~config ~sink:(Timing.feed timing) prog in
    Printf.printf "%s: %d instructions, rv = %d, max nesting %d\n\n" path
      res.Sempe_core.Exec.dyn_instrs
      res.Sempe_core.Exec.regs.(Sempe_isa.Reg.rv)
      res.Sempe_core.Exec.max_nesting;
    print_report (Timing.report timing)
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s")
  in
  Cmd.v
    (Cmd.info "asm-run" ~doc:"Assemble and simulate a .s file (see lib/isa/asm.mli for syntax).")
    Term.(const run $ scheme_arg $ path)

(* ---- disasm ---- *)

let disasm_cmd =
  let run scheme which =
    let src =
      match which with
      | "rsa" -> Rsa.program
      | "djpeg" -> Djpeg.program Djpeg.Ppm
      | other -> (
        match Kernels.by_name other with
        | Some kernel ->
          MB.program
            ~ct:
              (match scheme with
               | Scheme.Cte | Scheme.Raccoon | Scheme.Mto -> true
               | Scheme.Baseline | Scheme.Sempe | Scheme.Sempe_on_legacy -> false)
            { MB.kernel; width = 1; iters = 1 }
        | None -> failwith (Printf.sprintf "unknown workload %S" other))
    in
    let built = Harness.build scheme src in
    Format.printf "%a@." Sempe_isa.Program.pp built.Harness.prog
  in
  let which =
    Arg.(value & pos 0 string "rsa" & info [] ~docv:"WORKLOAD"
           ~doc:"rsa, djpeg, or a kernel name.")
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Compile a workload under a scheme and print the assembly.")
    Term.(const run $ scheme_arg $ which)

let () =
  let info =
    Cmd.info "sempe-sim" ~version:"1.0"
      ~doc:"Cycle-level simulator for the SeMPE secure multi-path execution architecture."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            config_cmd; microbench_cmd; djpeg_cmd; rsa_cmd; leakage_cmd;
            report_cmd; disasm_cmd; asm_run_cmd;
          ]))
