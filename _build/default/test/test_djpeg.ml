(* The synthetic djpeg: correctness across schemes, output equality,
   secret-independence of the SeMPE observables with different images, and
   the Figure 8 shape properties. *)

module Djpeg = Sempe_workloads.Djpeg
module Harness = Sempe_workloads.Harness
module Scheme = Sempe_core.Scheme
module Run = Sempe_core.Run
module Observable = Sempe_security.Observable
module Leakage = Sempe_security.Leakage

let run ?(seed = 7) ?(blocks = 2) scheme fmt =
  let built = Harness.build scheme (Djpeg.program fmt) in
  let globals, arrays = Djpeg.inputs fmt ~seed ~blocks in
  let recorder = Observable.recorder () in
  let outcome =
    Harness.run ~globals ~arrays ~observe:(Observable.feed recorder) built
  in
  (built, outcome, Observable.view recorder outcome.Run.timing)

let test_sempe_matches_baseline () =
  List.iter
    (fun fmt ->
      let _, base, _ = run Scheme.Baseline fmt in
      let built_s, sempe, _ = run Scheme.Sempe fmt in
      Alcotest.(check int)
        (Djpeg.format_name fmt ^ " checksum")
        (Harness.return_value base)
        (Harness.return_value sempe);
      (* full output image must match, not just the checksum *)
      let _, base_b, _ = run Scheme.Baseline fmt in
      ignore base_b;
      let built_b, base2, _ = run Scheme.Baseline fmt in
      Alcotest.(check (array int))
        (Djpeg.format_name fmt ^ " image bytes")
        (Harness.read_array built_b base2 "img_out")
        (Harness.read_array built_s sempe "img_out"))
    Djpeg.all_formats

let test_observables_image_independent () =
  (* Two different secret images: SeMPE observables identical, baseline
     observables differ. *)
  List.iter
    (fun fmt ->
      let view scheme seed =
        let _, _, view = run ~seed scheme fmt in
        view
      in
      let sempe_views = [ view Scheme.Sempe 7; view Scheme.Sempe 1234 ] in
      Alcotest.(check (list string))
        (Djpeg.format_name fmt ^ " sempe silent")
        []
        (List.map Leakage.channel_name (Leakage.leaky_channels sempe_views));
      let base_views = [ view Scheme.Baseline 7; view Scheme.Baseline 1234 ] in
      Alcotest.(check bool)
        (Djpeg.format_name fmt ^ " baseline leaks")
        true
        (Leakage.leaky_channels base_views <> []))
    Djpeg.all_formats

let test_fig8_shape () =
  let cells =
    Sempe_experiments.Djpeg_exp.collect
      ~sizes:[ { Djpeg.label = "s"; blocks = 4 }; { Djpeg.label = "l"; blocks = 8 } ]
      ()
  in
  let overhead fmt label =
    match
      List.find_opt
        (fun (c : Sempe_experiments.Djpeg_exp.cell) ->
          c.format = fmt && c.size.Djpeg.label = label)
        cells
    with
    | Some c -> Sempe_experiments.Djpeg_exp.overhead c
    | None -> Alcotest.fail "missing cell"
  in
  (* ordering PPM > GIF > BMP, every overhead positive and well under 2x *)
  List.iter
    (fun label ->
      let p = overhead Djpeg.Ppm label in
      let g = overhead Djpeg.Gif label in
      let b = overhead Djpeg.Bmp label in
      Alcotest.(check bool) "PPM > GIF" true (p > g);
      Alcotest.(check bool) "GIF > BMP" true (g > b);
      Alcotest.(check bool) "all positive" true (b > 0.05);
      Alcotest.(check bool) "well under 2x" true (p < 1.2))
    [ "s"; "l" ];
  (* size independence: overheads move little with block count *)
  List.iter
    (fun fmt ->
      let s = overhead fmt "s" and l = overhead fmt "l" in
      Alcotest.(check bool)
        (Djpeg.format_name fmt ^ " size-independent")
        true
        (Float.abs (s -. l) < 0.12))
    Djpeg.all_formats

let tests =
  [
    Alcotest.test_case "sempe matches baseline" `Quick test_sempe_matches_baseline;
    Alcotest.test_case "observables image independent" `Quick
      test_observables_image_independent;
    Alcotest.test_case "figure 8 shape" `Slow test_fig8_shape;
  ]
