(* Unit tests of the SeMPE hardware structures: jbTable protocol, ArchRS
   snapshots, and the scheme enumeration. *)

module Jbtable = Sempe_core.Jbtable
module Snapshot = Sempe_core.Snapshot
module Scheme = Sempe_core.Scheme

let test_jbtable_protocol () =
  let t = Jbtable.create ~entries:4 () in
  Alcotest.(check bool) "empty can issue" true (Jbtable.can_issue_sjmp t);
  let e = Jbtable.push t in
  Alcotest.(check bool) "fresh entry invalid" false e.Jbtable.valid;
  Alcotest.(check bool) "invalid top blocks issue" false (Jbtable.can_issue_sjmp t);
  Alcotest.check_raises "push while invalid"
    (Invalid_argument "Jbtable.push: prior sJMP entry not yet valid") (fun () ->
      ignore (Jbtable.push t));
  Jbtable.commit_sjmp t ~dest:42 ~outcome:true;
  Alcotest.(check bool) "valid after commit" true e.Jbtable.valid;
  Alcotest.(check bool) "valid top allows issue" true (Jbtable.can_issue_sjmp t);
  (match Jbtable.on_eosjmp t with
   | Jbtable.Jump_back d -> Alcotest.(check int) "jump-back dest" 42 d
   | Jbtable.Release -> Alcotest.fail "expected jump-back first");
  Alcotest.(check bool) "jb bit set" true e.Jbtable.jump_back;
  (match Jbtable.on_eosjmp t with
   | Jbtable.Release -> ()
   | Jbtable.Jump_back _ -> Alcotest.fail "expected release second");
  Alcotest.(check int) "popped" 0 (Jbtable.depth t)

let test_jbtable_lifo_nesting () =
  let t = Jbtable.create ~entries:4 () in
  ignore (Jbtable.push t);
  Jbtable.commit_sjmp t ~dest:10 ~outcome:false;
  ignore (Jbtable.push t);
  Jbtable.commit_sjmp t ~dest:20 ~outcome:true;
  (* The inner (most recent) entry answers first. *)
  (match Jbtable.on_eosjmp t with
   | Jbtable.Jump_back d -> Alcotest.(check int) "inner first" 20 d
   | Jbtable.Release -> Alcotest.fail "expected jump-back");
  (match Jbtable.on_eosjmp t with
   | Jbtable.Release -> ()
   | Jbtable.Jump_back _ -> Alcotest.fail "inner releases");
  (match Jbtable.on_eosjmp t with
   | Jbtable.Jump_back d -> Alcotest.(check int) "outer next" 10 d
   | Jbtable.Release -> Alcotest.fail "expected outer jump-back");
  Alcotest.(check int) "outer still live" 1 (Jbtable.depth t)

let test_jbtable_squash () =
  let t = Jbtable.create ~entries:4 () in
  ignore (Jbtable.push t);
  Jbtable.commit_sjmp t ~dest:1 ~outcome:true;
  ignore (Jbtable.push t);
  Jbtable.squash_newest t;
  Alcotest.(check int) "newest squashed" 1 (Jbtable.depth t);
  Alcotest.(check bool) "valid top remains" true (Jbtable.top t).Jbtable.valid

let test_jbtable_eosjmp_requires_valid () =
  let t = Jbtable.create ~entries:2 () in
  ignore (Jbtable.push t);
  Alcotest.check_raises "eosjmp before sjmp commit"
    (Invalid_argument "Jbtable.on_eosjmp: top entry not valid") (fun () ->
      ignore (Jbtable.on_eosjmp t))

let regs_with assoc =
  let regs = Array.make Sempe_isa.Reg.count 0 in
  List.iter (fun (r, v) -> regs.(r) <- v) assoc;
  regs

let test_snapshot_nt_true () =
  let s = Snapshot.create () in
  let regs = regs_with [ (10, 1); (11, 2) ] in
  Snapshot.push s ~regs ~outcome:false;
  (* NT path writes r10 *)
  regs.(10) <- 100;
  Snapshot.note_write s 10;
  let nt_mods = Snapshot.end_nt_path s ~regs in
  Alcotest.(check int) "one NT write" 1 nt_mods;
  Alcotest.(check int) "rolled back for T path" 1 regs.(10);
  (* T path writes r10 and r11 *)
  regs.(10) <- 200;
  regs.(11) <- 300;
  Snapshot.note_write s 10;
  Snapshot.note_write s 11;
  let union = Snapshot.finish s ~regs in
  Alcotest.(check int) "union size" 2 union;
  (* outcome=false: NT is true. r10 takes the NT value; r11, modified only
     by the wrong T path, rolls back to the pre-state. *)
  Alcotest.(check int) "r10 = NT value" 100 regs.(10);
  Alcotest.(check int) "r11 = pre value" 2 regs.(11)

let test_snapshot_t_true () =
  let s = Snapshot.create () in
  let regs = regs_with [ (10, 1) ] in
  Snapshot.push s ~regs ~outcome:true;
  regs.(10) <- 100;
  Snapshot.note_write s 10;
  ignore (Snapshot.end_nt_path s ~regs);
  regs.(10) <- 200;
  Snapshot.note_write s 10;
  ignore (Snapshot.finish s ~regs);
  Alcotest.(check int) "T value kept" 200 regs.(10)

let test_snapshot_nested_propagation () =
  let s = Snapshot.create () in
  let regs = regs_with [ (10, 1); (12, 5) ] in
  Snapshot.push s ~regs ~outcome:false;
  (* outer NT path contains an inner region that modifies r12 *)
  Snapshot.push s ~regs ~outcome:true;
  regs.(12) <- 50;
  Snapshot.note_write s 12;
  ignore (Snapshot.end_nt_path s ~regs);
  regs.(12) <- 60;
  Snapshot.note_write s 12;
  ignore (Snapshot.finish s ~regs);
  Alcotest.(check int) "inner merged (T true)" 60 regs.(12);
  (* finish outer: r12's modification must have propagated into the outer
     NT-modified vector, so the outer merge preserves it. *)
  let nt_mods = Snapshot.end_nt_path s ~regs in
  Alcotest.(check bool) "inner write visible to outer" true (nt_mods >= 1);
  regs.(10) <- 99;
  Snapshot.note_write s 10;
  ignore (Snapshot.finish s ~regs);
  Alcotest.(check int) "outer NT true keeps inner result" 60 regs.(12);
  Alcotest.(check int) "wrong-path write undone" 1 regs.(10)

let test_snapshot_phase_errors () =
  let s = Snapshot.create () in
  let regs = regs_with [] in
  Alcotest.check_raises "no frame" (Invalid_argument "Snapshot: no open SecBlock")
    (fun () -> ignore (Snapshot.current_phase s));
  Snapshot.push s ~regs ~outcome:true;
  Alcotest.check_raises "finish before nt"
    (Invalid_argument "Snapshot.finish: NT path still open") (fun () ->
      ignore (Snapshot.finish s ~regs))

let test_scheme_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "of_string . name" true
        (Scheme.of_string (Scheme.name s) = Some s))
    Scheme.all;
  Alcotest.(check bool) "unknown scheme" true (Scheme.of_string "nope" = None);
  Alcotest.(check bool) "protected set" true
    (List.for_all Scheme.is_protected [ Scheme.Sempe; Scheme.Cte ]
    && not (Scheme.is_protected Scheme.Baseline))

let prop_snapshot_merge_correct =
  (* Random write patterns on both paths: after finish, every register
     equals the value the true path would have produced alone. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"snapshot merge equals true-path semantics"
       ~count:300
       QCheck.(
         triple bool
           (small_list (pair (int_range 8 47) small_int))
           (small_list (pair (int_range 8 47) small_int)))
       (fun (outcome, nt_writes, t_writes) ->
         let s = Snapshot.create () in
         let regs = Array.init Sempe_isa.Reg.count (fun k -> k * 3) in
         let expected = Array.copy regs in
         let true_writes = if outcome then t_writes else nt_writes in
         List.iter (fun (r, v) -> expected.(r) <- v) true_writes;
         Snapshot.push s ~regs ~outcome;
         List.iter
           (fun (r, v) ->
             regs.(r) <- v;
             Snapshot.note_write s r)
           nt_writes;
         ignore (Snapshot.end_nt_path s ~regs);
         List.iter
           (fun (r, v) ->
             regs.(r) <- v;
             Snapshot.note_write s r)
           t_writes;
         ignore (Snapshot.finish s ~regs);
         regs = expected))

let tests =
  [
    Alcotest.test_case "jbtable protocol" `Quick test_jbtable_protocol;
    Alcotest.test_case "jbtable lifo nesting" `Quick test_jbtable_lifo_nesting;
    Alcotest.test_case "jbtable squash" `Quick test_jbtable_squash;
    Alcotest.test_case "jbtable eosjmp validity" `Quick test_jbtable_eosjmp_requires_valid;
    Alcotest.test_case "snapshot nt true" `Quick test_snapshot_nt_true;
    Alcotest.test_case "snapshot t true" `Quick test_snapshot_t_true;
    Alcotest.test_case "snapshot nested" `Quick test_snapshot_nested_propagation;
    Alcotest.test_case "snapshot phase errors" `Quick test_snapshot_phase_errors;
    Alcotest.test_case "scheme roundtrip" `Quick test_scheme_roundtrip;
    prop_snapshot_merge_correct;
  ]
