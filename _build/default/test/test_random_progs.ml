(* Property-based differential testing of the whole toolchain: random
   programs with secret branches run through

   - the reference AST evaluator,
   - compile + legacy execution (stripped),
   - ShadowMemory privatization + SeMPE hardware,
   - ShadowMemory privatization + legacy hardware (backward compat),
   - the CTE / Raccoon / MTO softpath transforms,

   and all six must agree on the return value, all globals and the array
   contents for every secret assignment. A second property checks that the
   SeMPE committed-PC trace is identical across secrets.

   Generator constraints mirror what the transforms require of real code:
   loop bounds are constants, array indexes are masked loop/public
   variables, secret-branch arms assign only data variables. *)

open Sempe_lang.Ast
module Eval = Sempe_lang.Eval
module Shadow = Sempe_lang.Shadow
module Codegen = Sempe_lang.Codegen
module Exec = Sempe_core.Exec
module Scheme = Sempe_core.Scheme
module Harness = Sempe_workloads.Harness
module G = QCheck.Gen

let data_vars = [ "x0"; "x1"; "x2" ]
let index_vars = [ "i0"; "i1" ]
let globals = [ "g0"; "g1" ]
let secret_vars = [ "s0"; "s1" ]
let array_name = "arr"
let array_size = 16

(* ---- expression generator ---- *)

let gen_leaf ~secret_ok =
  let vars = data_vars @ index_vars @ globals @ if secret_ok then secret_vars else [] in
  G.oneof
    [
      G.map (fun n -> Int n) (G.int_range (-50) 50);
      G.map (fun v_ -> Var v_) (G.oneofl vars);
    ]

let gen_index_expr =
  (* always in bounds: (public variable or constant) & 15 *)
  G.map
    (fun e -> Binop (Band, e, Int (array_size - 1)))
    (G.oneof
       [
         G.map (fun v_ -> Var v_) (G.oneofl index_vars);
         G.map (fun n -> Int (abs n)) (G.int_range 0 100);
       ])

let gen_binop =
  G.oneofl [ Add; Sub; Mul; Div; Rem; Band; Bor; Bxor; Lt; Le; Gt; Ge; Eq; Ne; Land; Lor ]

let rec gen_expr ~secret_ok depth =
  if depth = 0 then gen_leaf ~secret_ok
  else
    G.frequency
      [
        (2, gen_leaf ~secret_ok);
        ( 3,
          G.map3
            (fun op a b -> Binop (op, a, b))
            gen_binop
            (gen_expr ~secret_ok (depth - 1))
            (gen_expr ~secret_ok (depth - 1)) );
        (1, G.map (fun e -> Unop (Neg, e)) (gen_expr ~secret_ok (depth - 1)));
        (1, G.map (fun e -> Unop (Lnot, e)) (gen_expr ~secret_ok (depth - 1)));
        (1, G.map (fun ie -> Index (array_name, ie)) gen_index_expr);
        ( 1,
          G.map3
            (fun c a b -> Select (c, a, b))
            (gen_expr ~secret_ok (depth - 1))
            (gen_expr ~secret_ok (depth - 1))
            (gen_expr ~secret_ok (depth - 1)) );
      ]

(* Public branch conditions may only read untainted material — index
   variables and constants — or the program would branch on secret-derived
   data, which no scheme protects (Secrecy flags it as Unmarked_branch). *)
let gen_public_cond =
  let leaf =
    G.oneof
      [
        G.map (fun n -> Int n) (G.int_range (-20) 20);
        G.map (fun v_ -> Var v_) (G.oneofl index_vars);
      ]
  in
  G.map3
    (fun op a b -> Binop (op, a, b))
    (G.oneofl [ Lt; Le; Gt; Ge; Eq; Ne; Add; Bxor ])
    leaf leaf

(* ---- statement generator ---- *)

let ( let* ) x f = G.( >>= ) x f

(* [in_secret]: inside a secret branch only data vars may be assigned and
   only public Ifs/loops with data bodies appear. [idx_pool] holds the index
   variables not used by an enclosing loop, so nested loops never share an
   induction variable (which would not terminate). *)
let rec gen_stmt ~in_secret ~idx_pool ~depth =
  let assign_data =
    G.map2
      (fun v_ e -> Assign (v_, e))
      (G.oneofl data_vars)
      (gen_expr ~secret_ok:false 2)
  in
  let base =
    if in_secret then [ (4, assign_data) ]
    else
      [
        (4, assign_data);
        ( 2,
          G.map2
            (fun v_ e -> Assign (v_, e))
            (G.oneofl globals)
            (gen_expr ~secret_ok:false 2) );
        ( 2,
          G.map2
            (fun ie e -> Store (array_name, ie, e))
            gen_index_expr
            (gen_expr ~secret_ok:false 2) );
      ]
  in
  if depth = 0 then G.frequency base
  else
    let nested =
      [
        ( 2,
          let* cond = gen_public_cond in
          let* then_ = gen_block ~in_secret ~idx_pool ~depth:(depth - 1) in
          let* else_ = gen_block ~in_secret ~idx_pool ~depth:(depth - 1) in
          G.return (If { secret = false; cond; then_; else_ }) );
      ]
      @ (match (in_secret, idx_pool) with
         | true, _ | _, [] -> []
         | false, x :: rest ->
           [
             ( 2,
               (* loops assign their index variable, which is
                  public-by-requirement; keeping them out of secret arms
                  mirrors the constant-time discipline the transforms
                  enforce (leaf-local control state). *)
               let* hi = G.int_range 1 5 in
               let* body = gen_block ~in_secret ~idx_pool:rest ~depth:(depth - 1) in
               G.return (For (x, Int 0, Int hi, body)) );
           ])
      @
      if in_secret then []
      else
        [
          ( 3,
            let* sv = G.oneofl secret_vars in
            let* then_ = gen_block ~in_secret:true ~idx_pool ~depth:(depth - 1) in
            let* else_ = gen_block ~in_secret:true ~idx_pool ~depth:(depth - 1) in
            G.return
              (If { secret = true; cond = Var sv <>: i 0; then_; else_ }) );
        ]
    in
    G.frequency (base @ nested)

and gen_block ~in_secret ~idx_pool ~depth =
  let* n = G.int_range 1 3 in
  G.list_size (G.return n) (gen_stmt ~in_secret ~idx_pool ~depth)

let gen_program =
  let* body = gen_block ~in_secret:false ~idx_pool:index_vars ~depth:3 in
  let* fill = G.list_size (G.return array_size) (G.int_range (-30) 30) in
  let checksum =
    (* fold everything observable into the return value *)
    List.fold_left
      (fun acc v_ -> acc +: v_)
      (v "x0")
      [ v "x1"; v "x2"; v "g0"; v "g1"; idx array_name (i 3) ]
  in
  G.return
    ( {
        funcs =
          [
            {
              fname = "main";
              params = [];
              locals = data_vars @ index_vars;
              body = body @ [ ret checksum ];
            };
          ];
        globals = globals @ secret_vars;
        arrays = [ { aname = array_name; size = array_size; scratch = false } ];
        secrets = secret_vars;
        main = "main";
      },
      fill )

let arbitrary_program =
  QCheck.make ~print:(fun (p, _) -> Format.asprintf "%a" pp_program p) gen_program

type state = { rv : int; gvals : int list; arr : int array }

let reference prog ~fill ~secrets =
  let st = Eval.init prog in
  List.iter (fun (name, value) -> Eval.set_global st name value) secrets;
  Eval.set_array st array_name (Array.of_list fill);
  let rv = Eval.run ~max_steps:2_000_000 st in
  {
    rv;
    gvals = List.map (Eval.get_global st) globals;
    arr = Eval.get_array st array_name;
  }

let simulated scheme prog ~fill ~secrets =
  let built = Harness.build scheme prog in
  let outcome =
    Harness.run ~globals:secrets
      ~arrays:[ (array_name, Array.of_list fill) ]
      ~mem_words:(1 lsl 14) built
  in
  {
    rv = Harness.return_value outcome;
    gvals = List.map (Harness.read_global built outcome) globals;
    arr = Harness.read_array built outcome array_name;
  }

let secret_assignments =
  [
    [ ("s0", 0); ("s1", 0) ];
    [ ("s0", 1); ("s1", 0) ];
    [ ("s0", 0); ("s1", 1) ];
    [ ("s0", 1); ("s1", 1) ];
  ]

let prop_all_schemes_agree =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"all schemes compute reference semantics" ~count:60
       arbitrary_program
       (fun (prog, fill) ->
         List.for_all
           (fun secrets ->
             let expected = reference prog ~fill ~secrets in
             List.for_all
               (fun scheme ->
                 let got = simulated scheme prog ~fill ~secrets in
                 got.rv = expected.rv
                 && got.gvals = expected.gvals
                 && got.arr = expected.arr)
               Scheme.all)
           secret_assignments))

let prop_sempe_trace_secret_independent =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"SeMPE pc trace independent of secrets" ~count:60
       arbitrary_program
       (fun (prog, fill) ->
         let priv = Shadow.privatize prog in
         let compiled, layout = Codegen.compile priv in
         let trace secrets =
           let digest = ref 2166136261 in
           let sink = function
             | Sempe_pipeline.Uop.Commit u ->
               digest := (!digest * 16777619) lxor u.Sempe_pipeline.Uop.pc
             | Sempe_pipeline.Uop.Drain _ -> ()
           in
           let init_mem mem =
             List.iter
               (fun (name, value) ->
                 mem.(Codegen.scalar_offset layout name) <- value)
               secrets;
             let off, _ = Codegen.array_slice layout array_name in
             List.iteri (fun k v_ -> mem.(off + k) <- v_) fill
           in
           let config =
             { Exec.default_config with Exec.support = Exec.Sempe_hw;
               mem_words = 1 lsl 14 }
           in
           ignore (Exec.run ~config ~init_mem ~sink compiled);
           !digest
         in
         let d0 = trace (List.hd secret_assignments) in
         List.for_all (fun s -> trace s = d0) (List.tl secret_assignments)))

let tests = [ prop_all_schemes_agree; prop_sempe_trace_secret_independent ]
