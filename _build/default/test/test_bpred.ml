(* Branch predictor components: saturating counters, bimodal, gshare, TAGE,
   BTB and the return-address stack. *)

open Sempe_bpred

let accuracy (p : Predictor.t) outcomes =
  let correct = ref 0 in
  List.iter
    (fun (pc, taken) ->
      if p.Predictor.predict ~pc = taken then incr correct;
      p.Predictor.update ~pc ~taken)
    outcomes;
  float_of_int !correct /. float_of_int (List.length outcomes)

let repeat n pattern =
  List.concat (List.init n (fun _ -> pattern))

let test_counters_saturate () =
  let t = Counters.create ~entries:4 ~bits:2 in
  for _ = 1 to 10 do Counters.train t 0 true done;
  Alcotest.(check bool) "saturated taken" true (Counters.taken t 0);
  Counters.train t 0 false;
  Alcotest.(check bool) "one down still taken" true (Counters.taken t 0);
  for _ = 1 to 10 do Counters.train t 0 false done;
  Alcotest.(check bool) "saturated not-taken" false (Counters.taken t 0)

let test_bimodal_learns_bias () =
  let p = Bimodal.create () in
  let acc = accuracy p (repeat 200 [ (100, true) ]) in
  Alcotest.(check bool) "biased branch learned" true (acc > 0.95)

let test_gshare_learns_alternation () =
  let p = Gshare.create () in
  (* warmup, then measure: gshare captures period-2 history. *)
  ignore (accuracy p (repeat 100 [ (7, true); (7, false) ]));
  let acc = accuracy p (repeat 100 [ (7, true); (7, false) ]) in
  Alcotest.(check bool)
    (Printf.sprintf "alternation learned (%.2f)" acc)
    true (acc > 0.95)

let test_bimodal_cannot_learn_alternation () =
  let p = Bimodal.create () in
  ignore (accuracy p (repeat 100 [ (7, true); (7, false) ]));
  let acc = accuracy p (repeat 100 [ (7, true); (7, false) ]) in
  Alcotest.(check bool) "bimodal stuck near 50%" true (acc < 0.7)

let test_tage_learns_long_pattern () =
  let p = Tage.create () in
  (* period-8 pattern needs real history; a bimodal would get 7/8 at best
     for this mix (6 taken, 2 not-taken). *)
  let pattern =
    [ (3, true); (3, true); (3, false); (3, true);
      (3, true); (3, false); (3, true); (3, true) ]
  in
  ignore (accuracy p (repeat 200 pattern));
  let acc = accuracy p (repeat 100 pattern) in
  Alcotest.(check bool)
    (Printf.sprintf "period-8 learned (%.2f)" acc)
    true (acc > 0.9)

let test_tage_multiple_branches () =
  let p = Tage.create () in
  let stream =
    repeat 150 [ (10, true); (20, false); (30, true); (40, false) ]
  in
  ignore (accuracy p stream);
  let acc = accuracy p stream in
  Alcotest.(check bool) "independent biases" true (acc > 0.95)

let test_tage_reset () =
  let p = Tage.create () in
  ignore (accuracy p (repeat 50 [ (5, true) ]));
  let sig_trained = p.Predictor.snapshot_signature () in
  p.Predictor.reset ();
  let sig_reset = p.Predictor.snapshot_signature () in
  Alcotest.(check bool) "signature changes on reset" true (sig_trained <> sig_reset);
  ignore (accuracy p (repeat 50 [ (5, true) ]));
  Alcotest.(check bool) "relearns after reset" true
    (accuracy p (repeat 20 [ (5, true) ]) > 0.9)

let test_signature_reflects_history () =
  (* Same branch, different outcome sequences -> different state. *)
  let train outcomes =
    let p = Tage.create () in
    List.iter (fun taken -> p.Predictor.update ~pc:9 ~taken) outcomes;
    p.Predictor.snapshot_signature ()
  in
  Alcotest.(check bool) "outcome history visible" true
    (train [ true; true; true; true ] <> train [ false; false; false; false ])

let test_btb () =
  let btb = Btb.create ~entries:64 ~ways:2 () in
  Alcotest.(check (option int)) "cold miss" None (Btb.lookup btb ~pc:100);
  Btb.update btb ~pc:100 ~target:555;
  Alcotest.(check (option int)) "hit" (Some 555) (Btb.lookup btb ~pc:100);
  Btb.update btb ~pc:100 ~target:777;
  Alcotest.(check (option int)) "retarget" (Some 777) (Btb.lookup btb ~pc:100)

let test_btb_eviction () =
  let btb = Btb.create ~entries:4 ~ways:2 () in
  (* 2 sets x 2 ways: three conflicting entries in set 0 evict the LRU. *)
  Btb.update btb ~pc:0 ~target:1;
  Btb.update btb ~pc:2 ~target:2;
  ignore (Btb.lookup btb ~pc:0);
  (* pc=0 is now MRU *)
  Btb.update btb ~pc:4 ~target:3;
  Alcotest.(check (option int)) "MRU kept" (Some 1) (Btb.lookup btb ~pc:0);
  Alcotest.(check (option int)) "LRU evicted" None (Btb.lookup btb ~pc:2)

let test_ras () =
  let ras = Ras.create ~depth:4 () in
  Alcotest.(check (option int)) "empty pop" None (Ras.pop ras);
  Ras.push ras 10;
  Ras.push ras 20;
  Alcotest.(check (option int)) "lifo" (Some 20) (Ras.pop ras);
  Alcotest.(check (option int)) "lifo 2" (Some 10) (Ras.pop ras);
  (* overflow wraps: deepest entries are lost *)
  List.iter (Ras.push ras) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "depth capped" 4 (Ras.depth_used ras);
  Alcotest.(check (option int)) "top after wrap" (Some 5) (Ras.pop ras)

let prop_predictors_total =
  (* Any update/predict sequence is safe and prediction is deterministic. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"predictors total and deterministic" ~count:100
       QCheck.(small_list (pair (int_range 0 100000) bool))
       (fun stream ->
         List.for_all
           (fun make ->
             let p = make () in
             List.iter (fun (pc, taken) -> p.Predictor.update ~pc ~taken) stream;
             List.for_all
               (fun (pc, _) ->
                 p.Predictor.predict ~pc = p.Predictor.predict ~pc)
               stream)
           [
             (fun () -> Bimodal.create ());
             (fun () -> Gshare.create ());
             (fun () -> Tage.create ());
           ]))

let tests =
  [
    Alcotest.test_case "counters saturate" `Quick test_counters_saturate;
    Alcotest.test_case "bimodal learns bias" `Quick test_bimodal_learns_bias;
    Alcotest.test_case "gshare learns alternation" `Quick test_gshare_learns_alternation;
    Alcotest.test_case "bimodal misses alternation" `Quick test_bimodal_cannot_learn_alternation;
    Alcotest.test_case "tage learns long pattern" `Quick test_tage_learns_long_pattern;
    Alcotest.test_case "tage multiple branches" `Quick test_tage_multiple_branches;
    Alcotest.test_case "tage reset" `Quick test_tage_reset;
    Alcotest.test_case "signature reflects history" `Quick test_signature_reflects_history;
    Alcotest.test_case "btb basic" `Quick test_btb;
    Alcotest.test_case "btb eviction" `Quick test_btb_eviction;
    Alcotest.test_case "ras" `Quick test_ras;
    prop_predictors_total;
  ]
