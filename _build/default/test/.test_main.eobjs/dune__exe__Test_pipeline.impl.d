test/test_pipeline.ml: Alcotest Array Instr List Printf Sempe_bpred Sempe_isa Sempe_pipeline Sempe_util
