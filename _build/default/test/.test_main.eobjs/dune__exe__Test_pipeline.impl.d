test/test_pipeline.ml: Alcotest Array Instr List Printf Sempe_isa Sempe_pipeline Sempe_util
