test/test_bpred.ml: Alcotest Bimodal Btb Counters Gshare List Predictor Printf QCheck QCheck_alcotest Ras Sempe_bpred Tage
