test/test_random_progs.ml: Array Format List QCheck QCheck_alcotest Sempe_core Sempe_lang Sempe_pipeline Sempe_workloads
