test/test_frontend.ml: Alcotest Array Ast Eval Format List Parser QCheck QCheck_alcotest Sempe_core Sempe_isa Sempe_lang Sempe_workloads Test_random_progs
