test/test_exec.ml: Alcotest Array Builder Instr List Printf Reg Sempe_core Sempe_isa Sempe_pipeline
