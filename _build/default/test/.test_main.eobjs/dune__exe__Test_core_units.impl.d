test/test_core_units.ml: Alcotest Array List QCheck QCheck_alcotest Sempe_core Sempe_isa
