test/test_passes.ml: Alcotest Array List Printf QCheck QCheck_alcotest Sempe_bpred Sempe_core Sempe_isa Sempe_lang Sempe_pipeline Sempe_util Sempe_workloads Test_random_progs
