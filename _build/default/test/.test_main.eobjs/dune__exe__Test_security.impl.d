test/test_security.ml: Alcotest Array Float List Printf Sempe_core Sempe_lang Sempe_mem Sempe_security Sempe_workloads
