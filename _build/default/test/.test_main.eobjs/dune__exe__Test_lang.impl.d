test/test_lang.ml: Alcotest Array Ast Codegen Eval List Printf Secrecy Sempe_core Sempe_isa Sempe_lang Sempe_pipeline Shadow
