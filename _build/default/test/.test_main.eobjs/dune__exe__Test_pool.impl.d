test/test_pool.ml: Alcotest List Sempe_util
