test/test_determinism.ml: Alcotest Fun Sempe_experiments
