test/test_mem.ml: Alcotest Cache Hierarchy List Prefetch Printf QCheck QCheck_alcotest Sempe_mem Sempe_util Spm
