test/test_workloads.ml: Alcotest List Printf Sempe_core Sempe_lang Sempe_workloads
