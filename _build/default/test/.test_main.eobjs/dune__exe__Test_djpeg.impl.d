test/test_djpeg.ml: Alcotest Float List Sempe_core Sempe_experiments Sempe_security Sempe_workloads
