test/test_util.ml: Alcotest Array Bitvec Float Gen List QCheck QCheck_alcotest Rng Sempe_util Stats String Tablefmt
