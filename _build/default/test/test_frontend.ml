(* Front ends: the language parser/lexer and the ISA text assembler. Both
   must round-trip their printers, and parsed programs must execute like
   hand-constructed ASTs. *)

open Sempe_lang
module Asm = Sempe_isa.Asm
module Program = Sempe_isa.Program

let source =
  {|
// modular exponentiation, concrete syntax
global base;
global modulus;
array ebits[8];
@secret base;

func modexp() locals(r, k) {
  r = 1;
  for (k = 0; k < 8; k++) {
    r = r * r % modulus;
    @secret if (ebits[k] == 1) { r = r * base % modulus; }
  }
  return r;
}

func main() { return modexp(); }
|}

let test_parse_and_eval () =
  let prog = Parser.program source in
  let st = Eval.init prog in
  Eval.set_global st "base" 3;
  Eval.set_global st "modulus" 1000;
  Eval.set_array st "ebits" [| 0; 0; 0; 0; 0; 1; 0; 1 |];
  (* exponent 0b00000101 = 5; 3^5 mod 1000 = 243 *)
  Alcotest.(check int) "3^5 mod 1000" 243 (Eval.run st)

let test_parse_roundtrip_fixed () =
  let prog = Parser.program source in
  let printed = Format.asprintf "%a" Ast.pp_program prog in
  let reparsed = Parser.program printed in
  Alcotest.(check bool) "print/parse roundtrip" true (prog = reparsed)

let prop_parse_roundtrip_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"print/parse roundtrip on random programs" ~count:200
       Test_random_progs.arbitrary_program
       (fun (prog, _) ->
         let printed = Format.asprintf "%a" Ast.pp_program prog in
         Parser.program printed = prog))

let test_parse_precedence () =
  Alcotest.(check bool) "mul binds tighter"
    true
    (Parser.expr "1 + 2 * 3"
     = Ast.Binop (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3)));
  Alcotest.(check bool) "comparison below arithmetic" true
    (Parser.expr "a + 1 < b * 2"
     = Ast.Binop
         ( Ast.Lt,
           Ast.Binop (Ast.Add, Ast.Var "a", Ast.Int 1),
           Ast.Binop (Ast.Mul, Ast.Var "b", Ast.Int 2) ));
  Alcotest.(check bool) "logical loosest" true
    (Parser.expr "a == 1 && b == 2 || c == 3"
     = Ast.Binop
         ( Ast.Lor,
           Ast.Binop
             ( Ast.Land,
               Ast.Binop (Ast.Eq, Ast.Var "a", Ast.Int 1),
               Ast.Binop (Ast.Eq, Ast.Var "b", Ast.Int 2) ),
           Ast.Binop (Ast.Eq, Ast.Var "c", Ast.Int 3) ))

let test_parse_errors () =
  let expect_error src =
    match Parser.program src with
    | _ -> Alcotest.fail ("accepted: " ^ src)
    | exception Parser.Error _ -> ()
    | exception Invalid_argument _ -> ()
  in
  expect_error "func main() { return 1 }";          (* missing semicolon *)
  expect_error "func main() { x = ; }";             (* missing expression *)
  expect_error "func main() { for (i = 0; j < 3; i++) {} return 0; }";
  expect_error "array a[0]; func main() { return 0; }";
  expect_error "func main() { return undeclared_fn(); }"

(* ---- ISA assembler ---- *)

let asm_source =
  {|
# doubles r10 until it exceeds 100, through a secure branch once
.data 4
entry:
    li r10, 3
    li r11, 1
loop:
    add r10, r10, r10
    blt r10, 100, loop   # wait: blt needs registers
    halt
|}

let test_asm_basic () =
  (* register-register branch form *)
  let src =
    ".data 2\n\
     entry:\n\
     \tli r10, 3\n\
     \tli r11, 100\n\
     loop:\n\
     \tadd r10, r10, r10\n\
     \tslt r12, r10, r11\n\
     \tbne r12, r0, loop\n\
     \tst r10, 0(gp)\n\
     \thalt\n"
  in
  ignore asm_source;
  let prog = Asm.parse src in
  Alcotest.(check int) "data words" 2 prog.Program.data_words;
  let config = { Sempe_core.Exec.default_config with Sempe_core.Exec.mem_words = 64 } in
  let res = Sempe_core.Exec.run ~config prog in
  Alcotest.(check int) "doubling result" 192 res.Sempe_core.Exec.memory.(0)

let test_asm_secure_branch () =
  let src =
    "entry:\n\
     \tli r10, 1\n\
     \tsbne r10, r0, t\n\
     \tli r11, 5\n\
     \tjmp j\n\
     t:\n\
     \tli r11, 9\n\
     j:\n\
     \teosjmp\n\
     \thalt\n"
  in
  let prog = Asm.parse src in
  Alcotest.(check int) "one secure branch" 1 (Program.count_secure_branches prog);
  let config = { Sempe_core.Exec.default_config with Sempe_core.Exec.mem_words = 64 } in
  let res = Sempe_core.Exec.run ~config prog in
  Alcotest.(check int) "taken value" 9 res.Sempe_core.Exec.regs.(11);
  Alcotest.(check int) "both paths ran" 1 res.Sempe_core.Exec.dyn_sjmps

let test_asm_roundtrip_compiled () =
  (* Disassemble a compiled workload and re-assemble it. *)
  List.iter
    (fun (k : Sempe_workloads.Kernels.t) ->
      let spec = { Sempe_workloads.Microbench.kernel = k; width = 2; iters = 1 } in
      let src = Sempe_workloads.Microbench.program ~ct:false spec in
      let built = Sempe_workloads.Harness.build Sempe_core.Scheme.Sempe src in
      let prog = built.Sempe_workloads.Harness.prog in
      let reparsed = Asm.parse (Asm.print prog) in
      Alcotest.(check bool)
        (k.Sempe_workloads.Kernels.name ^ " code image")
        true
        (prog.Program.code = reparsed.Program.code);
      Alcotest.(check int) "entry" prog.Program.entry reparsed.Program.entry;
      Alcotest.(check int) "data" prog.Program.data_words reparsed.Program.data_words)
    [ Sempe_workloads.Kernels.fibonacci; Sempe_workloads.Kernels.quicksort ]

let test_asm_errors () =
  let expect_error src =
    match Asm.parse src with
    | _ -> Alcotest.fail ("accepted: " ^ src)
    | exception Asm.Error _ -> ()
    | exception Invalid_argument _ -> ()
  in
  expect_error "entry:\n\tfoo r1, r2\n";
  expect_error "entry:\n\tjmp nowhere\n";
  expect_error "entry:\n\tli r99, 1\n";
  expect_error "entry:\n\tld r1, r2\n"

let tests =
  [
    Alcotest.test_case "parse and eval" `Quick test_parse_and_eval;
    Alcotest.test_case "parse roundtrip fixed" `Quick test_parse_roundtrip_fixed;
    prop_parse_roundtrip_random;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "asm basic" `Quick test_asm_basic;
    Alcotest.test_case "asm secure branch" `Quick test_asm_secure_branch;
    Alcotest.test_case "asm roundtrip compiled" `Quick test_asm_roundtrip_compiled;
    Alcotest.test_case "asm errors" `Quick test_asm_errors;
  ]
