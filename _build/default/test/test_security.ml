(* End-to-end validation of the paper's security claim: under the baseline
   the secret is visible through timing / trace / cache / predictor
   channels; under SeMPE (and the software schemes) every attacker-visible
   channel is silent. *)

module Harness = Sempe_workloads.Harness
module Rsa = Sempe_workloads.Rsa
module Scheme = Sempe_core.Scheme
module Observable = Sempe_security.Observable
module Leakage = Sempe_security.Leakage
module Attacker = Sempe_security.Attacker

let rsa_view scheme ~key =
  let built = Harness.build scheme Rsa.program in
  let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
  let recorder = Observable.recorder () in
  let outcome =
    Harness.run ~globals ~arrays ~observe:(Observable.feed recorder) built
  in
  let expected = Rsa.reference ~key ~base:1234 ~modulus:99991 in
  Alcotest.(check int)
    (Printf.sprintf "%s key=%d result" (Scheme.name scheme) key)
    expected
    (Harness.return_value outcome);
  Observable.view recorder outcome.Sempe_core.Run.timing

let keys = [ 0x0000; 0xffff; 0xa5a5; 0x0001; 0x8000; 0x1234 ]

let views scheme = List.map (fun key -> rsa_view scheme ~key) keys

let test_baseline_leaks () =
  let leaky = Leakage.leaky_channels (views Scheme.Baseline) in
  List.iter
    (fun ch ->
      Alcotest.(check bool)
        (Leakage.channel_name ch ^ " leaks under baseline")
        true (List.mem ch leaky))
    [ Leakage.Timing; Leakage.Trace; Leakage.Bpred; Leakage.Instruction_count ]

let test_protected_schemes_silent () =
  List.iter
    (fun scheme ->
      let leaky = Leakage.leaky_channels (views scheme) in
      Alcotest.(check (list string))
        (Scheme.name scheme ^ " has no leaky channels")
        []
        (List.map Leakage.channel_name leaky))
    [ Scheme.Sempe; Scheme.Cte; Scheme.Raccoon; Scheme.Mto ]

let test_annotated_on_legacy_still_leaks () =
  (* Backward compatibility is explicit about this: the annotated binary on
     a legacy machine runs correctly but without the guarantee. *)
  let leaky = Leakage.leaky_channels (views Scheme.Sempe_on_legacy) in
  Alcotest.(check bool) "legacy run of annotated binary leaks" true
    (leaky <> [])

let test_timing_attack () =
  let run scheme ~key =
    (rsa_view scheme ~key).Observable.cycles
  in
  let sample_keys = [ 0x0000; 0x0101; 0x1111; 0x5555; 0x7777; 0xffff; 0x00ff ] in
  let corr_base =
    Attacker.timing_key_correlation ~run:(run Scheme.Baseline) ~keys:sample_keys
  in
  let corr_sempe =
    Attacker.timing_key_correlation ~run:(run Scheme.Sempe) ~keys:sample_keys
  in
  Alcotest.(check bool)
    (Printf.sprintf "baseline correlation high (%.3f)" corr_base)
    true (corr_base > 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "sempe correlation ~0 (%.3f)" corr_sempe)
    true (Float.abs corr_sempe < 0.05)

let test_bit_recovery () =
  let run scheme ~key = (rsa_view scheme ~key).Observable.cycles in
  (* On the baseline, flipping any key bit perturbs the timing; under SeMPE
     no bit is observable. *)
  let observable scheme =
    List.filter
      (fun bit -> Attacker.recover_bit ~run:(run scheme) ~base_key:0x1234 ~bit)
      [ 0; 3; 7; 11; 15 ]
  in
  Alcotest.(check bool) "baseline exposes key bits" true
    (List.length (observable Scheme.Baseline) >= 4);
  Alcotest.(check (list int)) "sempe exposes no key bits" [] (observable Scheme.Sempe)

let test_prime_and_probe_unit () =
  (* Attacker primes one set; a victim touching a conflicting line evicts
     the attacker's line in a 1-way cache. *)
  let cache =
    Sempe_mem.Cache.create
      { Sempe_mem.Cache.name = "toy"; size_bytes = 1024; line_bytes = 64; ways = 1 }
  in
  let nsets = Sempe_mem.Cache.num_sets cache in
  let prime = [ 0; 64 ] in
  let victim () =
    ignore (Sempe_mem.Cache.access cache ~addr:(nsets * 64) ~write:false)
  in
  let evicted = Attacker.prime_and_probe cache ~prime ~victim in
  Alcotest.(check bool) "conflicting set evicted" true evicted.(0);
  Alcotest.(check bool) "other set intact" false evicted.(1)

let tests =
  [
    Alcotest.test_case "baseline leaks" `Quick test_baseline_leaks;
    Alcotest.test_case "protected schemes silent" `Quick test_protected_schemes_silent;
    Alcotest.test_case "annotated-on-legacy leaks" `Quick test_annotated_on_legacy_still_leaks;
    Alcotest.test_case "timing attack correlation" `Quick test_timing_attack;
    Alcotest.test_case "key bit recovery" `Quick test_bit_recovery;
    Alcotest.test_case "prime and probe" `Quick test_prime_and_probe_unit;
  ]

(* ---- co-resident prime+probe (threat model section III) ---- *)

let test_coresident_prime_probe () =
  let trace scheme key =
    let built = Harness.build scheme Rsa.program in
    let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
    let layout = built.Sempe_workloads.Harness.layout in
    let init_mem mem =
      List.iter
        (fun (name, value) ->
          mem.(Sempe_lang.Codegen.scalar_offset layout name) <- value)
        globals;
      List.iter
        (fun (name, values) ->
          let off, _ = Sempe_lang.Codegen.array_slice layout name in
          Array.blit values 0 mem off (Array.length values))
        arrays
    in
    Sempe_security.Coresident.prime_probe_trace
      ~support:(Scheme.support scheme)
      ~prog:built.Sempe_workloads.Harness.prog ~init_mem ()
  in
  let d scheme =
    Sempe_security.Coresident.distance (trace scheme 0x0000) (trace scheme 0xffff)
  in
  let d_base = d Scheme.Baseline in
  let d_sempe = d Scheme.Sempe in
  Alcotest.(check bool)
    (Printf.sprintf "baseline eviction patterns differ (distance %d)" d_base)
    true (d_base > 0);
  Alcotest.(check int) "sempe eviction patterns identical" 0 d_sempe

let tests = tests @ [ Alcotest.test_case "coresident prime+probe" `Quick test_coresident_prime_probe ]

(* ---- the manual alternative: a hand-written constant-time ladder ---- *)

let ladder_view ~key =
  let built = Harness.build Scheme.Baseline Rsa.ct_program in
  let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
  let recorder = Observable.recorder () in
  let outcome =
    Harness.run ~globals ~arrays ~observe:(Observable.feed recorder) built
  in
  let expected = Rsa.reference ~key ~base:1234 ~modulus:99991 in
  Alcotest.(check int)
    (Printf.sprintf "ladder key=%d result" key)
    expected
    (Harness.return_value outcome);
  Observable.view recorder outcome.Sempe_core.Run.timing

let test_ct_ladder_silent_on_plain_hw () =
  let views = List.map (fun key -> ladder_view ~key) keys in
  Alcotest.(check (list string)) "ladder has no leaky channels" []
    (List.map Leakage.channel_name (Leakage.leaky_channels views))

let test_sempe_vs_manual_ct_cost () =
  (* The paper's pitch: SeMPE gives the protection without rewriting the
     routine. Both protected versions must be within a small factor of
     each other, and both slower than the leaky original. *)
  let cycles scheme prog ~key =
    let built = Harness.build scheme prog in
    let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
    Sempe_core.Run.cycles (Harness.run ~globals ~arrays built)
  in
  let naive = cycles Scheme.Baseline Rsa.program ~key:0xa5a5 in
  let sempe = cycles Scheme.Sempe Rsa.program ~key:0xa5a5 in
  let ladder = cycles Scheme.Baseline Rsa.ct_program ~key:0xa5a5 in
  let ratio = float_of_int ladder /. float_of_int naive in
  Alcotest.(check bool)
    (Printf.sprintf "sane cost ordering (naive=%d ladder=%d sempe=%d)" naive
       ladder sempe)
    true
    (sempe > naive && ratio > 0.5 && ratio < 4.0)

let tests =
  tests
  @ [
      Alcotest.test_case "ct ladder silent on plain hw" `Quick
        test_ct_ladder_silent_on_plain_hw;
      Alcotest.test_case "sempe vs manual ct cost" `Quick test_sempe_vs_manual_ct_cost;
    ]
