(* Unit tests for the domain worker pool: result ordering, exception
   propagation, the size-1 sequential fallback, and batches larger than
   the pool. *)

module Pool = Sempe_util.Pool

exception Boom of int

let test_ordering () =
  let xs = List.init 100 (fun k -> k) in
  let expected = List.map (fun k -> k * k) xs in
  let got = Pool.run ~workers:4 (fun k -> k * k) xs in
  Alcotest.(check (list int)) "squares in job order" expected got

let test_more_jobs_than_workers () =
  (* 250 jobs on 3 workers: everything completes, order preserved. *)
  let xs = List.init 250 (fun k -> k) in
  let got = Pool.run ~workers:3 (fun k -> 2 * k + 1) xs in
  Alcotest.(check (list int)) "all jobs ran, in order"
    (List.map (fun k -> (2 * k) + 1) xs)
    got

let test_pool_size_one () =
  let t = Pool.create ~workers:1 () in
  Alcotest.(check int) "size" 1 (Pool.size t);
  let got = Pool.map t (fun k -> k + 10) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "sequential fallback" [ 11; 12; 13 ] got;
  Pool.shutdown t

let test_exception_propagation () =
  (* The lowest-indexed failing job's exception surfaces in the caller. *)
  let job k = if k = 7 then raise (Boom k) else if k = 11 then raise Exit else k in
  Alcotest.check_raises "first failing job wins" (Boom 7) (fun () ->
      ignore (Pool.run ~workers:4 job (List.init 20 (fun k -> k))))

let test_exception_sequential () =
  Alcotest.check_raises "size-1 pool propagates too" (Boom 3) (fun () ->
      ignore (Pool.run ~workers:1 (fun k -> if k = 3 then raise (Boom k) else k)
                [ 1; 2; 3 ]))

let test_pool_reuse () =
  let t = Pool.create ~workers:2 () in
  let a = Pool.map t (fun k -> k + 1) [ 1; 2; 3 ] in
  let b = Pool.map t string_of_int [ 4; 5 ] in
  Pool.shutdown t;
  Alcotest.(check (list int)) "first batch" [ 2; 3; 4 ] a;
  Alcotest.(check (list string)) "second batch" [ "4"; "5" ] b

let test_shutdown_rejects () =
  let t = Pool.create ~workers:2 () in
  Pool.shutdown t;
  Pool.shutdown t (* idempotent *);
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map t (fun k -> k) [ 1; 2 ]))

let test_empty_and_singleton () =
  let t = Pool.create ~workers:3 () in
  Alcotest.(check (list int)) "empty" [] (Pool.map t (fun k -> k) []);
  Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map t (fun k -> k * 9) [ 1 ]);
  Pool.shutdown t

let tests =
  [
    Alcotest.test_case "result ordering" `Quick test_ordering;
    Alcotest.test_case "more jobs than workers" `Quick test_more_jobs_than_workers;
    Alcotest.test_case "pool size 1" `Quick test_pool_size_one;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "exception (sequential)" `Quick test_exception_sequential;
    Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
    Alcotest.test_case "shutdown" `Quick test_shutdown_rejects;
    Alcotest.test_case "empty and singleton batches" `Quick test_empty_and_singleton;
  ]
