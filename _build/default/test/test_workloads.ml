(* Workload-level validation: the constant-time kernel variants compute the
   same checksums as the natural ones, and the microbenchmark returns the
   same value under every scheme for every secret assignment. *)

open Sempe_lang.Ast
module Kernels = Sempe_workloads.Kernels
module Microbench = Sempe_workloads.Microbench
module Harness = Sempe_workloads.Harness
module Scheme = Sempe_core.Scheme
module Eval = Sempe_lang.Eval

(* Evaluate one kernel variant through the reference interpreter. *)
let eval_kernel ~ct (k : Kernels.t) seed =
  let entry = if ct then k.Kernels.ct_entry else k.Kernels.entry in
  let funcs = if ct then k.Kernels.ct_funcs else k.Kernels.funcs in
  let prog =
    {
      funcs =
        funcs
        @ [
            {
              fname = "main";
              params = [];
              locals = [];
              body = [ ret (call entry [ i seed ]) ];
            };
          ];
      globals = [];
      arrays = k.Kernels.arrays;
      secrets = [];
      main = "main";
    }
  in
  Eval.run (Eval.init prog)

let test_ct_variants_agree () =
  List.iter
    (fun k ->
      List.iter
        (fun seed ->
          Alcotest.(check int)
            (Printf.sprintf "%s seed=%d" k.Kernels.name seed)
            (eval_kernel ~ct:false k seed)
            (eval_kernel ~ct:true k seed))
        [ 1; 7; 12345; 999983 ])
    Kernels.all

let test_queens_count () =
  (* 4-queens has 2 solutions; seed=2 adds 0. *)
  Alcotest.(check int) "queens solutions" 2 (eval_kernel ~ct:false Kernels.queens 2)

(* All schemes must return the same checksum, for several leaves. *)
let test_schemes_agree () =
  List.iter
    (fun kernel ->
      let spec = { Microbench.kernel; width = 2; iters = 2 } in
      let src_plain = Microbench.program ~ct:false spec in
      let src_ct = Microbench.program ~ct:true spec in
      let reference leaf =
        let st = Eval.init (Sempe_lang.Shadow.strip_secret_marks src_plain) in
        List.iter
          (fun (name, value) -> Eval.set_global st name value)
          (Microbench.secrets_for_leaf ~width:2 ~leaf);
        Eval.run st
      in
      List.iter
        (fun leaf ->
          let secrets = Microbench.secrets_for_leaf ~width:2 ~leaf in
          let expected = reference leaf in
          List.iter
            (fun scheme ->
              let src =
                match scheme with
                | Scheme.Cte | Scheme.Raccoon | Scheme.Mto -> src_ct
                | Scheme.Baseline | Scheme.Sempe | Scheme.Sempe_on_legacy ->
                  src_plain
              in
              let built = Harness.build scheme src in
              let outcome = Harness.run ~globals:secrets built in
              Alcotest.(check int)
                (Printf.sprintf "%s/%s leaf=%d" kernel.Kernels.name
                   (Scheme.name scheme) leaf)
                expected
                (Harness.return_value outcome))
            Scheme.all)
        [ 1; 2; 3 ])
    [ Kernels.fibonacci; Kernels.ones; Kernels.quicksort; Kernels.queens ]

(* The protected schemes must execute a secret-independent instruction
   count; the baseline generally must not. *)
let test_dynamic_counts () =
  let spec = { Microbench.kernel = Kernels.ones; width = 3; iters = 1 } in
  let counts scheme src =
    let built = Harness.build scheme src in
    List.map
      (fun leaf ->
        let o =
          Harness.run ~globals:(Microbench.secrets_for_leaf ~width:3 ~leaf) built
        in
        o.Sempe_core.Run.exec.Sempe_core.Exec.dyn_instrs)
      [ 1; 2; 3; 4 ]
  in
  let src_plain = Microbench.program ~ct:false spec in
  let src_ct = Microbench.program ~ct:true spec in
  let uniform = function
    | [] -> true
    | x :: rest -> List.for_all (( = ) x) rest
  in
  Alcotest.(check bool) "sempe uniform" true (uniform (counts Scheme.Sempe src_plain));
  Alcotest.(check bool) "cte uniform" true (uniform (counts Scheme.Cte src_ct));
  Alcotest.(check bool) "raccoon uniform" true (uniform (counts Scheme.Raccoon src_ct));
  Alcotest.(check bool) "mto uniform" true (uniform (counts Scheme.Mto src_ct))

let test_secrecy_clean () =
  let spec = { Microbench.kernel = Kernels.quicksort; width = 3; iters = 1 } in
  let src = Microbench.program ~ct:false spec in
  let hard =
    List.filter
      (function
        | Sempe_lang.Secrecy.Unmarked_branch _ | Sempe_lang.Secrecy.Secret_loop _ ->
          true
        | Sempe_lang.Secrecy.Secret_index _
        | Sempe_lang.Secrecy.Useless_annotation _
        | Sempe_lang.Secrecy.Potential_exception _ -> false)
      (Sempe_lang.Secrecy.analyze src)
  in
  Alcotest.(check int) "no hard violations" 0 (List.length hard)

let tests =
  [
    Alcotest.test_case "ct variants agree" `Quick test_ct_variants_agree;
    Alcotest.test_case "queens count" `Quick test_queens_count;
    Alcotest.test_case "schemes agree" `Slow test_schemes_agree;
    Alcotest.test_case "dynamic counts uniform" `Quick test_dynamic_counts;
    Alcotest.test_case "microbench secrecy clean" `Quick test_secrecy_clean;
  ]
