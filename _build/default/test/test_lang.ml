(* Differential tests: every program runs through the reference evaluator
   and through compile + ISA execution (legacy and, when privatized, SeMPE
   hardware); results must agree. *)

open Sempe_lang
open Ast
module Exec = Sempe_core.Exec

let compile_and_run ?(support = Exec.Legacy) ?(globals = []) ?(arrays = [])
    (prog : Ast.program) =
  let compiled, layout = Codegen.compile prog in
  let init_mem mem =
    List.iter
      (fun (name, value) -> mem.(Codegen.scalar_offset layout name) <- value)
      globals;
    List.iter
      (fun (name, values) ->
        let off, size = Codegen.array_slice layout name in
        assert (Array.length values = size);
        Array.blit values 0 mem off size)
      arrays
  in
  let config = { Exec.default_config with Exec.support; mem_words = 1 lsl 16 } in
  let res = Exec.run ~config ~init_mem compiled in
  (res, layout)

let reference ?(globals = []) ?(arrays = []) prog =
  let st = Eval.init prog in
  List.iter (fun (name, value) -> Eval.set_global st name value) globals;
  List.iter (fun (name, values) -> Eval.set_array st name values) arrays;
  Eval.run st

let rv (res : Exec.result) = res.Exec.regs.(Sempe_isa.Reg.rv)

(* --- programs --- *)

let arith_prog =
  {
    funcs =
      [
        {
          fname = "main";
          params = [];
          locals = [ "x"; "y" ];
          body =
            [
              assign "x" (i 7 *: i 6 -: i 2);
              assign "y" (v "x" /: i 4 +: (v "x" %: i 5));
              ret ((v "x" *: i 100) +: v "y");
            ];
        };
      ];
    globals = [];
    arrays = [];
    secrets = [];
    main = "main";
  }

let fact_prog =
  {
    funcs =
      [
        {
          fname = "fact";
          params = [ "n" ];
          locals = [];
          body =
            [
              if_ (v "n" <=: i 1) [ ret (i 1) ] [];
              ret (v "n" *: call "fact" [ v "n" -: i 1 ]);
            ];
        };
        { fname = "main"; params = []; locals = []; body = [ ret (call "fact" [ i 10 ]) ] };
      ];
    globals = [];
    arrays = [];
    secrets = [];
    main = "main";
  }

let loops_prog =
  {
    funcs =
      [
        {
          fname = "main";
          params = [];
          locals = [ "acc"; "k"; "w" ];
          body =
            [
              assign "acc" (i 0);
              for_ "k" (i 0) (i 20)
                [ assign "acc" (v "acc" +: (v "k" *: v "k")) ];
              assign "w" (i 1);
              while_ (v "w" <: i 1000) [ assign "w" (v "w" *: i 3) ];
              ret (v "acc" +: v "w");
            ];
        };
      ];
    globals = [];
    arrays = [];
    secrets = [];
    main = "main";
  }

let array_prog =
  {
    funcs =
      [
        {
          fname = "main";
          params = [];
          locals = [ "k"; "sum" ];
          body =
            [
              for_ "k" (i 0) (i 16) [ store "buf" (v "k") (v "k" *: i 3 +: i 1) ];
              assign "sum" (i 0);
              for_ "k" (i 0) (i 16)
                [ assign "sum" (v "sum" +: idx "buf" (v "k")) ];
              ret (v "sum");
            ];
        };
      ];
    globals = [];
    arrays = [ { aname = "buf"; size = 16; scratch = false } ];
    secrets = [];
    main = "main";
  }

(* Secret-branch program: nested chain mixing scalars and public control
   flow inside paths. *)
let secret_prog =
  {
    funcs =
      [
        {
          fname = "main";
          params = [];
          locals = [ "acc"; "k" ];
          body =
            [
              assign "acc" (i 100);
              if_ ~secret:true (v "s1" >: i 0)
                [
                  for_ "k" (i 0) (i 5) [ assign "acc" (v "acc" +: v "k") ];
                  if_ ~secret:true (v "s2" =: i 3)
                    [ assign "acc" (v "acc" *: i 2) ]
                    [ assign "acc" (v "acc" -: i 7) ];
                ]
                [ assign "acc" (v "acc" *: i 10) ];
              ret (v "acc");
            ];
        };
      ];
    globals = [ "s1"; "s2" ];
    arrays = [];
    secrets = [ "s1"; "s2" ];
    main = "main";
  }

let lops_prog =
  {
    funcs =
      [
        {
          fname = "main";
          params = [];
          locals = [ "a"; "b" ];
          body =
            [
              assign "a" (i 3);
              assign "b" (i 0);
              ret
                ((v "a" &&: v "b")
                +: ((v "a" ||: v "b") *: i 10)
                +: (Unop (Lnot, v "b") *: i 100)
                +: (Unop (Neg, v "a") *: i 1000)
                +: (Select (v "a", i 5, i 9) *: i 10000));
            ];
        };
      ];
    globals = [];
    arrays = [];
    secrets = [];
    main = "main";
  }

let check_same name ?(globals = []) ?(arrays = []) prog =
  let expected = reference ~globals ~arrays prog in
  let res, _ = compile_and_run ~globals ~arrays prog in
  Alcotest.(check int) (name ^ " (legacy)") expected (rv res)

let test_basic () =
  check_same "arith" arith_prog;
  check_same "factorial" fact_prog;
  check_same "loops" loops_prog;
  check_same "arrays" array_prog;
  check_same "logical/select ops" lops_prog

let test_secret_all_modes () =
  (* For every secret assignment: reference, baseline (stripped), privatized
     on legacy, and privatized on SeMPE must all agree. *)
  List.iter
    (fun (s1, s2) ->
      let globals = [ ("s1", s1); ("s2", s2) ] in
      let expected = reference ~globals secret_prog in
      let baseline = Shadow.strip_secret_marks secret_prog in
      let res_base, _ = compile_and_run ~globals baseline in
      Alcotest.(check int) "baseline" expected (rv res_base);
      let priv = Shadow.privatize secret_prog in
      let res_legacy, _ = compile_and_run ~support:Exec.Legacy ~globals priv in
      Alcotest.(check int) "privatized/legacy" expected (rv res_legacy);
      let res_sempe, _ = compile_and_run ~support:Exec.Sempe_hw ~globals priv in
      Alcotest.(check int) "privatized/sempe" expected (rv res_sempe))
    [ (0, 0); (0, 3); (1, 0); (1, 3); (5, 2) ]

let test_unprivatized_sempe_wrong () =
  (* Without privatization, SeMPE both-path execution corrupts memory-held
     locals: the result differs for at least one secret. This is the bug the
     ShadowMemory pass exists to fix. *)
  let differs =
    List.exists
      (fun (s1, s2) ->
        let globals = [ ("s1", s1); ("s2", s2) ] in
        let expected = reference ~globals secret_prog in
        let res, _ = compile_and_run ~support:Exec.Sempe_hw ~globals secret_prog in
        rv res <> expected)
      [ (0, 0); (0, 3); (1, 0); (1, 3) ]
  in
  Alcotest.(check bool) "unprivatized SeMPE corrupts state" true differs

let test_secret_trace_independence () =
  (* Committed-PC trace of the privatized program under SeMPE must not
     depend on the secrets. *)
  let priv = Shadow.privatize secret_prog in
  let compiled, layout = Codegen.compile priv in
  let trace s1 s2 =
    let pcs = ref [] in
    let sink = function
      | Sempe_pipeline.Uop.Commit u -> pcs := u.Sempe_pipeline.Uop.pc :: !pcs
      | Sempe_pipeline.Uop.Drain _ -> ()
    in
    let init_mem mem =
      mem.(Codegen.scalar_offset layout "s1") <- s1;
      mem.(Codegen.scalar_offset layout "s2") <- s2
    in
    let config =
      { Exec.default_config with Exec.support = Exec.Sempe_hw; mem_words = 1 lsl 16 }
    in
    ignore (Exec.run ~config ~init_mem ~sink compiled);
    List.rev !pcs
  in
  let t00 = trace 0 0 in
  List.iter
    (fun (s1, s2) ->
      Alcotest.(check (list int))
        (Printf.sprintf "trace(%d,%d)" s1 s2)
        t00 (trace s1 s2))
    [ (0, 3); (1, 0); (1, 3); (9, 9) ]

let test_secrecy_analysis () =
  let violations = Secrecy.analyze secret_prog in
  Alcotest.(check int) "annotated program is clean" 0 (List.length violations);
  let bad = Shadow.strip_secret_marks secret_prog in
  let unmarked =
    List.filter
      (function Secrecy.Unmarked_branch _ -> true | _ -> false)
      (Secrecy.analyze bad)
  in
  Alcotest.(check int) "stripped program has unmarked branches" 2
    (List.length unmarked)

let tests =
  [
    Alcotest.test_case "compile vs reference" `Quick test_basic;
    Alcotest.test_case "secret program all modes" `Quick test_secret_all_modes;
    Alcotest.test_case "unprivatized sempe corrupts" `Quick test_unprivatized_sempe_wrong;
    Alcotest.test_case "privatized trace independence" `Quick test_secret_trace_independence;
    Alcotest.test_case "secrecy analysis" `Quick test_secrecy_analysis;
  ]
