(* Edge cases across the stack: evaluator semantics corners, executor
   guards, normalization properties, chart rendering, report helpers. *)

open Sempe_lang
open Ast
module Exec = Sempe_core.Exec
module Run = Sempe_core.Run

let prog_of body ~locals =
  {
    funcs = [ { fname = "main"; params = []; locals; body } ];
    globals = [ "g" ];
    arrays = [ { aname = "a"; size = 4; scratch = false } ];
    secrets = [];
    main = "main";
  }

let eval ?(globals = []) prog =
  let st = Eval.init prog in
  List.iter (fun (n, v_) -> Eval.set_global st n v_) globals;
  Eval.run st

let test_eval_div_by_zero () =
  (* division and remainder by zero yield 0, matching the ISA (wrong paths
     must not trap, threat model section III) *)
  let p = prog_of ~locals:[] [ ret ((i 7 /: i 0) +: (i 9 %: i 0)) ] in
  Alcotest.(check int) "0" 0 (eval p)

let test_eval_oob_raises () =
  let p = prog_of ~locals:[] [ ret (idx "a" (i 99)) ] in
  Alcotest.(check bool) "raises" true
    (match eval p with _ -> false | exception Eval.Runtime_error _ -> true)

let test_eval_step_limit () =
  let p = prog_of ~locals:[ "x" ] [ while_ (i 1) [ assign "x" (v "x" +: i 1) ]; ret (i 0) ] in
  let st = Eval.init p in
  Alcotest.check_raises "limit" Eval.Step_limit (fun () ->
      ignore (Eval.run ~max_steps:1000 st))

let test_eval_nonshortcircuit () =
  (* g is incremented by bump() even when the left operand is 0 *)
  let p =
    {
      funcs =
        [
          {
            fname = "bump";
            params = [];
            locals = [];
            body = [ assign "g" (v "g" +: i 1); ret (i 1) ];
          };
          {
            fname = "main";
            params = [];
            locals = [ "t" ];
            body = [ assign "t" (i 0 &&: call "bump" []); ret (v "g") ];
          };
        ];
      globals = [ "g" ];
      arrays = [];
      secrets = [];
      main = "main";
    }
  in
  Alcotest.(check int) "bump evaluated" 1 (eval p)

let test_exec_budget () =
  let b = Sempe_isa.Builder.create () in
  Sempe_isa.Builder.bind b "entry";
  Sempe_isa.Builder.jmp b "entry";
  let prog = Sempe_isa.Builder.assemble b ~entry:"entry" ~data_words:0 in
  let config = { Exec.default_config with Exec.max_instrs = 500; mem_words = 64 } in
  Alcotest.check_raises "budget" (Exec.Budget_exceeded 500) (fun () ->
      ignore (Exec.run ~config prog))

let test_exec_oob_modes () =
  (* wild load: forgiving mode returns 0, strict mode raises *)
  let b = Sempe_isa.Builder.create () in
  Sempe_isa.Builder.bind b "entry";
  Sempe_isa.Builder.li b 10 999999;
  Sempe_isa.Builder.ld b 11 10 0;
  Sempe_isa.Builder.halt b;
  let prog = Sempe_isa.Builder.assemble b ~entry:"entry" ~data_words:0 in
  let forgiving = { Exec.default_config with Exec.mem_words = 64 } in
  let res = Exec.run ~config:forgiving prog in
  Alcotest.(check int) "forgiving load reads 0" 0 res.Exec.regs.(11);
  let strict = { forgiving with Exec.forgiving_oob = false } in
  Alcotest.(check bool) "strict raises" true
    (match Exec.run ~config:strict prog with
     | _ -> false
     | exception Exec.Out_of_bounds _ -> true)

let prop_normalize_preserves_semantics =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"normalize preserves reference semantics" ~count:80
       Test_random_progs.arbitrary_program
       (fun (prog, fill) ->
         let run p =
           let st = Eval.init p in
           Eval.set_array st "arr" (Array.of_list fill);
           Eval.set_global st "s0" 1;
           Eval.run st
         in
         run prog = run (Normalize.program prog)))

let prop_normalize_bounds_depth =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"normalize bounds expression depth" ~count:80
       Test_random_progs.arbitrary_program
       (fun (prog, _) ->
         let rec depth = function
           | Int _ | Var _ -> 1
           | Index (_, e) | Unop (_, e) -> 1 + depth e
           | Binop (_, x, y) -> 1 + max (depth x) (depth y)
           | Call (_, args) -> 1 + List.fold_left (fun m e -> max m (depth e)) 0 args
           | Select (c, x, y) -> 1 + max (depth c) (max (depth x) (depth y))
         in
         let max_depth = ref 0 in
         let scan_expr e = max_depth := max !max_depth (depth e) in
         let norm = Normalize.program prog in
         List.iter
           (fun f ->
             block_fold
               (fun () stmt ->
                 match stmt with
                 | Assign (_, e) | Expr e | Return e -> scan_expr e
                 | Store (_, ie, e) ->
                   scan_expr ie;
                   scan_expr e
                 | If { cond; _ } -> scan_expr cond
                 | While (cond, _) -> scan_expr cond
                 | For (_, lo, hi, _) ->
                   scan_expr lo;
                   scan_expr hi)
               () f.body)
           norm.funcs;
         !max_depth <= Normalize.max_depth + 1))

let test_program_nesting_hint () =
  let spec =
    { Sempe_workloads.Microbench.kernel = Sempe_workloads.Kernels.fibonacci;
      width = 5; iters = 1 }
  in
  let built =
    Sempe_workloads.Harness.build Sempe_core.Scheme.Sempe
      (Sempe_workloads.Microbench.program ~ct:false spec)
  in
  let hint = Sempe_isa.Program.max_nesting_hint built.Sempe_workloads.Harness.prog in
  Alcotest.(check bool)
    (Printf.sprintf "hint %d covers runtime depth 5" hint)
    true (hint >= 5)

let test_chart_rendering () =
  let out =
    Sempe_util.Tablefmt.chart ~title:"demo" ~xlabel:"W"
      ~series:[ ("a", [ (1.0, 2.0); (2.0, 4.0) ]); ("b", [ (1.0, 3.0) ]) ]
      ~log_y:true ()
  in
  Alcotest.(check bool) "mentions title" true
    (String.length out > 0 && String.sub out 0 4 = "demo");
  Alcotest.(check bool) "missing point dashed" true
    (String.length out > 0
    && List.exists (fun line -> String.trim line <> "" && String.length line > 0)
         (String.split_on_char '\n' out))

let test_run_helpers () =
  Alcotest.(check (float 1e-12)) "seconds at 2GHz" 1e-6
    (Run.seconds Sempe_pipeline.Config.default 2000);
  let spec =
    { Sempe_workloads.Microbench.kernel = Sempe_workloads.Kernels.fibonacci;
      width = 1; iters = 1 }
  in
  let src = Sempe_workloads.Microbench.program ~ct:false spec in
  let secrets = Sempe_workloads.Microbench.secrets_for_leaf ~width:1 ~leaf:1 in
  let base =
    Sempe_workloads.Harness.run ~globals:secrets
      (Sempe_workloads.Harness.build Sempe_core.Scheme.Baseline src)
  in
  Alcotest.(check (float 1e-9)) "overhead of self is 1" 1.0
    (Run.overhead ~baseline:base base)

let test_instr_strings () =
  let module I = Sempe_isa.Instr in
  List.iter
    (fun (instr, expected) ->
      Alcotest.(check string) expected expected (I.to_string instr))
    [
      (I.Nop, "nop");
      (I.Alu (I.Add, 10, 11, 12), "add r10, r11, r12");
      (I.Alui (I.Slt, 8, 9, -3), "slti r8, r9, -3");
      (I.Li (5, 42), "li r5, 42");
      (I.Ld (6, 1, 8), "ld r6, 8(r1)");
      (I.St (6, 1, -8), "st r6, -8(r1)");
      (I.Cmov (4, 5, 6), "cmov r4, r5, r6");
      (I.Br { cond = I.Ne; rs1 = 3; rs2 = 0; target = 12; secure = true },
       "sbne r3, r0, @12");
      (I.Br { cond = I.Le; rs1 = 3; rs2 = 4; target = 9; secure = false },
       "ble r3, r4, @9");
      (I.Jmp 7, "jmp @7");
      (I.Jr 5, "jr r5");
      (I.Call 2, "call @2");
      (I.Ret, "ret");
      (I.Eosjmp, "eosjmp");
      (I.Halt, "halt");
    ]

let test_secrecy_advisories () =
  let p =
    Parser.program
      {|
global s;
global pub;
@secret s;
array a[8];
func main() locals(x) {
  @secret if (pub > 0) { x = 1; }     // useless annotation
  x = a[s & 7];                        // secret index
  @secret if (s != 0) { x = 2; }
  return x;
}
|}
  in
  let vs = Secrecy.analyze p in
  Alcotest.(check bool) "useless annotation flagged" true
    (List.exists (function Secrecy.Useless_annotation _ -> true | _ -> false) vs);
  Alcotest.(check bool) "secret index flagged" true
    (List.exists (function Secrecy.Secret_index _ -> true | _ -> false) vs);
  (* advisory only: check does not raise *)
  Secrecy.check p

let test_wrong_path_exception_advisory () =
  let p =
    Parser.program
      {|
global s;
global d;
@secret s;
func main() locals(x) {
  @secret if (s != 0) { x = 100 / d; }   // wrong-path divide may see d = 0
  x = x + 100 / 4;                        // constant divisor: fine
  return x;
}
|}
  in
  let faults =
    List.filter
      (function Secrecy.Potential_exception _ -> true | _ -> false)
      (Secrecy.analyze p)
  in
  Alcotest.(check int) "exactly the in-region division flagged" 1
    (List.length faults)

let tests =
  [
    Alcotest.test_case "eval div by zero" `Quick test_eval_div_by_zero;
    Alcotest.test_case "eval oob raises" `Quick test_eval_oob_raises;
    Alcotest.test_case "eval step limit" `Quick test_eval_step_limit;
    Alcotest.test_case "eval non-short-circuit" `Quick test_eval_nonshortcircuit;
    Alcotest.test_case "exec budget" `Quick test_exec_budget;
    Alcotest.test_case "exec oob modes" `Quick test_exec_oob_modes;
    prop_normalize_preserves_semantics;
    prop_normalize_bounds_depth;
    Alcotest.test_case "program nesting hint" `Quick test_program_nesting_hint;
    Alcotest.test_case "chart rendering" `Quick test_chart_rendering;
    Alcotest.test_case "run helpers" `Quick test_run_helpers;
    Alcotest.test_case "instr strings" `Quick test_instr_strings;
    Alcotest.test_case "secrecy advisories" `Quick test_secrecy_advisories;
    Alcotest.test_case "wrong-path exception advisory" `Quick
      test_wrong_path_exception_advisory;
  ]
