(* The real-world workload: decode a secret image to PPM/GIF/BMP under
   every scheme; the image contents must not be inferable from the
   decoder's behavior.

   Run with: dune exec examples/djpeg_demo.exe *)

module Djpeg = Sempe_workloads.Djpeg
module Harness = Sempe_workloads.Harness
module Scheme = Sempe_core.Scheme
module Run = Sempe_core.Run
module Observable = Sempe_security.Observable
module Leakage = Sempe_security.Leakage
module Tablefmt = Sempe_util.Tablefmt

let decode scheme fmt ~seed =
  let built = Harness.build scheme (Djpeg.program fmt) in
  let globals, arrays = Djpeg.inputs fmt ~seed ~blocks:8 in
  let recorder = Observable.recorder () in
  let outcome =
    Harness.run ~globals ~arrays ~observe:(Observable.feed recorder) built
  in
  (outcome, Observable.view recorder outcome.Sempe_core.Run.timing)

let () =
  print_endline "=== djpeg: secret image -> PPM / GIF / BMP ===\n";
  let rows =
    List.map
      (fun fmt ->
        let base, _ = decode Scheme.Baseline fmt ~seed:42 in
        let sempe, _ = decode Scheme.Sempe fmt ~seed:42 in
        let ovh =
          (float_of_int (Run.cycles sempe) /. float_of_int (Run.cycles base)) -. 1.0
        in
        [
          Djpeg.format_name fmt;
          string_of_int (Run.cycles base);
          string_of_int (Run.cycles sempe);
          Tablefmt.percent ovh;
        ])
      Djpeg.all_formats
  in
  Tablefmt.print
    ~header:[ "format"; "baseline cycles"; "SeMPE cycles"; "overhead" ]
    rows;
  print_endline "\ncan the decoder's behavior distinguish two images?";
  List.iter
    (fun scheme ->
      let _, v1 = decode scheme Djpeg.Ppm ~seed:42 in
      let _, v2 = decode scheme Djpeg.Ppm ~seed:9001 in
      let leaky = Leakage.leaky_channels [ v1; v2 ] in
      Printf.printf "  %-10s %s\n" (Scheme.name scheme)
        (if leaky = [] then "no - all channels identical"
         else
           "yes - leaks via "
           ^ String.concat ", " (List.map Leakage.channel_name leaky)))
    [ Scheme.Baseline; Scheme.Sempe ]
