(* Quickstart: write a program with a secret-dependent branch, compile it
   for SeMPE, and watch both paths execute with identical observables.

   Run with: dune exec examples/quickstart.exe *)

open Sempe_lang.Ast
module Harness = Sempe_workloads.Harness
module Scheme = Sempe_core.Scheme
module Run = Sempe_core.Run
module Observable = Sempe_security.Observable

(* A toy access-control check: the secret decides which of two code paths
   computes the response. *)
let program =
  {
    funcs =
      [
        {
          fname = "main";
          params = [];
          locals = [ "resp"; "k" ];
          body =
            [
              assign "resp" (i 0);
              if_ ~secret:true
                (v "is_admin" <>: i 0)
                [
                  (* privileged path: longer computation *)
                  for_ "k" (i 0) (i 50)
                    [ assign "resp" ((v "resp" +: (v "k" *: v "k")) %: i 9973) ];
                ]
                [ assign "resp" (i 7) ];
              ret (v "resp");
            ];
        };
      ];
    globals = [ "is_admin" ];
    arrays = [];
    secrets = [ "is_admin" ];
    main = "main";
  }

let run scheme ~secret =
  let built = Harness.build scheme program in
  let recorder = Observable.recorder () in
  let outcome =
    Harness.run
      ~globals:[ ("is_admin", secret) ]
      ~observe:(Observable.feed recorder) built
  in
  (Harness.return_value outcome, Run.cycles outcome, Observable.pc_digest recorder)

let () =
  print_endline "=== quickstart: one secret branch, two machines ===\n";
  List.iter
    (fun scheme ->
      let r0, c0, d0 = run scheme ~secret:0 in
      let r1, c1, d1 = run scheme ~secret:1 in
      Printf.printf "%-16s secret=0: result=%-5d %6d cycles | secret=1: result=%-5d %6d cycles\n"
        (Scheme.name scheme) r0 c0 r1 c1;
      Printf.printf "%-16s timing %s, pc-trace %s\n\n" ""
        (if c0 = c1 then "IDENTICAL (no leak)" else "DIFFERS  (leaks!)")
        (if d0 = d1 then "IDENTICAL (no leak)" else "DIFFERS  (leaks!)"))
    [ Scheme.Baseline; Scheme.Sempe ];
  print_endline
    "Under SeMPE the sJMP executes the not-taken path first, jumps back at\n\
     the eosJMP, executes the taken path, and merges registers from the\n\
     ArchRS snapshot - both secrets produce the same observable execution."
