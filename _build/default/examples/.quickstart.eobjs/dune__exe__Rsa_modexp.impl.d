examples/rsa_modexp.ml: List Printf Sempe_core Sempe_security Sempe_workloads
