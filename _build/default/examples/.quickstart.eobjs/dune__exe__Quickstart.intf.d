examples/quickstart.mli:
