examples/rsa_modexp.mli:
