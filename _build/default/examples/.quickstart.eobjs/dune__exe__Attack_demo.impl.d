examples/attack_demo.ml: Array List Printf Sempe_core Sempe_lang Sempe_mem Sempe_security Sempe_workloads String
