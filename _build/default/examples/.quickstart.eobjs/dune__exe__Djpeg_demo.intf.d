examples/djpeg_demo.mli:
