examples/djpeg_demo.ml: List Printf Sempe_core Sempe_security Sempe_util Sempe_workloads String
