examples/quickstart.ml: List Printf Sempe_core Sempe_lang Sempe_security Sempe_workloads
