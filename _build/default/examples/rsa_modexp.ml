(* Figure 1 end-to-end: the RSA square-and-multiply routine whose timing
   leaks the key on a normal machine, sealed by SeMPE.

   Run with: dune exec examples/rsa_modexp.exe *)

module Harness = Sempe_workloads.Harness
module Rsa = Sempe_workloads.Rsa
module Scheme = Sempe_core.Scheme
module Run = Sempe_core.Run
module Attacker = Sempe_security.Attacker

let cycles scheme ~key =
  let built = Harness.build scheme Rsa.program in
  let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
  Run.cycles (Harness.run ~globals ~arrays built)

let () =
  print_endline "=== RSA modular exponentiation (paper Figure 1) ===\n";
  print_endline "cycles per key (note the baseline ordering by Hamming weight):";
  let keys = [ 0x0000; 0x0001; 0x00ff; 0x0fff; 0xffff ] in
  Printf.printf "%-8s %12s %12s\n" "key" "baseline" "SeMPE";
  List.iter
    (fun key ->
      Printf.printf "0x%04x   %12d %12d\n" key
        (cycles Scheme.Baseline ~key)
        (cycles Scheme.Sempe ~key))
    keys;
  let sample = [ 0x0000; 0x0101; 0x1111; 0x5555; 0x7777; 0xffff; 0x00ff ] in
  let corr scheme =
    Attacker.timing_key_correlation
      ~run:(fun ~key -> cycles scheme ~key)
      ~keys:sample
  in
  Printf.printf "\nHamming-weight/time correlation: baseline %.3f, SeMPE %.3f\n"
    (corr Scheme.Baseline) (corr Scheme.Sempe);
  print_endline "\nbit-by-bit recovery (does flipping the bit change the time?):";
  let recovered scheme =
    List.filter
      (fun bit ->
        Attacker.recover_bit
          ~run:(fun ~key -> cycles scheme ~key)
          ~base_key:0x1234 ~bit)
      (List.init Rsa.key_bits (fun b -> b))
  in
  Printf.printf "  baseline: %d of %d key bits observable\n"
    (List.length (recovered Scheme.Baseline))
    Rsa.key_bits;
  Printf.printf "  SeMPE:    %d of %d key bits observable\n"
    (List.length (recovered Scheme.Sempe))
    Rsa.key_bits;

  (* The manual alternative the paper's introduction describes: rewrite the
     routine as a Montgomery ladder (selects instead of branches). *)
  let ladder_cycles ~key =
    let built = Harness.build Scheme.Baseline Rsa.ct_program in
    let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
    Run.cycles (Harness.run ~globals ~arrays built)
  in
  Printf.printf
    "\nprotection cost for key 0xa5a5 (cycles):\n\
    \  leaky original on plain hw:        %6d\n\
    \  original + SeMPE (zero rewrite):   %6d\n\
    \  hand-written CT ladder, plain hw:  %6d\n"
    (cycles Scheme.Baseline ~key:0xa5a5)
    (cycles Scheme.Sempe ~key:0xa5a5)
    (ladder_cycles ~key:0xa5a5);
  print_endline
    "SeMPE matches the rewritten routine's security with a one-line\n\
     annotation instead of a rewrite - the paper's programming-effort claim."
