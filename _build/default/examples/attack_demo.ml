(* Attack demonstrations from the threat model (paper section III):

   1. prime+probe on a shared data cache - the attacker learns which sets
      the victim touched;
   2. the branch-predictor channel - the predictor state after the victim
      runs depends on the secret on a normal machine, not under SeMPE;
   3. a full co-resident attack: attacker and RSA victim time-share the
      core, the attacker primes and probes the instruction cache between
      slices, and the per-slice eviction patterns expose (baseline) or
      hide (SeMPE) the key.

   Run with: dune exec examples/attack_demo.exe *)

module Cache = Sempe_mem.Cache
module Attacker = Sempe_security.Attacker
module Harness = Sempe_workloads.Harness
module Rsa = Sempe_workloads.Rsa
module Scheme = Sempe_core.Scheme
module Observable = Sempe_security.Observable

let () =
  print_endline "=== attack 1: prime+probe on a shared cache ===\n";
  let cache =
    Cache.create { Cache.name = "shared"; size_bytes = 4096; line_bytes = 64; ways = 1 }
  in
  let nsets = Cache.num_sets cache in
  (* The attacker fills every set with its own lines. *)
  let prime = List.init nsets (fun s -> s * 64) in
  (* The victim touches a secret-dependent set. *)
  let secret_set = 13 in
  let victim () =
    ignore (Cache.access cache ~addr:((nsets + secret_set) * 64) ~write:false)
  in
  let evictions = Attacker.prime_and_probe cache ~prime ~victim in
  let hits =
    List.filteri (fun s _ -> evictions.(s)) (List.init nsets (fun s -> s))
  in
  Printf.printf "victim touched secret set %d; attacker observes evictions in sets: %s\n"
    secret_set
    (String.concat ", " (List.map string_of_int hits));
  print_endline
    "-> on shared hardware, addresses used under a secret branch are visible.\n";

  print_endline "=== attack 2: the branch-predictor channel on RSA ===\n";
  let bpred_sig scheme ~key =
    let built = Harness.build scheme Rsa.program in
    let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
    let recorder = Observable.recorder () in
    let outcome =
      Harness.run ~globals ~arrays ~observe:(Observable.feed recorder) built
    in
    (Observable.view recorder outcome.Sempe_core.Run.timing).Observable.bpred_sig
  in
  List.iter
    (fun scheme ->
      let s1 = bpred_sig scheme ~key:0x0000 in
      let s2 = bpred_sig scheme ~key:0xffff in
      Printf.printf "%-10s predictor state after key=0x0000 vs key=0xffff: %s\n"
        (Scheme.name scheme)
        (if s1 = s2 then "IDENTICAL - the sJMP never trains the predictor"
         else "DIFFERS - the key is recoverable from predictor probing"))
    [ Scheme.Baseline; Scheme.Sempe ];

  print_endline "\n=== attack 3: co-resident prime+probe on the icache ===\n";
  let trace scheme key =
    let built = Harness.build scheme Rsa.program in
    let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
    let layout = built.Sempe_workloads.Harness.layout in
    let init_mem mem =
      List.iter
        (fun (name, value) ->
          mem.(Sempe_lang.Codegen.scalar_offset layout name) <- value)
        globals;
      List.iter
        (fun (name, values) ->
          let off, _ = Sempe_lang.Codegen.array_slice layout name in
          Array.blit values 0 mem off (Array.length values))
        arrays
    in
    Sempe_security.Coresident.prime_probe_trace
      ~support:(Scheme.support scheme)
      ~prog:built.Sempe_workloads.Harness.prog ~init_mem ()
  in
  List.iter
    (fun scheme ->
      let t1 = trace scheme 0x0000 and t2 = trace scheme 0xffff in
      let d = Sempe_security.Coresident.distance t1 t2 in
      Printf.printf
        "%-10s eviction patterns for key=0x0000 vs key=0xffff differ in %d \
         (slice,set) cells%s\n"
        (Scheme.name scheme) d
        (if d = 0 then " - the attacker learns nothing"
         else " - the victim's code path is visible slice by slice"))
    [ Scheme.Baseline; Scheme.Sempe ]
