(** The Figure-7 microbenchmark: a nested chain of secret conditionals.

    One iteration of the generated [main] is

    {v
    if (s1)      acc += kernel(seed1)
    else if (s2) acc += kernel(seed2)
    ...
    else if (sW) acc += kernel(seedW)
    else         acc += kernel(seedW1)
    v}

    — [width] = W secret branches, W-1 of them nested, W+1 leaf paths. The
    unprotected baseline executes exactly one leaf per iteration; SeMPE and
    the software schemes execute all of them.

    For the software schemes ([ct = true]) the kernel bodies are inlined
    into the leaves with leaf-unique locals — the paper's FaCT port
    compiles the workloads inside the secret region — and the
    constant-time kernel variant is used. *)

type spec = {
  kernel : Kernels.t;
  width : int;   (** W: number of secret branches, >= 1 *)
  iters : int;   (** iterations of the secure region *)
}

val program : ct:bool -> spec -> Sempe_lang.Ast.program
(** The annotated source program (before any scheme transform). *)

val skeleton : width:int -> iters:int -> Sempe_lang.Ast.program
(** The same chain with an empty (null) kernel — used to measure the loop
    and branch skeleton cost when computing the ideal slowdown of
    Figure 10b. *)

val secret_names : width:int -> string list
(** [s1; ...; sW]. *)

val secrets_for_leaf : width:int -> leaf:int -> (string * int) list
(** Assignment of the secrets that steers the baseline to leaf [leaf]
    (1-based; [width + 1] selects the final else). *)
