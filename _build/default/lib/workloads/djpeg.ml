open Sempe_lang.Ast

type format = Ppm | Gif | Bmp

let format_name = function Ppm -> "PPM" | Gif -> "GIF" | Bmp -> "BMP"
let all_formats = [ Ppm; Gif; Bmp ]

type size = { label : string; blocks : int }

(* Scaled-down block counts standing in for the paper's image sizes; the
   per-block work is size-independent, which is the property Figure 8
   exercises. *)
let sizes =
  [
    { label = "256k"; blocks = 8 };
    { label = "512k"; blocks = 16 };
    { label = "1024k"; blocks = 32 };
    { label = "2048k"; blocks = 64 };
  ]

let max_blocks = 64
let block_px = 64

(* The decoder mirrors libjpeg's per-block pipeline: most of the work is
   branch-free arithmetic (coefficient expansion through selects, the
   transform, clamping), while the secret-dependent {e branches} are the
   run-level and segment-level decisions a real decoder takes on the data —
   one per run of 8 coefficients, plus format-specific per-segment choices.
   All secret branches assign scalars only; array stores happen outside the
   secure regions, so ShadowMemory privatization stays cheap. Keeping the
   secure regions a modest fraction of the per-block work is what puts the
   Figure 8 overheads well below 2x, as in the paper. *)
let decode_block =
  {
    fname = "decode_block";
    params = [ "b" ];
    locals =
      [ "k"; "k2"; "r"; "coef"; "val"; "base"; "g"; "t1"; "t2"; "a";
        "runmask"; "nz"; "acc"; "sign"; "mag" ];
    body =
      [
        assign "base" (v "b" *: i block_px);
        assign "nz" (i 0);
        assign "acc" (i 0);
        (* Run-level expansion: coefficients through branch-free selects,
           one secret bookkeeping branch per run of 8 (the Huffman
           run/level decision point). *)
        for_ "r" (i 0) (i 8)
          [
            assign "runmask" (i 0);
            for_ "k2" (i 0) (i 8)
              [
                assign "k" ((v "r" *: i 8) +: v "k2");
                assign "coef" (idx "img_in" (v "base" +: v "k"));
                assign "sign" (v "coef" <: i 0);
                assign "mag" (Select (v "sign", i 0 -: v "coef", v "coef"));
                assign "val" (v "mag" *: idx "qtable" (v "k"));
                assign "val" (Select (v "sign", i 0 -: v "val", v "val"));
                store "work" (v "k") (v "val");
                assign "runmask" (Binop (Bor, v "runmask", v "mag"));
              ];
            if_ ~secret:true (v "runmask" <>: i 0)
              [ assign "nz" (v "nz" +: i 1); assign "acc" (v "acc" +: v "runmask") ]
              [ assign "acc" (v "acc" +: i 1) ];
          ];
        (* Transform stand-in: butterfly passes plus an 8-tap smoothing
           pass — public, branch-free, the bulk of the per-block work. *)
        for_ "g" (i 0) (i 1)
          [
            for_ "k" (i 0) (i 32)
              [
                assign "t1" (idx "work" (v "k"));
                assign "t2" (idx "work" (v "k" +: i 32));
                store "work" (v "k") ((v "t1" +: v "t2") /: i 2);
                store "work" (v "k" +: i 32) ((v "t1" -: v "t2") /: i 2);
              ];
          ];
        for_ "g" (i 0) (i 2)
          [
            for_ "k" (i 0) (i 16)
              [
                assign "a" ((v "g" *: i 32) +: v "k");
                assign "t1" (idx "work" (v "a"));
                assign "t2" (idx "work" (v "a" +: i 16));
                store "work" (v "a") (v "t1" +: v "t2");
                store "work" (v "a" +: i 16) (v "t1" -: v "t2");
              ];
          ];
        for_ "r" (i 0) (i 8)
          [
            for_ "k2" (i 0) (i 8)
              [
                assign "k" ((v "r" *: i 8) +: v "k2");
                assign "t1" (i 0);
                for_ "g" (i 0) (i 8)
                  [
                    assign "t1"
                      (v "t1"
                      +: (idx "work" ((v "r" *: i 8) +: v "g")
                         *: idx "qtable" (Binop (Band, v "k2" +: v "g", i 63))));
                  ];
                store "pix" (v "k") (Binop (Shr, v "t1", i 8));
              ];
          ];
        (* Branch-free clamp into the pixel buffer. *)
        for_ "k" (i 0) (i block_px)
          [
            assign "val" ((Binop (Shr, idx "pix" (v "k"), i 2)) +: i 128);
            assign "val" (Select (v "val" <: i 0, i 0, v "val"));
            assign "val" (Select (v "val" >: i 255, i 255, v "val"));
            store "pix" (v "k") (v "val");
          ];
        ret (v "nz" +: v "acc");
      ];
  }

(* PPM: three channels per pixel; a secret gamma-segment decision per pair
   of pixels, with a nested bright-segment branch — the largest
   secure-region share. *)
let emit_ppm =
  {
    fname = "emit_ppm";
    params = [ "b" ];
    locals = [ "k"; "p2"; "y"; "y2"; "gsel"; "r"; "g2"; "bl"; "cs"; "base" ];
    body =
      [
        assign "cs" (i 0);
        assign "base" (v "b" *: i (3 * block_px));
        (* public chroma smoothing over the block before emission *)
        for_ "k" (i 0) (i (block_px - 2))
          [
            assign "y" (idx "pix" (v "k"));
            assign "y2" ((v "y" +: idx "pix" (v "k" +: i 1) +: idx "pix" (v "k" +: i 2)) /: i 3);
            assign "cs" (v "cs" +: Binop (Band, v "y2", i 3));
          ];
        for_ "p2" (i 0) (i (block_px / 2))
          [
            assign "y" (idx "pix" (v "p2" *: i 2));
            assign "y2" (idx "pix" ((v "p2" *: i 2) +: i 1));
            if_ ~secret:true ((v "y" +: v "y2") <: i 248)
              [ assign "gsel" (i 2) ]
              [
                if_ ~secret:true ((v "y" +: v "y2") >: i 296)
                  [ assign "gsel" (i 0) ]
                  [ assign "gsel" (i 1) ];
              ];
            for_ "k" (i 0) (i 2)
              [
                assign "y" (idx "pix" ((v "p2" *: i 2) +: v "k"));
                assign "r"
                  (Select
                     ( v "gsel" =: i 2,
                       v "y" *: i 2,
                       Select
                         ( v "gsel" =: i 1,
                           v "y" +: i 32,
                           i 255 -: ((i 255 -: v "y") /: i 2) ) ));
                assign "r" (Select (v "r" >: i 255, i 255, v "r"));
                assign "g2" (((v "r" *: i 3) +: v "y") /: i 4);
                assign "bl" ((v "r" +: v "y") /: i 2);
                assign "cs" (v "cs" +: v "r" +: v "g2" +: v "bl");
                store "img_out"
                  (v "base" +: (((v "p2" *: i 2) +: v "k") *: i 3))
                  (v "r");
                store "img_out"
                  (v "base" +: (((v "p2" *: i 2) +: v "k") *: i 3) +: i 1)
                  (v "g2");
                store "img_out"
                  (v "base" +: (((v "p2" *: i 2) +: v "k") *: i 3) +: i 2)
                  (v "bl");
              ];
          ];
        ret (v "cs");
      ];
  }

(* GIF: branch-free palette search per pixel plus one secret dithering
   decision per pixel (Floyd-Steinberg takes one data-dependent decision
   per emitted pixel). *)
let emit_gif =
  {
    fname = "emit_gif";
    params = [ "b" ];
    locals =
      [ "k"; "y"; "p"; "d"; "best"; "bi"; "iv"; "dith"; "cs"; "base" ];
    body =
      [
        assign "cs" (i 0);
        assign "base" (v "b" *: i block_px);
        for_ "k" (i 0) (i block_px)
          [
            assign "y" (idx "pix" (v "k"));
            if_ ~secret:true
              (Binop (Band, v "y", i 7) <: i 4)
              [ assign "dith" (i 0) ]
              [ assign "dith" (i 1) ];
            assign "best" (i 100000);
            assign "bi" (i 0);
            for_ "p" (i 0) (i 16)
              [
                assign "d" (v "y" -: idx "palette" (v "p"));
                assign "d" (Select (v "d" <: i 0, i 0 -: v "d", v "d"));
                assign "bi" (Select (v "d" <: v "best", v "p", v "bi"));
                assign "best" (Select (v "d" <: v "best", v "d", v "best"));
              ];
            assign "iv"
              (Select
                 ( Binop (Land, v "dith", v "bi" <: i 15),
                   v "bi" +: i 1,
                   v "bi" ));
            store "img_out" (v "base" +: v "k") (v "iv");
            assign "cs" (v "cs" +: v "iv");
          ];
        ret (v "cs");
      ];
  }

(* BMP: straight packing with public padding arithmetic and one secret
   rounding decision per run of eight pixels — the smallest secure-region
   share. *)
let emit_bmp =
  {
    fname = "emit_bmp";
    params = [ "b" ];
    locals = [ "k"; "r"; "y"; "w"; "rnd"; "cs"; "base" ];
    body =
      [
        assign "cs" (i 0);
        assign "base" (v "b" *: i (3 * block_px));
        for_ "r" (i 0) (i 8)
          [
            if_ ~secret:true
              (Binop (Band, idx "pix" (v "r" *: i 8), i 1) =: i 0)
              [ assign "rnd" (i 0) ]
              [ assign "rnd" (i 1) ];
            assign "cs" (v "cs" +: v "rnd");
          ];
        for_ "k" (i 0) (i block_px)
          [
            assign "y" (idx "pix" (v "k"));
            assign "w" ((v "y" *: i 59) +: (v "k" *: i 31));
            assign "w" (Binop (Bxor, v "w", Binop (Shr, v "w", i 3)));
            assign "w" (v "w" %: i 256);
            store "img_out" (v "base" +: (v "k" *: i 3)) (v "y");
            store "img_out" (v "base" +: (v "k" *: i 3) +: i 1) (v "y");
            store "img_out" (v "base" +: (v "k" *: i 3) +: i 2)
              (Binop (Band, v "y" +: v "w", i 255));
            assign "cs" (v "cs" +: (v "y" *: i 3));
          ];
        ret (v "cs");
      ];
  }

let emit_of = function Ppm -> emit_ppm | Gif -> emit_gif | Bmp -> emit_bmp

let program fmt =
  let emit = emit_of fmt in
  let main =
    {
      fname = "main";
      params = [];
      locals = [ "b"; "cs" ];
      body =
        [
          assign "cs" (i 0);
          for_ "b" (i 0) (v "nblocks")
            [
              assign "cs" ((v "cs" +: call "decode_block" [ v "b" ]) %: i 1000000007);
              assign "cs" ((v "cs" +: call emit.fname [ v "b" ]) %: i 1000000007);
            ];
          ret (v "cs");
        ];
    }
  in
  {
    funcs = [ decode_block; emit; main ];
    globals = [ "nblocks" ];
    arrays =
      [
        { aname = "img_in"; size = max_blocks * block_px; scratch = false };
        { aname = "img_out"; size = max_blocks * 3 * block_px; scratch = false };
        { aname = "work"; size = block_px; scratch = true };
        { aname = "pix"; size = block_px; scratch = true };
        { aname = "qtable"; size = block_px; scratch = false };
        { aname = "palette"; size = 16; scratch = false };
      ];
    secrets = [];
    main = "main";
  }

let image ~seed =
  let rng = Sempe_util.Rng.create seed in
  Array.init (max_blocks * block_px) (fun _ ->
      (* Sparse signed coefficients, like post-quantization DCT data. *)
      if Sempe_util.Rng.int rng 10 < 8 then 0
      else Sempe_util.Rng.int_in rng (-128) 127)

let inputs _fmt ~seed ~blocks =
  assert (blocks >= 1 && blocks <= max_blocks);
  let qtable = Array.init block_px (fun k -> 1 + (k mod 8)) in
  let palette = Array.init 16 (fun p -> p * 17) in
  ( [ ("nblocks", blocks) ],
    [ ("img_in", image ~seed); ("qtable", qtable); ("palette", palette) ] )
