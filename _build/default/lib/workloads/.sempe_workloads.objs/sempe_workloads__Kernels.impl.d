lib/workloads/kernels.ml: List Printf Sempe_lang
