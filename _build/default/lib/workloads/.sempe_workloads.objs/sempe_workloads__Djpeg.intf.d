lib/workloads/djpeg.mli: Sempe_lang
