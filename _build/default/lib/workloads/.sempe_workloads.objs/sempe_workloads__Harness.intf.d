lib/workloads/harness.mli: Sempe_core Sempe_isa Sempe_lang Sempe_pipeline
