lib/workloads/djpeg.ml: Array Sempe_lang Sempe_util
