lib/workloads/kernels.mli: Sempe_lang
