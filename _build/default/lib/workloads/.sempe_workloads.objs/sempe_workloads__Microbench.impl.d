lib/workloads/microbench.ml: Kernels List Printf Sempe_lang
