lib/workloads/microbench.mli: Kernels Sempe_lang
