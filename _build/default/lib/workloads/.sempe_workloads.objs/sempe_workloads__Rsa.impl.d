lib/workloads/rsa.ml: Array Sempe_lang
