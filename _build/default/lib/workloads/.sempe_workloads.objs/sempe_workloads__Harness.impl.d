lib/workloads/harness.ml: Array List Printf Sempe_core Sempe_cte Sempe_isa Sempe_lang
