lib/workloads/rsa.mli: Sempe_lang
