(** Square-and-multiply modular exponentiation — Figure 1 of the paper.

    The classic branch side channel: the multiply-and-reduce step runs only
    for the key bits that are set, so timing (and the branch predictor, and
    the cache) reveal the exponent. The conditional is annotated secret;
    under SeMPE both paths execute every iteration. *)

val key_bits : int
(** Exponent width (16). *)

val program : Sempe_lang.Ast.program
(** [main] computes [base ^ key mod modulus]; the key lives in the
    ["ebits"] array (most-significant bit first), [base] and [modulus] are
    globals. *)

val inputs : key:int -> base:int -> modulus:int -> (string * int) list * (string * int array) list
(** Harness initializers. [key] must fit in {!key_bits} bits. *)

val ct_program : Sempe_lang.Ast.program
(** The hand-written constant-time alternative: a Montgomery ladder whose
    per-bit swap is a pair of selects (CMOV), no secret branches at all.
    This is the "large manual effort" the paper's introduction says CTE
    demands of crypto libraries; it runs leak-free on a plain machine and
    serves as the manual-effort comparison point for SeMPE. *)

val reference : key:int -> base:int -> modulus:int -> int
(** Ground truth computed directly in OCaml. *)
