open Sempe_lang.Ast

type spec = {
  kernel : Kernels.t;
  width : int;
  iters : int;
}

let secret_names ~width = List.init width (fun k -> Printf.sprintf "s%d" (k + 1))

let secrets_for_leaf ~width ~leaf =
  assert (leaf >= 1 && leaf <= width + 1);
  List.init width (fun k ->
      (Printf.sprintf "s%d" (k + 1), if k + 1 = leaf then 1 else 0))

let seed_expr d = (v "it" *: i 31) +: i (d * 7)

(* Inline a self-contained single-function kernel body at a leaf, renaming
   its scalars with a leaf-unique suffix. The body must end in exactly one
   tail Return (the constant-time variants do). *)
let inline_kernel (f : func) ~suffix ~seed ~result =
  let rename x = x ^ suffix in
  let rec split_tail acc = function
    | [ Return e ] -> (List.rev acc, e)
    | [] -> invalid_arg ("Microbench: kernel " ^ f.fname ^ " lacks a tail return")
    | s :: rest ->
      (match s with
       | Return _ ->
         invalid_arg ("Microbench: kernel " ^ f.fname ^ " has a non-tail return")
       | Assign _ | Store _ | If _ | While _ | For _ | Expr _ -> ());
      split_tail (s :: acc) rest
  in
  let body, ret_expr = split_tail [] f.body in
  let body = body @ [ Assign (result, ret_expr) ] in
  let scalars = f.params @ f.locals in
  let body =
    List.fold_left
      (fun b x -> subst_scalar ~old:x ~fresh:(rename x) b)
      body scalars
  in
  let seed_param =
    match f.params with
    | [ p ] -> rename p
    | _ -> invalid_arg ("Microbench: kernel " ^ f.fname ^ " must take one param")
  in
  (Assign (seed_param, seed) :: body, List.map rename scalars)

let build ~ct ~null spec =
  let width = spec.width in
  assert (width >= 1);
  let extra_locals = ref [] in
  let leaf d =
    if null then [ assign "acc" (v "acc" +: i d) ]
    else if ct then begin
      let f =
        match Kernels.(spec.kernel.ct_funcs) with
        | [ f ] -> f
        | _ ->
          invalid_arg
            ("Microbench: constant-time variant of " ^ spec.kernel.Kernels.name
           ^ " must be a single function")
      in
      let result = Printf.sprintf "$r%d" d in
      let stmts, locals =
        inline_kernel f ~suffix:(Printf.sprintf "$L%d" d) ~seed:(seed_expr d)
          ~result
      in
      extra_locals := (result :: locals) @ !extra_locals;
      stmts @ [ assign "acc" (v "acc" +: v result) ]
    end
    else
      [
        assign "acc"
          (v "acc" +: call spec.kernel.Kernels.entry [ seed_expr d ]);
      ]
  in
  let rec chain d =
    if d > width then leaf (width + 1)
    else
      [
        if_ ~secret:true
          (v (Printf.sprintf "s%d" d) <>: i 0)
          (leaf d) (chain (d + 1));
      ]
  in
  let body =
    [
      assign "acc" (i 0);
      for_ "it" (i 0) (i spec.iters) (chain 1);
      ret (v "acc");
    ]
  in
  let main =
    {
      fname = "main";
      params = [];
      locals = [ "acc"; "it" ] @ List.rev !extra_locals;
      body;
    }
  in
  let kernel_funcs =
    if null then []
    else if ct then [] (* inlined *)
    else spec.kernel.Kernels.funcs
  in
  let arrays = if null then [] else spec.kernel.Kernels.arrays in
  {
    funcs = kernel_funcs @ [ main ];
    globals = secret_names ~width;
    arrays;
    secrets = secret_names ~width;
    main = "main";
  }

let program ~ct spec = build ~ct ~null:false spec

let skeleton ~width ~iters =
  build ~ct:false ~null:true
    { kernel = Kernels.fibonacci; width; iters }
