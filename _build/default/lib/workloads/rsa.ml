open Sempe_lang.Ast

let key_bits = 16

let modexp =
  {
    fname = "modexp";
    params = [];
    locals = [ "r"; "bb"; "k" ];
    body =
      [
        assign "r" (i 1);
        assign "bb" (v "base" %: v "modulus");
        for_ "k" (i 0) (i key_bits)
          [
            assign "r" ((v "r" *: v "r") %: v "modulus");
            if_ ~secret:true
              (idx "ebits" (v "k") =: i 1)
              [ assign "r" ((v "r" *: v "bb") %: v "modulus") ]
              [];
          ];
        ret (v "r");
      ];
  }

let program =
  {
    funcs =
      [
        modexp;
        {
          fname = "main";
          params = [];
          locals = [];
          body = [ ret (call "modexp" []) ];
        };
      ];
    globals = [ "base"; "modulus" ];
    arrays = [ { aname = "ebits"; size = key_bits; scratch = false } ];
    secrets = [];
    main = "main";
  }

(* Montgomery ladder with select-based conditional swap: both the square
   and the multiply happen every iteration whatever the bit, and the bit
   only steers two CMOVs. *)
let ladder =
  {
    fname = "modexp_ladder";
    params = [];
    locals = [ "r0"; "r1"; "k"; "bit"; "t"; "s0"; "s1" ];
    body =
      [
        assign "r0" (i 1);
        assign "r1" (v "base" %: v "modulus");
        for_ "k" (i 0) (i key_bits)
          [
            assign "bit" (idx "ebits" (v "k"));
            assign "t" ((v "r0" *: v "r1") %: v "modulus");
            assign "s0" ((v "r0" *: v "r0") %: v "modulus");
            assign "s1" ((v "r1" *: v "r1") %: v "modulus");
            assign "r0" (Select (v "bit", v "t", v "s0"));
            assign "r1" (Select (v "bit", v "s1", v "t"));
          ];
        ret (v "r0");
      ];
  }

let ct_program =
  {
    funcs =
      [
        ladder;
        {
          fname = "main";
          params = [];
          locals = [];
          body = [ ret (call "modexp_ladder" []) ];
        };
      ];
    globals = [ "base"; "modulus" ];
    arrays = [ { aname = "ebits"; size = key_bits; scratch = false } ];
    secrets = [];
    main = "main";
  }

let bits_of key =
  Array.init key_bits (fun k -> (key lsr (key_bits - 1 - k)) land 1)

let inputs ~key ~base ~modulus =
  assert (key >= 0 && key < 1 lsl key_bits);
  assert (modulus > 1);
  ([ ("base", base); ("modulus", modulus) ], [ ("ebits", bits_of key) ])

let reference ~key ~base ~modulus =
  let r = ref 1 in
  for k = key_bits - 1 downto 0 do
    r := !r * !r mod modulus;
    if (key lsr k) land 1 = 1 then r := !r * base mod modulus
  done;
  !r
