(** Synthetic djpeg — the real-world workload of §V/§VI-A.

    The paper evaluates libjpeg's [djpeg] converting JPEG images to PPM,
    GIF and BMP; the side channel is that per-coefficient and per-pixel
    conditional branches depend on the image contents (the secret). We
    reproduce the decoder's structure rather than link libjpeg (DESIGN.md,
    substitutions): the input "image" is an array of per-block coefficient
    words; each 8x8 block goes through

    - run-level coefficient expansion: the values flow through branch-free
      selects, and one secret bookkeeping branch per run of eight
      coefficients models the Huffman run/level decision points;
    - public transform passes (butterflies plus an 8-tap smoothing pass)
      and a branch-free clamp — the bulk of the per-block work;
    - a format-specific back end. PPM takes a secret gamma-segment
      decision (with a nested bright-segment branch) per pixel pair and
      writes three channels — the largest secure-region share; GIF takes
      one secret dithering decision per run of four pixels around a
      branch-free palette search; BMP packs rows with public padding
      arithmetic and no extra secret branches — the smallest share.

    All secret branches assign scalars only; stores to the block buffers
    and output array happen outside the secure regions, so ShadowMemory
    privatization stays cheap — matching how the paper's authors annotated
    the real code. Secure regions are a modest fraction of each block's
    instructions, which is what keeps the paper's Figure 8 overheads well
    under 2x; and the per-block work is size-independent, which is why
    those overheads barely move with image size.

    Input sizes are scaled down (blocks instead of megapixels; the paper
    itself shows size-independence). The labels keep the paper's names. *)

type format = Ppm | Gif | Bmp

val format_name : format -> string
val all_formats : format list

type size = { label : string; blocks : int }

val sizes : size list
(** ["256k"; "512k"; "1024k"; "2048k"] with doubling block counts. *)

val max_blocks : int

val program : format -> Sempe_lang.Ast.program
(** Decoder for [format]; the block count is the global ["nblocks"], so one
    compiled image serves all sizes. The secret input lives in the
    ["img_in"] array. *)

val image : seed:int -> int array
(** A pseudo-random secret image filling ["img_in"] (always [max_blocks]
    worth of coefficients; runs use the first [nblocks] blocks). *)

val inputs : format -> seed:int -> blocks:int -> (string * int) list * (string * int array) list
(** (globals, arrays) initializers for {!Harness.run}: block count, the
    image, the quantization table and the palette. *)
