(** The microbenchmark workload kernels of §V: Fibonacci, Ones, Quicksort
    and Eight Queens.

    Each kernel is a function [k(seed) -> checksum] over public data (the
    secret in the microbenchmarks is only the branch condition selecting
    which kernel instance runs). Two variants exist:

    - the {e normal} variant, written naturally (recursion, data-dependent
      branches, early exits) — used by Baseline and SeMPE;
    - the {e constant-time} variant, the shape a FaCT/CTE port must take
      (no data-dependent control flow: selection networks, exhaustive
      search, select-based accumulation) — used by the CTE, Raccoon and MTO
      schemes, whose transforms flatten all residual conditionals and would
      not terminate on loops whose induction is data-dependent.

    Both variants compute the same checksum for the same seed, which the
    test suite verifies. *)

type t = {
  name : string;
  funcs : Sempe_lang.Ast.func list;        (** normal variant *)
  ct_funcs : Sempe_lang.Ast.func list;     (** constant-time variant *)
  arrays : Sempe_lang.Ast.array_decl list; (** scratch arrays (shared by both variants) *)
  entry : string;               (** normal entry: [entry(seed)] *)
  ct_entry : string;            (** constant-time entry *)
}

val fibonacci : t
val ones : t
val quicksort : t
val queens : t
val all : t list
val by_name : string -> t option
