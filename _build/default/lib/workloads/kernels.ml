open Sempe_lang.Ast

type t = {
  name : string;
  funcs : func list;
  ct_funcs : func list;
  arrays : array_decl list;
  entry : string;
  ct_entry : string;
}

(* Shared pseudo-random step: x' = (x * 1103515245 + 12345) mod 2^31. *)
let lcg x = Binop (Band, (x *: i 1103515245) +: i 12345, i 0x7fffffff)

let modulus = 1000003

(* ---------- Fibonacci: series up to a fixed term (no internal control
   flow, so the constant-time variant is the same code). ---------- *)

let fib_terms = 64

let fib_body =
  [
    assign "a" (v "seed" %: i 97);
    assign "b" ((v "a" +: i 1) %: i 97);
    for_ "k" (i 0) (i fib_terms)
      [
        assign "t" ((v "a" +: v "b") %: i modulus);
        assign "a" (v "b");
        assign "b" (v "t");
      ];
    ret (v "b");
  ]

let fibonacci =
  let mk fname =
    { fname; params = [ "seed" ]; locals = [ "a"; "b"; "t"; "k" ]; body = fib_body }
  in
  {
    name = "fibonacci";
    funcs = [ mk "fib_kernel" ];
    ct_funcs = [ mk "fib_kernel_ct" ];
    arrays = [];
    entry = "fib_kernel";
    ct_entry = "fib_kernel_ct";
  }

(* ---------- Ones: fill a vector with pseudo-random numbers, count odd
   entries. Normal variant counts through a data-dependent branch; the
   constant-time variant accumulates the low bit arithmetically. ---------- *)

let ones_size = 64

let ones_fill =
  [
    assign "x" (Binop (Band, v "seed", i 0x7fffffff));
    for_ "k" (i 0) (i ones_size)
      [ assign "x" (lcg (v "x")); store "ones_buf" (v "k") (v "x") ];
  ]

let ones_normal =
  {
    fname = "ones_kernel";
    params = [ "seed" ];
    locals = [ "x"; "k"; "c" ];
    body =
      ones_fill
      @ [
          assign "c" (i 0);
          for_ "k" (i 0) (i ones_size)
            [
              if_
                (Binop (Band, idx "ones_buf" (v "k"), i 1) <>: i 0)
                [ assign "c" (v "c" +: i 1) ]
                [];
            ];
          ret ((v "c" *: i 31) +: (v "x" %: i 1000));
        ];
  }

let ones_ct =
  {
    fname = "ones_kernel_ct";
    params = [ "seed" ];
    locals = [ "x"; "k"; "c" ];
    body =
      ones_fill
      @ [
          assign "c" (i 0);
          for_ "k" (i 0) (i ones_size)
            [ assign "c" (v "c" +: Binop (Band, idx "ones_buf" (v "k"), i 1)) ];
          ret ((v "c" *: i 31) +: (v "x" %: i 1000));
        ];
  }

let ones =
  {
    name = "ones";
    funcs = [ ones_normal ];
    ct_funcs = [ ones_ct ];
    arrays = [ { aname = "ones_buf"; size = ones_size; scratch = true } ];
    entry = "ones_kernel";
    ct_entry = "ones_kernel_ct";
  }

(* ---------- Quicksort (Hoare 1961): recursive Lomuto-partition quicksort
   versus Batcher's odd-even merge sorting network (the classic
   constant-time replacement: control flow depends only on the size).
   ---------- *)

let qs_size = 64 (* power of two for the network *)
let qs_log = 6

let qs_fill_stmts =
  [
    assign "x" (Binop (Band, v "seed", i 0x7fffffff));
    for_ "k" (i 0) (i qs_size)
      [ assign "x" (lcg (v "x")); store "qs_buf" (v "k") (v "x" %: i 1000) ];
  ]

let qs_checksum_stmts =
  [
    assign "s" (i 0);
    for_ "k" (i 0) (i qs_size)
      [ assign "s" (v "s" +: (idx "qs_buf" (v "k") *: (v "k" +: i 1))) ];
    ret (v "s" %: i modulus);
  ]

let qs_sort =
  {
    fname = "qs_sort";
    params = [ "lo"; "hi" ];
    locals = [ "pv"; "ii"; "jj"; "t" ];
    body =
      [
        if_ (v "lo" <: v "hi")
          [
            assign "pv" (idx "qs_buf" (v "hi"));
            assign "ii" (v "lo");
            for_ "jj" (v "lo") (v "hi")
              [
                if_
                  (idx "qs_buf" (v "jj") <: v "pv")
                  [
                    assign "t" (idx "qs_buf" (v "ii"));
                    store "qs_buf" (v "ii") (idx "qs_buf" (v "jj"));
                    store "qs_buf" (v "jj") (v "t");
                    assign "ii" (v "ii" +: i 1);
                  ]
                  [];
              ];
            assign "t" (idx "qs_buf" (v "ii"));
            store "qs_buf" (v "ii") (idx "qs_buf" (v "hi"));
            store "qs_buf" (v "hi") (v "t");
            Expr (call "qs_sort" [ v "lo"; v "ii" -: i 1 ]);
            Expr (call "qs_sort" [ v "ii" +: i 1; v "hi" ]);
          ]
          [];
        ret (i 0);
      ];
  }

let quicksort_normal =
  {
    fname = "quicksort_kernel";
    params = [ "seed" ];
    locals = [ "x"; "k"; "s" ];
    body =
      qs_fill_stmts
      @ [ Expr (call "qs_sort" [ i 0; i (qs_size - 1) ]) ]
      @ qs_checksum_stmts;
  }

(* Batcher odd-even merge sort, expressed with For loops only so that loop
   control never depends on guarded state. p = 1<<pp runs over phases, k
   halves from p to 1, j strides by 2k, i covers each window. *)
let quicksort_ct =
  {
    fname = "quicksort_kernel_ct";
    params = [ "seed" ];
    locals =
      [
        "x"; "k"; "s"; "pp"; "p"; "kk"; "kv"; "jm"; "cnt"; "t2"; "j"; "m";
        "iv"; "a"; "b2"; "va"; "vb"; "cless";
      ];
    body =
      qs_fill_stmts
      @ [
          for_ "pp" (i 0) (i qs_log)
            [
              assign "p" (Binop (Shl, i 1, v "pp"));
              for_ "kk" (i 0) (v "pp" +: i 1)
                [
                  assign "kv" (Binop (Shr, v "p", v "kk"));
                  assign "jm" (v "kv" %: v "p");
                  assign "cnt"
                    (((i (qs_size - 1) -: v "kv" -: v "jm") /: (i 2 *: v "kv"))
                    +: i 1);
                  for_ "t2" (i 0) (v "cnt")
                    [
                      assign "j" (v "jm" +: (v "t2" *: i 2 *: v "kv"));
                      assign "m"
                        (Select
                           ( v "kv" <: (i qs_size -: v "j" -: v "kv"),
                             v "kv",
                             i qs_size -: v "j" -: v "kv" ));
                      for_ "iv" (i 0) (v "m")
                        [
                          assign "a" (v "iv" +: v "j");
                          assign "b2" (v "iv" +: v "j" +: v "kv");
                          if_
                            ((v "a" /: (i 2 *: v "p")) =: (v "b2" /: (i 2 *: v "p")))
                            [
                              assign "va" (idx "qs_buf" (v "a"));
                              assign "vb" (idx "qs_buf" (v "b2"));
                              assign "cless" (v "va" <=: v "vb");
                              store "qs_buf" (v "a")
                                (Select (v "cless", v "va", v "vb"));
                              store "qs_buf" (v "b2")
                                (Select (v "cless", v "vb", v "va"));
                            ]
                            [];
                        ];
                    ];
                ];
            ];
        ]
      @ qs_checksum_stmts;
  }

let quicksort =
  {
    name = "quicksort";
    funcs = [ qs_sort; quicksort_normal ];
    ct_funcs = [ quicksort_ct ];
    arrays = [ { aname = "qs_buf"; size = qs_size; scratch = true } ];
    entry = "quicksort_kernel";
    ct_entry = "quicksort_kernel_ct";
  }

(* ---------- N-queens (N = 4): recursive backtracking with pruning versus
   the constant-time rewrite, an exhaustive scan of all N^N placements with
   arithmetic validity accumulation (no data-dependent control flow).
   ---------- *)

let qn = 4
let qn_pow = 4 * 4 * 4 * 4 (* qn^qn = 256 *)

let q_safe =
  {
    fname = "q_safe";
    params = [ "row"; "col" ];
    locals = [ "r"; "c"; "d" ];
    body =
      [
        for_ "r" (i 0) (v "row")
          [
            assign "c" (idx "q_board" (v "r"));
            if_ (v "c" =: v "col") [ ret (i 0) ] [];
            assign "d" (v "row" -: v "r");
            if_ (v "c" =: (v "col" -: v "d")) [ ret (i 0) ] [];
            if_ (v "c" =: (v "col" +: v "d")) [ ret (i 0) ] [];
          ];
        ret (i 1);
      ];
  }

let q_solve =
  {
    fname = "q_solve";
    params = [ "row" ];
    locals = [ "col"; "n" ];
    body =
      [
        if_ (v "row" =: i qn) [ ret (i 1) ] [];
        assign "n" (i 0);
        for_ "col" (i 0) (i qn)
          [
            if_
              (call "q_safe" [ v "row"; v "col" ] <>: i 0)
              [
                store "q_board" (v "row") (v "col");
                assign "n" (v "n" +: call "q_solve" [ v "row" +: i 1 ]);
              ]
              [];
          ];
        ret (v "n");
      ];
  }

let queens_normal =
  {
    fname = "queens_kernel";
    params = [ "seed" ];
    locals = [];
    body = [ ret (call "q_solve" [ i 0 ] +: (v "seed" %: i 2)) ];
  }

(* Validity of a full placement, accumulated multiplicatively over all
   column pairs: ok *= (ci != cj) && (|ci - cj| != j - i). Placements are
   enumerated by a branch-free odometer over the column digits (a division
   decode would dominate the cycle count with no fidelity gain). *)
let queens_ct =
  let digit d = Printf.sprintf "c%d" d in
  (* One product expression over all column pairs, so the validity test
     evaluates in registers rather than through ten separate predicated
     stores. *)
  let validity =
    let acc = ref (i 1) in
    for a = 0 to qn - 1 do
      for b = a + 1 to qn - 1 do
        let ca = v (digit a) and cb = v (digit b) in
        let diff = cb -: ca in
        let absdiff = Select (diff <: i 0, i 0 -: diff, diff) in
        acc := !acc *: Binop (Land, ca <>: cb, absdiff <>: i (b - a))
      done
    done;
    !acc
  in
  let odometer =
    assign "carry" (i 1)
    :: List.concat
         (List.init qn (fun d ->
              [
                assign (digit d) (v (digit d) +: v "carry");
                assign "carry" (v (digit d) =: i qn);
                assign (digit d) (Select (v "carry", i 0, v (digit d)));
              ]))
  in
  {
    fname = "queens_kernel_ct";
    params = [ "seed" ];
    locals = [ "code"; "n"; "carry" ] @ List.init qn digit;
    body =
      [
        assign "n" (i 0);
        for_ "code" (i 0) (i qn_pow)
          ((assign "n" (v "n" +: validity)) :: odometer);
        ret (v "n" +: (v "seed" %: i 2));
      ];
  }

let queens =
  {
    name = "queens";
    funcs = [ q_safe; q_solve; queens_normal ];
    ct_funcs = [ queens_ct ];
    arrays = [ { aname = "q_board"; size = qn; scratch = true } ];
    entry = "queens_kernel";
    ct_entry = "queens_kernel_ct";
  }

let all = [ fibonacci; ones; quicksort; queens ]

let by_name name = List.find_opt (fun k -> k.name = name) all
