let pearson xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys && n > 0);
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
  let mx = mean xs and my = mean ys in
  let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
  for k = 0 to n - 1 do
    let a = xs.(k) -. mx and b = ys.(k) -. my in
    num := !num +. (a *. b);
    dx := !dx +. (a *. a);
    dy := !dy +. (b *. b)
  done;
  if !dx = 0.0 || !dy = 0.0 then 0.0 else !num /. sqrt (!dx *. !dy)

let popcount k =
  let rec go k acc = if k = 0 then acc else go (k lsr 1) (acc + (k land 1)) in
  go k 0

let timing_key_correlation ~run ~keys =
  let keys = Array.of_list keys in
  let weights = Array.map (fun k -> float_of_int (popcount k)) keys in
  let times = Array.map (fun k -> float_of_int (run ~key:k)) keys in
  pearson weights times

let recover_bit ~run ~base_key ~bit =
  let t0 = run ~key:(base_key land lnot (1 lsl bit)) in
  let t1 = run ~key:(base_key lor (1 lsl bit)) in
  t0 <> t1

let prime_and_probe cache ~prime ~victim =
  List.iter (fun addr -> ignore (Sempe_mem.Cache.access cache ~addr ~write:false)) prime;
  victim ();
  Array.of_list
    (List.map (fun addr -> not (Sempe_mem.Cache.probe cache ~addr)) prime)
