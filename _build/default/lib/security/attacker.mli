(** Concrete attacks from the threat model, for the demos and tests.

    {!timing_key_correlation} is the classic attack on Figure 1's modular
    exponentiation: execution time grows with the Hamming weight of the
    exponent, so correlating time with candidate weights recovers
    information about the key. {!recover_bit} refines it to a single bit
    by differencing. {!prime_and_probe} models the shared-cache attacker:
    prime a cache, let the victim run, probe which sets lost lines. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient; 0 when either side is constant. *)

val timing_key_correlation : run:(key:int -> int) -> keys:int list -> float
(** Correlation between key Hamming weight and the victim's cycle count
    over [keys]. Near 1 on a leaky implementation; near 0 under SeMPE. *)

val recover_bit : run:(key:int -> int) -> base_key:int -> bit:int -> bool
(** [recover_bit ~run ~base_key ~bit] guesses whether flipping [bit] of
    [base_key] changes the execution time — i.e. whether the branch at
    that bit is observable. Returns [true] when the two timings differ. *)

val prime_and_probe :
  Sempe_mem.Cache.t -> prime:int list -> victim:(unit -> unit) -> bool array
(** [prime_and_probe cache ~prime ~victim] installs the prime addresses,
    runs the victim (which shares [cache]), and returns per-prime-address
    eviction flags ([true] = the attacker's line was evicted). *)
