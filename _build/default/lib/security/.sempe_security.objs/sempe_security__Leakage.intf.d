lib/security/leakage.mli: Observable
