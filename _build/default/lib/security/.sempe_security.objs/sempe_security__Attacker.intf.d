lib/security/attacker.mli: Sempe_mem
