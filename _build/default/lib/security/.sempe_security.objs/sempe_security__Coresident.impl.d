lib/security/coresident.ml: Array List Sempe_core Sempe_mem Sempe_pipeline
