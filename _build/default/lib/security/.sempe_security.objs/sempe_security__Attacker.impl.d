lib/security/attacker.ml: Array List Sempe_mem
