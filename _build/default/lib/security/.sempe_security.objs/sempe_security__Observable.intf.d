lib/security/observable.mli: Sempe_pipeline
