lib/security/leakage.ml: List Observable
