lib/security/coresident.mli: Sempe_core Sempe_isa Sempe_pipeline
