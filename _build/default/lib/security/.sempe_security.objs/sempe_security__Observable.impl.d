lib/security/observable.ml: Sempe_isa Sempe_pipeline
