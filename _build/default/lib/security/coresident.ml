module Exec = Sempe_core.Exec
module Timing = Sempe_pipeline.Timing
module Config = Sempe_pipeline.Config
module Cache = Sempe_mem.Cache
module Hierarchy = Sempe_mem.Hierarchy

type trace = bool array array

let prime_probe_trace ?(machine = Config.default) ?(slice = 200)
    ?(max_slices = 512) ~support ~prog ~init_mem () =
  let timing = Timing.create ~config:machine () in
  let il1 = Hierarchy.il1 (Timing.hierarchy timing) in
  let nsets = Cache.num_sets il1 in
  let ways = (Cache.config il1).Cache.ways in
  let line_bytes = (Cache.config il1).Cache.line_bytes in
  (* Attacker lines: one per way per set, tagged far above the victim's
     code so they never alias with the program text. Filling every way is
     what makes any victim fetch in the set evict one of ours. *)
  let attacker_addr way set = ((nsets * 1024 * (way + 1)) + set) * line_bytes in
  let prime () =
    for way = 0 to ways - 1 do
      for set = 0 to nsets - 1 do
        ignore (Cache.access il1 ~addr:(attacker_addr way set) ~write:false)
      done
    done
  in
  let probe () =
    Array.init nsets (fun set ->
        let rec any way =
          way < ways
          && ((not (Cache.probe il1 ~addr:(attacker_addr way set))) || any (way + 1))
        in
        any 0)
  in
  let config =
    { Exec.default_config with Exec.support; mem_words = 1 lsl 16 }
  in
  let session = Exec.start ~config ~init_mem ~sink:(Timing.feed timing) prog in
  let slices = ref [] in
  let n = ref 0 in
  let halted = ref false in
  while (not !halted) && !n < max_slices do
    prime ();
    halted := Exec.step_slice session slice;
    slices := probe () :: !slices;
    incr n
  done;
  (* drain the remainder so the victim finishes even if max_slices hit *)
  ignore (Exec.finish session);
  Array.of_list (List.rev !slices)

let distance a b =
  let slices = max (Array.length a) (Array.length b) in
  let sets =
    max
      (if Array.length a > 0 then Array.length a.(0) else 0)
      (if Array.length b > 0 then Array.length b.(0) else 0)
  in
  let cell (t : trace) s k =
    if s < Array.length t && k < Array.length t.(s) then t.(s).(k) else false
  in
  let d = ref 0 in
  for s = 0 to slices - 1 do
    for k = 0 to sets - 1 do
      if cell a s k <> cell b s k then incr d
    done
  done;
  !d
