(** Co-resident attacker: a victim and an attacker time-sharing one core
    (the threat model of §III — "scheduled to run on the same server …
    or in the same core through … time sharing").

    The victim executes in slices; between slices the attacker primes the
    shared instruction cache with its own lines and probes which were
    evicted when the victim resumes — classic prime+probe. On a normal
    machine the eviction pattern of each slice tracks which code path the
    victim fetched, i.e. the secret; under SeMPE both paths are fetched
    whatever the secret, so the pattern is secret-independent. *)

type trace = bool array array
(** [trace.(slice).(set)] = the attacker's line in [set] was evicted during
    [slice]. *)

val prime_probe_trace :
  ?machine:Sempe_pipeline.Config.t
  -> ?slice:int
  -> ?max_slices:int
  -> support:Sempe_core.Exec.support
  -> prog:Sempe_isa.Program.t
  -> init_mem:(int array -> unit)
  -> unit
  -> trace
(** Run [prog] in slices of [slice] instructions (default 200, at most
    [max_slices] slices, default 512), priming and probing every IL1 set
    around each slice. *)

val distance : trace -> trace -> int
(** Number of (slice, set) cells that differ, padding the shorter trace
    with empty slices — the attacker's signal strength for telling two
    secrets apart. *)
