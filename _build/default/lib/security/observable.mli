(** Attacker-visible observables of one execution.

    The threat model (§III) grants the attacker coarse timing, shared-cache
    state (prime+probe), branch-predictor state, and knowledge of the
    victim's code. A {!view} condenses everything such an attacker could
    compare across runs; the leakage detector declares a channel leaky when
    the view component differs across secrets. Digests are order-dependent
    FNV-style hashes, so any difference in the underlying sequence shows
    up. *)

type recorder
(** Streams over the committed-µop events of a run. *)

val recorder : unit -> recorder
val feed : recorder -> Sempe_pipeline.Uop.event -> unit

val pc_digest : recorder -> int
(** Digest of the committed-PC sequence (execution-trace channel). *)

val addr_digest : recorder -> int
(** Digest of the load/store word-address sequence (memory access-pattern
    channel). *)

val commits : recorder -> int
val mem_ops : recorder -> int

type view = {
  cycles : int;          (** end-to-end time (timing channel) *)
  instructions : int;
  pc_digest : int;
  addr_digest : int;
  il1_sig : int;         (** instruction-cache content (code-path probe) *)
  dl1_sig : int;
  l2_sig : int;
  bpred_sig : int;       (** predictor + BTB state *)
}

val view : recorder -> Sempe_pipeline.Timing.report -> view
(** Combine the stream digests with the machine-state signatures of the
    finished run. *)
