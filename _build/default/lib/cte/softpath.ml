open Sempe_lang.Ast

type mix = Arith | Cmov

type config = {
  mix : mix;
  tx_pad : int;
  oram_probes : int;
}

let cte_config = { mix = Arith; tx_pad = 0; oram_probes = 0 }
let raccoon_config = { mix = Cmov; tx_pad = 6; oram_probes = 0 }
let mto_config = { mix = Cmov; tx_pad = 0; oram_probes = 7 }

let oram_array = "$oram"
let oram_size = 4096
let tx_sink = "$txsink"
let oram_sink = "$osink"

(* Constant-time discipline: both blocks of a secret branch always execute,
   with identical control flow and identical address streams whatever the
   secret; only data values differ, and every write of a data value is
   predicated so a false path is externally a no-op.

   Scalars are split into two classes per function:

   - {e public-by-requirement}: the backward closure of everything that
     feeds loop conditions, loop bounds and array indices. CT code must
     keep these secret-independent (otherwise trip counts or addresses
     would leak); their assignments stay unpredicated under region guards
     so every path executes in full.
   - {e data}: everything else. Assignments and array stores mix the new
     value with the old one under the accumulated region guard ([Arith]:
     g*new + (1-g)*old, the paper's Figure 2b; [Cmov]: select).

   Conditionals nested beneath a secret branch are flattened (their
   conditions may be data); their arms are alternatives within one path, so
   arm-level effects — including public-class scalars — are predicated with
   an arm guard that never includes the secret, keeping termination and
   addresses secret-independent. *)
type guards = { full : string option; arm : string option }

type ctx = {
  cfg : config;
  mutable counter : int;
  mutable new_locals : string list;
  mutable used_tx : bool;
  mutable used_oram : bool;
}

let fresh ctx hint =
  ctx.counter <- ctx.counter + 1;
  let name = Printf.sprintf "$g%d_%s" ctx.counter hint in
  ctx.new_locals <- name :: ctx.new_locals;
  name

let mix_value ctx ~guard ~fresh_value ~old_value =
  match ctx.cfg.mix with
  | Arith ->
    Binop
      ( Add,
        Binop (Mul, Var guard, fresh_value),
        Binop (Mul, Binop (Sub, Int 1, Var guard), old_value) )
  | Cmov -> Select (Var guard, fresh_value, old_value)

let rec count_indices = function
  | Int _ | Var _ -> 0
  | Index (_, e) -> 1 + count_indices e
  | Unop (_, e) -> count_indices e
  | Binop (_, a, b) -> count_indices a + count_indices b
  | Call (_, args) -> List.fold_left (fun acc e -> acc + count_indices e) 0 args
  | Select (c, a, b) -> count_indices c + count_indices a + count_indices b

let salt_of = function
  | Int _ -> Int 1
  | Var x -> Var x
  | Index (_, e) -> e
  | Unop (_, e) -> e
  | Binop (_, a, _) -> a
  | Call _ -> Int 1
  | Select (c, _, _) -> c

let tx_pad_stmt ctx salt =
  if ctx.cfg.tx_pad = 0 then []
  else begin
    ctx.used_tx <- true;
    let rec chain k acc =
      if k = 0 then acc
      else chain (k - 1) (Binop (Bxor, acc, Binop (Add, salt, Int k)))
    in
    [ Assign (tx_sink, chain (ctx.cfg.tx_pad / 2) (Var tx_sink)) ]
  end

let oram_stmt ctx ~mem_ops salt =
  if ctx.cfg.oram_probes = 0 || mem_ops = 0 then []
  else begin
    ctx.used_oram <- true;
    let probe k =
      Index
        ( oram_array,
          Binop (Band, Binop (Mul, salt, Int ((2 * k) + 3)), Int (oram_size - 1)) )
    in
    let rec sum k acc =
      if k = 0 then acc else sum (k - 1) (Binop (Add, acc, probe k))
    in
    [ Assign (oram_sink, sum (ctx.cfg.oram_probes * mem_ops) (Var oram_sink)) ]
  end

let boolize cond = Binop (Ne, cond, Int 0)

(* Public-by-requirement closure for one function body: variables feeding
   loop conditions, loop bounds or array indices, closed backwards through
   assignments. *)
let public_closure body =
  let rec index_reads acc = function
    | Int _ | Var _ -> acc
    | Index (_, ie) -> index_reads (Sset.union acc (expr_reads ie)) ie
    | Unop (_, e) -> index_reads acc e
    | Binop (_, a, b) -> index_reads (index_reads acc a) b
    | Call (_, args) -> List.fold_left index_reads acc args
    | Select (c, a, b) -> index_reads (index_reads (index_reads acc c) a) b
  in
  let seeds =
    block_fold
      (fun acc stmt ->
        match stmt with
        | While (cond, _) -> Sset.union acc (expr_reads cond)
        | For (x, lo, hi, _) ->
          Sset.add x (Sset.union acc (Sset.union (expr_reads lo) (expr_reads hi)))
        | Assign (_, e) | Expr e | Return e -> index_reads acc e
        | Store (a, ie, e) ->
          ignore a;
          index_reads (Sset.union (index_reads acc e) (expr_reads ie)) ie
        | If { cond; _ } -> index_reads acc cond)
      Sset.empty body
  in
  (* Fixpoint: anything flowing into a public var is public. *)
  let rec close c =
    let c' =
      block_fold
        (fun acc stmt ->
          match stmt with
          | Assign (x, e) when Sset.mem x acc -> Sset.union acc (expr_reads e)
          | Assign _ | Store _ | If _ | While _ | For _ | Expr _ | Return _ ->
            acc)
        c body
    in
    if Sset.equal c c' then c else close c'
  in
  close seeds

let rec guarded_block ctx ~func ~publics ~guards block =
  List.concat_map (guarded_stmt ctx ~func ~publics ~guards) block

and guarded_stmt ctx ~func ~publics ~guards stmt =
  match stmt with
  | Assign (x, e) ->
    let salt = salt_of e in
    let pads = tx_pad_stmt ctx salt @ oram_stmt ctx ~mem_ops:(count_indices e) salt in
    let guard = if Sset.mem x publics then guards.arm else guards.full in
    let assign =
      match guard with
      | Some g -> Assign (x, mix_value ctx ~guard:g ~fresh_value:e ~old_value:(Var x))
      | None -> stmt
    in
    pads @ [ assign ]
  | Store (a, ie, e) ->
    let salt = salt_of (Index (a, ie)) in
    let pads =
      tx_pad_stmt ctx salt
      @ oram_stmt ctx ~mem_ops:(1 + count_indices e + count_indices ie) salt
    in
    let st =
      match guards.full with
      | Some g ->
        Store (a, ie, mix_value ctx ~guard:g ~fresh_value:e ~old_value:(Index (a, ie)))
      | None -> stmt
    in
    pads @ [ st ]
  | If { secret; cond; then_; else_ } ->
    if secret then secret_if ctx ~func ~publics ~guards ~cond ~then_ ~else_
    else internal_if ctx ~func ~publics ~guards ~cond ~then_ ~else_
  | While (cond, body) ->
    [ While (cond, guarded_block ctx ~func ~publics ~guards body) ]
  | For (x, lo, hi, body) ->
    [ For (x, lo, hi, guarded_block ctx ~func ~publics ~guards body) ]
  | Expr e -> [ Expr e ]
  | Return _ ->
    invalid_arg
      (Printf.sprintf
         "Softpath.transform: %s: return under a secret branch cannot be made \
          constant-time" func)

(* Chain a fresh guard [parent * c] and its complement [parent * (1-c)]. *)
and chained_guards ctx ~parent ~cond_bool =
  let gp = fresh ctx "g" in
  let gn = fresh ctx "g" in
  let setup_p =
    match parent with
    | None -> Assign (gp, cond_bool)
    | Some p -> Assign (gp, Binop (Mul, Var p, cond_bool))
  in
  let setup_n =
    match parent with
    | None -> Assign (gn, Binop (Sub, Int 1, Var gp))
    | Some p -> Assign (gn, Binop (Sub, Var p, Var gp))
  in
  (gp, gn, [ setup_p; setup_n ])

and secret_if ctx ~func ~publics ~guards ~cond ~then_ ~else_ =
  (* Public-class scalars written by one path and read by the other cannot
     be reconciled: both paths always run, so the second would observe the
     first's control/address state. Genuine CT code has leaf-local control
     state (our generators rename it per leaf). *)
  let cross =
    Sset.union
      (Sset.inter (block_assigned then_) (block_reads else_))
      (Sset.inter (block_assigned else_) (block_reads then_))
  in
  let bad = Sset.inter cross publics in
  if not (Sset.is_empty bad) then
    invalid_arg
      (Printf.sprintf
         "Softpath.transform: %s: control/index variable(s) %s are shared \
          across secret branch paths; not constant-time convertible"
         func
         (String.concat ", " (Sset.elements bad)));
  let cb = fresh ctx "c" in
  let pre = Assign (cb, boolize cond) in
  let gt, ge, setup = chained_guards ctx ~parent:guards.full ~cond_bool:(Var cb) in
  (pre :: setup)
  @ guarded_block ctx ~func ~publics ~guards:{ guards with full = Some gt } then_
  @ guarded_block ctx ~func ~publics ~guards:{ guards with full = Some ge } else_

and internal_if ctx ~func ~publics ~guards ~cond ~then_ ~else_ =
  let cb = fresh ctx "c" in
  let pre = Assign (cb, boolize cond) in
  let ft, fe, setup_f = chained_guards ctx ~parent:guards.full ~cond_bool:(Var cb) in
  let at, ae, setup_a = chained_guards ctx ~parent:guards.arm ~cond_bool:(Var cb) in
  (pre :: (setup_f @ setup_a))
  @ guarded_block ctx ~func ~publics ~guards:{ full = Some ft; arm = Some at } then_
  @ guarded_block ctx ~func ~publics ~guards:{ full = Some fe; arm = Some ae } else_

and plain_block ctx ~func ~publics block =
  List.concat_map (plain_stmt ctx ~func ~publics) block

and plain_stmt ctx ~func ~publics stmt =
  match stmt with
  | If { secret = true; cond; then_; else_ } ->
    secret_if ctx ~func ~publics ~guards:{ full = None; arm = None } ~cond ~then_
      ~else_
  | If { secret = false; cond; then_; else_ } ->
    [
      If
        {
          secret = false;
          cond;
          then_ = plain_block ctx ~func ~publics then_;
          else_ = plain_block ctx ~func ~publics else_;
        };
    ]
  | While (cond, body) -> [ While (cond, plain_block ctx ~func ~publics body) ]
  | For (x, lo, hi, body) -> [ For (x, lo, hi, plain_block ctx ~func ~publics body) ]
  | (Assign _ | Store _ | Expr _ | Return _) as s -> [ s ]

let transform cfg prog =
  validate prog;
  let ctx =
    {
      cfg;
      counter = 0;
      new_locals = [];
      used_tx = false;
      used_oram = false;
    }
  in
  let funcs =
    List.map
      (fun f ->
        ctx.new_locals <- [];
        let publics = public_closure f.body in
        let body = plain_block ctx ~func:f.fname ~publics f.body in
        { f with body; locals = f.locals @ List.rev ctx.new_locals })
      prog.funcs
  in
  let globals =
    prog.globals
    @ (if ctx.used_tx then [ tx_sink ] else [])
    @ (if ctx.used_oram then [ oram_sink ] else [])
  in
  let arrays =
    prog.arrays
    @
    if ctx.used_oram then [ { aname = oram_array; size = oram_size; scratch = true } ]
    else []
  in
  let out = { prog with funcs; globals; arrays } in
  validate out;
  out
