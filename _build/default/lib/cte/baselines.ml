let cte prog = Softpath.transform Softpath.cte_config prog
let raccoon prog = Softpath.transform Softpath.raccoon_config prog
let mto prog = Softpath.transform Softpath.mto_config prog
