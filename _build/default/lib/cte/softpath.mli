(** Software elimination of secret branches by guarded straight-line
    execution — the machinery shared by the CTE, Raccoon and MTO baselines.

    A secret [If] is replaced by the concatenation of both blocks, each
    executed under a {e guard}: a 0/1 local combining the enclosing guard
    with (the boolization of) the branch condition. Every assignment and
    array store under a guard becomes a no-op when the guard is 0:

    - {!Arith} mixing (CTE/FaCT style, Figure 2b of the paper):
      [x = g*e + (1-g)*x] — two multiplies and two additions per statement;
    - {!Cmov} mixing (Raccoon style): [x = select(g, e, x)] — one
      conditional move per statement.

    Two guard tracks keep the result both correct and constant-time. The
    {e region} track (secret conditions) predicates only writes visible
    outside the region — live-past-region scalars, scalars one path writes
    and the other reads, and non-scratch array stores. Path-local
    computation (dead temporaries, scratch-array stores) runs unpredicated
    so every path executes in full whatever the secret is; predicating it
    would stall loop control on false paths and leak the secret through the
    skipped iterations. The {e arm} track (conditionals nested beneath a
    secret branch, flattened because their conditions may derive from
    guarded state) predicates everything its arms write, since the arms are
    alternatives within one path. Loops keep their structure — their bounds
    must be public, which {!Sempe_lang.Secrecy} verifies. [Return] under a
    guard is rejected.

    Memory-access instrumentation models each baseline's extra cost:
    - [tx_pad]: arithmetic per guarded assignment/store, standing in for
      Raccoon's transactional wrapping of every load and store;
    - [oram_probes]: extra reads of a dedicated ORAM-stash array per
      guarded memory operation, standing in for GhostRider/MTO address
      obfuscation. *)

type mix = Arith | Cmov

type config = {
  mix : mix;
  tx_pad : int;        (** dummy ALU ops added per guarded Assign/Store *)
  oram_probes : int;   (** extra array reads per guarded memory operation *)
}

val cte_config : config
(** [{ mix = Arith; tx_pad = 0; oram_probes = 0 }]. *)

val raccoon_config : config
(** [{ mix = Cmov; tx_pad = 6; oram_probes = 0 }]. *)

val mto_config : config
(** [{ mix = Cmov; tx_pad = 0; oram_probes = 7 }]. *)

val transform : config -> Sempe_lang.Ast.program -> Sempe_lang.Ast.program
(** The result contains no secret branches; it computes the same values as
    the input (tx/oram instrumentation writes only to dedicated sinks).
    @raise Invalid_argument on [Return] under a secret branch. *)
