(** The three prior-work baselines of Table I as program transforms. *)

val cte : Sempe_lang.Ast.program -> Sempe_lang.Ast.program
(** Constant-time expressions (FaCT-style, Figure 2b): arithmetic guard
    mixing, no memory instrumentation. *)

val raccoon : Sempe_lang.Ast.program -> Sempe_lang.Ast.program
(** Raccoon: CMOV guard mixing plus transactional padding on every guarded
    memory statement. *)

val mto : Sempe_lang.Ast.program -> Sempe_lang.Ast.program
(** Memory-trace obliviousness (GhostRider): CMOV guard mixing plus ORAM
    stash probes on every guarded array operation. *)
