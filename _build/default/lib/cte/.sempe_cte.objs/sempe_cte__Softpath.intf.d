lib/cte/softpath.mli: Sempe_lang
