lib/cte/baselines.mli: Sempe_lang
