lib/cte/baselines.ml: Softpath
