lib/cte/softpath.ml: List Printf Sempe_lang Sset String
