(** Gshare predictor: global history xor PC indexes a counter table. *)

val create : ?entries:int -> ?history_bits:int -> unit -> Predictor.t
(** [entries] defaults to 8192 (power of two); [history_bits] defaults to
    12. *)
