(** TAGE conditional branch predictor (Seznec, MICRO 2011), the predictor the
    paper's baseline uses (31KB TAGE, Table II).

    A bimodal base predictor backs a set of tagged tables indexed with
    geometrically increasing global-history lengths. Prediction comes from
    the longest-history table whose tag matches; allocation on mispredict
    steals an entry with zero usefulness from a longer table. This is a
    faithful (if compact) TAGE: folded-history indexing, 3-bit signed
    prediction counters, 2-bit usefulness counters with periodic aging, and
    the weak "newly allocated" alternate-prediction rule. *)

type config = {
  num_tables : int;      (** tagged tables, default 6 *)
  table_bits : int;      (** log2 entries per tagged table, default 10 *)
  tag_bits : int;        (** tag width, default 9 *)
  min_history : int;     (** shortest history length, default 4 *)
  max_history : int;     (** longest history length, default 128 *)
  base_bits : int;       (** log2 entries of the bimodal base, default 12 *)
}

val default_config : config
(** Approximates the paper's 31KB budget. *)

val create : ?config:config -> unit -> Predictor.t
