(** Common interface for conditional branch direction predictors.

    The timing model consults the predictor for every committed conditional
    branch that is {e not} a secure jump (sJMP bypasses prediction entirely,
    §IV-E of the paper), then trains it with the actual outcome. *)

type t = {
  name : string;
  predict : pc:int -> bool;        (** predicted direction for the branch at [pc] *)
  update : pc:int -> taken:bool -> unit;  (** train with the resolved outcome *)
  reset : unit -> unit;            (** return to initial state *)
  snapshot_signature : unit -> int;
  (** A hash of the internal state. The security tests use it to check
      whether two executions left the predictor in distinguishable states
      (the branch predictor side channel of §I). *)
}

val always_taken : unit -> t
val always_not_taken : unit -> t
