lib/bpred/counters.mli:
