lib/bpred/bimodal.ml: Counters Predictor
