lib/bpred/btb.ml: Array
