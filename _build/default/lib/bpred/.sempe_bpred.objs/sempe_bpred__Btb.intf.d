lib/bpred/btb.mli:
