lib/bpred/ittage.mli:
