lib/bpred/ras.mli:
