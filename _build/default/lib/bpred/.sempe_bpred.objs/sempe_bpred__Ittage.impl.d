lib/bpred/ittage.ml: Array Float
