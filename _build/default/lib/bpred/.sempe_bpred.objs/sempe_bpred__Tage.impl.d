lib/bpred/tage.ml: Array Bytes Char Counters Float Predictor
