lib/bpred/counters.ml: Array
