lib/bpred/ras.ml: Array
