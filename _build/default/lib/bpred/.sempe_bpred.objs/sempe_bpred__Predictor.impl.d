lib/bpred/predictor.ml:
