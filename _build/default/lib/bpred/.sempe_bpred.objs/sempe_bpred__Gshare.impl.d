lib/bpred/gshare.ml: Counters Predictor
