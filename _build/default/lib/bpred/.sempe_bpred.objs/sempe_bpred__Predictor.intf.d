lib/bpred/predictor.mli:
