(** Bimodal predictor: a PC-indexed table of 2-bit saturating counters. *)

val create : ?entries:int -> unit -> Predictor.t
(** [entries] defaults to 4096 and must be a power of two. *)
