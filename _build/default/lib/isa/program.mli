(** An assembled program: code image, entry point and static data layout.

    Memory is word addressed. The static data segment occupies word
    addresses [\[0, data_words)] and is addressed off {!Reg.gp} (which the
    loader sets to 0); the stack grows downward from the top of memory. *)

type t = private {
  code : Instr.t array;
  entry : int;                      (** index of the first instruction *)
  data_words : int;                 (** size of the global data segment *)
  labels : (string * int) list;     (** label name -> instruction index *)
}

val make :
  code:Instr.t array -> entry:int -> data_words:int
  -> labels:(string * int) list -> t
(** Validates and packs a program.
    @raise Invalid_argument if the entry point or any branch target is out of
    range, or any register number is invalid. *)

val length : t -> int
(** Number of instructions. *)

val find_label : t -> string -> int
(** @raise Not_found when the label is absent. *)

val count_secure_branches : t -> int
(** Static number of sJMP instructions in the image. *)

val max_nesting_hint : t -> int
(** Upper bound on static sJMP nesting depth, computed by scanning for the
    deepest excess of secure branches over [Eosjmp] join markers along the
    layout order. Used to size the jbTable / SPM in tests. *)

val pp : Format.formatter -> t -> unit
(** Disassembly listing with labels. *)
