(* Instructions are emitted with symbolic targets and resolved at assembly.
   [proto] mirrors Instr.t but holds label names where Instr.t holds
   indices. *)
type proto =
  | Direct of Instr.t
  | P_br of Instr.cond * Reg.t * Reg.t * string * bool
  | P_jmp of string
  | P_call of string

type t = {
  mutable rev_code : proto list;
  mutable len : int;
  labels : (string, int) Hashtbl.t;
  mutable pending : string list;  (* labels awaiting the next instruction *)
  mutable gensym : int;
}

let create () =
  { rev_code = []; len = 0; labels = Hashtbl.create 64; pending = []; gensym = 0 }

let fresh_label b hint =
  b.gensym <- b.gensym + 1;
  Printf.sprintf "%s__%d" hint b.gensym

let bind b name =
  if Hashtbl.mem b.labels name then
    invalid_arg (Printf.sprintf "Builder.bind: duplicate label %S" name);
  Hashtbl.add b.labels name b.len;
  b.pending <- name :: b.pending

let here b = b.len

let push b p =
  b.rev_code <- p :: b.rev_code;
  b.len <- b.len + 1;
  b.pending <- []

let nop b = push b (Direct Instr.Nop)
let alu b op rd rs1 rs2 = push b (Direct (Instr.Alu (op, rd, rs1, rs2)))
let alui b op rd rs1 imm = push b (Direct (Instr.Alui (op, rd, rs1, imm)))
let li b rd imm = push b (Direct (Instr.Li (rd, imm)))
let ld b rd base off = push b (Direct (Instr.Ld (rd, base, off)))
let st b rs base off = push b (Direct (Instr.St (rs, base, off)))
let cmov b rd rc rs = push b (Direct (Instr.Cmov (rd, rc, rs)))
let mov b rd rs = push b (Direct (Instr.Alu (Instr.Add, rd, rs, Reg.zero)))

let br b ?(secure = false) cond rs1 rs2 target =
  push b (P_br (cond, rs1, rs2, target, secure))

let jmp b target = push b (P_jmp target)
let jr b r = push b (Direct (Instr.Jr r))
let call b target = push b (P_call target)
let ret b = push b (Direct Instr.Ret)
let eosjmp b = push b (Direct Instr.Eosjmp)
let halt b = push b (Direct Instr.Halt)

let assemble b ~entry ~data_words =
  (* A label bound after the last instruction would dangle; forbid it. *)
  (match b.pending with
   | [] -> ()
   | name :: _ ->
     invalid_arg (Printf.sprintf "Builder.assemble: label %S binds past the end" name));
  let resolve name =
    match Hashtbl.find_opt b.labels name with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Builder.assemble: unresolved label %S" name)
  in
  let finish = function
    | Direct i -> i
    | P_br (cond, rs1, rs2, target, secure) ->
      Instr.Br { cond; rs1; rs2; target = resolve target; secure }
    | P_jmp target -> Instr.Jmp (resolve target)
    | P_call target -> Instr.Call (resolve target)
  in
  let code = Array.of_list (List.rev_map finish b.rev_code) in
  let labels = Hashtbl.fold (fun name i acc -> (name, i) :: acc) b.labels [] in
  Program.make ~code ~entry:(resolve entry) ~data_words ~labels
