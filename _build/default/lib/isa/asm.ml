exception Error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

let alu_ops =
  [
    ("add", Instr.Add); ("sub", Instr.Sub); ("mul", Instr.Mul);
    ("div", Instr.Div); ("rem", Instr.Rem); ("and", Instr.And);
    ("or", Instr.Or); ("xor", Instr.Xor); ("shl", Instr.Shl);
    ("shr", Instr.Shr); ("slt", Instr.Slt); ("sle", Instr.Sle);
    ("seq", Instr.Seq); ("sne", Instr.Sne);
  ]

let conds =
  [
    ("eq", Instr.Eq); ("ne", Instr.Ne); ("lt", Instr.Lt);
    ("ge", Instr.Ge); ("le", Instr.Le); ("gt", Instr.Gt);
  ]

let reg_aliases =
  [ ("zero", Reg.zero); ("sp", Reg.sp); ("ra", Reg.ra); ("rv", Reg.rv); ("gp", Reg.gp) ]

let parse_reg line tok =
  match List.assoc_opt tok reg_aliases with
  | Some r -> r
  | None ->
    let n = String.length tok in
    if n >= 2 && tok.[0] = 'r' then
      match int_of_string_opt (String.sub tok 1 (n - 1)) with
      | Some r when Reg.is_valid r -> r
      | Some r -> fail line "register r%d out of range" r
      | None -> fail line "bad register %S" tok
    else fail line "expected a register, found %S" tok

let parse_int line tok =
  match int_of_string_opt tok with
  | Some n -> n
  | None -> fail line "expected an integer, found %S" tok

(* "8(r1)" -> (offset, base register) *)
let parse_mem line tok =
  match String.index_opt tok '(' with
  | Some open_p when String.length tok > 0 && tok.[String.length tok - 1] = ')' ->
    let off = parse_int line (String.sub tok 0 open_p) in
    let base =
      parse_reg line (String.sub tok (open_p + 1) (String.length tok - open_p - 2))
    in
    (off, base)
  | Some _ | None -> fail line "expected OFFSET(REG), found %S" tok

type target = Label of string | Absolute of int

let parse_target line tok =
  if String.length tok > 1 && tok.[0] = '@' then
    Absolute (parse_int line (String.sub tok 1 (String.length tok - 1)))
  else if tok = "" then fail line "missing branch target"
  else Label tok

(* An instruction with an unresolved target. *)
type proto =
  | Done of Instr.t
  | Need_br of Instr.cond * Reg.t * Reg.t * target * bool
  | Need_jmp of target
  | Need_call of target

let split_operands s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun tok -> tok <> "")

let parse_instr line mnemonic operands =
  let reg = parse_reg line and int_ = parse_int line in
  let three f =
    match operands with
    | [ a; b; c ] -> f a b c
    | _ -> fail line "%s expects three operands" mnemonic
  in
  match (mnemonic, operands) with
  | "nop", [] -> Done Instr.Nop
  | "ret", [] -> Done Instr.Ret
  | "eosjmp", [] -> Done Instr.Eosjmp
  | "halt", [] -> Done Instr.Halt
  | "li", [ rd; imm ] -> Done (Instr.Li (reg rd, int_ imm))
  | "ld", [ rd; mem ] ->
    let off, base = parse_mem line mem in
    Done (Instr.Ld (reg rd, base, off))
  | "st", [ rs; mem ] ->
    let off, base = parse_mem line mem in
    Done (Instr.St (reg rs, base, off))
  | "cmov", [ rd; rc; rs ] -> Done (Instr.Cmov (reg rd, reg rc, reg rs))
  | "mov", [ rd; rs ] -> Done (Instr.Alu (Instr.Add, reg rd, reg rs, Reg.zero))
  | "jmp", [ t ] -> Need_jmp (parse_target line t)
  | "jr", [ r ] -> Done (Instr.Jr (reg r))
  | "call", [ t ] -> Need_call (parse_target line t)
  | _ -> (
    (* alu / alui / branches *)
    let n = String.length mnemonic in
    let is_imm = n > 1 && mnemonic.[n - 1] = 'i' in
    let stem = if is_imm then String.sub mnemonic 0 (n - 1) else mnemonic in
    match List.assoc_opt stem alu_ops with
    | Some op ->
      three (fun rd rs1 rs2 ->
          if is_imm then Done (Instr.Alui (op, reg rd, reg rs1, int_ rs2))
          else Done (Instr.Alu (op, reg rd, reg rs1, reg rs2)))
    | None ->
      let secure = n > 1 && mnemonic.[0] = 's' && String.length mnemonic >= 3 in
      let bstem = if secure then String.sub mnemonic 1 (n - 1) else mnemonic in
      if String.length bstem >= 3 && bstem.[0] = 'b' then
        match List.assoc_opt (String.sub bstem 1 (String.length bstem - 1)) conds with
        | Some cond ->
          three (fun rs1 rs2 t ->
              Need_br (cond, reg rs1, reg rs2, parse_target line t, secure))
        | None -> fail line "unknown mnemonic %S" mnemonic
      else fail line "unknown mnemonic %S" mnemonic)

let parse src =
  let lines = String.split_on_char '\n' src in
  let protos = ref [] in
  let count = ref 0 in
  let labels = Hashtbl.create 32 in
  let entry = ref None in
  let data_words = ref 0 in
  List.iteri
    (fun lineno raw ->
      let line = lineno + 1 in
      let text =
        match String.index_opt raw '#' with
        | Some k -> String.sub raw 0 k
        | None -> raw
      in
      let text = String.trim text in
      if text <> "" then
        if text.[0] = '.' then begin
          match String.split_on_char ' ' text |> List.filter (( <> ) "") with
          | [ ".data"; n ] -> data_words := parse_int line n
          | [ ".entry"; name ] -> entry := Some name
          | _ -> fail line "unknown directive %S" text
        end
        else begin
          (* any number of "label:" prefixes, then an optional instruction *)
          let rec strip text =
            match String.index_opt text ':' with
            | Some k
              when String.for_all
                     (fun c ->
                       (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                       || (c >= '0' && c <= '9') || c = '_' || c = '$')
                     (String.sub text 0 k)
                   && k > 0 ->
              let name = String.sub text 0 k in
              if Hashtbl.mem labels name then fail line "duplicate label %S" name;
              Hashtbl.replace labels name !count;
              strip (String.trim (String.sub text (k + 1) (String.length text - k - 1)))
            | Some _ | None -> text
          in
          let text = strip text in
          if text <> "" then begin
            let mnemonic, rest =
              match String.index_opt text ' ' with
              | Some k ->
                ( String.sub text 0 k,
                  String.sub text k (String.length text - k) )
              | None -> (text, "")
            in
            protos := (parse_instr line mnemonic (split_operands rest), line) :: !protos;
            incr count
          end
        end)
    lines;
  let resolve line = function
    | Absolute n -> n
    | Label name -> (
      match Hashtbl.find_opt labels name with
      | Some k -> k
      | None -> fail line "undefined label %S" name)
  in
  let code =
    Array.of_list
      (List.rev_map
         (fun (proto, line) ->
           match proto with
           | Done i -> i
           | Need_br (cond, rs1, rs2, t, secure) ->
             Instr.Br { cond; rs1; rs2; target = resolve line t; secure }
           | Need_jmp t -> Instr.Jmp (resolve line t)
           | Need_call t -> Instr.Call (resolve line t))
         !protos)
  in
  let entry_index =
    match !entry with
    | Some name -> (
      match Hashtbl.find_opt labels name with
      | Some k -> k
      | None -> fail 0 "entry label %S undefined" name)
    | None -> (
      match Hashtbl.find_opt labels "entry" with Some k -> k | None -> 0)
  in
  let label_list = Hashtbl.fold (fun name k acc -> (name, k) :: acc) labels [] in
  Program.make ~code ~entry:entry_index ~data_words:!data_words ~labels:label_list

let print (p : Program.t) =
  let buf = Buffer.create 1024 in
  let label_at k =
    List.filter_map (fun (name, i) -> if i = k then Some name else None)
      p.Program.labels
  in
  Buffer.add_string buf (Printf.sprintf ".data %d\n" p.Program.data_words);
  let entry_labels = label_at p.Program.entry in
  let entry_name =
    match entry_labels with name :: _ -> name | [] -> "$entry"
  in
  Buffer.add_string buf (Printf.sprintf ".entry %s\n" entry_name);
  Array.iteri
    (fun k instr ->
      List.iter (fun name -> Buffer.add_string buf (name ^ ":\n")) (label_at k);
      if k = p.Program.entry && entry_labels = [] then
        Buffer.add_string buf "$entry:\n";
      Buffer.add_string buf ("    " ^ Instr.to_string instr ^ "\n"))
    p.Program.code;
  Buffer.contents buf
