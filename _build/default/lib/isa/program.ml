type t = {
  code : Instr.t array;
  entry : int;
  data_words : int;
  labels : (string * int) list;
}

let validate code entry =
  let n = Array.length code in
  if entry < 0 || entry >= n then invalid_arg "Program.make: entry out of range";
  let check_target kind t =
    if t < 0 || t >= n then
      invalid_arg (Printf.sprintf "Program.make: %s target %d out of range" kind t)
  in
  let check_reg r =
    if not (Reg.is_valid r) then
      invalid_arg (Printf.sprintf "Program.make: invalid register %d" r)
  in
  let check_instr (i : Instr.t) =
    (match Instr.dest i with Some r -> check_reg r | None -> ());
    List.iter check_reg (Instr.sources i);
    match i with
    | Instr.Br { target; _ } -> check_target "branch" target
    | Instr.Jmp target -> check_target "jump" target
    | Instr.Call target -> check_target "call" target
    | Instr.Nop | Instr.Alu _ | Instr.Alui _ | Instr.Li _ | Instr.Ld _
    | Instr.St _ | Instr.Cmov _ | Instr.Jr _ | Instr.Ret | Instr.Eosjmp
    | Instr.Halt ->
      ()
  in
  Array.iter check_instr code

let make ~code ~entry ~data_words ~labels =
  if data_words < 0 then invalid_arg "Program.make: negative data_words";
  validate code entry;
  { code; entry; data_words; labels }

let length t = Array.length t.code

let find_label t name =
  match List.assoc_opt name t.labels with
  | Some i -> i
  | None -> raise Not_found

let count_secure_branches t =
  Array.fold_left
    (fun acc i -> if Instr.is_secure_branch i then acc + 1 else acc)
    0 t.code

let max_nesting_hint t =
  let depth = ref 0 and deepest = ref 0 in
  Array.iter
    (fun i ->
      if Instr.is_secure_branch i then begin
        incr depth;
        if !depth > !deepest then deepest := !depth
      end
      else match i with
        | Instr.Eosjmp -> if !depth > 0 then decr depth
        | Instr.Nop | Instr.Alu _ | Instr.Alui _ | Instr.Li _ | Instr.Ld _
        | Instr.St _ | Instr.Cmov _ | Instr.Br _ | Instr.Jmp _ | Instr.Jr _
        | Instr.Call _ | Instr.Ret | Instr.Halt -> ())
    t.code;
  !deepest

let pp fmt t =
  let label_at =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (name, i) -> Hashtbl.add tbl i name) t.labels;
    fun i -> Hashtbl.find_all tbl i
  in
  Array.iteri
    (fun i instr ->
      List.iter (fun name -> Format.fprintf fmt "%s:@." name) (label_at i);
      Format.fprintf fmt "  %4d  %s@." i (Instr.to_string instr))
    t.code
