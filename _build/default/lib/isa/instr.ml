type alu_op =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Slt | Sle | Seq | Sne

type cond = Eq | Ne | Lt | Ge | Le | Gt

type t =
  | Nop
  | Alu of alu_op * Reg.t * Reg.t * Reg.t
  | Alui of alu_op * Reg.t * Reg.t * int
  | Li of Reg.t * int
  | Ld of Reg.t * Reg.t * int
  | St of Reg.t * Reg.t * int
  | Cmov of Reg.t * Reg.t * Reg.t
  | Br of { cond : cond; rs1 : Reg.t; rs2 : Reg.t; target : int; secure : bool }
  | Jmp of int
  | Jr of Reg.t
  | Call of int
  | Ret
  | Eosjmp
  | Halt

type iclass =
  | Cls_nop
  | Cls_int_alu
  | Cls_int_mul
  | Cls_int_div
  | Cls_load
  | Cls_store
  | Cls_branch
  | Cls_jump
  | Cls_eosjmp
  | Cls_halt

let class_of = function
  | Nop -> Cls_nop
  | Alu (Mul, _, _, _) | Alui (Mul, _, _, _) -> Cls_int_mul
  | Alu ((Div | Rem), _, _, _) | Alui ((Div | Rem), _, _, _) -> Cls_int_div
  | Alu (_, _, _, _) | Alui (_, _, _, _) | Li _ | Cmov _ -> Cls_int_alu
  | Ld _ -> Cls_load
  | St _ -> Cls_store
  | Br _ -> Cls_branch
  | Jmp _ | Jr _ | Call _ | Ret -> Cls_jump
  | Eosjmp -> Cls_eosjmp
  | Halt -> Cls_halt

let dest i =
  let d = function r when r = Reg.zero -> None | r -> Some r in
  match i with
  | Alu (_, rd, _, _) | Alui (_, rd, _, _) | Li (rd, _) | Ld (rd, _, _)
  | Cmov (rd, _, _) ->
    d rd
  | Call _ -> d Reg.ra
  | Nop | St _ | Br _ | Jmp _ | Jr _ | Ret | Eosjmp | Halt -> None

let sources i =
  let srcs =
    match i with
    | Nop | Li _ | Jmp _ | Call _ | Eosjmp | Halt -> []
    | Jr r -> [ r ]
    | Alu (_, _, rs1, rs2) -> [ rs1; rs2 ]
    | Alui (_, _, rs1, _) -> [ rs1 ]
    | Ld (_, base, _) -> [ base ]
    | St (rs, base, _) -> [ rs; base ]
    | Cmov (rd, rc, rs) -> [ rd; rc; rs ]
    | Br { rs1; rs2; _ } -> [ rs1; rs2 ]
    | Ret -> [ Reg.ra ]
  in
  List.sort_uniq compare (List.filter (fun r -> r <> Reg.zero) srcs)

let is_secure_branch = function Br { secure; _ } -> secure | _ -> false

let eval_cond c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Ge -> a >= b
  | Le -> a <= b
  | Gt -> a > b

let eval_alu op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a asr (b land 63)
  | Slt -> if a < b then 1 else 0
  | Sle -> if a <= b then 1 else 0
  | Seq -> if a = b then 1 else 0
  | Sne -> if a <> b then 1 else 0

let alu_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Slt -> "slt" | Sle -> "sle" | Seq -> "seq" | Sne -> "sne"

let cond_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Ge -> "ge" | Le -> "le" | Gt -> "gt"

let to_string i =
  let r = Reg.to_string in
  match i with
  | Nop -> "nop"
  | Alu (op, rd, rs1, rs2) ->
    Printf.sprintf "%s %s, %s, %s" (alu_name op) (r rd) (r rs1) (r rs2)
  | Alui (op, rd, rs1, imm) ->
    Printf.sprintf "%si %s, %s, %d" (alu_name op) (r rd) (r rs1) imm
  | Li (rd, imm) -> Printf.sprintf "li %s, %d" (r rd) imm
  | Ld (rd, base, off) -> Printf.sprintf "ld %s, %d(%s)" (r rd) off (r base)
  | St (rs, base, off) -> Printf.sprintf "st %s, %d(%s)" (r rs) off (r base)
  | Cmov (rd, rc, rs) -> Printf.sprintf "cmov %s, %s, %s" (r rd) (r rc) (r rs)
  | Br { cond; rs1; rs2; target; secure } ->
    Printf.sprintf "%sb%s %s, %s, @%d"
      (if secure then "s" else "")
      (cond_name cond) (r rs1) (r rs2) target
  | Jmp t -> Printf.sprintf "jmp @%d" t
  | Jr reg -> Printf.sprintf "jr %s" (r reg)
  | Call t -> Printf.sprintf "call @%d" t
  | Ret -> "ret"
  | Eosjmp -> "eosjmp"
  | Halt -> "halt"

let pp fmt i = Format.pp_print_string fmt (to_string i)
