(** Textual assembler: parse assembly source into a {!Program.t}.

    The syntax is what {!Instr.to_string} / {!Program.pp} print, plus
    labels and directives, so disassembler output round-trips:

    {v
    # comments run to end of line
    .data 16            # static data segment size in words
    entry:
        li r10, 5
        addi r10, r10, 2
        ld r11, 3(r4)
        sble r10, r11, done   # 's' prefix = secure branch (sJMP)
        call helper
    done:
        eosjmp
        halt
    helper:
        ret
    v}

    Branch/jump targets may be label names or absolute [@N] indices.
    Registers are [r0]..[r47] (aliases: [zero sp ra rv gp]). The entry
    point is the [.entry NAME] directive, else the label [entry], else
    instruction 0. *)

exception Error of { line : int; message : string }

val parse : string -> Program.t
(** @raise Error on malformed input (with the source line).
    @raise Invalid_argument when program validation fails. *)

val print : Program.t -> string
(** Round-trippable listing: [parse (print p)] has the same code image,
    entry point and data size as [p]. *)
