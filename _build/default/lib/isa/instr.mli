(** The instruction set of the simulated machine.

    A RISC-like ISA extended with the two SeMPE additions from §IV-C of the
    paper:

    - conditional branches carry a [secure] flag, standing in for the
      SecPrefix byte (0x2e) that turns a branch into an sJMP;
    - {!Eosjmp} marks the join point of a secure branch (encoded as
      0x2e,0x90 in the paper, i.e. a NOP on legacy processors).

    Branch and jump targets are absolute instruction indices; the
    {!module:Builder} resolves symbolic labels to indices at assembly time. *)

type alu_op =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Slt  (** set if less-than, signed *)
  | Sle  (** set if less-or-equal, signed *)
  | Seq  (** set if equal *)
  | Sne  (** set if not equal *)

type cond = Eq | Ne | Lt | Ge | Le | Gt
(** Branch condition, comparing [rs1] with [rs2] (signed). *)

type t =
  | Nop
  | Alu of alu_op * Reg.t * Reg.t * Reg.t  (** [Alu (op, rd, rs1, rs2)] *)
  | Alui of alu_op * Reg.t * Reg.t * int   (** [Alui (op, rd, rs1, imm)] *)
  | Li of Reg.t * int                      (** load immediate *)
  | Ld of Reg.t * Reg.t * int              (** [Ld (rd, base, off)]: rd <- mem[base+off] *)
  | St of Reg.t * Reg.t * int              (** [St (rs, base, off)]: mem[base+off] <- rs *)
  | Cmov of Reg.t * Reg.t * Reg.t          (** [Cmov (rd, rc, rs)]: if rc<>0 then rd <- rs *)
  | Br of { cond : cond; rs1 : Reg.t; rs2 : Reg.t; target : int; secure : bool }
  | Jmp of int
  | Jr of Reg.t                            (** indirect jump: pc <- reg *)
  | Call of int                            (** ra <- pc+1; jump *)
  | Ret                                    (** jump to ra *)
  | Eosjmp                                 (** end-of-secure-jump marker; NOP on legacy *)
  | Halt

(** Instruction class, used by the timing model to pick latency and issue
    port. *)
type iclass =
  | Cls_nop
  | Cls_int_alu
  | Cls_int_mul
  | Cls_int_div
  | Cls_load
  | Cls_store
  | Cls_branch
  | Cls_jump
  | Cls_eosjmp
  | Cls_halt

val class_of : t -> iclass

val dest : t -> Reg.t option
(** Architectural register written by the instruction, if any. Writes to
    {!Reg.zero} are reported as [None]. *)

val sources : t -> Reg.t list
(** Architectural registers read by the instruction (without duplicates,
    without {!Reg.zero}). [Cmov (rd, _, _)] reads [rd]. *)

val is_secure_branch : t -> bool
(** True for a conditional branch carrying the SecPrefix. *)

val eval_cond : cond -> int -> int -> bool
val eval_alu : alu_op -> int -> int -> int
(** [eval_alu Div _ 0] and [eval_alu Rem _ 0] return 0 rather than trapping:
    the paper assumes the compiler rejects secure blocks that can fault, and
    a wrong-path divide must not kill the simulation (§III). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
