type t = int

let count = 48
let zero = 0
let sp = 1
let ra = 2
let rv = 3
let gp = 4
let scratch0 = 5
let scratch1 = 6
let first_temp = 8
let last_temp = count - 1

let is_valid r = r >= 0 && r < count

let to_string r = Printf.sprintf "r%d" r
let pp fmt r = Format.pp_print_string fmt (to_string r)
