(** Assembler-style program builder with symbolic labels.

    The code generator and hand-written tests construct programs through
    this module: emit instructions in order, bind labels, reference labels
    forward or backward, then {!assemble} to resolve everything into a
    {!Program.t}. *)

type t

val create : unit -> t

val fresh_label : t -> string -> string
(** [fresh_label b hint] returns a unique label name derived from [hint]. *)

val bind : t -> string -> unit
(** [bind b name] attaches [name] to the next emitted instruction.
    @raise Invalid_argument if [name] is already bound. *)

val here : t -> int
(** Index the next emitted instruction will get. *)

(** {2 Emitters} *)

val nop : t -> unit
val alu : t -> Instr.alu_op -> Reg.t -> Reg.t -> Reg.t -> unit
val alui : t -> Instr.alu_op -> Reg.t -> Reg.t -> int -> unit
val li : t -> Reg.t -> int -> unit
val ld : t -> Reg.t -> Reg.t -> int -> unit
val st : t -> Reg.t -> Reg.t -> int -> unit
val cmov : t -> Reg.t -> Reg.t -> Reg.t -> unit
val mov : t -> Reg.t -> Reg.t -> unit
(** [mov b rd rs] emits [add rd, rs, r0]. *)

val br : t -> ?secure:bool -> Instr.cond -> Reg.t -> Reg.t -> string -> unit
(** Conditional branch to a label; [secure] defaults to [false]. *)

val jmp : t -> string -> unit
val jr : t -> Reg.t -> unit
val call : t -> string -> unit
val ret : t -> unit
val eosjmp : t -> unit
val halt : t -> unit

val assemble : t -> entry:string -> data_words:int -> Program.t
(** Resolve labels and validate.
    @raise Invalid_argument on an unresolved label. *)
