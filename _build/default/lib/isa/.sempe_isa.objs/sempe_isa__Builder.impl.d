lib/isa/builder.ml: Array Hashtbl Instr List Printf Program Reg
