lib/isa/instr.ml: Format List Printf Reg
