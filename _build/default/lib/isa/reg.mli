(** Architectural registers.

    The machine has 48 architectural registers (the paper sizes ArchRS
    snapshots for the 48 architectural registers of x86_64). Register 0 is
    hardwired to zero, RISC style. A handful of registers have conventional
    roles assigned by the code generator; the rest form the expression
    evaluation window. *)

type t = int
(** A register number in [\[0, count)]. *)

val count : int
(** Number of architectural registers (48). *)

val zero : t
(** Hardwired zero register (r0). Writes to it are discarded. *)

val sp : t
(** Stack pointer (r1). *)

val ra : t
(** Return-address / link register (r2). *)

val rv : t
(** Return-value register (r3). *)

val gp : t
(** Global pointer: base of the global data segment (r4). *)

val scratch0 : t
(** First scratch register reserved for compiler-internal sequences (r5). *)

val scratch1 : t
(** Second scratch register (r6). *)

val first_temp : t
(** First register of the expression-evaluation window (r8). *)

val last_temp : t
(** Last register of the expression-evaluation window (r47). *)

val is_valid : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
