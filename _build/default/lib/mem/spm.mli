(** Scratchpad memory for ArchRS register snapshots (§IV-F, Figure 6).

    The SPM holds up to [max_snapshots] snapshot slots, one per nested
    secure branch; the nesting level is the slot offset. Each slot stores
    two architectural register states (pre-SecBlock and post-NT-path) plus
    the two modified-bit vectors. Transfers move [throughput_bytes] per
    cycle (Table II: 64 B/cycle, 216KB, 30 snapshots). *)

type config = {
  max_snapshots : int;      (** default 30 *)
  snapshot_bytes : int;     (** bytes per full snapshot slot, default 7392 *)
  throughput_bytes : int;   (** bytes moved per cycle, default 64 *)
  arch_regs : int;          (** registers per state, default 48 *)
}

val default_config : config

exception Overflow
(** Raised when a snapshot is pushed beyond [max_snapshots] — the paper
    leaves the policy to an exception handler; the simulator surfaces it. *)

type t

val create : ?config:config -> unit -> t

val config_of : t -> config

val depth : t -> int
(** Number of live snapshot slots (current secure-branch nesting). *)

val high_water : t -> int
(** Deepest nesting reached since creation. *)

val push_full_save : t -> int
(** Enter a secure block: claim the next slot and save all architectural
    registers. Returns the transfer cycles charged.
    @raise Overflow when the SPM is exhausted. *)

val save_modified : t -> modified:int -> int
(** Save [modified] registers of the current slot's second state (after the
    NT path). Returns transfer cycles. *)

val read_modified : t -> modified:int -> int
(** Read back [modified] registers from the current slot without releasing
    it (the restore-to-pre-state transfer at the first eosJMP). Returns
    transfer cycles. *)

val restore : t -> modified_union:int -> int
(** Exit a secure block: read back every register modified in at least one
    path (the paper always reads them, even when overwritten by themselves,
    to keep restore time secret-independent), release the slot, and return
    transfer cycles. *)

val bytes_per_reg : t -> int
val total_bytes_moved : t -> int
val stats : t -> Sempe_util.Stats.group
(** Counters: [saves], [restores], [bytes_moved], [cycles]. *)
