(** Three-level memory hierarchy: split IL1/DL1 backed by a unified L2 and
    DRAM, with the baseline's prefetchers (stride at L1, stream at L2).

    Sizes default to Table II of the paper: 16KB 2-way IL1, 32KB 2-way DL1,
    256KB 2-way L2, 64B lines. Latencies are load-to-use cycles at 2 GHz. *)

type config = {
  il1 : Cache.config;
  dl1 : Cache.config;
  l2 : Cache.config;
  lat_l1 : int;   (** hit latency of either L1 (default 3) *)
  lat_l2 : int;   (** L2 hit latency (default 12) *)
  lat_mem : int;  (** DRAM latency (default 180) *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

val config_of : t -> config

val inst_fetch : t -> addr:int -> int
(** Latency in cycles to fetch the instruction line at byte address
    [addr]. *)

val data_access : t -> pc:int -> addr:int -> write:bool -> int
(** Latency in cycles for a load or store by the instruction at [pc] to
    byte address [addr]. Trains the stride prefetcher; L2 misses train the
    stream prefetcher. Stores are modeled write-allocate. *)

val il1 : t -> Cache.t
val dl1 : t -> Cache.t
val l2 : t -> Cache.t

val flush : t -> unit
(** Invalidate all caches and reset the prefetchers (not the statistics). *)

val reset_stats : t -> unit

val miss_rates : t -> float * float * float
(** (IL1, DL1, L2) demand miss rates — the three panels of Figure 9. *)

val signature : t -> int
(** Combined hash of all cache states (attacker-visible). *)
