lib/mem/spm.mli: Sempe_util
