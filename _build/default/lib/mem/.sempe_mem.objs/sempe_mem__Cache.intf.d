lib/mem/cache.mli: Sempe_util
