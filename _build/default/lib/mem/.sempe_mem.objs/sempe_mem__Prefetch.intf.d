lib/mem/prefetch.mli:
