lib/mem/prefetch.ml: Array List
