lib/mem/spm.ml: Sempe_util Stats
