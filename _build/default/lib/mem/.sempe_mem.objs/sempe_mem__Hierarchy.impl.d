lib/mem/hierarchy.ml: Cache List Prefetch Sempe_util Stats
