lib/mem/cache.ml: Array List Sempe_util Stats
