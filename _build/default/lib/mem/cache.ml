open Sempe_util

type config = {
  name : string;
  size_bytes : int;
  line_bytes : int;
  ways : int;
}

type line = { mutable tag : int; mutable lru : int }
(* tag = -1 encodes invalid. *)

type t = {
  cfg : config;
  sets : line array array;
  mutable clock : int;
  group : Stats.group;
  c_accesses : Stats.counter;
  c_misses : Stats.counter;
  c_writes : Stats.counter;
  c_prefetch_fills : Stats.counter;
  c_evictions : Stats.counter;
}

type outcome = Hit | Miss

let create cfg =
  let lines = cfg.size_bytes / cfg.line_bytes in
  if lines mod cfg.ways <> 0 then invalid_arg "Cache.create: lines not divisible by ways";
  let nsets = lines / cfg.ways in
  if nsets land (nsets - 1) <> 0 then invalid_arg "Cache.create: sets not a power of two";
  let group = Stats.group cfg.name in
  {
    cfg;
    sets = Array.init nsets (fun _ -> Array.init cfg.ways (fun _ -> { tag = -1; lru = 0 }));
    clock = 0;
    group;
    c_accesses = Stats.counter group "accesses";
    c_misses = Stats.counter group "misses";
    c_writes = Stats.counter group "writes";
    c_prefetch_fills = Stats.counter group "prefetch_fills";
    c_evictions = Stats.counter group "evictions";
  }

let config t = t.cfg
let num_sets t = Array.length t.sets

let set_index t ~addr =
  (addr / t.cfg.line_bytes) land (num_sets t - 1)

let tag_of t addr = addr / t.cfg.line_bytes / num_sets t

let find set tag =
  let rec scan i =
    if i >= Array.length set then None
    else if set.(i).tag = tag then Some set.(i)
    else scan (i + 1)
  in
  scan 0

let lru_victim set =
  Array.fold_left (fun best l -> if l.lru < best.lru then l else best) set.(0) set

let install t set tag =
  let victim = lru_victim set in
  if victim.tag >= 0 then Stats.incr t.c_evictions;
  victim.tag <- tag;
  t.clock <- t.clock + 1;
  victim.lru <- t.clock

let access t ~addr ~write =
  Stats.incr t.c_accesses;
  if write then Stats.incr t.c_writes;
  let set = t.sets.(set_index t ~addr) and tag = tag_of t addr in
  match find set tag with
  | Some line ->
    t.clock <- t.clock + 1;
    line.lru <- t.clock;
    Hit
  | None ->
    Stats.incr t.c_misses;
    install t set tag;
    Miss

let prefetch_fill t ~addr =
  let set = t.sets.(set_index t ~addr) and tag = tag_of t addr in
  match find set tag with
  | Some _ -> false
  | None ->
    Stats.incr t.c_prefetch_fills;
    install t set tag;
    true

let probe t ~addr =
  let set = t.sets.(set_index t ~addr) and tag = tag_of t addr in
  find set tag <> None

let resident_tags t set_idx =
  let set = t.sets.(set_idx) in
  let lines = Array.to_list (Array.copy set) in
  let valid = List.filter (fun l -> l.tag >= 0) lines in
  let sorted = List.sort (fun a b -> compare b.lru a.lru) valid in
  List.map (fun l -> l.tag) sorted

let flush t =
  Array.iter (fun set -> Array.iter (fun l -> l.tag <- -1; l.lru <- 0) set) t.sets;
  t.clock <- 0

let stats t = t.group

let miss_rate t =
  Stats.ratio ~num:(Stats.value t.c_misses) ~den:(Stats.value t.c_accesses)

let signature t =
  let acc = ref 2166136261 in
  Array.iter
    (fun set -> Array.iter (fun l -> acc := (!acc * 16777619) lxor (l.tag + 2)) set)
    t.sets;
  !acc
