(** Hardware prefetchers of the baseline model (Table II): a per-PC stride
    prefetcher in front of the L1 data cache and a miss-stream prefetcher in
    front of the L2. Each returns the list of line-aligned byte addresses to
    prefetch for a given access. *)

module Stride : sig
  type t

  val create : ?entries:int -> ?degree:int -> unit -> t
  (** [entries] stride-table entries (default 64), [degree] lines prefetched
      per confident access (default 1). *)

  val observe : t -> pc:int -> addr:int -> int list
  (** [observe t ~pc ~addr] trains the table on a demand access by the load
      or store at [pc] to byte address [addr] and returns prefetch
      candidates (empty until the stride is confident and non-zero). *)

  val reset : t -> unit
end

module Stream : sig
  type t

  val create : ?streams:int -> ?degree:int -> ?line_bytes:int -> unit -> t
  (** [streams] concurrent streams tracked (default 8), [degree] lines
      prefetched ahead (default 2). *)

  val observe_miss : t -> addr:int -> int list
  (** Train on an L2 miss; returns next-line prefetch candidates when the
      miss extends a detected ascending stream. *)

  val reset : t -> unit
end
