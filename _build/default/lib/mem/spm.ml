open Sempe_util

type config = {
  max_snapshots : int;
  snapshot_bytes : int;
  throughput_bytes : int;
  arch_regs : int;
}

let default_config =
  { max_snapshots = 30; snapshot_bytes = 7392; throughput_bytes = 64; arch_regs = 48 }

exception Overflow

type t = {
  cfg : config;
  mutable depth : int;
  mutable high_water : int;
  group : Stats.group;
  c_saves : Stats.counter;
  c_restores : Stats.counter;
  c_bytes : Stats.counter;
  c_cycles : Stats.counter;
}

let create ?(config = default_config) () =
  let group = Stats.group "spm" in
  {
    cfg = config;
    depth = 0;
    high_water = 0;
    group;
    c_saves = Stats.counter group "saves";
    c_restores = Stats.counter group "restores";
    c_bytes = Stats.counter group "bytes_moved";
    c_cycles = Stats.counter group "cycles";
  }

let config_of t = t.cfg
let depth t = t.depth
let high_water t = t.high_water

(* A snapshot slot holds two register states; each state's share of the slot
   covers the registers plus their slice of RAT/metadata, so the per-register
   transfer cost is half a slot divided by the register count. *)
let bytes_per_reg t = t.cfg.snapshot_bytes / 2 / t.cfg.arch_regs

let transfer t bytes =
  let cycles = (bytes + t.cfg.throughput_bytes - 1) / t.cfg.throughput_bytes in
  Stats.add t.c_bytes bytes;
  Stats.add t.c_cycles cycles;
  cycles

let push_full_save t =
  if t.depth >= t.cfg.max_snapshots then raise Overflow;
  t.depth <- t.depth + 1;
  if t.depth > t.high_water then t.high_water <- t.depth;
  Stats.incr t.c_saves;
  transfer t (bytes_per_reg t * t.cfg.arch_regs)

let save_modified t ~modified =
  assert (t.depth > 0);
  Stats.incr t.c_saves;
  transfer t (bytes_per_reg t * modified)

let read_modified t ~modified =
  assert (t.depth > 0);
  transfer t (bytes_per_reg t * modified)

let restore t ~modified_union =
  assert (t.depth > 0);
  t.depth <- t.depth - 1;
  Stats.incr t.c_restores;
  transfer t (bytes_per_reg t * modified_union)

let total_bytes_moved t = Stats.value t.c_bytes
let stats t = t.group
