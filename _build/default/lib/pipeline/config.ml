type t = {
  clock_ghz : float;
  fetch_width : int;
  decode_width : int;
  rename_width : int;
  issue_width : int;
  load_issue : int;
  retire_width : int;
  rob_entries : int;
  int_regs : int;
  fp_regs : int;
  iq_entries : int;
  lq_entries : int;
  sq_entries : int;
  frontend_depth : int;
  redirect_penalty : int;
  btb_miss_bubble : int;
  lat_int_alu : int;
  lat_int_mul : int;
  lat_int_div : int;
  inst_bytes : int;
  word_bytes : int;
  hierarchy : Sempe_mem.Hierarchy.config;
  spm : Sempe_mem.Spm.config;
  jbtable_entries : int;
}

let default =
  {
    clock_ghz = 2.0;
    fetch_width = 8;
    decode_width = 8;
    rename_width = 8;
    issue_width = 8;
    load_issue = 2;
    retire_width = 12;
    rob_entries = 192;
    int_regs = 256;
    fp_regs = 256;
    iq_entries = 60;
    lq_entries = 32;
    sq_entries = 32;
    frontend_depth = 8;
    redirect_penalty = 2;
    btb_miss_bubble = 2;
    lat_int_alu = 1;
    lat_int_mul = 3;
    lat_int_div = 12;
    inst_bytes = 4;
    word_bytes = 8;
    hierarchy = Sempe_mem.Hierarchy.default_config;
    spm = Sempe_mem.Spm.default_config;
    jbtable_entries = Sempe_mem.Spm.default_config.Sempe_mem.Spm.max_snapshots;
  }

let rows t =
  let i = string_of_int in
  let cache (c : Sempe_mem.Cache.config) =
    Printf.sprintf "%dKB, %d-way assoc." (c.Sempe_mem.Cache.size_bytes / 1024)
      c.Sempe_mem.Cache.ways
  in
  let h = t.hierarchy in
  [
    ("clock frequency", Printf.sprintf "%.1f GHz" t.clock_ghz);
    ("branch predictor", "TAGE (+ BTB, RAS)");
    ("fetch", i t.fetch_width ^ " instructions / cycle");
    ("decode", i t.decode_width ^ " uops / cycle");
    ("rename", i t.rename_width ^ " uops / cycle");
    ("issue (micro-ops)", i t.issue_width ^ " uops");
    ("load issue", i t.load_issue ^ " loads / cycle");
    ("retire", i t.retire_width ^ " uops / cycle");
    ("reorder buffer (ROB)", i t.rob_entries ^ " uops");
    ("physical registers", Printf.sprintf "%d INT, %d FP" t.int_regs t.fp_regs);
    ("issue buffers", Printf.sprintf "%d INT / %d FP uops" t.iq_entries t.iq_entries);
    ("load/store queue", Printf.sprintf "%d+%d entries" t.lq_entries t.sq_entries);
    ("DL1 cache", cache h.Sempe_mem.Hierarchy.dl1);
    ("IL1 cache", cache h.Sempe_mem.Hierarchy.il1);
    ("L2 cache", cache h.Sempe_mem.Hierarchy.l2);
    ("prefetcher", "stride pref. (L1), stream pref. (L2)");
    ( "SPM size",
      Printf.sprintf "%dKB (up to %d snapshots supported)"
        (t.spm.Sempe_mem.Spm.max_snapshots * t.spm.Sempe_mem.Spm.snapshot_bytes / 1024)
        t.spm.Sempe_mem.Spm.max_snapshots );
    ( "SPM throughput",
      Printf.sprintf "%d Bytes/cycle R/W" t.spm.Sempe_mem.Spm.throughput_bytes );
  ]
