(** Dynamic micro-operations and pipeline events.

    The functional interpreter streams one {!event} per committed
    instruction (plus drain events for the SeMPE snapshot machinery) into
    the timing model, in commit order. *)

type control =
  | Ctl_none
  | Ctl_branch of { taken : bool; target : int; secure : bool }
      (** conditional branch; [target] is the taken destination *)
  | Ctl_jump of { target : int }
  | Ctl_call of { target : int; return_to : int }
  | Ctl_ret of { target : int }
  | Ctl_indirect of { target : int }
      (** computed jump (Jr): target predicted by ITTAGE *)
  | Ctl_jumpback of { target : int }
      (** eosJMP consuming a jbTable entry: nextPC comes from hardware, not
          from prediction *)

type t = {
  pc : int;                     (** instruction index *)
  cls : Sempe_isa.Instr.iclass;
  dst : Sempe_isa.Reg.t option;
  srcs : Sempe_isa.Reg.t list;
  mem_addr : int;               (** word address; meaningful for load/store *)
  control : control;
}

(** Why the SeMPE front end drained the pipeline. *)
type drain_reason =
  | Drain_enter_secblock   (** before entering a SecBlock (save all registers) *)
  | Drain_after_nt_path    (** at the first eosJMP (save modified, jump back) *)
  | Drain_exit_secblock    (** at the second eosJMP (restore) *)

type event =
  | Commit of t
  | Drain of { reason : drain_reason; spm_cycles : int }
      (** Pipeline drain: later instructions may not dispatch until all
          earlier ones have committed, plus [spm_cycles] of SPM transfer. *)

val of_instr : pc:int -> Sempe_isa.Instr.t -> mem_addr:int -> control -> t
(** Builds a µop from a decoded instruction; [mem_addr] is ignored for
    non-memory instructions. *)
