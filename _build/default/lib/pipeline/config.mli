(** Baseline microarchitecture model — Table II of the paper.

    The machine is an 8-wide out-of-order core at 2 GHz configured like a
    compact Haswell: 192-entry ROB, 60-entry integer scheduler, 32+32
    load/store queues, TAGE direction prediction, split 2-way L1 caches and
    a 256KB L2, stride (L1) and stream (L2) prefetchers, and a 216KB
    scratchpad supporting 30 ArchRS snapshots. *)

type t = {
  clock_ghz : float;
  fetch_width : int;        (** instructions fetched per cycle *)
  decode_width : int;
  rename_width : int;
  issue_width : int;        (** µops issued per cycle *)
  load_issue : int;         (** loads issued per cycle *)
  retire_width : int;       (** µops retired per cycle *)
  rob_entries : int;
  int_regs : int;
  fp_regs : int;
  iq_entries : int;         (** integer scheduler entries *)
  lq_entries : int;
  sq_entries : int;
  frontend_depth : int;     (** fetch-to-dispatch pipeline stages *)
  redirect_penalty : int;   (** extra cycles after a resolved mispredict *)
  btb_miss_bubble : int;    (** decode-redirect bubble on a BTB miss *)
  lat_int_alu : int;
  lat_int_mul : int;
  lat_int_div : int;
  inst_bytes : int;         (** bytes per instruction for icache addressing *)
  word_bytes : int;         (** bytes per data word *)
  hierarchy : Sempe_mem.Hierarchy.config;
  spm : Sempe_mem.Spm.config;
  jbtable_entries : int;    (** nested sJMP supported; equals SPM snapshots *)
}

val default : t
(** Table II values. *)

val rows : t -> (string * string) list
(** Human-readable (parameter, value) rows, mirroring Table II for the
    benchmark harness to print. *)
