lib/pipeline/timing.ml: Array Config Hashtbl Instr List Reg Sempe_bpred Sempe_isa Sempe_mem Sempe_util Stats Uop
