lib/pipeline/timing.mli: Config Sempe_bpred Sempe_mem Uop
