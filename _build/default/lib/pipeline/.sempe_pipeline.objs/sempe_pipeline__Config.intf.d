lib/pipeline/config.mli: Sempe_mem
