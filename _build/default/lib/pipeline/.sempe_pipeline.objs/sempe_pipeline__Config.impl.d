lib/pipeline/config.ml: Printf Sempe_mem
