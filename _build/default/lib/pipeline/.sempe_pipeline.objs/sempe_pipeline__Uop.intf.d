lib/pipeline/uop.mli: Sempe_isa
