lib/pipeline/uop.ml: Sempe_isa
