type control =
  | Ctl_none
  | Ctl_branch of { taken : bool; target : int; secure : bool }
  | Ctl_jump of { target : int }
  | Ctl_call of { target : int; return_to : int }
  | Ctl_ret of { target : int }
  | Ctl_indirect of { target : int }
  | Ctl_jumpback of { target : int }

type t = {
  pc : int;
  cls : Sempe_isa.Instr.iclass;
  dst : Sempe_isa.Reg.t option;
  srcs : Sempe_isa.Reg.t list;
  mem_addr : int;
  control : control;
}

type drain_reason =
  | Drain_enter_secblock
  | Drain_after_nt_path
  | Drain_exit_secblock

type event =
  | Commit of t
  | Drain of { reason : drain_reason; spm_cycles : int }

let of_instr ~pc instr ~mem_addr control =
  {
    pc;
    cls = Sempe_isa.Instr.class_of instr;
    dst = Sempe_isa.Instr.dest instr;
    srcs = Sempe_isa.Instr.sources instr;
    mem_addr;
    control;
  }
