(** ASCII rendering of result tables and simple line charts.

    The benchmark harness prints each paper table/figure as an aligned text
    table (and, for the figures, an optional log-scale sparkline) so the
    regenerated rows can be compared with the paper side by side. *)

val render : header:string list -> string list list -> string
(** [render ~header rows] is an aligned table with a separator under the
    header. All rows must have the same arity as the header. *)

val print : header:string list -> string list list -> unit
(** [render] followed by printing to stdout with a trailing newline. *)

val fixed : int -> float -> string
(** [fixed d x] formats [x] with [d] decimal places. *)

val percent : float -> string
(** [percent x] formats the fraction [x] as a percentage with one decimal,
    e.g. [percent 0.314 = "31.4%"]. *)

val times : float -> string
(** [times x] formats a slowdown factor, e.g. ["10.6x"]. *)

val chart :
  title:string -> xlabel:string -> series:(string * (float * float) list) list
  -> ?log_y:bool -> unit -> string
(** [chart ~title ~xlabel ~series ()] renders each series as a row-per-x
    table with one column per series, suitable for eyeballing figure shapes
    in a terminal. [log_y] annotates that the paper's axis is logarithmic
    (values are printed as-is). *)
