lib/util/tablefmt.ml: List Printf String
