lib/util/tablefmt.mli:
