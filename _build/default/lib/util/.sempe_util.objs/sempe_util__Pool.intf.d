lib/util/pool.mli:
