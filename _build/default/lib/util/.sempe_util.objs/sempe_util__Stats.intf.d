lib/util/stats.mli:
