lib/util/bitvec.mli:
