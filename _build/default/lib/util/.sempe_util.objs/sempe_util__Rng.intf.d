lib/util/rng.mli:
