type counter = { mutable count : int }

type group = { gname : string; mutable entries : (string * counter) list }

let group gname = { gname; entries = [] }

let group_name g = g.gname

let counter g name =
  if List.mem_assoc name g.entries then
    invalid_arg (Printf.sprintf "Stats.counter: duplicate %S in group %S" name g.gname);
  let c = { count = 0 } in
  g.entries <- g.entries @ [ (name, c) ];
  c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let value c = c.count

let reset_group g = List.iter (fun (_, c) -> c.count <- 0) g.entries

let to_list g = List.map (fun (name, c) -> (name, c.count)) g.entries

let find g name = (List.assoc name g.entries).count

let ratio ~num ~den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

module Summary = struct
  (* Welford's online algorithm for mean and variance. *)
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let observe t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let n t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean

  let stddev t =
    if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

  (* Like [mean], the extrema of an empty summary are 0 rather than the
     (+/-) infinity sentinels the update step uses internally. *)
  let min t = if t.n = 0 then 0.0 else t.min
  let max t = if t.n = 0 then 0.0 else t.max
end
