let render ~header rows =
  List.iter
    (fun r ->
      if List.length r <> List.length header then
        invalid_arg "Tablefmt.render: row arity mismatch")
    rows;
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           cell ^ String.make (w - String.length cell) ' ')
         row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line header :: sep :: List.map line rows)

let print ~header rows =
  print_string (render ~header rows);
  print_newline ()

let fixed d x = Printf.sprintf "%.*f" d x

let percent x = Printf.sprintf "%.1f%%" (x *. 100.0)

let times x = Printf.sprintf "%.1fx" x

let chart ~title ~xlabel ~series ?(log_y = false) () =
  let xs =
    List.sort_uniq compare
      (List.concat_map (fun (_, pts) -> List.map fst pts) series)
  in
  let header = xlabel :: List.map fst series in
  let row x =
    let cell (_, pts) =
      match List.assoc_opt x pts with
      | Some y -> fixed 2 y
      | None -> "-"
    in
    fixed 0 x :: List.map cell series
  in
  let body = render ~header (List.map row xs) in
  let scale = if log_y then " (log-scale axis in the paper)" else "" in
  Printf.sprintf "%s%s\n%s" title scale body
