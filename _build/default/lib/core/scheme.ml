type t =
  | Baseline
  | Sempe
  | Sempe_on_legacy
  | Cte
  | Raccoon
  | Mto

let all = [ Baseline; Sempe; Sempe_on_legacy; Cte; Raccoon; Mto ]

let name = function
  | Baseline -> "baseline"
  | Sempe -> "sempe"
  | Sempe_on_legacy -> "sempe-on-legacy"
  | Cte -> "cte"
  | Raccoon -> "raccoon"
  | Mto -> "mto"

let of_string s =
  List.find_opt (fun t -> name t = String.lowercase_ascii s) all

let support = function
  | Sempe -> Exec.Sempe_hw
  | Baseline | Sempe_on_legacy | Cte | Raccoon | Mto -> Exec.Legacy

let is_protected = function
  | Sempe | Cte | Raccoon | Mto -> true
  | Baseline | Sempe_on_legacy -> false
