(** The Jump-Back Table (jbTable), §IV-E and Figure 5 of the paper.

    A hardware LIFO with one entry per in-flight secure branch. Each entry
    holds the sJMP destination address, the branch outcome (T/NT), a Valid
    bit (set when the sJMP commits and its target is known) and a Jump-Back
    bit (set when the first eosJMP has redirected fetch to the second
    SecBlock). The LIFO discipline is what lets nested secure branches be
    handled without random-access lookup: the most recent entry always
    belongs to the innermost open SecBlock. *)

type entry = {
  mutable dest : int;       (** sJMP destination address (taken target) *)
  mutable outcome : bool;   (** T/NT bit: [true] = the branch was taken *)
  mutable valid : bool;
  mutable jump_back : bool;
}

exception Overflow
(** Raised when more secure branches nest than the table has entries. *)

type t

val create : ?entries:int -> unit -> t
(** [entries] defaults to 30, matching the SPM snapshot budget. *)

val capacity : t -> int
val depth : t -> int
val is_empty : t -> bool

val can_issue_sjmp : t -> bool
(** A new sJMP may issue only when the table is empty or the most recent
    entry has its Valid bit set (step 6 in Figure 5). *)

val push : t -> entry
(** Allocate the entry for an issuing sJMP, Valid and jump_back clear.
    @raise Overflow at capacity.
    @raise Invalid_argument when {!can_issue_sjmp} is false. *)

val commit_sjmp : t -> dest:int -> outcome:bool -> unit
(** The sJMP committed: record the computed destination and outcome and set
    Valid (step 2). *)

val top : t -> entry
(** Most recent entry.  @raise Invalid_argument when empty. *)

(** Result of an eosJMP commit consulting the table (steps 3-5). *)
type eosjmp_action =
  | Jump_back of int  (** first eosJMP: redirect nextPC to the stored dest *)
  | Release           (** second eosJMP: the entry is popped *)

val on_eosjmp : t -> eosjmp_action
(** @raise Invalid_argument when the table is empty or the top entry is not
    valid (an eosJMP cannot commit before its sJMP). *)

val squash_newest : t -> unit
(** Pipeline-flush recovery: delete the most recent entry (the paper walks
    squashed sJMPs from newest to oldest). No-op when empty. *)
