type entry = {
  mutable dest : int;
  mutable outcome : bool;
  mutable valid : bool;
  mutable jump_back : bool;
}

exception Overflow

type t = { slots : entry array; mutable depth : int }

let create ?(entries = 30) () =
  {
    slots =
      Array.init entries (fun _ ->
          { dest = 0; outcome = false; valid = false; jump_back = false });
    depth = 0;
  }

let capacity t = Array.length t.slots
let depth t = t.depth
let is_empty t = t.depth = 0

let top t =
  if t.depth = 0 then invalid_arg "Jbtable.top: empty";
  t.slots.(t.depth - 1)

let can_issue_sjmp t = t.depth = 0 || (top t).valid

let push t =
  if not (can_issue_sjmp t) then
    invalid_arg "Jbtable.push: prior sJMP entry not yet valid";
  if t.depth >= capacity t then raise Overflow;
  t.depth <- t.depth + 1;
  let e = top t in
  e.dest <- 0;
  e.outcome <- false;
  e.valid <- false;
  e.jump_back <- false;
  e

let commit_sjmp t ~dest ~outcome =
  let e = top t in
  if e.valid then invalid_arg "Jbtable.commit_sjmp: already valid";
  e.dest <- dest;
  e.outcome <- outcome;
  e.valid <- true

type eosjmp_action =
  | Jump_back of int
  | Release

let on_eosjmp t =
  let e = top t in
  if not e.valid then invalid_arg "Jbtable.on_eosjmp: top entry not valid";
  if not e.jump_back then begin
    e.jump_back <- true;
    Jump_back e.dest
  end
  else begin
    t.depth <- t.depth - 1;
    Release
  end

let squash_newest t = if t.depth > 0 then t.depth <- t.depth - 1
