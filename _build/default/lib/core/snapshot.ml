open Sempe_util

type frame = {
  pre_state : int array;
  nt_state : int array;
  nt_modified : Bitvec.t;
  t_modified : Bitvec.t;
  outcome : bool;
}

type phase = Nt_path | T_path

type live = { frame : frame; mutable phase : phase }

type t = { mutable stack : live list; mutable depth : int }

let create () = { stack = []; depth = 0 }

let depth t = t.depth

let push t ~regs ~outcome =
  let nregs = Array.length regs in
  let frame =
    {
      pre_state = Array.copy regs;
      nt_state = Array.make nregs 0;
      nt_modified = Bitvec.create nregs;
      t_modified = Bitvec.create nregs;
      outcome;
    }
  in
  t.stack <- { frame; phase = Nt_path } :: t.stack;
  t.depth <- t.depth + 1

let top t =
  match t.stack with
  | [] -> invalid_arg "Snapshot: no open SecBlock"
  | live :: _ -> live

let current_phase t = (top t).phase

let note_write t r =
  match t.stack with
  | [] -> ()
  | live :: _ ->
    let v =
      match live.phase with
      | Nt_path -> live.frame.nt_modified
      | T_path -> live.frame.t_modified
    in
    Bitvec.set v r

let end_nt_path t ~regs =
  let live = top t in
  if live.phase <> Nt_path then invalid_arg "Snapshot.end_nt_path: not in NT path";
  let f = live.frame in
  Array.blit regs 0 f.nt_state 0 (Array.length regs);
  (* Roll the live registers back to the pre-state so the T path starts from
     the same state the NT path did. *)
  Bitvec.iter_set (fun r -> regs.(r) <- f.pre_state.(r)) f.nt_modified;
  live.phase <- T_path;
  Bitvec.popcount f.nt_modified

let finish t ~regs =
  let live = top t in
  if live.phase <> T_path then invalid_arg "Snapshot.finish: NT path still open";
  let f = live.frame in
  let union = Bitvec.union f.nt_modified f.t_modified in
  if not f.outcome then
    (* The NT path is the true path: registers it modified take their
       NT-state values; registers modified only by the (wrong) T path roll
       back to the pre-state. When the outcome is taken, the current values
       (the T path's results) are already correct — the hardware still reads
       every modified register from the SPM and overwrites it with itself so
       the restore cost cannot leak the outcome. *)
    Bitvec.iter_set
      (fun r ->
        if Bitvec.get f.nt_modified r then regs.(r) <- f.nt_state.(r)
        else regs.(r) <- f.pre_state.(r))
      union;
  (match t.stack with
   | _ :: (parent :: _ as rest) ->
     let pv =
       match parent.phase with
       | Nt_path -> parent.frame.nt_modified
       | T_path -> parent.frame.t_modified
     in
     Bitvec.iter_set (fun r -> Bitvec.set pv r) union;
     t.stack <- rest
   | _ :: [] -> t.stack <- []
   | [] -> assert false);
  t.depth <- t.depth - 1;
  Bitvec.popcount union
