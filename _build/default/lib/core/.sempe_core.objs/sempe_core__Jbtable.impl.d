lib/core/jbtable.ml: Array
