lib/core/snapshot.mli: Bitvec Sempe_isa Sempe_util
