lib/core/jbtable.mli:
