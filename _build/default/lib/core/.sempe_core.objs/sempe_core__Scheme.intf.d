lib/core/scheme.mli: Exec
