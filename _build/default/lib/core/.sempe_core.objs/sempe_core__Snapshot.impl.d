lib/core/snapshot.ml: Array Bitvec Sempe_util
