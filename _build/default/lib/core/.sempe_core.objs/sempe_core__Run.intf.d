lib/core/run.mli: Exec Sempe_bpred Sempe_isa Sempe_pipeline
