lib/core/scheme.ml: Exec List String
