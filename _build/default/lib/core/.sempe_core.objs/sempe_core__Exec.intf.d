lib/core/exec.mli: Sempe_isa Sempe_mem Sempe_pipeline
