lib/core/exec.ml: Array Instr Jbtable Program Reg Sempe_isa Sempe_mem Sempe_pipeline Snapshot
