lib/core/run.ml: Exec Sempe_pipeline Sempe_util
