(** Functional (architectural) execution with SeMPE semantics.

    Runs a program to [Halt], maintaining registers and memory, and streams
    one {!Sempe_pipeline.Uop.event} per committed instruction to an optional
    sink (normally the timing model).

    Under {!Sempe_hw} support, a secure branch triggers the paper's
    multi-path protocol: the branch outcome is recorded in the jbTable, the
    architectural registers are snapshotted to the SPM, the not-taken path
    executes first, the first eosJMP jumps back to the taken target, and the
    second eosJMP merges register state according to the outcome. Memory is
    never snapshotted — programs must privatize memory written under secure
    branches (the ShadowMemory pass), exactly as in the paper.

    Under {!Legacy} support the SecPrefix is ignored: secure branches
    behave as ordinary predicted branches and [Eosjmp] decodes as a NOP,
    demonstrating the ISA's backward compatibility (§IV-C). *)

type support = Legacy | Sempe_hw

type config = {
  support : support;
  mem_words : int;       (** memory size in words; the stack grows from the top *)
  max_instrs : int;      (** dynamic instruction budget; exceeding it fails *)
  spm : Sempe_mem.Spm.config;
  jbtable_entries : int;
  forgiving_oob : bool;
  (** when [true], out-of-bounds loads return 0 and out-of-bounds stores are
      dropped (their cache address is clamped); when [false] they fail. The
      paper's threat model assumes wrong paths do not fault, but synthetic
      wrong-path code may compute junk addresses. *)
}

val default_config : config
(** [Sempe_hw], 1 MiB of words, 200M instruction budget, Table II SPM. *)

exception Out_of_bounds of { pc : int; addr : int }
exception Budget_exceeded of int

type result = {
  regs : int array;        (** architectural registers at [Halt] *)
  memory : int array;      (** final memory image *)
  dyn_instrs : int;        (** committed instructions *)
  dyn_sjmps : int;         (** committed secure branches *)
  max_nesting : int;       (** deepest secure-branch nesting reached *)
  spm : Sempe_mem.Spm.t;   (** the SPM, for its transfer statistics *)
}

val run :
  ?config:config
  -> ?init_mem:(int array -> unit)
  -> ?sink:(Sempe_pipeline.Uop.event -> unit)
  -> Sempe_isa.Program.t
  -> result
(** @raise Sempe_mem.Spm.Overflow or {!Jbtable.Overflow} when secure
    branches nest beyond the hardware budget.
    @raise Out_of_bounds on a wild access when [forgiving_oob] is false.
    @raise Budget_exceeded when [max_instrs] is hit. *)

(** {2 Resumable execution}

    The co-residence attacks interleave a victim with an attacker sharing
    the machine: start a session, advance it a time slice at a time, and
    let the attacker inspect the shared microarchitectural state between
    slices. *)

type session

val start :
  ?config:config
  -> ?init_mem:(int array -> unit)
  -> ?sink:(Sempe_pipeline.Uop.event -> unit)
  -> Sempe_isa.Program.t
  -> session

val step_slice : session -> int -> bool
(** [step_slice s n] executes up to [n] further instructions; returns
    [true] once the program has halted. Raises like {!run}. *)

val halted : session -> bool
val instructions : session -> int

val finish : session -> result
(** Run to completion (if not already halted) and package the result. *)
