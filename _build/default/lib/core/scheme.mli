(** The protection schemes compared in the paper (Table I).

    A scheme names a (program transformation, hardware support) pair; the
    workload library knows how to produce the program variant for each
    scheme and {!Run} executes it. *)

type t =
  | Baseline          (** unprotected program, plain hardware — leaks *)
  | Sempe             (** sJMP-annotated + ShadowMemory, SeMPE hardware *)
  | Sempe_on_legacy   (** the same annotated binary on legacy hardware:
                          runs correctly and overhead-free, but without the
                          security guarantee (backward compatibility, §IV-C) *)
  | Cte               (** constant-time-expression transform (FaCT-style),
                          plain hardware *)
  | Raccoon           (** software dual-path execution with per-memory-op
                          transaction overhead, plain hardware *)
  | Mto               (** memory-trace obliviousness: path equalization and
                          ORAM-factor memory accesses, plain hardware *)

val all : t list
val name : t -> string
val of_string : string -> t option
val support : t -> Exec.support
(** Hardware support the scheme requires. *)

val is_protected : t -> bool
(** Whether the scheme claims to remove SDBCB (everything except [Baseline]
    and [Sempe_on_legacy]). *)
