open Ast
open Sempe_isa
module I = Instr

type layout = {
  scalars : (string * int) list;
  arrays : (string * (int * int)) list;
  data_words : int;
}

let scalar_offset layout name = List.assoc name layout.scalars
let array_slice layout name = List.assoc name layout.arrays

let make_layout prog =
  let off = ref 0 in
  let scalars =
    List.map
      (fun g ->
        let o = !off in
        incr off;
        (g, o))
      prog.globals
  in
  let arrays =
    List.map
      (fun a ->
        let o = !off in
        off := !off + a.size;
        (a.aname, (o, a.size)))
      prog.arrays
  in
  { scalars; arrays; data_words = !off }

(* Where a scalar lives inside a function: a stack slot at sp+offset, or a
   global at gp+offset. *)
type location = Stack of int | Global of int

type fenv = {
  locate : string -> location;
  exit_label : string;
}

let binop_to_alu = function
  | Add -> Some I.Add
  | Sub -> Some I.Sub
  | Mul -> Some I.Mul
  | Div -> Some I.Div
  | Rem -> Some I.Rem
  | Band -> Some I.And
  | Bor -> Some I.Or
  | Bxor -> Some I.Xor
  | Shl -> Some I.Shl
  | Shr -> Some I.Shr
  | Lt -> Some I.Slt
  | Le -> Some I.Sle
  | Eq -> Some I.Seq
  | Ne -> Some I.Sne
  | Gt | Ge | Land | Lor -> None

type ctx = {
  b : Builder.t;
  layout : layout;
  prog : program;
}

(* Evaluate [e] into register [dst]; registers below [dst] are preserved,
   registers at and above [dst] are clobbered. *)
let rec eval_expr ctx fenv e ~dst =
  if dst + 2 > Reg.last_temp then
    invalid_arg "Codegen: expression too deep (normalization failed?)";
  let b = ctx.b in
  match e with
  | Int n -> Builder.li b dst n
  | Var x -> (
    match fenv.locate x with
    | Stack off -> Builder.ld b dst Reg.sp off
    | Global off -> Builder.ld b dst Reg.gp off)
  | Index (a, ie) ->
    let off, _size = array_slice ctx.layout a in
    eval_expr ctx fenv ie ~dst;
    Builder.alu b I.Add dst dst Reg.gp;
    Builder.ld b dst dst off
  | Unop (Neg, e1) ->
    eval_expr ctx fenv e1 ~dst;
    Builder.alu b I.Sub dst Reg.zero dst
  | Unop (Lnot, e1) ->
    eval_expr ctx fenv e1 ~dst;
    Builder.alui b I.Seq dst dst 0
  | Binop (Gt, a, e2) ->
    (* a > b  ==  b < a *)
    eval_expr ctx fenv a ~dst;
    eval_expr ctx fenv e2 ~dst:(dst + 1);
    Builder.alu b I.Slt dst (dst + 1) dst
  | Binop (Ge, a, e2) ->
    eval_expr ctx fenv a ~dst;
    eval_expr ctx fenv e2 ~dst:(dst + 1);
    Builder.alu b I.Sle dst (dst + 1) dst
  | Binop (Land, a, e2) ->
    eval_expr ctx fenv a ~dst;
    Builder.alui b I.Sne dst dst 0;
    eval_expr ctx fenv e2 ~dst:(dst + 1);
    Builder.alui b I.Sne (dst + 1) (dst + 1) 0;
    Builder.alu b I.And dst dst (dst + 1)
  | Binop (Lor, a, e2) ->
    eval_expr ctx fenv a ~dst;
    Builder.alui b I.Sne dst dst 0;
    eval_expr ctx fenv e2 ~dst:(dst + 1);
    Builder.alui b I.Sne (dst + 1) (dst + 1) 0;
    Builder.alu b I.Or dst dst (dst + 1)
  | Binop (op, a, e2) -> (
    match binop_to_alu op with
    | Some alu ->
      eval_expr ctx fenv a ~dst;
      eval_expr ctx fenv e2 ~dst:(dst + 1);
      Builder.alu b alu dst dst (dst + 1)
    | None -> assert false)
  | Select (c, a, e2) ->
    (* dst <- e2; if c then dst <- a : all three always evaluated. *)
    eval_expr ctx fenv e2 ~dst;
    eval_expr ctx fenv c ~dst:(dst + 1);
    eval_expr ctx fenv a ~dst:(dst + 2);
    Builder.cmov b dst (dst + 1) (dst + 2)
  | Call (f, args) -> eval_call ctx fenv f args ~dst

(* Normalization guarantees atomic call arguments, but evaluating through
   the window keeps this robust for hand-written ASTs too: all arguments
   are evaluated before sp moves, so stack-relative slots stay valid. *)
and eval_call ctx fenv f args ~dst =
  let b = ctx.b in
  let nargs = List.length args in
  if dst + nargs > Reg.last_temp then
    invalid_arg (Printf.sprintf "Codegen: too many arguments in call to %S" f);
  List.iteri (fun k arg -> eval_expr ctx fenv arg ~dst:(dst + k)) args;
  if nargs > 0 then Builder.alui b I.Add Reg.sp Reg.sp (-nargs);
  List.iteri (fun k _ -> Builder.st b (dst + k) Reg.sp k) args;
  Builder.call b ("fn_" ^ f);
  if nargs > 0 then Builder.alui b I.Add Reg.sp Reg.sp nargs;
  Builder.mov b dst Reg.rv

let store_scalar ctx fenv x ~src =
  match fenv.locate x with
  | Stack off -> Builder.st ctx.b src Reg.sp off
  | Global off -> Builder.st ctx.b src Reg.gp off

let t0 = Reg.first_temp

let rec gen_block ctx fenv block = List.iter (gen_stmt ctx fenv) block

and gen_stmt ctx fenv stmt =
  let b = ctx.b in
  match stmt with
  | Assign (x, e) ->
    eval_expr ctx fenv e ~dst:t0;
    store_scalar ctx fenv x ~src:t0
  | Store (a, ie, e) ->
    let off, _size = array_slice ctx.layout a in
    eval_expr ctx fenv ie ~dst:t0;
    Builder.alu b I.Add t0 t0 Reg.gp;
    eval_expr ctx fenv e ~dst:(t0 + 1);
    Builder.st b (t0 + 1) t0 off
  | Expr e -> eval_expr ctx fenv e ~dst:t0
  | Return e ->
    eval_expr ctx fenv e ~dst:t0;
    Builder.mov b Reg.rv t0;
    Builder.jmp b fenv.exit_label
  | If { secret = false; cond; then_; else_ } ->
    let else_l = Builder.fresh_label b "else" in
    let end_l = Builder.fresh_label b "endif" in
    eval_expr ctx fenv cond ~dst:t0;
    Builder.br b I.Eq t0 Reg.zero else_l;
    gen_block ctx fenv then_;
    Builder.jmp b end_l;
    Builder.bind b else_l;
    gen_block ctx fenv else_;
    Builder.bind b end_l;
    Builder.nop b
  | If { secret = true; cond; then_; else_ } ->
    (* sJMP: taken target = then-block (the T path); fall-through =
       else-block (the NT path, always executed first); both paths meet at
       a single eosJMP. *)
    let then_l = Builder.fresh_label b "sec_t" in
    let join_l = Builder.fresh_label b "sec_join" in
    eval_expr ctx fenv cond ~dst:t0;
    Builder.br b ~secure:true I.Ne t0 Reg.zero then_l;
    gen_block ctx fenv else_;
    Builder.jmp b join_l;
    Builder.bind b then_l;
    gen_block ctx fenv then_;
    Builder.bind b join_l;
    Builder.eosjmp b
  | While (cond, body) ->
    let head_l = Builder.fresh_label b "while" in
    let end_l = Builder.fresh_label b "wend" in
    Builder.bind b head_l;
    eval_expr ctx fenv cond ~dst:t0;
    Builder.br b I.Eq t0 Reg.zero end_l;
    gen_block ctx fenv body;
    Builder.jmp b head_l;
    Builder.bind b end_l;
    Builder.nop b
  | For (x, lo, hi, body) ->
    (* Normalization lowers For to While; support direct For anyway for
       hand-written ASTs, with the bound re-evaluated each iteration. *)
    let head_l = Builder.fresh_label b "for" in
    let end_l = Builder.fresh_label b "fend" in
    eval_expr ctx fenv lo ~dst:t0;
    store_scalar ctx fenv x ~src:t0;
    Builder.bind b head_l;
    eval_expr ctx fenv (Binop (Lt, Var x, hi)) ~dst:t0;
    Builder.br b I.Eq t0 Reg.zero end_l;
    gen_block ctx fenv body;
    eval_expr ctx fenv (Binop (Add, Var x, Int 1)) ~dst:t0;
    store_scalar ctx fenv x ~src:t0;
    Builder.jmp b head_l;
    Builder.bind b end_l;
    Builder.nop b

let gen_func ctx f =
  let b = ctx.b in
  let nlocals = List.length f.locals in
  (* Frame after the prologue (sp decremented by 1 + nlocals):
       sp+0 .. sp+nlocals-1      locals
       sp+nlocals                saved ra
       sp+nlocals+1 .. +nparams  arguments (pushed by the caller)      *)
  let locate =
    let slots = Hashtbl.create 16 in
    List.iteri (fun k l -> Hashtbl.replace slots l (Stack k)) f.locals;
    List.iteri (fun k p -> Hashtbl.replace slots p (Stack (nlocals + 1 + k))) f.params;
    fun x ->
      match Hashtbl.find_opt slots x with
      | Some loc -> loc
      | None -> (
        match List.assoc_opt x ctx.layout.scalars with
        | Some off -> Global off
        | None -> invalid_arg (Printf.sprintf "Codegen: unbound scalar %S" x))
  in
  let exit_label = "fn_" ^ f.fname ^ "_exit" in
  let fenv = { locate; exit_label } in
  Builder.bind b ("fn_" ^ f.fname);
  Builder.alui b I.Add Reg.sp Reg.sp (-(nlocals + 1));
  Builder.st b Reg.ra Reg.sp nlocals;
  (* zero-initialize locals: the language guarantees fresh locals read 0 *)
  List.iteri (fun k _ -> Builder.st b Reg.zero Reg.sp k) f.locals;
  gen_block ctx fenv f.body;
  Builder.li b Reg.rv 0;
  Builder.bind b exit_label;
  Builder.ld b Reg.ra Reg.sp nlocals;
  Builder.alui b I.Add Reg.sp Reg.sp (nlocals + 1);
  Builder.ret b

let compile prog =
  validate prog;
  let prog = Normalize.program prog in
  validate prog;
  let layout = make_layout prog in
  let b = Builder.create () in
  let ctx = { b; layout; prog } in
  Builder.bind b "entry";
  Builder.call b ("fn_" ^ prog.main);
  Builder.halt b;
  List.iter (gen_func ctx) prog.funcs;
  (Builder.assemble b ~entry:"entry" ~data_words:layout.data_words, layout)
