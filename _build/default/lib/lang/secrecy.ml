open Ast

type violation =
  | Unmarked_branch of { func : string; cond : string }
  | Secret_loop of { func : string; cond : string }
  | Secret_index of { func : string; expr : string }
  | Useless_annotation of { func : string; cond : string }
  | Potential_exception of { func : string; expr : string }

let expr_str e = Format.asprintf "%a" pp_expr e

let describe = function
  | Unmarked_branch { func; cond } ->
    Printf.sprintf "%s: branch on secret-tainted condition %s is not marked @secret"
      func cond
  | Secret_loop { func; cond } ->
    Printf.sprintf "%s: loop bound/condition %s depends on a secret" func cond
  | Secret_index { func; expr } ->
    Printf.sprintf
      "%s: array index %s depends on a secret (address-pattern leak; needs ORAM)"
      func expr
  | Useless_annotation { func; cond } ->
    Printf.sprintf "%s: @secret annotation on untainted condition %s" func cond
  | Potential_exception { func; expr } ->
    Printf.sprintf
      "%s: %s inside a secret branch may fault on the wrong path (divisor \
       not a nonzero constant)" func expr

(* Taint state: a scalar is identified as "func/name" for locals and params,
   "/name" for globals; arrays and function returns by name. *)
type taint = {
  mutable scalars : Sset.t;
  mutable arrays : Sset.t;
  mutable returns : Sset.t;
  mutable changed : bool;
}

let scalar_key prog func name =
  if List.mem name prog.globals then "/" ^ name else func ^ "/" ^ name

let add_scalar t key =
  if not (Sset.mem key t.scalars) then begin
    t.scalars <- Sset.add key t.scalars;
    t.changed <- true
  end

let add_array t name =
  if not (Sset.mem name t.arrays) then begin
    t.arrays <- Sset.add name t.arrays;
    t.changed <- true
  end

let add_return t name =
  if not (Sset.mem name t.returns) then begin
    t.returns <- Sset.add name t.returns;
    t.changed <- true
  end

let rec expr_tainted prog t func = function
  | Int _ -> false
  | Var x -> Sset.mem (scalar_key prog func x) t.scalars
  | Index (a, ie) -> Sset.mem a t.arrays || expr_tainted prog t func ie
  | Unop (_, e) -> expr_tainted prog t func e
  | Binop (_, a, b) -> expr_tainted prog t func a || expr_tainted prog t func b
  | Call (g, args) ->
    (* Propagate argument taint into the callee's params as a side effect. *)
    (try
       let callee = find_func prog g in
       List.iter2
         (fun p arg ->
           if expr_tainted prog t func arg then
             add_scalar t (scalar_key prog g p))
         callee.params args
     with Not_found | Invalid_argument _ -> ());
    Sset.mem g t.returns
  | Select (c, a, b) ->
    expr_tainted prog t func c || expr_tainted prog t func a
    || expr_tainted prog t func b

(* One propagation sweep over a block. [implicit] is true when control
   reaching this block depends on a secret. *)
let rec sweep_block prog t func ~implicit block =
  List.iter (sweep_stmt prog t func ~implicit) block

and sweep_stmt prog t func ~implicit stmt =
  let tainted e = expr_tainted prog t func e in
  match stmt with
  | Assign (x, e) ->
    if implicit || tainted e then add_scalar t (scalar_key prog func x)
  | Store (a, ie, e) ->
    ignore (tainted ie);
    if implicit || tainted e then add_array t a
  | If { cond; then_; else_; _ } ->
    let implicit' = implicit || tainted cond in
    sweep_block prog t func ~implicit:implicit' then_;
    sweep_block prog t func ~implicit:implicit' else_
  | While (cond, body) ->
    let implicit' = implicit || tainted cond in
    sweep_block prog t func ~implicit:implicit' body
  | For (x, lo, hi, body) ->
    if implicit || tainted lo || tainted hi then
      add_scalar t (scalar_key prog func x);
    sweep_block prog t func ~implicit body
  | Expr e -> ignore (tainted e)
  | Return e -> if implicit || tainted e then add_return t func

let fixpoint prog =
  let t =
    {
      scalars = Sset.of_list (List.map (fun s -> "/" ^ s) prog.secrets);
      arrays = Sset.empty;
      returns = Sset.empty;
      changed = true;
    }
  in
  while t.changed do
    t.changed <- false;
    List.iter (fun f -> sweep_block prog t f.fname ~implicit:false f.body) prog.funcs
  done;
  t

let analyze prog =
  validate prog;
  let t = fixpoint prog in
  let violations = ref [] in
  let note v = violations := v :: !violations in
  let rec scan_index func e =
    match e with
    | Int _ | Var _ -> ()
    | Index (_, ie) ->
      if expr_tainted prog t func ie then
        note (Secret_index { func; expr = expr_str ie });
      scan_index func ie
    | Unop (_, e1) -> scan_index func e1
    | Binop (_, a, b) ->
      scan_index func a;
      scan_index func b
    | Call (_, args) -> List.iter (scan_index func) args
    | Select (c, a, b) ->
      scan_index func c;
      scan_index func a;
      scan_index func b
  in
  let rec scan_block func block = List.iter (scan_stmt func) block
  and scan_stmt func stmt =
    let tainted e = expr_tainted prog t func e in
    match stmt with
    | Assign (_, e) | Expr e | Return e -> scan_index func e
    | Store (_, ie, e) ->
      if tainted ie then note (Secret_index { func; expr = expr_str ie });
      scan_index func ie;
      scan_index func e
    | If { secret; cond; then_; else_ } ->
      scan_index func cond;
      if tainted cond && not secret then
        note (Unmarked_branch { func; cond = expr_str cond });
      if secret && not (tainted cond) then
        note (Useless_annotation { func; cond = expr_str cond });
      scan_block func then_;
      scan_block func else_
    | While (cond, body) ->
      scan_index func cond;
      if tainted cond then note (Secret_loop { func; cond = expr_str cond });
      scan_block func body
    | For (_, lo, hi, body) ->
      scan_index func lo;
      scan_index func hi;
      if tainted lo || tainted hi then
        note
          (Secret_loop
             { func; cond = expr_str lo ^ " .. " ^ expr_str hi });
      scan_block func body
  in
  List.iter (fun f -> scan_block f.fname f.body) prog.funcs;
  (* divisions on the wrong path (section IV-G) *)
  let rec div_expr func = function
    | Int _ | Var _ -> ()
    | Index (_, e) | Unop (_, e) -> div_expr func e
    | Binop ((Div | Rem), a, b) ->
      (match b with
       | Int n when n <> 0 -> ()
       | _ -> note (Potential_exception { func; expr = expr_str (Binop (Div, a, b)) }));
      div_expr func a;
      div_expr func b
    | Binop (_, a, b) ->
      div_expr func a;
      div_expr func b
    | Call (_, args) -> List.iter (div_expr func) args
    | Select (c, a, b) ->
      div_expr func c;
      div_expr func a;
      div_expr func b
  in
  let rec div_block func ~in_secret block = List.iter (div_stmt func ~in_secret) block
  and div_stmt func ~in_secret = function
    | Assign (_, e) | Expr e | Return e -> if in_secret then div_expr func e
    | Store (_, ie, e) ->
      if in_secret then begin
        div_expr func ie;
        div_expr func e
      end
    | If { secret; cond; then_; else_ } ->
      if in_secret then div_expr func cond;
      let inner = in_secret || secret in
      div_block func ~in_secret:inner then_;
      div_block func ~in_secret:inner else_
    | While (cond, body) ->
      if in_secret then div_expr func cond;
      div_block func ~in_secret body
    | For (_, lo, hi, body) ->
      if in_secret then begin
        div_expr func lo;
        div_expr func hi
      end;
      div_block func ~in_secret body
  in
  List.iter (fun f -> div_block f.fname ~in_secret:false f.body) prog.funcs;
  List.rev !violations

let auto_annotate prog =
  validate prog;
  let t = fixpoint prog in
  let loop_violations = ref [] in
  let annotate_func f =
    let tainted e = expr_tainted prog t f.fname e in
    let rec block b = List.map stmt b
    and stmt = function
      | If { secret; cond; then_; else_ } ->
        If
          {
            secret = secret || tainted cond;
            cond;
            then_ = block then_;
            else_ = block else_;
          }
      | While (cond, body) ->
        if tainted cond then
          loop_violations :=
            Secret_loop { func = f.fname; cond = expr_str cond } :: !loop_violations;
        While (cond, block body)
      | For (x, lo, hi, body) ->
        if tainted lo || tainted hi then
          loop_violations :=
            Secret_loop { func = f.fname; cond = expr_str lo ^ " .. " ^ expr_str hi }
            :: !loop_violations;
        For (x, lo, hi, block body)
      | (Assign _ | Store _ | Expr _ | Return _) as s -> s
    in
    { f with body = block f.body }
  in
  let funcs = List.map annotate_func prog.funcs in
  (match !loop_violations with
   | [] -> ()
   | vs ->
     invalid_arg
       ("Secrecy.auto_annotate: " ^ String.concat "; " (List.map describe vs)));
  { prog with funcs }

let check prog =
  let hard = function
    | Unmarked_branch _ | Secret_loop _ -> true
    | Secret_index _ | Useless_annotation _ | Potential_exception _ -> false
  in
  match List.filter hard (analyze prog) with
  | [] -> ()
  | vs ->
    invalid_arg
      ("Secrecy.check: " ^ String.concat "; " (List.map describe vs))
