type unop = Neg | Lnot

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor

type expr =
  | Int of int
  | Var of string
  | Index of string * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Select of expr * expr * expr

type stmt =
  | Assign of string * expr
  | Store of string * expr * expr
  | If of { secret : bool; cond : expr; then_ : block; else_ : block }
  | While of expr * block
  | For of string * expr * expr * block
  | Expr of expr
  | Return of expr

and block = stmt list

type func = {
  fname : string;
  params : string list;
  locals : string list;
  body : block;
}

type array_decl = { aname : string; size : int; scratch : bool }

type program = {
  funcs : func list;
  globals : string list;
  arrays : array_decl list;
  secrets : string list;
  main : string;
}

let i n = Int n
let v name = Var name
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( %: ) a b = Binop (Rem, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >: ) a b = Binop (Gt, a, b)
let ( >=: ) a b = Binop (Ge, a, b)
let ( =: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( &&: ) a b = Binop (Land, a, b)
let ( ||: ) a b = Binop (Lor, a, b)
let idx name e = Index (name, e)
let assign name e = Assign (name, e)
let store name ie e = Store (name, ie, e)
let if_ ?(secret = false) cond then_ else_ = If { secret; cond; then_; else_ }
let while_ cond body = While (cond, body)
let for_ var lo hi body = For (var, lo, hi, body)
let ret e = Return e
let call f args = Call (f, args)

module Sset = Set.Make (String)

let rec expr_reads = function
  | Int _ -> Sset.empty
  | Var x -> Sset.singleton x
  | Index (_, e) -> expr_reads e
  | Unop (_, e) -> expr_reads e
  | Binop (_, a, b) -> Sset.union (expr_reads a) (expr_reads b)
  | Call (_, args) ->
    List.fold_left (fun acc e -> Sset.union acc (expr_reads e)) Sset.empty args
  | Select (c, a, b) ->
    Sset.union (expr_reads c) (Sset.union (expr_reads a) (expr_reads b))

let rec expr_arrays = function
  | Int _ | Var _ -> Sset.empty
  | Index (a, e) -> Sset.add a (expr_arrays e)
  | Unop (_, e) -> expr_arrays e
  | Binop (_, a, b) -> Sset.union (expr_arrays a) (expr_arrays b)
  | Call (_, args) ->
    List.fold_left (fun acc e -> Sset.union acc (expr_arrays e)) Sset.empty args
  | Select (c, a, b) ->
    Sset.union (expr_arrays c) (Sset.union (expr_arrays a) (expr_arrays b))

let rec expr_has_call = function
  | Int _ | Var _ -> false
  | Index (_, e) | Unop (_, e) -> expr_has_call e
  | Binop (_, a, b) -> expr_has_call a || expr_has_call b
  | Call _ -> true
  | Select (c, a, b) -> expr_has_call c || expr_has_call a || expr_has_call b

let rec stmt_fold f acc stmt =
  let acc = f acc stmt in
  match stmt with
  | Assign _ | Store _ | Expr _ | Return _ -> acc
  | If { then_; else_; _ } -> block_fold f (block_fold f acc then_) else_
  | While (_, body) | For (_, _, _, body) -> block_fold f acc body

and block_fold f acc block = List.fold_left (stmt_fold f) acc block

let block_assigned block =
  block_fold
    (fun acc stmt ->
      match stmt with
      | Assign (x, _) -> Sset.add x acc
      | For (x, _, _, _) -> Sset.add x acc
      | Store _ | If _ | While _ | Expr _ | Return _ -> acc)
    Sset.empty block

let block_reads block =
  block_fold
    (fun acc stmt ->
      let add e = Sset.union acc (expr_reads e) in
      match stmt with
      | Assign (_, e) | Expr e | Return e -> add e
      | Store (_, ie, e) -> Sset.union (add ie) (expr_reads e)
      | If { cond; _ } -> add cond
      | While (cond, _) -> add cond
      | For (_, lo, hi, _) -> Sset.union (add lo) (expr_reads hi))
    Sset.empty block

let block_stored_arrays block =
  block_fold
    (fun acc stmt ->
      match stmt with
      | Store (a, _, _) -> Sset.add a acc
      | Assign _ | If _ | While _ | For _ | Expr _ | Return _ -> acc)
    Sset.empty block

let block_read_arrays block =
  block_fold
    (fun acc stmt ->
      let add e = Sset.union acc (expr_arrays e) in
      match stmt with
      | Assign (_, e) | Expr e | Return e -> add e
      | Store (_, ie, e) -> Sset.union (add ie) (expr_arrays e)
      | If { cond; _ } -> add cond
      | While (cond, _) -> add cond
      | For (_, lo, hi, _) -> Sset.union (add lo) (expr_arrays hi))
    Sset.empty block

let rec subst_scalar_expr ~old ~fresh = function
  | Int n -> Int n
  | Var x -> Var (if x = old then fresh else x)
  | Index (a, e) -> Index (a, subst_scalar_expr ~old ~fresh e)
  | Unop (op, e) -> Unop (op, subst_scalar_expr ~old ~fresh e)
  | Binop (op, a, b) ->
    Binop (op, subst_scalar_expr ~old ~fresh a, subst_scalar_expr ~old ~fresh b)
  | Call (f, args) -> Call (f, List.map (subst_scalar_expr ~old ~fresh) args)
  | Select (c, a, b) ->
    Select
      ( subst_scalar_expr ~old ~fresh c,
        subst_scalar_expr ~old ~fresh a,
        subst_scalar_expr ~old ~fresh b )

let rec subst_scalar ~old ~fresh block =
  let se = subst_scalar_expr ~old ~fresh in
  let sub_stmt = function
    | Assign (x, e) -> Assign ((if x = old then fresh else x), se e)
    | Store (a, ie, e) -> Store (a, se ie, se e)
    | If { secret; cond; then_; else_ } ->
      If
        {
          secret;
          cond = se cond;
          then_ = subst_scalar ~old ~fresh then_;
          else_ = subst_scalar ~old ~fresh else_;
        }
    | While (cond, body) -> While (se cond, subst_scalar ~old ~fresh body)
    | For (x, lo, hi, body) ->
      For ((if x = old then fresh else x), se lo, se hi, subst_scalar ~old ~fresh body)
    | Expr e -> Expr (se e)
    | Return e -> Return (se e)
  in
  List.map sub_stmt block

let rec subst_array_expr ~old ~fresh = function
  | Int n -> Int n
  | Var x -> Var x
  | Index (a, e) ->
    Index ((if a = old then fresh else a), subst_array_expr ~old ~fresh e)
  | Unop (op, e) -> Unop (op, subst_array_expr ~old ~fresh e)
  | Binop (op, a, b) ->
    Binop (op, subst_array_expr ~old ~fresh a, subst_array_expr ~old ~fresh b)
  | Call (f, args) -> Call (f, List.map (subst_array_expr ~old ~fresh) args)
  | Select (c, a, b) ->
    Select
      ( subst_array_expr ~old ~fresh c,
        subst_array_expr ~old ~fresh a,
        subst_array_expr ~old ~fresh b )

let rec subst_array ~old ~fresh block =
  let se = subst_array_expr ~old ~fresh in
  let sub_stmt = function
    | Assign (x, e) -> Assign (x, se e)
    | Store (a, ie, e) -> Store ((if a = old then fresh else a), se ie, se e)
    | If { secret; cond; then_; else_ } ->
      If
        {
          secret;
          cond = se cond;
          then_ = subst_array ~old ~fresh then_;
          else_ = subst_array ~old ~fresh else_;
        }
    | While (cond, body) -> While (se cond, subst_array ~old ~fresh body)
    | For (x, lo, hi, body) -> For (x, se lo, se hi, subst_array ~old ~fresh body)
    | Expr e -> Expr (se e)
    | Return e -> Return (se e)
  in
  List.map sub_stmt block

let find_func prog name =
  match List.find_opt (fun f -> f.fname = name) prog.funcs with
  | Some f -> f
  | None -> raise Not_found

let validate prog =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let arrays = List.map (fun a -> a.aname) prog.arrays in
  let funcs = List.map (fun f -> (f.fname, List.length f.params)) prog.funcs in
  List.iter
    (fun s ->
      if not (List.mem s prog.globals) then fail "secret %S is not a global" s)
    prog.secrets;
  if not (List.mem_assoc prog.main funcs) then fail "main %S not defined" prog.main;
  if List.assoc prog.main funcs <> 0 then fail "main %S must take no arguments" prog.main;
  let check_func f =
    let scalars =
      Sset.union (Sset.of_list prog.globals)
        (Sset.union (Sset.of_list f.params) (Sset.of_list f.locals))
    in
    let check_scalar x =
      if not (Sset.mem x scalars) then
        fail "function %S: undeclared scalar %S" f.fname x
    in
    let check_array a =
      if not (List.mem a arrays) then
        fail "function %S: undeclared array %S" f.fname a
    in
    let rec check_expr = function
      | Int _ -> ()
      | Var x -> check_scalar x
      | Index (a, e) ->
        check_array a;
        check_expr e
      | Unop (_, e) -> check_expr e
      | Binop (_, a, b) ->
        check_expr a;
        check_expr b
      | Call (g, args) ->
        (match List.assoc_opt g funcs with
         | None -> fail "function %S: call to undefined %S" f.fname g
         | Some arity ->
           if arity <> List.length args then
             fail "function %S: %S expects %d arguments, got %d" f.fname g arity
               (List.length args));
        List.iter check_expr args
      | Select (c, a, b) ->
        check_expr c;
        check_expr a;
        check_expr b
    in
    let rec check_stmt = function
      | Assign (x, e) ->
        check_scalar x;
        check_expr e
      | Store (a, ie, e) ->
        check_array a;
        check_expr ie;
        check_expr e
      | If { cond; then_; else_; _ } ->
        check_expr cond;
        List.iter check_stmt then_;
        List.iter check_stmt else_
      | While (cond, body) ->
        check_expr cond;
        List.iter check_stmt body
      | For (x, lo, hi, body) ->
        check_scalar x;
        check_expr lo;
        check_expr hi;
        List.iter check_stmt body
      | Expr e -> check_expr e
      | Return e -> check_expr e
    in
    List.iter check_stmt f.body
  in
  List.iter check_func prog.funcs

let unop_name = function Neg -> "-" | Lnot -> "!"

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Land -> "&&" | Lor -> "||"

let rec pp_expr fmt = function
  | Int n -> Format.fprintf fmt "%d" n
  | Var x -> Format.fprintf fmt "%s" x
  | Index (a, e) -> Format.fprintf fmt "%s[%a]" a pp_expr e
  | Unop (op, e) -> Format.fprintf fmt "%s(%a)" (unop_name op) pp_expr e
  | Binop (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Call (f, args) ->
    Format.fprintf fmt "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_expr)
      args
  | Select (c, a, b) ->
    Format.fprintf fmt "select(%a, %a, %a)" pp_expr c pp_expr a pp_expr b

let rec pp_stmt indent fmt stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Assign (x, e) -> Format.fprintf fmt "%s%s = %a;@." pad x pp_expr e
  | Store (a, ie, e) ->
    Format.fprintf fmt "%s%s[%a] = %a;@." pad a pp_expr ie pp_expr e
  | If { secret; cond; then_; else_ } ->
    Format.fprintf fmt "%s%sif (%a) {@." pad
      (if secret then "@secret " else "")
      pp_expr cond;
    List.iter (pp_stmt (indent + 2) fmt) then_;
    if else_ <> [] then begin
      Format.fprintf fmt "%s} else {@." pad;
      List.iter (pp_stmt (indent + 2) fmt) else_
    end;
    Format.fprintf fmt "%s}@." pad
  | While (cond, body) ->
    Format.fprintf fmt "%swhile (%a) {@." pad pp_expr cond;
    List.iter (pp_stmt (indent + 2) fmt) body;
    Format.fprintf fmt "%s}@." pad
  | For (x, lo, hi, body) ->
    Format.fprintf fmt "%sfor (%s = %a; %s < %a; %s++) {@." pad x pp_expr lo x
      pp_expr hi x;
    List.iter (pp_stmt (indent + 2) fmt) body;
    Format.fprintf fmt "%s}@." pad
  | Expr e -> Format.fprintf fmt "%s%a;@." pad pp_expr e
  | Return e -> Format.fprintf fmt "%sreturn %a;@." pad pp_expr e

let pp_program fmt prog =
  List.iter (fun g -> Format.fprintf fmt "global %s;@." g) prog.globals;
  List.iter
    (fun a ->
      Format.fprintf fmt "array %s[%d]%s;@." a.aname a.size
        (if a.scratch then " scratch" else ""))
    prog.arrays;
  List.iter (fun s -> Format.fprintf fmt "@@secret %s;@." s) prog.secrets;
  List.iter
    (fun f ->
      Format.fprintf fmt "func %s(%s) locals(%s) {@." f.fname
        (String.concat ", " f.params)
        (String.concat ", " f.locals);
      List.iter (pp_stmt 2 fmt) f.body;
      Format.fprintf fmt "}@.")
    prog.funcs
