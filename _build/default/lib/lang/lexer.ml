type token =
  | INT of int
  | IDENT of string
  | KW_GLOBAL | KW_ARRAY | KW_SCRATCH | KW_FUNC | KW_LOCALS
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN | KW_SELECT
  | AT_SECRET
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | ASSIGN
  | PLUSPLUS
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR
  | LT | LE | GT | GE | EQ | NE
  | ANDAND | OROR | BANG
  | EOF

exception Error of { line : int; message : string }

let keyword = function
  | "global" -> Some KW_GLOBAL
  | "array" -> Some KW_ARRAY
  | "scratch" -> Some KW_SCRATCH
  | "func" -> Some KW_FUNC
  | "locals" -> Some KW_LOCALS
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "select" -> Some KW_SELECT
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let out = ref [] in
  let emit tok = out := (tok, !line) :: !out in
  let rec go k =
    if k >= n then emit EOF
    else
      let c = src.[k] in
      match c with
      | ' ' | '\t' | '\r' -> go (k + 1)
      | '\n' ->
        incr line;
        go (k + 1)
      | '/' when k + 1 < n && src.[k + 1] = '/' ->
        let rec skip k = if k < n && src.[k] <> '\n' then skip (k + 1) else k in
        go (skip k)
      | '(' -> emit LPAREN; go (k + 1)
      | ')' -> emit RPAREN; go (k + 1)
      | '{' -> emit LBRACE; go (k + 1)
      | '}' -> emit RBRACE; go (k + 1)
      | '[' -> emit LBRACKET; go (k + 1)
      | ']' -> emit RBRACKET; go (k + 1)
      | ';' -> emit SEMI; go (k + 1)
      | ',' -> emit COMMA; go (k + 1)
      | '+' when k + 1 < n && src.[k + 1] = '+' -> emit PLUSPLUS; go (k + 2)
      | '+' -> emit PLUS; go (k + 1)
      | '-' -> emit MINUS; go (k + 1)
      | '*' -> emit STAR; go (k + 1)
      | '/' -> emit SLASH; go (k + 1)
      | '%' -> emit PERCENT; go (k + 1)
      | '^' -> emit CARET; go (k + 1)
      | '&' when k + 1 < n && src.[k + 1] = '&' -> emit ANDAND; go (k + 2)
      | '&' -> emit AMP; go (k + 1)
      | '|' when k + 1 < n && src.[k + 1] = '|' -> emit OROR; go (k + 2)
      | '|' -> emit PIPE; go (k + 1)
      | '<' when k + 1 < n && src.[k + 1] = '<' -> emit SHL; go (k + 2)
      | '<' when k + 1 < n && src.[k + 1] = '=' -> emit LE; go (k + 2)
      | '<' -> emit LT; go (k + 1)
      | '>' when k + 1 < n && src.[k + 1] = '>' -> emit SHR; go (k + 2)
      | '>' when k + 1 < n && src.[k + 1] = '=' -> emit GE; go (k + 2)
      | '>' -> emit GT; go (k + 1)
      | '=' when k + 1 < n && src.[k + 1] = '=' -> emit EQ; go (k + 2)
      | '=' -> emit ASSIGN; go (k + 1)
      | '!' when k + 1 < n && src.[k + 1] = '=' -> emit NE; go (k + 2)
      | '!' -> emit BANG; go (k + 1)
      | '@' ->
        let stop = ref (k + 1) in
        while !stop < n && is_ident_char src.[!stop] do incr stop done;
        let word = String.sub src (k + 1) (!stop - k - 1) in
        if word = "secret" then begin
          emit AT_SECRET;
          go !stop
        end
        else raise (Error { line = !line; message = "unknown directive @" ^ word })
      | c when is_digit c ->
        let stop = ref k in
        while !stop < n && is_digit src.[!stop] do incr stop done;
        emit (INT (int_of_string (String.sub src k (!stop - k))));
        go !stop
      | c when is_ident_start c ->
        let stop = ref k in
        while !stop < n && is_ident_char src.[!stop] do incr stop done;
        let word = String.sub src k (!stop - k) in
        (match keyword word with
         | Some kw -> emit kw
         | None -> emit (IDENT word));
        go !stop
      | c ->
        raise (Error { line = !line; message = Printf.sprintf "unexpected character %C" c })
  in
  go 0;
  List.rev !out

let token_name = function
  | INT n -> string_of_int n
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW_GLOBAL -> "'global'" | KW_ARRAY -> "'array'" | KW_SCRATCH -> "'scratch'"
  | KW_FUNC -> "'func'" | KW_LOCALS -> "'locals'"
  | KW_IF -> "'if'" | KW_ELSE -> "'else'" | KW_WHILE -> "'while'"
  | KW_FOR -> "'for'" | KW_RETURN -> "'return'" | KW_SELECT -> "'select'"
  | AT_SECRET -> "'@secret'"
  | LPAREN -> "'('" | RPAREN -> "')'" | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACKET -> "'['" | RBRACKET -> "']'"
  | SEMI -> "';'" | COMMA -> "','"
  | ASSIGN -> "'='" | PLUSPLUS -> "'++'"
  | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'" | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | AMP -> "'&'" | PIPE -> "'|'" | CARET -> "'^'" | SHL -> "'<<'" | SHR -> "'>>'"
  | LT -> "'<'" | LE -> "'<='" | GT -> "'>'" | GE -> "'>='"
  | EQ -> "'=='" | NE -> "'!='"
  | ANDAND -> "'&&'" | OROR -> "'||'" | BANG -> "'!'"
  | EOF -> "end of input"
