(** Abstract syntax of the workload language.

    A small structured language — integers, scalar variables, global
    arrays, functions with recursion, loops, and conditionals — rich enough
    to express the paper's workloads. Branches on secret data are marked
    [secret]; the compiler turns them into sJMP/eosJMP regions (SeMPE), or
    the CTE / Raccoon / MTO transforms remove them.

    Logical [Land]/[Lor] are {e non-short-circuiting} (they evaluate both
    operands and combine boolean values arithmetically) so that using them
    never introduces a hidden conditional branch. *)

type unop = Neg | Lnot

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor

type expr =
  | Int of int
  | Var of string
  | Index of string * expr               (** [A[i]] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Select of expr * expr * expr
      (** [Select (c, a, b)] is [a] when [c <> 0] else [b]; compiled to a
          conditional move — never a branch. *)

type stmt =
  | Assign of string * expr
  | Store of string * expr * expr        (** [A[i] <- e] *)
  | If of { secret : bool; cond : expr; then_ : block; else_ : block }
  | While of expr * block
  | For of string * expr * expr * block  (** [for v = lo while v < hi; v++] *)
  | Expr of expr                         (** evaluate for side effects *)
  | Return of expr

and block = stmt list

type func = {
  fname : string;
  params : string list;
  locals : string list;
  body : block;
}

type array_decl = {
  aname : string;
  size : int;
  scratch : bool;
      (** scratch arrays are exempt from ShadowMemory privatization: the
          program promises every path fully writes them before reading and
          their contents are dead outside the secure region *)
}

type program = {
  funcs : func list;
  globals : string list;       (** scalar globals *)
  arrays : array_decl list;
  secrets : string list;       (** globals that hold secret values *)
  main : string;               (** entry function, called with no arguments *)
}

(** {2 Convenience constructors} *)

val i : int -> expr
val v : string -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr
val idx : string -> expr -> expr
val assign : string -> expr -> stmt
val store : string -> expr -> expr -> stmt
val if_ : ?secret:bool -> expr -> block -> block -> stmt
val while_ : expr -> block -> stmt
val for_ : string -> expr -> expr -> block -> stmt
val ret : expr -> stmt
val call : string -> expr list -> expr

(** {2 Structural queries} *)

module Sset : Set.S with type elt = string

val block_fold : ('a -> stmt -> 'a) -> 'a -> block -> 'a
(** Pre-order fold over every statement, including nested blocks. *)

val expr_reads : expr -> Sset.t
(** Scalar variables read by an expression. *)

val expr_arrays : expr -> Sset.t
(** Arrays read by an expression. *)

val expr_has_call : expr -> bool

val block_assigned : block -> Sset.t
(** Scalars assigned anywhere in the block (including nested blocks). *)

val block_reads : block -> Sset.t
(** Scalars read anywhere in the block. *)

val block_stored_arrays : block -> Sset.t
val block_read_arrays : block -> Sset.t

val subst_scalar : old:string -> fresh:string -> block -> block
(** Rename every read and write of scalar [old] to [fresh], recursively. *)

val subst_array : old:string -> fresh:string -> block -> block

val find_func : program -> string -> func
(** @raise Not_found *)

val validate : program -> unit
(** Checks that every referenced function, scalar and array is declared,
    arity matches, and [For] variables are declared locals.
    @raise Invalid_argument with a diagnostic otherwise. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_program : Format.formatter -> program -> unit
