lib/lang/ast.mli: Format Set
