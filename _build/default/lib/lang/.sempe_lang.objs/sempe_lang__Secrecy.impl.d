lib/lang/secrecy.ml: Ast Format List Printf Sset String
