lib/lang/codegen.mli: Ast Sempe_isa
