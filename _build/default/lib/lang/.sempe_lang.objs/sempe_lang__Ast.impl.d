lib/lang/ast.ml: Format List Printf Set String
