lib/lang/secrecy.mli: Ast
