lib/lang/lexer.mli:
