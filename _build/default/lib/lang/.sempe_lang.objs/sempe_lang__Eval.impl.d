lib/lang/eval.ml: Array Ast Hashtbl List Printf
