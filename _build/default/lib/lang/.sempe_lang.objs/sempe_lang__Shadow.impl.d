lib/lang/shadow.ml: Ast List Printf Sset String
