lib/lang/shadow.mli: Ast
