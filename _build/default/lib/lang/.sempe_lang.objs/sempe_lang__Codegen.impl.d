lib/lang/codegen.ml: Ast Builder Hashtbl Instr List Normalize Printf Reg Sempe_isa
