lib/lang/optimize.ml: Ast List
