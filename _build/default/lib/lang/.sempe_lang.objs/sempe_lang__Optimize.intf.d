lib/lang/optimize.mli: Ast
