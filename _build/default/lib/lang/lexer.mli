(** Lexer for the workload language's concrete syntax. *)

type token =
  | INT of int
  | IDENT of string
  | KW_GLOBAL | KW_ARRAY | KW_SCRATCH | KW_FUNC | KW_LOCALS
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN | KW_SELECT
  | AT_SECRET                    (** "@secret" *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | ASSIGN                       (** "=" *)
  | PLUSPLUS                     (** "++" *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR
  | LT | LE | GT | GE | EQ | NE
  | ANDAND | OROR | BANG
  | EOF

exception Error of { line : int; message : string }

val tokenize : string -> (token * int) list
(** Token stream with line numbers; comments ("//" to end of line) and
    whitespace are skipped. The stream ends with [EOF].
    @raise Error on an unrecognized character. *)

val token_name : token -> string
(** For diagnostics. *)
