(** Secret-taint analysis.

    Verifies the programmer's [@secret] branch annotations: every
    conditional whose condition (transitively, including implicit flows
    through assignments under secret branches) depends on a declared secret
    must be marked secret, secret-bounded loops are rejected (no scheme in
    the paper can equalize a secret trip count), and secret-indexed memory
    accesses are flagged (an address-pattern leak, which the paper defers
    to ORAM). *)

type violation =
  | Unmarked_branch of { func : string; cond : string }
      (** a public [If] branches on tainted data *)
  | Secret_loop of { func : string; cond : string }
      (** a loop condition or bound is tainted *)
  | Secret_index of { func : string; expr : string }
      (** a tainted array index (address leak; orthogonal protection) *)
  | Useless_annotation of { func : string; cond : string }
      (** an [If] marked secret whose condition is untainted — legal
          (SeMPE still executes both paths) but wasteful *)
  | Potential_exception of { func : string; expr : string }
      (** a division or remainder with a non-constant divisor inside a
          secret branch: the false path executes too, and a wrong-path
          divide-by-zero would fault (§IV-G says the compiler must reject
          or the user accept such blocks; this simulator defines x/0 = 0,
          so the advisory marks where real hardware would need the
          check) *)

val describe : violation -> string

val analyze : Ast.program -> violation list
(** Whole-program flow-insensitive taint fixpoint. An empty result means
    the annotations are consistent. *)

val check : Ast.program -> unit
(** @raise Invalid_argument listing hard violations ({!Unmarked_branch} or
    {!Secret_loop}); {!Secret_index} and {!Useless_annotation} are
    advisory and do not raise. *)

val auto_annotate : Ast.program -> Ast.program
(** Mark secret every conditional whose condition is tainted — the
    automated annotation the paper argues the compiler can perform
    ("it must incur low programming effort and preferably code
    transformation should be automatable", §IV-B). Already-marked branches
    are kept; the result passes the {!Unmarked_branch} check by
    construction. Secret-bounded loops are still rejected.
    @raise Invalid_argument on a {!Secret_loop} violation. *)
