(** Recursive-descent parser for the workload language.

    The grammar matches what {!Ast.pp_program} prints, so pretty-printing
    then parsing round-trips (the property tests rely on it), and the
    syntax is comfortable to write by hand:

    {v
    global key;
    array buf[64] scratch;
    @secret key;

    func main() locals(x, k) {
      x = 0;
      for (k = 0; k < 64; k++) { buf[k] = k * 3; }
      @secret if (key != 0) { x = buf[5]; } else { x = buf[9]; }
      return x;
    }
    v}

    Operator precedence, loosest to tightest:
    [||], [&&], [|], [^], [&], [== !=], [< <= > >=], [<< >>], [+ -],
    [* / %], unary [- !]. The entry function is the one named ["main"]. *)

exception Error of { line : int; message : string }

val program : string -> Ast.program
(** Parse a whole program. Declarations ([global], [array], [@secret] on an
    identifier) may appear in any order before/between functions.
    @raise Error on a syntax error (with a line number).
    @raise Invalid_argument when {!Ast.validate} rejects the result. *)

val expr : string -> Ast.expr
(** Parse a single expression (for tests and the REPL-style tools). *)
