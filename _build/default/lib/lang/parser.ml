open Ast

exception Error of { line : int; message : string }

type stream = { mutable toks : (Lexer.token * int) list }

let fail_at line fmt =
  Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

let peek s =
  match s.toks with
  | (tok, line) :: _ -> (tok, line)
  | [] -> (Lexer.EOF, 0)

let advance s =
  match s.toks with
  | _ :: rest -> s.toks <- rest
  | [] -> ()

let expect s tok =
  let got, line = peek s in
  if got = tok then advance s
  else fail_at line "expected %s but found %s" (Lexer.token_name tok) (Lexer.token_name got)

let ident s =
  match peek s with
  | Lexer.IDENT name, _ ->
    advance s;
    name
  | tok, line -> fail_at line "expected an identifier, found %s" (Lexer.token_name tok)

(* Binary operators by precedence level, loosest first. *)
let levels : (Lexer.token * binop) list list =
  [
    [ (Lexer.OROR, Lor) ];
    [ (Lexer.ANDAND, Land) ];
    [ (Lexer.PIPE, Bor) ];
    [ (Lexer.CARET, Bxor) ];
    [ (Lexer.AMP, Band) ];
    [ (Lexer.EQ, Eq); (Lexer.NE, Ne) ];
    [ (Lexer.LT, Lt); (Lexer.LE, Le); (Lexer.GT, Gt); (Lexer.GE, Ge) ];
    [ (Lexer.SHL, Shl); (Lexer.SHR, Shr) ];
    [ (Lexer.PLUS, Add); (Lexer.MINUS, Sub) ];
    [ (Lexer.STAR, Mul); (Lexer.SLASH, Div); (Lexer.PERCENT, Rem) ];
  ]

let rec parse_expr s = parse_level s levels

and parse_level s = function
  | [] -> parse_unary s
  | ops :: tighter ->
    let lhs = parse_level s tighter in
    let rec loop lhs =
      let tok, _ = peek s in
      match List.assoc_opt tok ops with
      | Some op ->
        advance s;
        let rhs = parse_level s tighter in
        loop (Binop (op, lhs, rhs))
      | None -> lhs
    in
    loop lhs

and parse_unary s =
  match peek s with
  | Lexer.MINUS, _ ->
    advance s;
    (* fold a directly following literal so "-5" parses as Int (-5);
       "-(e)" stays a negation node, preserving printer round-trips *)
    (match peek s with
     | Lexer.INT n, _ ->
       advance s;
       Int (-n)
     | _ -> Unop (Neg, parse_unary s))
  | Lexer.BANG, _ ->
    advance s;
    Unop (Lnot, parse_unary s)
  | _ -> parse_primary s

and parse_primary s =
  match peek s with
  | Lexer.INT n, _ ->
    advance s;
    Int n
  | Lexer.LPAREN, _ ->
    advance s;
    let e = parse_expr s in
    expect s Lexer.RPAREN;
    e
  | Lexer.KW_SELECT, _ ->
    advance s;
    expect s Lexer.LPAREN;
    let c = parse_expr s in
    expect s Lexer.COMMA;
    let a = parse_expr s in
    expect s Lexer.COMMA;
    let b = parse_expr s in
    expect s Lexer.RPAREN;
    Select (c, a, b)
  | Lexer.IDENT name, _ -> (
    advance s;
    match peek s with
    | Lexer.LBRACKET, _ ->
      advance s;
      let e = parse_expr s in
      expect s Lexer.RBRACKET;
      Index (name, e)
    | Lexer.LPAREN, _ ->
      advance s;
      let args = parse_args s in
      Call (name, args)
    | _ -> Var name)
  | tok, line -> fail_at line "expected an expression, found %s" (Lexer.token_name tok)

and parse_args s =
  match peek s with
  | Lexer.RPAREN, _ ->
    advance s;
    []
  | _ ->
    let rec loop acc =
      let e = parse_expr s in
      match peek s with
      | Lexer.COMMA, _ ->
        advance s;
        loop (e :: acc)
      | _ ->
        expect s Lexer.RPAREN;
        List.rev (e :: acc)
    in
    loop []

let rec parse_block s =
  expect s Lexer.LBRACE;
  let rec loop acc =
    match peek s with
    | Lexer.RBRACE, _ ->
      advance s;
      List.rev acc
    | _ -> loop (parse_stmt s :: acc)
  in
  loop []

and parse_stmt s =
  match peek s with
  | Lexer.AT_SECRET, _ ->
    advance s;
    parse_if s ~secret:true
  | Lexer.KW_IF, _ -> parse_if s ~secret:false
  | Lexer.KW_WHILE, _ ->
    advance s;
    expect s Lexer.LPAREN;
    let cond = parse_expr s in
    expect s Lexer.RPAREN;
    While (cond, parse_block s)
  | Lexer.KW_FOR, line ->
    advance s;
    expect s Lexer.LPAREN;
    let x = ident s in
    expect s Lexer.ASSIGN;
    let lo = parse_expr s in
    expect s Lexer.SEMI;
    let x2 = ident s in
    expect s Lexer.LT;
    let hi = parse_expr s in
    expect s Lexer.SEMI;
    let x3 = ident s in
    expect s Lexer.PLUSPLUS;
    expect s Lexer.RPAREN;
    if x2 <> x || x3 <> x then
      fail_at line "for-loop must use one induction variable (%s vs %s/%s)" x x2 x3;
    For (x, lo, hi, parse_block s)
  | Lexer.KW_RETURN, _ ->
    advance s;
    let e = parse_expr s in
    expect s Lexer.SEMI;
    Return e
  | Lexer.IDENT name, _ -> (
    advance s;
    match peek s with
    | Lexer.ASSIGN, _ ->
      advance s;
      let e = parse_expr s in
      expect s Lexer.SEMI;
      Assign (name, e)
    | Lexer.LBRACKET, _ -> (
      advance s;
      let idx_e = parse_expr s in
      expect s Lexer.RBRACKET;
      match peek s with
      | Lexer.ASSIGN, _ ->
        advance s;
        let e = parse_expr s in
        expect s Lexer.SEMI;
        Store (name, idx_e, e)
      | _ ->
        expect s Lexer.SEMI;
        Expr (Index (name, idx_e)))
    | Lexer.LPAREN, _ ->
      advance s;
      let args = parse_args s in
      expect s Lexer.SEMI;
      Expr (Call (name, args))
    | Lexer.SEMI, _ ->
      advance s;
      Expr (Var name)
    | tok, line ->
      fail_at line "expected '=', '[' or '(' after %S, found %s" name
        (Lexer.token_name tok))
  | (Lexer.LPAREN | Lexer.INT _ | Lexer.KW_SELECT | Lexer.MINUS | Lexer.BANG), _ ->
    let e = parse_expr s in
    expect s Lexer.SEMI;
    Expr e
  | tok, line -> fail_at line "expected a statement, found %s" (Lexer.token_name tok)

and parse_if s ~secret =
  expect s Lexer.KW_IF;
  expect s Lexer.LPAREN;
  let cond = parse_expr s in
  expect s Lexer.RPAREN;
  let then_ = parse_block s in
  let else_ =
    match peek s with
    | Lexer.KW_ELSE, _ ->
      advance s;
      parse_block s
    | _ -> []
  in
  If { secret; cond; then_; else_ }

let parse_ident_list s =
  expect s Lexer.LPAREN;
  match peek s with
  | Lexer.RPAREN, _ ->
    advance s;
    []
  | _ ->
    let rec loop acc =
      let name = ident s in
      match peek s with
      | Lexer.COMMA, _ ->
        advance s;
        loop (name :: acc)
      | _ ->
        expect s Lexer.RPAREN;
        List.rev (name :: acc)
    in
    loop []

let parse_func s =
  expect s Lexer.KW_FUNC;
  let fname = ident s in
  let params = parse_ident_list s in
  let locals =
    match peek s with
    | Lexer.KW_LOCALS, _ ->
      advance s;
      parse_ident_list s
    | _ -> []
  in
  let body = parse_block s in
  { fname; params; locals; body }

let parse_program s =
  let globals = ref [] in
  let arrays = ref [] in
  let secrets = ref [] in
  let funcs = ref [] in
  let rec loop () =
    match peek s with
    | Lexer.EOF, _ -> ()
    | Lexer.KW_GLOBAL, _ ->
      advance s;
      let name = ident s in
      expect s Lexer.SEMI;
      globals := name :: !globals;
      loop ()
    | Lexer.KW_ARRAY, _ ->
      advance s;
      let aname = ident s in
      expect s Lexer.LBRACKET;
      let size, line =
        match peek s with
        | Lexer.INT n, line ->
          advance s;
          (n, line)
        | tok, line -> fail_at line "expected array size, found %s" (Lexer.token_name tok)
      in
      if size <= 0 then fail_at line "array %s must have positive size" aname;
      expect s Lexer.RBRACKET;
      let scratch =
        match peek s with
        | Lexer.KW_SCRATCH, _ ->
          advance s;
          true
        | _ -> false
      in
      expect s Lexer.SEMI;
      arrays := { aname; size; scratch } :: !arrays;
      loop ()
    | Lexer.AT_SECRET, _ ->
      advance s;
      let name = ident s in
      expect s Lexer.SEMI;
      secrets := name :: !secrets;
      loop ()
    | Lexer.KW_FUNC, _ ->
      funcs := parse_func s :: !funcs;
      loop ()
    | tok, line -> fail_at line "expected a declaration, found %s" (Lexer.token_name tok)
  in
  loop ();
  {
    funcs = List.rev !funcs;
    globals = List.rev !globals;
    arrays = List.rev !arrays;
    secrets = List.rev !secrets;
    main = "main";
  }

let with_stream src f =
  try f { toks = Lexer.tokenize src }
  with Lexer.Error { line; message } -> raise (Error { line; message })

let program src =
  let prog = with_stream src parse_program in
  validate prog;
  prog

let expr src =
  with_stream src (fun s ->
      let e = parse_expr s in
      expect s Lexer.EOF;
      e)
