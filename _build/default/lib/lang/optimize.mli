(** Source-level optimizations for secure regions.

    {!collapse_nesting} implements the transformation §IV-E suggests for
    reducing jbTable pressure: "the compiler can reduce the nesting degree
    by collapsing multiple conditionals into a single one with larger
    expression — if (A) { if (B) ... } can be converted into
    if (A and B) { ... }". Because the language's [&&] evaluates both
    operands, the inner condition must be side-effect free (no calls) for
    the collapse to preserve semantics; other shapes are left alone.

    The collapse applies when the outer conditional has an empty else and
    its then-block consists solely of an else-less conditional, and at
    least one of the two is secret (collapsing public pairs would only
    churn code). The merged conditional is secret. *)

val collapse_nesting : Ast.program -> Ast.program

val static_nesting : Ast.program -> int
(** Deepest static nesting of secret conditionals, the jbTable capacity a
    program needs. *)
