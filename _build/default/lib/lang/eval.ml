open Ast

type state = {
  prog : program;
  globals : (string, int ref) Hashtbl.t;
  arrays : (string, int array) Hashtbl.t;
  mutable steps : int;
  mutable max_steps : int;
}

exception Step_limit
exception Runtime_error of string
exception Returning of int

let init prog =
  validate prog;
  let globals = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace globals g (ref 0)) prog.globals;
  let arrays = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace arrays a.aname (Array.make a.size 0)) prog.arrays;
  { prog; globals; arrays; steps = 0; max_steps = 0 }

let set_global st name value =
  match Hashtbl.find_opt st.globals name with
  | Some r -> r := value
  | None -> raise (Runtime_error (Printf.sprintf "no global %S" name))

let get_global st name =
  match Hashtbl.find_opt st.globals name with
  | Some r -> !r
  | None -> raise (Runtime_error (Printf.sprintf "no global %S" name))

let set_array st name values =
  match Hashtbl.find_opt st.arrays name with
  | Some a ->
    if Array.length a <> Array.length values then
      raise (Runtime_error (Printf.sprintf "array %S size mismatch" name));
    Array.blit values 0 a 0 (Array.length a)
  | None -> raise (Runtime_error (Printf.sprintf "no array %S" name))

let get_array st name =
  match Hashtbl.find_opt st.arrays name with
  | Some a -> Array.copy a
  | None -> raise (Runtime_error (Printf.sprintf "no array %S" name))

let truth n = n <> 0
let of_bool b = if b then 1 else 0

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | Band -> a land b
  | Bor -> a lor b
  | Bxor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a asr (b land 63)
  | Lt -> of_bool (a < b)
  | Le -> of_bool (a <= b)
  | Gt -> of_bool (a > b)
  | Ge -> of_bool (a >= b)
  | Eq -> of_bool (a = b)
  | Ne -> of_bool (a <> b)
  | Land -> of_bool (truth a && truth b)
  | Lor -> of_bool (truth a || truth b)

(* A call frame maps params and locals to cells; scalars resolve to the
   frame first, then to globals. *)
type frame = (string, int ref) Hashtbl.t

let lookup st (frame : frame) x =
  match Hashtbl.find_opt frame x with
  | Some r -> r
  | None -> (
    match Hashtbl.find_opt st.globals x with
    | Some r -> r
    | None -> raise (Runtime_error (Printf.sprintf "unbound scalar %S" x)))

let array_of st a =
  match Hashtbl.find_opt st.arrays a with
  | Some arr -> arr
  | None -> raise (Runtime_error (Printf.sprintf "unbound array %S" a))

let index st a i =
  let arr = array_of st a in
  if i < 0 || i >= Array.length arr then
    raise (Runtime_error (Printf.sprintf "array %S index %d out of bounds" a i));
  arr.(i)

let store_idx st a i value =
  let arr = array_of st a in
  if i < 0 || i >= Array.length arr then
    raise (Runtime_error (Printf.sprintf "array %S index %d out of bounds" a i));
  arr.(i) <- value

let tick st =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then raise Step_limit

let rec eval_expr st frame = function
  | Int n -> n
  | Var x -> !(lookup st frame x)
  | Index (a, e) -> index st a (eval_expr st frame e)
  | Unop (Neg, e) -> -eval_expr st frame e
  | Unop (Lnot, e) -> of_bool (eval_expr st frame e = 0)
  | Binop (op, a, b) ->
    let va = eval_expr st frame a in
    let vb = eval_expr st frame b in
    eval_binop op va vb
  | Call (f, args) ->
    let vargs = List.map (eval_expr st frame) args in
    call_func st f vargs
  | Select (c, a, b) ->
    let vc = eval_expr st frame c in
    let va = eval_expr st frame a in
    let vb = eval_expr st frame b in
    if truth vc then va else vb

and call_func st fname vargs =
  let f = find_func st.prog fname in
  let frame : frame = Hashtbl.create 16 in
  List.iter2 (fun p a -> Hashtbl.replace frame p (ref a)) f.params vargs;
  List.iter (fun l -> Hashtbl.replace frame l (ref 0)) f.locals;
  try
    exec_block st frame f.body;
    0
  with Returning r -> r

and exec_block st frame block = List.iter (exec_stmt st frame) block

and exec_stmt st frame stmt =
  tick st;
  match stmt with
  | Assign (x, e) -> lookup st frame x := eval_expr st frame e
  | Store (a, ie, e) ->
    let i = eval_expr st frame ie in
    store_idx st a i (eval_expr st frame e)
  | If { cond; then_; else_; secret = _ } ->
    if truth (eval_expr st frame cond) then exec_block st frame then_
    else exec_block st frame else_
  | While (cond, body) ->
    while truth (eval_expr st frame cond) do
      tick st;
      exec_block st frame body
    done
  | For (x, lo, hi, body) ->
    let cell = lookup st frame x in
    let vlo = eval_expr st frame lo in
    let vhi = eval_expr st frame hi in
    cell := vlo;
    while !cell < vhi do
      tick st;
      exec_block st frame body;
      incr cell
    done
  | Expr e -> ignore (eval_expr st frame e)
  | Return e -> raise (Returning (eval_expr st frame e))

let run ?(max_steps = 50_000_000) st =
  st.steps <- 0;
  st.max_steps <- max_steps;
  call_func st st.prog.main []
