open Ast

let rec collapse_block block = List.map collapse_stmt block

and collapse_stmt = function
  | If { secret = s_out; cond = a; then_; else_ = [] } -> (
    match collapse_block then_ with
    | [ If { secret = s_in; cond = b; then_ = inner; else_ = [] } ]
      when (s_out || s_in) && not (expr_has_call b) ->
      If
        {
          secret = true;
          cond = Binop (Land, a, b);
          then_ = inner;
          else_ = [];
        }
    | then_ -> If { secret = s_out; cond = a; then_; else_ = [] })
  | If { secret; cond; then_; else_ } ->
    If { secret; cond; then_ = collapse_block then_; else_ = collapse_block else_ }
  | While (cond, body) -> While (cond, collapse_block body)
  | For (x, lo, hi, body) -> For (x, lo, hi, collapse_block body)
  | (Assign _ | Store _ | Expr _ | Return _) as s -> s

let collapse_nesting prog =
  { prog with funcs = List.map (fun f -> { f with body = collapse_block f.body }) prog.funcs }

let static_nesting prog =
  let rec depth_block b = List.fold_left (fun acc s -> max acc (depth_stmt s)) 0 b
  and depth_stmt = function
    | If { secret; then_; else_; _ } ->
      (if secret then 1 else 0) + max (depth_block then_) (depth_block else_)
    | While (_, body) | For (_, _, _, body) -> depth_block body
    | Assign _ | Store _ | Expr _ | Return _ -> 0
  in
  List.fold_left (fun acc f -> max acc (depth_block f.body)) 0 prog.funcs
