(** Reference interpreter for the workload language.

    Direct structural semantics, independent of the ISA and the compiler;
    the test suite runs every workload here and through the full
    compile-and-simulate pipeline and compares results (differential
    testing).

    Semantics notes, shared with the compiler: [Land]/[Lor] evaluate both
    operands; division and remainder by zero yield 0; [For] bounds are
    evaluated once on entry; [Select] evaluates all three operands. *)

type state

val init : Ast.program -> state
(** Validates the program and zero-initializes globals and arrays. *)

val set_global : state -> string -> int -> unit
val get_global : state -> string -> int

val set_array : state -> string -> int array -> unit
(** Copies [values] into the declared array; lengths must match. *)

val get_array : state -> string -> int array
(** A copy of the array's current contents. *)

exception Step_limit
exception Runtime_error of string

val run : ?max_steps:int -> state -> int
(** Call [main] and return its value. [max_steps] (default 50M statements)
    guards against non-termination.
    @raise Runtime_error on out-of-bounds array access.
    @raise Step_limit when the budget is exhausted. *)
