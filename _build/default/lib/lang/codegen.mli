(** Code generation from the (normalized) workload language to the ISA.

    Conventions:
    - scalars and arrays declared at program level live in the static data
      segment, addressed off {!Sempe_isa.Reg.gp};
    - each function call pushes its arguments, then [Call]; the callee
      saves the link register and allocates local slots — recursion works;
    - expression evaluation walks the tree through the temporary register
      window (normalization bounds the depth);
    - a secret [If] compiles to a secure branch whose taken target is the
      then-block, with the else-block on the fall-through (the not-taken
      path, which SeMPE executes first) and a single [Eosjmp] at the join;
    - [Select] compiles to a CMOV, never a branch. *)

type layout = {
  scalars : (string * int) list;       (** global name, word offset *)
  arrays : (string * (int * int)) list;  (** array name, (offset, size) *)
  data_words : int;
}

val scalar_offset : layout -> string -> int
(** @raise Not_found *)

val array_slice : layout -> string -> int * int
(** (offset, size).  @raise Not_found *)

val compile : Ast.program -> Sempe_isa.Program.t * layout
(** Validates, normalizes and compiles. The program starts at an entry stub
    that calls [main] and halts; [main]'s return value is left in
    {!Sempe_isa.Reg.rv}.
    @raise Invalid_argument on malformed input or unsupported shapes. *)
