open Ast

let max_depth = 12

let rec depth = function
  | Int _ | Var _ -> 1
  | Index (_, e) | Unop (_, e) -> 1 + depth e
  | Binop (_, a, b) -> 1 + max (depth a) (depth b)
  | Call (_, args) -> 1 + List.fold_left (fun m e -> max m (depth e)) 0 args
  | Select (c, a, b) -> 1 + max (depth c) (max (depth a) (depth b))

type ctx = {
  mutable counter : int;
  mutable new_locals : string list;
}

let fresh ctx hint =
  ctx.counter <- ctx.counter + 1;
  let name = Printf.sprintf "$n%d_%s" ctx.counter hint in
  ctx.new_locals <- name :: ctx.new_locals;
  name

(* Fully linearize an expression containing calls: every Call and Index is
   evaluated left-to-right into a temporary, so hoisting the calls cannot
   reorder a call relative to an array read. Returns the (pure, shallow)
   residual expression; emitted statements accumulate in [out]. *)
let rec linearize ctx out e =
  match e with
  | Int _ | Var _ -> e
  | Index (a, ie) ->
    let ie = linearize ctx out ie in
    let t = fresh ctx "idx" in
    out := Assign (t, Index (a, ie)) :: !out;
    Var t
  | Unop (op, e1) -> Unop (op, linearize ctx out e1)
  | Binop (op, a, b) ->
    let a = linearize ctx out a in
    let b = linearize ctx out b in
    Binop (op, a, b)
  | Call (f, args) ->
    let args =
      List.map
        (fun arg ->
          match linearize ctx out arg with
          | (Int _ | Var _) as atom -> atom
          | other ->
            let t = fresh ctx "arg" in
            out := Assign (t, other) :: !out;
            Var t)
        args
    in
    let t = fresh ctx "call" in
    out := Assign (t, Call (f, args)) :: !out;
    Var t
  | Select (c, a, b) ->
    let c = linearize ctx out c in
    let a = linearize ctx out a in
    let b = linearize ctx out b in
    Select (c, a, b)

(* Bound the depth of a pure expression by hoisting deep subtrees. *)
let rec shrink ctx out e =
  let e =
    match e with
    | Int _ | Var _ -> e
    | Index (a, ie) -> Index (a, shrink ctx out ie)
    | Unop (op, e1) -> Unop (op, shrink ctx out e1)
    | Binop (op, a, b) -> Binop (op, shrink ctx out a, shrink ctx out b)
    | Call (f, args) -> Call (f, List.map (shrink ctx out) args)
    | Select (c, a, b) ->
      Select (shrink ctx out c, shrink ctx out a, shrink ctx out b)
  in
  if depth e > max_depth then begin
    let t = fresh ctx "d" in
    out := Assign (t, e) :: !out;
    Var t
  end
  else e

(* Normalize an expression in statement position: emitted statements land in
   [out] (reversed); the returned expression is call-free and shallow. *)
let norm_expr ctx out e =
  let e = if expr_has_call e then linearize ctx out e else e in
  shrink ctx out e

let rec norm_block ctx block = List.concat_map (norm_stmt ctx) block

and norm_stmt ctx stmt =
  let out = ref [] in
  let finish tail = List.rev_append !out tail in
  match stmt with
  | Assign (x, Call (f, args)) ->
    (* Keep a direct call-assignment in place (linearizing would just add a
       copy); normalize the arguments to atoms. *)
    let args =
      List.map
        (fun arg ->
          match norm_expr ctx out arg with
          | (Int _ | Var _) as atom -> atom
          | other ->
            let t = fresh ctx "arg" in
            out := Assign (t, other) :: !out;
            Var t)
        args
    in
    finish [ Assign (x, Call (f, args)) ]
  | Assign (x, e) ->
    let e = norm_expr ctx out e in
    finish [ Assign (x, e) ]
  | Store (a, ie, e) ->
    let ie = norm_expr ctx out ie in
    let e = norm_expr ctx out e in
    finish [ Store (a, ie, e) ]
  | Expr (Call (f, args)) ->
    let args =
      List.map
        (fun arg ->
          match norm_expr ctx out arg with
          | (Int _ | Var _) as atom -> atom
          | other ->
            let t = fresh ctx "arg" in
            out := Assign (t, other) :: !out;
            Var t)
        args
    in
    finish [ Expr (Call (f, args)) ]
  | Expr e ->
    let e = norm_expr ctx out e in
    finish [ Expr e ]
  | Return e ->
    let e = norm_expr ctx out e in
    finish [ Return e ]
  | If { secret; cond; then_; else_ } ->
    let cond = norm_expr ctx out cond in
    finish
      [ If { secret; cond; then_ = norm_block ctx then_; else_ = norm_block ctx else_ } ]
  | While (cond, body) ->
    let body = norm_block ctx body in
    if expr_has_call cond || depth cond > max_depth then begin
      (* Hoist the condition into a temporary recomputed per iteration. *)
      let pre = ref [] in
      let cond' = norm_expr ctx pre cond in
      let t = fresh ctx "w" in
      let recompute = List.rev_append !pre [ Assign (t, cond') ] in
      finish (recompute @ [ While (Var t, body @ recompute) ])
    end
    else finish [ While (cond, body) ]
  | For (x, lo, hi, body) ->
    (* for x = lo .. hi-1  ==>  x = lo; $b = hi; while (x < $b) { body; x++ } *)
    let lo = norm_expr ctx out lo in
    let hi = norm_expr ctx out hi in
    let bound = fresh ctx "hi" in
    let body = norm_block ctx body in
    finish
      [
        Assign (x, lo);
        Assign (bound, hi);
        While (Binop (Lt, Var x, Var bound), body @ [ Assign (x, Binop (Add, Var x, Int 1)) ]);
      ]

let func ctx f =
  ctx.new_locals <- [];
  let body = norm_block ctx f.body in
  { f with body; locals = f.locals @ List.rev ctx.new_locals }

let program prog =
  let ctx = { counter = 0; new_locals = [] } in
  { prog with funcs = List.map (func ctx) prog.funcs }
