(** Lowering pass run just before code generation.

    Establishes the invariants the code generator relies on:

    - [For] loops are lowered to [While] loops with an explicit induction
      assignment and a fresh local holding the (once-evaluated) bound;
    - [Call] appears only as the entire right-hand side of an [Assign] or
      as an [Expr] statement, with atomic ([Var]/[Int]) arguments — any
      expression containing a call is fully linearized left-to-right into
      fresh temporaries, preserving evaluation order of side effects;
    - pure expressions are depth-bounded (deep subtrees are hoisted into
      temporaries) so expression evaluation fits the register window;
    - [While] conditions containing calls are rewritten to re-evaluate the
      hoisted temporaries at the end of each iteration.

    Fresh temporaries use a ["$n"] prefix, which cannot clash with user
    identifiers (validated programs never contain ['$']). *)

val max_depth : int
(** Depth bound after normalization (the code generator's register window
    comfortably exceeds it). *)

val program : Ast.program -> Ast.program
(** Normalized copy; the input is untouched. Idempotent. *)
