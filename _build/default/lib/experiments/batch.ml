module Pool = Sempe_util.Pool

let jobs_setting = Atomic.make 1

let set_jobs n = Atomic.set jobs_setting (max 1 (min Pool.max_workers n))
let jobs () = Atomic.get jobs_setting
let default_jobs = Pool.default_workers

let map ?j f xs =
  let j = match j with Some j -> max 1 j | None -> jobs () in
  let j = min j (List.length xs) in
  if j <= 1 then List.map f xs else Pool.run ~workers:j f xs

let split_n n xs =
  let rec go k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (k - 1) (x :: acc) rest
  in
  go n [] xs

let map_product ?j f outer inner =
  let cells =
    List.concat_map (fun o -> List.map (fun i -> (o, i)) inner) outer
  in
  let results = map ?j (fun (o, i) -> f o i) cells in
  let per_outer = List.length inner in
  let rec regroup os rs =
    match os with
    | [] -> []
    | o :: os ->
      let mine, rest = split_n per_outer rs in
      (o, mine) :: regroup os rest
  in
  regroup outer results
