lib/experiments/fig10.ml: Batch Buffer List Option Printf Sempe_core Sempe_util Sempe_workloads String
