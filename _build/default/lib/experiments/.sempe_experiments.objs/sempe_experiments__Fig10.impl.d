lib/experiments/fig10.ml: Buffer List Printf Sempe_core Sempe_util Sempe_workloads String
