lib/experiments/security_exp.ml: Batch List Sempe_core Sempe_security Sempe_util Sempe_workloads String
