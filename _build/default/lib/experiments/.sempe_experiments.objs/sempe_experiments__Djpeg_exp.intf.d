lib/experiments/djpeg_exp.mli: Sempe_pipeline Sempe_workloads
