lib/experiments/table1.mli: Sempe_core
