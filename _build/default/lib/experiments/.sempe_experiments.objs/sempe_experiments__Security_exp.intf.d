lib/experiments/security_exp.mli: Sempe_core Sempe_security
