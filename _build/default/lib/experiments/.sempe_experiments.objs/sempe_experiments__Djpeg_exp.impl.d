lib/experiments/djpeg_exp.ml: Batch Buffer List Printf Sempe_core Sempe_pipeline Sempe_util Sempe_workloads String
