lib/experiments/djpeg_exp.ml: Buffer List Printf Sempe_core Sempe_pipeline Sempe_util Sempe_workloads String
