lib/experiments/table1.ml: Batch List Sempe_core Sempe_util Sempe_workloads
