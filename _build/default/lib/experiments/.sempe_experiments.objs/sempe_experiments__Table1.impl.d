lib/experiments/table1.ml: List Sempe_core Sempe_util Sempe_workloads
