lib/experiments/ablation.ml: Batch List Printf Sempe_core Sempe_mem Sempe_pipeline Sempe_util Sempe_workloads String
