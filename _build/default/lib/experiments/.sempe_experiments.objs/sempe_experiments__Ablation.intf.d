lib/experiments/ablation.mli:
