lib/experiments/batch.ml: Atomic List Sempe_util
