lib/experiments/batch.mli:
