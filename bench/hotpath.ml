(* Hot-path split timer: where does a simulated instruction's time go?
   Times the same workload in four modes — functional only, functional +
   discarding sink, functional + warm, full detailed — and prints ns per
   dynamic instruction for each, plus GC allocation per instruction.
   `dune exec bench/hotpath.exe [--iters N]` (default sized for ~1M
   dynamic instructions). *)

module Exec = Sempe_core.Exec
module Run = Sempe_core.Run
module Timing = Sempe_pipeline.Timing
module Warm = Sempe_pipeline.Warm
module Harness = Sempe_workloads.Harness
module Pool = Sempe_util.Pool

let iters =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then 100
    else if Sys.argv.(i) = "--iters" then int_of_string Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let () =
  let spec =
    { Sempe_workloads.Microbench.kernel = Sempe_workloads.Kernels.fibonacci;
      width = 4; iters }
  in
  let built =
    Harness.build Sempe_core.Scheme.Sempe
      (Sempe_workloads.Microbench.program ~ct:false spec)
  in
  let globals = Sempe_workloads.Microbench.secrets_for_leaf ~width:4 ~leaf:1 in
  let init_mem = Harness.init_mem_of built ~globals ~arrays:[] in
  let prog = built.Harness.prog in
  let mem_words = 1 lsl 20 in
  let time name f =
    let a0 = Gc.minor_words () in
    let t0 = Pool.now_s () in
    let instrs = f () in
    let dt = Pool.now_s () -. t0 in
    let alloc = (Gc.minor_words () -. a0) /. float_of_int instrs in
    Printf.printf "%-28s %9.1f ns/instr  %7.1f w/instr  (%d instrs, %.3f s)\n%!"
      name
      (dt *. 1e9 /. float_of_int instrs)
      alloc instrs dt
  in
  let config = { Exec.default_config with Exec.mem_words } in
  time "functional (no sink)" (fun () ->
      (Exec.run ~config ~init_mem prog).Exec.dyn_instrs);
  time "functional + null sink" (fun () ->
      (Exec.run ~config ~init_mem ~sink:(fun _ -> ()) prog).Exec.dyn_instrs);
  time "functional + warm" (fun () ->
      let warm = Warm.create () in
      let res = Exec.finish (Exec.start ~config ~init_mem ~warm prog) in
      res.Exec.dyn_instrs);
  time "full detailed (timing)" (fun () ->
      let timing = Timing.create () in
      let res = Exec.run ~config ~init_mem ~sink:(Timing.feed timing) prog in
      res.Exec.dyn_instrs)
