(* Hot-path split timer: where does a simulated instruction's time go?
   Times the same workload in four modes — functional only, functional +
   discarding sink, functional + warm, full detailed — and prints ns per
   dynamic instruction for each, plus GC allocation per instruction.
   `dune exec bench/hotpath.exe [--iters N] [--assert-alloc]` (default
   sized for ~1M dynamic instructions). [--assert-alloc] exits non-zero
   if any probe-free mode allocates measurably per instruction — the CI
   smoke that keeps closures and per-event records out of the hot loop. *)

module Exec = Sempe_core.Exec
module Run = Sempe_core.Run
module Timing = Sempe_pipeline.Timing
module Warm = Sempe_pipeline.Warm
module Harness = Sempe_workloads.Harness
module Pool = Sempe_util.Pool

let iters =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then 100
    else if Sys.argv.(i) = "--iters" then int_of_string Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let assert_alloc = Array.exists (( = ) "--assert-alloc") Sys.argv

(* Words per instruction below which a mode counts as allocation-free:
   fixed per-run costs (session setup, the report record) amortized over
   ~1M instructions, not anything per-instruction. *)
let alloc_free_threshold = 0.05

let () =
  let spec =
    { Sempe_workloads.Microbench.kernel = Sempe_workloads.Kernels.fibonacci;
      width = 4; iters }
  in
  let built =
    Harness.build Sempe_core.Scheme.Sempe
      (Sempe_workloads.Microbench.program ~ct:false spec)
  in
  let globals = Sempe_workloads.Microbench.secrets_for_leaf ~width:4 ~leaf:1 in
  let init_mem = Harness.init_mem_of built ~globals ~arrays:[] in
  let prog = built.Harness.prog in
  let mem_words = 1 lsl 20 in
  let failures = ref [] in
  let time ?(alloc_free = false) name f =
    let a0 = Gc.minor_words () in
    let t0 = Pool.now_s () in
    let instrs = f () in
    let dt = Pool.now_s () -. t0 in
    let alloc = (Gc.minor_words () -. a0) /. float_of_int instrs in
    Printf.printf "%-28s %9.1f ns/instr  %7.3f w/instr  (%d instrs, %.3f s)\n%!"
      name
      (dt *. 1e9 /. float_of_int instrs)
      alloc instrs dt;
    if assert_alloc && alloc_free && alloc > alloc_free_threshold then
      failures :=
        Printf.sprintf "%s allocates %.3f w/instr (limit %.3f)" name alloc
          alloc_free_threshold
        :: !failures
  in
  let config = { Exec.default_config with Exec.mem_words } in
  time ~alloc_free:true "functional (no sink)" (fun () ->
      (Exec.run ~config ~init_mem prog).Exec.dyn_instrs);
  time "functional + null sink" (fun () ->
      (Exec.run ~config ~init_mem ~sink:(fun _ -> ()) prog).Exec.dyn_instrs);
  time ~alloc_free:true "functional + warm" (fun () ->
      let warm = Warm.create () in
      let res = Exec.finish (Exec.start ~config ~init_mem ~warm prog) in
      res.Exec.dyn_instrs);
  time ~alloc_free:true "full detailed (timing)" (fun () ->
      let timing = Timing.create () in
      let res = Exec.run ~config ~init_mem ~sink:(Timing.feed timing) prog in
      res.Exec.dyn_instrs);
  match List.rev !failures with
  | [] -> ()
  | fs ->
    List.iter (Printf.eprintf "[hotpath] alloc assertion FAILED: %s\n%!") fs;
    exit 1
