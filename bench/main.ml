(* Regenerates every table and figure of the paper's evaluation on the
   simulated substrate, then runs bechamel micro-benchmarks of the core
   data structures and a full-vs-sampled simulation-rate benchmark.
   `dune exec bench/main.exe` prints everything; pass `quick` to shrink
   the sweeps (CI-sized run) and `-j N` to fan the simulation grids out
   to N worker domains (default: one per core; `-j 1` is the plain
   sequential path). The rendered sections up to the micro-benchmarks are
   byte-identical at any -j (the perf sections report wall-clock times,
   so they print after the determinism cut). `--bench-json FILE` writes
   the perf records as machine-readable JSON; `--runs N` (default 3)
   takes the median of N timed repeats of each perf measurement. `gate
   --baseline FILE [--current FILE] [--tolerance PCT] [--min-work N]`
   compares two such record sets and exits non-zero on a rate regression
   or on a record measured over fewer than N instructions — the CI perf
   gate. *)

module Config = Sempe_pipeline.Config
module Tablefmt = Sempe_util.Tablefmt
module Batch = Sempe_experiments.Batch

let gate_mode = Array.exists (fun a -> a = "gate") Sys.argv

(* Gate measurements are always CI-sized: the committed baseline is
   captured from a `quick` run, and rates must be compared like for
   like. *)
let quick = gate_mode || Array.exists (fun a -> a = "quick") Sys.argv

let jobs =
  let rec scan i =
    if i >= Array.length Sys.argv then None
    else
      let a = Sys.argv.(i) in
      if (a = "-j" || a = "--jobs") && i + 1 < Array.length Sys.argv then
        int_of_string_opt Sys.argv.(i + 1)
      else if String.length a > 2 && String.sub a 0 2 = "-j" then
        int_of_string_opt (String.sub a 2 (String.length a - 2))
      else scan (i + 1)
  in
  match scan 1 with Some n -> n | None -> Batch.default_jobs ()

let arg_after name =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let bench_json = arg_after "--bench-json"

let runs =
  match arg_after "--runs" with
  | None -> 3
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ ->
      Printf.eprintf "[bench] --runs expects a positive integer, got %S\n%!" s;
      exit 2)

let min_work =
  match arg_after "--min-work" with
  | None -> 100_000
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 0 -> n
    | _ ->
      Printf.eprintf
        "[gate] --min-work expects a non-negative instruction count, got %S\n%!"
        s;
      exit 2)

let section title body =
  Printf.printf "==== %s ====\n%s\n\n%!" title body

let table2 () =
  let rows = List.map (fun (k, v) -> [ k; v ]) (Config.rows Config.default) in
  section "Table II - baseline microarchitecture model"
    (Tablefmt.render ~header:[ "parameter"; "value" ] rows)

let table1 () =
  let iters = if quick then 1 else 2 in
  let rows = Sempe_experiments.Table1.measure ~width:10 ~iters () in
  section "Table I" (Sempe_experiments.Table1.render rows)

let fig8_9 () =
  let sizes =
    if quick then
      [ { Sempe_workloads.Djpeg.label = "256k"; blocks = 4 };
        { Sempe_workloads.Djpeg.label = "512k"; blocks = 8 } ]
    else Sempe_workloads.Djpeg.sizes
  in
  let cells = Sempe_experiments.Djpeg_exp.collect ~sizes () in
  section "Figure 8" (Sempe_experiments.Djpeg_exp.render_fig8 cells);
  section "Figure 9" (Sempe_experiments.Djpeg_exp.render_fig9 cells)

let fig10 () =
  let widths =
    if quick then [ 1; 2; 4 ] else List.init 10 (fun k -> k + 1)
  in
  let iters = if quick then 1 else 3 in
  let series = Sempe_experiments.Fig10.sweep ~widths ~iters () in
  section "Figure 10a" (Sempe_experiments.Fig10.render_a series);
  (* the paper's figure as a cross-kernel summary: average slowdown per W;
     widths a series did not sample are averaged over the present points *)
  let ratio num den (p : Sempe_experiments.Fig10.point) =
    float_of_int (num p) /. float_of_int (den p)
  in
  let pts f = Sempe_experiments.Fig10.cross_kernel_average ~f series in
  section "Figure 10a (cross-kernel average)"
    (Sempe_util.Tablefmt.chart ~title:"average slowdown vs baseline"
       ~xlabel:"W"
       ~series:
         [
           ("SeMPE", pts (ratio (fun p -> p.Sempe_experiments.Fig10.sempe_cycles)
                            (fun p -> p.Sempe_experiments.Fig10.baseline_cycles)));
           ("CTE", pts (ratio (fun p -> p.Sempe_experiments.Fig10.cte_cycles)
                          (fun p -> p.Sempe_experiments.Fig10.baseline_cycles)));
         ]
       ~log_y:true ());
  section "Figure 10b" (Sempe_experiments.Fig10.render_b series)

let security () =
  let results = Sempe_experiments.Security_exp.measure () in
  section "Security matrix (sections III / IV-G)"
    (Sempe_experiments.Security_exp.render results)

let ablations () =
  let m = Sempe_experiments.Ablation.measure () in
  section "Ablations (sections IV-E / IV-F)" (Sempe_experiments.Ablation.render m)

(* ---- bechamel micro-benchmarks of the core structures ---- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let jbtable =
    let t = Sempe_core.Jbtable.create () in
    Test.make ~name:"jbtable push/eosjmp x2" (Staged.stage @@ fun () ->
        ignore (Sempe_core.Jbtable.push t);
        Sempe_core.Jbtable.commit_sjmp t ~dest:1 ~outcome:true;
        ignore (Sempe_core.Jbtable.on_eosjmp t);
        ignore (Sempe_core.Jbtable.on_eosjmp t))
  in
  let snapshot =
    let s = Sempe_core.Snapshot.create () in
    let regs = Array.make Sempe_isa.Reg.count 7 in
    Test.make ~name:"snapshot push/nt/finish" (Staged.stage @@ fun () ->
        Sempe_core.Snapshot.push s ~regs ~outcome:true;
        Sempe_core.Snapshot.note_write s 10;
        ignore (Sempe_core.Snapshot.end_nt_path s ~regs);
        Sempe_core.Snapshot.note_write s 11;
        ignore (Sempe_core.Snapshot.finish s ~regs))
  in
  let cache =
    let c =
      Sempe_mem.Cache.create
        { Sempe_mem.Cache.name = "bench"; size_bytes = 32 * 1024; line_bytes = 64; ways = 2 }
    in
    let addr = ref 0 in
    Test.make ~name:"dl1 access" (Staged.stage @@ fun () ->
        addr := (!addr + 4096 + 64) land 0xfffff;
        ignore (Sempe_mem.Cache.access c ~addr:!addr ~write:false))
  in
  let tage =
    let p = Sempe_bpred.Tage.create () in
    let pc = ref 0 in
    Test.make ~name:"tage predict+update" (Staged.stage @@ fun () ->
        pc := (!pc + 97) land 0xffff;
        let taken = !pc land 3 <> 0 in
        ignore (p.Sempe_bpred.Predictor.predict ~pc:!pc);
        p.Sempe_bpred.Predictor.update ~pc:!pc ~taken)
  in
  let simulate =
    let spec =
      { Sempe_workloads.Microbench.kernel = Sempe_workloads.Kernels.fibonacci;
        width = 1; iters = 1 }
    in
    let src = Sempe_workloads.Microbench.program ~ct:false spec in
    let built = Sempe_workloads.Harness.build Sempe_core.Scheme.Sempe src in
    let secrets = Sempe_workloads.Microbench.secrets_for_leaf ~width:1 ~leaf:1 in
    Test.make ~name:"simulate fib W=1 (SeMPE)" (Staged.stage @@ fun () ->
        ignore (Sempe_workloads.Harness.run ~globals:secrets built))
  in
  let grouped =
    Test.make_grouped ~name:"core" ~fmt:"%s/%s"
      [ jbtable; snapshot; cache; tage; simulate ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~stabilize:true ~quota:(Time.second 0.25) ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
      let ns =
        match Analyze.OLS.estimates est with
        | Some (x :: _) -> Printf.sprintf "%.1f" x
        | Some [] | None -> "-"
      in
      rows := [ name; ns ] :: !rows)
    results;
  section "Component micro-benchmarks (bechamel, monotonic clock)"
    (Tablefmt.render ~header:[ "operation"; "ns/run" ]
       (List.sort compare !rows))

(* ---- simulation-rate benchmark: full vs sampled ---- *)

module Harness = Sempe_workloads.Harness
module Sampling = Sempe_sampling.Sampling
module Pool = Sempe_util.Pool
module Json = Sempe_obs.Json

type perf_record = {
  p_workload : string;
  p_mode : string;  (* "full" | "sampled" *)
  p_instructions : int;
  p_cycles : int;
  p_wall_s : float;
  p_speedup : float;  (* vs the full run of the same workload; 1.0 for full *)
}

let minstr_per_s r =
  if r.p_wall_s > 0. then float_of_int r.p_instructions /. r.p_wall_s /. 1e6
  else 0.

let perf_record_json r =
  Json.Obj
    [
      ("workload", Json.Str r.p_workload);
      ("mode", Json.Str r.p_mode);
      ("instructions", Json.Int r.p_instructions);
      ("cycles", Json.Int r.p_cycles);
      ("wall_s", Json.Float r.p_wall_s);
      ("minstr_per_s", Json.Float (minstr_per_s r));
      ("speedup", Json.Float r.p_speedup);
    ]

(* Simulation rate of the detailed model vs the sampled estimator on the
   same workloads, plus the CI smoke of the sampler itself: 10% coverage
   at -j 2 must land inside its own error band, and 100% coverage must
   equal the full run exactly. The workloads run millions of dynamic
   instructions even in quick mode: rates measured over less are startup
   cost, and the sampled estimator can only show its wall-clock win once
   the run is long enough to amortize its pool/checkpoint fixed costs —
   which is also the only regime anyone should sample in. Wall-clock
   numbers are nondeterministic, so this section prints after the
   determinism cut (the micro section's header) and never perturbs the
   -j sweep diff. *)
let measure_perf () =
  let sample_cfg coverage =
    { Sampling.default_config with Sampling.coverage }
  in
  (* Simulation is deterministic, so repeats only re-measure the wall
     clock; the median of [--runs] repeats (default 3) keeps the reported
     rates (and the perf gate that consumes them) stable against
     scheduler noise and cold starts — unlike best-of-N it is also not
     biased optimistic on a machine with bursty interference. *)
  (* [prepare] runs before each repeat, outside the measured window.
     Every record finishes a major cycle first: by the time the perf
     section runs, the earlier report sections have grown the major heap
     enough that pending GC work otherwise drags multi-second slices
     into whichever measurement happens to trigger it — the witness
     buffers' large allocations and the sampler's worker domains (whose
     minor collections rendezvous with the main domain) are the worst
     hit. *)
  let timed ?(prepare = fun () -> ()) f =
    let times = Array.make runs 0.0 in
    let result = ref None in
    for i = 0 to runs - 1 do
      prepare ();
      let t0 = Pool.now_s () in
      let r = f () in
      times.(i) <- Pool.now_s () -. t0;
      result := Some r
    done;
    Array.sort compare times;
    let median =
      if runs land 1 = 1 then times.(runs / 2)
      else (times.((runs / 2) - 1) +. times.(runs / 2)) /. 2.0
    in
    match !result with Some r -> (r, median) | None -> assert false
  in
  let workloads =
    let fib =
      let spec =
        { Sempe_workloads.Microbench.kernel = Sempe_workloads.Kernels.fibonacci;
          width = 4; iters = (if quick then 300 else 600) }
      in
      ( "microbench-fibonacci",
        Harness.build Sempe_core.Scheme.Sempe
          (Sempe_workloads.Microbench.program ~ct:false spec),
        Sempe_workloads.Microbench.secrets_for_leaf ~width:4 ~leaf:1,
        [] )
    in
    let djpeg =
      let fmt = Sempe_workloads.Djpeg.Ppm in
      let blocks = if quick then 32 else 64 in
      let globals, arrays = Sempe_workloads.Djpeg.inputs fmt ~seed:42 ~blocks in
      ( Printf.sprintf "djpeg-ppm-%db" blocks,
        Harness.build Sempe_core.Scheme.Sempe
          (Sempe_workloads.Djpeg.program fmt),
        globals,
        arrays )
    in
    [ fib; djpeg ]
  in
  let records = ref [] in
  let smoke_failures = ref [] in
  List.iter
    (fun (name, built, globals, arrays) ->
      let outcome, full_s =
        timed ~prepare:Gc.full_major (fun () ->
            Harness.run ~globals ~arrays built)
      in
      let report = outcome.Sempe_core.Run.timing in
      let full_cycles = report.Sempe_pipeline.Timing.cycles in
      records :=
        {
          p_workload = name;
          p_mode = "full";
          p_instructions = report.Sempe_pipeline.Timing.instructions;
          p_cycles = full_cycles;
          p_wall_s = full_s;
          p_speedup = 1.0;
        }
        :: !records;
      let est, sampled_s =
        timed ~prepare:Gc.full_major (fun () ->
            Harness.sample ~globals ~arrays ~config:(sample_cfg 0.1) ~workers:2
              built)
      in
      records :=
        {
          p_workload = name;
          p_mode = "sampled";
          p_instructions = est.Sampling.instructions;
          p_cycles = est.Sampling.cycles_estimate;
          p_wall_s = sampled_s;
          p_speedup = (if sampled_s > 0. then full_s /. sampled_s else 0.);
        }
        :: !records;
      (* Leakage-attribution overhead: the same detailed run with a
         witness recording every attacker-visible event. Not part of the
         committed baseline (the gate only compares records the baseline
         names), but the record makes the witness tax visible in every
         bench run and still has to clear the gate's min-work floor. *)
      let _, witness_s =
        timed ~prepare:Gc.full_major (fun () ->
            let w = Sempe_security.Witness.create () in
            Harness.run ~globals ~arrays
              ~sink:(Sempe_obs.Sink.of_probe (Sempe_security.Witness.probe w))
              built)
      in
      records :=
        {
          p_workload = name;
          p_mode = "witness";
          p_instructions = report.Sempe_pipeline.Timing.instructions;
          p_cycles = full_cycles;
          p_wall_s = witness_s;
          p_speedup = (if witness_s > 0. then full_s /. witness_s else 0.);
        }
        :: !records;
      if not (Sampling.contains est ~cycles:full_cycles) then
        smoke_failures :=
          Printf.sprintf
            "%s: full cycles %d outside the sampled band [%d, %d]" name
            full_cycles est.Sampling.cycles_low est.Sampling.cycles_high
          :: !smoke_failures;
      let exact =
        Harness.sample ~globals ~arrays ~config:(sample_cfg 1.0) built
      in
      if exact.Sampling.cycles_estimate <> full_cycles then
        smoke_failures :=
          Printf.sprintf
            "%s: 100%% coverage gave %d cycles, full run gave %d" name
            exact.Sampling.cycles_estimate full_cycles
          :: !smoke_failures)
    workloads;
  (List.rev !records, List.rev !smoke_failures)

(* ---- serving daemon: cold vs cache-warm sweep latency ----

   An in-process daemon on a temp unix socket, swept with the same
   workloads the rate benchmark measures: once cold (every request is a
   real simulation) and [--runs] times warm (every request is served
   from the result cache). The records ride along in --bench-json but
   are deliberately NOT part of the committed baseline: wall-clock
   serving latency on a loaded CI box is not a rate the gate should hold
   the simulator to. They still clear the gate's min-work floor — the
   instruction counts are the sweep's real simulated work. *)
let serve_perf () =
  let module Server = Sempe_serve.Server in
  let module Client = Sempe_serve.Client in
  let module Api = Sempe_serve.Api in
  let iters = if quick then 30 else 100 in
  let blocks = if quick then 8 else 64 in
  let fib scheme =
    Api.Simulate
      {
        scheme;
        workload =
          Api.Microbench { kernel = "fibonacci"; width = 4; iters; leaf = 1 };
        strict_oob = false;
      }
  in
  let sweep =
    [
      fib Sempe_core.Scheme.Sempe;
      fib Sempe_core.Scheme.Baseline;
      Api.Simulate
        {
          scheme = Sempe_core.Scheme.Sempe;
          workload = Api.Djpeg { format = "PPM"; blocks; seed = 42 };
          strict_oob = false;
        };
    ]
  in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sempe-bench-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  let server =
    Server.start
      ~config:{ Server.default_config with workers = 2 }
      (Server.Unix_sock path)
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let conn = Client.connect (Server.Unix_sock path) in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  let call req =
    match Client.call conn req with
    | Ok doc -> doc
    | Error { Client.code; message } ->
      Printf.eprintf "[bench] serve sweep failed (%s): %s\n%!" code message;
      exit 1
  in
  let sweep_once () =
    List.map
      (fun req ->
        let t0 = Pool.now_s () in
        let doc = call req in
        (doc, Pool.now_s () -. t0))
      sweep
  in
  let cold = sweep_once () in
  let warm = List.init runs (fun _ -> sweep_once ()) in
  let p50 lat =
    let a = Array.of_list (List.sort compare lat) in
    a.(Array.length a / 2)
  in
  let int_member names doc =
    let rec go doc = function
      | [] -> ( match doc with Json.Int i -> i | _ -> 0)
      | name :: rest -> (
        match Json.member name doc with Some v -> go v rest | None -> 0)
    in
    go doc names
  in
  let sum f = List.fold_left (fun acc (doc, _) -> acc + f doc) 0 cold in
  let instructions = sum (int_member [ "report"; "instructions" ]) in
  let cycles = sum (int_member [ "report"; "cycles" ]) in
  let total sw = List.fold_left (fun acc (_, dt) -> acc +. dt) 0. sw in
  let cold_s = total cold in
  let warm_s =
    let a = Array.of_list (List.sort compare (List.map total warm)) in
    if runs land 1 = 1 then a.(runs / 2)
    else (a.((runs / 2) - 1) +. a.(runs / 2)) /. 2.0
  in
  let records =
    [
      {
        p_workload = "serve-sweep";
        p_mode = "cold";
        p_instructions = instructions;
        p_cycles = cycles;
        p_wall_s = cold_s;
        p_speedup = 1.0;
      };
      {
        p_workload = "serve-sweep";
        p_mode = "warm";
        p_instructions = instructions;
        p_cycles = cycles;
        p_wall_s = warm_s;
        p_speedup = (if warm_s > 0. then cold_s /. warm_s else 0.);
      };
    ]
  in
  let cold_p50 = p50 (List.map snd cold) in
  let warm_p50 = p50 (List.concat_map (List.map snd) warm) in
  let text =
    Printf.sprintf
      "sweep of %d requests against an in-process daemon (unix socket, 2 \
       workers)\n\
       cold:  %.1f ms total, p50 %.2f ms\n\
       warm:  %.1f ms total, p50 %.2f ms (result cache)\n\
       warm speedup: %s total, %s at p50"
      (List.length sweep) (1e3 *. cold_s) (1e3 *. cold_p50) (1e3 *. warm_s)
      (1e3 *. warm_p50)
      (Tablefmt.times (if warm_s > 0. then cold_s /. warm_s else 0.))
      (Tablefmt.times (if warm_p50 > 0. then cold_p50 /. warm_p50 else 0.))
  in
  (records, text)

(* ---- serving fleet: the same sweep through a router over 2 shards ----

   Same sweep and cold/warm shape as {!serve_perf}, but through a
   [router] front end consistent-hashing onto two in-process shards —
   what the fleet smoke in CI runs as subprocesses, measured here
   in-process. The warm pass isolates the router's relay overhead:
   every request is a per-shard cache hit, so the delta against the
   single-daemon warm p50 is the price of the extra hop. Like the
   serve records, these ride in --bench-json but stay out of the
   committed baseline. *)
let fleet_perf () =
  let module Server = Sempe_serve.Server in
  let module Router = Sempe_serve.Router in
  let module Client = Sempe_serve.Client in
  let module Api = Sempe_serve.Api in
  let iters = if quick then 30 else 100 in
  let blocks = if quick then 8 else 64 in
  let fib scheme =
    Api.Simulate
      {
        scheme;
        workload =
          Api.Microbench { kernel = "fibonacci"; width = 4; iters; leaf = 1 };
        strict_oob = false;
      }
  in
  let sweep =
    [
      fib Sempe_core.Scheme.Sempe;
      fib Sempe_core.Scheme.Baseline;
      Api.Simulate
        {
          scheme = Sempe_core.Scheme.Sempe;
          workload = Api.Djpeg { format = "PPM"; blocks; seed = 42 };
          strict_oob = false;
        };
    ]
  in
  let sock name =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sempe-bench-%d-%s.sock" (Unix.getpid ()) name)
  in
  let s0 = sock "shard0" and s1 = sock "shard1" and rt = sock "router" in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ s0; s1; rt ];
  let shard_cfg = { Server.default_config with workers = 2 } in
  let shard0 = Server.start ~config:shard_cfg (Server.Unix_sock s0) in
  let shard1 = Server.start ~config:shard_cfg (Server.Unix_sock s1) in
  let router =
    Router.start
      ~shards:[ Server.Unix_sock s0; Server.Unix_sock s1 ]
      (Server.Unix_sock rt)
  in
  Fun.protect
    ~finally:(fun () ->
      Router.stop router;
      Server.stop shard0;
      Server.stop shard1;
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ s0; s1; rt ])
  @@ fun () ->
  let conn = Client.connect (Server.Unix_sock rt) in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  let call req =
    match Client.call conn req with
    | Ok doc -> doc
    | Error { Client.code; message } ->
      Printf.eprintf "[bench] fleet sweep failed (%s): %s\n%!" code message;
      exit 1
  in
  let sweep_once () =
    List.map
      (fun req ->
        let t0 = Pool.now_s () in
        let doc = call req in
        (doc, Pool.now_s () -. t0))
      sweep
  in
  let cold = sweep_once () in
  let warm = List.init runs (fun _ -> sweep_once ()) in
  let p50 lat =
    let a = Array.of_list (List.sort compare lat) in
    a.(Array.length a / 2)
  in
  let int_member names doc =
    let rec go doc = function
      | [] -> ( match doc with Json.Int i -> i | _ -> 0)
      | name :: rest -> (
        match Json.member name doc with Some v -> go v rest | None -> 0)
    in
    go doc names
  in
  let sum f = List.fold_left (fun acc (doc, _) -> acc + f doc) 0 cold in
  let instructions = sum (int_member [ "report"; "instructions" ]) in
  let cycles = sum (int_member [ "report"; "cycles" ]) in
  let total sw = List.fold_left (fun acc (_, dt) -> acc +. dt) 0. sw in
  let cold_s = total cold in
  let warm_s =
    let a = Array.of_list (List.sort compare (List.map total warm)) in
    if runs land 1 = 1 then a.(runs / 2)
    else (a.((runs / 2) - 1) +. a.(runs / 2)) /. 2.0
  in
  let records =
    [
      {
        p_workload = "fleet-sweep";
        p_mode = "cold";
        p_instructions = instructions;
        p_cycles = cycles;
        p_wall_s = cold_s;
        p_speedup = 1.0;
      };
      {
        p_workload = "fleet-sweep";
        p_mode = "warm";
        p_instructions = instructions;
        p_cycles = cycles;
        p_wall_s = warm_s;
        p_speedup = (if warm_s > 0. then cold_s /. warm_s else 0.);
      };
    ]
  in
  let cold_p50 = p50 (List.map snd cold) in
  let warm_p50 = p50 (List.concat_map (List.map snd) warm) in
  let text =
    Printf.sprintf
      "same sweep through a consistent-hash router over 2 in-process shards\n\
       cold:  %.1f ms total, p50 %.2f ms\n\
       warm:  %.1f ms total, p50 %.2f ms (per-shard result cache)\n\
       warm speedup: %s total, %s at p50"
      (1e3 *. cold_s) (1e3 *. cold_p50) (1e3 *. warm_s) (1e3 *. warm_p50)
      (Tablefmt.times (if warm_s > 0. then cold_s /. warm_s else 0.))
      (Tablefmt.times (if warm_p50 > 0. then cold_p50 /. warm_p50 else 0.))
  in
  (records, text)

let perf () =
  let records, smoke_failures = measure_perf () in
  let serve_records, serve_text = serve_perf () in
  let fleet_records, fleet_text = fleet_perf () in
  let records = records @ serve_records @ fleet_records in
  section "Simulation rate (full vs sampled, 25% coverage)"
    (Tablefmt.render
       ~header:
         [ "workload"; "mode"; "instrs"; "cycles"; "wall s"; "Minstr/s";
           "speedup" ]
       (List.map
          (fun r ->
            [
              r.p_workload; r.p_mode; string_of_int r.p_instructions;
              string_of_int r.p_cycles;
              Printf.sprintf "%.3f" r.p_wall_s;
              Printf.sprintf "%.2f" (minstr_per_s r);
              Tablefmt.times r.p_speedup;
            ])
          records));
  section "Serving latency (daemon, cold vs cache-warm)" serve_text;
  section "Fleet latency (router + 2 shards, cold vs cache-warm)" fleet_text;
  (match bench_json with
   | None -> ()
   | Some file ->
     let oc = open_out file in
     output_string oc
       (Json.to_string (Json.List (List.map perf_record_json records)));
     output_char oc '\n';
     close_out oc;
     Printf.eprintf "[bench] wrote %d perf records to %s\n%!"
       (List.length records) file);
  match smoke_failures with
  | [] -> ()
  | fs ->
    List.iter (Printf.eprintf "[bench] sampling smoke FAILED: %s\n%!") fs;
    exit 1

(* ---- perf-regression gate ---- *)

(* `gate --baseline FILE [--current FILE] [--tolerance PCT]`: compare
   perf records (as written by --bench-json) and fail when any
   simulation rate regresses past the tolerance. Without --current, a
   fresh quick-sized measurement is taken — ci.sh passes the record file
   its own quick run just wrote, so the gate costs nothing extra there. *)

type gate_rec = {
  g_workload : string;
  g_mode : string;
  g_rate : float;
  g_instructions : int;
}

let gate_key r = r.g_workload ^ "/" ^ r.g_mode

let gate_rec_of_json file j =
  let field k =
    match Json.member k j with
    | Some v -> v
    | None ->
      Printf.eprintf "[gate] %s: perf record is missing %S\n%!" file k;
      exit 2
  in
  let str k = match field k with Json.Str s -> s | _ ->
    Printf.eprintf "[gate] %s: perf record field %S is not a string\n%!" file k;
    exit 2
  in
  let num k =
    match field k with
    | Json.Float f -> f
    | Json.Int i -> float_of_int i
    | _ ->
      Printf.eprintf "[gate] %s: perf record field %S is not a number\n%!" file k;
      exit 2
  in
  {
    g_workload = str "workload";
    g_mode = str "mode";
    g_rate = num "minstr_per_s";
    g_instructions = int_of_float (num "instructions");
  }

let gate_recs_of_file file =
  let text =
    try In_channel.with_open_text file In_channel.input_all
    with Sys_error msg -> Printf.eprintf "[gate] %s\n%!" msg; exit 2
  in
  match Json.of_string text with
  | Json.List items -> List.map (gate_rec_of_json file) items
  | _ | (exception Json.Parse_error _) ->
    Printf.eprintf "[gate] %s: expected a JSON list of perf records\n%!" file;
    exit 2

let run_gate () =
  let baseline_file =
    match arg_after "--baseline" with
    | Some f -> f
    | None ->
      Printf.eprintf
        "usage: bench/main.exe gate --baseline FILE [--current FILE] \
         [--tolerance PCT] [--runs N] [--min-work N]\n%!";
      exit 2
  in
  let tolerance =
    match arg_after "--tolerance" with
    | None -> 20.0
    | Some s -> (
      match float_of_string_opt s with
      | Some t when t >= 0.0 -> t
      | _ ->
        Printf.eprintf "[gate] --tolerance expects a non-negative number, got %S\n%!" s;
        exit 2)
  in
  let baseline = gate_recs_of_file baseline_file in
  let current, current_src =
    match arg_after "--current" with
    | Some f -> (gate_recs_of_file f, f)
    | None ->
      let records, smokes = measure_perf () in
      List.iter (Printf.eprintf "[gate] sampling smoke FAILED: %s\n%!") smokes;
      if smokes <> [] then exit 1;
      ( List.map
          (fun r ->
            { g_workload = r.p_workload; g_mode = r.p_mode;
              g_rate = minstr_per_s r; g_instructions = r.p_instructions })
          records,
        "fresh quick measurement" )
  in
  let failed = ref false in
  (* Measured-work floor: a rate measured over a handful of instructions
     is startup cost and timer noise, not a simulation rate. Refuse to
     gate on such records instead of passing or failing on jitter. *)
  List.iter
    (fun c ->
      if c.g_instructions < min_work then begin
        Printf.eprintf
          "[gate] FAILED: %s measured only %d instructions, below the \
           --min-work floor of %d; the workload is too small for its rate \
           to mean anything\n%!"
          (gate_key c) c.g_instructions min_work;
        failed := true
      end)
    current;
  (* A sampled record exists to be cheaper than detailed simulation; a
     sampled rate below its full sibling means the machinery is pure
     overhead and the estimator should have fallen back to the exact
     path. Gate on it regardless of what the baseline says. *)
  List.iter
    (fun c ->
      if c.g_mode = "sampled" then
        match
          List.find_opt
            (fun f -> f.g_mode = "full" && f.g_workload = c.g_workload)
            current
        with
        | Some f when c.g_rate < f.g_rate ->
          Printf.eprintf
            "[gate] FAILED: %s rate %.2f Minstr/s is below its full \
             sibling's %.2f; sampling must buy wall clock, not cost it\n%!"
            (gate_key c) c.g_rate f.g_rate;
          failed := true
        | _ -> ())
    current;
  let rows =
    List.map
      (fun b ->
        let pct d = Printf.sprintf "%+.1f%%" d in
        let rate r = Printf.sprintf "%.2f" r in
        match List.find_opt (fun c -> gate_key c = gate_key b) current with
        | None ->
          failed := true;
          [ b.g_workload; b.g_mode; rate b.g_rate; "-"; "-"; "FAIL (missing)" ]
        | Some c ->
          let delta =
            if b.g_rate > 0.0 then (c.g_rate -. b.g_rate) /. b.g_rate *. 100.0
            else 0.0
          in
          let ok = delta >= -.tolerance in
          if not ok then failed := true;
          [ b.g_workload; b.g_mode; rate b.g_rate; rate c.g_rate; pct delta;
            (if ok then "ok" else "FAIL") ])
      baseline
  in
  Printf.printf "Perf gate: %s vs %s (tolerance %.1f%%)\n%s\n%!" current_src
    baseline_file tolerance
    (Tablefmt.render
       ~header:
         [ "workload"; "mode"; "baseline Minstr/s"; "current Minstr/s";
           "delta"; "status" ]
       rows);
  if !failed then begin
    Printf.eprintf
      "[gate] FAILED: a simulation rate regressed more than %.1f%% below \
       %s (or a record went missing); refresh the baseline with\n\
      \  dune exec bench/main.exe -- quick --bench-json bench/baseline.json\n\
       if the regression is intended\n%!"
      tolerance baseline_file;
    exit 1
  end

let () =
  if gate_mode then begin
    Batch.set_jobs jobs;
    run_gate ();
    exit 0
  end;
  Batch.set_jobs jobs;
  (* stderr, so section output stays byte-identical across -j values *)
  if Batch.jobs () > 1 then
    Printf.eprintf "[bench] fanning sweeps out to %d worker domains\n%!"
      (Batch.jobs ());
  Printf.printf "SeMPE reproduction benchmark harness%s\n\n%!"
    (if quick then " (quick mode)" else "");
  table2 ();
  table1 ();
  fig8_9 ();
  fig10 ();
  security ();
  ablations ();
  (* stderr again: job-timing telemetry must not perturb the -j diff *)
  (if Batch.jobs () > 1 then
     match Batch.telemetry () with
     | None -> ()
     | Some t ->
       Printf.eprintf
         "[bench] %d simulation jobs, %.2fs wall, %.1f jobs/s; per-job \
          mean %.3fs, p50 %.3fs, p95 %.3fs, max %.3fs\n\
          %!"
         t.Batch.jobs_run t.Batch.wall_s t.Batch.throughput t.Batch.mean_s
         t.Batch.p50_s t.Batch.p95_s t.Batch.max_s);
  micro ();
  perf ()
