(* sempe-sim: command-line front end to the SeMPE simulator.

   Subcommands: config, microbench, djpeg, rsa, sample, leakage, report,
   profile, trace, asm-run, disasm, fuzz. *)

open Cmdliner
module Scheme = Sempe_core.Scheme
module Run = Sempe_core.Run
module Timing = Sempe_pipeline.Timing
module Config = Sempe_pipeline.Config
module Harness = Sempe_workloads.Harness
module MB = Sempe_workloads.Microbench
module Kernels = Sempe_workloads.Kernels
module Djpeg = Sempe_workloads.Djpeg
module Rsa = Sempe_workloads.Rsa
module Tablefmt = Sempe_util.Tablefmt
module Json = Sempe_obs.Json
module Report = Sempe_obs.Report
module Profile = Sempe_obs.Profile
module Sink = Sempe_obs.Sink
module Sampling = Sempe_sampling.Sampling
module Pool = Sempe_util.Pool
module Api = Sempe_serve.Api
module Server = Sempe_serve.Server
module Router = Sempe_serve.Router
module Client = Sempe_serve.Client
module Loadgen = Sempe_serve.Loadgen
module Subproc = Sempe_util.Subproc

let scheme_conv =
  let parse s =
    match Scheme.of_string s with
    | Some v -> Ok v
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown scheme %S (expected one of: %s)" s
              (String.concat ", " (List.map Scheme.name Scheme.all))))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Scheme.name s))

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Scheme.Sempe
    & info [ "scheme"; "s" ] ~docv:"SCHEME"
        ~doc:"Protection scheme: baseline, sempe, sempe-on-legacy, cte, raccoon or mto.")

(* Parallel fan-out of the experiment grids (report / leakage). The
   rendered output is byte-identical at any -j. *)
let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the simulation sweeps. 0 (the default) \
           means one per core; 1 forces the sequential path.")

let set_jobs j =
  Sempe_experiments.Batch.set_jobs
    (if j <= 0 then Sempe_experiments.Batch.default_jobs () else j)

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit a machine-readable JSON document on stdout.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Write sweep progress and per-job timing telemetry to stderr \
           (stdout output is unaffected).")

let print_sweep_telemetry () =
  match Sempe_experiments.Batch.telemetry () with
  | None -> ()
  | Some t ->
    Printf.eprintf
      "[sweep] %d jobs, %.2fs wall, %.1f jobs/s; per-job mean %.3fs, p50 \
       %.3fs, p95 %.3fs, max %.3fs\n\
       %!"
      t.Sempe_experiments.Batch.jobs_run t.Sempe_experiments.Batch.wall_s
      t.Sempe_experiments.Batch.throughput t.Sempe_experiments.Batch.mean_s
      t.Sempe_experiments.Batch.p50_s t.Sempe_experiments.Batch.p95_s
      t.Sempe_experiments.Batch.max_s

let with_progress progress f =
  Sempe_experiments.Batch.set_progress progress;
  let r = f () in
  if progress then print_sweep_telemetry ();
  r

let print_report (r : Timing.report) =
  Tablefmt.print ~header:[ "metric"; "value" ]
    [
      [ "instructions"; string_of_int r.Timing.instructions ];
      [ "cycles"; string_of_int r.Timing.cycles ];
      [ "CPI"; Tablefmt.fixed 3 r.Timing.cpi ];
      [ "time @2GHz"; Printf.sprintf "%.1f us" (Run.seconds Config.default r.Timing.cycles *. 1e6) ];
      [ "cond. branches"; string_of_int r.Timing.cond_branches ];
      [ "mispredicts"; string_of_int r.Timing.mispredicts ];
      [ "secure branches (sJMP)"; string_of_int r.Timing.secure_branches ];
      [ "pipeline drains"; string_of_int r.Timing.drains ];
      [ "SPM transfer cycles"; string_of_int r.Timing.spm_cycles ];
      [ "loads / stores";
        Printf.sprintf "%d / %d" r.Timing.loads r.Timing.stores ];
      [ "IL1 miss rate"; Tablefmt.percent r.Timing.il1_miss_rate ];
      [ "DL1 miss rate"; Tablefmt.percent r.Timing.dl1_miss_rate ];
      [ "L2 miss rate"; Tablefmt.percent r.Timing.l2_miss_rate ];
    ]

let print_json j = print_endline (Json.to_string j)

(* ---- sampled-simulation options shared by the workload commands ---- *)

let strict_oob_arg =
  Arg.(
    value & flag
    & info [ "strict-oob" ]
        ~doc:
          "Trap on out-of-bounds data addresses and indirect-jump targets \
           (jr/ret) instead of wrapping them into memory / into the \
           program (the forgiving default).")

let sample_flag =
  Arg.(
    value & flag
    & info [ "sample" ]
        ~doc:
          "Estimate cycles by sampled simulation (checkpointed intervals \
           under functional warming) instead of simulating every \
           instruction in detail.")

let coverage_arg =
  Arg.(
    value & opt float Sampling.default_config.Sampling.coverage
    & info [ "coverage" ] ~docv:"FRAC"
        ~doc:"Fraction of intervals measured in detail, in (0, 1].")

let interval_arg =
  Arg.(
    value & opt int Sampling.default_config.Sampling.interval
    & info [ "interval" ] ~docv:"N" ~doc:"Instructions per sampling interval.")

let warmup_arg =
  Arg.(
    value & opt int Sampling.default_config.Sampling.warmup
    & info [ "warmup" ] ~docv:"N"
        ~doc:"Detailed warmup instructions before each measured interval.")

let sample_config ~interval ~coverage ~warmup =
  { Sampling.default_config with Sampling.interval; coverage; warmup }

let print_estimate (e : Sampling.estimate) =
  Tablefmt.print ~header:[ "metric"; "value" ]
    [
      [ "instructions"; string_of_int e.Sampling.instructions ];
      [ "cycles (estimate)"; string_of_int e.Sampling.cycles_estimate ];
      [ "90% band";
        Printf.sprintf "[%d, %d]" e.Sampling.cycles_low e.Sampling.cycles_high ];
      [ "CPI"; Tablefmt.fixed 3 e.Sampling.cpi ];
      [ "intervals measured";
        Printf.sprintf "%d / %d" e.Sampling.intervals_measured
          e.Sampling.intervals_total ];
      [ "instructions measured";
        Printf.sprintf "%d (%.1f%%)" e.Sampling.measured_instructions
          (100.
          *. float_of_int e.Sampling.measured_instructions
          /. float_of_int (max 1 e.Sampling.instructions)) ];
      [ "exact"; (if e.Sampling.exact then "yes (full coverage)" else "no") ];
      [ "checkpoint volume";
        Printf.sprintf "%.1f KiB"
          (float_of_int e.Sampling.checkpoint_bytes /. 1024.) ];
    ]

(* ---- config ---- *)

let config_cmd =
  let run () =
    Tablefmt.print ~header:[ "parameter"; "value" ]
      (List.map (fun (k, v) -> [ k; v ]) (Config.rows Config.default))
  in
  Cmd.v (Cmd.info "config" ~doc:"Print the Table II machine model.")
    Term.(const run $ const ())

(* ---- microbench ---- *)

let kernel_conv =
  let parse s =
    match Kernels.by_name s with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown kernel %S (expected: %s)" s
              (String.concat ", "
                 (List.map (fun k -> k.Kernels.name) Kernels.all))))
  in
  Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt k.Kernels.name)

let ct_of_scheme = function
  | Scheme.Cte | Scheme.Raccoon | Scheme.Mto -> true
  | Scheme.Baseline | Scheme.Sempe | Scheme.Sempe_on_legacy -> false

let microbench_cmd =
  let run scheme kernel width iters leaf strict sample interval coverage warmup
      json =
    (* The JSON branches go through the serving API so the daemon's
       responses are byte-identical to this CLI by construction. *)
    if json then
      let workload =
        Api.Microbench { kernel = kernel.Kernels.name; width; iters; leaf }
      in
      print_json
        (Api.perform
           (if sample then
              Api.Sample
                { scheme; workload; strict_oob = strict;
                  params = { Api.interval; coverage; warmup } }
            else Api.Simulate { scheme; workload; strict_oob = strict }))
    else
    let spec = { MB.kernel; width; iters } in
    let src = MB.program ~ct:(ct_of_scheme scheme) spec in
    let secrets = MB.secrets_for_leaf ~width ~leaf in
    let built = Harness.build scheme src in
    let forgiving_oob = not strict in
    if sample then begin
      let config = sample_config ~interval ~coverage ~warmup in
      let est = Harness.sample ~forgiving_oob ~globals:secrets ~config built in
      begin
        Printf.printf
          "microbenchmark %s, W=%d, iters=%d, scheme=%s, true leaf=%d (sampled)\n\n"
          kernel.Kernels.name width iters (Scheme.name scheme) leaf;
        print_estimate est
      end
    end
    else begin
      let outcome = Harness.run ~forgiving_oob ~globals:secrets built in
      let base =
        Harness.run ~forgiving_oob ~globals:secrets
          (Harness.build Scheme.Baseline (MB.program ~ct:false spec))
      in
      let slowdown = Run.overhead ~baseline:base outcome in
      begin
        Printf.printf "microbenchmark %s, W=%d, iters=%d, scheme=%s, true leaf=%d\n"
          kernel.Kernels.name width iters (Scheme.name scheme) leaf;
        Printf.printf "checksum = %d\n\n" (Harness.return_value outcome);
        print_report outcome.Run.timing;
        Printf.printf "\nslowdown vs baseline: %s\n" (Tablefmt.times slowdown)
      end
    end
  in
  let kernel =
    Arg.(
      value & opt kernel_conv Kernels.fibonacci
      & info [ "kernel"; "k" ] ~docv:"KERNEL" ~doc:"Workload kernel.")
  in
  let width =
    Arg.(value & opt int 4 & info [ "width"; "w" ] ~docv:"W" ~doc:"Nesting width W.")
  in
  let iters =
    Arg.(value & opt int 3 & info [ "iters"; "i" ] ~docv:"N" ~doc:"Iterations.")
  in
  let leaf =
    Arg.(value & opt int 1 & info [ "leaf" ] ~docv:"N" ~doc:"True leaf (1..W+1).")
  in
  Cmd.v
    (Cmd.info "microbench" ~doc:"Run the Figure 7 nested-chain microbenchmark.")
    Term.(
      const run $ scheme_arg $ kernel $ width $ iters $ leaf $ strict_oob_arg
      $ sample_flag $ interval_arg $ coverage_arg $ warmup_arg $ json_arg)

(* ---- djpeg ---- *)

let djpeg_format = function
  | "PPM" -> Djpeg.Ppm
  | "GIF" -> Djpeg.Gif
  | "BMP" -> Djpeg.Bmp
  | other -> failwith (Printf.sprintf "unknown format %S" other)

let djpeg_cmd =
  let run scheme fmt_name blocks seed strict sample interval coverage warmup
      json =
    let fmt = djpeg_format (String.uppercase_ascii fmt_name) in
    if json then
      let workload =
        Api.Djpeg { format = Djpeg.format_name fmt; blocks; seed }
      in
      print_json
        (Api.perform
           (if sample then
              Api.Sample
                { scheme; workload; strict_oob = strict;
                  params = { Api.interval; coverage; warmup } }
            else Api.Simulate { scheme; workload; strict_oob = strict }))
    else
    let built = Harness.build scheme (Djpeg.program fmt) in
    let globals, arrays = Djpeg.inputs fmt ~seed ~blocks in
    let forgiving_oob = not strict in
    if sample then begin
      let config = sample_config ~interval ~coverage ~warmup in
      let est =
        Harness.sample ~forgiving_oob ~globals ~arrays ~config built
      in
      Printf.printf "djpeg -> %s, %d blocks, scheme=%s, image seed=%d (sampled)\n\n"
        (Djpeg.format_name fmt) blocks (Scheme.name scheme) seed;
      print_estimate est
    end
    else begin
      let outcome = Harness.run ~forgiving_oob ~globals ~arrays built in
      Printf.printf "djpeg -> %s, %d blocks, scheme=%s, image seed=%d\n"
        (Djpeg.format_name fmt) blocks (Scheme.name scheme) seed;
      Printf.printf "checksum = %d\n\n" (Harness.return_value outcome);
      print_report outcome.Run.timing
    end
  in
  let fmt =
    Arg.(value & opt string "PPM" & info [ "format"; "f" ] ~docv:"FMT" ~doc:"PPM, GIF or BMP.")
  in
  let blocks =
    Arg.(value & opt int 8 & info [ "blocks"; "b" ] ~docv:"N" ~doc:"8x8 blocks to decode.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Secret image seed.")
  in
  Cmd.v (Cmd.info "djpeg" ~doc:"Run the synthetic djpeg decoder.")
    Term.(
      const run $ scheme_arg $ fmt $ blocks $ seed $ strict_oob_arg
      $ sample_flag $ interval_arg $ coverage_arg $ warmup_arg $ json_arg)

(* ---- rsa ---- *)

let rsa_cmd =
  let run scheme key strict sample interval coverage warmup json =
    if json then
      let workload = Api.Rsa { key } in
      print_json
        (Api.perform
           (if sample then
              Api.Sample
                { scheme; workload; strict_oob = strict;
                  params = { Api.interval; coverage; warmup } }
            else Api.Simulate { scheme; workload; strict_oob = strict }))
    else
    let built = Harness.build scheme Rsa.program in
    let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
    let forgiving_oob = not strict in
    if sample then begin
      let config = sample_config ~interval ~coverage ~warmup in
      let est =
        Harness.sample ~forgiving_oob ~globals ~arrays ~config built
      in
      Printf.printf "modexp (Figure 1), key=0x%04x, scheme=%s (sampled)\n\n"
        key (Scheme.name scheme);
      print_estimate est
    end
    else begin
      let outcome = Harness.run ~forgiving_oob ~globals ~arrays built in
      let expected = Rsa.reference ~key ~base:1234 ~modulus:99991 in
      Printf.printf "modexp (Figure 1), key=0x%04x, scheme=%s\n" key
        (Scheme.name scheme);
      Printf.printf "result = %d (expected %d)\n\n"
        (Harness.return_value outcome) expected;
      print_report outcome.Run.timing
    end
  in
  let key =
    Arg.(value & opt int 0x1234 & info [ "key" ] ~docv:"KEY" ~doc:"Secret exponent.")
  in
  Cmd.v (Cmd.info "rsa" ~doc:"Run RSA modular exponentiation (Figure 1).")
    Term.(
      const run $ scheme_arg $ key $ strict_oob_arg $ sample_flag
      $ interval_arg $ coverage_arg $ warmup_arg $ json_arg)

(* ---- profile / trace: shared workload selector ---- *)

(* [rsa], [djpeg], or a microbenchmark kernel name; each returns the
   source program, its initial state, and a one-line description. *)
let workload scheme which ~width ~iters ~leaf ~blocks ~seed ~key =
  match String.lowercase_ascii which with
  | "rsa" ->
    let globals, arrays = Rsa.inputs ~key ~base:1234 ~modulus:99991 in
    (Rsa.program, globals, arrays, Printf.sprintf "rsa key=0x%04x" key)
  | "djpeg" ->
    let fmt = Djpeg.Ppm in
    let globals, arrays = Djpeg.inputs fmt ~seed ~blocks in
    ( Djpeg.program fmt,
      globals,
      arrays,
      Printf.sprintf "djpeg PPM blocks=%d seed=%d" blocks seed )
  | other -> (
    match Kernels.by_name other with
    | Some kernel ->
      let spec = { MB.kernel; width; iters } in
      ( MB.program ~ct:(ct_of_scheme scheme) spec,
        MB.secrets_for_leaf ~width ~leaf,
        [],
        Printf.sprintf "%s W=%d iters=%d leaf=%d" kernel.Kernels.name width
          iters leaf )
    | None ->
      Printf.eprintf "unknown workload %S (rsa, djpeg, or a kernel: %s)\n"
        other
        (String.concat ", " (List.map (fun k -> k.Kernels.name) Kernels.all));
      exit 1)

(* The serving-API mirror of [workload]: the same selector semantics,
   producing an {!Api.workload} value (the profile/djpeg selector is
   always PPM, like [workload]). *)
let api_workload which ~width ~iters ~leaf ~blocks ~seed ~key =
  match String.lowercase_ascii which with
  | "rsa" -> Api.Rsa { key }
  | "djpeg" -> Api.Djpeg { format = "PPM"; blocks; seed }
  | other -> (
    match Kernels.by_name other with
    | Some kernel ->
      Api.Microbench { kernel = kernel.Kernels.name; width; iters; leaf }
    | None ->
      Printf.eprintf "unknown workload %S (rsa, djpeg, or a kernel: %s)\n"
        other
        (String.concat ", " (List.map (fun k -> k.Kernels.name) Kernels.all));
      exit 1)

let workload_arg =
  Arg.(
    value & pos 0 string "rsa"
    & info [] ~docv:"WORKLOAD" ~doc:"rsa, djpeg, or a microbenchmark kernel name.")

let width_arg =
  Arg.(value & opt int 4 & info [ "width"; "w" ] ~docv:"W" ~doc:"Nesting width W (kernels).")

let iters_arg =
  Arg.(value & opt int 3 & info [ "iters"; "i" ] ~docv:"N" ~doc:"Iterations (kernels).")

let leaf_arg =
  Arg.(value & opt int 1 & info [ "leaf" ] ~docv:"N" ~doc:"True leaf (kernels).")

let blocks_arg =
  Arg.(value & opt int 8 & info [ "blocks"; "b" ] ~docv:"N" ~doc:"8x8 blocks (djpeg).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Image seed (djpeg).")

let key_arg =
  Arg.(value & opt int 0x1234 & info [ "key" ] ~docv:"KEY" ~doc:"Secret exponent (rsa).")

(* ---- sample ---- *)

let sample_cmd =
  let run scheme which width iters leaf blocks seed key interval coverage
      warmup jobs strict compare json =
    let src, globals, arrays, desc =
      workload scheme which ~width ~iters ~leaf ~blocks ~seed ~key
    in
    let built = Harness.build scheme src in
    let forgiving_oob = not strict in
    let config = sample_config ~interval ~coverage ~warmup in
    let workers = if jobs <= 0 then None else Some jobs in
    (* --compare-full: also run the ordinary detailed simulation so the
       estimate's error and the wall-clock speedup can be read off
       directly (this is the acceptance check for the sampler). The
       reference runs first: the first simulation in a process pays the
       GC-heap growth for both, and the reference is the baseline the
       sampled time is judged against. *)
    let reference =
      if not compare then None
      else begin
        let t1 = Pool.now_s () in
        let outcome = Harness.run ~forgiving_oob ~globals ~arrays built in
        Some (Run.cycles outcome, Pool.now_s () -. t1)
      end
    in
    let t0 = Pool.now_s () in
    let est =
      Harness.sample ~forgiving_oob ~globals ~arrays ~config ?workers built
    in
    let sampled_s = Pool.now_s () -. t0 in
    if json then
      print_json
        (Json.Obj
           ([
              ("workload", Json.Str desc);
              ("scheme", Json.Str (Scheme.name scheme));
              ("sampled_s", Json.Float sampled_s);
              ("sampling", Sampling.to_json est);
            ]
           @
           match reference with
           | None -> []
           | Some (full, full_s) ->
             [
               ("full_cycles", Json.Int full);
               ("full_s", Json.Float full_s);
               ("error", Json.Float (Sampling.relative_error est ~cycles:full));
               ("in_bound", Json.Bool (Sampling.contains est ~cycles:full));
               ("speedup",
                Json.Float (if sampled_s > 0. then full_s /. sampled_s else 0.));
             ]))
    else begin
      Printf.printf "sampled simulation: %s, scheme=%s\n" desc
        (Scheme.name scheme);
      Printf.printf
        "interval=%d instrs, coverage=%s, warmup=%d instrs (%.2fs wall)\n\n"
        interval
        (Tablefmt.percent coverage)
        warmup sampled_s;
      print_estimate est;
      match reference with
      | None -> ()
      | Some (full, full_s) ->
        Printf.printf
          "\nfull run: %d cycles in %.2fs -> error %s (%s the 90%% band), \
           speedup %s\n"
          full full_s
          (Tablefmt.percent (Sampling.relative_error est ~cycles:full))
          (if Sampling.contains est ~cycles:full then "inside" else "OUTSIDE")
          (Tablefmt.times (if sampled_s > 0. then full_s /. sampled_s else 0.))
    end
  in
  let compare_arg =
    Arg.(
      value & flag
      & info [ "compare-full" ]
          ~doc:
            "Also run the full detailed simulation and report the \
             estimate's relative error and the wall-clock speedup.")
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:
         "Estimate a workload's cycle count by sampled simulation: one \
          functional pass warms caches and predictors and saves \
          checkpoints; a subset of intervals is then measured under the \
          detailed timing model (in parallel with -j) and extrapolated \
          with a confidence band. Performance only: leakage/security \
          analyses need full runs.")
    Term.(
      const run $ scheme_arg $ workload_arg $ width_arg $ iters_arg $ leaf_arg
      $ blocks_arg $ seed_arg $ key_arg $ interval_arg $ coverage_arg
      $ warmup_arg $ jobs_arg $ strict_oob_arg $ compare_arg $ json_arg)

(* ---- profile ---- *)

let profile_cmd =
  let run scheme which width iters leaf blocks seed key top json =
    if json then
      print_json
        (Api.perform
           (Api.Profile
              {
                scheme;
                workload =
                  api_workload which ~width ~iters ~leaf ~blocks ~seed ~key;
                top;
              }))
    else
    let src, globals, arrays, desc =
      workload scheme which ~width ~iters ~leaf ~blocks ~seed ~key
    in
    let built = Harness.build scheme src in
    let profile = Profile.create () in
    let sink = Sink.of_probe (Profile.probe profile) in
    let outcome = Harness.run ~globals ~arrays ~sink built in
    sink.Sink.close ();
    let report = outcome.Run.timing in
    begin
      Printf.printf "profile: %s, scheme=%s\n\n" desc (Scheme.name scheme);
      print_report report;
      print_newline ();
      print_string (Report.render_stall_stack report);
      print_newline ();
      let code = built.Harness.prog.Sempe_isa.Program.code in
      let resolve pc =
        if pc >= 0 && pc < Array.length code then
          Sempe_isa.Instr.to_string code.(pc)
        else "?"
      in
      print_string (Profile.render ~n:top ~resolve profile)
    end
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top"; "n" ] ~docv:"N" ~doc:"Rows per profile table.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a workload with the per-PC profiler attached: CPI stall \
          stack, top mispredicting branches, top DL1-missing loads, and \
          per-sJMP drain costs.")
    Term.(
      const run $ scheme_arg $ workload_arg $ width_arg $ iters_arg
      $ leaf_arg $ blocks_arg $ seed_arg $ key_arg $ top $ json_arg)

(* ---- trace ---- *)

let trace_cmd =
  let run scheme which width iters leaf blocks seed key out jsonl =
    let src, globals, arrays, desc =
      workload scheme which ~width ~iters ~leaf ~blocks ~seed ~key
    in
    let built = Harness.build scheme src in
    let oc = open_out out in
    let sink = if jsonl then Sink.jsonl oc else Sink.perfetto oc in
    let outcome =
      Fun.protect
        ~finally:(fun () ->
          sink.Sink.close ();
          close_out oc)
        (fun () -> Harness.run ~globals ~arrays ~sink built)
    in
    let r = outcome.Run.timing in
    Printf.printf "trace: %s, scheme=%s\n" desc (Scheme.name scheme);
    Printf.printf "wrote %s (%d instructions, %d cycles)\n" out
      r.Timing.instructions r.Timing.cycles;
    if not jsonl then
      print_endline
        "open it at https://ui.perfetto.dev (or chrome://tracing): one \
         track per pipeline stage, one slice per instruction"
  in
  let out =
    Arg.(
      value & opt string "sempe-trace.json"
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let jsonl =
    Arg.(
      value & flag
      & info [ "jsonl" ]
          ~doc:
            "Emit flat JSON-lines event records instead of the Chrome \
             trace-event format.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a workload with the per-instruction pipeline tracer attached \
          and write a Perfetto-loadable trace (fetch, dispatch, issue, \
          complete, commit spans).")
    Term.(
      const run $ scheme_arg $ workload_arg $ width_arg $ iters_arg
      $ leaf_arg $ blocks_arg $ seed_arg $ key_arg $ out $ jsonl)

(* ---- leakage ---- *)

let leakage_cmd =
  let module Leakage = Sempe_security.Leakage in
  let module Attribution = Sempe_security.Attribution in
  let run jobs json progress attribute channel_names trace_out =
    set_jobs jobs;
    if (not attribute) && (channel_names <> [] || trace_out <> None) then begin
      Printf.eprintf "--channel and --trace-out require --attribute\n";
      exit 124
    end;
    if not attribute then begin
      if json then
        (* Through the serving API: daemon leakage responses are
           byte-identical to this document by construction. *)
        print_json (with_progress progress (fun () -> Api.perform Api.Leakage))
      else begin
        let results =
          with_progress progress (fun () ->
              Sempe_experiments.Security_exp.measure ())
        in
        print_string (Sempe_experiments.Security_exp.render results);
        print_newline ()
      end
    end
    else begin
      (* --channel names go through the Leakage channel vocabulary (the
         same names `fuzz --oracle trace` failures report) and map onto
         the witness stream carrying that channel. *)
      let channels =
        match channel_names with
        | [] -> None
        | names ->
          Some
            (List.map
               (fun name ->
                 match Leakage.channel_of_name name with
                 | Some c -> Leakage.stream_of_channel c
                 | None ->
                   Printf.eprintf "unknown channel %S (expected one of: %s)\n"
                     name
                     (String.concat ", "
                        (List.map Leakage.channel_name Leakage.channels));
                   exit 124)
               names)
      in
      let results =
        with_progress progress (fun () ->
            Sempe_experiments.Security_exp.measure_attribution ())
      in
      (match trace_out with
       | None -> ()
       | Some dir ->
         if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
         List.iter
           (fun (r : Sempe_experiments.Security_exp.attribution_result) ->
             let file =
               Filename.concat dir (Scheme.name r.a_scheme ^ ".json")
             in
             let oc = open_out file in
             Fun.protect
               ~finally:(fun () -> close_out oc)
               (fun () ->
                 Attribution.write_perfetto
                   ~secrets:
                     (List.map (fun k -> Printf.sprintf "key 0x%04x" k)
                        r.a_keys)
                   oc r.a_attribution r.a_witnesses);
             Printf.eprintf "wrote %s\n%!" file)
           results);
      if json then
        print_json
          (Sempe_experiments.Security_exp.attribution_to_json ?channels
             results)
      else
        print_string
          (Sempe_experiments.Security_exp.render_attribution ?channels
             results)
    end
  in
  let attribute =
    Arg.(
      value & flag
      & info [ "attribute" ]
          ~doc:
            "Record full witness streams per key and localize every \
             divergence: first diverging event, static PC, source \
             statement and hardware structure, plus the per-structure \
             leakage stack.")
  in
  let channels =
    Arg.(
      value & opt_all string []
      & info [ "channel" ] ~docv:"NAME"
          ~doc:
            "With $(b,--attribute): restrict the report to this channel \
             (repeatable): timing, pc-trace, mem-address, icache, dcache, \
             l2, branch-predictor, instruction-count.")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"DIR"
          ~doc:
            "With $(b,--attribute): write one Perfetto trace per scheme \
             to $(docv)/<scheme>.json — one lane per key, an instant \
             marker at every divergent region.")
  in
  Cmd.v
    (Cmd.info "leakage"
       ~doc:
         "Leakage matrix: which attacker channels distinguish RSA keys \
          under each scheme. With $(b,--attribute), a full leakage \
          attribution: where the runs diverge, per channel, PC and \
          hardware structure.")
    Term.(
      const run $ jobs_arg $ json_arg $ progress_arg $ attribute $ channels
      $ trace_out)

(* ---- report ---- *)

let report_cmd =
  let run name csv json jobs progress =
    set_jobs jobs;
    with_progress progress (fun () ->
        match name with
        | "table1" ->
          let rows = Sempe_experiments.Table1.measure () in
          if json then print_json (Sempe_experiments.Table1.to_json rows)
          else print_endline (Sempe_experiments.Table1.render rows)
        | "fig8" | "fig9" ->
          let cells = Sempe_experiments.Djpeg_exp.collect () in
          if json then print_json (Sempe_experiments.Djpeg_exp.to_json cells)
          else if csv then print_string (Sempe_experiments.Djpeg_exp.csv cells)
          else if name = "fig8" then
            print_endline (Sempe_experiments.Djpeg_exp.render_fig8 cells)
          else print_endline (Sempe_experiments.Djpeg_exp.render_fig9 cells)
        | "fig10" ->
          let series = Sempe_experiments.Fig10.sweep () in
          if json then print_json (Sempe_experiments.Fig10.to_json series)
          else if csv then print_string (Sempe_experiments.Fig10.csv series)
          else begin
            print_endline (Sempe_experiments.Fig10.render_a series);
            print_endline (Sempe_experiments.Fig10.render_b series)
          end
        | "ablation" ->
          let m = Sempe_experiments.Ablation.measure () in
          if json then print_json (Sempe_experiments.Ablation.to_json m)
          else print_endline (Sempe_experiments.Ablation.render m)
        | "sampling" ->
          let cells = Sempe_experiments.Sampling_exp.collect () in
          if json then print_json (Sempe_experiments.Sampling_exp.to_json cells)
          else if csv then
            print_string (Sempe_experiments.Sampling_exp.csv cells)
          else print_endline (Sempe_experiments.Sampling_exp.render cells)
        | other ->
          Printf.eprintf
            "unknown experiment %S (table1, fig8, fig9, fig10, ablation, \
             sampling)\n"
            other;
          exit 1)
  in
  let exp_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit machine-readable CSV instead of tables.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Regenerate one paper table/figure (table1, fig8, fig9, fig10, \
          ablation) or the sampled-simulation validation grid (sampling).")
    Term.(const run $ exp_arg $ csv_arg $ json_arg $ jobs_arg $ progress_arg)

(* ---- asm-run: execute an assembly file ---- *)

let asm_run_cmd =
  let run scheme path json =
    let ic = open_in path in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    let prog = Sempe_isa.Asm.parse src in
    let support = Scheme.support scheme in
    let timing = Timing.create () in
    let config =
      { Sempe_core.Exec.default_config with
        Sempe_core.Exec.support; mem_words = 1 lsl 16 }
    in
    let res = Sempe_core.Exec.run ~config ~sink:(Timing.feed timing) prog in
    if json then
      print_json
        (Json.Obj
           [
             ("workload", Json.Str "asm-run");
             ("path", Json.Str path);
             ("scheme", Json.Str (Scheme.name scheme));
             ("instructions", Json.Int res.Sempe_core.Exec.dyn_instrs);
             ("rv", Json.Int res.Sempe_core.Exec.regs.(Sempe_isa.Reg.rv));
             ("max_nesting", Json.Int res.Sempe_core.Exec.max_nesting);
             ("report", Report.to_json (Timing.report timing));
           ])
    else begin
      Printf.printf "%s: %d instructions, rv = %d, max nesting %d\n\n" path
        res.Sempe_core.Exec.dyn_instrs
        res.Sempe_core.Exec.regs.(Sempe_isa.Reg.rv)
        res.Sempe_core.Exec.max_nesting;
      print_report (Timing.report timing)
    end
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s")
  in
  Cmd.v
    (Cmd.info "asm-run" ~doc:"Assemble and simulate a .s file (see lib/isa/asm.mli for syntax).")
    Term.(const run $ scheme_arg $ path $ json_arg)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let module Fuzz = Sempe_fuzz.Fuzz in
  let module Oracle = Sempe_fuzz.Oracle in
  let run seed count budget oracle_names jobs corpus no_corpus no_minimize
      fault_name max_failures json =
    let oracles =
      match oracle_names with
      | [] -> Oracle.all
      | names ->
        List.map
          (fun name ->
            match Oracle.find name with
            | Some o -> o
            | None ->
              Printf.eprintf "unknown oracle %S (expected one of: %s)\n" name
                (String.concat ", " Oracle.names);
              exit 124)
          names
    in
    let fault =
      match Sempe_core.Exec.fault_of_string fault_name with
      | Some f -> f
      | None ->
        Printf.eprintf
          "unknown fault %S (none, skip-restore, skip-nt-restore)\n"
          fault_name;
        exit 124
    in
    (* -j is an upper bound: the outcome is worker-count-independent by
       construction, so oversubscribing domains past the host's cores
       (catastrophic for allocation-heavy jobs under OCaml 5's
       stop-the-world minor GC) would burn time without changing a byte
       of the output. *)
    let workers =
      if jobs <= 0 then Pool.default_workers ()
      else min jobs (Pool.default_workers ())
    in
    let config =
      {
        Fuzz.default_config with
        Fuzz.seed;
        count;
        budget_s = budget;
        oracles;
        workers;
        corpus_dir = (if no_corpus then None else Some corpus);
        minimize = not no_minimize;
        max_failures;
        ctx = { Oracle.default_ctx with Oracle.fault };
      }
    in
    let outcome = Fuzz.run config in
    (* wall-clock goes to stderr: stdout stays byte-identical at any -j *)
    Printf.eprintf
      "[fuzz] %d cases (%d generated, %d mutants, %d replayed), %d \
       execution shapes, %d failure(s), %.1fs wall, %d workers\n%!"
      outcome.Fuzz.executed outcome.Fuzz.generated outcome.Fuzz.mutants
      outcome.Fuzz.replayed outcome.Fuzz.features
      (List.length outcome.Fuzz.failures)
      outcome.Fuzz.wall_s workers;
    if json then print_json (Fuzz.to_json outcome)
    else begin
      Printf.printf
        "fuzz: seed %d, %d cases executed, %d execution shapes, oracles: %s\n"
        seed outcome.Fuzz.executed outcome.Fuzz.features
        (String.concat ", " (List.map (fun o -> o.Oracle.name) oracles));
      match outcome.Fuzz.failures with
      | [] -> print_endline "no oracle violations"
      | fs ->
        List.iter
          (fun f ->
            Printf.printf
              "\nFAIL [%s] seed %d (%s): %s\n\
               minimized %d -> %d statements (%d static instructions, %d \
               minimizer trials)%s\n\
               %s\n"
              f.Fuzz.f_oracle f.Fuzz.f_seed
              (Fuzz.origin_name f.Fuzz.f_origin)
              f.Fuzz.f_message f.Fuzz.f_size f.Fuzz.f_min_size
              f.Fuzz.f_min_instrs f.Fuzz.f_trials
              (match f.Fuzz.f_repro with
               | None -> ""
               | Some p -> Printf.sprintf "\nreproducer: %s" p)
              f.Fuzz.f_source;
            match f.Fuzz.f_attribution with
            | None -> ()
            | Some a ->
              Printf.printf "leakage attribution (%s):\n%s" a.Fuzz.a_comparison
                a.Fuzz.a_text)
          fs
    end;
    if outcome.Fuzz.failures <> [] then exit 1
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed.")
  in
  let count =
    Arg.(
      value & opt int 200
      & info [ "count"; "n" ] ~docv:"N"
          ~doc:"Cases to execute (fresh plus feedback mutants).")
  in
  let budget =
    Arg.(
      value & opt (some float) None
      & info [ "budget-s" ] ~docv:"SECONDS"
          ~doc:
            "Stop after this much wall time (checked between rounds; a \
             budget-limited run is not reproducible — use $(b,--count) \
             alone for that).")
  in
  let oracle_names =
    Arg.(
      value & opt_all string []
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:
            "Oracle to check (repeatable): state, trace, timing, sampling, \
             checkpoint. Default: all of them.")
  in
  let corpus =
    Arg.(
      value & opt string "corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Reproducer directory: entries replay before any new case, and \
             minimized failures are persisted here.")
  in
  let no_corpus =
    Arg.(
      value & flag
      & info [ "no-corpus" ] ~doc:"Neither replay nor persist reproducers.")
  in
  let no_minimize =
    Arg.(
      value & flag
      & info [ "no-minimize" ]
          ~doc:"Report failures as generated, without delta debugging.")
  in
  let fault =
    Arg.(
      value & opt string "none"
      & info [ "fault" ] ~docv:"FAULT"
          ~doc:
            "Inject a protocol bug (skip-restore, skip-nt-restore) to \
             self-test the oracles; the run should then fail.")
  in
  let max_failures =
    Arg.(
      value & opt int 5
      & info [ "max-failures" ] ~docv:"N"
          ~doc:"Stop after this many distinct failures.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random programs with secret branches are \
          checked against the reference interpreter, across schemes, and \
          against the timing/sampling/checkpoint invariants. Exits \
          non-zero if any oracle is violated; failures are minimized and \
          persisted as corpus reproducers.")
    Term.(
      const run $ seed $ count $ budget $ oracle_names $ jobs_arg $ corpus
      $ no_corpus $ no_minimize $ fault $ max_failures $ json_arg)

(* ---- disasm ---- *)

let disasm_cmd =
  let run scheme which =
    let src =
      match which with
      | "rsa" -> Rsa.program
      | "djpeg" -> Djpeg.program Djpeg.Ppm
      | other -> (
        match Kernels.by_name other with
        | Some kernel ->
          MB.program ~ct:(ct_of_scheme scheme) { MB.kernel; width = 1; iters = 1 }
        | None -> failwith (Printf.sprintf "unknown workload %S" other))
    in
    let built = Harness.build scheme src in
    Format.printf "%a@." Sempe_isa.Program.pp built.Harness.prog
  in
  let which =
    Arg.(value & pos 0 string "rsa" & info [] ~docv:"WORKLOAD"
           ~doc:"rsa, djpeg, or a kernel name.")
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Compile a workload under a scheme and print the assembly.")
    Term.(const run $ scheme_arg $ which)

(* ---- serve / client / loadgen: the simulation service ---- *)

let connect_arg =
  Arg.(
    value & opt string "sempe.sock"
    & info [ "connect"; "c" ] ~docv:"ADDR"
        ~doc:
          "Daemon address: $(b,unix:PATH), $(b,tcp:HOST:PORT), or a bare \
           unix socket path.")

let parse_addr s =
  match Server.addr_of_string s with
  | Ok addr -> addr
  | Error msg ->
    Printf.eprintf "bad address %S: %s\n" s msg;
    exit 124

let serve_cmd =
  let run listen workers result_entries plan_entries timeout_s max_connections
      store_dir verbose =
    let addr = parse_addr listen in
    (* Leakage requests sweep the scheme grid on the process-wide Batch
       pool; keep it sequential so concurrent requests do not
       oversubscribe domains (responses are jobs-independent anyway). *)
    Sempe_experiments.Batch.set_jobs 1;
    let config =
      {
        Server.default_config with
        Server.workers = max 1 workers;
        result_entries = max 1 result_entries;
        plan_entries = max 1 plan_entries;
        timeout_s;
        max_connections = max 1 max_connections;
        store_dir;
        verbose;
      }
    in
    let t = Server.start ~config addr in
    Printf.eprintf "sempe-sim serve: listening on %s (%d workers)\n%!"
      (Server.addr_to_string (Server.addr t))
      config.Server.workers;
    let on_signal _ = Server.request_stop t in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Server.wait t;
    Printf.eprintf "sempe-sim serve: stopped\n%!"
  in
  let listen =
    Arg.(
      value & opt string "sempe.sock"
      & info [ "listen"; "l" ] ~docv:"ADDR"
          ~doc:
            "Listen address: $(b,unix:PATH), $(b,tcp:HOST:PORT), or a bare \
             unix socket path.")
  in
  let workers =
    Arg.(
      value & opt int Server.default_config.Server.workers
      & info [ "workers"; "j" ] ~docv:"N"
          ~doc:"Simulation worker domains (requests queue past this).")
  in
  let result_entries =
    Arg.(
      value & opt int Server.default_config.Server.result_entries
      & info [ "result-entries" ] ~docv:"N" ~doc:"Response cache capacity.")
  in
  let plan_entries =
    Arg.(
      value & opt int Server.default_config.Server.plan_entries
      & info [ "plan-entries" ] ~docv:"N"
          ~doc:"Sampling checkpoint-plan cache capacity.")
  in
  let timeout =
    Arg.(
      value & opt float Server.default_config.Server.timeout_s
      & info [ "timeout-s" ] ~docv:"SECONDS"
          ~doc:
            "Per-request reply deadline (the job keeps running and feeds \
             the cache; only the reply gives up). 0 disables.")
  in
  let max_connections =
    Arg.(
      value & opt int Server.default_config.Server.max_connections
      & info [ "max-connections" ] ~docv:"N"
          ~doc:"Concurrent connections; excess clients get a busy error.")
  in
  let store_dir =
    Arg.(
      value & opt (some string) None
      & info [ "store-dir" ] ~docv:"DIR"
          ~doc:
            "Persistent cache store: both caches are reloaded from $(docv) \
             on start and flushed back on graceful shutdown, so a restarted \
             daemon serves warm from its first request.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"Log one line per served request to stderr.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the simulation daemon: a length-prefixed JSON protocol over a \
          unix or TCP socket, with content-addressed response and \
          checkpoint-plan caches (cost-aware eviction, optional on-disk \
          persistence) and in-flight request coalescing. The daemon trusts \
          its clients; see the Serving section of the README.")
    Term.(
      const run $ listen $ workers $ result_entries $ plan_entries $ timeout
      $ max_connections $ store_dir $ verbose)

let client_cmd =
  let run connect op which width iters leaf blocks seed key scheme strict
      interval coverage warmup top fuzz_seed count =
    let request =
      match op with
      | "ping" | "stats" | "shutdown" -> None
      | "simulate" ->
        Some
          (Api.Simulate
             {
               scheme;
               workload = api_workload which ~width ~iters ~leaf ~blocks ~seed ~key;
               strict_oob = strict;
             })
      | "sample" ->
        Some
          (Api.Sample
             {
               scheme;
               workload = api_workload which ~width ~iters ~leaf ~blocks ~seed ~key;
               strict_oob = strict;
               params = { Api.interval; coverage; warmup };
             })
      | "profile" ->
        Some
          (Api.Profile
             {
               scheme;
               workload = api_workload which ~width ~iters ~leaf ~blocks ~seed ~key;
               top;
             })
      | "leakage" -> Some Api.Leakage
      | "fuzz-smoke" -> Some (Api.Fuzz_smoke { seed = fuzz_seed; count })
      | other ->
        Printf.eprintf
          "unknown op %S (ping, stats, shutdown, simulate, sample, profile, \
           leakage, fuzz-smoke)\n"
          other;
        exit 124
    in
    let conn =
      try Client.connect (parse_addr connect)
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "cannot connect to %s: %s\n" connect
          (Unix.error_message e);
        exit 1
    in
    let result =
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          match request with
          | Some req -> Client.call conn req
          | None -> (
            match op with
            | "ping" -> Result.map (fun () -> Json.Str "pong") (Client.ping conn)
            | "stats" -> Client.stats conn
            | _ -> Result.map (fun () -> Json.Bool true) (Client.shutdown conn)))
    in
    match result with
    | Ok json -> print_json json
    | Error { Client.code; message } ->
      Printf.eprintf "error [%s]: %s\n" code message;
      exit 1
  in
  let op =
    Arg.(
      value & pos 0 string "ping"
      & info [] ~docv:"OP"
          ~doc:
            "ping, stats, shutdown, simulate, sample, profile, leakage or \
             fuzz-smoke.")
  in
  let which =
    Arg.(
      value & opt string "rsa"
      & info [ "workload" ] ~docv:"WORKLOAD"
          ~doc:"rsa, djpeg, or a microbenchmark kernel name.")
  in
  let fuzz_seed =
    Arg.(
      value & opt int 1
      & info [ "fuzz-seed" ] ~docv:"SEED" ~doc:"Master seed (fuzz-smoke).")
  in
  let count =
    Arg.(
      value & opt int 200
      & info [ "count"; "n" ] ~docv:"N" ~doc:"Cases to execute (fuzz-smoke).")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Rows per profile table (profile).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running daemon and print the result \
          document — the same bytes the matching batch subcommand's \
          $(b,--json) mode prints.")
    Term.(
      const run $ connect_arg $ op $ which $ width_arg $ iters_arg $ leaf_arg
      $ blocks_arg $ seed_arg $ key_arg $ scheme_arg $ strict_oob_arg
      $ interval_arg $ coverage_arg $ warmup_arg $ top $ fuzz_seed $ count)

let loadgen_cmd =
  let run connect clients requests mix_names rate json =
    let mix =
      List.concat_map
        (fun name ->
          match String.lowercase_ascii name with
          | "simulate" ->
            [
              Api.Simulate
                {
                  scheme = Scheme.Sempe;
                  workload =
                    Api.Microbench
                      { kernel = "fibonacci"; width = 4; iters = 3; leaf = 1 };
                  strict_oob = false;
                };
              Api.Simulate
                {
                  scheme = Scheme.Baseline;
                  workload =
                    Api.Microbench
                      { kernel = "ones"; width = 4; iters = 3; leaf = 2 };
                  strict_oob = false;
                };
              Api.Simulate
                {
                  scheme = Scheme.Sempe;
                  workload = Api.Djpeg { format = "PPM"; blocks = 4; seed = 42 };
                  strict_oob = false;
                };
              Api.Simulate
                {
                  scheme = Scheme.Cte;
                  workload = Api.Rsa { key = 0x1234 };
                  strict_oob = false;
                };
            ]
          | "sample" ->
            [
              Api.Sample
                {
                  scheme = Scheme.Sempe;
                  workload = Api.Rsa { key = 0x1234 };
                  strict_oob = false;
                  params =
                    { Api.interval = 2000; coverage = 0.25; warmup = 500 };
                };
              Api.Sample
                {
                  scheme = Scheme.Sempe;
                  workload = Api.Djpeg { format = "PPM"; blocks = 8; seed = 7 };
                  strict_oob = false;
                  params =
                    { Api.interval = 2000; coverage = 0.25; warmup = 500 };
                };
            ]
          | "profile" ->
            [
              Api.Profile
                {
                  scheme = Scheme.Sempe;
                  workload = Api.Rsa { key = 0x1234 };
                  top = 10;
                };
            ]
          | "leakage" -> [ Api.Leakage ]
          | "fuzz" -> [ Api.Fuzz_smoke { seed = 1; count = 25 } ]
          | other ->
            Printf.eprintf
              "unknown mix element %S (simulate, sample, profile, leakage, \
               fuzz)\n"
              other;
            exit 124)
        mix_names
    in
    let outcome =
      Loadgen.run (parse_addr connect)
        {
          Loadgen.clients;
          requests_per_client = requests;
          mix;
          rate_hz = rate;
        }
    in
    if json then print_json (Loadgen.to_json outcome)
    else print_endline (Loadgen.render outcome);
    if outcome.Loadgen.dropped > 0 then exit 1
  in
  let clients =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let requests =
    Arg.(
      value & opt int 12
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let mix =
    Arg.(
      value
      & opt (list string) [ "simulate"; "sample" ]
      & info [ "mix" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated request classes to cycle through: simulate, \
             sample, profile, leakage, fuzz.")
  in
  let rate =
    Arg.(
      value & opt (some float) None
      & info [ "rate" ] ~docv:"HZ"
          ~doc:
            "Open-loop arrival rate per client (latency measured from the \
             scheduled send time). Default: closed loop.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running daemon with N concurrent clients replaying a \
          request mix; report latency percentiles, throughput, drop count \
          and the daemon-side cache hit rate. Exits non-zero if any \
          request was dropped.")
    Term.(const run $ connect_arg $ clients $ requests $ mix $ rate $ json_arg)

(* ---- router / fleet: the sharded serving fleet ---- *)

let router_cmd =
  let run listen shards replicas retries backoff_s health_s verbose =
    if shards = [] then begin
      Printf.eprintf "router: at least one --shard ADDR is required\n";
      exit 124
    end;
    let addr = parse_addr listen in
    let shard_addrs = List.map parse_addr shards in
    let config =
      {
        Router.default_config with
        Router.replicas = max 1 replicas;
        retries = max 1 retries;
        backoff_s = Float.max 0. backoff_s;
        health_period_s = Float.max 0.05 health_s;
        verbose;
      }
    in
    let t = Router.start ~config ~shards:shard_addrs addr in
    Printf.eprintf "sempe-sim router: listening on %s, %d shard(s)\n%!"
      (Server.addr_to_string (Router.addr t))
      (List.length shard_addrs);
    let on_signal _ = Router.request_stop t in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Router.wait t;
    Printf.eprintf "sempe-sim router: stopped\n%!"
  in
  let listen =
    Arg.(
      value & opt string "sempe-router.sock"
      & info [ "listen"; "l" ] ~docv:"ADDR"
          ~doc:
            "Listen address: $(b,unix:PATH), $(b,tcp:HOST:PORT), or a bare \
             unix socket path.")
  in
  let shards =
    Arg.(
      value & opt_all string []
      & info [ "shard" ] ~docv:"ADDR"
          ~doc:"A shard daemon's address; repeat once per shard.")
  in
  let replicas =
    Arg.(
      value & opt int Router.default_config.Router.replicas
      & info [ "replicas" ] ~docv:"N"
          ~doc:"Virtual nodes per shard on the consistent-hash ring.")
  in
  let retries =
    Arg.(
      value & opt int Router.default_config.Router.retries
      & info [ "retries" ] ~docv:"N"
          ~doc:"Connection attempts per shard before failing over.")
  in
  let backoff =
    Arg.(
      value & opt float Router.default_config.Router.backoff_s
      & info [ "backoff-s" ] ~docv:"SECONDS"
          ~doc:"Delay before the first retry; doubles per attempt.")
  in
  let health =
    Arg.(
      value & opt float Router.default_config.Router.health_period_s
      & info [ "health-period-s" ] ~docv:"SECONDS"
          ~doc:"How often dead shards are pinged back into rotation.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"Log routing decisions and shard state.")
  in
  Cmd.v
    (Cmd.info "router"
       ~doc:
         "Front a fleet of $(b,serve) shards behind one address: requests \
          are consistent-hashed onto shards (so repeats always hit the same \
          shard's caches) and relayed byte-for-byte, with retry, failover \
          and health checking. The $(b,shutdown) op drains the whole fleet.")
    Term.(
      const run $ listen $ shards $ replicas $ retries $ backoff $ health
      $ verbose)

let fleet_cmd =
  let status_string = function
    | Unix.WEXITED n -> Printf.sprintf "exit %d" n
    | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
    | Unix.WSTOPPED s -> Printf.sprintf "stop %d" s
  in
  let run listen shards dir workers result_entries plan_entries store verbose =
    let shards = max 1 shards in
    (try Unix.mkdir dir 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let self = Sys.executable_name in
    let shard_sock i = Filename.concat dir (Printf.sprintf "shard-%d.sock" i) in
    let children =
      List.init shards (fun i ->
          let args =
            [
              "serve"; "--listen"; shard_sock i;
              "--workers"; string_of_int (max 1 workers);
              "--result-entries"; string_of_int (max 1 result_entries);
              "--plan-entries"; string_of_int (max 1 plan_entries);
            ]
            @ (if store then
                 [ "--store-dir";
                   Filename.concat dir (Printf.sprintf "shard-%d.store" i) ]
               else [])
            @ if verbose then [ "--verbose" ] else []
          in
          Subproc.spawn
            ~log:(Filename.concat dir (Printf.sprintf "shard-%d.log" i))
            ~label:(Printf.sprintf "shard-%d" i)
            self args)
    in
    let kill_all () =
      List.iter (fun c -> ignore (Subproc.terminate c)) children
    in
    (* Every shard must bind before the router opens for business. *)
    let deadline = Unix.gettimeofday () +. 30. in
    List.iteri
      (fun i child ->
        let sock = shard_sock i in
        let rec poll () =
          if Sys.file_exists sock then ()
          else if not (Subproc.alive child) then begin
            Printf.eprintf "fleet: %s exited before binding %s (see %s)\n"
              (Subproc.label child) sock
              (Option.value ~default:"stderr" (Subproc.log_path child));
            kill_all ();
            exit 1
          end
          else if Unix.gettimeofday () > deadline then begin
            Printf.eprintf "fleet: timed out waiting for %s\n" sock;
            kill_all ();
            exit 1
          end
          else begin
            Unix.sleepf 0.05;
            poll ()
          end
        in
        poll ())
      children;
    let addr = parse_addr listen in
    let config = { Router.default_config with Router.verbose } in
    let t =
      Router.start ~config
        ~shards:(List.init shards (fun i -> Server.Unix_sock (shard_sock i)))
        addr
    in
    Printf.eprintf "sempe-sim fleet: %d shard(s) up, router on %s\n%!" shards
      (Server.addr_to_string (Router.addr t));
    let on_signal _ = Router.request_stop t in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Router.wait t;
    (* Belt and braces: a client [shutdown] already drained the shards;
       a signal has not. Either way every child gets a graceful stop (the
       TERM window is where a shard flushes its store). *)
    Router.drain_fleet t;
    let failed = ref false in
    List.iter
      (fun c ->
        match Subproc.terminate ~grace_s:30. c with
        | Unix.WEXITED 0 -> ()
        | st ->
          failed := true;
          Printf.eprintf "fleet: %s ended with %s\n" (Subproc.label c)
            (status_string st))
      children;
    Printf.eprintf "sempe-sim fleet: stopped\n%!";
    if !failed then exit 1
  in
  let listen =
    Arg.(
      value & opt string "sempe-router.sock"
      & info [ "listen"; "l" ] ~docv:"ADDR"
          ~doc:"Router listen address (the fleet's single front door).")
  in
  let shards =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"N" ~doc:"Number of shard daemons to run.")
  in
  let dir =
    Arg.(
      value & opt string "sempe-fleet"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Runtime directory: shard sockets, per-shard logs and (with \
             $(b,--store)) per-shard cache stores live here.")
  in
  let workers =
    Arg.(
      value & opt int Server.default_config.Server.workers
      & info [ "workers"; "j" ] ~docv:"N"
          ~doc:"Simulation worker domains per shard.")
  in
  let result_entries =
    Arg.(
      value & opt int Server.default_config.Server.result_entries
      & info [ "result-entries" ] ~docv:"N"
          ~doc:"Response cache capacity per shard.")
  in
  let plan_entries =
    Arg.(
      value & opt int Server.default_config.Server.plan_entries
      & info [ "plan-entries" ] ~docv:"N"
          ~doc:"Checkpoint-plan cache capacity per shard.")
  in
  let store =
    Arg.(
      value & flag
      & info [ "store" ]
          ~doc:
            "Give each shard a persistent cache store under $(b,--dir), \
             flushed on drain and reloaded on the next start.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"Verbose shards and router.")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run a self-contained serving fleet: N $(b,serve) shard processes \
          on unix sockets under a runtime directory, fronted by an \
          in-process $(b,router). SIGTERM (or a client $(b,shutdown)) \
          drains every shard — in-flight work finishes and cache stores \
          are flushed — before the fleet exits.")
    Term.(
      const run $ listen $ shards $ dir $ workers $ result_entries
      $ plan_entries $ store $ verbose)

let () =
  let info =
    Cmd.info "sempe-sim" ~version:"1.0"
      ~doc:"Cycle-level simulator for the SeMPE secure multi-path execution architecture."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            config_cmd; microbench_cmd; djpeg_cmd; rsa_cmd; sample_cmd;
            leakage_cmd; report_cmd; profile_cmd; trace_cmd; disasm_cmd;
            asm_run_cmd; fuzz_cmd; serve_cmd; router_cmd; fleet_cmd;
            client_cmd; loadgen_cmd;
          ]))
