type channel =
  | Timing
  | Trace
  | Address
  | Icache
  | Dcache
  | L2
  | Bpred
  | Instruction_count

let channels =
  [ Timing; Trace; Address; Icache; Dcache; L2; Bpred; Instruction_count ]

let channel_name = function
  | Timing -> "timing"
  | Trace -> "pc-trace"
  | Address -> "mem-address"
  | Icache -> "icache"
  | Dcache -> "dcache"
  | L2 -> "l2"
  | Bpred -> "branch-predictor"
  | Instruction_count -> "instruction-count"

let channel_of_name name =
  List.find_opt (fun ch -> channel_name ch = name) channels

let extract ch (view : Observable.view) =
  match ch with
  | Timing -> view.Observable.cycles
  | Trace -> view.Observable.pc_digest
  | Address -> view.Observable.addr_digest
  | Icache -> view.Observable.il1_sig
  | Dcache -> view.Observable.dl1_sig
  | L2 -> view.Observable.l2_sig
  | Bpred -> view.Observable.bpred_sig
  | Instruction_count -> view.Observable.instructions

(* Structural fingerprint: several independent components per channel
   instead of [extract]'s single int, so two genuinely different attacker
   views cannot collide into "no leak" through one unlucky hash. Two
   digests over the same stream only agree by accident with probability
   ~2^-126, and the stream length / access counters are exact. *)
let fingerprint ch (view : Observable.view) =
  match ch with
  | Timing -> [ view.Observable.cycles ]
  | Trace ->
    [
      view.Observable.pc_digest;
      view.Observable.pc_digest2;
      view.Observable.instructions;
    ]
  | Address ->
    [
      view.Observable.addr_digest;
      view.Observable.addr_digest2;
      view.Observable.mem_ops;
    ]
  | Icache ->
    [
      view.Observable.il1_sig;
      view.Observable.il1_accesses;
      view.Observable.il1_misses;
    ]
  | Dcache ->
    [
      view.Observable.dl1_sig;
      view.Observable.dl1_accesses;
      view.Observable.dl1_misses;
    ]
  | L2 ->
    [
      view.Observable.l2_sig;
      view.Observable.l2_accesses;
      view.Observable.l2_misses;
    ]
  | Bpred -> [ view.Observable.bpred_sig; view.Observable.mispredicts ]
  | Instruction_count -> [ view.Observable.instructions ]

(* Channels with a witness stream; Timing and Instruction_count divergence
   positions come from the Timing / Trace streams respectively. *)
let stream_of_channel = function
  | Timing -> Witness.Timing
  | Trace -> Witness.Trace
  | Address -> Witness.Address
  | Icache -> Witness.Icache
  | Dcache -> Witness.Dcache
  | L2 -> Witness.L2
  | Bpred -> Witness.Bpred
  | Instruction_count -> Witness.Trace

type finding = {
  channel : channel;
  distinct : int;
  total : int;
  first_divergence : int option;
}

let leaks f = f.distinct > 1

let compare_views ?(witnesses = []) views =
  (* Zero or one view can never witness a leak: [distinct <= 1] for every
     channel no matter what the machine did, so a caller whose view list
     came up empty would silently read "no leak" out of a vacuous
     comparison. Make that an error instead of a false negative. *)
  if List.length views < 2 then
    invalid_arg "Leakage.compare_views: need at least 2 views to compare";
  List.map
    (fun channel ->
      let values = List.map (fingerprint channel) views in
      let first_divergence =
        match witnesses with
        | w0 :: rest when rest <> [] ->
          let stream = stream_of_channel channel in
          List.fold_left
            (fun acc w ->
              match (acc, Witness.first_divergence w0 w stream) with
              | (Some a, Some b) -> Some (min a b)
              | (None, d) -> d
              | (d, None) -> d)
            None rest
        | _ -> None
      in
      {
        channel;
        distinct = List.length (List.sort_uniq compare values);
        total = List.length views;
        first_divergence;
      })
    channels

let leaky_channels views =
  List.filter_map
    (fun f -> if leaks f then Some f.channel else None)
    (compare_views views)
