type channel =
  | Timing
  | Trace
  | Address
  | Icache
  | Dcache
  | L2
  | Bpred
  | Instruction_count

let channels =
  [ Timing; Trace; Address; Icache; Dcache; L2; Bpred; Instruction_count ]

let channel_name = function
  | Timing -> "timing"
  | Trace -> "pc-trace"
  | Address -> "mem-address"
  | Icache -> "icache"
  | Dcache -> "dcache"
  | L2 -> "l2"
  | Bpred -> "branch-predictor"
  | Instruction_count -> "instruction-count"

let extract ch (view : Observable.view) =
  match ch with
  | Timing -> view.Observable.cycles
  | Trace -> view.Observable.pc_digest
  | Address -> view.Observable.addr_digest
  | Icache -> view.Observable.il1_sig
  | Dcache -> view.Observable.dl1_sig
  | L2 -> view.Observable.l2_sig
  | Bpred -> view.Observable.bpred_sig
  | Instruction_count -> view.Observable.instructions

type finding = {
  channel : channel;
  distinct : int;
  total : int;
}

let leaks f = f.distinct > 1

let compare_views views =
  (* Zero or one view can never witness a leak: [distinct <= 1] for every
     channel no matter what the machine did, so a caller whose view list
     came up empty would silently read "no leak" out of a vacuous
     comparison. Make that an error instead of a false negative. *)
  if List.length views < 2 then
    invalid_arg "Leakage.compare_views: need at least 2 views to compare";
  List.map
    (fun channel ->
      let values = List.map (extract channel) views in
      {
        channel;
        distinct = List.length (List.sort_uniq compare values);
        total = List.length views;
      })
    channels

let leaky_channels views =
  List.filter_map
    (fun f -> if leaks f then Some f.channel else None)
    (compare_views views)
