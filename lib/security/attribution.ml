(* Diff engine over witness streams: where, exactly, do two runs under
   different secrets stop looking the same? Every divergent event index is
   attributed to one static PC and one hardware-structure instance, so
   the per-structure "leakage stack" sums to the divergent-event total by
   construction — same contract as the CPI stall stack. *)

module Json = Sempe_obs.Json
module Report = Sempe_obs.Report
module Trace = Sempe_obs.Trace
module Program = Sempe_isa.Program

type divergence = {
  d_index : int;
  d_pc : int;
  d_structure : int;
  d_cycle : int;
}

type channel_report = {
  cr_stream : Witness.stream;
  cr_events : int;  (** stream length of the reference (first) run *)
  cr_divergent : int;
  cr_first : divergence option;
  cr_regions : (int * int) list;  (** divergent index ranges, [start, stop) *)
  cr_stack : (int * int) list;
      (** structure id -> divergent events; sums to [cr_divergent] *)
  cr_pcs : (int * int) list;  (** pc -> divergent events; same sum *)
}

type t = {
  runs : int;
  instructions : int;  (** committed µops of the reference run *)
  by_channel : channel_report list;
}

let attribute_stream w0 rest stream =
  let len0 = Witness.length w0 stream in
  let lens = List.map (fun w -> Witness.length w stream) rest in
  let maxlen = List.fold_left max len0 lens in
  let stack = Hashtbl.create 16 in
  let pcs = Hashtbl.create 16 in
  let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)) in
  let divergent = ref 0 in
  let first = ref None in
  let regions = ref [] in
  let region_start = ref (-1) in
  let close_region stop =
    if !region_start >= 0 then begin
      regions := (!region_start, stop) :: !regions;
      region_start := -1
    end
  in
  for k = 0 to maxlen - 1 do
    let diverges =
      List.exists
        (fun w ->
          let lw = Witness.length w stream in
          if k < len0 && k < lw then
            Witness.entry w0 stream k <> Witness.entry w stream k
          else k < len0 || k < lw)
        rest
    in
    if diverges then begin
      incr divergent;
      if !region_start < 0 then region_start := k;
      (* attribute to the reference run's event when it has one; an event
         past the reference's end belongs to the first longer run *)
      let pc, sid, _detail, cycle =
        if k < len0 then
          let p, s, d = Witness.entry w0 stream k in
          (p, s, d, Witness.cycle_at w0 stream k)
        else
          let w =
            List.find (fun w -> k < Witness.length w stream) rest
          in
          let p, s, d = Witness.entry w stream k in
          (p, s, d, Witness.cycle_at w stream k)
      in
      bump stack sid;
      bump pcs pc;
      if !first = None then
        Some { d_index = k; d_pc = pc; d_structure = sid; d_cycle = cycle }
        |> fun f -> first := f
    end
    else close_region k
  done;
  close_region maxlen;
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (k1, n1) (k2, n2) ->
           if n1 <> n2 then compare n2 n1 else compare k1 k2)
  in
  {
    cr_stream = stream;
    cr_events = len0;
    cr_divergent = !divergent;
    cr_first = !first;
    cr_regions = List.rev !regions;
    cr_stack = sorted stack;
    cr_pcs = sorted pcs;
  }

let attribute witnesses =
  match witnesses with
  | w0 :: (_ :: _ as rest) ->
    {
      runs = List.length witnesses;
      instructions = Witness.instructions w0;
      by_channel = List.map (attribute_stream w0 rest) Witness.streams;
    }
  | _ ->
    invalid_arg "Attribution.attribute: need at least 2 witnesses to compare"

let is_clean t = List.for_all (fun cr -> cr.cr_divergent = 0) t.by_channel
let total_divergent t =
  List.fold_left (fun acc cr -> acc + cr.cr_divergent) 0 t.by_channel

let find_report t stream =
  List.find (fun cr -> cr.cr_stream = stream) t.by_channel

(* Source-level statement for a static pc: the nearest preceding label of
   the program (codegen emits one per structured statement — sec_t,
   sec_join, while, fn_<name>_exit, ...) plus the instruction offset. *)
let locate (prog : Program.t) pc =
  let best =
    List.fold_left
      (fun best (name, at) ->
        if at <= pc then
          match best with
          | Some (_, bat) when bat >= at -> best
          | _ -> Some (name, at)
        else best)
      None prog.Program.labels
  in
  match best with
  | Some (name, at) when at = pc -> Printf.sprintf "%s (pc %d)" name pc
  | Some (name, at) -> Printf.sprintf "%s+%d (pc %d)" name (pc - at) pc
  | None -> Printf.sprintf "pc %d" pc

let pc_label ?program pc =
  match program with
  | Some p -> locate p pc
  | None -> Printf.sprintf "pc %d" pc

let render ?program t =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "leakage attribution over %d runs (%d instructions in the reference \
     run): %s\n"
    t.runs t.instructions
    (if is_clean t then "indistinguishable on every channel"
     else Printf.sprintf "%d divergent event(s)" (total_divergent t));
  List.iter
    (fun cr ->
      if cr.cr_divergent > 0 then begin
        Buffer.add_char b '\n';
        (match cr.cr_first with
         | Some d ->
           Printf.bprintf b
             "channel %-16s first divergence at event %d/%d: %s, %s, cycle \
              %d\n"
             (Witness.stream_name cr.cr_stream)
             d.d_index cr.cr_events
             (pc_label ?program d.d_pc)
             (Witness.structure_name d.d_structure)
             d.d_cycle
         | None -> ());
        if List.length cr.cr_regions > 1 then
          Printf.bprintf b "  %d divergent regions: %s\n"
            (List.length cr.cr_regions)
            (String.concat ", "
               (List.map
                  (fun (s, e) -> Printf.sprintf "[%d,%d)" s e)
                  cr.cr_regions));
        Buffer.add_string b
          (Report.render_leakage_stack
             ~title:
               (Printf.sprintf "leakage stack: %s"
                  (Witness.stream_name cr.cr_stream))
             ~total:cr.cr_divergent ~unit:"events"
             (List.map
                (fun (sid, n) -> (Witness.structure_name sid, n))
                cr.cr_stack));
        Printf.bprintf b "  by static pc: %s\n"
          (String.concat ", "
             (List.map
                (fun (pc, n) ->
                  Printf.sprintf "%s: %d" (pc_label ?program pc) n)
                cr.cr_pcs))
      end)
    t.by_channel;
  Buffer.contents b

let to_json ?program t =
  let channel cr =
    Json.Obj
      ([
         ("channel", Json.Str (Witness.stream_name cr.cr_stream));
         ("events", Json.Int cr.cr_events);
         ("divergent", Json.Int cr.cr_divergent);
       ]
      @ (match cr.cr_first with
         | None -> []
         | Some d ->
           [
             ( "first_divergence",
               Json.Obj
                 [
                   ("index", Json.Int d.d_index);
                   ("pc", Json.Int d.d_pc);
                   ("structure", Json.Str (Witness.structure_name d.d_structure));
                   ("statement", Json.Str (pc_label ?program d.d_pc));
                   ("cycle", Json.Int d.d_cycle);
                 ] );
           ])
      @ [
          ( "regions",
            Json.List
              (List.map
                 (fun (s, e) -> Json.List [ Json.Int s; Json.Int e ])
                 cr.cr_regions) );
          ( "stack",
            Report.leakage_stack_json
              (List.map
                 (fun (sid, n) -> (Witness.structure_name sid, n))
                 cr.cr_stack) );
          ( "pcs",
            Json.Obj
              (List.map
                 (fun (pc, n) -> (pc_label ?program pc, Json.Int n))
                 cr.cr_pcs) );
        ])
  in
  Json.Obj
    [
      ("runs", Json.Int t.runs);
      ("instructions", Json.Int t.instructions);
      ("clean", Json.Bool (is_clean t));
      ("total_divergent", Json.Int (total_divergent t));
      ("channels", Json.List (List.map channel t.by_channel));
    ]

(* One Perfetto lane per secret, an instant marker per divergent region
   start on every lane that still has the event. ts is the commit cycle. *)
let perfetto_events ?(secrets = []) t witnesses =
  let pid = 0 in
  let name_of i =
    match List.nth_opt secrets i with
    | Some s -> Printf.sprintf "secret %s" s
    | None -> Printf.sprintf "secret #%d" i
  in
  let lanes =
    List.concat
      (List.mapi
         (fun i w ->
           let tid = i + 1 in
           let cycles =
             let n = Witness.length w Witness.Timing in
             if n = 0 then 0 else Witness.cycle_at w Witness.Timing (n - 1)
           in
           [
             Trace.thread_meta ~pid ~tid ~name:(name_of i);
             Trace.slice_at ~name:(name_of i) ~pid ~tid ~ts:0 ~dur:cycles
               ~args:
                 [
                   ("instructions", Json.Int (Witness.instructions w));
                   ("cycles", Json.Int cycles);
                 ];
           ])
         witnesses)
  in
  let markers =
    List.concat_map
      (fun cr ->
        List.concat_map
          (fun (start, stop) ->
            List.concat
              (List.mapi
                 (fun i w ->
                   if start < Witness.length w cr.cr_stream then begin
                     let pc, sid, _ = Witness.entry w cr.cr_stream start in
                     [
                       Trace.instant
                         ~name:
                           (Printf.sprintf "%s diverges"
                              (Witness.stream_name cr.cr_stream))
                         ~pid ~tid:(i + 1)
                         ~ts:(Witness.cycle_at w cr.cr_stream start)
                         ~args:
                           [
                             ("index", Json.Int start);
                             ("region_events", Json.Int (stop - start));
                             ("pc", Json.Int pc);
                             ( "structure",
                               Json.Str (Witness.structure_name sid) );
                           ];
                     ]
                   end
                   else [])
                 witnesses))
          cr.cr_regions)
      t.by_channel
  in
  (Trace.process_meta ~pid ~name:"sempe-leakage" :: lanes) @ markers

let write_perfetto ?secrets oc t witnesses =
  let events = perfetto_events ?secrets t witnesses in
  output_string oc "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then output_string oc ",\n" else output_string oc "\n";
      Json.output oc ev)
    events;
  output_string oc "\n],\"displayTimeUnit\":\"ns\"}\n"
