(** Leakage detection: run the victim with different secrets, compare the
    attacker-visible views channel by channel. *)

type channel =
  | Timing            (** end-to-end cycle count *)
  | Trace             (** committed-PC sequence *)
  | Address           (** memory access-pattern *)
  | Icache            (** instruction-cache contents *)
  | Dcache            (** data-cache contents *)
  | L2
  | Bpred             (** branch-predictor / BTB state *)
  | Instruction_count

val channels : channel list
val channel_name : channel -> string

val channel_of_name : string -> channel option
(** Inverse of {!channel_name}; [None] on an unknown name. Used by CLI
    channel filters. *)

val extract : channel -> Observable.view -> int
(** Single-int projection of a channel — retained for callers that only
    need a scalar (e.g. timing histograms). {b Not} collision-free:
    comparisons should use {!fingerprint}. *)

val fingerprint : channel -> Observable.view -> int list
(** Structural digest of a channel: independent components (paired
    stream digests, stream lengths, access/miss counters) that must all
    collide simultaneously for a real difference to go unseen. This is
    what {!compare_views} compares. *)

val stream_of_channel : channel -> Witness.stream
(** The witness stream carrying this channel's event sequence
    ([Instruction_count] maps to the committed-PC trace, whose length it
    is). *)

type finding = {
  channel : channel;
  distinct : int;   (** distinct fingerprints seen across the secrets *)
  total : int;      (** number of secrets tried *)
  first_divergence : int option;
      (** earliest stream index (across all pairs against the first run)
          where witnesses diverge; [None] without witnesses or when the
          streams agree *)
}

val leaks : finding -> bool
(** A channel leaks when it distinguishes at least two secrets. *)

val compare_views :
  ?witnesses:Witness.t list -> Observable.view list -> finding list
(** One finding per channel over runs with different secrets (same
    program, same public inputs, fresh machine each run). When
    [witnesses] carries one witness per view (same order), findings gain
    the first-divergence index on their channel's stream.

    @raise Invalid_argument on fewer than two views: a single view (or
    none) cannot witness a leak on any channel, so such a comparison
    would always report "no leak" vacuously — treat it as a harness bug
    rather than a security result. *)

val leaky_channels : Observable.view list -> channel list
(** @raise Invalid_argument like {!compare_views}. *)
