(** Leakage detection: run the victim with different secrets, compare the
    attacker-visible views channel by channel. *)

type channel =
  | Timing            (** end-to-end cycle count *)
  | Trace             (** committed-PC sequence *)
  | Address           (** memory access-pattern *)
  | Icache            (** instruction-cache contents *)
  | Dcache            (** data-cache contents *)
  | L2
  | Bpred             (** branch-predictor / BTB state *)
  | Instruction_count

val channels : channel list
val channel_name : channel -> string

val extract : channel -> Observable.view -> int

type finding = {
  channel : channel;
  distinct : int;   (** distinct values seen across the secrets *)
  total : int;      (** number of secrets tried *)
}

val leaks : finding -> bool
(** A channel leaks when it distinguishes at least two secrets. *)

val compare_views : Observable.view list -> finding list
(** One finding per channel over runs with different secrets (same
    program, same public inputs, fresh machine each run).

    @raise Invalid_argument on fewer than two views: a single view (or
    none) cannot witness a leak on any channel, so such a comparison
    would always report "no leak" vacuously — treat it as a harness bug
    rather than a security result. *)

val leaky_channels : Observable.view list -> channel list
(** @raise Invalid_argument like {!compare_views}. *)
