(* Per-run attacker-visible event streams, captured passively through the
   Probe interface. A witness never feeds anything back into the timing
   model, so attaching one cannot perturb a cycle; when no witness is
   attached nothing here runs at all. *)

module Uop = Sempe_pipeline.Uop
module Probe = Sempe_pipeline.Probe
module Config = Sempe_pipeline.Config
module Stall = Sempe_pipeline.Stall
module Hierarchy = Sempe_mem.Hierarchy
module Cache = Sempe_mem.Cache

type stream = Trace | Address | Icache | Dcache | L2 | Bpred | Timing

let streams = [ Trace; Address; Icache; Dcache; L2; Bpred; Timing ]

let stream_index = function
  | Trace -> 0
  | Address -> 1
  | Icache -> 2
  | Dcache -> 3
  | L2 -> 4
  | Bpred -> 5
  | Timing -> 6

let n_streams = 7

let stream_name = function
  | Trace -> "pc-trace"
  | Address -> "mem-address"
  | Icache -> "icache"
  | Dcache -> "dcache"
  | L2 -> "l2"
  | Bpred -> "branch-predictor"
  | Timing -> "timing"

(* ---- hardware-structure identifiers ----
   One int names a structure instance: [tag lsl 24 lor index]. Constant
   tags rather than a variant so stream entries stay unboxed ints. *)

let tag_pc = 0
let tag_dl1 = 1
let tag_il1 = 2
let tag_l2 = 3
let tag_btb = 4
let tag_predictor = 5
let tag_ras = 6
let tag_ittage = 7
let tag_stall = 8
let tag_drain = 9
let structure ~tag ~index = (tag lsl 24) lor (index land 0xffffff)

(* The BTB is not parameterized by Config (Btb.create () builds the
   default 2048-entry 4-way table), so the 512-set index mask is fixed;
   keep in sync with Sempe_bpred.Btb. *)
let btb_set_mask = 511

let structure_name sid =
  let tag = sid lsr 24 in
  let index = sid land 0xffffff in
  if tag = tag_pc then Printf.sprintf "pc %d" index
  else if tag = tag_dl1 then Printf.sprintf "dl1[set %d]" index
  else if tag = tag_il1 then Printf.sprintf "il1[set %d]" index
  else if tag = tag_l2 then Printf.sprintf "l2[set %d]" index
  else if tag = tag_btb then Printf.sprintf "btb[set %d]" index
  else if tag = tag_predictor then Printf.sprintf "predictor@pc %d" index
  else if tag = tag_ras then "ras"
  else if tag = tag_ittage then Printf.sprintf "ittage@pc %d" index
  else if tag = tag_stall then
    Printf.sprintf "stall[%s]"
      (match List.nth_opt Stall.all index with
       | Some b -> Stall.name b
       | None -> string_of_int index)
  else if tag = tag_drain then "drain"
  else Printf.sprintf "structure %d/%d" tag index

(* ---- growable stride-4 int buffer: (pc, structure, detail, cycle) ----
   [cycle] is the commit cycle of the µop that caused the event. It is
   carried for reporting (Perfetto timestamps) but excluded from stream
   equality on every stream except Timing — where the timing IS the
   observable and lives in [detail]. *)

type buf = { mutable a : int array; mutable len : int }

let buf () = { a = Array.make 256 0; len = 0 }

let push4 b pc sid detail cycle =
  if b.len + 4 > Array.length b.a then begin
    let a' = Array.make (2 * Array.length b.a) 0 in
    Array.blit b.a 0 a' 0 b.len;
    b.a <- a'
  end;
  b.a.(b.len) <- pc;
  b.a.(b.len + 1) <- sid;
  b.a.(b.len + 2) <- detail;
  b.a.(b.len + 3) <- cycle;
  b.len <- b.len + 4

type t = {
  bufs : buf array; (* indexed by [stream_index] *)
  (* set geometry, precomputed from the machine model *)
  inst_bytes : int;
  word_bytes : int;
  il1_sets : int;
  dl1_line : int;
  dl1_sets : int;
  l2_line : int;
  l2_sets : int;
  mutable last_pc : int;
}

let sets (c : Cache.config) =
  max 1 (c.Cache.size_bytes / (c.Cache.line_bytes * c.Cache.ways))

let create ?(machine = Config.default) () =
  let h = machine.Config.hierarchy in
  {
    bufs = Array.init n_streams (fun _ -> buf ());
    inst_bytes = machine.Config.inst_bytes;
    word_bytes = machine.Config.word_bytes;
    il1_sets = sets h.Hierarchy.il1;
    dl1_line = h.Hierarchy.dl1.Cache.line_bytes;
    dl1_sets = sets h.Hierarchy.dl1;
    l2_line = h.Hierarchy.l2.Cache.line_bytes;
    l2_sets = sets h.Hierarchy.l2;
    last_pc = -1;
  }

let stream_buf t s = t.bufs.(stream_index s)
let length t s = (stream_buf t s).len / 4

let entry t s i =
  let b = stream_buf t s in
  let k = 4 * i in
  if k < 0 || k + 3 >= b.len then invalid_arg "Witness.entry";
  (b.a.(k), b.a.(k + 1), b.a.(k + 2))

let cycle_at t s i =
  let b = stream_buf t s in
  let k = 4 * i in
  if k < 0 || k + 3 >= b.len then invalid_arg "Witness.cycle_at";
  b.a.(k + 3)

let instructions t = length t Trace

(* ---- capture ---- *)

let on_uop t (ev : Probe.uop_event) =
  let u = ev.Probe.uop in
  let pc = u.Uop.pc in
  t.last_pc <- pc;
  let cyc = ev.Probe.commit in
  (* committed-PC trace: the execution-order channel, timing-free *)
  push4 t.bufs.(stream_index Trace) pc (structure ~tag:tag_pc ~index:pc) 0 cyc;
  (* per-cycle timing: commit cycle of every µop, bucketed by the stall
     source that bound it *)
  push4
    t.bufs.(stream_index Timing)
    pc
    (structure ~tag:tag_stall ~index:(Stall.index ev.Probe.bucket))
    cyc cyc;
  (* instruction-cache accesses: only fetches that left the previous line
     touch the IL1 at all *)
  if ev.Probe.il1_line >= 0 then begin
    let sid =
      structure ~tag:tag_il1 ~index:(ev.Probe.il1_line mod t.il1_sets)
    in
    push4 t.bufs.(stream_index Icache) pc sid ev.Probe.fetch_extra cyc;
    if ev.Probe.fetch_extra > 0 then
      (* IL1 miss: the line was fetched from (and installed in) the L2 *)
      push4
        t.bufs.(stream_index L2)
        pc
        (structure ~tag:tag_l2
           ~index:(pc * t.inst_bytes / t.l2_line mod t.l2_sets))
        ev.Probe.fetch_extra cyc
  end;
  (match u.Uop.cls with
   | Sempe_isa.Instr.Cls_load | Sempe_isa.Instr.Cls_store ->
     let byte_addr = u.Uop.mem_addr * t.word_bytes in
     let dl1_sid =
       structure ~tag:tag_dl1 ~index:(byte_addr / t.dl1_line mod t.dl1_sets)
     in
     (* access pattern: which address, through which DL1 set *)
     push4 t.bufs.(stream_index Address) pc dl1_sid u.Uop.mem_addr cyc;
     (* data-cache behaviour: hit/miss latency per access *)
     push4 t.bufs.(stream_index Dcache) pc dl1_sid ev.Probe.mem_extra cyc;
     if ev.Probe.mem_extra > 0 then
       push4
         t.bufs.(stream_index L2)
         pc
         (structure ~tag:tag_l2 ~index:(byte_addr / t.l2_line mod t.l2_sets))
         ev.Probe.mem_extra cyc
   | Sempe_isa.Instr.Cls_nop | Sempe_isa.Instr.Cls_int_alu
   | Sempe_isa.Instr.Cls_int_mul | Sempe_isa.Instr.Cls_int_div
   | Sempe_isa.Instr.Cls_branch | Sempe_isa.Instr.Cls_jump
   | Sempe_isa.Instr.Cls_eosjmp | Sempe_isa.Instr.Cls_halt -> ());
  (* predictor-structure updates. sJMPs never consult a predictor (that is
     the SeMPE design point), so they leave no entry here. *)
  let detail = (if u.Uop.taken then 2 else 0) lor
               (if ev.Probe.mispredicted then 1 else 0) in
  let bpred = t.bufs.(stream_index Bpred) in
  (match u.Uop.ctl with
   | Uop.Ctl_none | Uop.Ctl_jumpback -> ()
   | Uop.Ctl_branch ->
     if not u.Uop.secure then begin
       push4 bpred pc (structure ~tag:tag_predictor ~index:pc) detail cyc;
       if u.Uop.taken then
         push4 bpred pc
           (structure ~tag:tag_btb ~index:(pc land btb_set_mask))
           detail cyc
     end
   | Uop.Ctl_jump ->
     push4 bpred pc (structure ~tag:tag_btb ~index:(pc land btb_set_mask))
       detail cyc
   | Uop.Ctl_call ->
     push4 bpred pc (structure ~tag:tag_btb ~index:(pc land btb_set_mask))
       detail cyc;
     push4 bpred pc (structure ~tag:tag_ras ~index:0) detail cyc
   | Uop.Ctl_ret ->
     push4 bpred pc (structure ~tag:tag_ras ~index:0) detail cyc
   | Uop.Ctl_indirect ->
     push4 bpred pc (structure ~tag:tag_ittage ~index:pc) detail cyc)

let on_drain t (ev : Probe.drain_event) =
  (* a drain stalls the whole machine: that is a timing observable *)
  push4
    t.bufs.(stream_index Timing)
    t.last_pc
    (structure ~tag:tag_drain ~index:0)
    (ev.Probe.resume - ev.Probe.start)
    ev.Probe.start

let probe t = { Probe.on_uop = on_uop t; on_drain = on_drain t }

(* ---- comparison ---- *)

let first_divergence a b s =
  let ba = stream_buf a s and bb = stream_buf b s in
  let common = min ba.len bb.len in
  let rec go k =
    if k >= common then if ba.len = bb.len then None else Some (common / 4)
    else if
      ba.a.(k) <> bb.a.(k)
      || ba.a.(k + 1) <> bb.a.(k + 1)
      || ba.a.(k + 2) <> bb.a.(k + 2)
    then Some (k / 4)
    else go (k + 4)
  in
  go 0
