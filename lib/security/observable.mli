(** Attacker-visible observables of one execution.

    The threat model (§III) grants the attacker coarse timing, shared-cache
    state (prime+probe), branch-predictor state, and knowledge of the
    victim's code. A {!view} condenses everything such an attacker could
    compare across runs; the leakage detector declares a channel leaky when
    the view component differs across secrets. Digests are order-dependent
    FNV-style hashes kept in independent pairs, so any difference in the
    underlying sequence shows up and a single-hash collision cannot mask
    one. *)

type recorder
(** Streams over the committed-µop events of a run. *)

val recorder : unit -> recorder
val feed : recorder -> Sempe_pipeline.Uop.event -> unit

val pc_digest : recorder -> int
(** Digest of the committed-PC sequence (execution-trace channel). *)

val addr_digest : recorder -> int
(** Digest of the load/store word-address sequence (memory access-pattern
    channel). *)

val commits : recorder -> int
val mem_ops : recorder -> int

type view = {
  cycles : int;          (** end-to-end time (timing channel) *)
  instructions : int;
  pc_digest : int;
  pc_digest2 : int;      (** independent second digest of the same stream *)
  addr_digest : int;
  addr_digest2 : int;
  mem_ops : int;         (** length of the access-pattern stream *)
  il1_sig : int;         (** instruction-cache content (code-path probe) *)
  dl1_sig : int;
  l2_sig : int;
  bpred_sig : int;       (** predictor + BTB state *)
  il1_accesses : int;
  il1_misses : int;
  dl1_accesses : int;
  dl1_misses : int;
  l2_accesses : int;
  l2_misses : int;
  mispredicts : int;
}

val view : recorder -> Sempe_pipeline.Timing.report -> view
(** Combine the stream digests with the machine-state signatures and
    access/miss counters of the finished run. *)
