module Uop = Sempe_pipeline.Uop
module Timing = Sempe_pipeline.Timing

type recorder = {
  mutable pc_digest : int;
  mutable pc_digest2 : int;
  mutable addr_digest : int;
  mutable addr_digest2 : int;
  mutable commits : int;
  mutable mem_ops : int;
}

let fnv acc x = (acc * 16777619) lxor (x land 0x3fffffff) lxor (x asr 30)

(* Independent second digest (FNV-1a ordering: xor before multiply, and a
   different seed). Two sequences that collide under [fnv] have no reason
   to collide here too, so the pair is a structural fingerprint rather
   than a single hash a leak could hide behind. *)
let fnv2 acc x = (acc lxor (x land 0x3fffffff) lxor (x asr 30)) * 16777619

let recorder () =
  {
    pc_digest = 2166136261;
    pc_digest2 = 1099511628211;
    addr_digest = 2166136261;
    addr_digest2 = 1099511628211;
    commits = 0;
    mem_ops = 0;
  }

let feed r = function
  | Uop.Commit u ->
    r.commits <- r.commits + 1;
    r.pc_digest <- fnv r.pc_digest u.Uop.pc;
    r.pc_digest2 <- fnv2 r.pc_digest2 u.Uop.pc;
    (match u.Uop.cls with
     | Sempe_isa.Instr.Cls_load | Sempe_isa.Instr.Cls_store ->
       r.mem_ops <- r.mem_ops + 1;
       r.addr_digest <- fnv r.addr_digest u.Uop.mem_addr;
       r.addr_digest2 <- fnv2 r.addr_digest2 u.Uop.mem_addr
     | Sempe_isa.Instr.Cls_nop | Sempe_isa.Instr.Cls_int_alu
     | Sempe_isa.Instr.Cls_int_mul | Sempe_isa.Instr.Cls_int_div
     | Sempe_isa.Instr.Cls_branch | Sempe_isa.Instr.Cls_jump
     | Sempe_isa.Instr.Cls_eosjmp | Sempe_isa.Instr.Cls_halt -> ())
  | Uop.Drain _ -> ()

let pc_digest r = r.pc_digest
let addr_digest r = r.addr_digest
let commits r = r.commits
let mem_ops r = r.mem_ops

type view = {
  cycles : int;
  instructions : int;
  pc_digest : int;
  pc_digest2 : int;
  addr_digest : int;
  addr_digest2 : int;
  mem_ops : int;
  il1_sig : int;
  dl1_sig : int;
  l2_sig : int;
  bpred_sig : int;
  il1_accesses : int;
  il1_misses : int;
  dl1_accesses : int;
  dl1_misses : int;
  l2_accesses : int;
  l2_misses : int;
  mispredicts : int;
}

let view (r : recorder) (report : Timing.report) =
  {
    cycles = report.Timing.cycles;
    instructions = report.Timing.instructions;
    pc_digest = r.pc_digest;
    pc_digest2 = r.pc_digest2;
    addr_digest = r.addr_digest;
    addr_digest2 = r.addr_digest2;
    mem_ops = r.mem_ops;
    il1_sig = report.Timing.il1_sig;
    dl1_sig = report.Timing.dl1_sig;
    l2_sig = report.Timing.l2_sig;
    bpred_sig = report.Timing.bpred_sig;
    il1_accesses = report.Timing.il1_accesses;
    il1_misses = report.Timing.il1_misses;
    dl1_accesses = report.Timing.dl1_accesses;
    dl1_misses = report.Timing.dl1_misses;
    l2_accesses = report.Timing.l2_accesses;
    l2_misses = report.Timing.l2_misses;
    mispredicts = report.Timing.mispredicts;
  }
