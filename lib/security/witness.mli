(** Per-run attacker-view event streams for leakage attribution.

    {!Leakage} answers {e whether} a channel distinguishes two secrets by
    comparing one digest per channel; a witness keeps the underlying
    sequences so {!Attribution} can answer {e where}: the first diverging
    event, its static PC, and the hardware structure instance it touched.

    Capture rides the {!Sempe_pipeline.Probe} interface: a witness is
    passive (nothing it records ever feeds back into a cycle assignment)
    and free when detached (the timing model emits no events without a
    probe). Streams store plain ints — every entry is a
    [(pc, structure, detail)] triple — so recording a run costs a few
    array writes per committed µop. *)

type t

(** One attacker-observable event sequence. Channels with a stream map
    1:1 onto {!Leakage.channel}; [Instruction_count] has no stream of its
    own (its divergence is the [Trace] length). *)
type stream = Trace | Address | Icache | Dcache | L2 | Bpred | Timing

val streams : stream list
val stream_name : stream -> string

val create : ?machine:Sempe_pipeline.Config.t -> unit -> t
(** Fresh empty witness. [machine] (default {!Sempe_pipeline.Config.default})
    supplies the cache geometry used to name set indices. *)

val probe : t -> Sempe_pipeline.Probe.t
(** The probe that appends this run's events to the witness. Attach it via
    [Timing.create ?probe] / [Run.simulate ?sink] (tee with any other
    sink). *)

val length : t -> stream -> int
(** Number of events recorded on a stream. *)

val entry : t -> stream -> int -> int * int * int
(** [entry t s i] is the [i]-th [(pc, structure, detail)] event of [s].
    [pc] is the static instruction index that caused the event;
    [structure] names the hardware structure instance it touched (decode
    with {!structure_name}); [detail] is per-stream: the word address
    (Address), extra miss latency (Icache/Dcache/L2), taken/mispredict
    bits (Bpred), commit cycle or drain length (Timing), 0 (Trace).
    @raise Invalid_argument when out of range. *)

val cycle_at : t -> stream -> int -> int
(** Commit cycle of the µop behind the [i]-th event — reporting metadata
    (Perfetto timestamps), deliberately {e not} part of stream equality on
    any stream but Timing (where it equals the entry's [detail]).
    @raise Invalid_argument when out of range. *)

val instructions : t -> int
(** Committed-µop count ([length t Trace]). *)

val structure_name : int -> string
(** Human name of a structure id, e.g. ["dl1[set 17]"], ["btb[set 405]"],
    ["predictor@pc 12"]. *)

val first_divergence : t -> t -> stream -> int option
(** Index of the first event where the two runs' streams differ — by pc,
    structure, or detail — or the length of the shorter stream when one is
    a proper prefix of the other; [None] when identical. *)
