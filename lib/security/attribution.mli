(** Leakage attribution: align per-run {!Witness} streams across secrets
    and localize every divergence.

    {!Leakage} says {e which} channel distinguishes two secrets; this
    module says {e where}. Streams are compared event-by-event against the
    first run (the reference). A stream index is {e divergent} when any
    other run disagrees there (different pc, structure, or detail — or the
    event only exists on one side). Each divergent index is attributed to
    exactly one static PC and one hardware-structure instance, so the
    per-structure counts — the {e leakage stack} — sum to the divergent
    total by construction, mirroring the CPI stall stack's invariant. *)

type divergence = {
  d_index : int;      (** stream event index *)
  d_pc : int;         (** static pc of the diverging event *)
  d_structure : int;  (** structure id; {!Witness.structure_name} decodes *)
  d_cycle : int;      (** commit cycle of that event in its run *)
}

type channel_report = {
  cr_stream : Witness.stream;
  cr_events : int;  (** stream length of the reference (first) run *)
  cr_divergent : int;
  cr_first : divergence option;
  cr_regions : (int * int) list;  (** divergent index ranges, [start, stop) *)
  cr_stack : (int * int) list;
      (** structure id -> divergent events, descending; sums to
          [cr_divergent] *)
  cr_pcs : (int * int) list;  (** pc -> divergent events; same sum *)
}

type t = {
  runs : int;
  instructions : int;  (** committed µops of the reference run *)
  by_channel : channel_report list;  (** one per {!Witness.stream} *)
}

val attribute : Witness.t list -> t
(** Diff every stream of runs 1.. against run 0.
    @raise Invalid_argument on fewer than two witnesses (same rationale as
    {!Leakage.compare_views}). *)

val is_clean : t -> bool
(** No divergent event on any channel: the runs were attacker-
    indistinguishable. *)

val total_divergent : t -> int

val find_report : t -> Witness.stream -> channel_report
(** @raise Not_found never (every stream has a report). *)

val locate : Sempe_isa.Program.t -> int -> string
(** Source-level statement for a static pc via the program's label table
    (nearest preceding label plus offset), e.g. ["sec_t1+2 (pc 14)"]. *)

val render : ?program:Sempe_isa.Program.t -> t -> string
(** Human-readable report: per diverging channel, the first divergence
    (event index, pc / source statement, structure, cycle), the region
    list, the leakage stack table, and per-PC counts. [program] resolves
    pcs to statements via {!locate}. *)

val to_json : ?program:Sempe_isa.Program.t -> t -> Sempe_obs.Json.t

val perfetto_events :
  ?secrets:string list -> t -> Witness.t list -> Sempe_obs.Json.t list
(** Chrome trace events: one lane (thread) per secret spanning its run,
    plus a thread-scoped instant marker at the start of every divergent
    region on each lane that still has the event. [secrets] names the
    lanes; timestamps are commit cycles. *)

val write_perfetto :
  ?secrets:string list -> out_channel -> t -> Witness.t list -> unit
(** Stream {!perfetto_events} as a complete Perfetto JSON document (same
    envelope contract as [Sempe_obs.Sink.perfetto]). *)
