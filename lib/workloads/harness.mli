(** Build-and-run harness: apply a scheme's program transform, compile, set
    up memory, simulate, and read results back. *)

type built = {
  scheme : Sempe_core.Scheme.t;
  ast : Sempe_lang.Ast.program;       (** after the scheme transform *)
  prog : Sempe_isa.Program.t;
  layout : Sempe_lang.Codegen.layout;
}

val transform :
  Sempe_core.Scheme.t -> Sempe_lang.Ast.program -> Sempe_lang.Ast.program
(** Baseline strips the secret marks; SeMPE (and SeMPE-on-legacy) applies
    ShadowMemory privatization; CTE / Raccoon / MTO apply their softpath
    transforms. *)

val build : Sempe_core.Scheme.t -> Sempe_lang.Ast.program -> built

val run :
  ?machine:Sempe_pipeline.Config.t
  -> ?mem_words:int
  -> ?max_instrs:int
  -> ?globals:(string * int) list
  -> ?arrays:(string * int array) list
  -> ?observe:(Sempe_pipeline.Uop.event -> unit)
  -> ?sink:Sempe_obs.Sink.t
  -> built
  -> Sempe_core.Run.outcome
(** Simulates on a fresh machine with the scheme's hardware support.
    [globals]/[arrays] initialize named program state (secrets, inputs).
    [sink] attaches an observability sink (see {!Sempe_core.Run.simulate}). *)

val return_value : Sempe_core.Run.outcome -> int
(** [main]'s return value. *)

val read_global : built -> Sempe_core.Run.outcome -> string -> int
val read_array : built -> Sempe_core.Run.outcome -> string -> int array
