(** Build-and-run harness: apply a scheme's program transform, compile, set
    up memory, simulate, and read results back. *)

type built = {
  scheme : Sempe_core.Scheme.t;
  ast : Sempe_lang.Ast.program;       (** after the scheme transform *)
  prog : Sempe_isa.Program.t;
  layout : Sempe_lang.Codegen.layout;
}

val transform :
  ?fault:Sempe_core.Exec.fault ->
  Sempe_core.Scheme.t ->
  Sempe_lang.Ast.program ->
  Sempe_lang.Ast.program
(** Baseline strips the secret marks; SeMPE (and SeMPE-on-legacy) applies
    ShadowMemory privatization; CTE / Raccoon / MTO apply their softpath
    transforms.

    [fault] (default [No_fault]) seeds the corresponding protocol bug
    into the ShadowMemory lowering of the SeMPE builds — the fuzzer's
    self-test. [Skip_restore] drops the post-join merges and
    [Skip_nt_restore] lets the fall-through path write the original
    locations; see {!Sempe_lang.Shadow.privatize}. The execution-level
    counterpart (suppressed hardware register restores, see
    {!Sempe_core.Exec}) is architecturally silent for compiled programs
    because the memory-to-memory codegen leaves no register live across
    an eosJMP — the lowering is where the restore protocol is
    observable. *)

val build :
  ?fault:Sempe_core.Exec.fault ->
  Sempe_core.Scheme.t ->
  Sempe_lang.Ast.program ->
  built
(** [transform], then compile. [fault] as in {!transform}. *)

val init_mem_of :
  built
  -> globals:(string * int) list
  -> arrays:(string * int array) list
  -> int array
  -> unit
(** The memory initializer {!run} and {!sample} install the named
    [globals]/[arrays] with — exposed for callers that drive
    {!Sempe_core.Exec} sessions by hand (tests, custom samplers). *)

val run :
  ?machine:Sempe_pipeline.Config.t
  -> ?mem_words:int
  -> ?max_instrs:int
  -> ?forgiving_oob:bool
  -> ?fault:Sempe_core.Exec.fault
  -> ?globals:(string * int) list
  -> ?arrays:(string * int array) list
  -> ?observe:(Sempe_pipeline.Uop.event -> unit)
  -> ?sink:Sempe_obs.Sink.t
  -> built
  -> Sempe_core.Run.outcome
(** Simulates on a fresh machine with the scheme's hardware support.
    [globals]/[arrays] initialize named program state (secrets, inputs).
    [forgiving_oob] / [fault] as in {!Sempe_core.Run.simulate}.
    [sink] attaches an observability sink (see {!Sempe_core.Run.simulate}). *)

val sample :
  ?machine:Sempe_pipeline.Config.t
  -> ?mem_words:int
  -> ?max_instrs:int
  -> ?forgiving_oob:bool
  -> ?fault:Sempe_core.Exec.fault
  -> ?globals:(string * int) list
  -> ?arrays:(string * int array) list
  -> ?config:Sempe_sampling.Sampling.config
  -> ?workers:int
  -> ?plan:Sempe_sampling.Sampling.plan
  -> ?plan_out:(Sempe_sampling.Sampling.plan -> unit)
  -> ?cost_fallback:bool
  -> built
  -> Sempe_sampling.Sampling.estimate
(** Sampled simulation of the same workload setup as {!run} — see
    {!Sempe_sampling.Sampling.estimate}. For performance estimates only;
    security experiments need the full runs of {!run}. [plan]/[plan_out]
    revive / record the fast-forward pass's checkpoint plan (the serving
    daemon's checkpoint cache); the caller must key plans by program,
    inputs, and sampling boundary config. *)

val return_value : Sempe_core.Run.outcome -> int
(** [main]'s return value. *)

val read_global : built -> Sempe_core.Run.outcome -> string -> int
val read_array : built -> Sempe_core.Run.outcome -> string -> int array
