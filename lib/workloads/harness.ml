module Scheme = Sempe_core.Scheme
module Run = Sempe_core.Run
module Exec = Sempe_core.Exec
module Codegen = Sempe_lang.Codegen
module Shadow = Sempe_lang.Shadow

type built = {
  scheme : Scheme.t;
  ast : Sempe_lang.Ast.program;
  prog : Sempe_isa.Program.t;
  layout : Codegen.layout;
}

let transform ?(fault = Exec.No_fault) scheme ast =
  match scheme with
  | Scheme.Baseline -> Shadow.strip_secret_marks ast
  | Scheme.Sempe | Scheme.Sempe_on_legacy ->
    Shadow.privatize
      ~skip_merge:(fault = Exec.Skip_restore)
      ~skip_nt_shadow:(fault = Exec.Skip_nt_restore)
      ast
  | Scheme.Cte -> Sempe_cte.Baselines.cte ast
  | Scheme.Raccoon -> Sempe_cte.Baselines.raccoon ast
  | Scheme.Mto -> Sempe_cte.Baselines.mto ast

let build ?fault scheme ast =
  let ast = transform ?fault scheme ast in
  let prog, layout = Codegen.compile ast in
  { scheme; ast; prog; layout }

let init_mem_of built ~globals ~arrays mem =
  List.iter
    (fun (name, value) ->
      mem.(Codegen.scalar_offset built.layout name) <- value)
    globals;
  List.iter
    (fun (name, values) ->
      let off, size = Codegen.array_slice built.layout name in
      if Array.length values <> size then
        invalid_arg
          (Printf.sprintf "Harness.run: array %S expects %d values, got %d"
             name size (Array.length values));
      Array.blit values 0 mem off size)
    arrays

let run ?machine ?(mem_words = 1 lsl 20) ?max_instrs ?forgiving_oob ?fault
    ?(globals = []) ?(arrays = []) ?observe ?sink built =
  Run.simulate
    ~support:(Scheme.support built.scheme)
    ?machine ~mem_words ?max_instrs ?forgiving_oob ?fault
    ~init_mem:(init_mem_of built ~globals ~arrays)
    ?observe ?sink built.prog

let sample ?machine ?(mem_words = 1 lsl 20) ?max_instrs ?forgiving_oob ?fault
    ?(globals = []) ?(arrays = []) ?config ?workers ?plan ?plan_out
    ?cost_fallback built =
  Sempe_sampling.Sampling.estimate
    ~support:(Scheme.support built.scheme)
    ?machine ~mem_words ?max_instrs ?forgiving_oob ?fault
    ~init_mem:(init_mem_of built ~globals ~arrays)
    ?config ?workers ?plan ?plan_out ?cost_fallback built.prog

let return_value (o : Run.outcome) = o.Run.exec.Exec.regs.(Sempe_isa.Reg.rv)

let read_global built (o : Run.outcome) name =
  o.Run.exec.Exec.memory.(Codegen.scalar_offset built.layout name)

let read_array built (o : Run.outcome) name =
  let off, size = Codegen.array_slice built.layout name in
  Array.sub o.Run.exec.Exec.memory off size
