(** Greedy delta debugging of a failing fuzz case.

    Reduction passes, run to a joint fixpoint: drop statements, un-nest
    branches/loops (replace them by one of their arms or a single body
    copy), shrink the returned checksum to the atom that witnesses the
    failure, and pull integer literals towards zero. Every candidate must
    re-fail the caller's predicate before it is accepted, so the oracle
    that flagged the original case still flags the reproducer. *)

type stats = {
  trials : int;  (** times [still] was invoked *)
  accepted : int;  (** reductions that kept the failure *)
}

val minimize :
  ?max_trials:int -> still:(Gen.case -> bool) -> Gen.case -> Gen.case * stats
(** [minimize ~still case] greedily shrinks [case] while [still] holds.
    [still] should re-run the violated oracle (and, for fidelity, accept
    only the same oracle failing — not any failure). [max_trials]
    (default 4000) bounds the number of [still] invocations; the walk is
    deterministic, so a given failing case always minimizes to the same
    reproducer. *)
