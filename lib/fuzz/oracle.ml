module Exec = Sempe_core.Exec
module Run = Sempe_core.Run
module Scheme = Sempe_core.Scheme
module Harness = Sempe_workloads.Harness
module Eval = Sempe_lang.Eval
module Timing = Sempe_pipeline.Timing
module Warm = Sempe_pipeline.Warm
module Observable = Sempe_security.Observable
module Leakage = Sempe_security.Leakage
module Witness = Sempe_security.Witness
module Attribution = Sempe_security.Attribution
module Sink = Sempe_obs.Sink
module Sampling = Sempe_sampling.Sampling
module Checkpoint = Sempe_sampling.Checkpoint

type ctx = { fault : Exec.fault; mem_words : int }

let default_ctx = { fault = Exec.No_fault; mem_words = 1 lsl 14 }

type verdict = Pass | Fail of string

type t = { name : string; describe : string; check : ctx -> Gen.case -> verdict }

let arrays_of (case : Gen.case) = [ (Gen.array_name, case.fill) ]

let pp_secrets secrets =
  String.concat ", "
    (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) secrets)

(* ---- state equivalence -------------------------------------------------- *)

type state = { rv : int; gvals : int list; arr : int array }

let reference (case : Gen.case) secrets =
  let st = Eval.init case.prog in
  List.iter (fun (name, value) -> Eval.set_global st name value) secrets;
  Eval.set_array st Gen.array_name case.fill;
  let rv = Eval.run ~max_steps:2_000_000 st in
  {
    rv;
    gvals = List.map (Eval.get_global st) Gen.globals;
    arr = Eval.get_array st Gen.array_name;
  }

(* Architectural state only, so the pure functional executor suffices —
   no detailed timing model. This is what lets the state oracle afford
   3 schemes x 6 secret assignments on every case. *)
let simulated ctx built secrets (case : Gen.case) =
  let module Codegen = Sempe_lang.Codegen in
  let res =
    Run.execute
      ~support:(Scheme.support built.Harness.scheme)
      ~mem_words:ctx.mem_words ~fault:ctx.fault
      ~init_mem:
        (Harness.init_mem_of built ~globals:secrets ~arrays:(arrays_of case))
      built.Harness.prog
  in
  let layout = built.Harness.layout in
  let off, size = Codegen.array_slice layout Gen.array_name in
  {
    rv = res.Exec.regs.(Sempe_isa.Reg.rv);
    gvals =
      List.map
        (fun g -> res.Exec.memory.(Codegen.scalar_offset layout g))
        Gen.globals;
    arr = Array.sub res.Exec.memory off size;
  }

let state_diff expected got =
  if got.rv <> expected.rv then
    Some (Printf.sprintf "return value: expected %d, got %d" expected.rv got.rv)
  else if got.gvals <> expected.gvals then
    Some
      (Printf.sprintf "globals: expected [%s], got [%s]"
         (String.concat "; " (List.map string_of_int expected.gvals))
         (String.concat "; " (List.map string_of_int got.gvals)))
  else if got.arr <> expected.arr then
    Some
      (Printf.sprintf "%s contents: expected [%s], got [%s]" Gen.array_name
         (String.concat "; "
            (List.map string_of_int (Array.to_list expected.arr)))
         (String.concat "; " (List.map string_of_int (Array.to_list got.arr))))
  else None

let check_state ctx (case : Gen.case) =
  let schemes = [ Scheme.Baseline; Scheme.Sempe; Scheme.Sempe_on_legacy ] in
  let builts =
    List.map (fun s -> (s, Harness.build ~fault:ctx.fault s case.prog)) schemes
  in
  let rec go = function
    | [] -> Pass
    | secrets :: rest ->
      let expected = reference case secrets in
      let rec try_schemes = function
        | [] -> go rest
        | (scheme, built) :: more -> (
          match state_diff expected (simulated ctx built secrets case) with
          | None -> try_schemes more
          | Some diff ->
            Fail
              (Printf.sprintf "%s under {%s}: %s" (Scheme.name scheme)
                 (pp_secrets secrets) diff))
      in
      try_schemes builts
  in
  go case.secrets

(* ---- trace independence ------------------------------------------------- *)

let check_trace ctx (case : Gen.case) =
  let built = Harness.build ~fault:ctx.fault Scheme.Sempe case.prog in
  let view secrets =
    let recorder = Observable.recorder () in
    let w = Witness.create () in
    let outcome =
      Harness.run ~fault:ctx.fault ~globals:secrets ~arrays:(arrays_of case)
        ~mem_words:ctx.mem_words
        ~observe:(Observable.feed recorder)
        ~sink:(Sink.of_probe (Witness.probe w))
        built
    in
    (Observable.view recorder outcome.Run.timing, w)
  in
  let pairs = List.map view case.secrets in
  let views = List.map fst pairs and witnesses = List.map snd pairs in
  let findings = Leakage.compare_views ~witnesses views in
  match List.filter Leakage.leaks findings with
  | [] -> Pass
  | leaky ->
    let describe (f : Leakage.finding) =
      match f.Leakage.first_divergence with
      | Some i ->
        Printf.sprintf "%s (first divergence at event %d)"
          (Leakage.channel_name f.Leakage.channel) i
      | None -> Leakage.channel_name f.Leakage.channel
    in
    Fail
      (Printf.sprintf "SeMPE run distinguishes secrets on channel(s): %s"
         (String.concat ", " (List.map describe leaky)))

(* ---- timing-report invariants ------------------------------------------- *)

let check_timing ctx (case : Gen.case) =
  let schemes = [ Scheme.Baseline; Scheme.Sempe ] in
  let rec go = function
    | [] -> Pass
    | (scheme, secrets) :: rest -> (
      let built = Harness.build ~fault:ctx.fault scheme case.prog in
      let outcome =
        Harness.run ~fault:ctx.fault ~globals:secrets ~arrays:(arrays_of case)
          ~mem_words:ctx.mem_words built
      in
      match Timing.check_report outcome.Run.timing with
      | [] -> go rest
      | errs ->
        Fail
          (Printf.sprintf "%s under {%s}: %s" (Scheme.name scheme)
             (pp_secrets secrets)
             (String.concat "; " errs)))
  in
  (* two assignments per scheme: the structural invariants do not depend
     on which secrets are live, and the full set would double the cost of
     every case for no extra signal *)
  let secrets =
    match case.secrets with a :: b :: _ -> [ a; b ] | short -> short
  in
  go (List.concat_map (fun s -> List.map (fun sec -> (s, sec)) secrets) schemes)

(* ---- sampled estimate at full coverage ---------------------------------- *)

let check_sampling ctx (case : Gen.case) =
  let built = Harness.build ~fault:ctx.fault Scheme.Sempe case.prog in
  let secrets = List.hd case.secrets in
  let full =
    Harness.run ~fault:ctx.fault ~globals:secrets ~arrays:(arrays_of case)
      ~mem_words:ctx.mem_words built
  in
  let est =
    Harness.sample ~fault:ctx.fault ~globals:secrets ~arrays:(arrays_of case)
      ~mem_words:ctx.mem_words
      ~config:{ Sampling.interval = 256; coverage = 1.0; warmup = 0; offset = 0 }
      ~workers:1 built
  in
  if not est.Sampling.exact then
    Fail "full-coverage estimate did not take the exact path"
  else if est.Sampling.cycles_estimate <> Run.cycles full then
    Fail
      (Printf.sprintf
         "full-coverage estimate: %d cycles, contiguous run: %d cycles"
         est.Sampling.cycles_estimate (Run.cycles full))
  else if est.Sampling.instructions <> full.Run.exec.Exec.dyn_instrs then
    Fail
      (Printf.sprintf
         "full-coverage estimate: %d instructions, contiguous run: %d"
         est.Sampling.instructions full.Run.exec.Exec.dyn_instrs)
  else
    match est.Sampling.report with
    | None -> Fail "full-coverage estimate carries no detailed report"
    | Some r when r <> full.Run.timing ->
      Fail "full-coverage report differs from the contiguous run's report"
    | Some _ -> Pass

(* ---- checkpoint round-trip ---------------------------------------------- *)

let check_checkpoint ctx (case : Gen.case) =
  let built = Harness.build ~fault:ctx.fault Scheme.Sempe case.prog in
  let secrets = List.hd case.secrets in
  let support = Scheme.support built.Harness.scheme in
  let prog = built.Harness.prog in
  let init_mem =
    Harness.init_mem_of built ~globals:secrets ~arrays:(arrays_of case)
  in
  let reference =
    Run.execute ~support ~mem_words:ctx.mem_words ~fault:ctx.fault ~init_mem
      prog
  in
  if reference.Exec.dyn_instrs < 2 then Pass
  else begin
    let exec_config =
      {
        Exec.default_config with
        Exec.support;
        mem_words = ctx.mem_words;
        fault = ctx.fault;
      }
    in
    let cut = reference.Exec.dyn_instrs / 2 in
    let warm = Warm.create () in
    let sess = Exec.start ~config:exec_config ~init_mem ~warm prog in
    let (_ : bool) = Exec.step_slice sess cut in
    let ckpt = Checkpoint.save ~arch:(Exec.capture sess) ~warm in
    let arch2, warm2 = Checkpoint.restore ckpt in
    let ckpt2 = Checkpoint.save ~arch:arch2 ~warm:warm2 in
    if Checkpoint.digest ckpt <> Checkpoint.digest ckpt2 then
      Fail "save/restore/save round-trip is not byte-identical"
    else if Checkpoint.instructions ckpt <> Checkpoint.instructions ckpt2 then
      Fail "round-tripped checkpoint changed its instruction count"
    else if Checkpoint.halted ckpt <> Checkpoint.halted ckpt2 then
      Fail "round-tripped checkpoint changed its halted flag"
    else begin
      let from_restore = Exec.finish (Exec.resume prog arch2) in
      let from_session = Exec.finish sess in
      let agree label (r : Exec.result) =
        if r.Exec.regs <> reference.Exec.regs then
          Some (label ^ ": final registers differ from uncheckpointed run")
        else if r.Exec.memory <> reference.Exec.memory then
          Some (label ^ ": final memory differs from uncheckpointed run")
        else if r.Exec.dyn_instrs <> reference.Exec.dyn_instrs then
          Some (label ^ ": instruction count differs from uncheckpointed run")
        else None
      in
      match
        (agree "resumed restore" from_restore, agree "original session" from_session)
      with
      | None, None -> Pass
      | Some msg, _ | _, Some msg -> Fail msg
    end
  end

(* ---- leakage attribution of a reproducer --------------------------------- *)

let witness_of ctx ~fault built secrets (case : Gen.case) =
  let w = Witness.create () in
  let (_ : Run.outcome) =
    Harness.run ~fault ~globals:secrets ~arrays:(arrays_of case)
      ~mem_words:ctx.mem_words
      ~sink:(Sink.of_probe (Witness.probe w))
      built
  in
  w

(* Localize what a failing case leaks: first diff the (possibly faulted)
   SeMPE build's attacker streams across the case's secrets; when those
   are identical (a value-only bug such as a skipped restore corrupts
   state without splitting the streams across secrets), fall back to
   diffing the faulted build against the clean build under one secret —
   the dropped statements shift every later pc, so the divergence names
   the site of the missing protocol step. *)
let attribute ctx (case : Gen.case) =
  let built = Harness.build ~fault:ctx.fault Scheme.Sempe case.prog in
  let cross =
    List.map
      (fun secrets -> witness_of ctx ~fault:ctx.fault built secrets case)
      case.secrets
  in
  let cross_attr =
    match cross with
    | _ :: _ :: _ -> Some (Attribution.attribute cross)
    | _ -> None
  in
  match cross_attr with
  | Some attr when not (Attribution.is_clean attr) ->
    Some (attr, built.Harness.prog, "across secrets (SeMPE build)")
  | _ -> (
    match ctx.fault with
    | Exec.No_fault -> None
    | _ ->
      let clean = Harness.build Scheme.Sempe case.prog in
      let secrets = List.hd case.secrets in
      let wc = witness_of ctx ~fault:Exec.No_fault clean secrets case in
      let wf = witness_of ctx ~fault:ctx.fault built secrets case in
      let attr = Attribution.attribute [ wc; wf ] in
      if Attribution.is_clean attr then None
      else Some (attr, clean.Harness.prog, "faulted vs clean build"))

(* ---- registry ------------------------------------------------------------ *)

let all =
  [
    {
      name = "state";
      describe =
        "reference interpreter, legacy, SeMPE and SeMPE-on-legacy builds \
         agree on all architectural results for every secret assignment";
      check = check_state;
    };
    {
      name = "trace";
      describe =
        "SeMPE runs under different secrets are indistinguishable on every \
         attacker channel";
      check = check_trace;
    };
    {
      name = "timing";
      describe =
        "detailed reports satisfy the stall-stack and rate invariants";
      check = check_timing;
    };
    {
      name = "sampling";
      describe =
        "the sampled estimator at 100% coverage reproduces the full run \
         bit-for-bit";
      check = check_sampling;
    };
    {
      name = "checkpoint";
      describe =
        "checkpoint save/restore round-trips byte-identically and resumes \
         to the same final state";
      check = check_checkpoint;
    };
  ]

let names = List.map (fun o -> o.name) all
let find name = List.find_opt (fun o -> o.name = name) all

let run_all oracles ctx case =
  let rec go = function
    | [] -> None
    | o :: rest -> (
      match (try o.check ctx case with exn -> Fail (Printexc.to_string exn)) with
      | Pass -> go rest
      | Fail msg -> Some (o.name, msg))
  in
  go oracles
