(* Persistent reproducers. Each corpus file is one self-contained JSON
   document: the minimized program in concrete syntax (re-parsed on
   load), its array fill and secret assignments, and the oracle verdict
   that produced it. The fuzzer replays every corpus entry before
   generating anything new, so a fixed bug stays fixed. *)

module Json = Sempe_obs.Json
module Parser = Sempe_lang.Parser

type entry = { case : Gen.case; oracle : string; message : string }

exception Malformed of string

let case_to_json (c : Gen.case) =
  Json.Obj
    [
      ("seed", Json.Int c.Gen.seed);
      ("source", Json.Str (Gen.to_source c));
      ( "fill",
        Json.List (List.map (fun x -> Json.Int x) (Array.to_list c.Gen.fill))
      );
      ( "secrets",
        Json.List
          (List.map
             (fun asg ->
               Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) asg))
             c.Gen.secrets) );
    ]

let to_json e =
  Json.Obj
    [
      ("oracle", Json.Str e.oracle);
      ("message", Json.Str e.message);
      ("case", case_to_json e.case);
    ]

(* ---- decoding ----------------------------------------------------------- *)

let get field j =
  match Json.member field j with
  | Some v -> v
  | None -> raise (Malformed (Printf.sprintf "missing field %S" field))

let as_int field = function
  | Json.Int n -> n
  | _ -> raise (Malformed (Printf.sprintf "field %S: expected an integer" field))

let as_str field = function
  | Json.Str s -> s
  | _ -> raise (Malformed (Printf.sprintf "field %S: expected a string" field))

let as_list field = function
  | Json.List xs -> xs
  | _ -> raise (Malformed (Printf.sprintf "field %S: expected a list" field))

let case_of_json j =
  let seed = as_int "seed" (get "seed" j) in
  let source = as_str "source" (get "source" j) in
  let prog =
    try Parser.program source
    with exn ->
      raise
        (Malformed
           (Printf.sprintf "unparsable source: %s" (Printexc.to_string exn)))
  in
  let fill =
    get "fill" j |> as_list "fill" |> List.map (as_int "fill") |> Array.of_list
  in
  let secrets =
    get "secrets" j
    |> as_list "secrets"
    |> List.map (function
         | Json.Obj kvs -> List.map (fun (n, v) -> (n, as_int n v)) kvs
         | _ -> raise (Malformed "field \"secrets\": expected objects"))
  in
  if Array.length fill <> Gen.array_size then
    raise
      (Malformed
         (Printf.sprintf "fill has %d words, expected %d" (Array.length fill)
            Gen.array_size));
  if secrets = [] then raise (Malformed "no secret assignments");
  { Gen.seed; prog; fill; secrets }

let of_json j =
  {
    case = case_of_json (get "case" j);
    oracle = as_str "oracle" (get "oracle" j);
    message = as_str "message" (get "message" j);
  }

(* ---- files -------------------------------------------------------------- *)

let rec mkdirs dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let save ~dir e =
  mkdirs dir;
  let path =
    Filename.concat dir
      (Printf.sprintf "repro-%s-s%d.json" e.oracle e.case.Gen.seed)
  in
  let oc = open_out path in
  output_string oc (Json.to_string (to_json e));
  output_char oc '\n';
  close_out oc;
  path

let load_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  match Json.of_string src with
  | j -> of_json j
  | exception Json.Parse_error { pos; message } ->
    raise (Malformed (Printf.sprintf "invalid JSON at offset %d: %s" pos message))

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.filter_map (fun f ->
           let path = Filename.concat dir f in
           match load_file path with
           | e -> Some (f, e)
           | exception (Malformed reason | Sys_error reason) ->
             Printf.eprintf "[fuzz] skipping corpus file %s: %s\n%!" path
               reason;
             None)
