(** On-disk reproducers for the differential fuzzer.

    One JSON file per minimized failure: the program in concrete syntax,
    its array fill, the secret assignments, and the oracle verdict. The
    fuzzer replays every entry of the corpus directory before generating
    new cases, so a reproducer keeps guarding against regressions until
    it is deleted. Files are self-contained — they re-parse through
    {!Sempe_lang.Parser}, with no dependence on the generator's seed
    staying reproducible across versions. *)

type entry = {
  case : Gen.case;
  oracle : string;  (** the oracle that failed (a {!Oracle.t} name) *)
  message : string;  (** its account of the violation *)
}

exception Malformed of string
(** Raised by the decoding half on structurally invalid corpus files. *)

val to_json : entry -> Sempe_obs.Json.t
val of_json : Sempe_obs.Json.t -> entry

val save : dir:string -> entry -> string
(** Write the entry to [dir/repro-<oracle>-s<seed>.json] (creating [dir]
    if needed) and return the path. *)

val load_file : string -> entry
(** @raise Malformed on unparsable content. *)

val load_dir : string -> (string * entry) list
(** All [*.json] entries of a directory in filename order (so replay
    order is deterministic), as [(basename, entry)]. Malformed files are
    skipped with a note on stderr. A missing directory is an empty
    corpus. *)
