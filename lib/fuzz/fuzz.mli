(** The differential fuzzing driver: corpus replay, then rounds of
    generated (and feedback-mutated) cases checked against the selected
    {!Oracle}s on a {!Sempe_util.Pool} of worker domains.

    Determinism: for a fixed [seed]/[count]/[oracles]/[gen_cfg], the
    outcome — including {!to_json} byte-for-byte — is identical at any
    [workers] value. Rounds have a fixed size independent of the worker
    count; oracle checks are pure share-nothing jobs; every feedback
    decision (fingerprint bookkeeping, mutant scheduling, minimization,
    corpus writes) happens on the driver domain in job order. [budget_s]
    is the one wall-clock input and is consulted between rounds only —
    use [count] alone for reproducible runs.

    The coverage signal is microarchitectural: passing cases are
    fingerprinted by log-bucketed execution shape (secure branches,
    drains, peak nesting, mispredicts, SPM traffic, dynamic length), and
    the first case per fresh fingerprint is mutated to explore its
    neighborhood. *)

type config = {
  seed : int;  (** master seed; per-case seeds derive via {!Sempe_util.Rng.mix} *)
  count : int;  (** cases to execute (fresh + mutants), excluding replays *)
  budget_s : float option;  (** optional wall-clock cutoff, between rounds *)
  oracles : Oracle.t list;  (** checked in list order; first failure reported *)
  workers : int;  (** pool size; 1 = sequential *)
  ctx : Oracle.ctx;
  gen_cfg : Gen.cfg;
  corpus_dir : string option;
      (** replay source and reproducer destination; [None] disables both *)
  minimize : bool;  (** delta-debug failures down to small reproducers *)
  max_failures : int;  (** stop after this many distinct failures *)
}

val default_config : config
(** seed 1, 100 cases, no budget, all oracles, sequential, default
    context and grammar, no corpus, minimization on, stop at 5
    failures. *)

type origin = Generated | Mutant | Replayed of string

val origin_name : origin -> string

(** Leakage localization of a reproducer (see {!Oracle.attribute}): which
    comparison diverged, the rendered attribution naming the divergent PC
    and hardware structure, and its JSON form. *)
type attribution = {
  a_comparison : string;
  a_text : string;
  a_json : Sempe_obs.Json.t;
}

type failure = {
  f_seed : int;
  f_origin : origin;
  f_oracle : string;
  f_message : string;
  f_size : int;  (** statements before minimization *)
  f_min_size : int;  (** statements after minimization *)
  f_min_instrs : int;
      (** static SeMPE instructions of the reproducer (-1 if it no longer
          compiles, which would itself be a bug) *)
  f_source : string;  (** minimized program, concrete syntax *)
  f_trials : int;  (** oracle invocations the minimizer spent *)
  f_repro : string option;  (** corpus path, when persisted *)
  f_attribution : attribution option;
      (** present for state/trace failures whose witness comparison
          diverges *)
}

type outcome = {
  executed : int;
  generated : int;
  mutants : int;
  replayed : int;
  features : int;  (** distinct execution-shape fingerprints observed *)
  failures : failure list;
  wall_s : float;
}

val run : config -> outcome

val to_json : outcome -> Sempe_obs.Json.t
(** Machine-readable outcome. Excludes [wall_s] so the document is
    byte-identical across worker counts and runs. *)
