(* The differential fuzzing driver.

   Work is organized in fixed-size rounds so results are deterministic at
   any worker count: a round's cases are fully determined by the master
   seed (fresh cases) and by earlier rounds' results (mutants), the
   oracle checks fan out over the domain pool as pure share-nothing jobs,
   and all feedback — feature bookkeeping, mutant scheduling, failure
   minimization, corpus writes — happens on the driver domain in job
   order. [budget_s] is the only wall-clock input, and it is consulted
   between rounds only, so a `--count`-bounded run is bit-reproducible.

   "Coverage" feedback is microarchitectural, not line-based: each
   passing case is fingerprinted by the shape of its SeMPE execution
   (secure-branch count, drains, peak nesting, mispredicts, SPM traffic,
   dynamic length — log-bucketed). The first case to exhibit a new
   fingerprint gets mutated, steering generation towards the protocol
   corners (deep nesting, heavy SPM traffic) a uniform grammar reaches
   rarely. *)

module Pool = Sempe_util.Pool
module Rng = Sempe_util.Rng
module Json = Sempe_obs.Json
module Scheme = Sempe_core.Scheme
module Run = Sempe_core.Run
module Exec = Sempe_core.Exec
module Timing = Sempe_pipeline.Timing
module Harness = Sempe_workloads.Harness

type config = {
  seed : int;
  count : int;
  budget_s : float option;
  oracles : Oracle.t list;
  workers : int;
  ctx : Oracle.ctx;
  gen_cfg : Gen.cfg;
  corpus_dir : string option;
  minimize : bool;
  max_failures : int;
}

let default_config =
  {
    seed = 1;
    count = 100;
    budget_s = None;
    oracles = Oracle.all;
    workers = 1;
    ctx = Oracle.default_ctx;
    gen_cfg = Gen.default_cfg;
    corpus_dir = None;
    minimize = true;
    max_failures = 5;
  }

type origin = Generated | Mutant | Replayed of string

let origin_name = function
  | Generated -> "generated"
  | Mutant -> "mutant"
  | Replayed file -> "replay:" ^ file

type attribution = {
  a_comparison : string;  (** which runs were diffed (see [Oracle.attribute]) *)
  a_text : string;  (** rendered attribution report *)
  a_json : Json.t;
}

type failure = {
  f_seed : int;
  f_origin : origin;
  f_oracle : string;
  f_message : string;
  f_size : int;  (** statements before minimization *)
  f_min_size : int;  (** statements after minimization *)
  f_min_instrs : int;  (** static SeMPE instructions of the reproducer *)
  f_source : string;  (** minimized program, concrete syntax *)
  f_trials : int;  (** oracle invocations the minimizer spent *)
  f_repro : string option;  (** corpus path, when persisted *)
  f_attribution : attribution option;
      (** leakage localization of the minimized reproducer: the divergent
          PC and hardware structure (state/trace oracles only) *)
}

type outcome = {
  executed : int;
  generated : int;
  mutants : int;
  replayed : int;
  features : int;
  failures : failure list;
  wall_s : float;
}

(* ---- per-case job (runs on pool workers; pure) -------------------------- *)

let ilog2 n =
  if n <= 0 then 0
  else begin
    let r = ref 0 and v = ref n in
    while !v > 1 do
      incr r;
      v := !v lsr 1
    done;
    !r + 1
  end

(* Microarchitectural fingerprint of a (passing) case under the SeMPE
   scheme; [None] when the case cannot even be simulated — the oracles
   will have reported that as a failure. *)
let fingerprint (ctx : Oracle.ctx) (case : Gen.case) =
  try
    let built = Harness.build Scheme.Sempe case.Gen.prog in
    let outcome =
      Harness.run ~fault:ctx.Oracle.fault ~mem_words:ctx.Oracle.mem_words
        ~globals:(List.hd case.Gen.secrets)
        ~arrays:[ (Gen.array_name, case.Gen.fill) ]
        built
    in
    let r = outcome.Run.timing in
    Some
      ( ilog2 r.Timing.secure_branches,
        ilog2 r.Timing.drains,
        outcome.Run.exec.Exec.max_nesting,
        ilog2 r.Timing.mispredicts,
        ilog2 r.Timing.spm_cycles,
        ilog2 r.Timing.instructions )
  with _ -> None

let evaluate config case =
  let violation = Oracle.run_all config.oracles config.ctx case in
  let fp = if violation = None then fingerprint config.ctx case else None in
  (violation, fp)

(* ---- failure handling (driver domain; sequential) ----------------------- *)

let still_same_oracle config oracle case =
  match Oracle.find oracle with
  | None -> false
  | Some o -> (
    match Oracle.run_all [ o ] config.ctx case with
    | Some (name, _) -> name = oracle
    | None -> false)

let record_failure config ~origin case (oracle, message) =
  let minimized, stats =
    if config.minimize then
      Minimize.minimize ~still:(still_same_oracle config oracle) case
    else (case, { Minimize.trials = 0; accepted = 0 })
  in
  let repro =
    match (config.corpus_dir, origin) with
    | Some dir, (Generated | Mutant) ->
      Some (Corpus.save ~dir { Corpus.case = minimized; oracle; message })
    | _ -> None
  in
  (* Leakage localization of the reproducer. Only the differential
     oracles benefit (a timing-invariant or sampling failure is not a
     leak), and an exception here must not mask the failure itself. *)
  let attribution =
    match oracle with
    | "state" | "trace" -> (
      match (try Oracle.attribute config.ctx minimized with _ -> None) with
      | None -> None
      | Some (attr, prog, comparison) ->
        Some
          {
            a_comparison = comparison;
            a_text =
              Sempe_security.Attribution.render ~program:prog attr;
            a_json = Sempe_security.Attribution.to_json ~program:prog attr;
          })
    | _ -> None
  in
  {
    f_seed = case.Gen.seed;
    f_origin = origin;
    f_oracle = oracle;
    f_message = message;
    f_size = Gen.size case;
    f_min_size = Gen.size minimized;
    f_min_instrs =
      (try Gen.static_instrs minimized with _ -> -1);
    f_source = Gen.to_source minimized;
    f_trials = stats.Minimize.trials;
    f_repro = repro;
    f_attribution = attribution;
  }

(* ---- driver -------------------------------------------------------------- *)

let round_size = 32

let run config =
  if config.count < 0 then invalid_arg "Fuzz.run: count must be non-negative";
  if config.oracles = [] then invalid_arg "Fuzz.run: no oracles selected";
  let t0 = Pool.now_s () in
  let pool = Pool.create ~workers:config.workers () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let failures = ref [] in
  let n_failures () = List.length !failures in
  (* 1. replay the corpus: known reproducers run before anything new *)
  let corpus_entries =
    match config.corpus_dir with
    | None -> []
    | Some dir -> Corpus.load_dir dir
  in
  let replay_results =
    Pool.map pool
      (fun (_, e) -> Oracle.run_all config.oracles config.ctx e.Corpus.case)
      corpus_entries
  in
  List.iter2
    (fun (file, e) result ->
      match result with
      | None -> ()
      | Some violation ->
        failures :=
          record_failure config ~origin:(Replayed file) e.Corpus.case violation
          :: !failures)
    corpus_entries replay_results;
  (* 2. generation rounds with mutation feedback *)
  let seen = Hashtbl.create 64 in
  let pending = Queue.create () in
  let executed = ref 0 and generated = ref 0 and mutants = ref 0 in
  let next_fresh = ref 0 in
  let over_budget () =
    match config.budget_s with
    | None -> false
    | Some b -> Pool.now_s () -. t0 >= b
  in
  while
    !executed < config.count
    && n_failures () < config.max_failures
    && not (over_budget ())
  do
    let n = min round_size (config.count - !executed) in
    let cases =
      List.init n (fun _ ->
          match Queue.take_opt pending with
          | Some mutant ->
            incr mutants;
            (Mutant, mutant)
          | None ->
            let seed = Rng.mix config.seed !next_fresh in
            incr next_fresh;
            incr generated;
            (Generated, Gen.generate ~cfg:config.gen_cfg seed))
    in
    let results =
      Pool.map pool (fun (_, case) -> evaluate config case) cases
    in
    List.iter2
      (fun (origin, case) (violation, fp) ->
        match violation with
        | Some v ->
          if n_failures () < config.max_failures then
            failures := record_failure config ~origin case v :: !failures
        | None -> (
          match fp with
          | Some fp when not (Hashtbl.mem seen fp) ->
            Hashtbl.replace seen fp ();
            (* a new execution shape: explore its neighborhood *)
            let mrng = Rng.create (Rng.mix config.seed (case.Gen.seed lxor 0x5eed)) in
            for _ = 1 to 2 do
              Queue.add (Gen.mutate ~cfg:config.gen_cfg mrng case) pending
            done
          | _ -> ()))
      cases results;
    executed := !executed + n
  done;
  {
    executed = !executed;
    generated = !generated;
    mutants = !mutants;
    replayed = List.length corpus_entries;
    features = Hashtbl.length seen;
    failures = List.rev !failures;
    wall_s = Pool.now_s () -. t0;
  }

(* ---- rendering ----------------------------------------------------------- *)

let failure_to_json f =
  Json.Obj
    [
      ("seed", Json.Int f.f_seed);
      ("origin", Json.Str (origin_name f.f_origin));
      ("oracle", Json.Str f.f_oracle);
      ("message", Json.Str f.f_message);
      ("size", Json.Int f.f_size);
      ("min_size", Json.Int f.f_min_size);
      ("min_instrs", Json.Int f.f_min_instrs);
      ("minimizer_trials", Json.Int f.f_trials);
      ("source", Json.Str f.f_source);
      ( "repro",
        match f.f_repro with None -> Json.Null | Some p -> Json.Str p );
      ( "attribution",
        match f.f_attribution with
        | None -> Json.Null
        | Some a ->
          Json.Obj
            [
              ("comparison", Json.Str a.a_comparison);
              ("report", a.a_json);
            ] );
    ]

(* [wall_s] is deliberately not part of the JSON document: `sempe-sim
   fuzz --json` must be byte-identical across worker counts and runs. *)
let to_json o =
  Json.Obj
    [
      ("executed", Json.Int o.executed);
      ("generated", Json.Int o.generated);
      ("mutants", Json.Int o.mutants);
      ("replayed", Json.Int o.replayed);
      ("features", Json.Int o.features);
      ("failures", Json.List (List.map failure_to_json o.failures));
    ]
