(** Differential and invariant oracles the fuzzer checks every generated
    case against. Each oracle is independent; the driver runs the selected
    subset and reports the first failure per case.

    - [state]: the reference interpreter, the legacy build, the SeMPE
      build and the SeMPE-on-legacy build must agree on the return value,
      every scalar global and the array contents, for every secret
      assignment (end-to-end differential correctness of the compiler,
      the ShadowMemory pass and the multi-path protocol);
    - [trace]: runs of the SeMPE build under different secrets must be
      indistinguishable on {e all} attacker channels of
      {!Sempe_security.Leakage} (timing, committed-PC trace, address
      trace, cache and predictor state, instruction count);
    - [timing]: every detailed report must satisfy the structural
      invariants of {!Sempe_pipeline.Timing.check_report} — the stall
      stack sums exactly to the cycle count, rates are consistent with
      their numerators/denominators, nothing is negative;
    - [sampling]: the sampled estimator at 100% coverage must reproduce
      the full detailed run bit-for-bit (same cycles, same report);
    - [checkpoint]: saving a mid-run checkpoint, restoring it and saving
      again must be byte-identical, and both the original session and the
      restored copy must finish in the same architectural state as an
      uncheckpointed run. *)

type ctx = {
  fault : Sempe_core.Exec.fault;
      (** injected protocol bug, for fuzzer self-tests ([No_fault] when
          hunting real bugs) *)
  mem_words : int;  (** simulated memory size for every run *)
}

val default_ctx : ctx
(** [No_fault], 16k words. *)

type verdict = Pass | Fail of string
(** [Fail] carries a human-readable account of the violated property. *)

type t = {
  name : string;  (** stable identifier, used by [--oracle] *)
  describe : string;
  check : ctx -> Gen.case -> verdict;
}

val all : t list

val names : string list
(** In the order of {!all}. *)

val find : string -> t option

val run_all : t list -> ctx -> Gen.case -> (string * string) option
(** First failure as [(oracle name, message)], checking in list order;
    an exception escaping an oracle is reported as a failure of that
    oracle. [None] when every oracle passes. *)

val attribute :
  ctx ->
  Gen.case ->
  (Sempe_security.Attribution.t * Sempe_isa.Program.t * string) option
(** Leakage attribution of a (typically minimized) failing case: diff the
    SeMPE build's witness streams across the case's secrets; when those
    are indistinguishable but a fault is injected, diff the faulted build
    against the clean one under a single secret instead. Returns the
    attribution, the program whose pcs it refers to (the reference run's
    build), and a label saying which comparison was made; [None] when
    every comparison is clean. *)
