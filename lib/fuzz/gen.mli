(** Weighted-grammar random program generator for the differential fuzzer.

    Produces closed workload-language programs over a fixed vocabulary —
    scalar data variables, loop-index variables, scalar globals, two
    declared secrets, and one 16-word array — with generation biased
    towards the constructs the SeMPE protocol has to get right:

    - {e nested} secure branches (secret [If]s inside secret arms, up to
      [max_secret_nest] — each level stacks another jbTable entry and SPM
      snapshot, and the inner region's eosJMPs fire during the outer
      region's paths);
    - memory traffic under secure branches: array stores and global-scalar
      writes inside secret arms, which ShadowMemory must privatize;
    - loads and stores at the array's region bounds (index 0, index
      [size-1], and masked dynamic indexes that sweep across both);
    - loop-carried dependences ([x = x op e] inside [For] bodies), so the
      store-to-load forwarding and dataflow paths of the timing model see
      non-trivial chains.

    Everything is driven by {!Sempe_util.Rng}, so a [seed] fully
    determines the case — across processes, worker counts and replays.

    Generated programs terminate by construction (loop bounds are
    constants, loop nests never share an induction variable, there is no
    [While] and no recursion) and stay in bounds (indexes are masked or
    boundary constants), so the reference interpreter accepts them. *)

type cfg = {
  max_depth : int;  (** statement-nesting depth of the grammar *)
  max_secret_nest : int;
      (** deepest chain of secret [If]s inside secret arms (1 = no
          nesting); keep well under the SPM's snapshot budget *)
  secret_stores : bool;
      (** allow array stores / global writes inside secret arms (exercises
          ShadowMemory privatization); [false] restricts secret arms to
          local-scalar assignments *)
  max_block : int;  (** statements per block, 1 .. [max_block] *)
  max_dyn_instrs : int;
      (** dynamic-instruction budget for the case's SeMPE build under any
          of its secret assignments. SeMPE executes both paths of every
          secure branch, so cost under protection can dwarf the reference
          interpreter's; {!generate} retries on a derived seed and
          {!mutate} rejects the edit when a candidate would exceed this. *)
}

val default_cfg : cfg
(** depth 3, secret nesting 3, secret stores on, blocks of up to 3,
    200k-instruction dynamic budget. *)

type case = {
  seed : int;  (** the seed that produced (or will reproduce) this case *)
  prog : Sempe_lang.Ast.program;
  fill : int array;  (** initial contents of the array *)
  secrets : (string * int) list list;
      (** secret assignments the oracles run the case under; at least
          two, so every pairwise comparison is meaningful *)
}

val array_name : string
val array_size : int
val globals : string list
val secret_vars : string list

val generate : ?cfg:cfg -> int -> case
(** [generate seed] builds a fresh case; the result passes
    {!Sempe_lang.Ast.validate}. *)

val mutate : ?cfg:cfg -> Sempe_util.Rng.t -> case -> case
(** Small random edits of an existing case — tweak an integer literal,
    duplicate or delete a statement, wrap a statement in a fresh secret
    branch, perturb the array fill — used by the coverage feedback loop to
    explore the neighborhood of cases that reached new features. Falls
    back to the unmodified case when an edit would invalidate the
    program. *)

val size : case -> int
(** Number of statements in [main], counting nested blocks — the size the
    minimizer drives down and the reproducer reports. *)

(** {2 Structural editing}

    Shared by {!mutate} and the minimizer: pre-order addressing of the
    statements and integer literals of a block. *)

val body_stmts : case -> Sempe_lang.Ast.block
(** [main]'s body without the trailing [Return]. *)

val return_expr : case -> Sempe_lang.Ast.expr
(** The expression [main] returns (the observability checksum, unless the
    minimizer has already shrunk it). *)

val replace_body : case -> Sempe_lang.Ast.block -> case option
(** Re-attach an edited body (the case's return is re-appended). [None]
    when the result fails {!Sempe_lang.Ast.validate} or faults the
    reference interpreter on any of the case's secret assignments. *)

val with_return : case -> Sempe_lang.Ast.expr -> case option
(** Replace the returned expression, under the same validity conditions
    as {!replace_body} — the minimizer uses this to shrink the checksum
    down to the one atom that witnesses a failure. *)

val stmt_count : Sempe_lang.Ast.block -> int
(** Statements in the block, counting nested blocks (pre-order). *)

val edit_stmt :
  Sempe_lang.Ast.block ->
  at:int ->
  (Sempe_lang.Ast.stmt -> Sempe_lang.Ast.stmt list) ->
  Sempe_lang.Ast.block
(** Replace the [at]-th statement (pre-order) by the returned list —
    [[]] deletes it, the nested blocks of an [If]/[For] splice it open. *)

val int_count : Sempe_lang.Ast.block -> int
(** Integer literals in the block (pre-order). *)

val edit_int :
  Sempe_lang.Ast.block -> at:int -> (int -> int) -> Sempe_lang.Ast.block
(** Rewrite the [at]-th integer literal (pre-order). *)

val static_instrs : case -> int
(** Static length of the program compiled under the SeMPE scheme. *)

val to_source : case -> string
(** [main]'s program rendered in the concrete syntax
    ({!Sempe_lang.Parser.program} parses it back). *)
