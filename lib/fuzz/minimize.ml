(* Greedy delta debugging of a failing fuzz case. Four reduction passes
   run to a joint fixpoint; every candidate is accepted only when the
   caller's [still] predicate confirms the reduced case still fails the
   same way, so the result is the smallest case this greedy walk can
   reach, not merely a smaller one that fails differently.

   Each accepted edit strictly decreases a well-founded measure
   (statement count, return-expression size, or the summed magnitude of
   integer literals), so the fixpoint loop terminates; [max_trials]
   additionally bounds the number of oracle invocations, since [still]
   typically re-runs a whole battery of simulations. *)

open Sempe_lang.Ast

type stats = { trials : int; accepted : int }

let minimize ?(max_trials = 4_000) ~still case =
  let trials = ref 0 and accepted = ref 0 in
  let budget_left () = !trials < max_trials in
  let confirms case' =
    budget_left ()
    && begin
      incr trials;
      still case'
    end
  in
  let cur = ref case in
  let accept c =
    incr accepted;
    cur := c
  in
  let try_body body' =
    match Gen.replace_body !cur body' with
    | Some c when confirms c ->
      accept c;
      true
    | _ -> false
  in
  let stmt_at body at =
    let r = ref None in
    ignore
      (Gen.edit_stmt body ~at (fun s ->
           r := Some s;
           [ s ])
        : block);
    !r
  in
  let int_at body at =
    let r = ref None in
    ignore
      (Gen.edit_int body ~at (fun x ->
           r := Some x;
           x)
        : block);
    !r
  in
  let changed = ref true in
  while !changed && budget_left () do
    changed := false;
    (* 1. drop statements; rescan the same index after a hit, because the
       statements shift down *)
    let rec drop at =
      let body = Gen.body_stmts !cur in
      if at < Gen.stmt_count body && budget_left () then
        if try_body (Gen.edit_stmt body ~at (fun _ -> [])) then begin
          changed := true;
          drop at
        end
        else drop (at + 1)
    in
    drop 0;
    (* 2. un-nest: splice a branch open into one of its arms (losing the
       branch itself — the cheapest way to peel secret nesting), or a
       loop into a single copy of its body *)
    let rec unnest at =
      let body = Gen.body_stmts !cur in
      if at < Gen.stmt_count body && budget_left () then begin
        let arms =
          match stmt_at body at with
          | Some (If { then_; else_; _ }) -> [ then_; else_ ]
          | Some (For (_, _, _, b)) | Some (While (_, b)) -> [ b ]
          | _ -> []
        in
        let hit =
          List.exists
            (fun arm -> try_body (Gen.edit_stmt body ~at (fun _ -> arm)))
            arms
        in
        if hit then begin
          changed := true;
          unnest at
        end
        else unnest (at + 1)
      end
    in
    unnest 0;
    (* 3. shrink the returned checksum towards the single atom that still
       witnesses the failure *)
    let rec shrink_ret () =
      if budget_left () then begin
        let parts =
          match Gen.return_expr !cur with
          | Binop (_, a, b) -> [ a; b ]
          | Unop (_, a) -> [ a ]
          | Select (c, a, b) -> [ a; b; c ]
          | _ -> []
        in
        let hit =
          List.exists
            (fun e ->
              match Gen.with_return !cur e with
              | Some c when confirms c ->
                accept c;
                true
              | _ -> false)
            parts
        in
        if hit then begin
          changed := true;
          shrink_ret ()
        end
      end
    in
    shrink_ret ();
    (* 4. pull integer literals towards zero (0 first, then halving) *)
    let rec ints at =
      let body = Gen.body_stmts !cur in
      if at < Gen.int_count body && budget_left () then begin
        let x = Option.value ~default:0 (int_at body at) in
        let candidates =
          if x = 0 then [] else if x = 1 || x = -1 then [ 0 ] else [ 0; x / 2 ]
        in
        let hit =
          List.exists
            (fun value -> try_body (Gen.edit_int body ~at (fun _ -> value)))
            candidates
        in
        if hit then begin
          changed := true;
          ints at
        end
        else ints (at + 1)
      end
    in
    ints 0
  done;
  (!cur, { trials = !trials; accepted = !accepted })
