open Sempe_lang.Ast
module Rng = Sempe_util.Rng
module Eval = Sempe_lang.Eval

type cfg = {
  max_depth : int;
  max_secret_nest : int;
  secret_stores : bool;
  max_block : int;
  max_dyn_instrs : int;
}

let default_cfg =
  {
    max_depth = 3;
    max_secret_nest = 3;
    secret_stores = true;
    max_block = 3;
    max_dyn_instrs = 200_000;
  }

type case = {
  seed : int;
  prog : program;
  fill : int array;
  secrets : (string * int) list list;
}

let data_vars = [ "x0"; "x1"; "x2"; "x3" ]
let index_vars = [ "i0"; "i1"; "i2" ]
let globals = [ "g0"; "g1" ]
let secret_vars = [ "s0"; "s1" ]
let array_name = "arr"
let array_size = 16

let pick rng xs = List.nth xs (Rng.int rng (List.length xs))

(* Weighted choice: [(weight, thunk); ...] -> run one thunk. *)
let weighted rng choices =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 choices in
  let n = Rng.int rng total in
  let rec go acc = function
    | [] -> assert false
    | (w, f) :: rest -> if n < acc + w then f () else go (acc + w) rest
  in
  go 0 choices

(* ---- expressions ------------------------------------------------------- *)

let binops =
  [ Add; Sub; Mul; Div; Rem; Band; Bor; Bxor; Lt; Le; Gt; Ge; Eq; Ne; Land; Lor ]

(* Region-bound-aware index expressions: the boundary constants 0 and
   [size-1] hit the first and last word of the array's memory region, the
   masked forms sweep dynamically across both edges. Always in bounds, so
   the reference interpreter never faults. *)
let gen_index rng =
  weighted rng
    [
      (1, fun () -> Int 0);
      (1, fun () -> Int (array_size - 1));
      ( 3,
        fun () ->
          Binop (Band, Var (pick rng index_vars), Int (array_size - 1)) );
      ( 2,
        fun () ->
          Binop
            ( Band,
              Binop (Add, Var (pick rng index_vars), Int (Rng.int_in rng 0 31)),
              Int (array_size - 1) ) );
      (1, fun () -> Binop (Band, Int (Rng.int_in rng 0 100), Int (array_size - 1)));
    ]

let gen_leaf rng ~secret_ok =
  let vars =
    data_vars @ index_vars @ globals @ if secret_ok then secret_vars else []
  in
  weighted rng
    [
      (2, fun () -> Int (Rng.int_in rng (-50) 50));
      (3, fun () -> Var (pick rng vars));
    ]

let rec gen_expr rng ~secret_ok depth =
  if depth = 0 then gen_leaf rng ~secret_ok
  else
    weighted rng
      [
        (3, fun () -> gen_leaf rng ~secret_ok);
        ( 4,
          fun () ->
            let op = pick rng binops in
            let a = gen_expr rng ~secret_ok (depth - 1) in
            let b = gen_expr rng ~secret_ok (depth - 1) in
            Binop (op, a, b) );
        (1, fun () -> Unop (Neg, gen_expr rng ~secret_ok (depth - 1)));
        (1, fun () -> Unop (Lnot, gen_expr rng ~secret_ok (depth - 1)));
        (2, fun () -> Index (array_name, gen_index rng));
        ( 1,
          fun () ->
            let c = gen_expr rng ~secret_ok (depth - 1) in
            let a = gen_expr rng ~secret_ok (depth - 1) in
            let b = gen_expr rng ~secret_ok (depth - 1) in
            Select (c, a, b) );
      ]

(* Public branch / loop conditions may only read untainted material (index
   variables and constants): anything else would be an unmarked branch on
   secret-derived data, which no scheme protects. *)
let gen_public_cond rng =
  let leaf () =
    weighted rng
      [
        (1, fun () -> Int (Rng.int_in rng (-20) 20));
        (2, fun () -> Var (pick rng index_vars));
      ]
  in
  let op = pick rng [ Lt; Le; Gt; Ge; Eq; Ne; Add; Bxor ] in
  Binop (op, leaf (), leaf ())

(* Secret branch conditions: a comparison with at least one secret
   operand, in several shapes so the hoisted-condition path of the
   ShadowMemory pass and the sJMP outcome evaluation see variety. *)
let gen_secret_cond rng =
  let s () = Var (pick rng secret_vars) in
  weighted rng
    [
      (3, fun () -> Binop (Ne, s (), Int 0));
      (2, fun () -> Binop (pick rng [ Lt; Le; Gt; Ge; Eq; Ne ], s (), s ()));
      ( 2,
        fun () ->
          Binop
            ( pick rng [ Lt; Gt; Eq; Ne ],
              s (),
              Int (Rng.int_in rng (-2) 2) ) );
      (1, fun () -> Binop (Ne, Binop (Band, s (), Int 1), Int 0));
      (1, fun () -> Binop (Ne, Binop (Bxor, s (), s ()), Int 0));
    ]

(* ---- statements --------------------------------------------------------

   [secret_nest] counts enclosing secret branches (0 = public context);
   within a secret arm, writes are restricted to what ShadowMemory
   privatizes: local scalars always, plus globals / array stores when
   [cfg.secret_stores]. [idx_pool] holds the loop-index variables not used
   by an enclosing loop, so nests never share an induction variable. *)
let rec gen_stmt cfg rng ~secret_nest ~idx_pool ~depth =
  let in_secret = secret_nest > 0 in
  let assign_data () =
    Assign (pick rng data_vars, gen_expr rng ~secret_ok:true 2)
  in
  (* loop-carried dependence: x = x op e *)
  let accumulate () =
    let v_ = pick rng data_vars in
    Assign
      ( v_,
        Binop
          (pick rng [ Add; Sub; Bxor; Bor ], Var v_, gen_expr rng ~secret_ok:false 1)
      )
  in
  let store_ok = (not in_secret) || cfg.secret_stores in
  let base =
    [ (4, assign_data); (2, accumulate) ]
    @ (if store_ok then
         [
           ( 2,
             fun () ->
               Assign (pick rng globals, gen_expr rng ~secret_ok:false 2) );
           ( 2,
             fun () ->
               Store (array_name, gen_index rng, gen_expr rng ~secret_ok:false 2)
           );
         ]
       else [])
  in
  if depth = 0 then weighted rng base
  else
    let nested =
      [
        ( 2,
          fun () ->
            let cond = gen_public_cond rng in
            let then_ =
              gen_block cfg rng ~secret_nest ~idx_pool ~depth:(depth - 1)
            in
            let else_ =
              gen_block cfg rng ~secret_nest ~idx_pool ~depth:(depth - 1)
            in
            If { secret = false; cond; then_; else_ } );
      ]
      @ (match idx_pool with
         | [] -> []
         | x :: rest when not in_secret ->
           [
             ( 2,
               fun () ->
                 let hi = Rng.int_in rng 1 5 in
                 let body =
                   gen_block cfg rng ~secret_nest ~idx_pool:rest
                     ~depth:(depth - 1)
                 in
                 For (x, Int 0, Int hi, body) );
           ]
         | _ :: _ -> [])
      @
      if secret_nest >= cfg.max_secret_nest then []
      else
        [
          ( 3,
            fun () ->
              let cond = gen_secret_cond rng in
              let then_ =
                gen_block cfg rng ~secret_nest:(secret_nest + 1) ~idx_pool
                  ~depth:(depth - 1)
              in
              let else_ =
                gen_block cfg rng ~secret_nest:(secret_nest + 1) ~idx_pool
                  ~depth:(depth - 1)
              in
              If { secret = true; cond; then_; else_ } );
        ]
    in
    weighted rng (base @ nested)

and gen_block cfg rng ~secret_nest ~idx_pool ~depth =
  let n = Rng.int_in rng 1 cfg.max_block in
  List.init n (fun _ -> gen_stmt cfg rng ~secret_nest ~idx_pool ~depth)

let checksum =
  (* fold everything observable into the return value, including both
     region-boundary words of the array *)
  List.fold_left
    (fun acc e -> acc +: e)
    (v "x0")
    [
      v "x1"; v "x2"; v "x3"; v "g0"; v "g1";
      idx array_name (i 0);
      idx array_name (i 3);
      idx array_name (i (array_size - 1));
    ]

let assemble body fill secrets seed =
  let prog =
    {
      funcs =
        [
          {
            fname = "main";
            params = [];
            locals = data_vars @ index_vars;
            body = body @ [ ret checksum ];
          };
        ];
      globals = globals @ secret_vars;
      arrays = [ { aname = array_name; size = array_size; scratch = false } ];
      secrets = secret_vars;
      main = "main";
    }
  in
  validate prog;
  { seed; prog; fill; secrets }

let gen_secret_assignments rng =
  (* the four corners plus two random pairs: corners guarantee both
     outcomes of every [s <> 0]-style condition, the random pairs exercise
     magnitude-sensitive conditions (s0 < s1, s = -1, ...) *)
  let corners =
    [
      [ ("s0", 0); ("s1", 0) ];
      [ ("s0", 1); ("s1", 0) ];
      [ ("s0", 0); ("s1", 1) ];
      [ ("s0", 1); ("s1", 1) ];
    ]
  in
  let random () =
    [ ("s0", Rng.int_in rng (-9) 9); ("s1", Rng.int_in rng (-9) 9) ]
  in
  corners @ [ random (); random () ]

(* SeMPE executes BOTH paths of every secret branch, so a case's dynamic
   cost under protection can dwarf its reference-interpreter cost; bound
   it with a functional (timing-free) run of the SeMPE build under every
   secret assignment. Anything the protected build cannot finish within
   the budget — or that trips a capacity limit the grammar is supposed to
   stay under — is a generation artifact, not a finding. *)
let affordable cfg case =
  try
    let built = Sempe_workloads.Harness.build Sempe_core.Scheme.Sempe case.prog in
    List.for_all
      (fun secrets ->
        match
          Sempe_core.Run.execute
            ~support:
              (Sempe_core.Scheme.support built.Sempe_workloads.Harness.scheme)
            ~mem_words:(1 lsl 14) ~max_instrs:cfg.max_dyn_instrs
            ~init_mem:
              (Sempe_workloads.Harness.init_mem_of built ~globals:secrets
                 ~arrays:[ (array_name, case.fill) ])
            built.Sempe_workloads.Harness.prog
        with
        | (_ : Sempe_core.Exec.result) -> true
        | exception _ -> false)
      case.secrets
  with _ -> false

let generate ?(cfg = default_cfg) seed =
  let rec attempt k =
    let rng = Rng.create (if k = 0 then seed else Rng.mix seed k) in
    let body =
      gen_block cfg rng ~secret_nest:0 ~idx_pool:index_vars
        ~depth:cfg.max_depth
    in
    let fill = Array.init array_size (fun _ -> Rng.int_in rng (-30) 30) in
    let secrets = gen_secret_assignments rng in
    let case = assemble body fill secrets seed in
    if affordable cfg case then case else attempt (k + 1)
  in
  attempt 0

(* ---- sizes -------------------------------------------------------------- *)

let stmt_count blk =
  block_fold (fun acc _ -> acc + 1) 0 blk

let size case = stmt_count (find_func case.prog case.prog.main).body

let static_instrs case =
  let built = Sempe_workloads.Harness.build Sempe_core.Scheme.Sempe case.prog in
  Sempe_isa.Program.length built.Sempe_workloads.Harness.prog

let to_source case = Format.asprintf "%a" pp_program case.prog

(* ---- mutation ------------------------------------------------------------

   Structural edits used by the coverage feedback loop. Each edit targets
   one statement or literal picked by pre-order index; edits that would
   produce an invalid program are discarded (the unmodified case is
   returned). *)

let rec map_nth_stmt f k blk =
  (* replace the [!k]-th statement (pre-order) by [f stmt]; [k] counts
     down across the walk *)
  match blk with
  | [] -> []
  | s :: rest ->
    if !k = 0 then begin
      decr k;
      f s @ map_nth_stmt f k rest
    end
    else begin
      decr k;
      let s' =
        match s with
        | If ({ then_; else_; _ } as r) ->
          let then_ = map_nth_stmt f k then_ in
          let else_ = map_nth_stmt f k else_ in
          If { r with then_; else_ }
        | While (c, b) -> While (c, map_nth_stmt f k b)
        | For (v_, lo, hi, b) -> For (v_, lo, hi, map_nth_stmt f k b)
        | s -> s
      in
      s' :: map_nth_stmt f k rest
    end

let edit_stmt blk ~at f =
  let k = ref at in
  map_nth_stmt f k blk

let rec map_ints_expr f = function
  | Int n -> Int (f n)
  | Var _ as e -> e
  | Index (a, e) -> Index (a, map_ints_expr f e)
  | Unop (op, e) -> Unop (op, map_ints_expr f e)
  | Binop (op, a, b) -> Binop (op, map_ints_expr f a, map_ints_expr f b)
  | Call (g, args) -> Call (g, List.map (map_ints_expr f) args)
  | Select (c, a, b) ->
    Select (map_ints_expr f c, map_ints_expr f a, map_ints_expr f b)

(* visit the [at]-th Int literal (pre-order across the whole block) *)
let edit_int blk ~at f =
  let k = ref at in
  let g n =
    let hit = !k = 0 in
    decr k;
    if hit then f n else n
  in
  let rec stmt = function
    | Assign (v_, e) -> Assign (v_, map_ints_expr g e)
    | Store (a, ie, e) -> Store (a, map_ints_expr g ie, map_ints_expr g e)
    | If ({ cond; then_; else_; _ } as r) ->
      let cond = map_ints_expr g cond in
      If { r with cond; then_ = List.map stmt then_; else_ = List.map stmt else_ }
    | While (c, b) -> While (map_ints_expr g c, List.map stmt b)
    | For (v_, lo, hi, b) ->
      For (v_, map_ints_expr g lo, map_ints_expr g hi, List.map stmt b)
    | Expr e -> Expr (map_ints_expr g e)
    | Return e -> Return (map_ints_expr g e)
  in
  List.map stmt blk

let int_count blk =
  let n = ref 0 in
  ignore (edit_int blk ~at:(-1) (fun x -> incr n; x) : block);
  !n

(* Mutants must stay runnable: a perturbed literal can push an index out
   of bounds (the reference interpreter faults where the simulator's
   forgiving mode would clamp), and the differential oracles need the
   reference to have an answer. *)
let runs_clean case =
  List.for_all
    (fun secrets ->
      try
        let st = Eval.init case.prog in
        List.iter (fun (name, value) -> Eval.set_global st name value) secrets;
        Eval.set_array st array_name case.fill;
        ignore (Eval.run ~max_steps:500_000 st : int);
        true
      with Eval.Runtime_error _ | Eval.Step_limit -> false)
    case.secrets

let with_body case body =
  let funcs =
    List.map
      (fun f -> if f.fname = case.prog.main then { f with body } else f)
      case.prog.funcs
  in
  let prog = { case.prog with funcs } in
  validate prog;
  { case with prog }

let body_stmts case =
  let main = find_func case.prog case.prog.main in
  match List.rev main.body with
  | Return _ :: rev -> List.rev rev
  | _ -> main.body

let return_expr case =
  let main = find_func case.prog case.prog.main in
  match List.rev main.body with
  | Return e :: _ -> e
  | _ -> checksum

let replace_body case body =
  try
    let case' = with_body case (body @ [ ret (return_expr case) ]) in
    if runs_clean case' then Some case' else None
  with Invalid_argument _ -> None

let with_return case expr =
  try
    let case' = with_body case (body_stmts case @ [ ret expr ]) in
    if runs_clean case' then Some case' else None
  with Invalid_argument _ -> None

let mutate ?(cfg = default_cfg) rng case =
  let main = find_func case.prog case.prog.main in
  (* never touch the trailing return *)
  let body =
    match List.rev main.body with
    | Return _ :: rev -> List.rev rev
    | _ -> main.body
  in
  let n = stmt_count body in
  let attempt () =
    match Rng.int rng 5 with
    | 0 when int_count body > 0 ->
      (* perturb one literal *)
      let at = Rng.int rng (int_count body) in
      let delta = Rng.int_in rng (-3) 3 in
      Some (edit_int body ~at (fun x -> x + delta))
    | 1 when n > 1 ->
      (* delete one statement *)
      let at = Rng.int rng n in
      Some (edit_stmt body ~at (fun _ -> []))
    | 2 when n > 0 ->
      (* duplicate one statement *)
      let at = Rng.int rng n in
      Some (edit_stmt body ~at (fun s -> [ s; s ]))
    | 3 when n > 0 ->
      (* wrap one top-level statement in a fresh secret branch (loops stay
         out of secret arms, mirroring the generator's discipline) *)
      let at = Rng.int rng (List.length body) in
      Some
        (List.mapi
           (fun j s ->
             match s with
             | (For _ | While _) when j = at -> s
             | s when j = at ->
               If
                 {
                   secret = true;
                   cond = gen_secret_cond rng;
                   then_ = [ s ];
                   else_ = [];
                 }
             | s -> s)
           body)
    | _ ->
      (* append a fresh statement *)
      Some
        (body
        @ [ gen_stmt cfg rng ~secret_nest:0 ~idx_pool:index_vars ~depth:1 ])
  in
  let fill =
    if Rng.int rng 4 = 0 then
      Array.map (fun x -> x + Rng.int_in rng (-2) 2) case.fill
    else case.fill
  in
  match attempt () with
  | None -> { case with fill }
  | Some body' -> (
    try
      let mutant =
        with_body { case with fill } (body' @ [ ret (return_expr case) ])
      in
      if runs_clean mutant && affordable cfg mutant then mutant
      else { case with fill }
    with Invalid_argument _ -> { case with fill })
