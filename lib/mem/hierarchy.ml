open Sempe_util

type config = {
  il1 : Cache.config;
  dl1 : Cache.config;
  l2 : Cache.config;
  lat_l1 : int;
  lat_l2 : int;
  lat_mem : int;
}

let default_config =
  {
    il1 = { Cache.name = "il1"; size_bytes = 16 * 1024; line_bytes = 64; ways = 2 };
    dl1 = { Cache.name = "dl1"; size_bytes = 32 * 1024; line_bytes = 64; ways = 2 };
    l2 = { Cache.name = "l2"; size_bytes = 256 * 1024; line_bytes = 64; ways = 2 };
    lat_l1 = 3;
    lat_l2 = 12;
    lat_mem = 180;
  }

type t = {
  cfg : config;
  il1 : Cache.t;
  dl1 : Cache.t;
  l2 : Cache.t;
  stride : Prefetch.Stride.t;
  stream : Prefetch.Stream.t;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    il1 = Cache.create config.il1;
    dl1 = Cache.create config.dl1;
    l2 = Cache.create config.l2;
    stride = Prefetch.Stride.create ();
    stream = Prefetch.Stream.create ~line_bytes:config.l2.Cache.line_bytes ();
  }

let config_of t = t.cfg

(* An L2 access that misses consults the stream prefetcher and installs its
   candidates into the L2 only (next-level prefetching). *)
let l2_access t ~addr ~write =
  match Cache.access t.l2 ~addr ~write with
  | Cache.Hit -> t.cfg.lat_l2
  | Cache.Miss ->
    let n = Prefetch.Stream.observe_miss t.stream ~addr in
    for i = 0 to n - 1 do
      ignore (Cache.prefetch_fill t.l2 ~addr:(Prefetch.Stream.candidate t.stream i))
    done;
    t.cfg.lat_mem

let inst_fetch t ~addr =
  match Cache.access t.il1 ~addr ~write:false with
  | Cache.Hit -> t.cfg.lat_l1
  | Cache.Miss -> t.cfg.lat_l1 + l2_access t ~addr ~write:false

let data_access t ~pc ~addr ~write =
  let latency =
    match Cache.access t.dl1 ~addr ~write with
    | Cache.Hit -> t.cfg.lat_l1
    | Cache.Miss -> t.cfg.lat_l1 + l2_access t ~addr ~write
  in
  (* Stride prefetches fill the DL1 (and the L2 on the way, as a real
     hierarchy would). This runs once per load/store in both execution
     modes. *)
  let n = Prefetch.Stride.observe t.stride ~pc ~addr in
  for i = 0 to n - 1 do
    let a = Prefetch.Stride.candidate t.stride i in
    if Cache.prefetch_fill t.dl1 ~addr:a then
      ignore (Cache.prefetch_fill t.l2 ~addr:a)
  done;
  latency

let il1 t = t.il1
let dl1 t = t.dl1
let l2 t = t.l2

let flush t =
  Cache.flush t.il1;
  Cache.flush t.dl1;
  Cache.flush t.l2;
  Prefetch.Stride.reset t.stride;
  Prefetch.Stream.reset t.stream

let reset_stats t =
  Stats.reset_group (Cache.stats t.il1);
  Stats.reset_group (Cache.stats t.dl1);
  Stats.reset_group (Cache.stats t.l2)

let miss_rates t = (Cache.miss_rate t.il1, Cache.miss_rate t.dl1, Cache.miss_rate t.l2)

let signature t =
  (Cache.signature t.il1 * 31) + (Cache.signature t.dl1 * 17) + Cache.signature t.l2
