(** Hardware prefetchers of the baseline model (Table II): a per-PC stride
    prefetcher in front of the L1 data cache and a miss-stream prefetcher in
    front of the L2. Each writes its line-aligned candidate byte addresses
    into an internal buffer and returns the count, so the once-per-access
    hot path allocates nothing. *)

module Stride : sig
  type t

  val create : ?entries:int -> ?degree:int -> unit -> t
  (** [entries] stride-table entries (default 64), [degree] lines prefetched
      per confident access (default 1). *)

  val observe : t -> pc:int -> addr:int -> int
  (** [observe t ~pc ~addr] trains the table on a demand access by the load
      or store at [pc] to byte address [addr] and returns the number of
      prefetch candidates written to the buffer (0 until the stride is
      confident and non-zero; read them back with [candidate]). *)

  val candidate : t -> int -> int
  (** [candidate t i] is the [i]th candidate of the last [observe] that
      returned a count > [i]. *)

  val reset : t -> unit
end

module Stream : sig
  type t

  val create : ?streams:int -> ?degree:int -> ?line_bytes:int -> unit -> t
  (** [streams] concurrent streams tracked (default 8), [degree] lines
      prefetched ahead (default 2). *)

  val observe_miss : t -> addr:int -> int
  (** Train on an L2 miss; returns the number of next-line prefetch
      candidates written to the buffer when the miss extends a detected
      ascending stream (read them back with [candidate]). *)

  val candidate : t -> int -> int

  val reset : t -> unit
end
