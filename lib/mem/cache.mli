(** Generic set-associative cache with true-LRU replacement.

    Models presence only (which lines are resident), not data contents: the
    functional interpreter holds the actual memory values, the cache decides
    hit or miss for the timing model and exposes its set contents for the
    prime+probe attacker. *)

type config = {
  name : string;
  size_bytes : int;
  line_bytes : int;
  ways : int;
}

type t

type outcome = Hit | Miss

val create : config -> t

val config : t -> config
val num_sets : t -> int

val access : t -> addr:int -> write:bool -> outcome
(** Demand access to the byte address [addr]: updates LRU, fills on miss,
    records statistics. *)

val prefetch_fill : t -> addr:int -> bool
(** Install the line for [addr] without counting a demand access. Returns
    [true] if the line was newly installed (i.e. it was absent). Prefetch
    fills are counted separately in the statistics. *)

val probe : t -> addr:int -> bool
(** Non-destructive presence check (no LRU update, no statistics). *)

val set_index : t -> addr:int -> int
val resident_tags : t -> int -> int list
(** [resident_tags t set] lists valid tags in [set], MRU first. Used by the
    prime+probe attacker to read out eviction patterns. *)

val flush : t -> unit
(** Invalidate all lines; statistics are kept. *)

val stats : t -> Sempe_util.Stats.group
(** Counters: [accesses], [misses], [writes], [prefetch_fills],
    [evictions]. *)

val miss_rate : t -> float

val signature : t -> int
(** Order-dependent hash of the resident tags {e and} their per-set LRU
    recency ranking (an attacker-visible summary of cache state). Two
    caches holding the same lines in a different replacement order hash
    differently, so warm-state fidelity checks catch recency drift. *)
