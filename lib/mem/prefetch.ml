module Stride = struct
  type entry = {
    mutable tag : int;
    mutable last_addr : int;
    mutable stride : int;
    mutable confidence : int;
  }

  type t = { table : entry array; degree : int; buf : int array }

  let create ?(entries = 64) ?(degree = 1) () =
    assert (entries land (entries - 1) = 0);
    {
      table =
        Array.init entries (fun _ ->
            { tag = -1; last_addr = 0; stride = 0; confidence = 0 });
      degree;
      buf = Array.make degree 0;
    }

  let candidate t i = t.buf.(i)

  (* Returns the number of candidates written into the internal buffer
     (read back with [candidate]) instead of consing a list: this runs
     once per load/store in both execution modes. *)
  let observe t ~pc ~addr =
    let e = t.table.(pc land (Array.length t.table - 1)) in
    if e.tag <> pc then begin
      e.tag <- pc;
      e.last_addr <- addr;
      e.stride <- 0;
      e.confidence <- 0;
      0
    end
    else begin
      let stride = addr - e.last_addr in
      if stride = e.stride && stride <> 0 then begin
        if e.confidence < 3 then e.confidence <- e.confidence + 1
      end
      else begin
        e.stride <- stride;
        e.confidence <- 0
      end;
      e.last_addr <- addr;
      if e.confidence >= 2 && e.stride <> 0 then begin
        for i = 0 to t.degree - 1 do
          Array.unsafe_set t.buf i (addr + (e.stride * (i + 1)))
        done;
        t.degree
      end
      else 0
    end

  let reset t =
    Array.iter
      (fun e ->
        e.tag <- -1;
        e.last_addr <- 0;
        e.stride <- 0;
        e.confidence <- 0)
      t.table
end

module Stream = struct
  type stream = { mutable last_line : int; mutable length : int; mutable lru : int }

  type t = {
    streams : stream array;
    degree : int;
    line_bytes : int;
    buf : int array;
    mutable clock : int;
  }

  let create ?(streams = 8) ?(degree = 2) ?(line_bytes = 64) () =
    {
      streams = Array.init streams (fun _ -> { last_line = -1; length = 0; lru = 0 });
      degree;
      line_bytes;
      buf = Array.make degree 0;
      clock = 0;
    }

  let candidate t i = t.buf.(i)

  let observe_miss t ~addr =
    let line = addr / t.line_bytes in
    t.clock <- t.clock + 1;
    let rec find i =
      if i >= Array.length t.streams then None
      else
        let s = t.streams.(i) in
        if s.last_line >= 0 && line - s.last_line >= 0 && line - s.last_line <= 2
        then Some s
        else find (i + 1)
    in
    match find 0 with
    | Some s ->
      s.last_line <- line;
      s.length <- s.length + 1;
      s.lru <- t.clock;
      if s.length >= 2 then begin
        for i = 0 to t.degree - 1 do
          Array.unsafe_set t.buf i ((line + i + 1) * t.line_bytes)
        done;
        t.degree
      end
      else 0
    | None ->
      let victim =
        Array.fold_left
          (fun best s -> if s.lru < best.lru then s else best)
          t.streams.(0) t.streams
      in
      victim.last_line <- line;
      victim.length <- 1;
      victim.lru <- t.clock;
      0

  let reset t =
    Array.iter
      (fun s ->
        s.last_line <- -1;
        s.length <- 0;
        s.lru <- 0)
      t.streams;
    t.clock <- 0
end
