open Sempe_util

type config = {
  name : string;
  size_bytes : int;
  line_bytes : int;
  ways : int;
}

(* The per-line state lives in two flat packed int arrays indexed
   [set * ways + way] instead of an array-of-arrays of line records: one
   cache access touches one contiguous handful of words instead of
   chasing a set pointer and then one boxed record per way. [tags.(i)]
   = -1 encodes invalid; [lru.(i)] is the global-clock stamp of the
   line's last touch. The packed layout is also what makes checkpointing
   a warmed cache a plain array copy for [Marshal] instead of a graph of
   thousands of records. *)
type t = {
  cfg : config;
  nsets : int;
  ways : int;
  tags : int array; (* nsets * ways; -1 = invalid *)
  lru : int array; (* nsets * ways; last-touch clock stamp *)
  (* [addr / line_bytes] and [... / num_sets] as shifts when both are
     powers of two (they always are for the paper's machines; [-1] falls
     back to division). Addresses are non-negative, so the results are
     identical — this is on the per-access hot path of both execution
     modes. *)
  line_shift : int;
  set_shift : int;
  mutable clock : int;
  group : Stats.group;
  c_accesses : Stats.counter;
  c_misses : Stats.counter;
  c_writes : Stats.counter;
  c_prefetch_fills : Stats.counter;
  c_evictions : Stats.counter;
}

type outcome = Hit | Miss

let log2_pow2 n =
  if n > 0 && n land (n - 1) = 0 then begin
    let s = ref 0 in
    while 1 lsl !s < n do
      incr s
    done;
    !s
  end
  else -1

let create cfg =
  let lines = cfg.size_bytes / cfg.line_bytes in
  if lines mod cfg.ways <> 0 then invalid_arg "Cache.create: lines not divisible by ways";
  let nsets = lines / cfg.ways in
  if nsets land (nsets - 1) <> 0 then invalid_arg "Cache.create: sets not a power of two";
  let group = Stats.group cfg.name in
  {
    cfg;
    nsets;
    ways = cfg.ways;
    tags = Array.make lines (-1);
    lru = Array.make lines 0;
    line_shift = log2_pow2 cfg.line_bytes;
    set_shift = log2_pow2 nsets;
    clock = 0;
    group;
    c_accesses = Stats.counter group "accesses";
    c_misses = Stats.counter group "misses";
    c_writes = Stats.counter group "writes";
    c_prefetch_fills = Stats.counter group "prefetch_fills";
    c_evictions = Stats.counter group "evictions";
  }

let config t = t.cfg
let num_sets t = t.nsets

let line_of t addr =
  if t.line_shift >= 0 then addr lsr t.line_shift else addr / t.cfg.line_bytes

let set_index t ~addr = line_of t addr land (t.nsets - 1)

let tag_of t addr =
  let line = line_of t addr in
  if t.set_shift >= 0 then line lsr t.set_shift else line / t.nsets

(* [set_index] is masked to [nsets - 1] and the scans below are bounded by
   [base + ways <= nsets * ways], so the unsafe accesses are in bounds by
   construction. This is the per-access hot path of both execution modes,
   hence also the allocation-free scans instead of option-returning
   finds. *)
let set_base t ~addr = set_index t ~addr * t.ways

(* The scans below are while-loops over local refs rather than local
   recursive functions: without flambda a [let rec] capturing its
   surroundings allocates a closure per call, and these run on the
   per-access hot path (non-escaping refs are compiled to mutable
   variables). *)
let mem t base tag =
  let stop = base + t.ways in
  let i = ref base in
  while !i < stop && Array.unsafe_get t.tags !i <> tag do
    incr i
  done;
  !i < stop

(* First way with the minimum stamp, matching the record-based reference
   (fold kept the earlier way on ties). *)
let lru_victim t base =
  let stop = base + t.ways in
  let best = ref base in
  let best_lru = ref (Array.unsafe_get t.lru base) in
  for i = base + 1 to stop - 1 do
    let l = Array.unsafe_get t.lru i in
    if l < !best_lru then begin
      best := i;
      best_lru := l
    end
  done;
  !best

let install t base tag =
  let v = lru_victim t base in
  if Array.unsafe_get t.tags v >= 0 then Stats.incr t.c_evictions;
  Array.unsafe_set t.tags v tag;
  t.clock <- t.clock + 1;
  Array.unsafe_set t.lru v t.clock

let access t ~addr ~write =
  Stats.incr t.c_accesses;
  if write then Stats.incr t.c_writes;
  let base = set_base t ~addr and tag = tag_of t addr in
  let stop = base + t.ways in
  let i = ref base in
  while !i < stop && Array.unsafe_get t.tags !i <> tag do
    incr i
  done;
  if !i < stop then begin
    t.clock <- t.clock + 1;
    Array.unsafe_set t.lru !i t.clock;
    Hit
  end
  else begin
    Stats.incr t.c_misses;
    install t base tag;
    Miss
  end

let prefetch_fill t ~addr =
  let base = set_base t ~addr and tag = tag_of t addr in
  if mem t base tag then false
  else begin
    Stats.incr t.c_prefetch_fills;
    install t base tag;
    true
  end

let probe t ~addr =
  let base = set_base t ~addr and tag = tag_of t addr in
  mem t base tag

(* Rank of way [i] within its set: the number of strictly more-recent
   lines. Valid lines carry distinct clock stamps, so ranks of valid
   lines are distinct. *)
let rank_of t base stop i =
  let li = Array.unsafe_get t.lru i in
  let rec count j acc =
    if j >= stop then acc
    else count (j + 1) (if Array.unsafe_get t.lru j > li then acc + 1 else acc)
  in
  count base 0

let resident_tags t set_idx =
  (* Direct rank scan over the packed arrays (no copy, no sort): way of
     rank 0 is the MRU. Quadratic in [ways], which is tiny; this runs
     thousands of times inside warm-state fidelity tests. *)
  let base = set_idx * t.ways in
  let stop = base + t.ways in
  let rec emit rank acc =
    if rank < 0 then acc
    else
      let rec find i =
        if i >= stop then None
        else if Array.unsafe_get t.tags i >= 0 && rank_of t base stop i = rank
        then Some (Array.unsafe_get t.tags i)
        else find (i + 1)
      in
      match find base with
      | Some tag -> emit (rank - 1) (tag :: acc)
      | None -> emit (rank - 1) acc
  in
  (* built from the largest rank down, so the head ends up the MRU *)
  emit (t.ways - 1) []

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.lru 0 (Array.length t.lru) 0;
  t.clock <- 0

let stats t = t.group

let miss_rate t =
  Stats.ratio ~num:(Stats.value t.c_misses) ~den:(Stats.value t.c_accesses)

let signature t =
  (* Hashes the per-set LRU ranking alongside the tags: two caches with the
     same resident lines but divergent replacement order must not collide,
     or the warm-state fidelity checks cannot see recency drift. The rank
     (number of strictly more-recent lines in the set) rather than the raw
     [lru] clock keeps the hash independent of access counts. Fold order
     (sets ascending, ways ascending) matches the record-based reference
     bit for bit. *)
  let acc = ref 2166136261 in
  let mix x = acc := (!acc * 16777619) lxor x in
  for s = 0 to t.nsets - 1 do
    let base = s * t.ways in
    let stop = base + t.ways in
    for i = base to stop - 1 do
      mix (t.tags.(i) + 2);
      mix (rank_of t base stop i)
    done
  done;
  !acc
