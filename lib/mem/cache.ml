open Sempe_util

type config = {
  name : string;
  size_bytes : int;
  line_bytes : int;
  ways : int;
}

type line = { mutable tag : int; mutable lru : int }
(* tag = -1 encodes invalid. *)

type t = {
  cfg : config;
  sets : line array array;
  (* [addr / line_bytes] and [... / num_sets] as shifts when both are
     powers of two (they always are for the paper's machines; [-1] falls
     back to division). Addresses are non-negative, so the results are
     identical — this is on the per-access hot path of both execution
     modes. *)
  line_shift : int;
  set_shift : int;
  mutable clock : int;
  group : Stats.group;
  c_accesses : Stats.counter;
  c_misses : Stats.counter;
  c_writes : Stats.counter;
  c_prefetch_fills : Stats.counter;
  c_evictions : Stats.counter;
}

type outcome = Hit | Miss

let log2_pow2 n =
  if n > 0 && n land (n - 1) = 0 then begin
    let s = ref 0 in
    while 1 lsl !s < n do
      incr s
    done;
    !s
  end
  else -1

let create cfg =
  let lines = cfg.size_bytes / cfg.line_bytes in
  if lines mod cfg.ways <> 0 then invalid_arg "Cache.create: lines not divisible by ways";
  let nsets = lines / cfg.ways in
  if nsets land (nsets - 1) <> 0 then invalid_arg "Cache.create: sets not a power of two";
  let group = Stats.group cfg.name in
  {
    cfg;
    sets = Array.init nsets (fun _ -> Array.init cfg.ways (fun _ -> { tag = -1; lru = 0 }));
    line_shift = log2_pow2 cfg.line_bytes;
    set_shift = log2_pow2 nsets;
    clock = 0;
    group;
    c_accesses = Stats.counter group "accesses";
    c_misses = Stats.counter group "misses";
    c_writes = Stats.counter group "writes";
    c_prefetch_fills = Stats.counter group "prefetch_fills";
    c_evictions = Stats.counter group "evictions";
  }

let config t = t.cfg
let num_sets t = Array.length t.sets

let line_of t addr =
  if t.line_shift >= 0 then addr lsr t.line_shift else addr / t.cfg.line_bytes

let set_index t ~addr = line_of t addr land (num_sets t - 1)

let tag_of t addr =
  let line = line_of t addr in
  if t.set_shift >= 0 then line lsr t.set_shift else line / num_sets t

(* [set_index] is masked to [num_sets - 1] and the scans below are
   bounded by the set's length, so the unsafe accesses are in bounds by
   construction. This is the per-access hot path of both execution
   modes, hence also the allocation-free [mem] instead of an
   option-returning find. *)
let set_of t ~addr = Array.unsafe_get t.sets (set_index t ~addr)

let mem set tag =
  let rec scan i =
    if i >= Array.length set then false
    else if (Array.unsafe_get set i).tag = tag then true
    else scan (i + 1)
  in
  scan 0

let lru_victim set =
  Array.fold_left (fun best l -> if l.lru < best.lru then l else best) set.(0) set

let install t set tag =
  let victim = lru_victim set in
  if victim.tag >= 0 then Stats.incr t.c_evictions;
  victim.tag <- tag;
  t.clock <- t.clock + 1;
  victim.lru <- t.clock

let access t ~addr ~write =
  Stats.incr t.c_accesses;
  if write then Stats.incr t.c_writes;
  let set = set_of t ~addr and tag = tag_of t addr in
  let n = Array.length set in
  let rec scan i =
    if i >= n then begin
      Stats.incr t.c_misses;
      install t set tag;
      Miss
    end
    else
      let line = Array.unsafe_get set i in
      if line.tag = tag then begin
        t.clock <- t.clock + 1;
        line.lru <- t.clock;
        Hit
      end
      else scan (i + 1)
  in
  scan 0

let prefetch_fill t ~addr =
  let set = set_of t ~addr and tag = tag_of t addr in
  if mem set tag then false
  else begin
    Stats.incr t.c_prefetch_fills;
    install t set tag;
    true
  end

let probe t ~addr =
  let set = set_of t ~addr and tag = tag_of t addr in
  mem set tag

let resident_tags t set_idx =
  let set = t.sets.(set_idx) in
  let lines = Array.to_list (Array.copy set) in
  let valid = List.filter (fun l -> l.tag >= 0) lines in
  let sorted = List.sort (fun a b -> compare b.lru a.lru) valid in
  List.map (fun l -> l.tag) sorted

let flush t =
  Array.iter (fun set -> Array.iter (fun l -> l.tag <- -1; l.lru <- 0) set) t.sets;
  t.clock <- 0

let stats t = t.group

let miss_rate t =
  Stats.ratio ~num:(Stats.value t.c_misses) ~den:(Stats.value t.c_accesses)

let signature t =
  (* Hashes the per-set LRU ranking alongside the tags: two caches with the
     same resident lines but divergent replacement order must not collide,
     or the warm-state fidelity checks cannot see recency drift. The rank
     (number of strictly more-recent lines in the set) rather than the raw
     [lru] clock keeps the hash independent of access counts. *)
  let acc = ref 2166136261 in
  let mix x = acc := (!acc * 16777619) lxor x in
  Array.iter
    (fun set ->
      let n = Array.length set in
      for i = 0 to n - 1 do
        let l = set.(i) in
        let rank = ref 0 in
        for j = 0 to n - 1 do
          if set.(j).lru > l.lru then incr rank
        done;
        mix (l.tag + 2);
        mix !rank
      done)
    t.sets;
  !acc
