type counter = { mutable count : int }

type group = { gname : string; mutable entries : (string * counter) list }

let group gname = { gname; entries = [] }

let group_name g = g.gname

let counter g name =
  if List.mem_assoc name g.entries then
    invalid_arg (Printf.sprintf "Stats.counter: duplicate %S in group %S" name g.gname);
  let c = { count = 0 } in
  g.entries <- g.entries @ [ (name, c) ];
  c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let value c = c.count

let reset_group g = List.iter (fun (_, c) -> c.count <- 0) g.entries

let to_list g = List.map (fun (name, c) -> (name, c.count)) g.entries

let find g name = (List.assoc name g.entries).count

let ratio ~num ~den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

module Summary = struct
  (* Welford's online algorithm for mean and variance; the raw samples are
     additionally retained (amortized-doubling buffer) so order statistics
     can be asked after the fact. *)
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable samples : float array;
    (* cached ascending copy of the first [n] samples; invalidated by
       [observe] so repeated percentile queries sort once *)
    mutable sorted : float array option;
  }

  let create () =
    {
      n = 0;
      mean = 0.0;
      m2 = 0.0;
      min = infinity;
      max = neg_infinity;
      samples = [||];
      sorted = None;
    }

  let observe t x =
    if t.n >= Array.length t.samples then begin
      let grown = Array.make (Stdlib.max 8 (2 * Array.length t.samples)) 0.0 in
      Array.blit t.samples 0 grown 0 t.n;
      t.samples <- grown
    end;
    t.samples.(t.n) <- x;
    t.sorted <- None;
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let n t = t.n
  let count = n
  let mean t = if t.n = 0 then 0.0 else t.mean

  (* Nearest-rank percentile: the smallest sample such that at least
     [p * n] samples are <= it (rank = ceil (p * n), clamped to 1..n).
     [p] is a fraction in [0, 1]; an empty summary yields 0 like [mean]. *)
  let percentile p t =
    if t.n = 0 then 0.0
    else begin
      let sorted =
        match t.sorted with
        | Some s -> s
        | None ->
          let s = Array.sub t.samples 0 t.n in
          Array.sort compare s;
          t.sorted <- Some s;
          s
      in
      let p = Stdlib.min 1.0 (Stdlib.max 0.0 p) in
      let rank = int_of_float (Float.ceil (p *. float_of_int t.n)) in
      let rank = Stdlib.min t.n (Stdlib.max 1 rank) in
      sorted.(rank - 1)
    end

  let stddev t =
    if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

  (* Like [mean], the extrema of an empty summary are 0 rather than the
     (+/-) infinity sentinels the update step uses internally. *)
  let min t = if t.n = 0 then 0.0 else t.min
  let max t = if t.n = 0 then 0.0 else t.max
end
