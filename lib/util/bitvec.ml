type t = { bits : Bytes.t; len : int }

let create len =
  assert (len >= 0);
  { bits = Bytes.make ((len + 7) / 8) '\000'; len }

let length t = t.len

let check t i = assert (i >= 0 && i < t.len)

let get t i =
  check t i;
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let b = Char.code (Bytes.get t.bits (i lsr 3)) in
  Bytes.set t.bits (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let b = Char.code (Bytes.get t.bits (i lsr 3)) in
  Bytes.set t.bits (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7)) land 0xff))

let assign t i v = if v then set t i else clear t i

let clear_all t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let set_all t =
  for i = 0 to t.len - 1 do
    set t i
  done

let popcount t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if get t i then incr n
  done;
  !n

let copy t = { bits = Bytes.copy t.bits; len = t.len }

let union a b =
  assert (a.len = b.len);
  let r = create a.len in
  for i = 0 to Bytes.length a.bits - 1 do
    Bytes.set r.bits i
      (Char.chr (Char.code (Bytes.get a.bits i) lor Char.code (Bytes.get b.bits i)))
  done;
  r

let union_into dst a b =
  assert (a.len = b.len && dst.len = a.len);
  for i = 0 to Bytes.length a.bits - 1 do
    Bytes.set dst.bits i
      (Char.chr (Char.code (Bytes.get a.bits i) lor Char.code (Bytes.get b.bits i)))
  done

let iter_set f t =
  for i = 0 to t.len - 1 do
    if get t i then f i
  done

let equal a b = a.len = b.len && Bytes.equal a.bits b.bits

let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')
