(** Child-process supervision: spawn, poll, terminate gracefully.

    The fleet launcher uses this to run its shard daemons: each child
    gets [/dev/null] on stdin and (optionally) a log file capturing its
    stdout and stderr — nothing is piped, so a child can never block on
    a full pipe the supervisor forgot to drain. No restart policy lives
    here; the caller decides what a dead child means. *)

type t

val spawn : ?log:string -> label:string -> string -> string list -> t
(** [spawn prog args] starts [prog] (an executable path; no shell) with
    [args]. With [log], the child's stdout and stderr are appended to
    that file; without, they share the parent's stderr. [label] names
    the child in the caller's diagnostics.
    @raise Unix.Unix_error when the log file cannot be opened (a fork
    failure also surfaces here). *)

val pid : t -> int

val label : t -> string

val log_path : t -> string option

val alive : t -> bool
(** Non-blocking liveness check (reaps the child if it just exited). *)

val poll : t -> Unix.process_status option
(** Non-blocking: [Some status] once the child has exited (idempotent
    thereafter), [None] while it runs. *)

val wait : ?timeout_s:float -> t -> Unix.process_status option
(** Block (polling) until exit or [timeout_s] (default: forever).
    [None] on timeout — the child is still running. *)

val signal : t -> int -> unit
(** Send a signal if the child is still alive; never raises. *)

val terminate : ?grace_s:float -> t -> Unix.process_status
(** Graceful stop: SIGTERM, wait up to [grace_s] (default 10s) for a
    clean exit — the shard daemons flush their cache stores in this
    window — then SIGKILL. Returns the final status; idempotent on an
    already-dead child. *)
