(** Simulation statistics: named counters, ratios and summaries.

    Every simulator component owns a [group]; the run harness collects the
    groups into a report. Counters are plain [int] cells so the hot paths pay
    one increment. *)

type counter
(** A monotonically increasing event count. *)

type group
(** A named collection of counters. *)

val group : string -> group
(** [group name] is a fresh, empty group. *)

val group_name : group -> string

val counter : group -> string -> counter
(** [counter g name] registers a zeroed counter named [name] in [g]. Names
    must be unique within a group. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val reset_group : group -> unit

val to_list : group -> (string * int) list
(** Counters of a group in registration order. *)

val find : group -> string -> int
(** [find g name] is the value of the named counter.
    @raise Not_found if absent. *)

val ratio : num:int -> den:int -> float
(** [ratio ~num ~den] is [num / den] as a float, or [0.] when [den = 0]. *)

(** Streaming summary of a series of float observations. *)
module Summary : sig
  type t

  val create : unit -> t
  val observe : t -> float -> unit
  val n : t -> int

  val count : t -> int
  (** Number of observations (alias of {!n}). *)

  val mean : t -> float
  (** [0.] when nothing has been observed. *)

  val percentile : float -> t -> float
  (** [percentile p t] is the nearest-rank [p]-th percentile of the
      observations, with [p] a fraction in [\[0, 1\]] (clamped): the
      sample at rank [ceil (p * n)] of the ascending order, so
      [percentile 0. t] and [percentile 1. t] are the exact min and max.
      [0.] when nothing has been observed (consistent with {!mean}). *)

  val stddev : t -> float

  val min : t -> float
  (** [0.] when nothing has been observed (consistent with {!mean}). *)

  val max : t -> float
  (** [0.] when nothing has been observed (consistent with {!mean}). *)
end
