(** Deterministic pseudo-random number generation.

    All randomness in the simulator and the workload generators flows through
    this module so that every experiment is reproducible bit-for-bit. The
    generator is splitmix64, which has a 64-bit state, passes BigCrush, and is
    trivially splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator seeded with [seed]. Two
    generators created with the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator whose future stream equals the
    future stream of [t] at the time of the call. *)

val split : t -> t
(** [split t] draws from [t] to seed a statistically independent child
    generator. [t] advances. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val mix : int -> int -> int
(** [mix seed k] deterministically derives a fresh non-negative seed from
    a parent seed and an index (one splitmix64 finalizer round), so
    independent generators can be fanned out per work item without
    sharing or threading generator state. *)
