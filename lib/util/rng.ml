type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next64 t }

let int t bound =
  assert (bound > 0);
  (* Mask to 62 bits: Int64.to_int is modulo 2^63, so bit 62 of a 63-bit
     value would become the native sign bit. *)
  let r = Int64.to_int (Int64.logand (next64 t) 0x3FFFFFFFFFFFFFFFL) in
  r mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (next64 t) 11) in
  float_of_int bits53 *. (1.0 /. 9007199254740992.0)

let mix a b =
  (* one splitmix64 round over the pair: good avalanche, so derived seeds
     (per fuzz case, per round) are statistically independent of each
     other and of the parent seed *)
  let z = Int64.add (Int64.of_int a) (Int64.mul golden_gamma (Int64.of_int (b + 1))) in
  Int64.to_int (Int64.logand (mix64 z) 0x3FFFFFFFFFFFFFFFL)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
