(** Fixed-size worker pool over OCaml 5 domains.

    The pool owns [size] worker domains that block on a condition variable
    until jobs arrive. {!map} fans a list of independent jobs out to the
    workers and returns the results {e in job order}, regardless of the
    order in which workers finish; if any job raises, the exception of the
    lowest-indexed failing job is re-raised in the caller (with its
    backtrace) after all jobs of the batch have settled.

    A pool of size 1 spawns no domains: {!map} degenerates to [List.map]
    in the calling domain, so [-j 1] runs exercise exactly the sequential
    path.

    Jobs must not call {!map} on the pool that runs them — with every
    worker busy, a nested batch would deadlock. Spawn a separate pool (or
    run the inner level sequentially) instead. *)

type t

val default_workers : unit -> int
(** [Domain.recommended_domain_count ()], capped at {!max_workers}. *)

val max_workers : int
(** Upper bound on pool size (the runtime supports ~128 domains total). *)

val now_s : unit -> float
(** Wall-clock seconds (epoch-based); the clock the pool's own job timing
    uses, exposed so callers can measure batch wall time consistently. *)

val create : ?workers:int -> unit -> t
(** [create ~workers ()] spawns [workers] worker domains (clamped to
    [1 .. max_workers]; default {!default_workers}). *)

val size : t -> int
(** Number of workers the pool was created with (1 means sequential). *)

val map : ?on_done:(int -> float -> unit) -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] runs [f] on every element of [xs] on the pool's workers
    and returns the results in the order of [xs]. Concurrent [map] calls
    on the same pool from different domains are safe; their jobs share the
    workers.

    [on_done i seconds] is invoked once per successfully completed job
    with its index in [xs] and its wall-clock duration — in completion
    order, not index order. Invocations are serialized (under the pool's
    lock on the parallel path), so the callback may mutate shared state
    without further synchronization; keep it cheap and non-raising
    (exceptions it raises are swallowed). Jobs that raise are not
    reported. *)

exception Shutdown
(** Raised from {!await} (or a {!map} batch) for jobs that were still
    queued when a non-draining {!shutdown} discarded them. *)

type 'a promise
(** The pending result of a single job handed to {!submit}. *)

val submit : t -> (unit -> 'a) -> 'a promise
(** [submit t f] enqueues [f] as a single job and returns immediately; the
    caller keeps running (e.g. producing the next job's input) while the
    workers execute it. On a pool of size 1 the job runs inline, to
    completion, before [submit] returns — the sequential path executes
    every job eagerly in submission order.

    Like {!map} jobs, submitted jobs must not {!submit} to or {!map} on
    the pool that runs them. *)

val await : 'a promise -> 'a
(** Blocks until the job has settled; returns its result or re-raises its
    exception with the original backtrace. [await] may be called at most
    once per promise from the submitting domain's side; repeated awaits
    return the same settled result. *)

val peek : 'a promise -> 'a option
(** Non-blocking {!await}: [None] while the job is still pending, the
    result once settled (re-raising the job's exception like {!await}).
    The serving layer polls this to bound a request's wait without
    cancelling the underlying job. *)

val shutdown : ?drain:bool -> t -> unit
(** Stops the pool and joins all worker domains. With [drain:true] (the
    default) every queued job still runs first; with [drain:false] jobs
    that no worker has started yet are discarded and their waiters settle
    with {!Shutdown} (in-flight jobs always complete — there is no
    preemption). Double shutdown is a no-op; [map]/[submit] after
    [shutdown] raise [Invalid_argument]. *)

val run :
  ?workers:int -> ?on_done:(int -> float -> unit) -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [create], {!map}, {!shutdown} (also on
    exception). *)
