(** Fixed-width mutable bit vectors.

    Used for the T-Modified / NT-Modified vectors of the ArchRS snapshot
    mechanism (Figure 6 of the paper) and for cache valid bits. *)

type t

val create : int -> t
(** [create n] is an all-zero vector of [n] bits. *)

val length : t -> int

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit

val clear_all : t -> unit
val set_all : t -> unit

val popcount : t -> int
(** Number of set bits. *)

val union : t -> t -> t
(** [union a b] is a fresh vector with the bitwise or; lengths must match. *)

val union_into : t -> t -> t -> unit
(** [union_into dst a b] writes the bitwise or of [a] and [b] into [dst]
    without allocating; all three lengths must match. *)

val copy : t -> t

val iter_set : (int -> unit) -> t -> unit
(** [iter_set f t] applies [f] to the index of every set bit, ascending. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Little-endian string of ['0']/['1'] characters, index 0 first. *)
