(* Child-process supervision for the fleet launcher: spawn with stderr
   captured to a log file, poll liveness, terminate with a grace period.
   Deliberately minimal — no restart policy, no pipes to manage. The
   caller owns lifecycle decisions; this module owns the Unix plumbing
   (create_process, non-blocking waitpid, the TERM-then-KILL dance). *)

type t = {
  pid : int;
  label : string;
  log_path : string option;
  mutable status : Unix.process_status option;  (* reaped *)
}

let pid t = t.pid
let label t = t.label
let log_path t = t.log_path

let spawn ?log ~label prog args =
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let stderr_fd =
    match log with
    | None -> Unix.stderr
    | Some path ->
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close dev_null with _ -> ());
      match log with
      | Some _ -> ( try Unix.close stderr_fd with _ -> ())
      | None -> ())
    (fun () ->
      let pid =
        Unix.create_process prog
          (Array.of_list (prog :: args))
          dev_null stderr_fd stderr_fd
      in
      { pid; label; log_path = log; status = None })

let poll t =
  match t.status with
  | Some st -> Some st
  | None -> (
    match Unix.waitpid [ Unix.WNOHANG ] t.pid with
    | 0, _ -> None
    | _, st ->
      t.status <- Some st;
      Some st
    | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
      (* Reaped elsewhere (e.g. a blanket wait); treat as exited. *)
      let st = Unix.WEXITED 0 in
      t.status <- Some st;
      Some st)

let alive t = poll t = None

let wait ?(timeout_s = infinity) t =
  let deadline =
    if timeout_s = infinity then infinity else Unix.gettimeofday () +. timeout_s
  in
  let rec go () =
    match poll t with
    | Some st -> Some st
    | None ->
      if Unix.gettimeofday () > deadline then None
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

let signal t s = if alive t then try Unix.kill t.pid s with Unix.Unix_error _ -> ()

let terminate ?(grace_s = 10.) t =
  match poll t with
  | Some st -> st
  | None -> (
    signal t Sys.sigterm;
    match wait ~timeout_s:grace_s t with
    | Some st -> st
    | None -> (
      signal t Sys.sigkill;
      match wait ~timeout_s:5. t with
      | Some st -> st
      | None -> Unix.WSIGNALED Sys.sigkill))
