(* Fixed-size domain pool with ordered result collection and exception
   propagation. Workers pull erased [unit -> unit] thunks off a shared
   queue; [map] packs each job's result (or exception + backtrace) into a
   per-batch array slot, so results come back in job order no matter which
   worker finished first. *)

let max_workers = 64

let default_workers () = min max_workers (Domain.recommended_domain_count ())

let now_s () = Unix.gettimeofday ()

exception Shutdown

(* A queued entry is either run (by a worker) or aborted (by a
   non-draining shutdown) — exactly one of the two, exactly once. [abort]
   settles whatever is waiting on the entry (a batch slot, a promise)
   with {!Shutdown} so no caller is left blocked on work that will never
   execute. *)
type entry = {
  run : unit -> unit;
  abort : unit -> unit;
}

type t = {
  size : int;
  m : Mutex.t;
  work_available : Condition.t;
  queue : entry Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let rec worker t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.work_available t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* stop, queue drained *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.m;
    job.run ();
    worker t
  end

let create ?workers () =
  let requested = match workers with Some w -> w | None -> default_workers () in
  let size = max 1 (min max_workers requested) in
  let t =
    {
      size;
      m = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domains = [];
    }
  in
  (* size 1 is the sequential fallback: no domains at all. *)
  if size > 1 then
    t.domains <- List.init size (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.size

let map_parallel ?on_done t f xs =
  let jobs = Array.of_list xs in
  let n = Array.length jobs in
  let results = Array.make n None in
  let remaining = ref n in
  let batch_done = Condition.create () in
  let settle i r =
    Mutex.lock t.m;
    results.(i) <- Some r;
    decr remaining;
    if !remaining = 0 then Condition.broadcast batch_done;
    Mutex.unlock t.m
  in
  let job i () =
    let t0 = now_s () in
    let r =
      try Ok (f jobs.(i))
      with e -> Error (e, Printexc.get_raw_backtrace ())
    in
    let elapsed = now_s () -. t0 in
    Mutex.lock t.m;
    results.(i) <- Some r;
    decr remaining;
    if !remaining = 0 then Condition.broadcast batch_done;
    (* The callback runs under the pool mutex so observers need no locking
       of their own; keep it cheap. Failed jobs are not reported — their
       exception is about to tear the batch down anyway. *)
    (match (on_done, r) with
    | Some cb, Ok _ -> ( try cb i elapsed with _ -> ())
    | _ -> ());
    Mutex.unlock t.m
  in
  let entry i =
    {
      run = job i;
      abort = (fun () -> settle i (Error (Shutdown, Printexc.get_callstack 0)));
    }
  in
  Mutex.lock t.m;
  if t.stop then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.map: pool is shut down"
  end;
  for i = 0 to n - 1 do
    Queue.add (entry i) t.queue
  done;
  Condition.broadcast t.work_available;
  while !remaining > 0 do
    Condition.wait batch_done t.m
  done;
  Mutex.unlock t.m;
  (* Propagate the failure of the lowest-indexed failing job. *)
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ())
    results;
  List.init n (fun i ->
      match results.(i) with Some (Ok v) -> v | Some (Error _) | None -> assert false)

(* ---- single-job futures ------------------------------------------------ *)

(* A promise owns its own mutex/condvar pair so [await] never contends with
   the pool lock; the pool lock is only taken to enqueue the thunk. *)
type 'a promise = {
  p_m : Mutex.t;
  p_c : Condition.t;
  mutable p_state : ('a, exn * Printexc.raw_backtrace) result option;
}

let fulfil p r =
  Mutex.lock p.p_m;
  p.p_state <- Some r;
  Condition.broadcast p.p_c;
  Mutex.unlock p.p_m

let submit t f =
  let p = { p_m = Mutex.create (); p_c = Condition.create (); p_state = None } in
  let job () =
    fulfil p
      (try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ()))
  in
  if t.size <= 1 then job () (* sequential pool: run inline, eagerly *)
  else begin
    Mutex.lock t.m;
    if t.stop then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Queue.add
      {
        run = job;
        abort =
          (fun () -> fulfil p (Error (Shutdown, Printexc.get_callstack 0)));
      }
      t.queue;
    Condition.signal t.work_available;
    Mutex.unlock t.m
  end;
  p

let await p =
  Mutex.lock p.p_m;
  while p.p_state = None do
    Condition.wait p.p_c p.p_m
  done;
  Mutex.unlock p.p_m;
  match p.p_state with
  | Some (Ok v) -> v
  | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
  | None -> assert false

let peek p =
  Mutex.lock p.p_m;
  let state = p.p_state in
  Mutex.unlock p.p_m;
  match state with
  | None -> None
  | Some (Ok v) -> Some v
  | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt

let map_seq ?on_done f xs =
  match on_done with
  | None -> List.map f xs
  | Some cb ->
    List.mapi
      (fun i x ->
        let t0 = now_s () in
        let r = f x in
        (try cb i (now_s () -. t0) with _ -> ());
        r)
      xs

let map ?on_done t f xs =
  if t.stop then invalid_arg "Pool.map: pool is shut down";
  match xs with
  | [] -> []
  | [ _ ] -> map_seq ?on_done f xs
  | xs ->
    if t.size <= 1 then map_seq ?on_done f xs
    else map_parallel ?on_done t f xs

let shutdown ?(drain = true) t =
  Mutex.lock t.m;
  if t.stop then Mutex.unlock t.m (* double shutdown is a no-op *)
  else begin
    t.stop <- true;
    (* Non-draining shutdown: discard everything still queued, settling
       each entry's waiter with {!Shutdown} so no [await]/[map] caller is
       left blocked on work that will never run. Jobs a worker already
       started always run to completion — there is no cancellation of
       in-flight work, only of queued work. *)
    let discarded =
      if drain then []
      else begin
        let xs = List.of_seq (Queue.to_seq t.queue) in
        Queue.clear t.queue;
        xs
      end
    in
    Condition.broadcast t.work_available;
    Mutex.unlock t.m;
    List.iter (fun e -> e.abort ()) discarded;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let run ?workers ?on_done f xs =
  let t = create ?workers () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map ?on_done t f xs)
