(** Functional (architectural) execution with SeMPE semantics.

    Runs a program to [Halt], maintaining registers and memory, and streams
    one {!Sempe_pipeline.Uop.event} per committed instruction to an optional
    sink (normally the timing model).

    Under {!Sempe_hw} support, a secure branch triggers the paper's
    multi-path protocol: the branch outcome is recorded in the jbTable, the
    architectural registers are snapshotted to the SPM, the not-taken path
    executes first, the first eosJMP jumps back to the taken target, and the
    second eosJMP merges register state according to the outcome. Memory is
    never snapshotted — programs must privatize memory written under secure
    branches (the ShadowMemory pass), exactly as in the paper.

    Under {!Legacy} support the SecPrefix is ignored: secure branches
    behave as ordinary predicted branches and [Eosjmp] decodes as a NOP,
    demonstrating the ISA's backward compatibility (§IV-C). *)

type support = Legacy | Sempe_hw

(** Fault injection, used by the differential fuzzer ({!Sempe_fuzz}) to
    prove its oracles catch real protocol bugs. A fault suppresses the
    architectural effect of one SPM restore phase while keeping the
    snapshot-stack bookkeeping intact:

    - [Skip_restore]: the final eosJMP's merge/restore writes nothing, so
      the last-executed (taken) path's register values survive even when
      the branch outcome selected the other path;
    - [Skip_nt_restore]: the first eosJMP does not rewind the not-taken
      path's register writes, so NT values leak into the taken path.

    [No_fault] (the default everywhere) is the correct SeMPE protocol. *)
type fault = No_fault | Skip_restore | Skip_nt_restore

val fault_name : fault -> string
val fault_of_string : string -> fault option

type config = {
  support : support;
  mem_words : int;       (** memory size in words; the stack grows from the top *)
  max_instrs : int;      (** dynamic instruction budget; exceeding it fails *)
  spm : Sempe_mem.Spm.config;
  jbtable_entries : int;
  forgiving_oob : bool;
  (** when [true], out-of-bounds loads return 0, out-of-bounds stores are
      dropped (their cache address is clamped), and out-of-bounds
      indirect-jump targets ([Jr]/[Ret]) are wrapped into the program
      deterministically; when [false] all three fail with
      {!Out_of_bounds}. The paper's threat model assumes wrong paths do
      not fault, but synthetic wrong-path code may compute junk addresses
      and junk targets. *)
  fault : fault;
  (** injected protocol bug; [No_fault] for correct execution *)
}

val default_config : config
(** [Sempe_hw], 1 MiB of words, 200M instruction budget, Table II SPM,
    [No_fault]. *)

exception Out_of_bounds of { pc : int; addr : int }
exception Budget_exceeded of int

type result = {
  regs : int array;        (** architectural registers at [Halt] *)
  memory : int array;      (** final memory image *)
  dyn_instrs : int;        (** committed instructions *)
  dyn_sjmps : int;         (** committed secure branches *)
  max_nesting : int;       (** deepest secure-branch nesting reached *)
  spm : Sempe_mem.Spm.t;   (** the SPM, for its transfer statistics *)
}

val run :
  ?config:config
  -> ?init_mem:(int array -> unit)
  -> ?sink:(Sempe_pipeline.Uop.event -> unit)
  -> Sempe_isa.Program.t
  -> result
(** @raise Sempe_mem.Spm.Overflow or {!Jbtable.Overflow} when secure
    branches nest beyond the hardware budget.
    @raise Out_of_bounds on a wild access when [forgiving_oob] is false.
    @raise Budget_exceeded when [max_instrs] is hit. *)

(** {2 Resumable execution}

    The co-residence attacks interleave a victim with an attacker sharing
    the machine: start a session, advance it a time slice at a time, and
    let the attacker inspect the shared microarchitectural state between
    slices. *)

type session
(** A session owns a decoded micro-op cache: the program is predecoded
    once at {!start}/{!resume} into one specialized thunk per static
    instruction, so the per-step loop does threaded dispatch instead of
    re-matching the instruction constructor tree. When a sink is attached,
    commits reuse one mutable µop record per static pc — see the reuse
    contract in {!Sempe_pipeline.Uop}. *)

val start :
  ?config:config
  -> ?init_mem:(int array -> unit)
  -> ?sink:(Sempe_pipeline.Uop.event -> unit)
  -> ?warm:Sempe_pipeline.Warm.t
  -> Sempe_isa.Program.t
  -> session
(** When [sink] is omitted the session runs in fast-forward mode: no µop
    events are allocated at all, which makes functional execution several
    times faster than the instrumented path.

    [warm], if given, is functionally warmed as the program executes: each
    architectural step makes exactly the {!Sempe_pipeline.Warm} calls (in
    the same order) that {!Sempe_pipeline.Timing} would make while
    consuming this session's µop stream, so a fast-forward run leaves
    caches and predictors in the state a detailed run would have. Supply
    either [sink] (detailed: the timing model trains its own warm state)
    or [warm] (fast-forward warming), not both — combining them would
    train the same tables twice per instruction. *)

val step_slice : session -> int -> bool
(** [step_slice s n] executes up to [n] further instructions; returns
    [true] once the program has halted. Raises like {!run}. *)

val halted : session -> bool
val instructions : session -> int

val finish : session -> result
(** Run to completion (if not already halted) and package the result. *)

(** {2 Architectural checkpoints}

    Sampled simulation snapshots a session at interval boundaries and
    later revives each snapshot under a detailed timing model. *)

type arch
(** The complete architectural state of a session — registers, memory,
    jbTable, register snapshots, SPM, program counter and instruction
    count — as a plain, [Marshal]-serializable value. The program itself
    is not included (it is immutable; pass it to {!resume}). *)

val capture : session -> arch
(** Snapshot the session's state. The capture {e aliases} the session's
    live arrays: serialize or deep-copy it before stepping the session
    further (this is what {!Sempe_sampling.Checkpoint} does). *)

val arch_mem : arch -> int array
val arch_with_mem : arch -> int array -> arch
(** Memory-image surgery for checkpoint serializers: the memory is by far
    the largest component and mostly zero, so [Sempe_sampling.Checkpoint]
    swaps it for a sparse encoding around [Marshal]. *)

val arch_instructions : arch -> int
(** Committed-instruction count at capture time. *)

val arch_halted : arch -> bool

val resume :
  ?sink:(Sempe_pipeline.Uop.event -> unit)
  -> ?warm:Sempe_pipeline.Warm.t
  -> Sempe_isa.Program.t
  -> arch
  -> session
(** Revive a captured state as a runnable session. The session takes
    ownership of the capture's arrays (unmarshal a fresh copy per resume).
    [sink] / [warm] as in {!start}. *)
