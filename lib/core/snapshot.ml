open Sempe_util

type phase = Nt_path | T_path

(* One frame per nesting level, pooled: frames are allocated only the first
   time a nesting depth is reached and reused for every later SecBlock at
   that depth. Entering/leaving a SecBlock is the hot non-straight-line
   event of a SeMPE execution (once per committed sJMP in both execution
   modes), and the old stack-of-records representation allocated two
   register arrays, two bit vectors and three heap blocks per entry. *)
type frame = {
  pre_state : int array;
  nt_state : int array;
  nt_modified : Bitvec.t;
  t_modified : Bitvec.t;
  mutable outcome : bool;
  mutable phase : phase;
}

type t = {
  mutable frames : frame array; (* pool; frames.(0 .. depth-1) are live *)
  mutable depth : int;
  mutable union_scratch : Bitvec.t; (* reused by [finish]; sized on demand *)
}

let create () = { frames = [||]; depth = 0; union_scratch = Bitvec.create 0 }

let depth t = t.depth

let new_frame nregs =
  {
    pre_state = Array.make nregs 0;
    nt_state = Array.make nregs 0;
    nt_modified = Bitvec.create nregs;
    t_modified = Bitvec.create nregs;
    outcome = false;
    phase = Nt_path;
  }

let push t ~regs ~outcome =
  let nregs = Array.length regs in
  if t.depth = Array.length t.frames then
    t.frames <- Array.append t.frames [| new_frame nregs |];
  let f = t.frames.(t.depth) in
  let f =
    (* Defensive: a pool frame sized for a different register file (only
       possible if one [t] is reused across configs) is rebuilt in place. *)
    if Array.length f.pre_state <> nregs then begin
      let f = new_frame nregs in
      t.frames.(t.depth) <- f;
      f
    end
    else f
  in
  Array.blit regs 0 f.pre_state 0 nregs;
  Bitvec.clear_all f.nt_modified;
  Bitvec.clear_all f.t_modified;
  f.outcome <- outcome;
  f.phase <- Nt_path;
  t.depth <- t.depth + 1

let top t =
  if t.depth = 0 then invalid_arg "Snapshot: no open SecBlock";
  Array.unsafe_get t.frames (t.depth - 1)

let current_phase t = (top t).phase

let note_write t r =
  if t.depth > 0 then begin
    let f = Array.unsafe_get t.frames (t.depth - 1) in
    let v = match f.phase with Nt_path -> f.nt_modified | T_path -> f.t_modified in
    Bitvec.set v r
  end

let end_nt_path t ~regs =
  let f = top t in
  if f.phase <> Nt_path then invalid_arg "Snapshot.end_nt_path: not in NT path";
  Array.blit regs 0 f.nt_state 0 (Array.length regs);
  (* Roll the live registers back to the pre-state so the T path starts from
     the same state the NT path did. Plain for-loops throughout this file
     rather than [Bitvec.iter_set] closures: these run per committed sJMP
     and a closure would allocate without flambda. *)
  for r = 0 to Array.length regs - 1 do
    if Bitvec.get f.nt_modified r then regs.(r) <- f.pre_state.(r)
  done;
  f.phase <- T_path;
  Bitvec.popcount f.nt_modified

let finish t ~regs =
  let f = top t in
  if f.phase <> T_path then invalid_arg "Snapshot.finish: NT path still open";
  if Bitvec.length t.union_scratch <> Bitvec.length f.nt_modified then
    t.union_scratch <- Bitvec.create (Bitvec.length f.nt_modified);
  let union = t.union_scratch in
  Bitvec.union_into union f.nt_modified f.t_modified;
  if not f.outcome then
    (* The NT path is the true path: registers it modified take their
       NT-state values; registers modified only by the (wrong) T path roll
       back to the pre-state. When the outcome is taken, the current values
       (the T path's results) are already correct — the hardware still reads
       every modified register from the SPM and overwrites it with itself so
       the restore cost cannot leak the outcome. *)
    for r = 0 to Array.length regs - 1 do
      if Bitvec.get union r then
        if Bitvec.get f.nt_modified r then regs.(r) <- f.nt_state.(r)
        else regs.(r) <- f.pre_state.(r)
    done;
  (* Propagate the modified union into the parent frame's current vector:
     an inner SecBlock's restore writes registers during the parent's
     path. *)
  if t.depth >= 2 then begin
    let parent = Array.unsafe_get t.frames (t.depth - 2) in
    let pv =
      match parent.phase with
      | Nt_path -> parent.nt_modified
      | T_path -> parent.t_modified
    in
    for r = 0 to Bitvec.length union - 1 do
      if Bitvec.get union r then Bitvec.set pv r
    done
  end;
  t.depth <- t.depth - 1;
  Bitvec.popcount union
