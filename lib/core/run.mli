(** One-call simulation harness: functional execution wired to the timing
    model, producing the combined report every experiment consumes. *)

type outcome = {
  exec : Exec.result;
  timing : Sempe_pipeline.Timing.report;
}

val simulate :
  ?support:Exec.support
  -> ?machine:Sempe_pipeline.Config.t
  -> ?predictor:Sempe_bpred.Predictor.t
  -> ?mem_words:int
  -> ?max_instrs:int
  -> ?forgiving_oob:bool
  -> ?fault:Exec.fault
  -> ?init_mem:(int array -> unit)
  -> ?observe:(Sempe_pipeline.Uop.event -> unit)
  -> ?sink:Sempe_obs.Sink.t
  -> Sempe_isa.Program.t
  -> outcome
(** [simulate prog] runs [prog] to [Halt] on a fresh machine. [support]
    defaults to [Sempe_hw]; [observe] additionally receives every event
    (after the timing model), for the security observables.

    [forgiving_oob] (default [true], the historical behavior) selects how
    wild memory accesses behave — see {!Exec.config}. Pass [false]
    (e.g. via [sempe-sim --strict-oob]) to make out-of-bounds accesses
    raise {!Exec.Out_of_bounds} instead of being clamped.

    [fault] (default {!Exec.No_fault}) injects a protocol bug for fuzzer
    self-tests — see {!Exec.fault}.

    [sink] attaches an observability sink ({!Sempe_obs.Sink}) as the
    timing model's probe for this run: per-µop pipeline spans, stall
    attribution and drain events flow to it. Sinks are passive — with or
    without one (and in particular with {!Sempe_obs.Sink.null}) the
    returned reports are identical. The caller owns the sink and must
    call its [close] itself (simulate does not). *)

val execute :
  ?support:Exec.support
  -> ?machine:Sempe_pipeline.Config.t
  -> ?mem_words:int
  -> ?max_instrs:int
  -> ?forgiving_oob:bool
  -> ?fault:Exec.fault
  -> ?init_mem:(int array -> unit)
  -> ?warm:Sempe_pipeline.Warm.t
  -> Sempe_isa.Program.t
  -> Exec.result
(** Functional-only run: no timing model, no µop events. With [warm] the
    run functionally warms caches and predictors as it goes (fast-forward
    mode of sampled simulation); without it this is the fastest way to get
    architectural results. Same defaults and exceptions as {!simulate}. *)

val cycles : outcome -> int

val overhead : baseline:outcome -> outcome -> float
(** Execution-time ratio [protected / baseline]. *)

val seconds : Sempe_pipeline.Config.t -> int -> float
(** Convert a cycle count to seconds at the configured clock. *)
