module Timing = Sempe_pipeline.Timing
module Config = Sempe_pipeline.Config

type outcome = {
  exec : Exec.result;
  timing : Timing.report;
}

let exec_config ~support ~(machine : Config.t) ~mem_words ~max_instrs
    ~forgiving_oob ~fault =
  {
    Exec.support;
    mem_words;
    max_instrs;
    spm = machine.Config.spm;
    jbtable_entries = machine.Config.jbtable_entries;
    forgiving_oob;
    fault;
  }

let simulate ?(support = Exec.Sempe_hw) ?(machine = Config.default) ?predictor
    ?(mem_words = Exec.default_config.Exec.mem_words)
    ?(max_instrs = Exec.default_config.Exec.max_instrs)
    ?(forgiving_oob = true) ?(fault = Exec.No_fault) ?init_mem ?observe ?sink
    prog =
  let probe = Option.map (fun s -> s.Sempe_obs.Sink.probe) sink in
  let timing = Timing.create ~config:machine ?predictor ?probe () in
  let feed =
    match observe with
    | None -> Timing.feed timing
    | Some f ->
      fun ev ->
        Timing.feed timing ev;
        f ev
  in
  let config =
    exec_config ~support ~machine ~mem_words ~max_instrs ~forgiving_oob ~fault
  in
  let exec = Exec.run ~config ?init_mem ~sink:feed prog in
  { exec; timing = Timing.report timing }

let execute ?(support = Exec.Sempe_hw) ?(machine = Config.default)
    ?(mem_words = Exec.default_config.Exec.mem_words)
    ?(max_instrs = Exec.default_config.Exec.max_instrs)
    ?(forgiving_oob = true) ?(fault = Exec.No_fault) ?init_mem ?warm prog =
  let config =
    exec_config ~support ~machine ~mem_words ~max_instrs ~forgiving_oob ~fault
  in
  Exec.finish (Exec.start ~config ?init_mem ?warm prog)

let cycles o = o.timing.Timing.cycles

let overhead ~baseline o =
  Sempe_util.Stats.ratio ~num:(cycles o) ~den:(cycles baseline)

let seconds (machine : Config.t) c =
  float_of_int c /. (machine.Config.clock_ghz *. 1e9)
