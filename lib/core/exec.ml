open Sempe_isa
module Uop = Sempe_pipeline.Uop
module Warm = Sempe_pipeline.Warm
module Spm = Sempe_mem.Spm

type support = Legacy | Sempe_hw

type fault = No_fault | Skip_restore | Skip_nt_restore

let fault_name = function
  | No_fault -> "none"
  | Skip_restore -> "skip-restore"
  | Skip_nt_restore -> "skip-nt-restore"

let fault_of_string = function
  | "none" -> Some No_fault
  | "skip-restore" -> Some Skip_restore
  | "skip-nt-restore" -> Some Skip_nt_restore
  | _ -> None

type config = {
  support : support;
  mem_words : int;
  max_instrs : int;
  spm : Spm.config;
  jbtable_entries : int;
  forgiving_oob : bool;
  fault : fault;
}

let default_config =
  {
    support = Sempe_hw;
    mem_words = 1 lsl 20;
    max_instrs = 200_000_000;
    spm = Spm.default_config;
    jbtable_entries = Spm.default_config.Spm.max_snapshots;
    forgiving_oob = true;
    fault = No_fault;
  }

exception Out_of_bounds of { pc : int; addr : int }
exception Budget_exceeded of int

type result = {
  regs : int array;
  memory : int array;
  dyn_instrs : int;
  dyn_sjmps : int;
  max_nesting : int;
  spm : Spm.t;
}

type state = {
  cfg : config;
  prog : Program.t;
  regs : int array;
  mem : int array;
  jb : Jbtable.t;
  snaps : Snapshot.t;
  spm : Spm.t;
  sink : Uop.event -> unit;
  (* [emit] is false when no sink was supplied: the µop events would be
     discarded anyway, so fast-forward execution skips allocating them. *)
  emit : bool;
  (* Fast-forward functional warming: when present, every architectural
     step drives the shared {!Sempe_pipeline.Warm} update protocol — the
     same calls, in the same order, that {!Sempe_pipeline.Timing} makes
     when it consumes the committed µop stream — so caches and predictors
     end up in the state a detailed run would have produced. *)
  warm : Warm.t option;
  mutable pc : int;
  mutable count : int;
  mutable sjmps : int;
  mutable max_nesting : int;
  mutable halted : bool;
}

let warm_fetch st =
  match st.warm with
  | Some w -> ignore (Warm.fetch w ~pc:st.pc : int)
  | None -> ()

let warm_data st ~addr ~write =
  match st.warm with
  | Some w -> ignore (Warm.data w ~pc:st.pc ~word_addr:addr ~write : int)
  | None -> ()

let warm_cond st ~taken ~target =
  match st.warm with
  | Some w -> ignore (Warm.cond_branch w ~pc:st.pc ~taken ~target : Warm.cond)
  | None -> ()

let warm_jump st ~target =
  match st.warm with
  | Some w -> ignore (Warm.taken_transfer w ~pc:st.pc ~target : Warm.transfer)
  | None -> ()

let warm_call st ~target ~return_to =
  match st.warm with
  | Some w -> ignore (Warm.call w ~pc:st.pc ~target ~return_to : Warm.transfer)
  | None -> ()

let warm_ret st ~target =
  match st.warm with
  | Some w -> ignore (Warm.ret w ~target : Warm.target_pred)
  | None -> ()

let warm_indirect st ~target =
  match st.warm with
  | Some w -> ignore (Warm.indirect w ~pc:st.pc ~target : Warm.target_pred)
  | None -> ()

let write_reg st r v =
  if r <> Reg.zero then begin
    st.regs.(r) <- v;
    Snapshot.note_write st.snaps r
  end

let read_reg st r = st.regs.(r)

(* Resolve a word address, clamping or failing on wild accesses. Returns the
   address actually used (for the cache model) and whether it is valid. *)
let resolve_addr st addr =
  if addr >= 0 && addr < st.cfg.mem_words then (addr, true)
  else if st.cfg.forgiving_oob then
    (((addr mod st.cfg.mem_words) + st.cfg.mem_words) mod st.cfg.mem_words, false)
  else raise (Out_of_bounds { pc = st.pc; addr })

let emit_commit st instr ~mem_addr control =
  if st.emit then
    st.sink (Uop.Commit (Uop.of_instr ~pc:st.pc instr ~mem_addr control))

let emit_plain st instr = emit_commit st instr ~mem_addr:0 Uop.Ctl_none

let emit_drain st ~reason ~spm_cycles =
  if st.emit then st.sink (Uop.Drain { reason; spm_cycles })

(* Fault injection for the differential fuzzer's self-test: run a snapshot
   restore phase with its register writes suppressed. The snapshot stack
   bookkeeping (frame pop, SPM transfer sizes) still happens — only the
   architectural effect of the restore is lost. For compiled programs this
   is architecturally silent on its own (the memory-to-memory codegen
   leaves no register live across an eosJMP); the observable half of the
   same seeded bug lives in the ShadowMemory lowering — see
   Sempe_lang.Shadow.privatize and Sempe_workloads.Harness.transform. *)
let with_fault st which f =
  if st.cfg.fault = which then begin
    let saved = Array.copy st.regs in
    let r = f () in
    Array.blit saved 0 st.regs 0 (Array.length saved);
    r
  end
  else f ()

(* Enter a SecBlock at a committed sJMP (Sempe_hw only). *)
let enter_secblock st cond rs1 rs2 target instr =
  let outcome = Instr.eval_cond cond (read_reg st rs1) (read_reg st rs2) in
  ignore (Jbtable.push st.jb);
  Jbtable.commit_sjmp st.jb ~dest:target ~outcome;
  emit_commit st instr ~mem_addr:0
    (Uop.Ctl_branch { taken = outcome; target; secure = true });
  let cycles = Spm.push_full_save st.spm in
  Snapshot.push st.snaps ~regs:st.regs ~outcome;
  if Snapshot.depth st.snaps > st.max_nesting then
    st.max_nesting <- Snapshot.depth st.snaps;
  emit_drain st ~reason:Uop.Drain_enter_secblock ~spm_cycles:cycles;
  st.sjmps <- st.sjmps + 1;
  st.pc <- st.pc + 1

(* eosJMP under Sempe_hw: consult the jbTable. Outside any secure region the
   instruction decodes as a NOP, like on legacy hardware. *)
let do_eosjmp st instr =
  if Jbtable.is_empty st.jb then begin
    emit_plain st instr;
    st.pc <- st.pc + 1
  end
  else
    match Jbtable.on_eosjmp st.jb with
    | Jbtable.Jump_back dest ->
      emit_commit st instr ~mem_addr:0 (Uop.Ctl_jumpback { target = dest });
      let nt_mods =
        with_fault st Skip_nt_restore (fun () ->
            Snapshot.end_nt_path st.snaps ~regs:st.regs)
      in
      let c1 = Spm.save_modified st.spm ~modified:nt_mods in
      let c2 = Spm.read_modified st.spm ~modified:nt_mods in
      emit_drain st ~reason:Uop.Drain_after_nt_path ~spm_cycles:(c1 + c2);
      st.pc <- dest
    | Jbtable.Release ->
      emit_plain st instr;
      let union =
        with_fault st Skip_restore (fun () ->
            Snapshot.finish st.snaps ~regs:st.regs)
      in
      let cycles = Spm.restore st.spm ~modified_union:union in
      emit_drain st ~reason:Uop.Drain_exit_secblock ~spm_cycles:cycles;
      st.pc <- st.pc + 1

let step st =
  let instr = st.prog.Program.code.(st.pc) in
  (* Same per-instruction warming order as the timing model's µop path:
     instruction fetch, then any data access, then control flow. *)
  warm_fetch st;
  match instr with
  | Instr.Nop ->
    emit_plain st instr;
    st.pc <- st.pc + 1
  | Instr.Alu (op, rd, rs1, rs2) ->
    emit_plain st instr;
    write_reg st rd (Instr.eval_alu op (read_reg st rs1) (read_reg st rs2));
    st.pc <- st.pc + 1
  | Instr.Alui (op, rd, rs1, imm) ->
    emit_plain st instr;
    write_reg st rd (Instr.eval_alu op (read_reg st rs1) imm);
    st.pc <- st.pc + 1
  | Instr.Li (rd, imm) ->
    emit_plain st instr;
    write_reg st rd imm;
    st.pc <- st.pc + 1
  | Instr.Ld (rd, base, off) ->
    let addr, ok = resolve_addr st (read_reg st base + off) in
    warm_data st ~addr ~write:false;
    emit_commit st instr ~mem_addr:addr Uop.Ctl_none;
    write_reg st rd (if ok then st.mem.(addr) else 0);
    st.pc <- st.pc + 1
  | Instr.St (rs, base, off) ->
    let addr, ok = resolve_addr st (read_reg st base + off) in
    warm_data st ~addr ~write:true;
    emit_commit st instr ~mem_addr:addr Uop.Ctl_none;
    if ok then st.mem.(addr) <- read_reg st rs;
    st.pc <- st.pc + 1
  | Instr.Cmov (rd, rc, rs) ->
    emit_plain st instr;
    if read_reg st rc <> 0 then write_reg st rd (read_reg st rs);
    st.pc <- st.pc + 1
  | Instr.Br { cond; rs1; rs2; target; secure } ->
    let hw_secure = secure && st.cfg.support = Sempe_hw in
    if hw_secure then enter_secblock st cond rs1 rs2 target instr
    else begin
      let taken = Instr.eval_cond cond (read_reg st rs1) (read_reg st rs2) in
      warm_cond st ~taken ~target;
      emit_commit st instr ~mem_addr:0
        (Uop.Ctl_branch { taken; target; secure = false });
      st.pc <- (if taken then target else st.pc + 1)
    end
  | Instr.Jmp target ->
    warm_jump st ~target;
    emit_commit st instr ~mem_addr:0 (Uop.Ctl_jump { target });
    st.pc <- target
  | Instr.Call target ->
    warm_call st ~target ~return_to:(st.pc + 1);
    emit_commit st instr ~mem_addr:0
      (Uop.Ctl_call { target; return_to = st.pc + 1 });
    write_reg st Reg.ra (st.pc + 1);
    st.pc <- target
  | Instr.Jr r ->
    let target = read_reg st r in
    if target < 0 || target >= Program.length st.prog then
      raise (Out_of_bounds { pc = st.pc; addr = target });
    warm_indirect st ~target;
    emit_commit st instr ~mem_addr:0 (Uop.Ctl_indirect { target });
    st.pc <- target
  | Instr.Ret ->
    let target = read_reg st Reg.ra in
    if target < 0 || target >= Program.length st.prog then
      raise (Out_of_bounds { pc = st.pc; addr = target });
    warm_ret st ~target;
    emit_commit st instr ~mem_addr:0 (Uop.Ctl_ret { target });
    st.pc <- target
  | Instr.Eosjmp ->
    if st.cfg.support = Sempe_hw then do_eosjmp st instr
    else begin
      emit_plain st instr;
      st.pc <- st.pc + 1
    end
  | Instr.Halt ->
    emit_plain st instr;
    st.halted <- true

type session = state

let start ?(config = default_config) ?init_mem ?sink ?warm prog =
  let emit, sink =
    match sink with Some s -> (true, s) | None -> (false, fun _ -> ())
  in
  let st =
    {
      cfg = config;
      prog;
      regs = Array.make Reg.count 0;
      mem = Array.make config.mem_words 0;
      jb = Jbtable.create ~entries:config.jbtable_entries ();
      snaps = Snapshot.create ();
      spm = Spm.create ~config:config.spm ();
      sink;
      emit;
      warm;
      pc = prog.Program.entry;
      count = 0;
      sjmps = 0;
      max_nesting = 0;
      halted = false;
    }
  in
  st.regs.(Reg.sp) <- config.mem_words;
  st.regs.(Reg.gp) <- 0;
  (match init_mem with Some f -> f st.mem | None -> ());
  st

let step_slice st n =
  let stop = st.count + n in
  while (not st.halted) && st.count < stop do
    if st.count >= st.cfg.max_instrs then raise (Budget_exceeded st.count);
    step st;
    st.count <- st.count + 1
  done;
  st.halted

let halted st = st.halted
let instructions st = st.count

let finish st =
  while not st.halted do
    if st.count >= st.cfg.max_instrs then raise (Budget_exceeded st.count);
    step st;
    st.count <- st.count + 1
  done;
  {
    regs = st.regs;
    memory = st.mem;
    dyn_instrs = st.count;
    dyn_sjmps = st.sjmps;
    max_nesting = st.max_nesting;
    spm = st.spm;
  }

let run ?config ?init_mem ?sink prog = finish (start ?config ?init_mem ?sink prog)

(* ---- architectural snapshots ------------------------------------------- *)

(* Everything a session owns except the (immutable, shared) program and the
   sink/warm plumbing, as a plain record of plain data: registers, memory,
   jbTable, register snapshots, SPM, and the scalar cursor. The fields
   alias the live session's arrays — serialize (or deep-copy) the capture
   before stepping the session further. *)
type arch = {
  a_cfg : config;
  a_regs : int array;
  a_mem : int array;
  a_jb : Jbtable.t;
  a_snaps : Snapshot.t;
  a_spm : Spm.t;
  a_pc : int;
  a_count : int;
  a_sjmps : int;
  a_max_nesting : int;
  a_halted : bool;
}

let capture st =
  {
    a_cfg = st.cfg;
    a_regs = st.regs;
    a_mem = st.mem;
    a_jb = st.jb;
    a_snaps = st.snaps;
    a_spm = st.spm;
    a_pc = st.pc;
    a_count = st.count;
    a_sjmps = st.sjmps;
    a_max_nesting = st.max_nesting;
    a_halted = st.halted;
  }

let arch_mem a = a.a_mem
let arch_with_mem a mem = { a with a_mem = mem }
let arch_instructions a = a.a_count
let arch_halted a = a.a_halted

let resume ?sink ?warm prog arch =
  let emit, sink =
    match sink with Some s -> (true, s) | None -> (false, fun _ -> ())
  in
  {
    cfg = arch.a_cfg;
    prog;
    regs = arch.a_regs;
    mem = arch.a_mem;
    jb = arch.a_jb;
    snaps = arch.a_snaps;
    spm = arch.a_spm;
    sink;
    emit;
    warm;
    pc = arch.a_pc;
    count = arch.a_count;
    sjmps = arch.a_sjmps;
    max_nesting = arch.a_max_nesting;
    halted = arch.a_halted;
  }
