open Sempe_isa
module Uop = Sempe_pipeline.Uop
module Warm = Sempe_pipeline.Warm
module Spm = Sempe_mem.Spm

type support = Legacy | Sempe_hw

type fault = No_fault | Skip_restore | Skip_nt_restore

let fault_name = function
  | No_fault -> "none"
  | Skip_restore -> "skip-restore"
  | Skip_nt_restore -> "skip-nt-restore"

let fault_of_string = function
  | "none" -> Some No_fault
  | "skip-restore" -> Some Skip_restore
  | "skip-nt-restore" -> Some Skip_nt_restore
  | _ -> None

type config = {
  support : support;
  mem_words : int;
  max_instrs : int;
  spm : Spm.config;
  jbtable_entries : int;
  forgiving_oob : bool;
  fault : fault;
}

let default_config =
  {
    support = Sempe_hw;
    mem_words = 1 lsl 20;
    max_instrs = 200_000_000;
    spm = Spm.default_config;
    jbtable_entries = Spm.default_config.Spm.max_snapshots;
    forgiving_oob = true;
    fault = No_fault;
  }

exception Out_of_bounds of { pc : int; addr : int }
exception Budget_exceeded of int

type result = {
  regs : int array;
  memory : int array;
  dyn_instrs : int;
  dyn_sjmps : int;
  max_nesting : int;
  spm : Spm.t;
}

type state = {
  cfg : config;
  prog : Program.t;
  regs : int array;
  mem : int array;
  jb : Jbtable.t;
  snaps : Snapshot.t;
  spm : Spm.t;
  sink : Uop.event -> unit;
  (* [emit] is false when no sink was supplied: the µop events would be
     discarded anyway, so fast-forward execution skips producing them. *)
  emit : bool;
  (* Fast-forward functional warming: when present, every architectural
     step drives the shared {!Sempe_pipeline.Warm} update protocol — the
     same calls, in the same order, that {!Sempe_pipeline.Timing} makes
     when it consumes the committed µop stream — so caches and predictors
     end up in the state a detailed run would have produced. *)
  warm : Warm.t option;
  mutable pc : int;
  mutable count : int;
  mutable sjmps : int;
  mutable max_nesting : int;
  mutable halted : bool;
  (* Decoded micro-op cache: one thunk per static pc, specialized at
     session creation (opcode, operands, secure-ness, OOB policy, sink and
     warm presence all resolved once). The per-step loop is then a single
     indexed indirect call instead of re-matching the [Instr.t] tree.
     Rebuilt by [start]/[resume]; never part of a captured [arch]. *)
  mutable code : (unit -> unit) array;
}

(* Fault injection for the differential fuzzer's self-test: run a snapshot
   restore phase with its register writes suppressed. The snapshot stack
   bookkeeping (frame pop, SPM transfer sizes) still happens — only the
   architectural effect of the restore is lost. For compiled programs this
   is architecturally silent on its own (the memory-to-memory codegen
   leaves no register live across an eosJMP); the observable half of the
   same seeded bug lives in the ShadowMemory lowering — see
   Sempe_lang.Shadow.privatize and Sempe_workloads.Harness.transform. *)
(* The fault comparison happens once at predecode and the slow path is
   written out at each site: passing [fun () -> ...] to a combinator per
   committed eosJMP would allocate a closure without flambda. *)

(* ALU/condition semantics specialized at decode time: each predecoded
   thunk holds a direct pointer to its operation instead of re-matching
   the op constructor per dynamic execution. *)
let alu_fn : Instr.alu_op -> int -> int -> int = function
  | Instr.Add -> ( + )
  | Instr.Sub -> ( - )
  | Instr.Mul -> ( * )
  | Instr.Div -> fun a b -> if b = 0 then 0 else a / b
  | Instr.Rem -> fun a b -> if b = 0 then 0 else a mod b
  | Instr.And -> ( land )
  | Instr.Or -> ( lor )
  | Instr.Xor -> ( lxor )
  | Instr.Shl -> fun a b -> a lsl (b land 63)
  | Instr.Shr -> fun a b -> a asr (b land 63)
  | Instr.Slt -> fun a b -> if a < b then 1 else 0
  | Instr.Sle -> fun a b -> if a <= b then 1 else 0
  | Instr.Seq -> fun a b -> if a = b then 1 else 0
  | Instr.Sne -> fun a b -> if a <> b then 1 else 0

let cond_fn : Instr.cond -> int -> int -> bool = function
  | Instr.Eq -> ( = )
  | Instr.Ne -> ( <> )
  | Instr.Lt -> ( < )
  | Instr.Ge -> ( >= )
  | Instr.Le -> ( <= )
  | Instr.Gt -> ( > )

(* Build the decoded micro-op cache for a session. Every thunk ends by
   setting [st.pc]; the driver loops [st.code.(st.pc) ()].

   Warming order inside each thunk matches the timing model's µop path
   exactly: instruction fetch, then any data access, then control flow.

   Commit events reuse one predecoded µop record per static pc (static
   fields filled here, dynamic fields — memory address, branch outcome,
   indirect target — written just before each emit), so the instrumented
   path allocates nothing per instruction. Sinks must not retain the
   record (see {!Sempe_pipeline.Uop}). *)
let predecode st =
  let cfg = st.cfg in
  let mw = cfg.mem_words in
  let forgiving = cfg.forgiving_oob in
  let sempe = cfg.support = Sempe_hw in
  let plen = Program.length st.prog in
  let regs = st.regs and mem = st.mem in
  let snaps = st.snaps and jb = st.jb and spm = st.spm in
  let emit = st.emit and sink = st.sink in
  let warm = st.warm in
  let fault_nt = cfg.fault = Skip_nt_restore in
  let fault_restore = cfg.fault = Skip_restore in
  let wr r v =
    if r <> Reg.zero then begin
      regs.(r) <- v;
      Snapshot.note_write snaps r
    end
  in
  (* Control-flow mirror of the data-side clamp: a wild indirect target is
     wrapped into the program under forgiving mode, and traps otherwise. *)
  let resolve_target pc target =
    if target >= 0 && target < plen then target
    else if forgiving then ((target mod plen) + plen) mod plen
    else raise (Out_of_bounds { pc; addr = target })
  in
  let decode pc instr =
    let u = Uop.of_instr ~pc instr ~mem_addr:0 in
    let ev = Uop.Commit u in
    match instr with
    | Instr.Nop ->
      fun () ->
        (match warm with
         | Some w -> ignore (Warm.fetch w ~pc : int)
         | None -> ());
        if emit then sink ev;
        st.pc <- pc + 1
    | Instr.Alu (op, rd, rs1, rs2) ->
      let f = alu_fn op in
      fun () ->
        (match warm with
         | Some w -> ignore (Warm.fetch w ~pc : int)
         | None -> ());
        if emit then sink ev;
        wr rd (f regs.(rs1) regs.(rs2));
        st.pc <- pc + 1
    | Instr.Alui (op, rd, rs1, imm) ->
      let f = alu_fn op in
      fun () ->
        (match warm with
         | Some w -> ignore (Warm.fetch w ~pc : int)
         | None -> ());
        if emit then sink ev;
        wr rd (f regs.(rs1) imm);
        st.pc <- pc + 1
    | Instr.Li (rd, imm) ->
      fun () ->
        (match warm with
         | Some w -> ignore (Warm.fetch w ~pc : int)
         | None -> ());
        if emit then sink ev;
        wr rd imm;
        st.pc <- pc + 1
    | Instr.Ld (rd, base, off) ->
      fun () ->
        (match warm with
         | Some w -> ignore (Warm.fetch w ~pc : int)
         | None -> ());
        let addr = regs.(base) + off in
        if addr >= 0 && addr < mw then begin
          (match warm with
           | Some w -> ignore (Warm.data w ~pc ~word_addr:addr ~write:false : int)
           | None -> ());
          if emit then begin
            u.Uop.mem_addr <- addr;
            sink ev
          end;
          wr rd mem.(addr)
        end
        else if forgiving then begin
          (* clamp the cache address, read as zero *)
          let a = ((addr mod mw) + mw) mod mw in
          (match warm with
           | Some w -> ignore (Warm.data w ~pc ~word_addr:a ~write:false : int)
           | None -> ());
          if emit then begin
            u.Uop.mem_addr <- a;
            sink ev
          end;
          wr rd 0
        end
        else raise (Out_of_bounds { pc; addr });
        st.pc <- pc + 1
    | Instr.St (rs, base, off) ->
      fun () ->
        (match warm with
         | Some w -> ignore (Warm.fetch w ~pc : int)
         | None -> ());
        let addr = regs.(base) + off in
        if addr >= 0 && addr < mw then begin
          (match warm with
           | Some w -> ignore (Warm.data w ~pc ~word_addr:addr ~write:true : int)
           | None -> ());
          if emit then begin
            u.Uop.mem_addr <- addr;
            sink ev
          end;
          mem.(addr) <- regs.(rs)
        end
        else if forgiving then begin
          (* clamp the cache address, drop the store *)
          let a = ((addr mod mw) + mw) mod mw in
          (match warm with
           | Some w -> ignore (Warm.data w ~pc ~word_addr:a ~write:true : int)
           | None -> ());
          if emit then begin
            u.Uop.mem_addr <- a;
            sink ev
          end
        end
        else raise (Out_of_bounds { pc; addr });
        st.pc <- pc + 1
    | Instr.Cmov (rd, rc, rs) ->
      fun () ->
        (match warm with
         | Some w -> ignore (Warm.fetch w ~pc : int)
         | None -> ());
        if emit then sink ev;
        if regs.(rc) <> 0 then wr rd regs.(rs);
        st.pc <- pc + 1
    | Instr.Br { cond; rs1; rs2; target; secure } when secure && sempe ->
      (* Committed sJMP: enter a SecBlock (Sempe_hw only). *)
      u.Uop.ctl <- Uop.Ctl_branch;
      u.Uop.secure <- true;
      u.Uop.target <- target;
      let cf = cond_fn cond in
      fun () ->
        (match warm with
         | Some w -> ignore (Warm.fetch w ~pc : int)
         | None -> ());
        let outcome = cf regs.(rs1) regs.(rs2) in
        ignore (Jbtable.push jb);
        Jbtable.commit_sjmp jb ~dest:target ~outcome;
        if emit then begin
          u.Uop.taken <- outcome;
          sink ev
        end;
        let cycles = Spm.push_full_save spm in
        Snapshot.push snaps ~regs ~outcome;
        if Snapshot.depth snaps > st.max_nesting then
          st.max_nesting <- Snapshot.depth snaps;
        if emit then
          sink
            (Uop.Drain
               { reason = Uop.Drain_enter_secblock; spm_cycles = cycles });
        st.sjmps <- st.sjmps + 1;
        st.pc <- pc + 1
    | Instr.Br { cond; rs1; rs2; target; secure = _ } ->
      (* ordinary predicted branch (non-secure, or SecPrefix on legacy) *)
      u.Uop.ctl <- Uop.Ctl_branch;
      u.Uop.target <- target;
      let cf = cond_fn cond in
      fun () ->
        (match warm with
         | Some w -> ignore (Warm.fetch w ~pc : int)
         | None -> ());
        let taken = cf regs.(rs1) regs.(rs2) in
        (match warm with
         | Some w -> ignore (Warm.cond_branch w ~pc ~taken ~target : Warm.cond)
         | None -> ());
        if emit then begin
          u.Uop.taken <- taken;
          sink ev
        end;
        st.pc <- (if taken then target else pc + 1)
    | Instr.Jmp target ->
      u.Uop.ctl <- Uop.Ctl_jump;
      u.Uop.target <- target;
      fun () ->
        (match warm with
         | Some w ->
           ignore (Warm.fetch w ~pc : int);
           ignore (Warm.taken_transfer w ~pc ~target : Warm.transfer)
         | None -> ());
        if emit then sink ev;
        st.pc <- target
    | Instr.Call target ->
      u.Uop.ctl <- Uop.Ctl_call;
      u.Uop.target <- target;
      u.Uop.return_to <- pc + 1;
      fun () ->
        (match warm with
         | Some w ->
           ignore (Warm.fetch w ~pc : int);
           ignore
             (Warm.call w ~pc ~target ~return_to:(pc + 1) : Warm.transfer)
         | None -> ());
        if emit then sink ev;
        wr Reg.ra (pc + 1);
        st.pc <- target
    | Instr.Jr r ->
      u.Uop.ctl <- Uop.Ctl_indirect;
      fun () ->
        (match warm with
         | Some w -> ignore (Warm.fetch w ~pc : int)
         | None -> ());
        let target = resolve_target pc regs.(r) in
        (match warm with
         | Some w -> ignore (Warm.indirect w ~pc ~target : Warm.target_pred)
         | None -> ());
        if emit then begin
          u.Uop.target <- target;
          sink ev
        end;
        st.pc <- target
    | Instr.Ret ->
      u.Uop.ctl <- Uop.Ctl_ret;
      fun () ->
        (match warm with
         | Some w -> ignore (Warm.fetch w ~pc : int)
         | None -> ());
        let target = resolve_target pc regs.(Reg.ra) in
        (match warm with
         | Some w -> ignore (Warm.ret w ~target : Warm.target_pred)
         | None -> ());
        if emit then begin
          u.Uop.target <- target;
          sink ev
        end;
        st.pc <- target
    | Instr.Eosjmp when sempe ->
      (* eosJMP under Sempe_hw: consult the jbTable. Outside any secure
         region the instruction decodes as a NOP, like on legacy
         hardware. The µop's control kind is dynamic (plain vs jump-back),
         so [ctl] is written per commit. *)
      fun () ->
        (match warm with
         | Some w -> ignore (Warm.fetch w ~pc : int)
         | None -> ());
        if Jbtable.is_empty jb then begin
          if emit then begin
            u.Uop.ctl <- Uop.Ctl_none;
            sink ev
          end;
          st.pc <- pc + 1
        end
        else begin
          match Jbtable.on_eosjmp jb with
          | Jbtable.Jump_back dest ->
            if emit then begin
              u.Uop.ctl <- Uop.Ctl_jumpback;
              u.Uop.target <- dest;
              sink ev
            end;
            let nt_mods =
              if fault_nt then begin
                let saved = Array.copy regs in
                let r = Snapshot.end_nt_path snaps ~regs in
                Array.blit saved 0 regs 0 (Array.length saved);
                r
              end
              else Snapshot.end_nt_path snaps ~regs
            in
            let c1 = Spm.save_modified spm ~modified:nt_mods in
            let c2 = Spm.read_modified spm ~modified:nt_mods in
            if emit then
              sink
                (Uop.Drain
                   { reason = Uop.Drain_after_nt_path; spm_cycles = c1 + c2 });
            st.pc <- dest
          | Jbtable.Release ->
            if emit then begin
              u.Uop.ctl <- Uop.Ctl_none;
              sink ev
            end;
            let union =
              if fault_restore then begin
                let saved = Array.copy regs in
                let r = Snapshot.finish snaps ~regs in
                Array.blit saved 0 regs 0 (Array.length saved);
                r
              end
              else Snapshot.finish snaps ~regs
            in
            let cycles = Spm.restore spm ~modified_union:union in
            if emit then
              sink
                (Uop.Drain
                   { reason = Uop.Drain_exit_secblock; spm_cycles = cycles });
            st.pc <- pc + 1
        end
    | Instr.Eosjmp ->
      (* legacy hardware: NOP *)
      fun () ->
        (match warm with
         | Some w -> ignore (Warm.fetch w ~pc : int)
         | None -> ());
        if emit then sink ev;
        st.pc <- pc + 1
    | Instr.Halt ->
      fun () ->
        (match warm with
         | Some w -> ignore (Warm.fetch w ~pc : int)
         | None -> ());
        if emit then sink ev;
        st.halted <- true
  in
  Array.mapi decode st.prog.Program.code

type session = state

let start ?(config = default_config) ?init_mem ?sink ?warm prog =
  let emit, sink =
    match sink with Some s -> (true, s) | None -> (false, fun _ -> ())
  in
  let st =
    {
      cfg = config;
      prog;
      regs = Array.make Reg.count 0;
      mem = Array.make config.mem_words 0;
      jb = Jbtable.create ~entries:config.jbtable_entries ();
      snaps = Snapshot.create ();
      spm = Spm.create ~config:config.spm ();
      sink;
      emit;
      warm;
      pc = prog.Program.entry;
      count = 0;
      sjmps = 0;
      max_nesting = 0;
      halted = false;
      code = [||];
    }
  in
  (* The stack grows down from the last valid word. (The top-of-memory
     address itself would be out of bounds: with the old [mem_words]
     initialization a first access through sp under forgiving mode wrapped
     to address 0 and aliased global data.) *)
  st.regs.(Reg.sp) <- config.mem_words - 1;
  st.regs.(Reg.gp) <- 0;
  (match init_mem with Some f -> f st.mem | None -> ());
  st.code <- predecode st;
  st

let step_slice st n =
  let stop = st.count + n in
  let code = st.code in
  let max_instrs = st.cfg.max_instrs in
  while (not st.halted) && st.count < stop do
    if st.count >= max_instrs then raise (Budget_exceeded st.count);
    code.(st.pc) ();
    st.count <- st.count + 1
  done;
  st.halted

let halted st = st.halted
let instructions st = st.count

let finish st =
  let code = st.code in
  let max_instrs = st.cfg.max_instrs in
  while not st.halted do
    if st.count >= max_instrs then raise (Budget_exceeded st.count);
    code.(st.pc) ();
    st.count <- st.count + 1
  done;
  {
    regs = st.regs;
    memory = st.mem;
    dyn_instrs = st.count;
    dyn_sjmps = st.sjmps;
    max_nesting = st.max_nesting;
    spm = st.spm;
  }

let run ?config ?init_mem ?sink prog = finish (start ?config ?init_mem ?sink prog)

(* ---- architectural snapshots ------------------------------------------- *)

(* Everything a session owns except the (immutable, shared) program and the
   sink/warm plumbing, as a plain record of plain data: registers, memory,
   jbTable, register snapshots, SPM, and the scalar cursor. The decoded
   micro-op cache is deliberately excluded — it holds closures (not
   marshalable) and is cheap to rebuild relative to any measured interval,
   so [resume] re-derives it from the program. The fields alias the live
   session's arrays — serialize (or deep-copy) the capture before stepping
   the session further. *)
type arch = {
  a_cfg : config;
  a_regs : int array;
  a_mem : int array;
  a_jb : Jbtable.t;
  a_snaps : Snapshot.t;
  a_spm : Spm.t;
  a_pc : int;
  a_count : int;
  a_sjmps : int;
  a_max_nesting : int;
  a_halted : bool;
}

let capture st =
  {
    a_cfg = st.cfg;
    a_regs = st.regs;
    a_mem = st.mem;
    a_jb = st.jb;
    a_snaps = st.snaps;
    a_spm = st.spm;
    a_pc = st.pc;
    a_count = st.count;
    a_sjmps = st.sjmps;
    a_max_nesting = st.max_nesting;
    a_halted = st.halted;
  }

let arch_mem a = a.a_mem
let arch_with_mem a mem = { a with a_mem = mem }
let arch_instructions a = a.a_count
let arch_halted a = a.a_halted

let resume ?sink ?warm prog arch =
  let emit, sink =
    match sink with Some s -> (true, s) | None -> (false, fun _ -> ())
  in
  let st =
    {
      cfg = arch.a_cfg;
      prog;
      regs = arch.a_regs;
      mem = arch.a_mem;
      jb = arch.a_jb;
      snaps = arch.a_snaps;
      spm = arch.a_spm;
      sink;
      emit;
      warm;
      pc = arch.a_pc;
      count = arch.a_count;
      sjmps = arch.a_sjmps;
      max_nesting = arch.a_max_nesting;
      halted = arch.a_halted;
      code = [||];
    }
  in
  st.code <- predecode st;
  st
