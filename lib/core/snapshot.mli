(** ArchRS — architectural register snapshots (§IV-F, Figure 6).

    One frame per nested SecBlock, stacked in step with the jbTable. A frame
    holds the register state captured before entering the SecBlock, the
    state captured after the NT path, and the two modified-bit vectors that
    decide which values the restore phase writes back. The nesting level is
    the frame's SPM offset.

    Frames are pooled per nesting depth and reused across SecBlocks, so
    entering and leaving a region allocates nothing after the deepest
    nesting level has been visited once. *)

(** Which path the innermost SecBlock is currently executing. *)
type phase = Nt_path | T_path

type t

val create : unit -> t

val depth : t -> int

val push : t -> regs:int array -> outcome:bool -> unit
(** Enter a SecBlock: capture [regs] as the pre-state. The new frame starts
    in {!Nt_path}. *)

val current_phase : t -> phase
(** @raise Invalid_argument when no frame is open. *)

val note_write : t -> Sempe_isa.Reg.t -> unit
(** Record that the executing path wrote a register. No-op outside any
    SecBlock. *)

val end_nt_path : t -> regs:int array -> int
(** First eosJMP: capture the NT state, restore [regs] (in place) to the
    pre-state for registers the NT path modified, and switch to {!T_path}.
    Returns the number of NT-modified registers (the SPM transfer size). *)

val finish : t -> regs:int array -> int
(** Second eosJMP: merge the correct values into [regs] according to the
    frame's outcome and modified vectors, pop the frame, and propagate the
    modified-register union into the parent frame's current vector (an
    inner SecBlock's restore writes registers during the parent's path).
    Returns the size of the modified union (the restore transfer reads every
    register modified in at least one path, regardless of outcome, so the
    restore time is secret-independent). *)
