(** Common interface for conditional branch direction predictors.

    The timing model consults the predictor for every committed conditional
    branch that is {e not} a secure jump (sJMP bypasses prediction entirely,
    §IV-E of the paper), then trains it with the actual outcome. *)

type t = {
  name : string;
  predict : pc:int -> bool;        (** predicted direction for the branch at [pc] *)
  update : pc:int -> taken:bool -> unit;  (** train with the resolved outcome *)
  reset : unit -> unit;            (** return to initial state *)
  snapshot_signature : unit -> int;
  (** A hash of the internal state. The security tests use it to check
      whether two executions left the predictor in distinguishable states
      (the branch predictor side channel of §I). *)
  save_state : unit -> string;
  (** The mutable internal state as a plain-data [Marshal] string — no
      closures, so the bytes survive [Marshal] without [Closures] and are
      not tied to the producing binary. Paired with {!load_state} this is
      what lets a sampling checkpoint revive a warmed predictor inside a
      freshly constructed instance. *)
  load_state : string -> unit;
  (** Overwrite the internal state with bytes from {!save_state} of an
      instance created with the same configuration.
      @raise Invalid_argument on a shape mismatch. *)
}

val always_taken : unit -> t
val always_not_taken : unit -> t
