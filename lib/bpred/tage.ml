type config = {
  num_tables : int;
  table_bits : int;
  tag_bits : int;
  min_history : int;
  max_history : int;
  base_bits : int;
}

let default_config =
  {
    num_tables = 6;
    table_bits = 10;
    tag_bits = 9;
    min_history = 4;
    max_history = 128;
    base_bits = 12;
  }

(* All tagged-component state lives in flat packed int arrays indexed
   [table * (1 lsl table_bits) + entry] instead of per-table arrays of
   entry records: a prediction walks a handful of int-array cells with no
   pointer chasing, and checkpointing a warmed predictor marshals three
   int arrays instead of a graph of thousands of records.

   e_ctr is a 3-bit signed counter in [-4, 3]; taken iff ctr >= 0.
   e_u is a 2-bit usefulness counter.

   The folded history registers (Seznec's circular shift registers, one
   index fold and two tag folds per table) are flattened the same way:
   their current values sit in [f_idx]/[f_tag1]/[f_tag2] and are updated
   incrementally — one xor per shifted-in bit — by [push_history], with
   the per-table output bit positions precomputed in [op_*]. *)
type t = {
  cfg : config;
  base : Counters.t;
  tsize : int; (* 1 lsl table_bits *)
  e_tag : int array; (* num_tables * tsize *)
  e_ctr : int array;
  e_u : int array;
  hist_len : int array; (* per-table geometric history lengths *)
  f_idx : int array; (* folded index register values, one per table *)
  f_tag1 : int array;
  f_tag2 : int array;
  op_idx : int array; (* hist_len mod fold width, per table *)
  op_tag1 : int array;
  op_tag2 : int array;
  history : Bytes.t; (* circular buffer of outcome bits *)
  mutable head : int; (* next write position *)
  mutable use_alt_on_new : int; (* 4-bit counter biasing weak entries *)
  mutable tick : int; (* aging clock for usefulness counters *)
}

let history_capacity = 1024

let geometric_lengths cfg =
  (* L(i) = min * (max/min)^(i/(n-1)), rounded, strictly increasing. *)
  let n = cfg.num_tables in
  let ratio =
    if n = 1 then 1.0
    else
      (float_of_int cfg.max_history /. float_of_int cfg.min_history)
      ** (1.0 /. float_of_int (n - 1))
  in
  let lens = Array.make n 0 in
  let prev = ref 0 in
  for i = 0 to n - 1 do
    let l =
      int_of_float (Float.round (float_of_int cfg.min_history *. (ratio ** float_of_int i)))
    in
    let l = max l (!prev + 1) in
    lens.(i) <- l;
    prev := l
  done;
  lens

let make cfg =
  let lens = geometric_lengths cfg in
  let n = cfg.num_tables in
  let tsize = 1 lsl cfg.table_bits in
  {
    cfg;
    base = Counters.create ~entries:(1 lsl cfg.base_bits) ~bits:2;
    tsize;
    e_tag = Array.make (n * tsize) 0;
    e_ctr = Array.make (n * tsize) 0;
    e_u = Array.make (n * tsize) 0;
    hist_len = lens;
    f_idx = Array.make n 0;
    f_tag1 = Array.make n 0;
    f_tag2 = Array.make n 0;
    op_idx = Array.init n (fun i -> lens.(i) mod cfg.table_bits);
    op_tag1 = Array.init n (fun i -> lens.(i) mod cfg.tag_bits);
    op_tag2 = Array.init n (fun i -> lens.(i) mod (cfg.tag_bits - 1));
    history = Bytes.make history_capacity '\000';
    head = 0;
    use_alt_on_new = 8;
    tick = 0;
  }

let push_history t bit =
  (* Update every folded register before shifting the raw history. This
     runs once per committed conditional branch in both execution modes,
     with [folded_step] written out inline (3 registers x num_tables calls
     per branch add up) and every record field hoisted out of the loop. *)
  let wi = t.cfg.table_bits and wt1 = t.cfg.tag_bits in
  let wt2 = t.cfg.tag_bits - 1 in
  let mi = (1 lsl wi) - 1 and m1 = (1 lsl wt1) - 1 and m2 = (1 lsl wt2) - 1 in
  let f_idx = t.f_idx and f_tag1 = t.f_tag1 and f_tag2 = t.f_tag2 in
  let op_idx = t.op_idx and op_tag1 = t.op_tag1 and op_tag2 = t.op_tag2 in
  let hist_len = t.hist_len in
  let history = t.history in
  let head = t.head in
  let hmask = history_capacity - 1 in
  for i = 0 to t.cfg.num_tables - 1 do
    let evicted =
      let pos =
        (head - Array.unsafe_get hist_len i + (2 * history_capacity)) land hmask
      in
      Char.code (Bytes.unsafe_get history pos)
    in
    let v = Array.unsafe_get f_idx i in
    let v' = ((v lsl 1) lor bit) land mi in
    let v' = v' lxor ((v lsr (wi - 1)) land 1) in
    Array.unsafe_set f_idx i
      ((v' lxor (evicted lsl Array.unsafe_get op_idx i)) land mi);
    let v = Array.unsafe_get f_tag1 i in
    let v' = ((v lsl 1) lor bit) land m1 in
    let v' = v' lxor ((v lsr (wt1 - 1)) land 1) in
    Array.unsafe_set f_tag1 i
      ((v' lxor (evicted lsl Array.unsafe_get op_tag1 i)) land m1);
    let v = Array.unsafe_get f_tag2 i in
    let v' = ((v lsl 1) lor bit) land m2 in
    let v' = v' lxor ((v lsr (wt2 - 1)) land 1) in
    Array.unsafe_set f_tag2 i
      ((v' lxor (evicted lsl Array.unsafe_get op_tag2 i)) land m2)
  done;
  Bytes.unsafe_set history head (Char.unsafe_chr bit);
  t.head <- (head + 1) land hmask

let table_index t i pc =
  let mask = t.tsize - 1 in
  (pc lxor (pc lsr (t.cfg.table_bits - i)) lxor Array.unsafe_get t.f_idx i)
  land mask

let table_tag t i pc =
  let mask = (1 lsl t.cfg.tag_bits) - 1 in
  (pc lxor Array.unsafe_get t.f_tag1 i lxor (Array.unsafe_get t.f_tag2 i lsl 1))
  land mask

(* Scratch lookup, preallocated per predictor instance and refilled in
   place by [lookup]: prediction runs once per committed conditional
   branch in both execution modes, and an immutable result record (plus
   the options inside it) would allocate there. -1 encodes "no matching
   component". [provider_idx]/[alt_idx] are flat cell indices
   (table * tsize + entry). *)
type lookup = {
  mutable provider : int; (* table index of the matching component *)
  mutable provider_idx : int;
  mutable alt : int; (* next-longest matching component *)
  mutable alt_idx : int;
  mutable base_idx : int;
}

let lookup t lk pc =
  lk.base_idx <- pc land ((1 lsl t.cfg.base_bits) - 1);
  lk.provider <- -1;
  lk.provider_idx <- 0;
  lk.alt <- -1;
  lk.alt_idx <- 0;
  (* While-loop scan from the longest table down, stopping once both the
     provider and alternate are known (a local [let rec] would allocate a
     closure per prediction without flambda). [table_index]/[table_tag]
     are written out inline with record fields hoisted: this runs once
     per committed conditional branch in both execution modes. *)
  let e_tag = t.e_tag and tsize = t.tsize in
  let f_idx = t.f_idx and f_tag1 = t.f_tag1 and f_tag2 = t.f_tag2 in
  let tbits = t.cfg.table_bits in
  let imask = tsize - 1 and tmask = (1 lsl t.cfg.tag_bits) - 1 in
  let i = ref (t.cfg.num_tables - 1) in
  while !i >= 0 && lk.alt < 0 do
    let j = !i in
    let idx =
      (pc lxor (pc lsr (tbits - j)) lxor Array.unsafe_get f_idx j) land imask
    in
    let cell = (j * tsize) + idx in
    let tag =
      (pc lxor Array.unsafe_get f_tag1 j lxor (Array.unsafe_get f_tag2 j lsl 1))
      land tmask
    in
    if Array.unsafe_get e_tag cell = tag then
      if lk.provider < 0 then begin
        lk.provider <- j;
        lk.provider_idx <- cell
      end
      else begin
        lk.alt <- j;
        lk.alt_idx <- cell
      end;
    decr i
  done

let alt_pred t lk =
  if lk.alt >= 0 then Array.unsafe_get t.e_ctr lk.alt_idx >= 0
  else Counters.taken t.base lk.base_idx

let is_weak_ctr c = c = 0 || c = -1

let predict_with t lk pc =
  lookup t lk pc;
  if lk.provider < 0 then Counters.taken t.base lk.base_idx
  else begin
    let ctr = Array.unsafe_get t.e_ctr lk.provider_idx in
    if
      is_weak_ctr ctr
      && Array.unsafe_get t.e_u lk.provider_idx = 0
      && t.use_alt_on_new >= 8
    then alt_pred t lk
    else ctr >= 0
  end

let sat_update t cell taken =
  let c = Array.unsafe_get t.e_ctr cell in
  if taken then (if c < 3 then Array.unsafe_set t.e_ctr cell (c + 1))
  else if c > -4 then Array.unsafe_set t.e_ctr cell (c - 1)

let allocate t lk pc taken =
  (* Try to claim a u=0 entry in a table longer than the provider. *)
  let start = if lk.provider >= 0 then lk.provider + 1 else 0 in
  let found = ref (-1) in
  let i = ref start in
  while !found < 0 && !i < t.cfg.num_tables do
    let cell = (!i * t.tsize) + table_index t !i pc in
    if Array.unsafe_get t.e_u cell = 0 then found := cell else incr i
  done;
  let cell = !found in
  if cell >= 0 then begin
    let i = cell / t.tsize in
    Array.unsafe_set t.e_tag cell (table_tag t i pc);
    Array.unsafe_set t.e_ctr cell (if taken then 0 else -1);
    Array.unsafe_set t.e_u cell 0
  end
  else
    (* Decay usefulness along the allocation path so progress is possible. *)
    for i = start to t.cfg.num_tables - 1 do
      let cell = (i * t.tsize) + table_index t i pc in
      let u = Array.unsafe_get t.e_u cell in
      if u > 0 then Array.unsafe_set t.e_u cell (u - 1)
    done

let age_usefulness t =
  t.tick <- t.tick + 1;
  if t.tick land 0x3ffff = 0 then
    for cell = 0 to Array.length t.e_u - 1 do
      let u = Array.unsafe_get t.e_u cell in
      if u > 0 then Array.unsafe_set t.e_u cell (u - 1)
    done

let update_with t lk pred pc taken =
  let altp = alt_pred t lk in
  (if lk.provider < 0 then begin
     Counters.train t.base lk.base_idx taken;
     if pred <> taken then allocate t lk pc taken
   end
   else begin
     let cell = lk.provider_idx in
     let ctr = Array.unsafe_get t.e_ctr cell in
     let provider_pred = ctr >= 0 in
     (* Track whether trusting weak new entries beats the alternate. *)
     if
       is_weak_ctr ctr
       && Array.unsafe_get t.e_u cell = 0
       && provider_pred <> altp
     then begin
       if altp = taken then begin
         if t.use_alt_on_new < 15 then t.use_alt_on_new <- t.use_alt_on_new + 1
       end
       else if t.use_alt_on_new > 0 then t.use_alt_on_new <- t.use_alt_on_new - 1
     end;
     sat_update t cell taken;
     if altp <> provider_pred then begin
       let u = Array.unsafe_get t.e_u cell in
       if provider_pred = taken then
         (if u < 3 then Array.unsafe_set t.e_u cell (u + 1))
       else if u > 0 then Array.unsafe_set t.e_u cell (u - 1)
     end;
     if lk.alt < 0 then Counters.train t.base lk.base_idx taken;
     if pred <> taken then allocate t lk pc taken
   end);
  age_usefulness t;
  push_history t (if taken then 1 else 0)

let signature t =
  (* Fold order (tables ascending, entries ascending) matches the
     record-based reference implementation bit for bit. *)
  let acc = ref (Counters.signature t.base) in
  for cell = 0 to Array.length t.e_tag - 1 do
    acc :=
      (!acc * 31)
      + (t.e_tag.(cell) lxor (t.e_ctr.(cell) + 4) lxor (t.e_u.(cell) lsl 16))
  done;
  !acc lxor t.head

let create ?(config = default_config) () =
  let t = make config in
  (* The protocol is strictly predict-then-update per branch (both
     execution modes go through [Warm.cond_branch]), and only [update]
     and [reset] mutate predictor state — so the lookup [update] needs is
     exactly the one [predict] just computed. Memoize it: the re-lookup
     was the single most expensive part of the update path. The scratch
     lookup and the memo cells are captured by both closures, so
     [Marshal.Closures] round-trips them with the rest of the state.
     [memo_pc = -1] means "stale": [lk] may not describe [pc], so update
     recomputes (refilling [lk] in place). *)
  let lk = { provider = -1; provider_idx = 0; alt = -1; alt_idx = 0; base_idx = 0 } in
  let memo_pc = ref (-1) in
  let memo_pred = ref false in
  {
    Predictor.name = "tage";
    predict =
      (fun ~pc ->
        let p = predict_with t lk pc in
        memo_pc := pc;
        memo_pred := p;
        p);
    update =
      (fun ~pc ~taken ->
        let pred =
          if !memo_pc = pc then !memo_pred else predict_with t lk pc
        in
        memo_pc := -1;
        update_with t lk pred pc taken);
    reset =
      (fun () ->
        memo_pc := -1;
        Counters.reset t.base;
        Array.fill t.e_tag 0 (Array.length t.e_tag) 0;
        Array.fill t.e_ctr 0 (Array.length t.e_ctr) 0;
        Array.fill t.e_u 0 (Array.length t.e_u) 0;
        Array.fill t.f_idx 0 (Array.length t.f_idx) 0;
        Array.fill t.f_tag1 0 (Array.length t.f_tag1) 0;
        Array.fill t.f_tag2 0 (Array.length t.f_tag2) 0;
        Bytes.fill t.history 0 history_capacity '\000';
        t.head <- 0;
        t.use_alt_on_new <- 8;
        t.tick <- 0);
    snapshot_signature = (fun () -> signature t);
    save_state =
      (* The internal record is plain data (flat arrays, bytes, scalars),
         so it marshals without [Closures] — the closures of this
         [Predictor.t] are not part of the checkpoint. *)
      (fun () -> Marshal.to_string t []);
    load_state =
      (fun s ->
        let t' = (Marshal.from_string s 0 : t) in
        if t'.cfg <> t.cfg then invalid_arg "Tage.load_state: config mismatch";
        Counters.copy_into ~src:t'.base ~dst:t.base;
        Array.blit t'.e_tag 0 t.e_tag 0 (Array.length t.e_tag);
        Array.blit t'.e_ctr 0 t.e_ctr 0 (Array.length t.e_ctr);
        Array.blit t'.e_u 0 t.e_u 0 (Array.length t.e_u);
        Array.blit t'.f_idx 0 t.f_idx 0 (Array.length t.f_idx);
        Array.blit t'.f_tag1 0 t.f_tag1 0 (Array.length t.f_tag1);
        Array.blit t'.f_tag2 0 t.f_tag2 0 (Array.length t.f_tag2);
        Bytes.blit t'.history 0 t.history 0 history_capacity;
        t.head <- t'.head;
        t.use_alt_on_new <- t'.use_alt_on_new;
        t.tick <- t'.tick;
        memo_pc := -1);
  }
