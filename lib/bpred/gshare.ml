let create ?(entries = 8192) ?(history_bits = 12) () =
  assert (entries land (entries - 1) = 0);
  let table = Counters.create ~entries ~bits:2 in
  let history = ref 0 in
  let mask = (1 lsl history_bits) - 1 in
  let index pc = (pc lxor !history) land (entries - 1) in
  {
    Predictor.name = "gshare";
    predict = (fun ~pc -> Counters.taken table (index pc));
    update =
      (fun ~pc ~taken ->
        Counters.train table (index pc) taken;
        history := ((!history lsl 1) lor (if taken then 1 else 0)) land mask);
    reset =
      (fun () ->
        Counters.reset table;
        history := 0);
    snapshot_signature = (fun () -> (Counters.signature table * 31) + !history);
    save_state = (fun () -> Marshal.to_string (table, !history) []);
    load_state =
      (fun s ->
        let table', history' = (Marshal.from_string s 0 : Counters.t * int) in
        Counters.copy_into ~src:table' ~dst:table;
        history := history');
  }
