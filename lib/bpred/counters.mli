(** Saturating counter tables shared by the simple predictors. *)

type t
(** A table of [n]-bit saturating up/down counters. *)

val create : entries:int -> bits:int -> t
(** All counters start at the weakly-not-taken midpoint. *)

val entries : t -> int

val taken : t -> int -> bool
(** [taken t i] is the direction encoded by counter [i] (msb set). *)

val train : t -> int -> bool -> unit
(** Saturating increment (taken) or decrement (not taken). *)

val reset : t -> unit

val copy_into : src:t -> dst:t -> unit
(** Overwrite [dst]'s counter values with [src]'s. The tables must have the
    same shape (entry count and bit width). Used to revive a checkpointed
    predictor state inside an already-constructed instance. *)

val signature : t -> int
(** Order-dependent hash of all counter values. *)
