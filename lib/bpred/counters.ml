type t = { table : int array; max : int; mid : int }

let create ~entries ~bits =
  assert (entries > 0 && bits >= 1 && bits <= 8);
  let max = (1 lsl bits) - 1 in
  let mid = 1 lsl (bits - 1) in
  { table = Array.make entries (mid - 1); max; mid }

let entries t = Array.length t.table

let taken t i = t.table.(i) >= t.mid

let train t i dir =
  if dir then begin
    if t.table.(i) < t.max then t.table.(i) <- t.table.(i) + 1
  end
  else if t.table.(i) > 0 then t.table.(i) <- t.table.(i) - 1

let reset t = Array.fill t.table 0 (Array.length t.table) (t.mid - 1)

let copy_into ~src ~dst =
  if
    Array.length src.table <> Array.length dst.table
    || src.max <> dst.max || src.mid <> dst.mid
  then invalid_arg "Counters.copy_into: shape mismatch";
  Array.blit src.table 0 dst.table 0 (Array.length src.table)

let signature t =
  Array.fold_left (fun acc v -> (acc * 31) + v + 1) 17 t.table
