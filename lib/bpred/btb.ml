type way = { mutable tag : int; mutable target : int; mutable lru : int }
(* tag = -1 encodes an invalid way. *)

type t = { sets : way array array; mutable clock : int }

let create ?(entries = 2048) ?(ways = 4) () =
  assert (entries mod ways = 0);
  let nsets = entries / ways in
  assert (nsets land (nsets - 1) = 0);
  {
    sets =
      Array.init nsets (fun _ ->
          Array.init ways (fun _ -> { tag = -1; target = 0; lru = 0 }));
    clock = 0;
  }

let set_of t pc = t.sets.(pc land (Array.length t.sets - 1))

let tag_of t pc = pc / Array.length t.sets

let lookup t ~pc =
  let set = set_of t pc and tag = tag_of t pc in
  let rec scan i =
    if i >= Array.length set then None
    else if set.(i).tag = tag then begin
      t.clock <- t.clock + 1;
      set.(i).lru <- t.clock;
      Some set.(i).target
    end
    else scan (i + 1)
  in
  scan 0

(* Same hit behavior (LRU touch included) as [lookup], without the option
   allocation; -1 encodes a miss. *)
let find t ~pc =
  let set = set_of t pc and tag = tag_of t pc in
  let rec scan i =
    if i >= Array.length set then -1
    else if set.(i).tag = tag then begin
      t.clock <- t.clock + 1;
      set.(i).lru <- t.clock;
      set.(i).target
    end
    else scan (i + 1)
  in
  scan 0

let update t ~pc ~target =
  let set = set_of t pc and tag = tag_of t pc in
  t.clock <- t.clock + 1;
  let rec scan i = if i >= Array.length set then None
    else if set.(i).tag = tag then Some set.(i) else scan (i + 1)
  in
  let victim () =
    Array.fold_left (fun best w -> if w.lru < best.lru then w else best) set.(0) set
  in
  let w = match scan 0 with Some w -> w | None -> victim () in
  w.tag <- tag;
  w.target <- target;
  w.lru <- t.clock

let reset t =
  Array.iter (fun set -> Array.iter (fun w -> w.tag <- -1; w.target <- 0; w.lru <- 0) set)
    t.sets;
  t.clock <- 0

let signature t =
  let acc = ref 1469598103 in
  Array.iter
    (fun set ->
      Array.iter (fun w -> acc := (!acc * 31) + (w.tag lxor (w.target lsl 1))) set)
    t.sets;
  !acc
