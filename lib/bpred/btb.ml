(* Way state in flat packed int arrays indexed [set * ways + way], same
   layout discipline as {!Cache} and {!Tage}: a lookup touches one
   contiguous handful of words, and a warmed BTB marshals three int
   arrays. tags.(i) = -1 encodes an invalid way. *)
type t = {
  nsets : int;
  set_shift : int; (* log2 nsets; sets are asserted a power of two *)
  ways : int;
  tags : int array;
  targets : int array;
  lru : int array;
  mutable clock : int;
}

let log2_pow2 n =
  let s = ref 0 in
  while 1 lsl !s < n do
    incr s
  done;
  !s

let create ?(entries = 2048) ?(ways = 4) () =
  assert (entries mod ways = 0);
  let nsets = entries / ways in
  assert (nsets land (nsets - 1) = 0);
  {
    nsets;
    set_shift = log2_pow2 nsets;
    ways;
    tags = Array.make entries (-1);
    targets = Array.make entries 0;
    lru = Array.make entries 0;
    clock = 0;
  }

let set_base t pc = (pc land (t.nsets - 1)) * t.ways

(* pcs are non-negative, so the shift equals the division by [nsets] of
   the record-based reference *)
let tag_of t pc = pc lsr t.set_shift

(* Allocation-free lookup with the LRU touch folded in; -1 encodes a
   miss. This is the per-branch hot path, hence the while-loop scan (a
   local [let rec] would allocate a closure per call without flambda). *)
let find t ~pc =
  let base = set_base t pc and tag = tag_of t pc in
  let stop = base + t.ways in
  let i = ref base in
  while !i < stop && Array.unsafe_get t.tags !i <> tag do
    incr i
  done;
  if !i < stop then begin
    t.clock <- t.clock + 1;
    Array.unsafe_set t.lru !i t.clock;
    Array.unsafe_get t.targets !i
  end
  else -1

let lookup t ~pc =
  let v = find t ~pc in
  if v < 0 then None else Some v

let update t ~pc ~target =
  let base = set_base t pc and tag = tag_of t pc in
  let stop = base + t.ways in
  t.clock <- t.clock + 1;
  let i = ref base in
  while !i < stop && Array.unsafe_get t.tags !i <> tag do
    incr i
  done;
  let w =
    if !i < stop then !i
    else begin
      (* First way with the minimum stamp, matching the record-based fold
         this replaced (strict < kept the earlier way on ties). *)
      let best = ref base in
      let best_lru = ref (Array.unsafe_get t.lru base) in
      for j = base + 1 to stop - 1 do
        let l = Array.unsafe_get t.lru j in
        if l < !best_lru then begin
          best := j;
          best_lru := l
        end
      done;
      !best
    end
  in
  Array.unsafe_set t.tags w tag;
  Array.unsafe_set t.targets w target;
  Array.unsafe_set t.lru w t.clock

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.targets 0 (Array.length t.targets) 0;
  Array.fill t.lru 0 (Array.length t.lru) 0;
  t.clock <- 0

let signature t =
  (* Fold order (sets ascending, ways ascending) matches the record-based
     layout this replaced bit for bit. *)
  let acc = ref 1469598103 in
  for i = 0 to Array.length t.tags - 1 do
    acc := (!acc * 31) + (t.tags.(i) lxor (t.targets.(i) lsl 1))
  done;
  !acc
