(** Return-address stack for predicting [Ret] targets. *)

type t

val create : ?depth:int -> unit -> t
(** [depth] defaults to 32. The stack wraps on overflow, as real hardware
    does, so deep recursion causes mispredicted returns. *)

val push : t -> int -> unit
val pop : t -> int option
(** [None] when the stack is empty. *)

val reset : t -> unit
val depth_used : t -> int

val pop_value : t -> int
(** Allocation-free {!pop}: the popped return address, or [-1] when the
    stack is empty (return addresses are instruction indices, hence
    non-negative). *)
