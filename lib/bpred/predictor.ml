type t = {
  name : string;
  predict : pc:int -> bool;
  update : pc:int -> taken:bool -> unit;
  reset : unit -> unit;
  snapshot_signature : unit -> int;
  save_state : unit -> string;
  load_state : string -> unit;
}

let constant name dir =
  {
    name;
    predict = (fun ~pc:_ -> dir);
    update = (fun ~pc:_ ~taken:_ -> ());
    reset = (fun () -> ());
    snapshot_signature = (fun () -> 0);
    save_state = (fun () -> "");
    load_state = (fun _ -> ());
  }

let always_taken () = constant "always-taken" true
let always_not_taken () = constant "always-not-taken" false
