type config = {
  num_tables : int;
  table_bits : int;
  tag_bits : int;
  min_history : int;
  max_history : int;
  base_bits : int;
}

let default_config =
  {
    num_tables = 4;
    table_bits = 8;
    tag_bits = 9;
    min_history = 4;
    max_history = 64;
    base_bits = 9;
  }

type entry = {
  mutable tag : int;       (* -1 = invalid *)
  mutable target : int;
  mutable conf : int;      (* 0..3 confidence *)
  mutable u : int;         (* usefulness *)
}

type table = {
  entries : entry array;
  history_length : int;
}

type t = {
  cfg : config;
  base : int array;        (* last-target table; -1 = unknown *)
  tables : table array;
  mutable history : int;   (* folded path history *)
  mutable tick : int;
}

let geometric_lengths cfg =
  let n = cfg.num_tables in
  let ratio =
    if n = 1 then 1.0
    else
      (float_of_int cfg.max_history /. float_of_int cfg.min_history)
      ** (1.0 /. float_of_int (n - 1))
  in
  Array.init n (fun i ->
      max (i + 1)
        (int_of_float
           (Float.round (float_of_int cfg.min_history *. (ratio ** float_of_int i)))))

let make cfg =
  let lens = geometric_lengths cfg in
  {
    cfg;
    base = Array.make (1 lsl cfg.base_bits) (-1);
    tables =
      Array.init cfg.num_tables (fun i ->
          {
            entries =
              Array.init (1 lsl cfg.table_bits) (fun _ ->
                  { tag = -1; target = 0; conf = 0; u = 0 });
            history_length = lens.(i);
          });
    history = 0;
    tick = 0;
  }

let create ?(config = default_config) () = make config

(* Fold [len] bits of history with the pc into [bits] bits. *)
let index t i pc =
  let tb = t.tables.(i) in
  let mask = (1 lsl t.cfg.table_bits) - 1 in
  let h = t.history land ((1 lsl min 30 (tb.history_length * 2)) - 1) in
  (pc lxor (h * 2654435761) lxor (pc lsr (i + 3))) land mask

let tag_of t i pc =
  let tb = t.tables.(i) in
  let mask = (1 lsl t.cfg.tag_bits) - 1 in
  let h = t.history land ((1 lsl min 30 (tb.history_length * 2)) - 1) in
  (pc lxor (h * 40503) lxor (pc lsr 5)) land mask

let base_index t pc = pc land ((1 lsl t.cfg.base_bits) - 1)

let find_provider t pc =
  let rec scan i =
    if i < 0 then None
    else
      let idx = index t i pc in
      let e = t.tables.(i).entries.(idx) in
      if e.tag = tag_of t i pc then Some (i, e) else scan (i - 1)
  in
  scan (t.cfg.num_tables - 1)

let predict t ~pc =
  match find_provider t pc with
  | Some (_, e) -> Some e.target
  | None ->
    let b = t.base.(base_index t pc) in
    if b < 0 then None else Some b

(* Allocation-free [predict] for the per-indirect hot path; -1 encodes
   "no target known". Same provider scan, without the option/tuple. *)
let predict_value t ~pc =
  let rec scan i =
    if i < 0 then t.base.(base_index t pc)
    else
      let e = t.tables.(i).entries.(index t i pc) in
      if e.tag = tag_of t i pc then e.target else scan (i - 1)
  in
  scan (t.cfg.num_tables - 1)

let allocate t ~above pc target =
  let rec find i =
    if i >= t.cfg.num_tables then None
    else
      let idx = index t i pc in
      if t.tables.(i).entries.(idx).u = 0 then Some (i, idx) else find (i + 1)
  in
  match find above with
  | Some (i, idx) ->
    let e = t.tables.(i).entries.(idx) in
    e.tag <- tag_of t i pc;
    e.target <- target;
    e.conf <- 0;
    e.u <- 0
  | None ->
    for i = above to t.cfg.num_tables - 1 do
      let e = t.tables.(i).entries.(index t i pc) in
      if e.u > 0 then e.u <- e.u - 1
    done

let update t ~pc ~target =
  (match find_provider t pc with
   | Some (i, e) ->
     if e.target = target then begin
       if e.conf < 3 then e.conf <- e.conf + 1;
       if e.u < 3 then e.u <- e.u + 1
     end
     else if e.conf > 0 then e.conf <- e.conf - 1
     else begin
       e.target <- target;
       if e.u > 0 then e.u <- e.u - 1;
       allocate t ~above:(i + 1) pc target
     end
   | None ->
     let bi = base_index t pc in
     if t.base.(bi) >= 0 && t.base.(bi) <> target then allocate t ~above:0 pc target;
     t.base.(bi) <- target);
  t.tick <- t.tick + 1;
  if t.tick land 0xffff = 0 then
    Array.iter
      (fun tb -> Array.iter (fun e -> if e.u > 0 then e.u <- e.u - 1) tb.entries)
      t.tables;
  (* path history: fold in the target's low bits *)
  t.history <- ((t.history lsl 3) lxor (target land 0x3f)) land 0x3fffffff

let reset t =
  Array.fill t.base 0 (Array.length t.base) (-1);
  Array.iter
    (fun tb ->
      Array.iter
        (fun e ->
          e.tag <- -1;
          e.target <- 0;
          e.conf <- 0;
          e.u <- 0)
        tb.entries)
    t.tables;
  t.history <- 0;
  t.tick <- 0

let signature t =
  let acc = ref 77777 in
  Array.iter (fun b -> acc := (!acc * 31) + b + 2) t.base;
  Array.iter
    (fun tb ->
      Array.iter
        (fun e -> acc := (!acc * 131) lxor (e.tag + (e.target lsl 3) + e.conf))
        tb.entries)
    t.tables;
  !acc lxor t.history
