type config = {
  num_tables : int;
  table_bits : int;
  tag_bits : int;
  min_history : int;
  max_history : int;
  base_bits : int;
}

let default_config =
  {
    num_tables = 4;
    table_bits = 8;
    tag_bits = 9;
    min_history = 4;
    max_history = 64;
    base_bits = 9;
  }

(* Entry state in flat packed int arrays indexed
   [table * (1 lsl table_bits) + entry], same layout discipline as
   {!Tage}: no per-entry records to chase on the per-indirect hot path,
   and a warmed predictor checkpoint marshals four int arrays.
   e_tag = -1 encodes invalid; e_conf is a 0..3 confidence counter. *)
type t = {
  cfg : config;
  base : int array; (* last-target table; -1 = unknown *)
  tsize : int; (* 1 lsl table_bits *)
  e_tag : int array; (* num_tables * tsize; -1 = invalid *)
  e_target : int array;
  e_conf : int array;
  e_u : int array;
  hmask : int array; (* per-table folded path-history masks *)
  mutable history : int; (* folded path history *)
  mutable tick : int;
}

let geometric_lengths cfg =
  let n = cfg.num_tables in
  let ratio =
    if n = 1 then 1.0
    else
      (float_of_int cfg.max_history /. float_of_int cfg.min_history)
      ** (1.0 /. float_of_int (n - 1))
  in
  Array.init n (fun i ->
      max (i + 1)
        (int_of_float
           (Float.round (float_of_int cfg.min_history *. (ratio ** float_of_int i)))))

let make cfg =
  let lens = geometric_lengths cfg in
  let n = cfg.num_tables in
  let tsize = 1 lsl cfg.table_bits in
  {
    cfg;
    base = Array.make (1 lsl cfg.base_bits) (-1);
    tsize;
    e_tag = Array.make (n * tsize) (-1);
    e_target = Array.make (n * tsize) 0;
    e_conf = Array.make (n * tsize) 0;
    e_u = Array.make (n * tsize) 0;
    hmask = Array.init n (fun i -> (1 lsl min 30 (lens.(i) * 2)) - 1);
    history = 0;
    tick = 0;
  }

let create ?(config = default_config) () = make config

(* Fold the path history (masked to the table's window) with the pc into
   [table_bits] bits. *)
let index t i pc =
  let mask = t.tsize - 1 in
  let h = t.history land Array.unsafe_get t.hmask i in
  (pc lxor (h * 2654435761) lxor (pc lsr (i + 3))) land mask

let tag_of t i pc =
  let mask = (1 lsl t.cfg.tag_bits) - 1 in
  let h = t.history land Array.unsafe_get t.hmask i in
  (pc lxor (h * 40503) lxor (pc lsr 5)) land mask

let base_index t pc = pc land ((1 lsl t.cfg.base_bits) - 1)

(* Flat cell index of the longest-history matching component, -1 if none.
   While-loop scan: a local [let rec] would allocate a closure per
   indirect branch without flambda. *)
let find_provider_cell t pc =
  let found = ref (-1) in
  let i = ref (t.cfg.num_tables - 1) in
  while !found < 0 && !i >= 0 do
    let cell = (!i * t.tsize) + index t !i pc in
    if Array.unsafe_get t.e_tag cell = tag_of t !i pc then found := cell
    else decr i
  done;
  !found

let predict t ~pc =
  match find_provider_cell t pc with
  | -1 ->
    let b = t.base.(base_index t pc) in
    if b < 0 then None else Some b
  | cell -> Some t.e_target.(cell)

(* Allocation-free [predict] for the per-indirect hot path; -1 encodes
   "no target known". Same provider scan, without the option. *)
let predict_value t ~pc =
  let cell = find_provider_cell t pc in
  if cell < 0 then Array.unsafe_get t.base (base_index t pc)
  else Array.unsafe_get t.e_target cell

let allocate t ~above pc target =
  let found = ref (-1) in
  let i = ref above in
  while !found < 0 && !i < t.cfg.num_tables do
    let cell = (!i * t.tsize) + index t !i pc in
    if Array.unsafe_get t.e_u cell = 0 then found := cell else incr i
  done;
  let cell = !found in
  if cell >= 0 then begin
    let i = cell / t.tsize in
    Array.unsafe_set t.e_tag cell (tag_of t i pc);
    Array.unsafe_set t.e_target cell target;
    Array.unsafe_set t.e_conf cell 0;
    Array.unsafe_set t.e_u cell 0
  end
  else
    for i = above to t.cfg.num_tables - 1 do
      let cell = (i * t.tsize) + index t i pc in
      let u = Array.unsafe_get t.e_u cell in
      if u > 0 then Array.unsafe_set t.e_u cell (u - 1)
    done

let update t ~pc ~target =
  (let cell = find_provider_cell t pc in
   if cell >= 0 then begin
     if Array.unsafe_get t.e_target cell = target then begin
       let conf = Array.unsafe_get t.e_conf cell in
       if conf < 3 then Array.unsafe_set t.e_conf cell (conf + 1);
       let u = Array.unsafe_get t.e_u cell in
       if u < 3 then Array.unsafe_set t.e_u cell (u + 1)
     end
     else begin
       let conf = Array.unsafe_get t.e_conf cell in
       if conf > 0 then Array.unsafe_set t.e_conf cell (conf - 1)
       else begin
         Array.unsafe_set t.e_target cell target;
         let u = Array.unsafe_get t.e_u cell in
         if u > 0 then Array.unsafe_set t.e_u cell (u - 1);
         allocate t ~above:((cell / t.tsize) + 1) pc target
       end
     end
   end
   else begin
     let bi = base_index t pc in
     if t.base.(bi) >= 0 && t.base.(bi) <> target then allocate t ~above:0 pc target;
     t.base.(bi) <- target
   end);
  t.tick <- t.tick + 1;
  if t.tick land 0xffff = 0 then
    for cell = 0 to Array.length t.e_u - 1 do
      let u = Array.unsafe_get t.e_u cell in
      if u > 0 then Array.unsafe_set t.e_u cell (u - 1)
    done;
  (* path history: fold in the target's low bits *)
  t.history <- ((t.history lsl 3) lxor (target land 0x3f)) land 0x3fffffff

let reset t =
  Array.fill t.base 0 (Array.length t.base) (-1);
  Array.fill t.e_tag 0 (Array.length t.e_tag) (-1);
  Array.fill t.e_target 0 (Array.length t.e_target) 0;
  Array.fill t.e_conf 0 (Array.length t.e_conf) 0;
  Array.fill t.e_u 0 (Array.length t.e_u) 0;
  t.history <- 0;
  t.tick <- 0

let signature t =
  (* Fold order (base, then tables ascending, entries ascending) matches
     the record-based layout this replaced bit for bit. *)
  let acc = ref 77777 in
  Array.iter (fun b -> acc := (!acc * 31) + b + 2) t.base;
  for cell = 0 to Array.length t.e_tag - 1 do
    acc :=
      (!acc * 131)
      lxor (t.e_tag.(cell) + (t.e_target.(cell) lsl 3) + t.e_conf.(cell))
  done;
  !acc lxor t.history
