(** Branch target buffer: caches targets of taken branches and jumps.

    The timing model charges a front-end redirect bubble when a taken
    control transfer misses in the BTB even though its direction was
    predicted correctly. *)

type t

val create : ?entries:int -> ?ways:int -> unit -> t
(** Set-associative with LRU; [entries] defaults to 2048, [ways] to 4. *)

val lookup : t -> pc:int -> int option
(** Predicted target for the instruction at [pc], if cached. *)

val update : t -> pc:int -> target:int -> unit

val reset : t -> unit

val signature : t -> int
(** Hash of the table contents, for the security observables. *)

val find : t -> pc:int -> int
(** Allocation-free {!lookup} for the per-transfer hot path: returns the
    cached target, or [-1] when [pc] misses (targets are instruction
    indices, hence non-negative). Touches the LRU state exactly as
    {!lookup} does. *)
