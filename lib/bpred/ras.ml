type t = { buf : int array; mutable top : int; mutable count : int }

let create ?(depth = 32) () = { buf = Array.make depth 0; top = 0; count = 0 }

(* wrap-on-increment/decrement instead of [mod]: push/pop run once per
   call/return in both execution modes *)
let push t v =
  t.buf.(t.top) <- v;
  t.top <- (let p = t.top + 1 in if p = Array.length t.buf then 0 else p);
  if t.count < Array.length t.buf then t.count <- t.count + 1

let pop t =
  if t.count = 0 then None
  else begin
    t.top <- (let p = t.top - 1 in if p < 0 then Array.length t.buf - 1 else p);
    t.count <- t.count - 1;
    Some t.buf.(t.top)
  end

let reset t =
  t.top <- 0;
  t.count <- 0

let depth_used t = t.count

(* Allocation-free [pop]; -1 encodes an empty stack. *)
let pop_value t =
  if t.count = 0 then -1
  else begin
    t.top <- (let p = t.top - 1 in if p < 0 then Array.length t.buf - 1 else p);
    t.count <- t.count - 1;
    t.buf.(t.top)
  end
