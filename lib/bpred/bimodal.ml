let create ?(entries = 4096) () =
  assert (entries land (entries - 1) = 0);
  let table = Counters.create ~entries ~bits:2 in
  let index pc = pc land (entries - 1) in
  {
    Predictor.name = "bimodal";
    predict = (fun ~pc -> Counters.taken table (index pc));
    update = (fun ~pc ~taken -> Counters.train table (index pc) taken);
    reset = (fun () -> Counters.reset table);
    snapshot_signature = (fun () -> Counters.signature table);
    save_state = (fun () -> Marshal.to_string table []);
    load_state =
      (fun s ->
        Counters.copy_into ~src:(Marshal.from_string s 0 : Counters.t) ~dst:table);
  }
