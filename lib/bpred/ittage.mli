(** ITTAGE indirect-target predictor (Seznec, 2011) — the 6KB component of
    the paper's Table II.

    Same skeleton as TAGE but entries carry a full target address instead
    of a direction counter: a last-target base table backs tagged tables
    indexed with geometrically longer global-history folds; prediction
    comes from the longest matching component, and a mispredicted target
    allocates an entry in a longer table. The history is fed with the
    low bits of each resolved indirect target. *)

type config = {
  num_tables : int;    (** default 4 *)
  table_bits : int;    (** log2 entries per table, default 8 *)
  tag_bits : int;      (** default 9 *)
  min_history : int;   (** default 4 *)
  max_history : int;   (** default 64 *)
  base_bits : int;     (** log2 entries of the last-target table, default 9 *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

val predict : t -> pc:int -> int option
(** Predicted target for the indirect jump at [pc]; [None] when nothing is
    known yet (treated as a misprediction by the pipeline). *)

val update : t -> pc:int -> target:int -> unit
(** Train with the resolved target and advance the path history. *)

val reset : t -> unit

val signature : t -> int
(** State hash for the security observables. *)

val predict_value : t -> pc:int -> int
(** Allocation-free {!predict}: the predicted target, or [-1] when no
    target is known yet. *)
