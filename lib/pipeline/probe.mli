(** Timing-model instrumentation hook.

    A probe receives one {!uop_event} per committed µop — carrying the
    full per-stage cycle assignment the timing model computed for it — and
    one {!drain_event} per SeMPE drain. Probes are passive: the model
    never reads anything back, so attaching one cannot perturb a single
    cycle, and [Timing.create] without a probe pays nothing (no event is
    even allocated).

    The observability library ({!Sempe_obs}) builds its per-PC profiles
    and Perfetto trace sinks on top of this interface. *)

type uop_event = {
  uop : Uop.t;
  fetch : int;         (** cycle the µop was fetched *)
  dispatch : int;      (** cycle it entered the back end *)
  issue : int;         (** cycle it won an issue port *)
  complete : int;      (** cycle its result was ready *)
  commit : int;        (** cycle it retired *)
  bucket : Stall.bucket;
      (** the constraint that bound this µop's timeline (critical path) *)
  attributed : int;
      (** commit-frontier cycles charged to [bucket] for this µop; the sum
          over a run (plus the base cycle 0) equals the total cycle count *)
  mispredicted : bool; (** this µop caused a front-end redirect *)
  dcache_miss : bool;  (** load whose latency exceeded the pipelined DL1 *)
  il1_line : int;
      (** IL1 line this µop's fetch accessed, or [-1] when it rode the
          previously fetched line (no cache access at all) *)
  fetch_extra : int;
      (** extra fetch latency beyond the pipelined IL1 hit (0 = hit) *)
  mem_extra : int;
      (** extra data-access latency beyond the pipelined DL1 hit for loads
          {e and} stores (0 = DL1 hit, or not a memory µop) *)
}

type drain_event = {
  reason : Uop.drain_reason;
  spm_cycles : int;    (** SPM transfer cycles of this event *)
  start : int;         (** commit frontier when the drain began *)
  resume : int;        (** cycle dispatch may resume *)
}

type t = {
  on_uop : uop_event -> unit;
  on_drain : drain_event -> unit;
}

val null : t
(** Discards every event. *)
