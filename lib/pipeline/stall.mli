(** CPI stall-stack buckets.

    Every commit-slot cycle of a run is attributed to exactly one bucket
    (see {!Timing.report}): when the commit frontier advances past a µop,
    the advance is charged to the most specific constraint that bound that
    µop's timeline — walking the critical path backwards from commit
    through completion, issue, operand readiness, dispatch and fetch. The
    buckets therefore sum exactly to the total cycle count, which is the
    invariant the test suite asserts on every workload. *)

type bucket =
  | Base           (** ideal-machine work: dataflow, FU latency, commit BW *)
  | Icache         (** instruction-cache miss stalls at fetch *)
  | Redirect       (** mispredict / BTB-miss redirect bubbles *)
  | Rob_full       (** dispatch blocked on a full ROB *)
  | Iq_full        (** dispatch blocked on a full issue queue *)
  | Lq_full        (** dispatch blocked on a full load queue *)
  | Sq_full        (** dispatch blocked on a full store queue *)
  | Dcache         (** load misses beyond the pipelined DL1 latency *)
  | Fu_contention  (** issue-port / load-port contention *)
  | Drain          (** SeMPE pipeline drains + SPM transfer cycles *)

val all : bucket list
(** Every bucket, in {!index} order. *)

val count : int

val index : bucket -> int
(** Dense index in [0 .. count-1]; {!Timing.report}[.stall_stack] is
    indexed by it. *)

val name : bucket -> string
(** Short stable identifier, e.g. ["rob-full"] (used in JSON output). *)

val describe : bucket -> string
(** One-line human description for the profile tables. *)
