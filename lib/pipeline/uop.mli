(** Dynamic micro-operations and pipeline events.

    The functional interpreter streams one {!event} per committed
    instruction (plus drain events for the SeMPE snapshot machinery) into
    the timing model, in commit order.

    {b Reuse contract.} To keep the commit path allocation-free, the
    interpreter predecodes one {!t} per static instruction and reuses it
    for every dynamic execution of that pc, mutating only the dynamic
    fields before each [Commit]. A sink must therefore consume the record
    inside the callback and never retain it (copy the fields it needs);
    every in-tree consumer — {!Timing}, the observability recorders, the
    profilers — already does. *)

(** Control-flow kind of a committed µop. Payload lives in the mutable
    [taken] / [target] / [return_to] / [secure] fields of {!t} so the
    constructors stay constant (no allocation when switching kinds). *)
type ctl =
  | Ctl_none
  | Ctl_branch  (** conditional; [taken], [target], [secure] are valid *)
  | Ctl_jump  (** direct jump; [target] is valid *)
  | Ctl_call  (** [target] and [return_to] are valid *)
  | Ctl_ret  (** [target] is valid *)
  | Ctl_indirect
      (** computed jump (Jr): [target] is valid, predicted by ITTAGE *)
  | Ctl_jumpback
      (** eosJMP consuming a jbTable entry: nextPC ([target]) comes from
          hardware, not from prediction *)

type t = {
  mutable pc : int;  (** instruction index *)
  mutable cls : Sempe_isa.Instr.iclass;
  mutable dst : int;  (** destination register, or {!no_dst} *)
  mutable srcs : int array;
      (** source registers; shared with the decoder — do not mutate *)
  mutable mem_addr : int;  (** word address; meaningful for load/store *)
  mutable ctl : ctl;
  mutable taken : bool;  (** branch outcome ([Ctl_branch]) *)
  mutable target : int;  (** taken/transfer destination (any control) *)
  mutable return_to : int;  (** return address ([Ctl_call]) *)
  mutable secure : bool;  (** sJMP ([Ctl_branch]) *)
}

val no_dst : int
(** [-1]: the µop writes no architectural register. *)

(** Why the SeMPE front end drained the pipeline. *)
type drain_reason =
  | Drain_enter_secblock  (** before entering a SecBlock (save all registers) *)
  | Drain_after_nt_path  (** at the first eosJMP (save modified, jump back) *)
  | Drain_exit_secblock  (** at the second eosJMP (restore) *)

type event =
  | Commit of t
  | Drain of { reason : drain_reason; spm_cycles : int }
      (** Pipeline drain: later instructions may not dispatch until all
          earlier ones have committed, plus [spm_cycles] of SPM transfer. *)

val make : unit -> t
(** A blank µop ([Cls_nop], no registers, [Ctl_none]) for callers that
    fill fields themselves. *)

val of_instr : pc:int -> Sempe_isa.Instr.t -> mem_addr:int -> t
(** Builds a fresh µop from a decoded instruction: class, destination and
    sources are derived from the instruction; [ctl] and the control-flow
    fields are left at their [Ctl_none] defaults for the caller to set.
    [mem_addr] is ignored for non-memory instructions. *)
