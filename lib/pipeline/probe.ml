type uop_event = {
  uop : Uop.t;
  fetch : int;
  dispatch : int;
  issue : int;
  complete : int;
  commit : int;
  bucket : Stall.bucket;
  attributed : int;
  mispredicted : bool;
  dcache_miss : bool;
  il1_line : int;
  fetch_extra : int;
  mem_extra : int;
}

type drain_event = {
  reason : Uop.drain_reason;
  spm_cycles : int;
  start : int;
  resume : int;
}

type t = {
  on_uop : uop_event -> unit;
  on_drain : drain_event -> unit;
}

let null = { on_uop = ignore; on_drain = ignore }
