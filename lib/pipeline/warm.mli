(** The warmable microarchitectural state of the machine — cache hierarchy,
    branch direction predictor, BTB, RAS, indirect-target predictor, and
    the fetch-line tracker that dedups instruction-cache accesses — bundled
    as one value with the update protocol both execution modes share.

    {!Timing} owns a [Warm.t] and routes every microarchitectural update
    through it; the fast-forward mode of [Sempe_core.Exec] drives the same
    functions directly, without any cycle accounting. Because both modes
    call the identical code in the identical order, the state a
    fast-forward (functional-warming) run leaves behind at instruction [n]
    is exactly the state a full detailed run has fed to its own [Warm.t]
    after [n] committed instructions — which is what makes
    checkpoint-and-measure sampling sound.

    {!freeze}/{!thaw} convert a [Warm.t] to and from a closure-free image
    of flat arrays and scalars that serializes with plain [Marshal] (no
    [Closures] flag, not tied to the producing binary) — the basis of
    [Sempe_sampling.Checkpoint]. *)

type t

val create :
  ?machine:Config.t -> ?predictor:Sempe_bpred.Predictor.t -> unit -> t
(** Fresh (cold) state for the given machine model. [predictor] defaults
    to a fresh TAGE. *)

val hierarchy : t -> Sempe_mem.Hierarchy.t
val predictor : t -> Sempe_bpred.Predictor.t
val btb : t -> Sempe_bpred.Btb.t
val ras : t -> Sempe_bpred.Ras.t
val ittage : t -> Sempe_bpred.Ittage.t

val lat_l1 : t -> int
(** The hierarchy's L1 hit latency (the pipelined-front-end baseline
    against which extra miss latency is measured). *)

val fetch : t -> pc:int -> int
(** Instruction fetch for the instruction at [pc]: accesses the IL1 only
    when [pc] leaves the previously fetched cache line. Returns the extra
    latency beyond the pipelined L1 hit (0 for a same-line fetch or an L1
    hit). *)

val fetch_line : t -> int
(** The IL1 line index of the most recent {!fetch} ([-1] before the first
    one). Comparing the value across a [fetch] call tells a passive
    observer whether that fetch touched the cache at all — used by the
    leakage witness to reconstruct the instruction-cache access stream
    without perturbing it. *)

val data : t -> pc:int -> word_addr:int -> write:bool -> int
(** Data access for one word; drives the DL1/L2 and both prefetchers.
    Returns the access latency. *)

type transfer = Btb_hit | Btb_miss

val taken_transfer : t -> pc:int -> target:int -> transfer
(** Correctly-anticipated taken control flow (jumps, calls, correctly
    predicted taken branches): consult and train the BTB. [Btb_miss] means
    the front end pays a decode-redirect bubble. *)

(** Constant constructors only: [cond_branch] runs once per committed
    conditional branch in both execution modes, and a payload-carrying
    result would allocate there. *)
type cond =
  | Cond_correct_not_taken
  | Cond_correct_taken_hit  (** taken, predicted, BTB had the target *)
  | Cond_correct_taken_miss  (** taken, predicted, decode-redirect bubble *)
  | Cond_mispredict

val cond_branch : t -> pc:int -> taken:bool -> target:int -> cond
(** A committed, non-secure conditional branch: consult and train the
    direction predictor, and the BTB as appropriate. *)

type target_pred = Pred_hit | Pred_miss

val call : t -> pc:int -> target:int -> return_to:int -> transfer
val ret : t -> target:int -> target_pred
val indirect : t -> pc:int -> target:int -> target_pred

type frozen
(** A closure-free image of the warm state: flat arrays, bytes and scalars
    only, safe for plain [Marshal]. The image aliases the live state — it
    must be serialized before the producing [t] is stepped further. *)

val freeze : t -> frozen

val thaw : ?predictor:Sempe_bpred.Predictor.t -> frozen -> t
(** Rebuild a live [Warm.t] from a frozen image. The direction predictor
    is reconstructed by loading the frozen private state into [predictor]
    (default: a fresh default-configuration TAGE).
    @raise Invalid_argument when the frozen state belongs to a different
    predictor kind than [predictor]. *)

val predictor_signature : t -> int
(** Combined hash over direction predictor, BTB and indirect predictor
    state — the branch-predictor side channel's observable. *)

val cache_signature : t -> int
