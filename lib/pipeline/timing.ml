open Sempe_isa
module Hierarchy = Sempe_mem.Hierarchy

(* Per-cycle resource counters, kept in a tagged ring so no per-event
   allocation is needed. The ring must be wider than the largest plausible
   spread between the oldest in-flight and the newest allocated cycle. *)
module Ports = struct
  type t = { use : int array; tag : int array; cap : int }

  let size = 1 lsl 15
  let mask = size - 1

  let create cap = { use = Array.make size 0; tag = Array.make size (-1); cap }

  (* Earliest cycle >= [c] with a free slot; claims it. While-loop (a
     local [let rec] would allocate a closure per µop without flambda). *)
  let alloc t c =
    let use = t.use and tag = t.tag and cap = t.cap in
    let c = ref c in
    let claimed = ref false in
    while not !claimed do
      let i = !c land mask in
      if Array.unsafe_get tag i <> !c then begin
        Array.unsafe_set tag i !c;
        Array.unsafe_set use i 1;
        claimed := true
      end
      else begin
        let u = Array.unsafe_get use i in
        if u < cap then begin
          Array.unsafe_set use i (u + 1);
          claimed := true
        end
        else incr c
      end
    done;
    !c
end

type t = {
  cfg : Config.t;
  (* All warmable microarchitectural state (caches, predictors, BTB, RAS,
     fetch-line tracker) lives in the Warm.t; the timing model holds only
     cycle bookkeeping. This is what lets a sampled run revive a
     functionally-warmed Warm.t inside a fresh timing model. *)
  warm : Warm.t;
  (* front end *)
  mutable fetch_cycle : int;
  mutable fetched_in_cycle : int;
  mutable stall_until : int;
  (* dataflow *)
  reg_ready : int array;
  (* capacity rings: index by occupancy counters *)
  rob_commit : int array;
  iq_issue : int array;
  lq_free : int array;
  sq_free : int array;
  mutable n_uops : int;
  mutable n_loads : int;
  mutable n_stores : int;
  (* ring cursors: [rob_pos = n_uops mod rob_entries] etc., maintained by
     wrap-on-increment so the per-µop path never divides *)
  mutable rob_pos : int;
  mutable iq_pos : int;
  mutable lq_pos : int;
  mutable sq_pos : int;
  issue_ports : Ports.t;
  load_ports : Ports.t;
  (* observability: stall-stack accounting is pure bookkeeping and never
     feeds back into a cycle assignment. The optional probe is captured by
     [feed_fn] at [create] time — see the staging note there. *)
  stalls : int array;
  mutable stall_reason : Stall.bucket;
  mutable c_fetch_cause : Stall.bucket;
  mutable c_dispatch_cause : Stall.bucket;
  (* per-µop fetch observables for the probe: IL1 line touched by the most
     recent [fetch] (-1 = rode the previous line) and its extra latency *)
  mutable c_il1_line : int;
  mutable c_fetch_extra : int;
  mutable c_mem_extra : int;
  (* stores in flight, a direct-mapped ring like [Ports]: slot
     [addr land store_mask] holds the word address of the youngest store
     mapping there and its completion cycle. A collision simply forgets the
     older store — forwarding is a performance heuristic, and a stale
     completion cycle from long ago loses the [max] against the load's own
     latency, so dropped entries can only cost forwarding, never corrupt a
     cycle. Replaces a Hashtbl (hashing + bucket chasing + amortized
     pruning) with two array words per store. *)
  store_addr : int array; (* -1 = empty *)
  store_done : int array;
  store_mask : int;
  (* commit *)
  mutable last_commit_cycle : int;
  mutable commits_in_cycle : int;
  mutable max_commit : int;
  (* statistics *)
  mutable s_instructions : int;
  mutable s_cond_branches : int;
  mutable s_mispredicts : int;
  mutable s_secure_branches : int;
  mutable s_drains : int;
  mutable s_spm_cycles : int;
  mutable s_loads : int;
  mutable s_stores : int;
  (* step loop staged at [create]: probe-attached vs probe-free variants of
     the feed path, so the no-sink hot path carries neither the option
     branch nor the probe-only observable writes. *)
  mutable feed_fn : Uop.event -> unit;
}

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let make ?(config = Config.default) ?predictor ?warm ?(store_slots = 4096) () =
  let warm =
    match warm with
    | Some w -> w (* revived (pre-warmed) state; [predictor] is ignored *)
    | None -> Warm.create ~machine:config ?predictor ()
  in
  let store_slots = round_pow2 (max 1 store_slots) in
  let t =
    {
      cfg = config;
      warm;
      fetch_cycle = 0;
      fetched_in_cycle = 0;
      stall_until = 0;
      reg_ready = Array.make Reg.count 0;
      rob_commit = Array.make config.Config.rob_entries 0;
      iq_issue = Array.make config.Config.iq_entries 0;
      lq_free = Array.make config.Config.lq_entries 0;
      sq_free = Array.make config.Config.sq_entries 0;
      n_uops = 0;
      n_loads = 0;
      n_stores = 0;
      rob_pos = 0;
      iq_pos = 0;
      lq_pos = 0;
      sq_pos = 0;
      issue_ports = Ports.create config.Config.issue_width;
      load_ports = Ports.create config.Config.load_issue;
      stalls = Array.make Stall.count 0;
      stall_reason = Stall.Base;
      c_fetch_cause = Stall.Base;
      c_dispatch_cause = Stall.Base;
      c_il1_line = -1;
      c_fetch_extra = 0;
      c_mem_extra = 0;
      store_addr = Array.make store_slots (-1);
      store_done = Array.make store_slots 0;
      store_mask = store_slots - 1;
      last_commit_cycle = -1;
      commits_in_cycle = 0;
      max_commit = 0;
      s_instructions = 0;
      s_cond_branches = 0;
      s_mispredicts = 0;
      s_secure_branches = 0;
      s_drains = 0;
      s_spm_cycles = 0;
      s_loads = 0;
      s_stores = 0;
      feed_fn = ignore;
    }
  in
  t

let config t = t.cfg
let hierarchy t = Warm.hierarchy t.warm
let warm_state t = t.warm

let store_entries t =
  let n = ref 0 in
  Array.iter (fun a -> if a >= 0 then incr n) t.store_addr;
  !n

let current_cycles t = t.max_commit + 1

let break_fetch_group t = t.fetched_in_cycle <- t.cfg.Config.fetch_width

(* All front-end stalls funnel through here so the stall stack knows *why*
   fetch was held back (redirect vs. SeMPE drain). *)
let raise_stall t cycle reason =
  if cycle > t.stall_until then begin
    t.stall_until <- cycle;
    t.stall_reason <- reason
  end

(* Assign a fetch cycle to the µop at [pc], honoring width, stalls and the
   instruction cache. [track_line] is a compile-time-known flag in each
   staged caller: the IL1-line observable exists only for the probe, and
   the probe-free path must not pay the two [Warm.fetch_line] reads and
   field writes per µop. Neither branch changes warm state or any cycle. *)
let[@inline] fetch t ~pc ~track_line =
  let cfg = t.cfg in
  let base =
    if t.fetched_in_cycle >= cfg.Config.fetch_width then t.fetch_cycle + 1
    else t.fetch_cycle
  in
  let f = max base t.stall_until in
  t.c_fetch_cause <- (if t.stall_until > base then t.stall_reason else Stall.Base);
  (* A hit costs no bubble beyond the pipelined front end; a miss stalls
     fetch for the extra latency. *)
  let extra =
    if track_line then begin
      let line_before = Warm.fetch_line t.warm in
      let extra = Warm.fetch t.warm ~pc in
      let line_after = Warm.fetch_line t.warm in
      t.c_il1_line <- (if line_after = line_before then -1 else line_after);
      t.c_fetch_extra <- extra;
      extra
    end
    else Warm.fetch t.warm ~pc
  in
  if extra > 0 then t.c_fetch_cause <- Stall.Icache;
  let f = f + extra in
  if f > t.fetch_cycle then begin
    t.fetch_cycle <- f;
    t.fetched_in_cycle <- 1
  end
  else t.fetched_in_cycle <- t.fetched_in_cycle + 1;
  f

(* Dispatch waits for back-end capacity: the µop [n - size] positions older
   must have freed its ROB/IQ/LQ/SQ entry. *)
let dispatch t ~fetch_time ~is_load ~is_store =
  let cfg = t.cfg in
  (* The bump steps are written out (not a local helper closing over [d]):
     a ref captured by a closure escapes and both would allocate per µop
     without flambda. *)
  let d = ref (fetch_time + cfg.Config.frontend_depth) in
  t.c_dispatch_cause <- Stall.Base;
  if t.n_uops >= Array.length t.rob_commit then begin
    let v = Array.unsafe_get t.rob_commit t.rob_pos + 1 in
    if v > !d then begin
      d := v;
      t.c_dispatch_cause <- Stall.Rob_full
    end
  end;
  if t.n_uops >= Array.length t.iq_issue then begin
    let v = Array.unsafe_get t.iq_issue t.iq_pos + 1 in
    if v > !d then begin
      d := v;
      t.c_dispatch_cause <- Stall.Iq_full
    end
  end;
  if is_load then begin
    if t.n_loads >= Array.length t.lq_free then begin
      let v = Array.unsafe_get t.lq_free t.lq_pos + 1 in
      if v > !d then begin
        d := v;
        t.c_dispatch_cause <- Stall.Lq_full
      end
    end
  end;
  if is_store then begin
    if t.n_stores >= Array.length t.sq_free then begin
      let v = Array.unsafe_get t.sq_free t.sq_pos + 1 in
      if v > !d then begin
        d := v;
        t.c_dispatch_cause <- Stall.Sq_full
      end
    end
  end;
  !d

let fu_latency t (cls : Instr.iclass) =
  let cfg = t.cfg in
  match cls with
  | Instr.Cls_int_mul -> cfg.Config.lat_int_mul
  | Instr.Cls_int_div -> cfg.Config.lat_int_div
  | Instr.Cls_nop | Instr.Cls_int_alu | Instr.Cls_branch | Instr.Cls_jump
  | Instr.Cls_eosjmp | Instr.Cls_halt ->
    cfg.Config.lat_int_alu
  | Instr.Cls_load | Instr.Cls_store ->
    (* memory latency added separately *)
    0

let commit t ~complete =
  let cfg = t.cfg in
  let c = max complete t.last_commit_cycle in
  let c =
    if c = t.last_commit_cycle && t.commits_in_cycle >= cfg.Config.retire_width then
      c + 1
    else c
  in
  if c = t.last_commit_cycle then t.commits_in_cycle <- t.commits_in_cycle + 1
  else begin
    t.last_commit_cycle <- c;
    t.commits_in_cycle <- 1
  end;
  if c > t.max_commit then t.max_commit <- c;
  c

(* Top-level control-flow helpers (not locals closing over the µop state):
   [handle_control] runs per committed µop, and local closures would
   allocate there without flambda. *)
let mispredict t ~complete =
  t.s_mispredicts <- t.s_mispredicts + 1;
  raise_stall t (complete + t.cfg.Config.redirect_penalty) Stall.Redirect;
  break_fetch_group t

(* Correctly predicted taken control flow: a BTB hit only breaks the
   fetch group; a miss adds a decode-redirect bubble. *)
let transfer t = function
  | Warm.Btb_hit -> break_fetch_group t
  | Warm.Btb_miss ->
    raise_stall t
      (t.fetch_cycle + t.cfg.Config.btb_miss_bubble)
      Stall.Redirect;
    break_fetch_group t

let handle_control t (u : Uop.t) ~complete =
  match u.Uop.ctl with
  | Uop.Ctl_none -> ()
  | Uop.Ctl_branch ->
    if u.Uop.secure then
      (* sJMP: the predictor is never consulted; fetch already continued at
         the fall-through, which is always the execution order (§IV-E). *)
      t.s_secure_branches <- t.s_secure_branches + 1
    else begin
      t.s_cond_branches <- t.s_cond_branches + 1;
      match
        Warm.cond_branch t.warm ~pc:u.Uop.pc ~taken:u.Uop.taken
          ~target:u.Uop.target
      with
      | Warm.Cond_mispredict -> mispredict t ~complete
      | Warm.Cond_correct_taken_hit -> transfer t Warm.Btb_hit
      | Warm.Cond_correct_taken_miss -> transfer t Warm.Btb_miss
      | Warm.Cond_correct_not_taken -> ()
    end
  | Uop.Ctl_jump ->
    transfer t (Warm.taken_transfer t.warm ~pc:u.Uop.pc ~target:u.Uop.target)
  | Uop.Ctl_call ->
    transfer t
      (Warm.call t.warm ~pc:u.Uop.pc ~target:u.Uop.target
         ~return_to:u.Uop.return_to)
  | Uop.Ctl_ret ->
    (match Warm.ret t.warm ~target:u.Uop.target with
     | Warm.Pred_hit -> break_fetch_group t
     | Warm.Pred_miss -> mispredict t ~complete)
  | Uop.Ctl_indirect ->
    (match Warm.indirect t.warm ~pc:u.Uop.pc ~target:u.Uop.target with
     | Warm.Pred_hit -> break_fetch_group t
     | Warm.Pred_miss -> mispredict t ~complete)
  | Uop.Ctl_jumpback ->
    (* eosJMP: nextPC comes from the jbTable at commit; the mandatory drain
       event that follows already charges the redirect. *)
    break_fetch_group t

(* The µop pipeline walk shared by both staged feed variants. Everything
   here feeds the report (cycles, stall stack, statistics), so the two
   variants must agree exactly — the sink-invisibility determinism test
   pins that the reports stay byte-identical. [track_line] is the only
   probe-conditional work and is constant-folded per caller.
   Returns the commit cycle and leaves (f, d, iss, complete, bucket,
   delta) observables in the scratch fields the probed caller reads. *)
type scratch = {
  mutable sc_fetch : int;
  mutable sc_dispatch : int;
  mutable sc_issue : int;
  mutable sc_complete : int;
  mutable sc_commit : int;
  mutable sc_delta : int;
  mutable sc_bucket : Stall.bucket;
  mutable sc_dcache_miss : bool;
}

let[@inline] feed_uop_core t (u : Uop.t) ~track_line (sc : scratch) =
  let cfg = t.cfg in
  let is_load = u.Uop.cls = Instr.Cls_load in
  let is_store = u.Uop.cls = Instr.Cls_store in
  let f = fetch t ~pc:u.Uop.pc ~track_line in
  let d = dispatch t ~fetch_time:f ~is_load ~is_store in
  let ready =
    (* plain for-loop: [srcs] is a predecoded array shared across commits,
       and this runs once per committed instruction *)
    let r = ref (d + 1) in
    let srcs = u.Uop.srcs in
    for i = 0 to Array.length srcs - 1 do
      let v = t.reg_ready.(Array.unsafe_get srcs i) in
      if v > !r then r := v
    done;
    !r
  in
  let iss = Ports.alloc t.issue_ports ready in
  let iss = if is_load then Ports.alloc t.load_ports iss else iss in
  t.c_mem_extra <- 0;
  let complete =
    if is_load then begin
      t.s_loads <- t.s_loads + 1;
      let lat =
        Warm.data t.warm ~pc:u.Uop.pc ~word_addr:u.Uop.mem_addr ~write:false
      in
      t.c_mem_extra <- lat - Warm.lat_l1 t.warm;
      let c = iss + lat in
      (* Store-to-load forwarding: a younger load of a word written by an
         in-flight store sees the value one cycle after the store data is
         ready. *)
      let slot = u.Uop.mem_addr land t.store_mask in
      if Array.unsafe_get t.store_addr slot = u.Uop.mem_addr then
        max c (Array.unsafe_get t.store_done slot + 1)
      else c
    end
    else if is_store then begin
      t.s_stores <- t.s_stores + 1;
      (* Store latency never gates commit (the SQ drains in the background),
         but the DL1/L2 response still tells a passive observer whether the
         store hit — keep it for the probe. *)
      let lat =
        Warm.data t.warm ~pc:u.Uop.pc ~word_addr:u.Uop.mem_addr ~write:true
      in
      t.c_mem_extra <- lat - Warm.lat_l1 t.warm;
      let c = iss + 1 in
      let slot = u.Uop.mem_addr land t.store_mask in
      Array.unsafe_set t.store_addr slot u.Uop.mem_addr;
      Array.unsafe_set t.store_done slot c;
      c
    end
    else iss + fu_latency t u.Uop.cls
  in
  if u.Uop.dst >= 0 then t.reg_ready.(u.Uop.dst) <- complete;
  let old_max = t.max_commit in
  let c = commit t ~complete in
  (* Record resource release times in the capacity rings, advancing the
     wrap-on-increment cursors ([pos = count mod size] without dividing). *)
  Array.unsafe_set t.rob_commit t.rob_pos c;
  t.rob_pos <-
    (let p = t.rob_pos + 1 in
     if p = Array.length t.rob_commit then 0 else p);
  Array.unsafe_set t.iq_issue t.iq_pos iss;
  t.iq_pos <-
    (let p = t.iq_pos + 1 in
     if p = Array.length t.iq_issue then 0 else p);
  if is_load then begin
    Array.unsafe_set t.lq_free t.lq_pos complete;
    t.lq_pos <-
      (let p = t.lq_pos + 1 in
       if p = Array.length t.lq_free then 0 else p);
    t.n_loads <- t.n_loads + 1
  end;
  if is_store then begin
    Array.unsafe_set t.sq_free t.sq_pos c;
    t.sq_pos <-
      (let p = t.sq_pos + 1 in
       if p = Array.length t.sq_free then 0 else p);
    t.n_stores <- t.n_stores + 1
  end;
  t.n_uops <- t.n_uops + 1;
  t.s_instructions <- t.s_instructions + 1;
  (* Stall-stack attribution: the cycles this µop advanced the commit
     frontier by are charged to the most specific constraint that bound
     its timeline, walking the critical path backwards from commit. The
     per-bucket sums (plus the base cycle 0) equal the total cycle count
     by construction. *)
  let delta = c - old_max in
  let dcache_miss = is_load && t.c_mem_extra > 0 in
  let bucket =
    if c > complete then Stall.Base (* retire bandwidth / in-order commit *)
    else if dcache_miss then Stall.Dcache
    else if iss > ready then Stall.Fu_contention
    else if ready > d + 1 then Stall.Base (* operand dataflow *)
    else if d > f + cfg.Config.frontend_depth then t.c_dispatch_cause
    else t.c_fetch_cause
  in
  if delta > 0 then
    t.stalls.(Stall.index bucket) <- t.stalls.(Stall.index bucket) + delta;
  sc.sc_fetch <- f;
  sc.sc_dispatch <- d;
  sc.sc_issue <- iss;
  sc.sc_complete <- complete;
  sc.sc_commit <- c;
  sc.sc_delta <- delta;
  sc.sc_bucket <- bucket;
  sc.sc_dcache_miss <- dcache_miss;
  handle_control t u ~complete

let make_scratch () =
  {
    sc_fetch = 0;
    sc_dispatch = 0;
    sc_issue = 0;
    sc_complete = 0;
    sc_commit = 0;
    sc_delta = 0;
    sc_bucket = Stall.Base;
    sc_dcache_miss = false;
  }

let feed_drain_core t ~spm_cycles =
  t.s_drains <- t.s_drains + 1;
  t.s_spm_cycles <- t.s_spm_cycles + spm_cycles;
  (* No later µop may dispatch until everything older has committed and the
     SPM transfer has finished. Front-end refill then costs the usual
     pipeline depth on the next µop. *)
  raise_stall t (t.max_commit + 1 + spm_cycles) Stall.Drain;
  break_fetch_group t

(* The probe-free specialization: no option branch, no probe-only
   observable tracking, no event construction. *)
let feed_fn_noprobe t =
  let sc = make_scratch () in
  fun (ev : Uop.event) ->
    match ev with
    | Uop.Commit u -> feed_uop_core t u ~track_line:false sc
    | Uop.Drain { spm_cycles; reason = _ } -> feed_drain_core t ~spm_cycles

(* The probed specialization additionally reports each µop and drain. The
   probe is passive: nothing it observes feeds back into a cycle. *)
let feed_fn_probe t (p : Probe.t) =
  let sc = make_scratch () in
  fun (ev : Uop.event) ->
    match ev with
    | Uop.Commit u ->
      let mispredicts_before = t.s_mispredicts in
      feed_uop_core t u ~track_line:true sc;
      p.Probe.on_uop
        {
          Probe.uop = u;
          fetch = sc.sc_fetch;
          dispatch = sc.sc_dispatch;
          issue = sc.sc_issue;
          complete = sc.sc_complete;
          commit = sc.sc_commit;
          bucket = sc.sc_bucket;
          attributed = sc.sc_delta;
          mispredicted = t.s_mispredicts > mispredicts_before;
          dcache_miss = sc.sc_dcache_miss;
          il1_line = t.c_il1_line;
          fetch_extra = t.c_fetch_extra;
          mem_extra = t.c_mem_extra;
        }
    | Uop.Drain { spm_cycles; reason } ->
      let start = t.max_commit in
      feed_drain_core t ~spm_cycles;
      p.Probe.on_drain
        { Probe.reason; spm_cycles; start; resume = t.stall_until }

let create ?config ?predictor ?warm ?store_slots ?probe () =
  let t = make ?config ?predictor ?warm ?store_slots () in
  (match probe with
   | None -> t.feed_fn <- feed_fn_noprobe t
   | Some p -> t.feed_fn <- feed_fn_probe t p);
  t

let feed t ev = t.feed_fn ev

type report = {
  instructions : int;
  cycles : int;
  cpi : float;
  cond_branches : int;
  mispredicts : int;
  secure_branches : int;
  drains : int;
  spm_cycles : int;
  loads : int;
  stores : int;
  il1_miss_rate : float;
  dl1_miss_rate : float;
  l2_miss_rate : float;
  il1_accesses : int;
  dl1_accesses : int;
  l2_accesses : int;
  il1_misses : int;
  dl1_misses : int;
  l2_misses : int;
  il1_sig : int;
  dl1_sig : int;
  l2_sig : int;
  bpred_sig : int;
  stall_stack : int array;
}

let report t =
  let open Sempe_util in
  let hier = Warm.hierarchy t.warm in
  let il1, dl1, l2 = (Hierarchy.il1 hier, Hierarchy.dl1 hier, Hierarchy.l2 hier) in
  let acc c = Stats.find (Sempe_mem.Cache.stats c) "accesses" in
  let mis c = Stats.find (Sempe_mem.Cache.stats c) "misses" in
  let cycles = t.max_commit + 1 in
  {
    instructions = t.s_instructions;
    cycles;
    cpi = Stats.ratio ~num:cycles ~den:t.s_instructions;
    cond_branches = t.s_cond_branches;
    mispredicts = t.s_mispredicts;
    secure_branches = t.s_secure_branches;
    drains = t.s_drains;
    spm_cycles = t.s_spm_cycles;
    loads = t.s_loads;
    stores = t.s_stores;
    il1_miss_rate = Sempe_mem.Cache.miss_rate il1;
    dl1_miss_rate = Sempe_mem.Cache.miss_rate dl1;
    l2_miss_rate = Sempe_mem.Cache.miss_rate l2;
    il1_accesses = acc il1;
    dl1_accesses = acc dl1;
    l2_accesses = acc l2;
    il1_misses = mis il1;
    dl1_misses = mis dl1;
    l2_misses = mis l2;
    il1_sig = Sempe_mem.Cache.signature il1;
    dl1_sig = Sempe_mem.Cache.signature dl1;
    l2_sig = Sempe_mem.Cache.signature l2;
    bpred_sig = Warm.predictor_signature t.warm;
    stall_stack =
      (* Cycle 0 (and any unattributed remainder) goes to the base bucket,
         so the stack sums to [cycles] exactly. *)
      (let st = Array.copy t.stalls in
       let attributed = Array.fold_left ( + ) 0 st in
       st.(Stall.index Stall.Base) <-
         st.(Stall.index Stall.Base) + (cycles - attributed);
       st);
  }

(* Structural invariants every well-formed report satisfies, whatever the
   workload: the differential fuzzer and the test suite call this instead
   of re-deriving the checks. Returns one message per violated invariant
   (empty = healthy). *)
let check_report (r : report) =
  let bad = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> bad := m :: !bad) fmt in
  if r.instructions < 0 then fail "negative instruction count %d" r.instructions;
  if r.instructions > 0 && r.cycles <= 0 then
    fail "%d instructions committed in %d cycles" r.instructions r.cycles;
  if Array.length r.stall_stack <> Stall.count then
    fail "stall stack has %d buckets, expected %d"
      (Array.length r.stall_stack) Stall.count;
  Array.iteri
    (fun i c ->
      if c < 0 then
        fail "negative stall bucket %s = %d" (Stall.name (List.nth Stall.all i)) c)
    r.stall_stack;
  let attributed = Array.fold_left ( + ) 0 r.stall_stack in
  if attributed <> r.cycles then
    fail "stall stack sums to %d, cycles = %d" attributed r.cycles;
  if r.mispredicts < 0 || r.mispredicts > r.cond_branches then
    fail "%d mispredicts out of %d conditional branches" r.mispredicts
      r.cond_branches;
  if r.loads < 0 || r.stores < 0 || r.loads + r.stores > r.instructions then
    fail "%d loads + %d stores exceed %d instructions" r.loads r.stores
      r.instructions;
  if r.secure_branches < 0 then fail "negative sJMP count %d" r.secure_branches;
  if r.drains < 0 then fail "negative drain count %d" r.drains;
  if r.spm_cycles < 0 then fail "negative SPM transfer cycles %d" r.spm_cycles;
  let cache name accesses misses rate =
    if misses < 0 || misses > accesses then
      fail "%s: %d misses out of %d accesses" name misses accesses;
    let expect =
      if accesses = 0 then 0. else float_of_int misses /. float_of_int accesses
    in
    if Float.abs (rate -. expect) > 1e-9 then
      fail "%s: miss rate %.6f inconsistent with %d/%d" name rate misses
        accesses
  in
  cache "IL1" r.il1_accesses r.il1_misses r.il1_miss_rate;
  cache "DL1" r.dl1_accesses r.dl1_misses r.dl1_miss_rate;
  cache "L2" r.l2_accesses r.l2_misses r.l2_miss_rate;
  let cpi_expect =
    if r.instructions = 0 then 0.
    else float_of_int r.cycles /. float_of_int r.instructions
  in
  if Float.abs (r.cpi -. cpi_expect) > 1e-9 then
    fail "CPI %.6f inconsistent with %d cycles / %d instructions" r.cpi
      r.cycles r.instructions;
  List.rev !bad

let predictor_signature t = Warm.predictor_signature t.warm
let cache_signature t = Hierarchy.signature (Warm.hierarchy t.warm)
