type ctl =
  | Ctl_none
  | Ctl_branch
  | Ctl_jump
  | Ctl_call
  | Ctl_ret
  | Ctl_indirect
  | Ctl_jumpback

(* All fields are mutable so the interpreter can predecode one record per
   static instruction and reuse it across that instruction's dynamic
   executions: a commit then writes only the dynamic fields (memory
   address, branch outcome, indirect target) instead of allocating.
   Consumers must not retain a [t] across sink callbacks. *)
type t = {
  mutable pc : int;
  mutable cls : Sempe_isa.Instr.iclass;
  mutable dst : int;
  mutable srcs : int array;
  mutable mem_addr : int;
  mutable ctl : ctl;
  mutable taken : bool;
  mutable target : int;
  mutable return_to : int;
  mutable secure : bool;
}

let no_dst = -1

type drain_reason =
  | Drain_enter_secblock
  | Drain_after_nt_path
  | Drain_exit_secblock

type event =
  | Commit of t
  | Drain of { reason : drain_reason; spm_cycles : int }

let make () =
  {
    pc = 0;
    cls = Sempe_isa.Instr.Cls_nop;
    dst = no_dst;
    srcs = [||];
    mem_addr = 0;
    ctl = Ctl_none;
    taken = false;
    target = 0;
    return_to = 0;
    secure = false;
  }

let of_instr ~pc instr ~mem_addr =
  {
    pc;
    cls = Sempe_isa.Instr.class_of instr;
    dst =
      (match Sempe_isa.Instr.dest instr with Some r -> r | None -> no_dst);
    srcs = Array.of_list (Sempe_isa.Instr.sources instr);
    mem_addr;
    ctl = Ctl_none;
    taken = false;
    target = 0;
    return_to = 0;
    secure = false;
  }
