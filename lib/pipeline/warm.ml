module Hierarchy = Sempe_mem.Hierarchy
module Predictor = Sempe_bpred.Predictor
module Btb = Sempe_bpred.Btb
module Ras = Sempe_bpred.Ras
module Ittage = Sempe_bpred.Ittage

type t = {
  hier : Hierarchy.t;
  bp : Predictor.t;
  btb : Btb.t;
  ras : Ras.t;
  ittage : Ittage.t;
  inst_bytes : int;
  word_bytes : int;
  il1_line_bytes : int;
  (* log2 of [il1_line_bytes] when it is a power of two (it always is for
     the paper's machines), [-1] to fall back to division: the fetch-line
     computation runs once per instruction in both execution modes. *)
  il1_line_shift : int;
  lat_l1 : int;
  mutable fetch_line : int;
}

let log2_pow2 n =
  if n > 0 && n land (n - 1) = 0 then begin
    let s = ref 0 in
    while 1 lsl !s < n do
      incr s
    done;
    !s
  end
  else -1

let create ?(machine = Config.default) ?predictor () =
  let bp =
    match predictor with Some p -> p | None -> Sempe_bpred.Tage.create ()
  in
  let hcfg = machine.Config.hierarchy in
  {
    hier = Hierarchy.create ~config:hcfg ();
    bp;
    btb = Btb.create ();
    ras = Ras.create ();
    ittage = Ittage.create ();
    inst_bytes = machine.Config.inst_bytes;
    word_bytes = machine.Config.word_bytes;
    il1_line_bytes = hcfg.Hierarchy.il1.Sempe_mem.Cache.line_bytes;
    il1_line_shift = log2_pow2 hcfg.Hierarchy.il1.Sempe_mem.Cache.line_bytes;
    lat_l1 = hcfg.Hierarchy.lat_l1;
    fetch_line = -1;
  }

let hierarchy t = t.hier
let predictor t = t.bp
let btb t = t.btb
let ras t = t.ras
let ittage t = t.ittage
let lat_l1 t = t.lat_l1
let fetch_line t = t.fetch_line

let fetch t ~pc =
  let byte_addr = pc * t.inst_bytes in
  let line =
    if t.il1_line_shift >= 0 then byte_addr lsr t.il1_line_shift
    else byte_addr / t.il1_line_bytes
  in
  if line = t.fetch_line then 0
  else begin
    t.fetch_line <- line;
    let lat = Hierarchy.inst_fetch t.hier ~addr:byte_addr in
    lat - t.lat_l1
  end

let data t ~pc ~word_addr ~write =
  Hierarchy.data_access t.hier ~pc ~addr:(word_addr * t.word_bytes) ~write

type transfer = Btb_hit | Btb_miss

let taken_transfer t ~pc ~target =
  (* [Btb.find] touches the LRU exactly as [lookup] would; -1 (miss) never
     equals a real target, so the comparison is exact. *)
  let hit = if Btb.find t.btb ~pc = target then Btb_hit else Btb_miss in
  Btb.update t.btb ~pc ~target;
  hit

type cond =
  | Cond_correct_not_taken
  | Cond_correct_taken_hit
  | Cond_correct_taken_miss
  | Cond_mispredict

let cond_branch t ~pc ~taken ~target =
  let predicted = t.bp.Predictor.predict ~pc in
  t.bp.Predictor.update ~pc ~taken;
  if predicted <> taken then begin
    (* The resolved branch installs its target even on a mispredict:
       otherwise a taken branch first seen mispredicted keeps paying the
       BTB-miss bubble on every later correct prediction. *)
    if taken then Btb.update t.btb ~pc ~target;
    Cond_mispredict
  end
  else if taken then
    match taken_transfer t ~pc ~target with
    | Btb_hit -> Cond_correct_taken_hit
    | Btb_miss -> Cond_correct_taken_miss
  else Cond_correct_not_taken

type target_pred = Pred_hit | Pred_miss

let call t ~pc ~target ~return_to =
  Ras.push t.ras return_to;
  taken_transfer t ~pc ~target

let ret t ~target =
  (* -1 (empty stack) never equals a real return address *)
  if Ras.pop_value t.ras = target then Pred_hit else Pred_miss

let indirect t ~pc ~target =
  (* -1 (no known target) never equals a real target *)
  let predicted = Ittage.predict_value t.ittage ~pc in
  Ittage.update t.ittage ~pc ~target;
  if predicted = target then Pred_hit else Pred_miss

(* A closure-free image of the warm state. Every component except the
   direction predictor is already a record of flat arrays and scalars and
   is carried verbatim; the predictor — the one closure-holding component —
   contributes its name and its private plain-data state string. The image
   aliases the live structures, so it must be serialized (the only
   intended use) before the live [t] is stepped further. *)
type frozen = {
  z_hier : Hierarchy.t;
  z_bp_name : string;
  z_bp_state : string;
  z_btb : Btb.t;
  z_ras : Ras.t;
  z_ittage : Ittage.t;
  z_inst_bytes : int;
  z_word_bytes : int;
  z_il1_line_bytes : int;
  z_il1_line_shift : int;
  z_lat_l1 : int;
  z_fetch_line : int;
}

let freeze t =
  {
    z_hier = t.hier;
    z_bp_name = t.bp.Predictor.name;
    z_bp_state = t.bp.Predictor.save_state ();
    z_btb = t.btb;
    z_ras = t.ras;
    z_ittage = t.ittage;
    z_inst_bytes = t.inst_bytes;
    z_word_bytes = t.word_bytes;
    z_il1_line_bytes = t.il1_line_bytes;
    z_il1_line_shift = t.il1_line_shift;
    z_lat_l1 = t.lat_l1;
    z_fetch_line = t.fetch_line;
  }

let thaw ?predictor z =
  let bp =
    match predictor with Some p -> p | None -> Sempe_bpred.Tage.create ()
  in
  if bp.Predictor.name <> z.z_bp_name then
    invalid_arg
      (Printf.sprintf "Warm.thaw: frozen state is for predictor %S, not %S"
         z.z_bp_name bp.Predictor.name);
  bp.Predictor.load_state z.z_bp_state;
  {
    hier = z.z_hier;
    bp;
    btb = z.z_btb;
    ras = z.z_ras;
    ittage = z.z_ittage;
    inst_bytes = z.z_inst_bytes;
    word_bytes = z.z_word_bytes;
    il1_line_bytes = z.z_il1_line_bytes;
    il1_line_shift = z.z_il1_line_shift;
    lat_l1 = z.z_lat_l1;
    fetch_line = z.z_fetch_line;
  }

let predictor_signature t =
  (((t.bp.Predictor.snapshot_signature () * 31) + Btb.signature t.btb) * 31)
  + Ittage.signature t.ittage

let cache_signature t = Hierarchy.signature t.hier
