type bucket =
  | Base
  | Icache
  | Redirect
  | Rob_full
  | Iq_full
  | Lq_full
  | Sq_full
  | Dcache
  | Fu_contention
  | Drain

let all =
  [
    Base; Icache; Redirect; Rob_full; Iq_full; Lq_full; Sq_full; Dcache;
    Fu_contention; Drain;
  ]

let count = List.length all

let index = function
  | Base -> 0
  | Icache -> 1
  | Redirect -> 2
  | Rob_full -> 3
  | Iq_full -> 4
  | Lq_full -> 5
  | Sq_full -> 6
  | Dcache -> 7
  | Fu_contention -> 8
  | Drain -> 9

let name = function
  | Base -> "base"
  | Icache -> "icache"
  | Redirect -> "redirect"
  | Rob_full -> "rob-full"
  | Iq_full -> "iq-full"
  | Lq_full -> "lq-full"
  | Sq_full -> "sq-full"
  | Dcache -> "dcache"
  | Fu_contention -> "fu-contention"
  | Drain -> "drain-spm"

let describe = function
  | Base -> "ideal-machine work: dataflow, FU latency, commit bandwidth"
  | Icache -> "instruction-cache miss stalls at fetch"
  | Redirect -> "branch mispredict / BTB-miss redirect bubbles"
  | Rob_full -> "dispatch blocked on a full reorder buffer"
  | Iq_full -> "dispatch blocked on a full issue queue"
  | Lq_full -> "dispatch blocked on a full load queue"
  | Sq_full -> "dispatch blocked on a full store queue"
  | Dcache -> "load misses beyond the pipelined DL1 latency"
  | Fu_contention -> "issue-port / load-port contention"
  | Drain -> "SeMPE pipeline drains and SPM transfer cycles"
