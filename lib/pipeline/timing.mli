(** Trace-driven out-of-order timing model.

    The functional interpreter feeds committed µops (and SeMPE drain events)
    in program/commit order; the model assigns each µop a fetch, dispatch,
    issue, completion and commit cycle subject to:

    - fetch width, instruction-cache latency and taken-branch fetch breaks;
    - front-end depth, and redirect stalls after branch mispredictions
      (direction from the configured predictor, targets from BTB/RAS);
    - ROB / issue-queue / load-queue / store-queue capacity;
    - operand readiness through architectural register dataflow,
      issue-width and load-port contention, functional-unit latencies;
    - data-cache latency for loads and stores, with store-to-load
      forwarding and memory-dependence ordering on word addresses;
    - in-order commit bounded by retire width;
    - SeMPE pipeline drains: later µops dispatch only after everything
      older has committed plus the SPM transfer cycles of the event.

    Wrong-path instructions are not replayed (standard trace-driven
    methodology); their cost is charged as redirect latency. Secure branches
    never consult the direction predictor (§IV-E). *)

type t

val create :
  ?config:Config.t
  -> ?predictor:Sempe_bpred.Predictor.t
  -> ?warm:Warm.t
  -> ?store_slots:int
  -> ?probe:Probe.t
  -> unit
  -> t
(** [predictor] defaults to a fresh TAGE with the paper's budget.

    [warm] supplies pre-warmed microarchitectural state (caches,
    predictors, BTB/RAS) instead of the cold default — this is how a
    sampled run revives a checkpoint inside a fresh timing model. When
    [warm] is given, [predictor] is ignored (the warm state carries its
    own predictor).

    [store_slots] (rounded up to a power of two, default 4096) sizes the
    direct-mapped ring of in-flight stores used for store-to-load
    forwarding: slot [addr land (slots - 1)] remembers the youngest store
    to a word address mapping there. A collision forgets the older store,
    which can only cost a forwarding opportunity, never corrupt a cycle.
    The default is generous; override only in tests.

    [probe] receives one {!Probe.uop_event} per committed µop and one
    {!Probe.drain_event} per drain. It is passive: attaching a probe
    cannot change any cycle assignment, and without one no event is
    allocated (the feed path is staged at [create] into probe-attached
    and probe-free variants). *)

val feed : t -> Uop.event -> unit
(** Process the next event in commit order. *)

val config : t -> Config.t
val hierarchy : t -> Sempe_mem.Hierarchy.t

val warm_state : t -> Warm.t
(** The warmable microarchitectural state the model reads and trains. *)

val current_cycles : t -> int
(** Cycle count of the commit frontier so far ([report.cycles] equals this
    after the last {!feed}); usable mid-run to delimit a measured
    interval. *)

val store_entries : t -> int
(** Number of occupied slots in the store-forwarding ring (for
    memory-bound tests; scans the ring, not a hot-path accessor). *)

(** Aggregated results of a run. *)
type report = {
  instructions : int;
  cycles : int;
  cpi : float;
  cond_branches : int;    (** dynamic non-secure conditional branches *)
  mispredicts : int;
  secure_branches : int;  (** dynamic sJMPs *)
  drains : int;
  spm_cycles : int;
  loads : int;
  stores : int;
  il1_miss_rate : float;
  dl1_miss_rate : float;
  l2_miss_rate : float;
  il1_accesses : int;
  dl1_accesses : int;
  l2_accesses : int;
  il1_misses : int;
  dl1_misses : int;
  l2_misses : int;
  il1_sig : int;   (** content hash of the IL1 after the run *)
  dl1_sig : int;
  l2_sig : int;
  bpred_sig : int; (** predictor + BTB state hash *)
  stall_stack : int array;
      (** CPI stall stack, indexed by {!Stall.index}: every cycle of the
          run attributed to exactly one {!Stall.bucket}. The entries sum
          to [cycles] (asserted by the test suite). *)
}

val report : t -> report
(** Snapshot of the statistics; call after the last {!feed}. *)

val check_report : report -> string list
(** Structural invariants of a well-formed report — the stall stack has
    one entry per {!Stall.bucket}, is non-negative and sums exactly to
    [cycles]; miss counts never exceed access counts and match the
    reported rates; mispredicts never exceed conditional branches; loads
    plus stores never exceed instructions; CPI equals cycles over
    instructions. Returns one message per violation (empty = healthy).
    The differential fuzzer's timing oracle and the test suite both gate
    on this. *)

val predictor_signature : t -> int
(** Hash of branch-predictor + BTB state (the branch-predictor side
    channel). *)

val cache_signature : t -> int
(** Hash of all cache contents (the cache side channel). *)
