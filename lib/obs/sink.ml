module Probe = Sempe_pipeline.Probe

type t = {
  probe : Probe.t;
  close : unit -> unit;
}

let null = { probe = Probe.null; close = ignore }

let of_probe probe = { probe; close = ignore }

let tee a b =
  {
    probe =
      {
        Probe.on_uop =
          (fun ev ->
            a.probe.Probe.on_uop ev;
            b.probe.Probe.on_uop ev);
        on_drain =
          (fun ev ->
            a.probe.Probe.on_drain ev;
            b.probe.Probe.on_drain ev);
      };
    close =
      (fun () ->
        a.close ();
        b.close ());
  }

let jsonl oc =
  let line j =
    Json.output oc j;
    output_char oc '\n'
  in
  {
    probe =
      {
        Probe.on_uop = (fun ev -> line (Trace.jsonl_of_uop ev));
        on_drain = (fun ev -> line (Trace.jsonl_of_drain ev));
      };
    close = (fun () -> flush oc);
  }

let perfetto oc =
  (* Stream events as they arrive; [close] terminates the JSON object, so
     the file is valid only after close. *)
  let first = ref true in
  let emit j =
    if !first then first := false else output_char oc ',';
    output_char oc '\n';
    Json.output oc j
  in
  output_string oc "{\"traceEvents\":[";
  List.iter emit Trace.metadata_events;
  {
    probe =
      {
        Probe.on_uop = (fun ev -> List.iter emit (Trace.events_of_uop ev));
        on_drain = (fun ev -> List.iter emit (Trace.events_of_drain ev));
      };
    close =
      (fun () ->
        output_string oc "\n],\"displayTimeUnit\":\"ns\"}\n";
        flush oc);
  }
