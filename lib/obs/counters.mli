(** Bounded per-key counter registry (Space-Saving top-N sketch).

    The per-PC profiles need "top branches by mispredicts"-style rankings
    without letting a long trace grow an unbounded table. This registry
    holds at most [capacity] keys: while distinct keys fit, the counts are
    exact; past that, adding a fresh key evicts the key with the smallest
    count and the newcomer inherits that count plus its weight (the
    Space-Saving over-estimate, bounded by the evicted minimum). True
    heavy hitters are never pushed out. Eviction ties break on the
    smallest key, so the sketch is deterministic. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val add : t -> key:int -> int -> unit
(** [add t ~key w] adds weight [w >= 0] to [key]'s counter. *)

val incr : t -> key:int -> unit
(** [add t ~key 1]. *)

val count : t -> key:int -> int
(** Current (possibly over-estimated) count of [key]; 0 if not tracked. *)

val top : ?n:int -> t -> (int * int) list
(** Tracked [(key, count)] pairs, count-descending (ties: key ascending),
    optionally truncated to the first [n]. *)

val cardinality : t -> int
(** Number of keys currently tracked ([<= capacity]). *)

val capacity : t -> int

val total : t -> int
(** Exact sum of all weights ever added — independent of evictions, so an
    aggregate cross-check against the run report stays exact. *)

val evictions : t -> int

val exact : t -> bool
(** True while no eviction has happened (all counts exact). *)
