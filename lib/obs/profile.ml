module Probe = Sempe_pipeline.Probe
module Uop = Sempe_pipeline.Uop
module Tablefmt = Sempe_util.Tablefmt

type t = {
  branch_mispredicts : Counters.t;
  branch_executions : Counters.t;
  load_misses : Counters.t;
  sjmp_drains : Counters.t;
  sjmp_spm_cycles : Counters.t;
  mutable sjmp_stack : int list;
  mutable uops : int;
  mutable drains : int;
}

let default_capacity = 256

let create ?(capacity = default_capacity) () =
  {
    branch_mispredicts = Counters.create ~capacity;
    branch_executions = Counters.create ~capacity;
    load_misses = Counters.create ~capacity;
    sjmp_drains = Counters.create ~capacity;
    sjmp_spm_cycles = Counters.create ~capacity;
    sjmp_stack = [];
    uops = 0;
    drains = 0;
  }

(* The engine runs secure regions LIFO (jbTable order), so a stack of live
   sJMP pcs attributes each drain to the innermost open region: the enter
   and after-NT-path drains belong to the top, the exit drain pops. A
   drain with no open region (cannot happen with the current engine) is
   filed under pc -1 rather than lost, keeping totals exact. *)
let on_drain t (ev : Probe.drain_event) =
  t.drains <- t.drains + 1;
  let pc, pop =
    match (ev.Probe.reason, t.sjmp_stack) with
    | Uop.Drain_exit_secblock, pc :: rest -> (pc, Some rest)
    | (Uop.Drain_enter_secblock | Uop.Drain_after_nt_path), pc :: _ ->
      (pc, None)
    | _, [] -> (-1, None)
  in
  (match pop with Some rest -> t.sjmp_stack <- rest | None -> ());
  Counters.incr t.sjmp_drains ~key:pc;
  Counters.add t.sjmp_spm_cycles ~key:pc ev.Probe.spm_cycles

let on_uop t (ev : Probe.uop_event) =
  t.uops <- t.uops + 1;
  let u = ev.Probe.uop in
  (match u.Uop.ctl with
   | Uop.Ctl_branch ->
     if u.Uop.secure then t.sjmp_stack <- u.Uop.pc :: t.sjmp_stack
     else Counters.incr t.branch_executions ~key:u.Uop.pc
   | _ -> ());
  if ev.Probe.mispredicted then Counters.incr t.branch_mispredicts ~key:u.Uop.pc;
  if ev.Probe.dcache_miss then Counters.incr t.load_misses ~key:u.Uop.pc

let probe t = { Probe.on_uop = on_uop t; on_drain = on_drain t }

let pc_label ?resolve pc =
  if pc < 0 then "<none>"
  else
    match resolve with
    | None -> string_of_int pc
    | Some f -> Printf.sprintf "%d: %s" pc (f pc)

let table ?resolve ~title ~value_header ?(extra = fun _ _ -> []) ?extra_header
    entries =
  let header =
    [ "pc"; value_header ] @ Option.value ~default:[] extra_header
  in
  let rows =
    List.map
      (fun (pc, v) -> [ pc_label ?resolve pc; string_of_int v ] @ extra pc v)
      entries
  in
  title ^ "\n"
  ^ (if rows = [] then "(none)\n" else Tablefmt.render ~header rows)

let render ?(n = 10) ?resolve t =
  let mispredict_extra pc _ =
    let execs = Counters.count t.branch_executions ~key:pc in
    let misses = Counters.count t.branch_mispredicts ~key:pc in
    [
      (if execs = 0 then "-"
       else Tablefmt.percent (Sempe_util.Stats.ratio ~num:misses ~den:execs));
    ]
  in
  let drain_extra pc _ =
    [ string_of_int (Counters.count t.sjmp_drains ~key:pc) ]
  in
  String.concat "\n"
    [
      table ?resolve ~title:"Top branches by mispredicts"
        ~value_header:"mispredicts" ~extra:mispredict_extra
        ~extra_header:[ "miss rate" ]
        (Counters.top ~n t.branch_mispredicts);
      table ?resolve ~title:"Top loads by DL1 misses" ~value_header:"misses"
        (Counters.top ~n t.load_misses);
      table ?resolve ~title:"Top sJMPs by SPM transfer cycles"
        ~value_header:"spm cycles" ~extra:drain_extra
        ~extra_header:[ "drains" ]
        (Counters.top ~n t.sjmp_spm_cycles);
    ]

let counters_json ?n c =
  Json.List
    (List.map
       (fun (pc, v) -> Json.Obj [ ("pc", Json.Int pc); ("count", Json.Int v) ])
       (Counters.top ?n c))

let to_json ?n t =
  Json.Obj
    [
      ("uops", Json.Int t.uops);
      ("drains", Json.Int t.drains);
      ("branch_mispredicts", counters_json ?n t.branch_mispredicts);
      ("load_dcache_misses", counters_json ?n t.load_misses);
      ("sjmp_spm_cycles", counters_json ?n t.sjmp_spm_cycles);
      ( "exact",
        Json.Bool
          (Counters.exact t.branch_mispredicts
          && Counters.exact t.load_misses
          && Counters.exact t.sjmp_spm_cycles) );
    ]

let branch_mispredicts t = t.branch_mispredicts
let load_misses t = t.load_misses
let sjmp_spm_cycles t = t.sjmp_spm_cycles
let uops t = t.uops
let drains t = t.drains
