(** Machine-readable and stall-stack views of a {!Sempe_pipeline.Timing}
    run report. *)

val stall_stack_alist :
  Sempe_pipeline.Timing.report -> (Sempe_pipeline.Stall.bucket * int) list
(** The report's stall stack as [(bucket, cycles)], in {!Stall.all}
    order. The cycle counts sum to [report.cycles]. *)

val render_stall_stack : Sempe_pipeline.Timing.report -> string
(** Text table of the stall stack with per-bucket shares (zero buckets
    other than [base] are omitted). *)

val stall_stack_json : Sempe_pipeline.Timing.report -> Json.t

val render_leakage_stack :
  title:string -> total:int -> unit:string -> (string * int) list -> string
(** Text table for a leakage stack: divergent-event counts bucketed by
    hardware structure, in the stall-stack style. The caller guarantees
    the counts sum to [total] (held by construction in
    [Sempe_security.Attribution]); zero buckets are omitted, and a stack
    with no nonzero bucket renders as a one-line "no divergent ..."
    notice. [unit] names the counted thing (e.g. ["events"]). *)

val leakage_stack_json : (string * int) list -> Json.t
(** The same stack as a flat JSON object. *)

val to_json : Sempe_pipeline.Timing.report -> Json.t
(** Every counter of the report (cache signature hashes excluded) plus the
    stall stack, as one flat JSON object. *)
