(** Machine-readable and stall-stack views of a {!Sempe_pipeline.Timing}
    run report. *)

val stall_stack_alist :
  Sempe_pipeline.Timing.report -> (Sempe_pipeline.Stall.bucket * int) list
(** The report's stall stack as [(bucket, cycles)], in {!Stall.all}
    order. The cycle counts sum to [report.cycles]. *)

val render_stall_stack : Sempe_pipeline.Timing.report -> string
(** Text table of the stall stack with per-bucket shares (zero buckets
    other than [base] are omitted). *)

val stall_stack_json : Sempe_pipeline.Timing.report -> Json.t

val to_json : Sempe_pipeline.Timing.report -> Json.t
(** Every counter of the report (cache signature hashes excluded) plus the
    stall stack, as one flat JSON object. *)
