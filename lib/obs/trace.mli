(** Chrome trace-event (Perfetto) and JSON-lines event builders.

    Pure: every function maps a probe event to {!Json.t} values, so the
    trace schema can be checked structurally in tests without touching the
    filesystem. {!Sink.perfetto} and {!Sink.jsonl} stream these to a
    channel.

    The Perfetto layout puts one synthetic thread per pipeline stage
    (fetch→dispatch, dispatch→issue, issue→complete, complete→commit) and
    one for SeMPE drains, all in process 0; [ts]/[dur] are cycle numbers.
    The resulting file (a JSON object with a ["traceEvents"] array) opens
    directly in {{:https://ui.perfetto.dev}ui.perfetto.dev}. *)

val class_name : Sempe_isa.Instr.iclass -> string
val drain_reason_name : Sempe_pipeline.Uop.drain_reason -> string

val metadata_events : Json.t list
(** Process/thread-name metadata events; emit once, before any slice. *)

val process_meta : pid:int -> name:string -> Json.t
val thread_meta : pid:int -> tid:int -> name:string -> Json.t
(** Metadata events for traces with a custom lane layout (one lane per
    secret in the leakage-attribution trace). *)

val instant : name:string -> pid:int -> tid:int -> ts:int -> args:(string * Json.t) list -> Json.t
(** A thread-scoped ["ph":"i"] instant event — the divergence markers of
    the attribution trace. *)

val slice_at : name:string -> pid:int -> tid:int -> ts:int -> dur:int -> args:(string * Json.t) list -> Json.t
(** Like the internal slice builder but with an explicit [pid]. *)

val events_of_uop : Sempe_pipeline.Probe.uop_event -> Json.t list
(** Four ["ph":"X"] slices, one per pipeline stage of the µop. *)

val events_of_drain : Sempe_pipeline.Probe.drain_event -> Json.t list
(** One slice on the drain track spanning stall begin to resume. *)

val jsonl_of_uop : Sempe_pipeline.Probe.uop_event -> Json.t
(** Flat one-line record for the JSON-lines sink. *)

val jsonl_of_drain : Sempe_pipeline.Probe.drain_event -> Json.t
