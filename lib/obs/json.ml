type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  (* NaN / infinity are not JSON; emit null rather than an invalid token. *)
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s
  end

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  add buf j;
  Buffer.contents buf

let output oc j = output_string oc (to_string j)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
