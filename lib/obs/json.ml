type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  (* NaN / infinity are not JSON; emit null rather than an invalid token. *)
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s
  end

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  add buf j;
  Buffer.contents buf

let output oc j = output_string oc (to_string j)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

(* ---- parser ------------------------------------------------------------ *)

exception Parse_error of { pos : int; message : string }

(* [parse ~max_depth ~max_string src] is the single parser body; the
   trusted entry point passes effectively-unbounded limits, the strict
   entry point the caller's. Depth is counted on containers only (a
   scalar at depth d costs nothing); the depth check turns what would be
   stack recursion proportional to attacker input into a clean
   [Parse_error]. *)
let parse ~max_depth ~max_string src =
  let n = String.length src in
  let fail pos fmt =
    Printf.ksprintf (fun message -> raise (Parse_error { pos; message })) fmt
  in
  let rec skip_ws k =
    if k < n && (match src.[k] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    then skip_ws (k + 1)
    else k
  in
  let expect k c =
    if k < n && src.[k] = c then k + 1
    else fail k "expected %C" c
  in
  let literal k word value =
    let len = String.length word in
    if k + len <= n && String.sub src k len = word then (value, k + len)
    else fail k "invalid literal"
  in
  let parse_string k =
    let buf = Buffer.create 16 in
    let rec go k =
      if Buffer.length buf > max_string then
        fail k "string longer than %d bytes" max_string
      else if k >= n then fail k "unterminated string (truncated input?)"
      else
        match src.[k] with
        | '"' -> (Buffer.contents buf, k + 1)
        | '\\' ->
          if k + 1 >= n then fail k "unterminated escape"
          else begin
            (match src.[k + 1] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if k + 5 >= n then fail k "truncated \\u escape"
               else begin
                 let code =
                   try int_of_string ("0x" ^ String.sub src (k + 2) 4)
                   with _ -> fail k "invalid \\u escape"
                 in
                 (* the emitter only produces \u for control characters;
                    decode the low byte, which covers everything it writes *)
                 Buffer.add_char buf (Char.chr (code land 0xff))
               end
             | c -> fail k "invalid escape \\%c" c);
            go (k + if src.[k + 1] = 'u' then 6 else 2)
          end
        | c -> Buffer.add_char buf c; go (k + 1)
    in
    go k
  in
  let parse_number k =
    let j = ref k in
    let is_float = ref false in
    if !j < n && (src.[!j] = '-' || src.[!j] = '+') then incr j;
    while
      !j < n
      && (match src.[!j] with
          | '0' .. '9' -> true
          | '.' | 'e' | 'E' | '-' | '+' -> is_float := true; true
          | _ -> false)
    do
      incr j
    done;
    let text = String.sub src k (!j - k) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> (Float f, !j)
      | None -> fail k "invalid number %S" text
    else
      match int_of_string_opt text with
      | Some i -> (Int i, !j)
      | None -> fail k "invalid number %S" text
  in
  let rec parse_value depth k =
    let k = skip_ws k in
    if k >= n then fail k "unexpected end of input (truncated?)"
    else
      match src.[k] with
      | 'n' -> literal k "null" Null
      | 't' -> literal k "true" (Bool true)
      | 'f' -> literal k "false" (Bool false)
      | '"' ->
        let s, k = parse_string (k + 1) in
        (Str s, k)
      | '[' ->
        if depth >= max_depth then fail k "nesting deeper than %d" max_depth
        else begin
          let k' = skip_ws (k + 1) in
          if k' < n && src.[k'] = ']' then (List [], k' + 1)
          else
            let rec items acc k =
              let v, k = parse_value (depth + 1) k in
              let k = skip_ws k in
              if k < n && src.[k] = ',' then items (v :: acc) (k + 1)
              else (List (List.rev (v :: acc)), expect k ']')
            in
            items [] (k + 1)
        end
      | '{' ->
        if depth >= max_depth then fail k "nesting deeper than %d" max_depth
        else begin
          let k' = skip_ws (k + 1) in
          if k' < n && src.[k'] = '}' then (Obj [], k' + 1)
          else
            let rec pairs acc k =
              let k = skip_ws k in
              let k = expect k '"' in
              let key, k = parse_string k in
              let k = expect (skip_ws k) ':' in
              let v, k = parse_value (depth + 1) k in
              let k = skip_ws k in
              if k < n && src.[k] = ',' then pairs ((key, v) :: acc) (k + 1)
              else (Obj (List.rev ((key, v) :: acc)), expect k '}')
            in
            pairs [] (k + 1)
        end
      | c -> parse_number (ignore c; k)
  in
  let v, k = parse_value 0 0 in
  let k = skip_ws k in
  if k <> n then fail k "trailing garbage" else v

let of_string src = parse ~max_depth:max_int ~max_string:max_int src

let default_max_depth = 64
let default_max_string = 4 * 1024 * 1024
let default_max_bytes = 16 * 1024 * 1024

let of_string_strict ?(max_depth = default_max_depth)
    ?(max_string = default_max_string) ?(max_bytes = default_max_bytes) src =
  if String.length src > max_bytes then
    raise
      (Parse_error
         {
           pos = max_bytes;
           message =
             Printf.sprintf "input of %d bytes exceeds the %d-byte limit"
               (String.length src) max_bytes;
         });
  parse ~max_depth ~max_string src
