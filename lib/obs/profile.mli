(** Per-PC profile built from timing-model probe events.

    Tracks, in bounded {!Counters} registries:
    - mispredicts per control-flow pc (and executions per conditional
      branch pc, for the miss-rate column);
    - DL1-missing loads per load pc;
    - drains and SPM transfer cycles per sJMP pc (each drain is attributed
      to the innermost open secure region, tracked LIFO like the
      jbTable).

    Attach with {!probe} (e.g. [Run.simulate ~sink:(Sink.of_probe
    (Profile.probe p))]) and render or export after the run. *)

type t

val default_capacity : int

val create : ?capacity:int -> unit -> t
(** [capacity] bounds each per-PC registry (default
    {!default_capacity}). *)

val probe : t -> Sempe_pipeline.Probe.t
(** A probe that records into [t]. *)

val render : ?n:int -> ?resolve:(int -> string) -> t -> string
(** Top-[n] tables (default 10). [resolve] maps a pc to its disassembled
    instruction for the pc column. *)

val to_json : ?n:int -> t -> Json.t

val branch_mispredicts : t -> Counters.t
val load_misses : t -> Counters.t
val sjmp_spm_cycles : t -> Counters.t

val uops : t -> int
(** µop events seen. *)

val drains : t -> int
(** Drain events seen. *)
