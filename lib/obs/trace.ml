module Probe = Sempe_pipeline.Probe
module Uop = Sempe_pipeline.Uop
module Stall = Sempe_pipeline.Stall
module Instr = Sempe_isa.Instr

let class_name = function
  | Instr.Cls_nop -> "nop"
  | Instr.Cls_int_alu -> "alu"
  | Instr.Cls_int_mul -> "mul"
  | Instr.Cls_int_div -> "div"
  | Instr.Cls_load -> "load"
  | Instr.Cls_store -> "store"
  | Instr.Cls_branch -> "branch"
  | Instr.Cls_jump -> "jump"
  | Instr.Cls_eosjmp -> "eosjmp"
  | Instr.Cls_halt -> "halt"

let drain_reason_name = function
  | Uop.Drain_enter_secblock -> "drain:enter-secblock"
  | Uop.Drain_after_nt_path -> "drain:after-nt-path"
  | Uop.Drain_exit_secblock -> "drain:exit-secblock"

(* Track (pid, tid) layout of the Chrome trace: one synthetic thread per
   pipeline stage, plus one for SeMPE drains. *)
let pid = 0
let tid_frontend = 1
let tid_dispatch = 2
let tid_execute = 3
let tid_commit = 4
let tid_drain = 5

let metadata_events =
  let thread tid name =
    Json.Obj
      [
        ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.Str name) ]);
      ]
  in
  [
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.Str "sempe-sim") ]);
      ];
    thread tid_frontend "fetch->dispatch";
    thread tid_dispatch "dispatch->issue";
    thread tid_execute "issue->complete";
    thread tid_commit "complete->commit";
    thread tid_drain "SeMPE drains";
  ]

(* Generic metadata/instant builders for traces with a custom (pid, tid)
   layout — the leakage-attribution trace puts one lane per secret and
   marks divergences with instant events. *)
let process_meta ~pid ~name =
  Json.Obj
    [
      ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let thread_meta ~pid ~tid ~name =
  Json.Obj
    [
      ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let instant ~name ~pid ~tid ~ts ~args =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "i");
      ("s", Json.Str "t");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("ts", Json.Int ts);
      ("args", Json.Obj args);
    ]

let slice_at ~name ~pid ~tid ~ts ~dur ~args =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "X");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("ts", Json.Int ts);
      ("dur", Json.Int (max 0 dur));
      ("args", Json.Obj args);
    ]

let slice ~name ~tid ~ts ~dur ~args =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "X");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("ts", Json.Int ts);
      ("dur", Json.Int (max 0 dur));
      ("args", Json.Obj args);
    ]

let events_of_uop (ev : Probe.uop_event) =
  let u = ev.Probe.uop in
  let name = Printf.sprintf "%s@%d" (class_name u.Uop.cls) u.Uop.pc in
  let args =
    [
      ("pc", Json.Int u.Uop.pc);
      ("bucket", Json.Str (Stall.name ev.Probe.bucket));
      ("attributed", Json.Int ev.Probe.attributed);
      ("mispredicted", Json.Bool ev.Probe.mispredicted);
      ("dcache_miss", Json.Bool ev.Probe.dcache_miss);
    ]
  in
  [
    slice ~name ~tid:tid_frontend ~ts:ev.Probe.fetch
      ~dur:(ev.Probe.dispatch - ev.Probe.fetch)
      ~args:[ ("pc", Json.Int u.Uop.pc) ];
    slice ~name ~tid:tid_dispatch ~ts:ev.Probe.dispatch
      ~dur:(ev.Probe.issue - ev.Probe.dispatch)
      ~args:[ ("pc", Json.Int u.Uop.pc) ];
    slice ~name ~tid:tid_execute ~ts:ev.Probe.issue
      ~dur:(ev.Probe.complete - ev.Probe.issue)
      ~args;
    slice ~name ~tid:tid_commit ~ts:ev.Probe.complete
      ~dur:(ev.Probe.commit - ev.Probe.complete)
      ~args:[ ("pc", Json.Int u.Uop.pc) ];
  ]

let events_of_drain (ev : Probe.drain_event) =
  [
    slice
      ~name:(drain_reason_name ev.Probe.reason)
      ~tid:tid_drain ~ts:ev.Probe.start
      ~dur:(ev.Probe.resume - ev.Probe.start)
      ~args:[ ("spm_cycles", Json.Int ev.Probe.spm_cycles) ];
  ]

(* Flat one-object-per-event records for the JSON-lines sink. *)

let jsonl_of_uop (ev : Probe.uop_event) =
  let u = ev.Probe.uop in
  Json.Obj
    [
      ("type", Json.Str "uop");
      ("pc", Json.Int u.Uop.pc);
      ("cls", Json.Str (class_name u.Uop.cls));
      ("fetch", Json.Int ev.Probe.fetch);
      ("dispatch", Json.Int ev.Probe.dispatch);
      ("issue", Json.Int ev.Probe.issue);
      ("complete", Json.Int ev.Probe.complete);
      ("commit", Json.Int ev.Probe.commit);
      ("bucket", Json.Str (Stall.name ev.Probe.bucket));
      ("attributed", Json.Int ev.Probe.attributed);
      ("mispredicted", Json.Bool ev.Probe.mispredicted);
      ("dcache_miss", Json.Bool ev.Probe.dcache_miss);
    ]

let jsonl_of_drain (ev : Probe.drain_event) =
  Json.Obj
    [
      ("type", Json.Str "drain");
      ("reason", Json.Str (drain_reason_name ev.Probe.reason));
      ("spm_cycles", Json.Int ev.Probe.spm_cycles);
      ("start", Json.Int ev.Probe.start);
      ("resume", Json.Int ev.Probe.resume);
    ]
