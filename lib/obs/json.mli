(** Minimal JSON document type and compact emitter.

    Everything machine-readable in this repository — [--json] report
    output, the JSON-lines event sink, the Chrome trace-event / Perfetto
    trace — is built from these values, so there is exactly one escaping
    and number-formatting path. No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values are emitted as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering, valid JSON. *)

val add : Buffer.t -> t -> unit
(** Append the compact rendering to a buffer. *)

val output : out_channel -> t -> unit

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to [k], if any; [None] on
    non-objects. Convenience for structural checks in tests. *)

exception Parse_error of { pos : int; message : string }

val of_string : string -> t
(** Parse one JSON document. Round-trips everything {!to_string} emits
    (the CLI's [--json] output, the fuzzer's corpus files, the bench perf
    records), which is what the structural tests and the perf-regression
    gate consume. [\u] escapes are decoded bytewise (the emitter only
    produces them for control characters).
    @raise Parse_error with the offending position otherwise. *)

val of_string_strict :
  ?max_depth:int -> ?max_string:int -> ?max_bytes:int -> string -> t
(** {!of_string} for {e untrusted} input — the serving daemon parses
    these bytes straight off a socket. Identical grammar, three extra
    rejections, each a {!Parse_error} with a clear message instead of a
    resource blow-up:

    - [max_depth] (default 64): maximum container nesting. Bounds parser
      recursion, so a ["[[[[…"] bomb cannot overflow the stack.
    - [max_string] (default 4 MiB): maximum decoded length of any single
      string or key.
    - [max_bytes] (default 16 MiB): maximum input length, checked before
      parsing starts.

    Truncated input (a frame cut mid-document) fails with an
    ["unexpected end of input"/"unterminated"] message at the cut
    position; it is never silently completed. *)
