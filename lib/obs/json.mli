(** Minimal JSON document type and compact emitter.

    Everything machine-readable in this repository — [--json] report
    output, the JSON-lines event sink, the Chrome trace-event / Perfetto
    trace — is built from these values, so there is exactly one escaping
    and number-formatting path. No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values are emitted as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering, valid JSON. *)

val add : Buffer.t -> t -> unit
(** Append the compact rendering to a buffer. *)

val output : out_channel -> t -> unit

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to [k], if any; [None] on
    non-objects. Convenience for structural checks in tests. *)

exception Parse_error of { pos : int; message : string }

val of_string : string -> t
(** Parse one JSON document. Round-trips everything {!to_string} emits
    (the CLI's [--json] output, the fuzzer's corpus files, the bench perf
    records), which is what the structural tests and the perf-regression
    gate consume. [\u] escapes are decoded bytewise (the emitter only
    produces them for control characters).
    @raise Parse_error with the offending position otherwise. *)
