(* Bounded per-key counter registry: the Space-Saving top-N sketch
   (Metwally et al.). While distinct keys fit under the capacity the
   counts are exact; past it, a new key evicts the current minimum and
   inherits its count (+ the new weight), which over-estimates the
   newcomer by at most the evicted minimum — the classic guarantee that
   every true heavy hitter stays in the table. Eviction picks the
   smallest key among minima so the sketch is deterministic. *)

type t = {
  capacity : int;
  tbl : (int, int ref) Hashtbl.t;
  mutable total : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Counters.create: capacity must be >= 1";
  { capacity; tbl = Hashtbl.create (2 * capacity); total = 0; evictions = 0 }

let add t ~key w =
  if w < 0 then invalid_arg "Counters.add: negative weight";
  t.total <- t.total + w;
  match Hashtbl.find_opt t.tbl key with
  | Some r -> r := !r + w
  | None ->
    if Hashtbl.length t.tbl < t.capacity then Hashtbl.replace t.tbl key (ref w)
    else begin
      let victim = ref None in
      Hashtbl.iter
        (fun k r ->
          match !victim with
          | None -> victim := Some (k, !r)
          | Some (vk, vc) ->
            if !r < vc || (!r = vc && k < vk) then victim := Some (k, !r))
        t.tbl;
      match !victim with
      | None -> assert false (* capacity >= 1 *)
      | Some (vk, vc) ->
        Hashtbl.remove t.tbl vk;
        t.evictions <- t.evictions + 1;
        Hashtbl.replace t.tbl key (ref (vc + w))
    end

let incr t ~key = add t ~key 1

let count t ~key =
  match Hashtbl.find_opt t.tbl key with Some r -> !r | None -> 0

let top ?n t =
  let entries = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.tbl [] in
  let sorted =
    List.sort
      (fun (k1, c1) (k2, c2) ->
        if c1 <> c2 then compare c2 c1 else compare k1 k2)
      entries
  in
  match n with
  | None -> sorted
  | Some n ->
    List.filteri (fun i _ -> i < n) sorted

let cardinality t = Hashtbl.length t.tbl
let capacity t = t.capacity
let total t = t.total
let evictions t = t.evictions
let exact t = t.evictions = 0
