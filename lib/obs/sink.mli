(** Trace sinks: where timing-model probe events go.

    A sink is a {!Sempe_pipeline.Probe.t} plus a [close] finalizer.
    [Run.simulate ?sink] attaches the probe for the duration of a run;
    the creator of the sink owns the channel and must call [close] (the
    Perfetto sink writes its JSON footer there — the file is invalid
    without it). The {!null} sink costs nothing: the timing model skips
    event construction entirely when the probe functions are [ignore]d
    by an unattached run, and attaching {!null} only pays two indirect
    calls per µop. *)

type t = {
  probe : Sempe_pipeline.Probe.t;
  close : unit -> unit;
}

val null : t
(** Discards every event; [close] is a no-op. *)

val of_probe : Sempe_pipeline.Probe.t -> t
(** Wrap a bare probe (e.g. {!Profile.probe}) with a no-op [close]. *)

val tee : t -> t -> t
(** Duplicate every event (and [close]) to both sinks, in order. *)

val jsonl : out_channel -> t
(** One compact JSON object per event, newline-separated
    (see {!Trace.jsonl_of_uop}). [close] flushes but does not close the
    channel. *)

val perfetto : out_channel -> t
(** Chrome trace-event stream for {{:https://ui.perfetto.dev}Perfetto}.
    Events are streamed as they arrive; [close] writes the closing
    bracket — call it before reading the file. *)
