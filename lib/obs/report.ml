module Timing = Sempe_pipeline.Timing
module Stall = Sempe_pipeline.Stall
module Tablefmt = Sempe_util.Tablefmt

let stall_stack_alist (r : Timing.report) =
  List.map
    (fun b -> (b, r.Timing.stall_stack.(Stall.index b)))
    Stall.all

let render_stall_stack (r : Timing.report) =
  let cycles = max 1 r.Timing.cycles in
  let rows =
    List.filter_map
      (fun (b, n) ->
        if n = 0 && b <> Stall.Base then None
        else
          Some
            [
              Stall.name b;
              string_of_int n;
              Tablefmt.percent (float_of_int n /. float_of_int cycles);
              Stall.describe b;
            ])
      (stall_stack_alist r)
  in
  Printf.sprintf "CPI stall stack (%d cycles, %d attributed)\n%s"
    r.Timing.cycles
    (Array.fold_left ( + ) 0 r.Timing.stall_stack)
    (Tablefmt.render ~header:[ "bucket"; "cycles"; "share"; "meaning" ] rows)

let stall_stack_json (r : Timing.report) =
  Json.Obj
    (List.map (fun (b, n) -> (Stall.name b, Json.Int n)) (stall_stack_alist r))

(* Generic "stack" rendering shared with the security side's leakage
   stacks: a bucket -> count alist whose counts sum to [total] by
   construction (the caller's invariant, mirrored from the stall stack).
   Kept generic over strings so this library stays security-agnostic. *)
let render_leakage_stack ~title ~total ~unit buckets =
  let denom = max 1 total in
  let rows =
    List.filter_map
      (fun (name, n) ->
        if n = 0 then None
        else
          Some
            [
              name;
              string_of_int n;
              Tablefmt.percent (float_of_int n /. float_of_int denom);
            ])
      buckets
  in
  if rows = [] then
    Printf.sprintf "%s: no divergent %s\n" title unit
  else
    Printf.sprintf "%s (%d divergent %s)\n%s\n" title total unit
      (Tablefmt.render ~header:[ "structure"; unit; "share" ] rows)

let leakage_stack_json buckets =
  Json.Obj (List.map (fun (name, n) -> (name, Json.Int n)) buckets)

let to_json (r : Timing.report) =
  Json.Obj
    [
      ("instructions", Json.Int r.Timing.instructions);
      ("cycles", Json.Int r.Timing.cycles);
      ("cpi", Json.Float r.Timing.cpi);
      ("cond_branches", Json.Int r.Timing.cond_branches);
      ("mispredicts", Json.Int r.Timing.mispredicts);
      ("secure_branches", Json.Int r.Timing.secure_branches);
      ("drains", Json.Int r.Timing.drains);
      ("spm_cycles", Json.Int r.Timing.spm_cycles);
      ("loads", Json.Int r.Timing.loads);
      ("stores", Json.Int r.Timing.stores);
      ("il1_accesses", Json.Int r.Timing.il1_accesses);
      ("il1_misses", Json.Int r.Timing.il1_misses);
      ("il1_miss_rate", Json.Float r.Timing.il1_miss_rate);
      ("dl1_accesses", Json.Int r.Timing.dl1_accesses);
      ("dl1_misses", Json.Int r.Timing.dl1_misses);
      ("dl1_miss_rate", Json.Float r.Timing.dl1_miss_rate);
      ("l2_accesses", Json.Int r.Timing.l2_accesses);
      ("l2_misses", Json.Int r.Timing.l2_misses);
      ("l2_miss_rate", Json.Float r.Timing.l2_miss_rate);
      ("stall_stack", stall_stack_json r);
    ]
