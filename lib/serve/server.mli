(** The [sempe-sim serve] daemon: a long-running simulation service.

    One accept thread plus one handler thread per connection; the
    simulations themselves run on a {!Sempe_util.Pool} of worker domains,
    so a connection is cheap and the expensive work is bounded by the
    pool size. Each connection speaks the length-prefixed JSON protocol
    of {!Frame}: a request is an object [{"id": .., "op": .., ...}] (the
    operation fields of {!Api.request_of_json}, plus the control ops
    [ping], [stats] and [shutdown]); the reply echoes ["id"] and carries
    either [{"ok": true, "cached": .., "result": ..}] or
    [{"ok": false, "error": {"code": .., "message": ..}}].

    Two content-addressed caches back the service: response bytes keyed
    by {!Api.cache_key}, and sampling checkpoint plans keyed by
    {!Api.plan_key} — a repeated sweep neither re-simulates nor re-runs
    the fast-forward pass. Every entry records the wall seconds its
    {!Api.perform} took, and eviction is cost-aware ({!Cache}): the cache
    keeps the entries that are most expensive to recompute. Identical
    in-flight requests coalesce onto one execution.

    With a [store_dir], the daemon persists both caches: a graceful
    shutdown flushes them through {!Persist} and the next start reloads
    the store, so a restarted shard answers warm — and, because the store
    holds the exact rendered response bytes, byte-identically — from its
    first request.

    Security note: the daemon fully trusts its clients. Frames are
    length-capped and parsed with the strict reader, so a malformed or
    truncated frame cannot wedge the server — but any client that can
    connect can run simulations, read statistics and shut the daemon
    down. Bind the unix socket in a directory with appropriate
    permissions; do not expose the TCP listener beyond the host. *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** [unix:PATH], [tcp:HOST:PORT], or a bare path (taken as a unix
    socket). *)

val addr_to_string : addr -> string

val bind_listen : backlog:int -> addr -> Unix.file_descr
(** Bind and listen on an address: a crash-leftover unix socket file is
    replaced, a TCP listener gets [SO_REUSEADDR]. Shared with the
    {!Router}, which fronts the same protocol on the same address
    forms.
    @raise Unix.Unix_error when the address cannot be bound. *)

type config = {
  workers : int;  (** simulation pool size *)
  result_entries : int;  (** response cache capacity *)
  plan_entries : int;  (** checkpoint-plan cache capacity *)
  timeout_s : float;  (** per-request reply deadline; [0.] = none *)
  max_connections : int;  (** concurrent connections; excess get [busy] *)
  max_frame : int;  (** request frame byte cap *)
  store_dir : string option;
      (** persistent cache store: reloaded on start, flushed on graceful
          shutdown; [None] (the default) serves memory-only *)
  verbose : bool;  (** per-request log lines on stderr *)
}

val default_config : config

type t

val start : ?config:config -> addr -> t
(** Bind, listen and serve. Returns once the listener is live (a client
    connecting after [start] returns will not get a connection refusal).
    @raise Unix.Unix_error when the address cannot be bound. *)

val addr : t -> addr

val request_stop : t -> unit
(** Ask the daemon to stop; safe from signal handlers and handler
    threads. The shutdown itself happens in {!wait} / {!stop}. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, let in-flight requests finish and
    reply, wake idle connections, join every thread, drain the pool and —
    when configured with a [store_dir] — flush both caches to disk.
    Idempotent. *)

val wait : t -> unit
(** Block until {!request_stop} (e.g. from a signal handler or a client's
    [shutdown] op), then run {!stop}. *)

val stats_json : t -> Sempe_obs.Json.t
(** The daemon's counters, as served by the [stats] op: request/reply
    totals, cache hits/misses/evictions and cost accounting for both
    caches, entries reloaded from the persistent store
    ([disk_loaded_results] / [disk_loaded_plans]), coalesced and executed
    requests, connection counts and request latency percentiles. *)
