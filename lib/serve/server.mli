(** The [sempe-sim serve] daemon: a long-running simulation service.

    One accept thread plus one handler thread per connection; the
    simulations themselves run on a {!Sempe_util.Pool} of worker domains,
    so a connection is cheap and the expensive work is bounded by the
    pool size. Each connection speaks the length-prefixed JSON protocol
    of {!Frame}: a request is an object [{"id": .., "op": .., ...}] (the
    operation fields of {!Api.request_of_json}, plus the control ops
    [ping], [stats] and [shutdown]); the reply echoes ["id"] and carries
    either [{"ok": true, "cached": .., "result": ..}] or
    [{"ok": false, "error": {"code": .., "message": ..}}].

    Two content-addressed LRU caches back the service: response bytes
    keyed by {!Api.cache_key}, and sampling checkpoint plans keyed by
    {!Api.plan_key} — a repeated sweep neither re-simulates nor re-runs
    the fast-forward pass. Identical in-flight requests coalesce onto one
    execution.

    Security note: the daemon fully trusts its clients. Frames are
    length-capped and parsed with the strict reader, so a malformed or
    truncated frame cannot wedge the server — but any client that can
    connect can run simulations, read statistics and shut the daemon
    down. Bind the unix socket in a directory with appropriate
    permissions; do not expose the TCP listener beyond the host. *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** [unix:PATH], [tcp:HOST:PORT], or a bare path (taken as a unix
    socket). *)

val addr_to_string : addr -> string

type config = {
  workers : int;  (** simulation pool size *)
  result_entries : int;  (** response cache capacity *)
  plan_entries : int;  (** checkpoint-plan cache capacity *)
  timeout_s : float;  (** per-request reply deadline; [0.] = none *)
  max_connections : int;  (** concurrent connections; excess get [busy] *)
  max_frame : int;  (** request frame byte cap *)
  verbose : bool;  (** per-request log lines on stderr *)
}

val default_config : config

type t

val start : ?config:config -> addr -> t
(** Bind, listen and serve. Returns once the listener is live (a client
    connecting after [start] returns will not get a connection refusal).
    @raise Unix.Unix_error when the address cannot be bound. *)

val addr : t -> addr

val request_stop : t -> unit
(** Ask the daemon to stop; safe from signal handlers and handler
    threads. The shutdown itself happens in {!wait} / {!stop}. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, let in-flight requests finish and
    reply, wake idle connections, join every thread and drain the pool.
    Idempotent. *)

val wait : t -> unit
(** Block until {!request_stop} (e.g. from a signal handler or a client's
    [shutdown] op), then run {!stop}. *)

val stats_json : t -> Sempe_obs.Json.t
(** The daemon's counters, as served by the [stats] op: request/reply
    totals, cache hits/misses/evictions for both caches, coalesced and
    executed requests, connection counts and request latency
    percentiles. *)
