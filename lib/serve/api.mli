(** The daemon's request vocabulary and its single execution entry point.

    Every operation the daemon serves is also a batch CLI invocation, and
    the [--json] branches of those CLI subcommands call {!perform} too —
    so a served response is byte-identical to the batch CLI's stdout for
    the same request {e by construction}, not by parallel maintenance of
    two formatting paths. *)

module Json = Sempe_obs.Json
module Scheme = Sempe_core.Scheme
module Sampling = Sempe_sampling.Sampling

type workload =
  | Microbench of { kernel : string; width : int; iters : int; leaf : int }
      (** the Figure-7 nested chain; [kernel] is a {!Sempe_workloads.Kernels}
          name *)
  | Djpeg of { format : string; blocks : int; seed : int }
      (** [format] is PPM, GIF or BMP (case-insensitive) *)
  | Rsa of { key : int }

type sample_params = { interval : int; coverage : float; warmup : int }

type request =
  | Simulate of { scheme : Scheme.t; workload : workload; strict_oob : bool }
      (** full detailed simulation — [sempe-sim microbench/djpeg/rsa --json] *)
  | Sample of {
      scheme : Scheme.t;
      workload : workload;
      strict_oob : bool;
      params : sample_params;
    }  (** sampled simulation — [sempe-sim <workload> --sample --json] *)
  | Profile of { scheme : Scheme.t; workload : workload; top : int }
      (** per-PC profile — [sempe-sim profile --json] *)
  | Leakage  (** the §IV-A security matrix — [sempe-sim leakage --json] *)
  | Fuzz_smoke of { seed : int; count : int }
      (** a corpus-less differential-fuzz round —
          [sempe-sim fuzz --seed S --count N --no-corpus --json] *)

val perform :
  ?workers:int ->
  ?plan:Sampling.plan ->
  ?plan_out:(Sampling.plan -> unit) ->
  request ->
  Json.t
(** Execute one request and return the same JSON document the batch CLI
    prints for it. Deterministic: the document is byte-identical at any
    [workers] (which only bounds the inner measurement parallelism of
    [Sample] and the fuzz pool of [Fuzz_smoke]). [plan]/[plan_out] revive
    / record a [Sample] request's checkpoint plan (ignored for the other
    requests) — see {!Sempe_sampling.Sampling.estimate}.

    @raise Invalid_argument on an unknown kernel or djpeg format (the
    strict decoder {!request_of_json} rejects those earlier, so the
    daemon never sees them). *)

val request_to_json : request -> Json.t
(** Canonical wire form: an object carrying ["op"] plus the operation's
    parameters, every field explicit (no defaults elided) — the canonical
    form is what {!cache_key} digests, so two spellings of the same
    request share a cache entry. *)

val request_of_json : Json.t -> (request, string) result
(** Strict decode of a wire object: unknown ["op"], missing or
    mistyped fields, unknown scheme/kernel/format names and out-of-range
    sampling parameters are all [Error] with a message naming the
    offending field. Unknown {e extra} fields are ignored (forward
    compatibility). *)

val digests : string -> int * int
(** Two independent FNV digests of a string — the primitive behind
    {!cache_key}, {!plan_key} and {!route_key}, also used by the
    {!Router}'s hash ring for its virtual-node points. Strings that
    collide under one digest have no reason to collide under the other. *)

val route_key : request -> int list
(** Partition key for the sharded fleet: the two digests of the
    canonical request JSON, nothing else. Cheap to compute (no program
    build), and identical requests always map to the same shard — so
    coalescing and both shard-local caches still see every repeat of a
    request on one process. Distinct from {!cache_key}, which also
    fingerprints the compiled program image and guards the response
    cache itself. *)

val cache_key : request -> int list
(** Content address of a request's response: two independent FNV digests
    of the canonical request JSON plus two of the compiled program image
    (via [Marshal]) for workload-bearing requests. A response may be
    reused exactly when all four digests match, so a single unlucky hash
    collision cannot alias two different requests. *)

val plan_key : request -> int list option
(** Content address of the checkpoint plan a [Sample] request's
    fast-forward pass produces — [None] for every other request. Unlike
    {!cache_key} it excludes [coverage] and digests the derived sampling
    stride instead, so any coverage that selects the same interval set
    reuses the same plan. *)
