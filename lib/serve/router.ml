(* The fleet front end: accepts the same framed JSON protocol as a
   shard, consistent-hashes each request's partition key onto one of N
   shards, and relays the original frame bytes verbatim — so the reply a
   client sees is exactly the bytes the shard produced (the shard echoes
   the client's own "id", because the shard reads the client's own
   payload). The router never parses a shard's reply.

   Shard failure is handled at the forwarding layer: each attempt gets a
   fresh connection; a refusal, hangup or frame error is retried with
   doubling backoff, and a shard that exhausts its retries is marked
   dead and skipped in favor of the next shard clockwise on the ring.
   A background health thread pings dead shards back to life. *)

module Json = Sempe_obs.Json
module Pool = Sempe_util.Pool

(* ---- the hash ring ---- *)

module Ring = struct
  (* [points] is sorted by hash; each shard contributes [replicas]
     virtual nodes so the keyspace splits evenly and removing one shard
     redistributes only that shard's arcs (~1/N of the keys) instead of
     shifting every assignment by one. *)
  type t = { shards : int; points : (int * int) array }

  let default_replicas = 128

  (* Fold the dual digests into one ring coordinate. *)
  let mix (h1, h2) = (h1 lxor (h2 * 0x9e3779b1)) land max_int

  let create ?(replicas = default_replicas) shards =
    if shards < 1 then invalid_arg "Ring.create: shards must be >= 1";
    if replicas < 1 then invalid_arg "Ring.create: replicas must be >= 1";
    let points =
      Array.init (shards * replicas) (fun i ->
          let shard = i / replicas and v = i mod replicas in
          (mix (Api.digests (Printf.sprintf "shard-%d#%d" shard v)), shard))
    in
    Array.sort compare points;
    { shards; points }

  let shards t = t.shards

  let key_hash key =
    mix (Api.digests (String.concat "," (List.map string_of_int key)))

  (* Index of the first point strictly clockwise of [h], wrapping. *)
  let successor t h =
    let n = Array.length t.points in
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if fst t.points.(mid) <= h then go (mid + 1) hi else go lo mid
    in
    let i = go 0 n in
    if i = n then 0 else i

  let assign t key = snd t.points.(successor t (key_hash key))

  let order t key =
    let n = Array.length t.points in
    let start = successor t (key_hash key) in
    let seen = Array.make t.shards false in
    let out = ref [] and found = ref 0 in
    let i = ref 0 in
    while !found < t.shards && !i < n do
      let shard = snd t.points.((start + !i) mod n) in
      if not seen.(shard) then begin
        seen.(shard) <- true;
        out := shard :: !out;
        incr found
      end;
      incr i
    done;
    List.rev !out
end

(* ---- configuration ---- *)

type config = {
  replicas : int;
  retries : int;
  backoff_s : float;
  health_period_s : float;
  max_connections : int;
  max_frame : int;
  verbose : bool;
}

let default_config =
  {
    replicas = Ring.default_replicas;
    retries = 2;
    backoff_s = 0.05;
    health_period_s = 0.5;
    max_connections = 64;
    max_frame = Frame.max_len_default;
    verbose = false;
  }

type shard = {
  s_addr : Server.addr;
  mutable s_alive : bool;
  mutable s_forwarded : int;
}

type t = {
  cfg : config;
  address : Server.addr;
  listen_fd : Unix.file_descr;
  ring : Ring.t;
  shards : shard array;
  m : Mutex.t;
  mutable requests : int;
  mutable forwarded : int;
  mutable retried : int;
  mutable failovers : int;
  mutable errors : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable active : int;
  mutable conns : (int * Unix.file_descr) list;
  mutable next_conn : int;
  stop_flag : bool Atomic.t;
  stop_done : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  mutable health_thread : Thread.t option;
  mutable handler_threads : Thread.t list;
}

let addr t = t.address

let request_stop t = Atomic.set t.stop_flag true

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* ---- forwarding ---- *)

let connect_fd = function
  | Server.Unix_sock path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with _ -> ());
       raise e);
    fd
  | Server.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (inet, port))
     with e ->
       (try Unix.close fd with _ -> ());
       raise e);
    fd

(* One attempt: fresh connection, the client's own payload bytes out,
   the shard's reply bytes back. *)
let try_shard t shard payload =
  match connect_fd shard.s_addr with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "connect: %s" (Unix.error_message e))
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        match
          Frame.write fd payload;
          Frame.read ~max_len:t.cfg.max_frame fd
        with
        | Some reply -> Ok reply
        | None -> Error "shard closed the connection"
        | exception Frame.Frame_error msg -> Error msg
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

let forward t key payload =
  let ring_order = Ring.order t.ring key in
  (* Prefer live shards, in ring order; fall back to trying the dead
     ones anyway (the health thread may simply not have noticed a
     revival yet, and a request should not fail while any shard can
     serve it). *)
  let alive, dead =
    List.partition (fun i -> locked t (fun () -> t.shards.(i).s_alive)) ring_order
  in
  let rec try_shards ~first = function
    | [] -> Error ("unavailable", "no shard could serve the request")
    | idx :: rest ->
      let shard = t.shards.(idx) in
      if not first then locked t (fun () -> t.failovers <- t.failovers + 1);
      let rec attempt n backoff =
        match try_shard t shard payload with
        | Ok reply ->
          locked t (fun () ->
              shard.s_alive <- true;
              shard.s_forwarded <- shard.s_forwarded + 1;
              t.forwarded <- t.forwarded + 1);
          Ok reply
        | Error _ when n < t.cfg.retries ->
          locked t (fun () -> t.retried <- t.retried + 1);
          Thread.delay backoff;
          attempt (n + 1) (backoff *. 2.)
        | Error msg ->
          locked t (fun () -> shard.s_alive <- false);
          if t.cfg.verbose then
            Printf.eprintf "[router] shard %s down: %s\n%!"
              (Server.addr_to_string shard.s_addr)
              msg;
          Error ("unavailable", msg)
      in
      (match attempt 1 t.cfg.backoff_s with
       | Ok reply -> Ok reply
       | Error _ -> try_shards ~first:false rest)
  in
  try_shards ~first:true (alive @ dead)

(* ---- fleet control ---- *)

let drain_fleet t =
  Array.iter
    (fun shard ->
      match connect_fd shard.s_addr with
      | exception Unix.Unix_error _ -> ()
      | fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with _ -> ())
          (fun () ->
            try
              Frame.write fd (Json.to_string (Json.Obj [ ("op", Json.Str "shutdown") ]));
              ignore (Frame.read ~max_len:t.cfg.max_frame fd)
            with _ -> ()))
    t.shards

(* ---- stats ---- *)

let shard_cache_counts t shard =
  match connect_fd shard.s_addr with
  | exception Unix.Unix_error _ -> None
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        match
          Frame.write fd (Json.to_string (Json.Obj [ ("op", Json.Str "stats") ]));
          Frame.read ~max_len:t.cfg.max_frame fd
        with
        | exception _ -> None
        | None -> None
        | Some reply -> (
          match Json.of_string_strict reply with
          | exception Json.Parse_error _ -> None
          | doc -> (
            match Option.bind (Json.member "result" doc) (Json.member "result_cache") with
            | Some rc -> (
              match (Json.member "hits" rc, Json.member "misses" rc) with
              | Some (Json.Int h), Some (Json.Int m) -> Some (h, m)
              | _ -> None)
            | None -> None)))

let stats_json t =
  (* Sum the fleet's result-cache counters so a load generator pointed
     at the router reads hit rates exactly as it would against a single
     shard. Queried live; a dead shard contributes nothing. *)
  let hits = ref 0 and misses = ref 0 in
  Array.iter
    (fun shard ->
      if locked t (fun () -> shard.s_alive) then
        match shard_cache_counts t shard with
        | Some (h, m) ->
          hits := !hits + h;
          misses := !misses + m
        | None -> ())
    t.shards;
  locked t (fun () ->
      Json.Obj
        [
          ("role", Json.Str "router");
          ("requests", Json.Int t.requests);
          ("forwarded", Json.Int t.forwarded);
          ("retried", Json.Int t.retried);
          ("failovers", Json.Int t.failovers);
          ("errors", Json.Int t.errors);
          ( "shards",
            Json.List
              (Array.to_list
                 (Array.map
                    (fun s ->
                      Json.Obj
                        [
                          ("addr", Json.Str (Server.addr_to_string s.s_addr));
                          ("alive", Json.Bool s.s_alive);
                          ("forwarded", Json.Int s.s_forwarded);
                        ])
                    t.shards)) );
          ( "result_cache",
            Json.Obj [ ("hits", Json.Int !hits); ("misses", Json.Int !misses) ] );
          ( "connections",
            Json.Obj
              [
                ("accepted", Json.Int t.accepted);
                ("rejected", Json.Int t.rejected);
                ("active", Json.Int t.active);
              ] );
        ])

(* ---- the wire loop ---- *)

let write_reply fd ~id doc_fields =
  let id_field = match id with Some i -> [ ("id", Json.Int i) ] | None -> [] in
  Frame.write fd (Json.to_string (Json.Obj (id_field @ doc_fields)))

let write_ok fd ~id result =
  write_reply fd ~id
    [ ("ok", Json.Bool true); ("cached", Json.Bool false); ("result", result) ]

let write_err fd ~id code message =
  write_reply fd ~id
    [
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj [ ("code", Json.Str code); ("message", Json.Str message) ] );
    ]

let handle_payload t fd payload =
  locked t (fun () -> t.requests <- t.requests + 1);
  let fail ~id code message =
    locked t (fun () -> t.errors <- t.errors + 1);
    write_err fd ~id code message
  in
  match Json.of_string_strict ~max_bytes:t.cfg.max_frame payload with
  | exception Json.Parse_error { pos; message } ->
    fail ~id:None "bad-json" (Printf.sprintf "at byte %d: %s" pos message)
  | Json.Obj fields as json -> (
    let id =
      match List.assoc_opt "id" fields with
      | Some (Json.Int i) -> Some i
      | _ -> None
    in
    match List.assoc_opt "op" fields with
    | Some (Json.Str "ping") -> write_ok fd ~id (Json.Str "pong")
    | Some (Json.Str "stats") -> write_ok fd ~id (stats_json t)
    | Some (Json.Str "shutdown") ->
      (* Graceful fleet drain: every shard finishes its in-flight work,
         flushes its store and exits; then the router follows. *)
      drain_fleet t;
      write_ok fd ~id (Json.Bool true);
      request_stop t
    | _ -> (
      match Api.request_of_json json with
      | Error msg -> fail ~id "bad-request" msg
      | Ok req -> (
        let key = Api.route_key req in
        match forward t key payload with
        | Ok reply ->
          if t.cfg.verbose then
            Printf.eprintf "[router] %s -> shard %d\n%!"
              (Json.to_string (Api.request_to_json req))
              (Ring.assign t.ring key);
          Frame.write fd reply
        | Error (code, message) -> fail ~id code message)))
  | _ -> fail ~id:None "bad-request" "request must be a JSON object"

let conn_loop t fd =
  let rec go () =
    match Frame.read ~max_len:t.cfg.max_frame fd with
    | None -> ()
    | Some payload ->
      handle_payload t fd payload;
      go ()
    | exception Frame.Frame_error msg ->
      (try write_err fd ~id:None "bad-frame" msg with _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  try go () with _ -> ()

let handler t cid fd =
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with _ -> ());
      locked t (fun () ->
          t.active <- t.active - 1;
          t.conns <- List.filter (fun (c, _) -> c <> cid) t.conns))
    (fun () -> conn_loop t fd)

let busy_doc =
  Json.to_string
    (Json.Obj
       [
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [
               ("code", Json.Str "busy");
               ("message", Json.Str "connection limit reached");
             ] );
       ])

let accept_loop t =
  while not (Atomic.get t.stop_flag) do
    let ready =
      try
        match Unix.select [ t.listen_fd ] [] [] 0.2 with
        | [], _, _ -> false
        | _ -> true
      with Unix.Unix_error _ -> false
    in
    if ready && not (Atomic.get t.stop_flag) then begin
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        let admitted =
          locked t (fun () ->
              if t.active >= t.cfg.max_connections then begin
                t.rejected <- t.rejected + 1;
                false
              end
              else begin
                t.accepted <- t.accepted + 1;
                t.active <- t.active + 1;
                true
              end)
        in
        if not admitted then begin
          (try Frame.write fd busy_doc with _ -> ());
          try Unix.close fd with _ -> ()
        end
        else begin
          let th =
            locked t (fun () ->
                let cid = t.next_conn in
                t.next_conn <- cid + 1;
                t.conns <- (cid, fd) :: t.conns;
                Thread.create (fun () -> handler t cid fd) ())
          in
          locked t (fun () -> t.handler_threads <- th :: t.handler_threads)
        end
    end
  done

(* Revive dead shards: a cheap ping on a fresh connection. Live shards
   are left alone — forwarding itself discovers failures faster than a
   poll would. *)
let health_loop t =
  let ping_doc = Json.to_string (Json.Obj [ ("op", Json.Str "ping") ]) in
  while not (Atomic.get t.stop_flag) do
    Array.iter
      (fun shard ->
        if not (locked t (fun () -> shard.s_alive)) then begin
          match connect_fd shard.s_addr with
          | exception Unix.Unix_error _ -> ()
          | fd ->
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with _ -> ())
              (fun () ->
                match
                  Frame.write fd ping_doc;
                  Frame.read ~max_len:t.cfg.max_frame fd
                with
                | Some _ ->
                  locked t (fun () -> shard.s_alive <- true);
                  if t.cfg.verbose then
                    Printf.eprintf "[router] shard %s back up\n%!"
                      (Server.addr_to_string shard.s_addr)
                | None | (exception _) -> ())
        end)
      t.shards;
    (* Sleep in short slices so a stop request is honored promptly. *)
    let deadline = Pool.now_s () +. t.cfg.health_period_s in
    while (not (Atomic.get t.stop_flag)) && Pool.now_s () < deadline do
      Thread.delay 0.02
    done
  done

(* ---- lifecycle ---- *)

let start ?(config = default_config) ~shards address =
  if shards = [] then invalid_arg "Router.start: no shards";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let listen_fd =
    Server.bind_listen ~backlog:(max 16 config.max_connections) address
  in
  let t =
    {
      cfg = config;
      address;
      listen_fd;
      ring = Ring.create ~replicas:config.replicas (List.length shards);
      shards =
        Array.of_list
          (List.map
             (fun a -> { s_addr = a; s_alive = true; s_forwarded = 0 })
             shards);
      m = Mutex.create ();
      requests = 0;
      forwarded = 0;
      retried = 0;
      failovers = 0;
      errors = 0;
      accepted = 0;
      rejected = 0;
      active = 0;
      conns = [];
      next_conn = 0;
      stop_flag = Atomic.make false;
      stop_done = Atomic.make false;
      accept_thread = None;
      health_thread = None;
      handler_threads = [];
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t.health_thread <- Some (Thread.create health_loop t);
  t

let stop t =
  if not (Atomic.exchange t.stop_done true) then begin
    Atomic.set t.stop_flag true;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (match t.health_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with _ -> ());
    (match t.address with
     | Server.Unix_sock path -> ( try Sys.remove path with _ -> ())
     | Server.Tcp _ -> ());
    (* Wake connections idle in [Frame.read]; in-flight forwards finish
       and reply before their handlers exit. *)
    let fds = locked t (fun () -> t.conns) in
    List.iter
      (fun (_, fd) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      fds;
    let threads = locked t (fun () -> t.handler_threads) in
    List.iter Thread.join threads
  end

let wait t =
  while not (Atomic.get t.stop_flag) do
    Thread.delay 0.05
  done;
  stop t
