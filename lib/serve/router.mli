(** The [sempe-sim router] front end: one address for a fleet of
    [serve] shards.

    The router speaks the same framed JSON protocol as a shard and is a
    drop-in replacement for one from a client's point of view: workload
    requests are consistent-hashed by {!Api.route_key} onto a shard and
    the original frame bytes relayed verbatim both ways, so the reply is
    byte-for-byte what that shard produced (and therefore byte-identical
    to the batch CLI, at any shard count). Identical requests always
    land on the same shard, keeping the per-shard caches and request
    coalescing as effective as a single daemon's.

    Placement uses a consistent-hash ring ({!Ring}) with virtual nodes:
    adding or removing one shard remaps only ~1/N of the keyspace.
    Each forward gets a fresh connection and is retried with doubling
    backoff on refusal, hangup or a framing error; a shard that
    exhausts its retries is marked dead and the request fails over to
    the next shard clockwise on the ring (losing only cache warmth,
    never correctness). A health thread pings dead shards back into
    rotation.

    Control ops are fleet-level: [ping] answers locally, [stats]
    reports routing counters plus the fleet's summed result-cache
    hits/misses (so {!Loadgen} computes hit rates against a router
    unchanged), and [shutdown] performs a graceful fleet drain — every
    shard finishes in-flight work, flushes its persistent store and
    exits, then the router follows. *)

(** The consistent-hash ring, exposed for property tests: assignment is
    a pure function of the key and the shard count. *)
module Ring : sig
  type t

  val default_replicas : int
  (** Virtual nodes per shard (128): enough that the largest shard arc
      stays within a few percent of fair share. *)

  val create : ?replicas:int -> int -> t
  (** [create n] builds the ring for shards [0 .. n-1].
      @raise Invalid_argument if [n < 1] or [replicas < 1]. *)

  val shards : t -> int

  val assign : t -> int list -> int
  (** The shard owning a key (a {!Api.route_key} digest list). *)

  val order : t -> int list -> int list
  (** All shards in failover order for a key: {!assign} first, then
      each next distinct shard clockwise. Every shard index appears
      exactly once. *)
end

type config = {
  replicas : int;  (** virtual nodes per shard on the ring *)
  retries : int;  (** connection attempts per shard before failover *)
  backoff_s : float;  (** delay before the first retry; doubles *)
  health_period_s : float;  (** dead-shard ping interval *)
  max_connections : int;  (** concurrent client connections *)
  max_frame : int;  (** frame byte cap, both directions *)
  verbose : bool;  (** routing decisions and shard state on stderr *)
}

val default_config : config

type t

val start : ?config:config -> shards:Server.addr list -> Server.addr -> t
(** Bind [address] and route to [shards] (all initially presumed
    alive). Returns once the listener is live.
    @raise Invalid_argument on an empty shard list.
    @raise Unix.Unix_error when the address cannot be bound. *)

val addr : t -> Server.addr

val request_stop : t -> unit
(** Ask the router to stop; safe from signal handlers. The shutdown
    itself happens in {!wait} / {!stop}. Does not touch the shards —
    use {!drain_fleet} first for a full fleet shutdown. *)

val drain_fleet : t -> unit
(** Send every shard a [shutdown] op (best-effort, synchronous): each
    shard drains its in-flight work, flushes its store and exits. The
    client-visible [shutdown] op does exactly this before stopping the
    router. *)

val stop : t -> unit
(** Graceful shutdown of the router itself: stop accepting, let
    in-flight forwards finish and reply, join every thread. Idempotent. *)

val wait : t -> unit
(** Block until {!request_stop} (e.g. from a signal handler or a
    client's [shutdown] op), then run {!stop}. *)

val stats_json : t -> Sempe_obs.Json.t
(** The router's counters, as served by the [stats] op: totals for
    requests, forwards, retries, failovers and errors; per-shard
    address / liveness / forward counts; and the fleet's summed
    result-cache hits and misses (queried live from each live shard). *)
