(** Bounded LRU cache with hit/miss/eviction counters.

    The daemon keeps two of these: (program fingerprint, request config)
    → rendered report, and (program fingerprint, inputs, sampling
    boundary config) → checkpoint plan. Keys are compared structurally
    (the daemon uses lists of independent digests — see
    {!Api.cache_key} — so a single unlucky hash collision cannot alias
    two requests), values are opaque.

    Not thread-safe: the daemon serializes access under its own lock. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument if [capacity < 1]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit refreshes the entry's recency and increments the hit
    counter, a miss increments the miss counter. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert (or overwrite, refreshing recency). When the cache is full,
    the least-recently-used entry is evicted first. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Like {!find} but without touching recency or the counters. *)

val length : ('k, 'v) t -> int

val capacity : ('k, 'v) t -> int

val hits : ('k, 'v) t -> int

val misses : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int

val keys_newest_first : ('k, 'v) t -> 'k list
(** Keys in recency order, most recently used first — the eviction order
    reversed. For tests and introspection. *)
