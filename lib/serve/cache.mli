(** Bounded content-addressed cache with cost-aware (GreedyDual)
    eviction and hit/miss/eviction counters.

    The daemon keeps two of these: (program fingerprint, request config)
    → rendered report, and (program fingerprint, inputs, sampling
    boundary config) → checkpoint plan. Keys are compared structurally
    (the daemon uses lists of independent digests — see
    {!Api.cache_key} — so a single unlucky hash collision cannot alias
    two requests), values are opaque.

    Every entry records the wall-clock cost of recomputing it (seconds
    of {!Api.perform}); when the cache is full, eviction removes the
    entry whose loss costs the least to repair, not simply the least
    recently used one. The policy is GreedyDual: an entry's credit is
    [l + cost] where [l] is a global inflation value; a hit re-credits
    the entry at the current [l], an eviction removes the minimum-credit
    entry (ties broken toward the least recently used) and advances [l]
    to the evicted credit, aging everything that merely sits resident.
    With uniform costs every credit ties and the policy degenerates to
    exact LRU.

    Not thread-safe: the daemon serializes access under its own lock. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument if [capacity < 1]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit refreshes the entry's recency, re-credits it at the
    current inflation value and increments the hit counter; a miss
    increments the miss counter. *)

val add : ?cost:float -> ('k, 'v) t -> 'k -> 'v -> unit
(** Insert (or overwrite, refreshing recency and cost). [cost] is the
    wall-clock seconds recomputing the value would take (default [0.];
    negative or NaN costs are clamped to [0.]). When the cache is full,
    the minimum-credit entry is evicted first — the least valuable
    cost-seconds, not necessarily the least recent entry. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Like {!find} but without touching recency, credit or the counters. *)

val length : ('k, 'v) t -> int

val capacity : ('k, 'v) t -> int

val hits : ('k, 'v) t -> int

val misses : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int

val cost_evicted_s : ('k, 'v) t -> float
(** Total recompute cost (seconds) thrown away by evictions so far —
    the quantity the eviction policy minimizes. *)

val total_cost_s : ('k, 'v) t -> float
(** Sum of the resident entries' recompute costs (seconds): the value
    currently protected by the cache. *)

val keys_newest_first : ('k, 'v) t -> 'k list
(** Keys in recency order, most recently used first. For tests and
    introspection. *)

val to_list : ('k, 'v) t -> ('k * 'v * float) list
(** Entries in recency order, most recently used first, with their
    recorded costs — what {!Persist} flushes to disk on shutdown. *)
