(** Client side of the serving protocol: one framed JSON request per
    call, replies matched by construction (the protocol is strictly
    request/response in order on a connection). *)

module Json = Sempe_obs.Json

type conn

type error = { code : string; message : string }
(** A structured failure: an [error] reply from the daemon, or a local
    ["closed"] / ["protocol"] error when the connection died or the reply
    was malformed. *)

val connect : Server.addr -> conn
(** @raise Unix.Unix_error when the daemon is not reachable. *)

val close : conn -> unit
(** Idempotent. *)

val call : conn -> Api.request -> (Json.t, error) result
(** Send one request and block for its reply; [Ok] carries the reply's
    [result] document — the same bytes (once rendered with
    {!Sempe_obs.Json.to_string}) the batch CLI prints for the request. *)

val call_cached : conn -> Api.request -> (Json.t * bool, error) result
(** Like {!call} but also returns the reply's [cached] marker. *)

val ping : conn -> (unit, error) result

val stats : conn -> (Json.t, error) result
(** The daemon's counter document (see {!Server.stats_json}). *)

val shutdown : conn -> (unit, error) result
(** Ask the daemon to stop (it replies before shutting down). *)
