module Json = Sempe_obs.Json

type conn = { fd : Unix.file_descr; mutable next_id : int; mutable open_ : bool }

type error = { code : string; message : string }

let connect address =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  match address with
  | Server.Unix_sock path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e -> (try Unix.close fd with _ -> ()); raise e);
    { fd; next_id = 1; open_ = true }
  | Server.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (inet, port))
     with e -> (try Unix.close fd with _ -> ()); raise e);
    { fd; next_id = 1; open_ = true }

let close conn =
  if conn.open_ then begin
    conn.open_ <- false;
    try Unix.close conn.fd with _ -> ()
  end

(* One request, one reply. Replies are decoded strictly: a daemon bug
   that emits a malformed document surfaces as a ["protocol"] error, not
   an exception in the caller. *)
let roundtrip conn fields =
  if not conn.open_ then Error { code = "closed"; message = "connection closed" }
  else begin
    let id = conn.next_id in
    conn.next_id <- id + 1;
    let doc = Json.Obj (("id", Json.Int id) :: fields) in
    match
      Frame.write conn.fd (Json.to_string doc);
      Frame.read conn.fd
    with
    | exception Frame.Frame_error msg -> Error { code = "protocol"; message = msg }
    | exception Unix.Unix_error (e, _, _) ->
      Error { code = "closed"; message = Unix.error_message e }
    | None -> Error { code = "closed"; message = "daemon closed the connection" }
    | Some payload -> (
      match Json.of_string_strict payload with
      | exception Json.Parse_error { pos; message } ->
        Error
          { code = "protocol";
            message = Printf.sprintf "bad reply at byte %d: %s" pos message }
      | Json.Obj reply -> (
        (match List.assoc_opt "id" reply with
         | Some (Json.Int rid) when rid <> id ->
           Error
             { code = "protocol";
               message = Printf.sprintf "reply id %d for request %d" rid id }
         | _ -> (
           match List.assoc_opt "ok" reply with
           | Some (Json.Bool true) -> (
             match List.assoc_opt "result" reply with
             | Some result ->
               let cached =
                 match List.assoc_opt "cached" reply with
                 | Some (Json.Bool b) -> b
                 | _ -> false
               in
               Ok (result, cached)
             | None ->
               Error { code = "protocol"; message = "ok reply without result" })
           | Some (Json.Bool false) -> (
             match List.assoc_opt "error" reply with
             | Some (Json.Obj err) ->
               let str name fallback =
                 match List.assoc_opt name err with
                 | Some (Json.Str s) -> s
                 | _ -> fallback
               in
               Error
                 { code = str "code" "error"; message = str "message" "" }
             | _ ->
               Error { code = "protocol"; message = "error reply without error" })
           | _ -> Error { code = "protocol"; message = "reply without ok field" })))
      | _ -> Error { code = "protocol"; message = "reply is not a JSON object" })
  end

let call_cached conn request =
  roundtrip conn
    (match Api.request_to_json request with
     | Json.Obj fields -> fields
     | other -> [ ("request", other) ])

let call conn request = Result.map fst (call_cached conn request)

let op conn name = roundtrip conn [ ("op", Json.Str name) ]

let ping conn =
  match op conn "ping" with Ok _ -> Ok () | Error e -> Error e

let stats conn = Result.map fst (op conn "stats")

let shutdown conn =
  match op conn "shutdown" with Ok _ -> Ok () | Error e -> Error e
