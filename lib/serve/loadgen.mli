(** Load generator for the serving daemon: N concurrent client
    connections replaying a request mix, with latency percentiles,
    throughput and the daemon-side cache hit rate over the run.

    Closed-loop by default (each client issues its next request as soon
    as the previous reply lands); with [rate_hz] set, open-loop per
    client: request [i] is {e scheduled} at [start + i/rate] and its
    latency is measured from the scheduled time, so a stalling daemon
    accrues queueing delay instead of hiding it (coordinated omission).

    Clients rotate through the mix starting at their own index, so at any
    moment the in-flight requests differ across connections — the
    coalescing and cache paths both get exercised. *)

type config = {
  clients : int;  (** concurrent connections *)
  requests_per_client : int;
  mix : Api.request list;  (** non-empty; rotated per client *)
  rate_hz : float option;  (** per-client arrival rate; [None] = closed loop *)
}

type outcome = {
  sent : int;
  completed : int;  (** [ok] replies *)
  errors : int;  (** daemon-reported error replies (timeout, failed, ...) *)
  dropped : int;  (** no reply: connect failure, closed connection, busy *)
  wall_s : float;
  throughput : float;  (** completed replies per second *)
  samples : int;  (** latency observations behind the percentiles *)
  mean_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float option;
      (** [None] below {!p99_floor} samples, where nearest-rank p99
          silently equals the max *)
  max_s : float;
  hit_rate : float;
      (** daemon result-cache hits over lookups during the run window
          (coalesced joins count as lookups that missed) *)
  server_stats : Sempe_obs.Json.t option;  (** daemon stats after the run *)
}

val p99_floor : int
(** Minimum sample count (100) for a reported p99: below it the
    nearest-rank 99th percentile is rank [ceil(0.99 n) = n] — the
    sample max wearing a fancier name — so it is withheld instead
    ([p99_s = None], [null] in the JSON form). *)

val gated_p99 : Sempe_util.Stats.Summary.t -> float option
(** The p99 policy by itself: [None] below {!p99_floor} observations,
    the nearest-rank percentile otherwise. *)

val run : Server.addr -> config -> outcome
(** @raise Invalid_argument on an empty mix or non-positive counts. *)

val to_json : outcome -> Sempe_obs.Json.t

val render : outcome -> string
(** Human-readable summary, one metric per line. *)
